package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/metrics"
)

// RunMechanism is ablation A7: the paper's Gaussian mechanism versus the
// pure-DP Laplace and geometric mechanisms for the per-level count
// release. For a scalar count the Laplace mechanism needs less noise at
// the same ε (no δ, no √(2 ln(1.25/δ)) factor); the Gaussian pays that
// factor to gain (ε, δ) semantics that compose better across many
// queries. The table makes the trade explicit per level.
func RunMechanism(opts Options) (*Report, error) {
	tree, err := standardTree(opts)
	if err != nil {
		return nil, err
	}
	const eps = 0.5
	p := dp.Params{Epsilon: eps, Delta: 1e-5}
	pure := dp.Params{Epsilon: eps}
	levels := levelsFor(tree.MaxLevel())

	mechs := []struct {
		name string
		mech core.NoiseMechanism
		p    dp.Params
	}{
		{name: "gaussian (paper)", mech: core.MechGaussian, p: p},
		{name: "laplace", mech: core.MechLaplace, p: pure},
		{name: "geometric", mech: core.MechGeometric, p: pure},
	}

	table := metrics.Table{
		Title:   fmt.Sprintf("A7 — noise mechanism at ε=%.1f (expected RER; gaussian uses δ=%g)", eps, p.Delta),
		Headers: []string{"level"},
	}
	for _, m := range mechs {
		table.Headers = append(table.Headers, m.name)
	}
	series := make([]metrics.Series, len(mechs))
	for mi, m := range mechs {
		series[mi] = metrics.Series{Name: m.name}
	}
	for _, lvl := range levels {
		row := []any{lvl}
		for mi, m := range mechs {
			exp, err := core.ExpectedRERWith(tree, lvl, m.p, core.ModelCells, core.CalibrationClassical, m.mech)
			if err != nil {
				return nil, fmt.Errorf("experiments: mechanism %s level %d: %w", m.name, lvl, err)
			}
			row = append(row, exp)
			series[mi].X = append(series[mi].X, float64(lvl))
			series[mi].Y = append(series[mi].Y, exp)
		}
		table.AddRow(row...)
	}
	fig, err := metrics.RenderASCII(series, metrics.PlotOptions{
		Title: "A7: expected RER by noise mechanism (log y)", LogY: true,
		XLabel: "level", YLabel: "E[RER]",
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Name: "mechanism", Title: "A7 — Gaussian vs Laplace vs geometric noise",
		Tables: []metrics.Table{table}, Series: series, Figures: []string{fig},
		Notes: []string{
			"for a single count per level, pure-DP Laplace/geometric noise beats the classically calibrated Gaussian at equal ε",
			"the Gaussian's (ε, δ) semantics win back ground under composition across many queries (see A1 composed-advanced)",
		},
	}, nil
}
