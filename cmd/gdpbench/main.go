// Command gdpbench regenerates the paper's evaluation. Every experiment
// in DESIGN.md §5 — Figure 1 plus ablations A1–A6 — is a named entry;
// gdpbench prints its tables (markdown), ASCII figures, and the
// paper-vs-measured notes, and can dump CSVs for external plotting.
//
// Usage:
//
//	gdpbench -exp figure1
//	gdpbench -exp all -quick
//	gdpbench -exp figure1 -preset dblp-scaled -trials 20 -csv out/
//	gdpbench -exp all -quick -benchjson out/
//
// -benchjson writes one machine-readable BENCH_<experiment>.json per
// experiment (configuration plus wall time), the perf-trajectory record
// CI and regression tooling diff across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro"
	"repro/internal/experiments"
)

// benchRecord is the machine-readable result of one timed experiment
// run. Preset is the resolved dataset name, never empty; Trials echoes
// the -trials override, where 0 means the experiment's own default.
type benchRecord struct {
	Experiment string  `json:"experiment"`
	Preset     string  `json:"preset"`
	Quick      bool    `json:"quick"`
	Trials     int     `json:"trials"`
	Seed       uint64  `json:"seed"`
	Workers    int     `json:"workers"`
	WallMS     float64 `json:"wall_ms"`
	UnixMS     int64   `json:"unix_ms"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gdpbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gdpbench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "figure1", fmt.Sprintf("experiment name or 'all' %v", experiments.Names()))
		preset   = fs.String("preset", "", "dataset preset override (default dblp-scaled, dblp-tiny with -quick)")
		seed     = fs.Uint64("seed", 1, "random seed")
		trials   = fs.Int("trials", 0, "trial count override (0 = experiment default)")
		quick    = fs.Bool("quick", false, "shrink datasets and grids for a fast run")
		csvDir   = fs.String("csv", "", "also write each table as CSV into this directory")
		workers  = fs.Int("workers", runtime.GOMAXPROCS(0), "phase-1 build parallelism (results identical for any value)")
		benchDir = fs.String("benchjson", "", "write a machine-readable BENCH_<experiment>.json per experiment into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := repro.ExperimentOptions{
		Preset:  *preset,
		Seed:    *seed,
		Trials:  *trials,
		Quick:   *quick,
		Workers: *workers,
	}
	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		start := time.Now()
		report, err := repro.RunExperiment(name, opts)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", name, err)
		}
		elapsed := time.Since(start)
		if err := emit(report, *csvDir); err != nil {
			return err
		}
		if *benchDir != "" {
			rec := benchRecord{
				Experiment: name,
				Preset:     opts.EffectivePreset(),
				Quick:      *quick,
				Trials:     *trials,
				Seed:       *seed,
				Workers:    *workers,
				WallMS:     float64(elapsed.Nanoseconds()) / 1e6,
				UnixMS:     start.UnixMilli(),
			}
			if err := writeBenchJSON(*benchDir, rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeBenchJSON writes one experiment's timing record to
// dir/BENCH_<experiment>.json.
func writeBenchJSON(dir string, rec benchRecord) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", sanitize(rec.Experiment)))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("(bench record written to %s)\n\n", path)
	return nil
}

func emit(report *repro.ExperimentReport, csvDir string) error {
	fmt.Printf("## %s\n\n", report.Title)
	for _, fig := range report.Figures {
		fmt.Println(fig)
	}
	for ti, table := range report.Tables {
		fmt.Println(table.Markdown())
		if csvDir != "" {
			if err := os.MkdirAll(csvDir, 0o755); err != nil {
				return err
			}
			name := fmt.Sprintf("%s_%d.csv", sanitize(report.Name), ti)
			path := filepath.Join(csvDir, name)
			if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
				return err
			}
			fmt.Printf("(csv written to %s)\n\n", path)
		}
	}
	for _, note := range report.Notes {
		fmt.Printf("> %s\n", note)
	}
	fmt.Println()
	return nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
