// Command benchdiff compares the machine-readable BENCH_*.json records
// gdpbench emits against a committed baseline directory and fails on
// performance regressions — the CI gate that keeps the perf-trajectory
// records honest instead of decorative.
//
// Usage:
//
//	benchdiff -baseline bench/baseline -candidate bench
//	benchdiff -baseline bench/baseline -candidate bench -max-regress 0.30
//
// Each tracked metric is a (file, JSON field, direction) triple. A
// metric regresses when the candidate is worse than the baseline by
// more than -max-regress (relative): higher-is-better metrics must not
// fall below baseline·(1−r), lower-is-better metrics must not rise
// above baseline·(1+r). Files missing from the candidate directory are
// skipped with a notice (the stream record, for example, is produced by
// a different CI job than the experiment records), but comparing zero
// metrics is an error — a misconfigured path must not pass silently.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// metric is one tracked benchmark field.
type metric struct {
	file   string
	field  string
	higher bool // true: higher is better (throughput); false: lower is better (latency)
}

// metrics is the tracked perf surface: Phase-2 release throughput, the
// streamed ingest rate, and the serving layer's query throughput and
// cache advantage. Only the load-bearing absolute numbers are gated;
// the cache is gated through cache_speedup — a same-run ratio of miss
// to hit cost, stable across host generations — rather than through
// its absolute nanosecond numbers, which vary more than the tolerance
// between a laptop and a shared CI runner.
var metrics = []metric{
	{file: "BENCH_phase2.json", field: "release_cells_ns_per_op", higher: false},
	{file: "BENCH_stream.json", field: "edges_per_sec", higher: true},
	{file: "BENCH_serve.json", field: "queries_per_sec", higher: true},
	{file: "BENCH_serve.json", field: "cache_speedup", higher: true},
	{file: "BENCH_load.json", field: "achieved_qps", higher: true},
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		baseline  = fs.String("baseline", "", "directory holding the committed BENCH_*.json baselines")
		candidate = fs.String("candidate", "", "directory holding the freshly generated BENCH_*.json records")
		maxReg    = fs.Float64("max-regress", 0.30, "maximum tolerated relative regression per metric")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baseline == "" || *candidate == "" {
		return errors.New("both -baseline and -candidate are required")
	}
	if *maxReg <= 0 {
		return fmt.Errorf("-max-regress must be positive (got %v)", *maxReg)
	}

	compared, envSkipped := 0, 0
	var regressions []string
	for _, m := range metrics {
		base, ok, err := readField(filepath.Join(*baseline, m.file), m.field)
		if err != nil {
			return err
		}
		if !ok {
			fmt.Printf("skip  %-22s %-24s (no baseline)\n", m.file, m.field)
			continue
		}
		cand, ok, err := readField(filepath.Join(*candidate, m.file), m.field)
		if err != nil {
			return err
		}
		if !ok {
			fmt.Printf("skip  %-22s %-24s (not regenerated in this run)\n", m.file, m.field)
			continue
		}
		// Absolute throughput/latency numbers do not transfer across CPU
		// counts (a 1-CPU baseline undershoots an 8-CPU runner and vice
		// versa), so records that stamp num_cpu on both sides are only
		// compared when the counts match. Records predating the stamp
		// keep the old always-compare semantics.
		if mismatch, bCPU, cCPU := cpuMismatch(filepath.Join(*baseline, m.file), filepath.Join(*candidate, m.file)); mismatch {
			envSkipped++
			fmt.Printf("skip  %-22s %-24s (cpu count mismatch: baseline %d, candidate %d)\n", m.file, m.field, bCPU, cCPU)
			continue
		}
		// A ledger debit sits on the serving query path, so throughput
		// against an in-memory ledger, a local WAL, and a remote
		// sequencer are three different workloads. Records that stamp
		// ledger_backend on both sides are only compared when the
		// backends match; records predating the stamp keep the old
		// always-compare semantics.
		if mismatch, bBack, cBack := backendMismatch(filepath.Join(*baseline, m.file), filepath.Join(*candidate, m.file)); mismatch {
			envSkipped++
			fmt.Printf("skip  %-22s %-24s (ledger backend mismatch: baseline %q, candidate %q)\n", m.file, m.field, bBack, cBack)
			continue
		}
		compared++
		delta := (cand - base) / base
		worse := delta
		if m.higher {
			worse = -delta
		}
		status := "ok   "
		if worse > *maxReg {
			status = "REGR "
			regressions = append(regressions,
				fmt.Sprintf("%s %s: baseline %.4g, candidate %.4g (%+.1f%%)", m.file, m.field, base, cand, 100*delta))
		}
		fmt.Printf("%s %-22s %-24s baseline %14.4g  candidate %14.4g  %+7.1f%%\n",
			status, m.file, m.field, base, cand, 100*delta)
	}
	if compared == 0 {
		if envSkipped > 0 {
			fmt.Printf("benchdiff: WARNING: all %d present metric(s) skipped on environment mismatch; nothing gated this run\n", envSkipped)
			return nil
		}
		return errors.New("no metrics compared: check the -baseline and -candidate paths")
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d metric(s) regressed beyond %.0f%%:\n  %s",
			len(regressions), *maxReg*100, strings.Join(regressions, "\n  "))
	}
	fmt.Printf("benchdiff: %d metric(s) within %.0f%% of baseline\n", compared, *maxReg*100)
	return nil
}

// cpuMismatch reports whether both records carry a num_cpu stamp and
// the counts differ. Either side missing the stamp (older records, or a
// missing file — the caller already resolved presence) means no
// mismatch: the comparison proceeds under the pre-stamp semantics.
func cpuMismatch(basePath, candPath string) (mismatch bool, baseCPU, candCPU int) {
	b, bok := readCPU(basePath)
	c, cok := readCPU(candPath)
	if bok && cok && b != c {
		return true, b, c
	}
	return false, b, c
}

// readCPU extracts a record's num_cpu stamp when present and positive.
func readCPU(path string) (int, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false
	}
	var rec struct {
		NumCPU float64 `json:"num_cpu"`
	}
	if json.Unmarshal(data, &rec) != nil || rec.NumCPU <= 0 {
		return 0, false
	}
	return int(rec.NumCPU), true
}

// backendMismatch reports whether both records stamp a ledger_backend
// and the stamps differ. Either side missing the stamp (older records)
// means no mismatch, matching cpuMismatch's pre-stamp semantics.
func backendMismatch(basePath, candPath string) (mismatch bool, baseBack, candBack string) {
	b, bok := readBackend(basePath)
	c, cok := readBackend(candPath)
	if bok && cok && b != c {
		return true, b, c
	}
	return false, b, c
}

// readBackend extracts a record's ledger_backend stamp when present and
// non-empty.
func readBackend(path string) (string, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", false
	}
	var rec struct {
		LedgerBackend string `json:"ledger_backend"`
	}
	if json.Unmarshal(data, &rec) != nil || rec.LedgerBackend == "" {
		return "", false
	}
	return rec.LedgerBackend, true
}

// readField extracts one numeric field from a JSON record file. A
// missing file or missing field reports ok=false (skipped); malformed
// JSON or a non-numeric field is an error.
func readField(path, field string) (float64, bool, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	var rec map[string]any
	if err := json.Unmarshal(data, &rec); err != nil {
		return 0, false, fmt.Errorf("parsing %s: %w", path, err)
	}
	v, ok := rec[field]
	if !ok {
		return 0, false, nil
	}
	f, ok := v.(float64)
	if !ok {
		return 0, false, fmt.Errorf("%s: field %q is %T, want number", path, field, v)
	}
	if f <= 0 {
		return 0, false, fmt.Errorf("%s: field %q = %v, want a positive number", path, field, f)
	}
	return f, true, nil
}
