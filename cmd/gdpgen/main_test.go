package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

func TestRunPresetTSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.tsv")
	if err := run([]string{"-preset", "dblp-tiny", "-seed", "3", "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := repro.LoadTSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 10000 {
		t.Errorf("edges = %d", g.NumEdges())
	}
}

func TestRunPresetBinary(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.bpg")
	if err := run([]string{"-preset", "dblp-tiny", "-seed", "3", "-format", "binary", "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := repro.DecodeBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 10000 {
		t.Errorf("edges = %d", g.NumEdges())
	}
}

func TestRunCustomSizes(t *testing.T) {
	out := filepath.Join(t.TempDir(), "c.tsv")
	err := run([]string{"-left", "30", "-right", "40", "-edges", "100", "-labels", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "left/") {
		t.Error("labels flag did not produce named output")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-preset", "bogus"},
		{"-preset", "dblp-tiny", "-format", "nope"},
		{"-left", "0", "-right", "0", "-edges", "5"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
