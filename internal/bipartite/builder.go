package bipartite

import (
	"errors"
	"fmt"
	"sort"
)

// Builder accumulates association records and produces an immutable Graph.
// It deduplicates repeated edges, sorts adjacency lists, and can intern
// string labels so data can be added either by dense integer id or by
// name. The zero value is ready to use.
type Builder struct {
	edges []Edge

	numLeft  int32
	numRight int32

	leftIndex  map[string]int32
	rightIndex map[string]int32
	leftNames  []string
	rightNames []string
}

// NewBuilder returns an empty Builder with capacity hints for the expected
// number of edges.
func NewBuilder(edgeCapacity int) *Builder {
	if edgeCapacity < 0 {
		edgeCapacity = 0
	}
	return &Builder{edges: make([]Edge, 0, edgeCapacity)}
}

// AddEdge records the association (l, r) by dense id, growing the node
// ranges as needed. Negative ids are rejected at Build time.
func (b *Builder) AddEdge(l, r int32) {
	b.edges = append(b.edges, Edge{Left: l, Right: r})
	if l >= b.numLeft {
		b.numLeft = l + 1
	}
	if r >= b.numRight {
		b.numRight = r + 1
	}
}

// AddAssociation records an association between named entities, interning
// the names into dense ids. Mixing AddAssociation and AddEdge in one
// builder is rejected at Build time because the id spaces would collide.
func (b *Builder) AddAssociation(leftName, rightName string) {
	if b.leftIndex == nil {
		b.leftIndex = make(map[string]int32)
		b.rightIndex = make(map[string]int32)
	}
	l, ok := b.leftIndex[leftName]
	if !ok {
		l = int32(len(b.leftNames))
		b.leftIndex[leftName] = l
		b.leftNames = append(b.leftNames, leftName)
	}
	r, ok := b.rightIndex[rightName]
	if !ok {
		r = int32(len(b.rightNames))
		b.rightIndex[rightName] = r
		b.rightNames = append(b.rightNames, rightName)
	}
	b.AddEdge(l, r)
}

// SetNumLeft forces the left side to contain at least n nodes, so isolated
// nodes (entities with no associations) can be represented.
func (b *Builder) SetNumLeft(n int32) {
	if n > b.numLeft {
		b.numLeft = n
	}
}

// SetNumRight forces the right side to contain at least n nodes.
func (b *Builder) SetNumRight(n int32) {
	if n > b.numRight {
		b.numRight = n
	}
}

// NumEdgesAdded returns the number of AddEdge/AddAssociation calls so far
// (before deduplication).
func (b *Builder) NumEdgesAdded() int { return len(b.edges) }

// ErrMixedIDSpaces reports a builder that received both named and raw-id
// records.
var ErrMixedIDSpaces = errors.New("bipartite: builder mixed AddAssociation and AddEdge id spaces")

// Build sorts, deduplicates and freezes the accumulated records into a
// Graph. The builder remains usable afterwards; Build copies what it needs.
func (b *Builder) Build() (*Graph, error) {
	if b.leftNames != nil {
		// Named mode: every id must have come from interning.
		if int(b.numLeft) > len(b.leftNames) || int(b.numRight) > len(b.rightNames) {
			return nil, ErrMixedIDSpaces
		}
	}
	for _, e := range b.edges {
		if e.Left < 0 || e.Right < 0 {
			return nil, fmt.Errorf("bipartite: negative node id in edge (%d,%d)", e.Left, e.Right)
		}
	}

	edges := make([]Edge, len(b.edges))
	copy(edges, b.edges)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Left != edges[j].Left {
			return edges[i].Left < edges[j].Left
		}
		return edges[i].Right < edges[j].Right
	})
	edges = dedupSorted(edges)

	g := &Graph{numLeft: b.numLeft, numRight: b.numRight}
	g.leftOff, g.leftAdj = buildCSR(edges, int(b.numLeft), func(e Edge) (int32, int32) { return e.Left, e.Right })

	// Re-sort by right-major order to build the reverse CSR.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Right != edges[j].Right {
			return edges[i].Right < edges[j].Right
		}
		return edges[i].Left < edges[j].Left
	})
	g.rightOff, g.rightAdj = buildCSR(edges, int(b.numRight), func(e Edge) (int32, int32) { return e.Right, e.Left })

	if b.leftNames != nil {
		g.leftNames = append([]string(nil), b.leftNames...)
		g.rightNames = append([]string(nil), b.rightNames...)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// dedupSorted removes duplicates from a slice sorted in left-major order.
func dedupSorted(edges []Edge) []Edge {
	if len(edges) == 0 {
		return edges
	}
	out := edges[:1]
	for _, e := range edges[1:] {
		if last := out[len(out)-1]; e != last {
			out = append(out, e)
		}
	}
	return out
}

// buildCSR builds offset and adjacency arrays for edges sorted by the key
// side extracted by key.
func buildCSR(edges []Edge, n int, key func(Edge) (from, to int32)) (off []int64, adj []int32) {
	off = make([]int64, n+1)
	adj = make([]int32, len(edges))
	for _, e := range edges {
		from, _ := key(e)
		off[from+1]++
	}
	for i := 1; i <= n; i++ {
		off[i] += off[i-1]
	}
	cursor := make([]int64, n)
	for _, e := range edges {
		from, to := key(e)
		adj[off[from]+cursor[from]] = to
		cursor[from]++
	}
	return off, adj
}

// FromEdges is a convenience constructor that builds a Graph from a slice
// of edges with explicit side sizes.
func FromEdges(numLeft, numRight int32, edges []Edge) (*Graph, error) {
	b := NewBuilder(len(edges))
	b.SetNumLeft(numLeft)
	b.SetNumRight(numRight)
	for _, e := range edges {
		if e.Left >= numLeft || e.Right >= numRight {
			return nil, fmt.Errorf("bipartite: edge (%d,%d) outside declared sides (%d,%d)",
				e.Left, e.Right, numLeft, numRight)
		}
		b.AddEdge(e.Left, e.Right)
	}
	return b.Build()
}
