// Package hierarchy builds and represents the multi-level group structure
// produced by the paper's Phase-1 specialization.
//
// Each side of the bipartite graph carries a binary bisection tree: one
// specialization round splits every current node group of the left side in
// two and every current node group of the right side in two, each cut
// chosen by a partition.Bisector (the exponential mechanism in the private
// configuration). This realizes the paper's "each group in level i is
// split to 4 subgroups in level i−1; two sub groups correspond to the left
// side nodes of the bipartite graph and the other two sub groups refer to
// the right side nodes".
//
// Two group semantics are derived from the side trees (DESIGN.md §2):
//
//   - Cell model (primary): the level-ℓ groups of the record universe are
//     the crossings (Li, Rj) of the 2^d left ranges and 2^d right ranges
//     at depth d = MaxLevel − ℓ. A cell's records are the associations
//     between its two ranges; cells partition the record universe at every
//     level, exactly the structure Definition 3 (group-level adjacency)
//     ranges over. Count-query sensitivity at a level is the largest cell.
//
//   - Node-group model (ablation A4): the groups are the side ranges
//     themselves, and removing a group removes all associations incident
//     to its nodes; sensitivity is the largest incident-edge sum.
//
// Levels follow the paper's numbering: the root (entire dataset) sits at
// level MaxLevel and groups get four times smaller per level down; with
// the paper's nine rounds the root is level 9 and level 0 is the finest.
//
// Representation: per side, a permutation of node ids plus, per depth, the
// boundaries of the 2^d contiguous ranges over that permutation. Splits
// reorder nodes only inside their own range, so deeper levels strictly
// refine shallower ones and all levels share one permutation.
//
// # Builder reuse
//
// Build allocates position-indexed scratch (items, weights, radix keys)
// and, when Options.Workers > 1, a worker pool — costs that repeated-
// trial experiments pay per build. A Builder retains both across builds:
// construct once with NewBuilder, call Builder.Build per trial (buffers
// grow to the largest side seen and stay), and Close when done. Build
// itself is a thin wrapper that creates and closes a throwaway Builder,
// and a reused Builder produces trees bit-identical to fresh Build calls
// (pinned by TestBuilderReuseMatchesFreshBuild). A Builder is NOT safe
// for concurrent use; fan trial parallelism out with one Builder per
// goroutine.
//
// # Complexity and parallelism
//
// Build runs in O(E + n·log n + n·rounds + Σ_d 4^d) time: the per-cell
// record counts are computed once at the deepest level in a single scan
// of the edge array (zero-callback CSR view, sharded across
// Options.Workers goroutines with per-worker count buffers merged at the
// end) and every coarser level is derived by summing 2×2 child blocks
// bottom-up — never by rescanning edges. The bisector ordering is a
// static total order (degree descending, node id ascending), so each side
// is sorted once in the first round and every deeper range — a contiguous
// span of a sorted span — needs no further preparation: its weights are
// read straight from a position-indexed weight array maintained alongside
// the permutation. Per-side degree prefix sums over the final permutation
// make SideGroupIncidentEdges O(groups) per call. Range preparation, when
// it does run, reuses two position-indexed scratch buffers for the whole
// build and fans out over one worker pool that stays alive across all
// rounds; only the cut decisions are serial, in range order, so
// randomized bisectors consume their stream deterministically and the
// built tree is bit-identical for every worker count.
package hierarchy

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"

	"repro/internal/bipartite"
	"repro/internal/partition"
)

// MaxRounds caps tree depth; 4^12 cells is the largest level a dense
// per-level cell matrix can reasonably hold.
const MaxRounds = 12

// maxShardCells caps the combined size of the per-worker count buffers
// the sharded deepest-level scan allocates (in int64 cells). Past it the
// scan falls back to a single pass: at that depth the merge and the
// buffers themselves would cost more than the edge scan saves.
const maxShardCells = 1 << 24

// minShardEdges is the edge count below which sharding the cell scan is
// not worth the goroutine handoff.
const minShardEdges = 1 << 14

// Order controls how a range's nodes are arranged before the bisector
// chooses a prefix cut.
type Order int

// Orderings. OrderWeightDesc sorts nodes by degree descending with a
// deterministic tie-break on node id, which lets balance-seeking bisectors
// find good cuts; OrderNatural keeps the current permutation order.
const (
	OrderWeightDesc Order = iota + 1
	OrderNatural
)

// Valid reports whether o is a known ordering.
func (o Order) Valid() bool { return o == OrderWeightDesc || o == OrderNatural }

// OrderKeys is an explicit static ordering over both node sides: node n
// of a side sorts by its key ascending (node id breaks ties), replacing
// the Order-based arrangement for every range of every round. Keys let
// partitioners impose externally computed structure — a community
// assignment, say — on the contiguous ranges the bisector cuts. The
// slices must be indexed by node id and match the side sizes; they are
// read during the build and must not be mutated concurrently.
type OrderKeys struct {
	Left  []uint64
	Right []uint64
}

// Options configures Build.
type Options struct {
	// Rounds is the number of specialization rounds; the resulting tree
	// has Rounds+1 levels with the root at level Rounds. Must be in
	// [1, MaxRounds].
	Rounds int
	// Bisector chooses every cut. Required.
	Bisector partition.Bisector
	// Order arranges range nodes before cutting; defaults to
	// OrderWeightDesc.
	Order Order
	// Keys, when non-nil, overrides Order with an explicit per-node
	// static ordering (see OrderKeys).
	Keys *OrderKeys
	// Workers parallelizes the per-range weight computation and ordering,
	// and shards the deepest-level cell scan, across goroutines. Cut
	// decisions remain serial in range order, so the built tree is
	// identical for any worker count. Values < 2 run single-threaded.
	Workers int
}

// Errors returned by Build and the accessors.
var (
	ErrNilGraph    = errors.New("hierarchy: nil graph")
	ErrNilBisector = errors.New("hierarchy: nil bisector")
	ErrBadRounds   = errors.New("hierarchy: rounds must be in [1, 12]")
	ErrBadLevel    = errors.New("hierarchy: level out of range")
	ErrBadKeys     = errors.New("hierarchy: ordering keys do not match side sizes")
	ErrInvalid     = errors.New("hierarchy: invalid tree")
)

// sideTree is the recursive bisection of one node side.
type sideTree struct {
	perm []int32 // position -> node id
	pos  []int32 // node id -> position
	// deg[node] is the node's degree. It is the only per-node input the
	// specialization consumes, which is what lets the streamed build run
	// without a Graph: pass 1 of BuildFromEdges fills it from edge chunks,
	// the graph path copies it out of the CSR offsets.
	deg []int64
	// bounds[d] holds the 2^d+1 range boundaries at depth d:
	// range i spans positions [bounds[d][i], bounds[d][i+1]).
	bounds [][]int32
	// weightByPos[p] is the degree of perm[p], maintained alongside every
	// permutation write so range weights never need a fresh lookup pass.
	weightByPos []int64
	// inOrder records that every current range already sits in bisector
	// order. Ordering is a static total order (degree desc, node asc — or
	// key asc when orderKeys is set), so once one specialization round
	// has sorted the side, every deeper range is a contiguous span of a
	// sorted span and stays sorted; from then on splitting skips
	// preparation entirely.
	inOrder bool
	// orderKeys, when non-nil, is the per-node key array of an explicit
	// static ordering (Options.Keys); ranges sort by key ascending
	// instead of by weight.
	orderKeys []uint64
	// degPrefix[p] is the summed degree of perm[0:p] under the final
	// permutation, so any depth's group-incident-edge sums are boundary
	// differences. Filled by finalize.
	degPrefix []int64
}

// Tree is the built hierarchy. It is immutable after Build.
type Tree struct {
	// graph is the backing graph for in-memory builds and decoded trees;
	// it is nil for trees built through BuildFromEdges, whose accessors
	// all run off the side trees' degree and cell state instead.
	graph    *bipartite.Graph
	maxLevel int

	left  sideTree
	right sideTree

	// cells[d] is the row-major (2^d)x(2^d) matrix of per-cell record
	// counts at depth d. Only cells[maxDepth] is counted from edges; every
	// coarser matrix is the 2×2 block aggregation of its child.
	cells [][]int64
	// maxCells[d] caches the largest entry of cells[d], so the cell-model
	// sensitivity — consulted by every Phase-2 release — is O(1) instead
	// of a 4^d scan per query.
	maxCells []int64
	// cells32[d] is the int32 image of cells[d], materialized at finalize
	// for every depth whose largest cell fits int32 (nil otherwise). The
	// Phase-2 add pass reads counts once per release; serving them as
	// 4-byte values halves that pass's memory traffic on the dominant
	// deepest level (2 MB → 1 MB at 4^9 cells), which is where the
	// release spends its bandwidth budget. Coarser depths aggregate
	// larger counts, so the fit is decided per depth, not per tree.
	cells32 [][]int32

	privateCuts int
}

// Build runs Phase-1 specialization and returns the tree. It is a thin
// wrapper over a throwaway Builder; repeated-build callers (experiment
// trials, pipelines rerun on many graphs) should hold a Builder instead
// so the scratch buffers and worker pool survive between builds.
func Build(g *bipartite.Graph, opts Options) (*Tree, error) {
	b := NewBuilder()
	defer b.Close()
	return b.Build(g, opts)
}

// Builder runs specialization builds while retaining the position-indexed
// scratch buffers and the worker pool across calls, so repeated builds
// (one per experiment trial) stop paying per-build allocation and
// goroutine startup. The zero value is not usable; construct with
// NewBuilder and Close when done to release the pool's goroutines.
//
// A Builder is NOT safe for concurrent use: give each trial-fanning
// goroutine its own Builder. Trees built through a reused Builder are
// bit-identical to ones from fresh Build calls.
type Builder struct {
	// Retained across builds: two position-indexed scratch buffers (the
	// ranges of any one depth are disjoint [lo, hi) position spans, so
	// concurrent workers write disjoint subslices without
	// synchronization), the radix-sort key buffers, and the worker pool.
	items   []rangeItem // node+weight per position of the side being split
	weights []int64     // weights in prepared order, the bisector's input
	keys    []uint64    // radix-sort keys, position-indexed like items
	tmpKeys []uint64    // radix-sort ping-pong buffer

	pool        *workerPool
	poolWorkers int

	// Per-build state, reset by begin.
	opts    Options
	private bool        // Bisector spends budget per cut (partition.PrivacyConsumer)
	curPool *workerPool // pool for the current build; nil when Workers < 2
}

// NewBuilder returns an empty Builder; the first Build sizes its scratch.
func NewBuilder() *Builder { return &Builder{} }

// Close releases the retained worker pool's goroutines. The Builder
// remains usable: a later Build recreates the pool on demand.
func (b *Builder) Close() {
	if b.pool != nil {
		b.pool.close()
		b.pool = nil
		b.poolWorkers = 0
	}
}

// normalizeOptions validates opts and fills defaults; shared by the graph
// and streamed build entry points.
func normalizeOptions(opts *Options) error {
	if opts.Bisector == nil {
		return ErrNilBisector
	}
	if opts.Rounds < 1 || opts.Rounds > MaxRounds {
		return fmt.Errorf("%w (got %d)", ErrBadRounds, opts.Rounds)
	}
	if opts.Order == 0 {
		opts.Order = OrderWeightDesc
	}
	if !opts.Order.Valid() {
		return fmt.Errorf("hierarchy: unknown order %d", opts.Order)
	}
	return nil
}

// Build runs Phase-1 specialization and returns the tree, reusing the
// Builder's scratch and pool from previous calls.
func (b *Builder) Build(g *bipartite.Graph, opts Options) (*Tree, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	if err := normalizeOptions(&opts); err != nil {
		return nil, err
	}

	t := &Tree{
		graph:    g,
		maxLevel: opts.Rounds,
		left:     newSideTree(g.NumLeft()),
		right:    newSideTree(g.NumRight()),
	}
	t.left.deg = g.Degrees(bipartite.Left)
	t.right.deg = g.Degrees(bipartite.Right)
	t.left.initWeights(opts.Order)
	t.right.initWeights(opts.Order)
	if err := t.applyOrderKeys(opts.Keys); err != nil {
		return nil, err
	}
	if err := b.runSplits(t, opts); err != nil {
		return nil, err
	}
	t.finalize(opts.Workers)
	return t, nil
}

// runSplits executes every specialization round — the part of a build that
// is identical whether the edges live in a Graph or behind an EdgeSource,
// because cuts consume only the per-node degrees captured in the side
// trees.
func (b *Builder) runSplits(t *Tree, opts Options) error {
	b.begin(t, opts)
	for d := 0; d < opts.Rounds; d++ {
		if err := t.splitDepth(&t.left, bipartite.Left, d, b); err != nil {
			return fmt.Errorf("hierarchy: splitting left side at depth %d: %w", d, err)
		}
		if err := t.splitDepth(&t.right, bipartite.Right, d, b); err != nil {
			return fmt.Errorf("hierarchy: splitting right side at depth %d: %w", d, err)
		}
	}
	return nil
}

// begin readies the Builder for one build: grows the scratch to the
// larger side, resolves the privacy-consumer flag, and selects the pool
// (recreated only when the requested worker count changed).
func (b *Builder) begin(t *Tree, opts Options) {
	n := len(t.left.perm)
	if r := len(t.right.perm); r > n {
		n = r
	}
	if n > len(b.items) {
		b.items = make([]rangeItem, n)
		b.weights = make([]int64, n)
		b.keys = make([]uint64, n)
		b.tmpKeys = make([]uint64, n)
	}
	b.opts = opts
	b.private = false
	if pc, ok := opts.Bisector.(partition.PrivacyConsumer); ok {
		b.private = pc.Private()
	}
	b.curPool = nil
	if opts.Workers > 1 {
		if b.pool == nil || b.poolWorkers != opts.Workers {
			if b.pool != nil {
				b.pool.close()
			}
			b.pool = newWorkerPool(opts.Workers)
			b.poolWorkers = opts.Workers
		}
		b.curPool = b.pool
	}
}

func newSideTree(n int) sideTree {
	st := sideTree{
		perm:   make([]int32, n),
		pos:    make([]int32, n),
		bounds: [][]int32{{0, int32(n)}},
	}
	for i := 0; i < n; i++ {
		st.perm[i] = int32(i)
		st.pos[i] = int32(i)
	}
	return st
}

// initWeights fills weightByPos from st.deg for the initial identity
// permutation. OrderNatural keeps permutation order, so the side starts in
// bisector order; OrderWeightDesc needs one sorting pass first.
func (st *sideTree) initWeights(order Order) {
	st.weightByPos = make([]int64, len(st.perm))
	for p, node := range st.perm {
		st.weightByPos[p] = st.deg[node]
	}
	st.inOrder = order == OrderNatural
}

// setOrderKeys installs an explicit static ordering for the side: the
// first split round sorts every range by key ascending, after which the
// usual sorted-span invariant holds.
func (st *sideTree) setOrderKeys(keys []uint64) error {
	if len(keys) != len(st.perm) {
		return fmt.Errorf("%w: got %d keys for a %d-node side", ErrBadKeys, len(keys), len(st.perm))
	}
	st.orderKeys = keys
	st.inOrder = false
	return nil
}

// applyOrderKeys wires Options.Keys into both sides; shared by the graph
// and streamed builds.
func (t *Tree) applyOrderKeys(keys *OrderKeys) error {
	if keys == nil {
		return nil
	}
	if err := t.left.setOrderKeys(keys.Left); err != nil {
		return fmt.Errorf("left side: %w", err)
	}
	if err := t.right.setOrderKeys(keys.Right); err != nil {
		return fmt.Errorf("right side: %w", err)
	}
	return nil
}

// rangeItem pairs a node with its weight during range preparation.
type rangeItem struct {
	node   int32
	weight int64
}

// compareItems orders by weight descending with a deterministic node-id
// tie-break: a total order, so any (unstable) sort yields the same
// permutation.
func compareItems(a, b rangeItem) int {
	switch {
	case a.weight > b.weight:
		return -1
	case a.weight < b.weight:
		return 1
	default:
		return int(a.node) - int(b.node)
	}
}

// workerPool is a fixed set of goroutines that processes integer-indexed
// task batches. One pool serves every split round of a Build, so range
// preparation spawns goroutines once, not per depth. (The final cell
// scan manages its own short-lived goroutines instead: finalize also
// runs for decoded trees, which never have a pool.)
type workerPool struct {
	tasks chan int
	wg    sync.WaitGroup
	run   func(int)
}

func newWorkerPool(workers int) *workerPool {
	p := &workerPool{tasks: make(chan int, 4*workers)}
	for w := 0; w < workers; w++ {
		go func() {
			for i := range p.tasks {
				p.run(i)
				p.wg.Done()
			}
		}()
	}
	return p
}

// dispatch runs run(0..n-1) across the pool and returns when all calls
// completed. It must not be called concurrently with itself: the previous
// batch's wg.Wait orders all worker reads of p.run before the next write.
func (p *workerPool) dispatch(n int, run func(int)) {
	p.run = run
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		p.tasks <- i
	}
	p.wg.Wait()
}

func (p *workerPool) close() { close(p.tasks) }

// splitDepth refines every depth-d range of one side into two, appending
// the depth d+1 boundaries. On an unordered side, preparation (weight
// lookup and ordering) is pure per range and fans out across the pool;
// once the side is in bisector order — after the first OrderWeightDesc
// round, or from the start for OrderNatural — preparation vanishes and
// each range's weights are read straight from weightByPos. The cut
// decisions always run serially in range order so randomized bisectors
// consume their stream deterministically.
func (t *Tree) splitDepth(st *sideTree, side bipartite.Side, d int, bs *Builder) error {
	cur := st.bounds[d]
	nRanges := len(cur) - 1

	reorder := !st.inOrder
	if reorder {
		if bs.curPool != nil && nRanges > 1 {
			bs.curPool.dispatch(nRanges, func(i int) {
				t.prepareRange(st, cur[i], cur[i+1], bs)
			})
		} else {
			for i := 0; i < nRanges; i++ {
				t.prepareRange(st, cur[i], cur[i+1], bs)
			}
		}
	}

	next := make([]int32, 0, 2*nRanges+1)
	for i := 0; i < nRanges; i++ {
		lo, hi := cur[i], cur[i+1]
		cut, err := t.applyCut(st, lo, hi, reorder, bs)
		if err != nil {
			return fmt.Errorf("range %d [%d,%d): %w", i, lo, hi, err)
		}
		next = append(next, lo, lo+int32(cut))
	}
	next = append(next, cur[nRanges])
	st.bounds = append(st.bounds, next)
	// Ordering is a static total order over nodes, so the freshly written
	// (or verified) ranges and every contiguous subrange of them remain in
	// order for all deeper rounds.
	st.inOrder = true
	return nil
}

// radixMinLen is the range size below which the comparison sort beats the
// radix sort's fixed bucket overhead.
const radixMinLen = 128

// prepareRange sorts the items of [lo, hi) into the shared scratch. It
// reads only immutable state (graph degrees, the current permutation
// span) and writes only its own position span, so disjoint ranges prepare
// concurrently. Large ranges with 32-bit weight spread take an LSD radix
// sort over a packed (weight desc, node asc) key — the same total order
// compareItems defines, so the result is identical.
func (t *Tree) prepareRange(st *sideTree, lo, hi int32, bs *Builder) {
	if hi <= lo {
		return
	}
	items := bs.items[lo:hi]
	var maxWeight int64
	for i := range items {
		p := lo + int32(i)
		w := st.weightByPos[p]
		items[i] = rangeItem{node: st.perm[p], weight: w}
		if w > maxWeight {
			maxWeight = w
		}
	}
	if keys := st.orderKeys; keys != nil {
		// An explicit static ordering: key ascending, node id tie-break
		// (the same shape of total order, so the sorted-span invariant
		// holds for deeper rounds). Arbitrary 64-bit keys skip the radix
		// path, which packs weights into 32 bits.
		slices.SortFunc(items, func(a, b rangeItem) int {
			ka, kb := keys[a.node], keys[b.node]
			switch {
			case ka < kb:
				return -1
			case ka > kb:
				return 1
			default:
				return int(a.node) - int(b.node)
			}
		})
	} else if len(items) >= radixMinLen && maxWeight < 1<<31 {
		radixSortItems(items, bs.keys[lo:hi], bs.tmpKeys[lo:hi], maxWeight)
	} else {
		slices.SortFunc(items, compareItems)
	}
	weights := bs.weights[lo:hi]
	for i := range items {
		weights[i] = items[i].weight
	}
}

// radixSortItems sorts items by (weight desc, node asc) via an LSD radix
// sort on the packed 64-bit key (maxWeight−weight)<<32 | node, whose
// ascending order is exactly compareItems' total order. Digit histograms
// are gathered in one pass and passes whose digit is constant across all
// keys are skipped, so a typical degree distribution costs 4–5 scatter
// passes. keys and tmp are caller scratch of len(items).
func radixSortItems(items []rangeItem, keys, tmp []uint64, maxWeight int64) {
	for i, it := range items {
		keys[i] = uint64(maxWeight-it.weight)<<32 | uint64(uint32(it.node))
	}
	var counts [8][256]int32
	for _, k := range keys {
		for b := 0; b < 8; b++ {
			counts[b][(k>>(8*b))&0xff]++
		}
	}
	n := int32(len(keys))
	src, dst := keys, tmp
	for b := 0; b < 8; b++ {
		c := &counts[b]
		if c[(src[0]>>(8*b))&0xff] == n {
			continue // every key shares this digit
		}
		var sum int32
		for d := 0; d < 256; d++ {
			c[d], sum = sum, sum+c[d]
		}
		for _, k := range src {
			d := (k >> (8 * b)) & 0xff
			dst[c[d]] = k
			c[d]++
		}
		src, dst = dst, src
	}
	for i, k := range src {
		items[i] = rangeItem{node: int32(uint32(k)), weight: maxWeight - int64(k>>32)}
	}
}

// applyCut asks the bisector for a cut over the range's ordered weights
// and, when the range was freshly prepared, writes the order back into
// the permutation. Ranges with fewer than two nodes return their size (an
// empty second part).
func (t *Tree) applyCut(st *sideTree, lo, hi int32, reorder bool, bs *Builder) (int, error) {
	n := int(hi - lo)
	if n < 2 {
		// 0- and 1-item ranges cannot be cut; a 1-item "sort" is already
		// the identity, so there is nothing to write back either.
		return n, nil
	}
	weights := st.weightByPos[lo:hi]
	if reorder {
		weights = bs.weights[lo:hi]
	}
	cut, err := bs.opts.Bisector.Bisect(weights)
	if err != nil {
		return 0, err
	}
	if bs.private {
		t.privateCuts++
	}
	if reorder {
		for i, it := range bs.items[lo:hi] {
			p := lo + int32(i)
			st.perm[p] = it.node
			st.pos[it.node] = p
			st.weightByPos[p] = it.weight
		}
	}
	return cut, nil
}

// finalize derives everything Build's accessors serve: the deepest cell
// matrix from one sharded edge scan, every coarser matrix by 2×2 block
// aggregation, and the per-side degree prefix sums. DecodeBinary calls it
// too, so decoded trees answer queries through the same fast paths. The
// streamed build runs finalizeFromSource instead, which computes the same
// state from edge chunks.
func (t *Tree) finalize(workers int) {
	t.computeCells(workers)
	t.left.computeDegreePrefix()
	t.right.computeDegreePrefix()
}

// computeCells fills the per-depth cell count matrices: one edge scan at
// the deepest level, then bottom-up aggregation. Total work is
// O(E + Σ_d 4^d) regardless of depth count.
func (t *Tree) computeCells(workers int) {
	dmax := len(t.left.bounds) - 1
	k := 1 << dmax
	leftGroup := t.left.groupOfNode(dmax)
	rightGroup := t.right.groupOfNode(dmax)
	t.setCells(t.scanCells(k, leftGroup, rightGroup, workers))
}

// setCells installs the deepest-level cell matrix and derives every
// coarser matrix plus the per-depth maxima from it — the aggregation tail
// shared by the graph scan and the streamed scan.
func (t *Tree) setCells(deepest []int64) {
	depths := len(t.left.bounds)
	t.cells = make([][]int64, depths)
	t.cells[depths-1] = deepest
	for d := depths - 1; d > 0; d-- {
		t.cells[d-1] = aggregateCells(t.cells[d], 1<<d)
	}
	t.maxCells = make([]int64, depths)
	t.cells32 = make([][]int32, depths)
	for d, cells := range t.cells {
		var max int64
		for _, c := range cells {
			if c > max {
				max = c
			}
		}
		t.maxCells[d] = max
		if max <= math.MaxInt32 {
			narrow := make([]int32, len(cells))
			for i, c := range cells {
				narrow[i] = int32(c)
			}
			t.cells32[d] = narrow
		}
	}
}

// scanCells counts edges into a k×k matrix using the zero-callback CSR
// view, sharded over contiguous edge spans when workers and the matrix
// size allow; per-worker buffers are merged at the end so no shard ever
// touches another's counts. Sharding only engages when the edge scan
// dominates: allocating and merging shards·k² counters must cost less
// than the scan it parallelizes, so sparse-but-deep levels stay serial.
func (t *Tree) scanCells(k int, leftGroup, rightGroup []int32, workers int) []int64 {
	counts := make([]int64, k*k)
	off, adj := t.graph.AdjacencyView(bipartite.Left)
	numEdges := int64(len(adj))
	shards := workers
	shardCells := int64(shards) * int64(k) * int64(k)
	if shards < 2 || numEdges < minShardEdges || shardCells > maxShardCells || shardCells > numEdges {
		countEdgeSpan(counts, off, adj, 0, numEdges, leftGroup, rightGroup, k)
		return counts
	}
	parts := make([][]int64, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo := numEdges * int64(s) / int64(shards)
		hi := numEdges * int64(s+1) / int64(shards)
		parts[s] = make([]int64, k*k)
		wg.Add(1)
		go func(buf []int64, lo, hi int64) {
			defer wg.Done()
			countEdgeSpan(buf, off, adj, lo, hi, leftGroup, rightGroup, k)
		}(parts[s], lo, hi)
	}
	wg.Wait()
	for _, part := range parts {
		for i, c := range part {
			counts[i] += c
		}
	}
	return counts
}

// countEdgeSpan counts edges [lo, hi) of the left-major edge array into
// counts. The owning left node of edge lo is found by binary search, then
// the scan is a straight walk over the adjacency slice.
func countEdgeSpan(counts []int64, off []int64, adj []int32, lo, hi int64, leftGroup, rightGroup []int32, k int) {
	if lo >= hi {
		return
	}
	l := sort.Search(len(off)-1, func(i int) bool { return off[i+1] > lo })
	for e := lo; e < hi; e++ {
		for e >= off[l+1] {
			l++
		}
		counts[int(leftGroup[l])*k+int(rightGroup[adj[e]])]++
	}
}

// aggregateCells derives the depth d−1 cell matrix from depth d: parent
// cell (i, j) is the sum of the 2×2 child block {2i, 2i+1}×{2j, 2j+1},
// because each side's depth-d ranges pairwise refine the depth d−1 ones.
func aggregateCells(child []int64, kc int) []int64 {
	kp := kc / 2
	parent := make([]int64, kp*kp)
	for i := 0; i < kp; i++ {
		top := child[2*i*kc : (2*i+1)*kc]
		bottom := child[(2*i+1)*kc : (2*i+2)*kc]
		row := parent[i*kp : (i+1)*kp]
		for j := 0; j < kp; j++ {
			row[j] = top[2*j] + top[2*j+1] + bottom[2*j] + bottom[2*j+1]
		}
	}
	return parent
}

// groupOfNode expands the depth-d range boundaries into a node-id →
// range-index lookup.
func (st *sideTree) groupOfNode(d int) []int32 {
	idx := make([]int32, len(st.perm))
	bounds := st.bounds[d]
	for i := 0; i < len(bounds)-1; i++ {
		for p := bounds[i]; p < bounds[i+1]; p++ {
			idx[st.perm[p]] = int32(i)
		}
	}
	return idx
}

// computeDegreePrefix fills degPrefix over the final permutation from the
// stored per-node degrees.
func (st *sideTree) computeDegreePrefix() {
	st.degPrefix = make([]int64, len(st.perm)+1)
	for p, node := range st.perm {
		st.degPrefix[p+1] = st.degPrefix[p] + st.deg[node]
	}
}

// Graph returns the underlying graph, or nil for a tree built through
// BuildFromEdges — streamed builds never materialize one. Every other
// accessor (counts, sensitivities, stats) works identically either way.
func (t *Tree) Graph() *bipartite.Graph { return t.graph }

// NumEdges returns the total number of association records the tree was
// built over, available whether or not a Graph backs the tree.
func (t *Tree) NumEdges() int64 { return t.left.degPrefix[len(t.left.degPrefix)-1] }

// DatasetStats summarizes the dataset from the per-node degrees captured
// at build time. For graph-backed trees it equals
// bipartite.ComputeStats(t.Graph()) bit for bit; for streamed trees it is
// the only dataset summary available.
func (t *Tree) DatasetStats() bipartite.Stats {
	return bipartite.StatsFromDegrees(t.left.deg, t.right.deg)
}

// MaxLevel returns the root's level number.
func (t *Tree) MaxLevel() int { return t.maxLevel }

// NumPrivateCuts returns how many budget-consuming cuts Build made (the
// bisector implemented partition.PrivacyConsumer and reported Private);
// the release pipeline multiplies it by the per-cut ε for accounting.
func (t *Tree) NumPrivateCuts() int { return t.privateCuts }

// DepthOfLevel converts a paper-style level number to tree depth.
func (t *Tree) DepthOfLevel(level int) (int, error) {
	d := t.maxLevel - level
	if d < 0 || d >= len(t.left.bounds) {
		return 0, fmt.Errorf("%w: level %d not in [0,%d]", ErrBadLevel, level, t.maxLevel)
	}
	return d, nil
}

// NumSideGroups returns the number of node groups per side at the level
// (2^depth).
func (t *Tree) NumSideGroups(level int) (int, error) {
	d, err := t.DepthOfLevel(level)
	if err != nil {
		return 0, err
	}
	return 1 << d, nil
}

// NumCells returns the number of record groups (cells) at the level
// (4^depth).
func (t *Tree) NumCells(level int) (int, error) {
	k, err := t.NumSideGroups(level)
	if err != nil {
		return 0, err
	}
	return k * k, nil
}

// CellEdges returns the record count of cell (i, j) at the level.
func (t *Tree) CellEdges(level, i, j int) (int64, error) {
	d, err := t.DepthOfLevel(level)
	if err != nil {
		return 0, err
	}
	k := 1 << d
	if i < 0 || i >= k || j < 0 || j >= k {
		return 0, fmt.Errorf("hierarchy: cell (%d,%d) outside %dx%d grid", i, j, k, k)
	}
	return t.cells[d][i*k+j], nil
}

// LevelCellCounts returns a copy of the row-major cell count matrix at the
// level.
func (t *Tree) LevelCellCounts(level int) ([]int64, error) {
	counts, err := t.LevelCellCountsView(level)
	if err != nil {
		return nil, err
	}
	return append([]int64(nil), counts...), nil
}

// LevelCellCountsView returns the level's row-major cell count matrix
// without copying. The slice is the Tree's internal storage (immutable
// after Build): callers must treat it as read-only. The zero-allocation
// Phase-2 release path reads counts through it instead of paying a
// 4^depth copy per release.
func (t *Tree) LevelCellCountsView(level int) ([]int64, error) {
	d, err := t.DepthOfLevel(level)
	if err != nil {
		return nil, err
	}
	return t.cells[d], nil
}

// LevelCellCounts32View returns the level's row-major cell count matrix
// as int32 values, without copying, when every count at the level fits
// — the narrow image finalize materializes so the Phase-2 add pass can
// read 4-byte counts and halve its memory traffic. It returns (nil,
// false) when the level's largest cell exceeds int32 (the release falls
// back to the int64 view); like LevelCellCountsView, the slice is
// internal storage and must be treated as read-only. The level must be
// valid: callers resolve it through LevelCellCountsView (or another
// level-checked accessor) first.
func (t *Tree) LevelCellCounts32View(level int) ([]int32, bool) {
	d, err := t.DepthOfLevel(level)
	if err != nil || t.cells32[d] == nil {
		return nil, false
	}
	return t.cells32[d], true
}

// CellOfEdge returns the cell coordinates containing association (l, r) at
// the level.
func (t *Tree) CellOfEdge(level int, l, r int32) (i, j int, err error) {
	d, err := t.DepthOfLevel(level)
	if err != nil {
		return 0, 0, err
	}
	if l < 0 || int(l) >= len(t.left.pos) || r < 0 || int(r) >= len(t.right.pos) {
		return 0, 0, fmt.Errorf("hierarchy: edge (%d,%d) out of range", l, r)
	}
	return findRange(t.left.bounds[d], t.left.pos[l]), findRange(t.right.bounds[d], t.right.pos[r]), nil
}

// findRange locates the range containing position p via binary search over
// the boundary array.
func findRange(bounds []int32, p int32) int {
	// bounds is sorted; find the last boundary <= p.
	idx := sort.Search(len(bounds), func(i int) bool { return bounds[i] > p }) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(bounds)-1 {
		idx = len(bounds) - 2
	}
	return idx
}

// SideGroupNodes materializes the node ids of side group i at the level.
func (t *Tree) SideGroupNodes(level int, side bipartite.Side, i int) ([]int32, error) {
	d, err := t.DepthOfLevel(level)
	if err != nil {
		return nil, err
	}
	st, err := t.sideTree(side)
	if err != nil {
		return nil, err
	}
	bounds := st.bounds[d]
	if i < 0 || i >= len(bounds)-1 {
		return nil, fmt.Errorf("hierarchy: side group %d outside [0,%d)", i, len(bounds)-1)
	}
	return append([]int32(nil), st.perm[bounds[i]:bounds[i+1]]...), nil
}

// SideGroupOfNode returns the index of the side group containing the node
// at the level.
func (t *Tree) SideGroupOfNode(level int, side bipartite.Side, node int32) (int, error) {
	d, err := t.DepthOfLevel(level)
	if err != nil {
		return 0, err
	}
	st, err := t.sideTree(side)
	if err != nil {
		return 0, err
	}
	if node < 0 || int(node) >= len(st.pos) {
		return 0, fmt.Errorf("hierarchy: node %d out of range", node)
	}
	return findRange(st.bounds[d], st.pos[node]), nil
}

func (t *Tree) sideTree(side bipartite.Side) (*sideTree, error) {
	switch side {
	case bipartite.Left:
		return &t.left, nil
	case bipartite.Right:
		return &t.right, nil
	default:
		return nil, fmt.Errorf("hierarchy: invalid side %v", side)
	}
}

// SideGroupIncidentEdges returns, per side group at the level, the number
// of associations incident to the group's nodes (the node-group model's
// group weight). Each group is one degree-prefix-sum difference, so a call
// costs O(groups), not O(nodes).
func (t *Tree) SideGroupIncidentEdges(level int, side bipartite.Side) ([]int64, error) {
	d, err := t.DepthOfLevel(level)
	if err != nil {
		return nil, err
	}
	st, err := t.sideTree(side)
	if err != nil {
		return nil, err
	}
	bounds := st.bounds[d]
	out := make([]int64, len(bounds)-1)
	for i := range out {
		out[i] = st.degPrefix[bounds[i+1]] - st.degPrefix[bounds[i]]
	}
	return out, nil
}

// MaxCellEdges returns the largest cell at the level — the group-DP
// sensitivity of the association-count query under the cell model. O(1):
// per-depth maxima are cached when the cell matrices are derived.
func (t *Tree) MaxCellEdges(level int) (int64, error) {
	d, err := t.DepthOfLevel(level)
	if err != nil {
		return 0, err
	}
	return t.maxCells[d], nil
}

// MaxSideGroupIncidentEdges returns the largest incident-edge sum over all
// side groups (both sides) at the level — the sensitivity under the
// node-group model. O(groups) via the degree prefix sums.
func (t *Tree) MaxSideGroupIncidentEdges(level int) (int64, error) {
	var max int64
	for _, side := range []bipartite.Side{bipartite.Left, bipartite.Right} {
		sums, err := t.SideGroupIncidentEdges(level, side)
		if err != nil {
			return 0, err
		}
		for _, s := range sums {
			if s > max {
				max = s
			}
		}
	}
	return max, nil
}

// SidePermutation returns a copy of one side's node permutation
// (position → node id).
func (t *Tree) SidePermutation(side bipartite.Side) ([]int32, error) {
	st, err := t.sideTree(side)
	if err != nil {
		return nil, err
	}
	return append([]int32(nil), st.perm...), nil
}

// SideBounds returns a copy of one side's range boundaries at a level
// (2^depth + 1 positions over the permutation).
func (t *Tree) SideBounds(level int, side bipartite.Side) ([]int32, error) {
	d, err := t.DepthOfLevel(level)
	if err != nil {
		return nil, err
	}
	st, err := t.sideTree(side)
	if err != nil {
		return nil, err
	}
	return append([]int32(nil), st.bounds[d]...), nil
}

// LevelProfile summarizes one level of the tree.
type LevelProfile struct {
	Level         int     `json:"level"`
	NumCells      int     `json:"num_cells"`
	NonEmpty      int     `json:"non_empty"`
	TotalEdges    int64   `json:"total_edges"`
	MaxCellEdges  int64   `json:"max_cell_edges"`
	MeanCellEdges float64 `json:"mean_cell_edges"`
	// Skew is MaxCellEdges divided by the balanced cell size
	// TotalEdges/NumCells; 1.0 means perfectly even cells. Zero when the
	// level holds no records.
	Skew float64 `json:"skew"`
}

// Profile computes the summary of one level.
func (t *Tree) Profile(level int) (LevelProfile, error) {
	d, err := t.DepthOfLevel(level)
	if err != nil {
		return LevelProfile{}, err
	}
	p := LevelProfile{Level: level, NumCells: len(t.cells[d])}
	for _, c := range t.cells[d] {
		p.TotalEdges += c
		if c > 0 {
			p.NonEmpty++
		}
		if c > p.MaxCellEdges {
			p.MaxCellEdges = c
		}
	}
	if p.NumCells > 0 {
		p.MeanCellEdges = float64(p.TotalEdges) / float64(p.NumCells)
	}
	if p.TotalEdges > 0 && p.NumCells > 0 {
		p.Skew = float64(p.MaxCellEdges) / (float64(p.TotalEdges) / float64(p.NumCells))
	}
	return p, nil
}

// SensitivityProfile returns the cell-model sensitivity for every level
// from the root down; index i holds level MaxLevel−i.
func (t *Tree) SensitivityProfile() ([]int64, error) {
	out := make([]int64, len(t.cells))
	for d := range t.cells {
		s, err := t.MaxCellEdges(t.maxLevel - d)
		if err != nil {
			return nil, err
		}
		out[d] = s
	}
	return out, nil
}

// ImbalanceSummary returns the per-level skew (max cell / balanced cell),
// used by ablation A3 to compare bisectors; index i holds level
// MaxLevel−i.
func (t *Tree) ImbalanceSummary() ([]float64, error) {
	out := make([]float64, len(t.cells))
	for d := range t.cells {
		p, err := t.Profile(t.maxLevel - d)
		if err != nil {
			return nil, err
		}
		out[d] = p.Skew
	}
	return out, nil
}

// Validate checks the structural invariants the rest of the system relies
// on:
//
//   - permutations are bijections and pos arrays their inverses,
//   - range boundaries are monotone, span the whole side, and every depth
//     refines the previous one,
//   - the deepest cell matrix matches a fresh single-scan recount and
//     sums to the total record count, and every coarser matrix equals the
//     2×2 block aggregation of its child (which, with the recount, pins
//     all levels to the edges),
//   - the degree prefix sums are monotone and end at the record count.
//
// The cell checks cost O(E + Σ_d 4^d) — one edge scan total, not one per
// depth.
func (t *Tree) Validate() error {
	if err := checkPerm(t.left.perm, t.left.pos); err != nil {
		return fmt.Errorf("%w: left perm: %v", ErrInvalid, err)
	}
	if err := checkPerm(t.right.perm, t.right.pos); err != nil {
		return fmt.Errorf("%w: right perm: %v", ErrInvalid, err)
	}
	var total int64
	for _, d := range t.left.deg {
		total += d
	}
	if t.graph != nil && total != t.graph.NumEdges() {
		return fmt.Errorf("%w: stored degrees sum to %d, graph has %d edges", ErrInvalid, total, t.graph.NumEdges())
	}
	for _, sd := range []struct {
		name string
		st   *sideTree
		side bipartite.Side
	}{{"left", &t.left, bipartite.Left}, {"right", &t.right, bipartite.Right}} {
		st := sd.st
		n := int32(len(st.perm))
		if len(st.deg) != int(n) {
			return fmt.Errorf("%w: %s has %d stored degrees for %d nodes", ErrInvalid, sd.name, len(st.deg), n)
		}
		if t.graph != nil {
			for node, d := range st.deg {
				if d != t.graph.Degree(sd.side, int32(node)) {
					return fmt.Errorf("%w: %s stored degree of node %d is %d, graph says %d",
						ErrInvalid, sd.name, node, d, t.graph.Degree(sd.side, int32(node)))
				}
			}
		}
		for d, bounds := range st.bounds {
			if len(bounds) != (1<<d)+1 {
				return fmt.Errorf("%w: depth %d has %d boundaries, want %d", ErrInvalid, d, len(bounds), (1<<d)+1)
			}
			if bounds[0] != 0 || bounds[len(bounds)-1] != n {
				return fmt.Errorf("%w: depth %d boundaries do not span [0,%d]", ErrInvalid, d, n)
			}
			for i := 1; i < len(bounds); i++ {
				if bounds[i] < bounds[i-1] {
					return fmt.Errorf("%w: depth %d boundaries decrease at %d", ErrInvalid, d, i)
				}
			}
			if d > 0 {
				prev := st.bounds[d-1]
				for i, b := range prev {
					if bounds[2*i] != b {
						return fmt.Errorf("%w: depth %d does not refine depth %d at %d", ErrInvalid, d, d-1, i)
					}
				}
			}
		}
		if len(st.degPrefix) != int(n)+1 {
			return fmt.Errorf("%w: %s degree prefix has %d entries, want %d", ErrInvalid, sd.name, len(st.degPrefix), n+1)
		}
		for p, node := range st.perm {
			if st.degPrefix[p+1]-st.degPrefix[p] != st.deg[node] {
				return fmt.Errorf("%w: %s degree prefix wrong at position %d", ErrInvalid, sd.name, p)
			}
		}
		if st.degPrefix[n] != total {
			return fmt.Errorf("%w: %s degree prefix sums to %d, want %d", ErrInvalid, sd.name, st.degPrefix[n], total)
		}
	}
	if len(t.cells) != len(t.left.bounds) {
		return fmt.Errorf("%w: %d cell matrices for %d depths", ErrInvalid, len(t.cells), len(t.left.bounds))
	}
	dmax := len(t.cells) - 1
	if t.graph != nil {
		// The edge recount needs the edges; streamed trees instead pin the
		// deepest matrix to the degrees via the sum check below (and
		// BuildFromEdges cross-checks its two passes against each other).
		k := 1 << dmax
		recount := t.scanCells(k, t.left.groupOfNode(dmax), t.right.groupOfNode(dmax), 1)
		for i, c := range recount {
			if c != t.cells[dmax][i] {
				return fmt.Errorf("%w: depth %d cell %d stored %d, recounted %d", ErrInvalid, dmax, i, t.cells[dmax][i], c)
			}
		}
	}
	var sum int64
	for _, c := range t.cells[dmax] {
		sum += c
	}
	if sum != total {
		return fmt.Errorf("%w: depth %d cells sum to %d, want %d", ErrInvalid, dmax, sum, total)
	}
	for d := dmax; d > 0; d-- {
		want := aggregateCells(t.cells[d], 1<<d)
		for i, c := range want {
			if c != t.cells[d-1][i] {
				return fmt.Errorf("%w: depth %d cell %d stored %d, child blocks sum to %d", ErrInvalid, d-1, i, t.cells[d-1][i], c)
			}
		}
	}
	if len(t.maxCells) != len(t.cells) {
		return fmt.Errorf("%w: %d cached maxima for %d depths", ErrInvalid, len(t.maxCells), len(t.cells))
	}
	for d, cells := range t.cells {
		var max int64
		for _, c := range cells {
			if c > max {
				max = c
			}
		}
		if t.maxCells[d] != max {
			return fmt.Errorf("%w: depth %d cached max %d, cells say %d", ErrInvalid, d, t.maxCells[d], max)
		}
	}
	if len(t.cells32) != len(t.cells) {
		return fmt.Errorf("%w: %d narrow matrices for %d depths", ErrInvalid, len(t.cells32), len(t.cells))
	}
	for d, narrow := range t.cells32 {
		if narrow == nil {
			if t.maxCells[d] <= math.MaxInt32 {
				return fmt.Errorf("%w: depth %d max %d fits int32 but narrow matrix is missing", ErrInvalid, d, t.maxCells[d])
			}
			continue
		}
		if len(narrow) != len(t.cells[d]) {
			return fmt.Errorf("%w: depth %d narrow matrix has %d cells, wide has %d", ErrInvalid, d, len(narrow), len(t.cells[d]))
		}
		for i, c := range narrow {
			if int64(c) != t.cells[d][i] {
				return fmt.Errorf("%w: depth %d cell %d narrow %d, wide %d", ErrInvalid, d, i, c, t.cells[d][i])
			}
		}
	}
	return nil
}

func checkPerm(perm, pos []int32) error {
	if len(perm) != len(pos) {
		return errors.New("perm and pos lengths differ")
	}
	for p, node := range perm {
		if node < 0 || int(node) >= len(perm) {
			return fmt.Errorf("perm[%d] = %d out of range", p, node)
		}
		if pos[node] != int32(p) {
			return fmt.Errorf("pos[%d] = %d, want %d", node, pos[node], p)
		}
	}
	return nil
}
