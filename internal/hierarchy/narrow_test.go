package hierarchy

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/partition"
)

// TestLevelCellCounts32View pins the narrow cell-count cache to the wide
// matrix: present (these graphs are tiny, every depth fits int32) and
// value-equal at every level, so the release path's 4-byte add pass is a
// pure bandwidth optimization.
func TestLevelCellCounts32View(t *testing.T) {
	t.Parallel()
	g := randomGraph(t, 64, 64, 800, 9)
	tree, err := Build(g, Options{Rounds: 4, Bisector: partition.BalancedBisector{}})
	if err != nil {
		t.Fatal(err)
	}
	for lvl := 0; lvl <= tree.MaxLevel(); lvl++ {
		wide, err := tree.LevelCellCountsView(lvl)
		if err != nil {
			t.Fatal(err)
		}
		narrow, ok := tree.LevelCellCounts32View(lvl)
		if !ok {
			t.Fatalf("level %d: narrow cache missing (max count fits int32)", lvl)
		}
		if len(narrow) != len(wide) {
			t.Fatalf("level %d: narrow has %d cells, wide %d", lvl, len(narrow), len(wide))
		}
		for i := range wide {
			if int64(narrow[i]) != wide[i] {
				t.Fatalf("level %d cell %d: narrow %d, wide %d", lvl, i, narrow[i], wide[i])
			}
		}
	}
	if _, ok := tree.LevelCellCounts32View(-1); ok {
		t.Error("negative level reported a narrow cache")
	}
	if _, ok := tree.LevelCellCounts32View(tree.MaxLevel() + 1); ok {
		t.Error("out-of-range level reported a narrow cache")
	}
}

// TestLevelCellCounts32ViewOverflow forces counts past int32 by
// installing a synthetic deepest matrix: the narrow cache must be absent
// at every depth (aggregation only grows counts upward), making the
// release path fall back to the wide int64 read.
func TestLevelCellCounts32ViewOverflow(t *testing.T) {
	t.Parallel()
	g := randomGraph(t, 32, 32, 200, 3)
	tree, err := Build(g, Options{Rounds: 3, Bisector: partition.BalancedBisector{}})
	if err != nil {
		t.Fatal(err)
	}
	deepest, err := tree.LevelCellCounts(0)
	if err != nil {
		t.Fatal(err)
	}
	deepest[0] = math.MaxInt32 + 1
	tree.setCells(deepest)
	for lvl := 0; lvl <= tree.MaxLevel(); lvl++ {
		if _, ok := tree.LevelCellCounts32View(lvl); ok {
			t.Fatalf("level %d: narrow cache present despite count > MaxInt32", lvl)
		}
		// The wide view must still serve the injected matrix.
		wide, err := tree.LevelCellCountsView(lvl)
		if err != nil || len(wide) == 0 {
			t.Fatalf("level %d: wide view broken after overflow: %v", lvl, err)
		}
	}
}

// TestNarrowCacheSurvivesCodec checks the decode path rebuilds the
// narrow cache: DecodeBinary recomputes cells through the same setCells
// tail as the graph build.
func TestNarrowCacheSurvivesCodec(t *testing.T) {
	t.Parallel()
	g := randomGraph(t, 48, 48, 500, 5)
	tree, err := Build(g, Options{Rounds: 3, Bisector: partition.BalancedBisector{}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeBinary(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	for lvl := 0; lvl <= decoded.MaxLevel(); lvl++ {
		want, okW := tree.LevelCellCounts32View(lvl)
		got, okG := decoded.LevelCellCounts32View(lvl)
		if okW != okG {
			t.Fatalf("level %d: narrow presence differs after decode (%v vs %v)", lvl, okW, okG)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("level %d cell %d: %d != %d after decode", lvl, i, want[i], got[i])
			}
		}
	}
}
