package hierarchy

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/bipartite"
)

// Binary tree format:
//
//	magic "GDT1"
//	maxLevel            uvarint
//	numLeft, numRight   uvarint
//	left permutation    numLeft uvarints
//	right permutation   numRight uvarints
//	per depth d = 0..maxLevel:
//	  left bounds       2^d+1 uvarints (deltas)
//	  right bounds      2^d+1 uvarints (deltas)
//	privateCuts         uvarint
//
// Cell counts are recomputed from the graph on decode, which both keeps
// the stream small and cross-validates it: a corrupted permutation or
// boundary fails Validate.
//
// The grouping itself is part of the published artifact in the paper's
// model (users must know which group each entity belongs to), so the
// curator serializes the tree alongside the noisy releases.

var treeMagic = [4]byte{'G', 'D', 'T', '1'}

// ErrBadTreeFormat reports a corrupt or truncated tree stream.
var ErrBadTreeFormat = errors.New("hierarchy: bad tree format")

// EncodeBinary writes the tree's structure (permutations and range
// boundaries) to w.
func (t *Tree) EncodeBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(treeMagic[:]); err != nil {
		return fmt.Errorf("hierarchy: writing magic: %w", err)
	}
	writeUvarint(bw, uint64(t.maxLevel))
	writeUvarint(bw, uint64(len(t.left.perm)))
	writeUvarint(bw, uint64(len(t.right.perm)))
	for _, st := range []*sideTree{&t.left, &t.right} {
		for _, node := range st.perm {
			writeUvarint(bw, uint64(node))
		}
	}
	for d := 0; d <= t.maxLevel; d++ {
		for _, st := range []*sideTree{&t.left, &t.right} {
			prev := int32(0)
			for i, b := range st.bounds[d] {
				if i == 0 {
					writeUvarint(bw, uint64(b))
				} else {
					writeUvarint(bw, uint64(b-prev))
				}
				prev = b
			}
		}
	}
	writeUvarint(bw, uint64(t.privateCuts))
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("hierarchy: flushing tree: %w", err)
	}
	return nil
}

// DecodeBinary reads a tree previously written by EncodeBinary, binds it
// to g, recomputes cell counts and validates everything.
func DecodeBinary(r io.Reader, g *bipartite.Graph) (*Tree, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrBadTreeFormat, err)
	}
	if magic != treeMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadTreeFormat, magic[:])
	}
	maxLevel, err := readUvarintChecked(br, uint64(MaxRounds), "maxLevel")
	if err != nil {
		return nil, err
	}
	numLeft, err := readUvarintChecked(br, 1<<31, "numLeft")
	if err != nil {
		return nil, err
	}
	numRight, err := readUvarintChecked(br, 1<<31, "numRight")
	if err != nil {
		return nil, err
	}
	if int(numLeft) != g.NumLeft() || int(numRight) != g.NumRight() {
		return nil, fmt.Errorf("%w: tree sides %dx%d do not match graph %dx%d",
			ErrBadTreeFormat, numLeft, numRight, g.NumLeft(), g.NumRight())
	}

	t := &Tree{graph: g, maxLevel: int(maxLevel)}
	t.left = sideTree{perm: make([]int32, numLeft), pos: make([]int32, numLeft), deg: g.Degrees(bipartite.Left)}
	t.right = sideTree{perm: make([]int32, numRight), pos: make([]int32, numRight), deg: g.Degrees(bipartite.Right)}
	for _, st := range []*sideTree{&t.left, &t.right} {
		n := uint64(len(st.perm))
		for i := range st.perm {
			v, err := readUvarintChecked(br, n, "perm entry")
			if err != nil {
				return nil, err
			}
			if v >= n {
				return nil, fmt.Errorf("%w: perm entry %d out of range", ErrBadTreeFormat, v)
			}
			st.perm[i] = int32(v)
			st.pos[v] = int32(i)
		}
	}
	for d := 0; d <= int(maxLevel); d++ {
		for _, st := range []*sideTree{&t.left, &t.right} {
			n := int32(len(st.perm))
			bounds := make([]int32, (1<<d)+1)
			prev := int32(0)
			for i := range bounds {
				v, err := readUvarintChecked(br, uint64(n)+1, "bound")
				if err != nil {
					return nil, err
				}
				if i == 0 {
					bounds[i] = int32(v)
				} else {
					bounds[i] = prev + int32(v)
				}
				if bounds[i] > n {
					return nil, fmt.Errorf("%w: bound %d exceeds side size %d", ErrBadTreeFormat, bounds[i], n)
				}
				prev = bounds[i]
			}
			st.bounds = append(st.bounds, bounds)
		}
	}
	cuts, err := readUvarintChecked(br, 1<<40, "privateCuts")
	if err != nil {
		return nil, err
	}
	t.privateCuts = int(cuts)

	t.finalize(0)
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTreeFormat, err)
	}
	return t, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n]) //nolint:errcheck // bufio defers errors to Flush
}

func readUvarintChecked(br *bufio.Reader, max uint64, what string) (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("%w: %s: %v", ErrBadTreeFormat, what, err)
	}
	if v > max {
		return 0, fmt.Errorf("%w: %s %d exceeds limit %d", ErrBadTreeFormat, what, v, max)
	}
	return v, nil
}
