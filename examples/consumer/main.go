// Consumer side: a data user receives only the published JSON artifact —
// no raw graph, no exact counts — and analyzes it. The example plays both
// roles in one process: the curator publishes, then the consumer loads
// the artifact, checks its claimed privacy budget, and computes group
// marginals and heavy-hitter lists from the noisy histograms alone.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
)

func main() {
	// ---- Curator side (normally a separate party) ------------------
	g, err := repro.GenerateDataset(repro.PresetDBLPTiny, 9)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := repro.NewPipeline(repro.Params{Epsilon: 0.9, Delta: 1e-5},
		repro.WithRounds(6),
		repro.WithPhase1Epsilon(0.1),
		repro.WithCellHistograms(true),
		repro.WithSeed(13),
	)
	if err != nil {
		log.Fatal(err)
	}
	curatorRelease, err := pipe.Run(g)
	if err != nil {
		log.Fatal(err)
	}
	var published bytes.Buffer
	if err := curatorRelease.WriteJSON(&published, false); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("curator published %d bytes of artifact\n\n", published.Len())

	// ---- Consumer side ---------------------------------------------
	artifact, err := repro.ReadRelease(&published)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded artifact: rounds=%d mode=%s model=%s\n",
		artifact.Rounds, artifact.ModeName, artifact.ModelName)
	fmt.Printf("privacy claim: εg=%g per tier (parallel ε=%.2f, sequential ε=%.2f)\n\n",
		artifact.BudgetEpsilon, artifact.ParallelCostEpsilon, artifact.SequentialCostEpsilon)

	// Analyze the view of a mid-privilege tier.
	const tier = 2
	view, err := artifact.ViewFor(tier)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tier %d count estimate: %.0f associations\n", tier, view.Count.NoisyCount)

	if view.Cells == nil {
		log.Fatal("artifact carries no histograms")
	}
	marginals, err := repro.MarginalCounts(*view.Cells, repro.Left)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nleft-side group marginals (noisy, εg-group-DP):\n")
	for i, m := range marginals {
		fmt.Printf("  group %2d: %9.0f\n", i, m)
	}

	top, err := repro.TopKGroups(*view.Cells, repro.Left, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-3 heaviest author groups (from noisy data): %v\n", top)
	fmt.Println("\nnote: every number above is derived purely from the published artifact;")
	fmt.Println("the exact values never left the curator.")
}
