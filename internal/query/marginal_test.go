package query

import (
	"math"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/rng"
)

// noiselessRelease builds a cell release with sigma effectively zero by
// using a huge epsilon... classical calibration caps at eps<1, so instead
// construct the release manually from exact counts.
func noiselessRelease(t *testing.T, level int) core.CellRelease {
	t.Helper()
	tree := testTree(t)
	counts, err := tree.LevelCellCounts(level)
	if err != nil {
		t.Fatal(err)
	}
	k, err := tree.NumSideGroups(level)
	if err != nil {
		t.Fatal(err)
	}
	noisy := make([]float64, len(counts))
	for i, c := range counts {
		noisy[i] = float64(c)
	}
	return core.CellRelease{Level: level, Counts: noisy, SideGroups: k}
}

func TestMarginalCountsExact(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	const level = 2
	rel := noiselessRelease(t, level)
	for _, side := range []bipartite.Side{bipartite.Left, bipartite.Right} {
		got, err := MarginalCounts(rel, side)
		if err != nil {
			t.Fatal(err)
		}
		want, err := tree.SideGroupIncidentEdges(level, side)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-float64(want[i])) > 1e-9 {
				t.Errorf("side %v group %d: marginal %v, want %d", side, i, got[i], want[i])
			}
		}
	}
}

func TestMarginalCountsValidation(t *testing.T) {
	t.Parallel()
	rel := noiselessRelease(t, 2)
	if _, err := MarginalCounts(rel, bipartite.Side(0)); err == nil {
		t.Error("invalid side accepted")
	}
	bad := core.CellRelease{SideGroups: 3, Counts: []float64{1, 2}}
	if _, err := MarginalCounts(bad, bipartite.Left); err == nil {
		t.Error("malformed release accepted")
	}
}

func TestMarginalErrorZeroForNoiseless(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	rel := noiselessRelease(t, 2)
	sum, err := MarginalError(tree, rel, bipartite.Left)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Max > 1e-9 {
		t.Errorf("noiseless marginal error = %+v", sum)
	}
	if _, err := MarginalError(nil, rel, bipartite.Left); err == nil {
		t.Error("nil tree accepted")
	}
}

func TestMarginalErrorGrowsWithNoise(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	const level = 2
	run := func(eps float64) float64 {
		rel, err := core.ReleaseCells(tree, level, dp.Params{Epsilon: eps, Delta: 1e-5},
			core.CalibrationClassical, rng.New(31))
		if err != nil {
			t.Fatal(err)
		}
		sum, err := MarginalError(tree, rel, bipartite.Left)
		if err != nil {
			t.Fatal(err)
		}
		return sum.Mean
	}
	if low, high := run(0.9), run(0.1); high <= low {
		t.Errorf("marginal error at eps=0.1 (%v) not above eps=0.9 (%v)", high, low)
	}
}

func TestTopKGroupsNoiseless(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	const level = 2
	rel := noiselessRelease(t, level)
	prec, err := TopKPrecision(tree, rel, bipartite.Left, 2)
	if err != nil {
		t.Fatal(err)
	}
	if prec != 1 {
		t.Errorf("noiseless top-k precision = %v, want 1", prec)
	}
}

func TestTopKGroupsValidation(t *testing.T) {
	t.Parallel()
	rel := noiselessRelease(t, 2)
	if _, err := TopKGroups(rel, bipartite.Left, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := TopKGroups(rel, bipartite.Left, 1000); err == nil {
		t.Error("huge k accepted")
	}
	if _, err := TopKPrecision(nil, rel, bipartite.Left, 1); err == nil {
		t.Error("nil tree accepted")
	}
}

func TestTopKPrecisionDegradesWithNoise(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	const level = 1 // 8x8 grid
	const k = 3
	avg := func(eps float64) float64 {
		var sum float64
		const trials = 30
		for i := 0; i < trials; i++ {
			rel, err := core.ReleaseCells(tree, level, dp.Params{Epsilon: eps, Delta: 1e-5},
				core.CalibrationClassical, rng.New(uint64(100+i)))
			if err != nil {
				t.Fatal(err)
			}
			p, err := TopKPrecision(tree, rel, bipartite.Left, k)
			if err != nil {
				t.Fatal(err)
			}
			sum += p
		}
		return sum / trials
	}
	strong := avg(0.9)
	weak := avg(0.05)
	if weak > strong {
		t.Errorf("top-k precision should degrade with less budget: eps=0.05 %v vs eps=0.9 %v", weak, strong)
	}
}
