// Package dpcheck empirically verifies differential-privacy guarantees.
//
// Given a randomized mechanism evaluated on two adjacent inputs (record-
// adjacent for classical DP, group-adjacent for the paper's g-group DP),
// it estimates the privacy loss from output histograms: the largest
// |ln(P̂[A(D1)∈bin] / P̂[A(D2)∈bin])| over bins with enough mass to be
// statistically meaningful. A mechanism claiming ε-DP must produce an
// estimate at or below ε (up to sampling error and, for (ε, δ) mechanisms,
// the δ-mass tails that the MinBinCount threshold excludes).
//
// This is a lightweight relative of privacy auditors such as DP-Sniper:
// it cannot prove a guarantee, but it reliably catches calibration bugs —
// an implementation that under-noises by even 20% shows up immediately in
// the tests that drive it.
package dpcheck

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// MechanismFunc draws one output of a randomized mechanism run on one
// fixed input. The source provides all randomness.
type MechanismFunc func(src *rng.Source) float64

// Config tunes the estimator.
type Config struct {
	// Samples is the number of draws per input. Default 200000.
	Samples int
	// Bins is the histogram resolution over the combined output range.
	// Default 40.
	Bins int
	// MinBinCount excludes bins where either side has fewer samples;
	// rare bins have unreliable ratios (and for (ε, δ)-DP they are the
	// δ mass). Default Samples/200.
	MinBinCount int
	// Seed drives the deterministic sampling.
	Seed uint64
}

func (c *Config) fill() {
	if c.Samples <= 0 {
		c.Samples = 200000
	}
	if c.Bins <= 0 {
		c.Bins = 40
	}
	if c.MinBinCount <= 0 {
		c.MinBinCount = c.Samples / 200
	}
}

// Result is the empirical privacy-loss estimate.
type Result struct {
	// EpsilonHat is the largest absolute log-likelihood ratio observed
	// across qualifying bins.
	EpsilonHat float64 `json:"epsilon_hat"`
	// BinsUsed and BinsSkipped count qualifying and excluded bins.
	BinsUsed    int `json:"bins_used"`
	BinsSkipped int `json:"bins_skipped"`
	// WorstRatio is e^EpsilonHat, for readability.
	WorstRatio float64 `json:"worst_ratio"`
}

// Errors returned by the estimators.
var (
	ErrNilMechanism = errors.New("dpcheck: nil mechanism")
	ErrNoBins       = errors.New("dpcheck: no bin had enough samples on both sides")
)

// EstimateEpsilon estimates the privacy loss between mechanism runs on
// two adjacent inputs.
func EstimateEpsilon(onD1, onD2 MechanismFunc, cfg Config) (Result, error) {
	if onD1 == nil || onD2 == nil {
		return Result{}, ErrNilMechanism
	}
	cfg.fill()
	src := rng.New(cfg.Seed)
	src1 := src.Split(1)
	src2 := src.Split(2)

	s1 := make([]float64, cfg.Samples)
	s2 := make([]float64, cfg.Samples)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < cfg.Samples; i++ {
		s1[i] = onD1(src1)
		s2[i] = onD2(src2)
		lo = math.Min(lo, math.Min(s1[i], s2[i]))
		hi = math.Max(hi, math.Max(s1[i], s2[i]))
	}
	if !(hi > lo) {
		// Degenerate (constant) outputs: identical distributions.
		if s1[0] == s2[0] {
			return Result{EpsilonHat: 0, BinsUsed: 1, WorstRatio: 1}, nil
		}
		return Result{}, fmt.Errorf("%w: outputs are disjoint constants", ErrNoBins)
	}

	h1 := make([]int, cfg.Bins)
	h2 := make([]int, cfg.Bins)
	width := (hi - lo) / float64(cfg.Bins)
	binOf := func(v float64) int {
		b := int((v - lo) / width)
		if b >= cfg.Bins {
			b = cfg.Bins - 1
		}
		if b < 0 {
			b = 0
		}
		return b
	}
	for i := 0; i < cfg.Samples; i++ {
		h1[binOf(s1[i])]++
		h2[binOf(s2[i])]++
	}
	return ratioScan(h1, h2, cfg)
}

// DiscreteMechanismFunc draws one integer output.
type DiscreteMechanismFunc func(src *rng.Source) int64

// EstimateEpsilonDiscrete estimates the privacy loss of an integer-valued
// mechanism, binning by exact output value.
func EstimateEpsilonDiscrete(onD1, onD2 DiscreteMechanismFunc, cfg Config) (Result, error) {
	if onD1 == nil || onD2 == nil {
		return Result{}, ErrNilMechanism
	}
	cfg.fill()
	src := rng.New(cfg.Seed)
	src1 := src.Split(1)
	src2 := src.Split(2)
	h1 := map[int64]int{}
	h2 := map[int64]int{}
	for i := 0; i < cfg.Samples; i++ {
		h1[onD1(src1)]++
		h2[onD2(src2)]++
	}
	var used, skipped int
	var worst float64
	for v, c1 := range h1 {
		c2 := h2[v]
		if c1 < cfg.MinBinCount || c2 < cfg.MinBinCount {
			skipped++
			continue
		}
		used++
		if r := math.Abs(math.Log(float64(c1) / float64(c2))); r > worst {
			worst = r
		}
	}
	for v := range h2 {
		if _, ok := h1[v]; !ok {
			skipped++
		}
	}
	if used == 0 {
		return Result{}, ErrNoBins
	}
	return Result{EpsilonHat: worst, BinsUsed: used, BinsSkipped: skipped, WorstRatio: math.Exp(worst)}, nil
}

func ratioScan(h1, h2 []int, cfg Config) (Result, error) {
	var used, skipped int
	var worst float64
	for i := range h1 {
		if h1[i] < cfg.MinBinCount || h2[i] < cfg.MinBinCount {
			if h1[i] > 0 || h2[i] > 0 {
				skipped++
			}
			continue
		}
		used++
		if r := math.Abs(math.Log(float64(h1[i]) / float64(h2[i]))); r > worst {
			worst = r
		}
	}
	if used == 0 {
		return Result{}, ErrNoBins
	}
	return Result{EpsilonHat: worst, BinsUsed: used, BinsSkipped: skipped, WorstRatio: math.Exp(worst)}, nil
}
