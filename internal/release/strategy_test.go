package release

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"io"
	"sort"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/dp"
)

// Golden hashes of the default strategy's artifacts, captured on the
// pre-strategy engine. The strategy seam must keep them byte-identical:
// the default strategy IS the old pipeline.
const (
	goldenDefaultArtifact = "caef744d6d0b56a73a070b532eab67d07954fe06b338105c57f6ca85e5c0d09b"
	goldenLoadedArtifact  = "b23d91a126fa659c5dc599d925f95ea4a3a52e4159007c764e45b46554d6b661"
)

func artifactHash(t *testing.T, rel *Release) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rel.WriteJSON(&buf, true); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

func TestDefaultStrategyGoldenPinned(t *testing.T) {
	t.Parallel()
	g := testGraph(t)

	p, err := New(defaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	rel, err := p.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := artifactHash(t, rel); got != goldenDefaultArtifact {
		t.Errorf("default artifact hash = %s, want pre-strategy golden %s", got, goldenDefaultArtifact)
	}
	if rel.Strategy != "" {
		t.Errorf("default artifact names a strategy %q; must stay absent for byte-stability", rel.Strategy)
	}

	loaded, err := New(defaultBudget(),
		WithRounds(6), WithSeed(3), WithCellHistograms(true), WithConsistency(true),
		WithGrouping(true), WithPhase1Epsilon(0.2), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	rel, err = loaded.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := artifactHash(t, rel); got != goldenLoadedArtifact {
		t.Errorf("loaded artifact hash = %s, want pre-strategy golden %s", got, goldenLoadedArtifact)
	}
}

// TestStrategyMatrixDeterminism is the cross-strategy golden matrix:
// every registered strategy must produce bit-identical artifacts across
// worker counts and across the in-memory and streamed build paths.
func TestStrategyMatrixDeterminism(t *testing.T) {
	t.Parallel()
	g := testGraph(t)

	for _, name := range Strategies.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var base string
			for _, workers := range []int{1, 4, 7} {
				p, err := New(defaultBudget(),
					WithStrategy(name), WithRounds(6), WithSeed(3),
					WithCellHistograms(true), WithConsistency(true),
					WithGrouping(true), WithPhase1Epsilon(0.2), WithWorkers(workers))
				if err != nil {
					t.Fatal(err)
				}
				rel, err := p.Run(g)
				if err != nil {
					t.Fatalf("workers=%d Run: %v", workers, err)
				}
				runHash := artifactHash(t, rel)
				rel, err = p.RunFromEdges(bipartite.NewGraphSource(g))
				if err != nil {
					t.Fatalf("workers=%d RunFromEdges: %v", workers, err)
				}
				if streamHash := artifactHash(t, rel); streamHash != runHash {
					t.Errorf("workers=%d: streamed artifact %s != in-memory %s", workers, streamHash, runHash)
				}
				if base == "" {
					base = runHash
				} else if runHash != base {
					t.Errorf("workers=%d artifact %s != workers=1 artifact %s", workers, runHash, base)
				}
			}
		})
	}
}

// TestStrategiesDisjointStreams pins that distinct strategies never share
// noise draws: same data, seed and budget must yield distinct artifacts.
func TestStrategiesDisjointStreams(t *testing.T) {
	t.Parallel()
	g := testGraph(t)

	seen := map[string]string{}
	for _, name := range Strategies.Names() {
		p, err := New(defaultBudget(),
			WithStrategy(name), WithRounds(6), WithSeed(3),
			WithCellHistograms(true), WithPhase1Epsilon(0.2))
		if err != nil {
			t.Fatal(err)
		}
		rel, err := p.Run(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		h := artifactHash(t, rel)
		for other, oh := range seen {
			if oh == h {
				t.Errorf("strategies %s and %s produced identical artifacts", name, other)
			}
		}
		seen[name] = h
	}
}

func TestStrategySalt(t *testing.T) {
	t.Parallel()
	if StrategySalt("") != 0 {
		t.Error("empty name must salt to 0")
	}
	if StrategySalt(DefaultStrategyName) != 0 {
		t.Error("default strategy must salt to 0")
	}
	a, b := StrategySalt("quadtree-laplace"), StrategySalt("community-gaussian")
	if a == 0 || b == 0 || a == b {
		t.Errorf("non-default salts must be distinct and nonzero, got %d and %d", a, b)
	}
}

func TestWithStrategyUnknown(t *testing.T) {
	t.Parallel()
	_, err := New(defaultBudget(), WithStrategy("no-such-strategy"))
	if !errors.Is(err, ErrUnknownStrategy) {
		t.Errorf("unknown strategy: got %v, want ErrUnknownStrategy", err)
	}
}

func TestStrategyRegistryValidation(t *testing.T) {
	t.Parallel()
	reg := NewStrategyRegistry()

	valid, err := NewStrategy("s1", QuadtreePartitioner{},
		NoiseStage{Count: core.MechGaussian, Cells: core.MechGaussian}, IdentityConsistency{})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(valid); err != nil {
		t.Fatalf("registering a valid strategy: %v", err)
	}
	if err := reg.Register(valid); !errors.Is(err, ErrBadStrategy) {
		t.Errorf("duplicate registration: got %v, want ErrBadStrategy", err)
	}
	if err := reg.Register(nil); !errors.Is(err, ErrBadStrategy) {
		t.Errorf("nil registration: got %v, want ErrBadStrategy", err)
	}
	if err := reg.Register(&Strategy{}); !errors.Is(err, ErrBadStrategy) {
		t.Errorf("empty-name registration: got %v, want ErrBadStrategy", err)
	}

	if _, err := NewStrategy("", QuadtreePartitioner{},
		NoiseStage{Count: core.MechGaussian, Cells: core.MechGaussian}, IdentityConsistency{}); !errors.Is(err, ErrBadStrategy) {
		t.Errorf("empty name: got %v, want ErrBadStrategy", err)
	}
	if _, err := NewStrategy("x", nil,
		NoiseStage{Count: core.MechGaussian, Cells: core.MechGaussian}, IdentityConsistency{}); !errors.Is(err, ErrBadStrategy) {
		t.Errorf("nil partitioner: got %v, want ErrBadStrategy", err)
	}
	if _, err := NewStrategy("x", QuadtreePartitioner{},
		NoiseStage{Count: core.NoiseMechanism(99), Cells: core.MechGaussian}, IdentityConsistency{}); !errors.Is(err, ErrBadStrategy) {
		t.Errorf("bad count mechanism: got %v, want ErrBadStrategy", err)
	}
	if _, err := NewStrategy("x", QuadtreePartitioner{},
		NoiseStage{Count: core.MechGaussian, Cells: core.MechGaussian}, nil); !errors.Is(err, ErrBadStrategy) {
		t.Errorf("nil consistency: got %v, want ErrBadStrategy", err)
	}

	if _, err := reg.Resolve("absent"); !errors.Is(err, ErrUnknownStrategy) {
		t.Errorf("unknown resolve: got %v, want ErrUnknownStrategy", err)
	}
}

func TestStrategiesRegistryBuiltins(t *testing.T) {
	t.Parallel()
	names := Strategies.Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	want := []string{"community-gaussian", DefaultStrategyName, "quadtree-laplace"}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("built-in %q missing from registry (have %v)", w, names)
		}
	}
	s, err := Strategies.Resolve("")
	if err != nil || s.Name() != DefaultStrategyName {
		t.Errorf("Resolve(\"\") = %v, %v; want the default strategy", s, err)
	}
}

// TestPureStrategyDeltaZero pins the ε-accounting difference: the pure-ε
// strategy's artifact must carry δ = 0 everywhere Phase 2 spent.
func TestPureStrategyDeltaZero(t *testing.T) {
	t.Parallel()
	g := testGraph(t)
	p, err := New(dp.Params{Epsilon: 0.9},
		WithStrategy("quadtree-laplace"), WithRounds(5), WithCellHistograms(true))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := p.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Strategy != "quadtree-laplace" {
		t.Errorf("artifact strategy = %q, want quadtree-laplace", rel.Strategy)
	}
	if rel.MechName != core.MechLaplace.String() {
		t.Errorf("artifact mechanism = %q, want %q", rel.MechName, core.MechLaplace)
	}
	if rel.SequentialCostDelta != 0 || rel.ParallelCostDelta != 0 {
		t.Errorf("pure-ε strategy leaked delta: seq %v par %v",
			rel.SequentialCostDelta, rel.ParallelCostDelta)
	}
	for _, c := range rel.Cells {
		if c.Delta != 0 {
			t.Errorf("level %d cells carry delta %v, want 0", c.Level, c.Delta)
		}
		if c.MechName != core.MechLaplace.String() {
			t.Errorf("level %d cells mechanism %q, want laplace", c.Level, c.MechName)
		}
	}
	for _, op := range rel.Audit {
		if op.Cost.Delta != 0 {
			t.Errorf("ledger op %s carries delta %v, want 0", op.Label, op.Cost.Delta)
		}
	}
}

// TestCommunityStrategyAccounting pins that the community partitioner
// charges its randomized response exactly once per side, even when no
// cut is private (ChargeAlways).
func TestCommunityStrategyAccounting(t *testing.T) {
	t.Parallel()
	g := testGraph(t)
	p, err := New(defaultBudget(),
		WithStrategy("community-gaussian"), WithRounds(5), WithPhase1Epsilon(0.3))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := p.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rel.Phase1Epsilon, 2*0.3; got != want {
		t.Errorf("Phase1Epsilon = %v, want %v (one RR per side)", got, want)
	}
	var labels []string
	for _, op := range rel.Audit {
		labels = append(labels, op.Label)
	}
	wantPrefix := []string{"phase1/community/left", "phase1/community/right"}
	for i, w := range wantPrefix {
		if i >= len(labels) || labels[i] != w {
			t.Fatalf("audit trail starts %v, want prefix %v", labels, wantPrefix)
		}
	}

	// Without a Phase-1 budget the grouping is public and free.
	free, err := New(defaultBudget(), WithStrategy("community-gaussian"), WithRounds(5))
	if err != nil {
		t.Fatal(err)
	}
	rel, err = free.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Phase1Epsilon != 0 {
		t.Errorf("unbudgeted community run charged phase 1: %v", rel.Phase1Epsilon)
	}
	for _, op := range rel.Audit {
		if op.Label == "phase1/community/left" || op.Label == "phase1/community/right" {
			t.Errorf("unbudgeted community run spent %s", op.Label)
		}
	}
}

// TestCommunityKeysMatchTreeSides exercises the explicit-ordering path
// against a source that does not declare its sides, where both the
// partitioner's degree pass and the hierarchy's must discover identical
// side sizes or the build fails with ErrBadKeys.
func TestCommunityStreamedUndeclaredSides(t *testing.T) {
	t.Parallel()
	g := testGraph(t)
	var edges []bipartite.Edge
	g.ForEachEdge(func(l, r int32) bool {
		edges = append(edges, bipartite.Edge{Left: l, Right: r})
		return true
	})
	src := undeclaredSource{edges: edges}

	p, err := New(defaultBudget(),
		WithStrategy("community-gaussian"), WithRounds(5), WithPhase1Epsilon(0.2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunFromEdges(&src); err != nil {
		t.Fatalf("streamed community build over undeclared sides: %v", err)
	}
}

// undeclaredSource is an EdgeSource that never declares its sides,
// forcing every consumer through the max-observed-id sizing rule.
type undeclaredSource struct {
	edges []bipartite.Edge
	next  int
}

func (s *undeclaredSource) NextChunk(dst []bipartite.Edge) (int, error) {
	if s.next >= len(s.edges) {
		return 0, io.EOF
	}
	n := copy(dst, s.edges[s.next:])
	s.next += n
	return n, nil
}

func (s *undeclaredSource) Reset() error { s.next = 0; return nil }

func (s *undeclaredSource) Sides() (int32, int32, bool) { return 0, 0, false }
