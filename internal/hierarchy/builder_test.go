package hierarchy

import (
	"errors"
	"testing"

	"repro/internal/partition"
	"repro/internal/rng"
)

// assertTreesIdentical compares the full internal state of two trees —
// permutations, inverse positions, every depth's boundaries, degree
// prefix sums, every cell matrix, and the private-cut count.
func assertTreesIdentical(t *testing.T, label string, a, b *Tree) {
	t.Helper()
	for side, pair := range map[string][2]*sideTree{
		"left":  {&a.left, &b.left},
		"right": {&a.right, &b.right},
	} {
		x, y := pair[0], pair[1]
		for p := range x.perm {
			if x.perm[p] != y.perm[p] {
				t.Fatalf("%s: %s perm differs at %d: %d vs %d", label, side, p, x.perm[p], y.perm[p])
			}
		}
		for n := range x.pos {
			if x.pos[n] != y.pos[n] {
				t.Fatalf("%s: %s pos differs at %d", label, side, n)
			}
		}
		if len(x.bounds) != len(y.bounds) {
			t.Fatalf("%s: %s depth count differs", label, side)
		}
		for d := range x.bounds {
			for i := range x.bounds[d] {
				if x.bounds[d][i] != y.bounds[d][i] {
					t.Fatalf("%s: %s bounds differ at depth %d index %d", label, side, d, i)
				}
			}
		}
		for p := range x.degPrefix {
			if x.degPrefix[p] != y.degPrefix[p] {
				t.Fatalf("%s: %s degPrefix differs at %d", label, side, p)
			}
		}
	}
	if len(a.cells) != len(b.cells) {
		t.Fatalf("%s: cell depth count differs", label)
	}
	for d := range a.cells {
		for i := range a.cells[d] {
			if a.cells[d][i] != b.cells[d][i] {
				t.Fatalf("%s: cells differ at depth %d index %d", label, d, i)
			}
		}
	}
	if a.NumPrivateCuts() != b.NumPrivateCuts() {
		t.Fatalf("%s: private cuts differ: %d vs %d", label, a.NumPrivateCuts(), b.NumPrivateCuts())
	}
}

// TestBuilderReuseMatchesFreshBuild is the golden test for scratch and
// pool retention: one Builder serves a sequence of builds over graphs of
// different sizes (including a shrink, so stale scratch contents must not
// leak), varying worker counts (pool recreation) and both private and
// non-private bisectors, and every tree must be bit-identical to one from
// a fresh hierarchy.Build with an identically seeded bisector.
func TestBuilderReuseMatchesFreshBuild(t *testing.T) {
	t.Parallel()
	b := NewBuilder()
	defer b.Close()
	cases := []struct {
		nl, nr, edges, rounds, workers int
		seed                           uint64
		eps                            float64 // 0 = balanced bisector
	}{
		{200, 300, 3000, 5, 1, 3, 0.4},
		{512, 256, 8000, 6, 4, 4, 0.2},
		{40, 30, 200, 3, 4, 5, 0},      // shrink: scratch larger than needed
		{512, 256, 8000, 6, 2, 4, 0.2}, // pool recreated for a new count
		{300, 450, 6000, 5, 1, 7, 0.3},
	}
	for ci, tc := range cases {
		g := randomGraph(t, tc.nl, tc.nr, tc.edges, tc.seed)
		mkBisector := func() partition.Bisector {
			if tc.eps == 0 {
				return partition.BalancedBisector{}
			}
			bis, err := partition.NewExpMechBisector(tc.eps, rng.New(tc.seed+100))
			if err != nil {
				t.Fatal(err)
			}
			return bis
		}
		reused, err := b.Build(g, Options{Rounds: tc.rounds, Bisector: mkBisector(), Workers: tc.workers})
		if err != nil {
			t.Fatalf("case %d: reused build: %v", ci, err)
		}
		fresh, err := Build(g, Options{Rounds: tc.rounds, Bisector: mkBisector(), Workers: tc.workers})
		if err != nil {
			t.Fatalf("case %d: fresh build: %v", ci, err)
		}
		label := "case " + string(rune('0'+ci))
		assertTreesIdentical(t, label, reused, fresh)
		if err := reused.Validate(); err != nil {
			t.Fatalf("case %d: reused tree invalid: %v", ci, err)
		}
	}
}

// TestBuilderCloseThenRebuild checks Close releases the pool but leaves
// the Builder usable.
func TestBuilderCloseThenRebuild(t *testing.T) {
	t.Parallel()
	g := randomGraph(t, 100, 100, 1000, 2)
	b := NewBuilder()
	if _, err := b.Build(g, Options{Rounds: 3, Bisector: partition.BalancedBisector{}, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	b.Close()
	tree, err := b.Build(g, Options{Rounds: 3, Bisector: partition.BalancedBisector{}, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Build(g, Options{Rounds: 3, Bisector: partition.BalancedBisector{}})
	if err != nil {
		t.Fatal(err)
	}
	assertTreesIdentical(t, "after close", tree, fresh)
	b.Close()
}

// TestBuilderValidation mirrors Build's argument validation.
func TestBuilderValidation(t *testing.T) {
	t.Parallel()
	g := randomGraph(t, 10, 10, 20, 1)
	b := NewBuilder()
	defer b.Close()
	if _, err := b.Build(nil, Options{Rounds: 2, Bisector: partition.BalancedBisector{}}); !errors.Is(err, ErrNilGraph) {
		t.Errorf("nil graph: got %v", err)
	}
	if _, err := b.Build(g, Options{Rounds: 2}); !errors.Is(err, ErrNilBisector) {
		t.Errorf("nil bisector: got %v", err)
	}
	if _, err := b.Build(g, Options{Rounds: 0, Bisector: partition.BalancedBisector{}}); !errors.Is(err, ErrBadRounds) {
		t.Errorf("bad rounds: got %v", err)
	}
	if _, err := b.Build(g, Options{Rounds: 2, Bisector: partition.BalancedBisector{}, Order: Order(9)}); err == nil {
		t.Error("bad order accepted")
	}
}

// TestLevelCellCountsViewAliasesStorage pins the view accessor to the
// copying one.
func TestLevelCellCountsViewAliasesStorage(t *testing.T) {
	t.Parallel()
	g := randomGraph(t, 64, 64, 800, 9)
	tree, err := Build(g, Options{Rounds: 4, Bisector: partition.BalancedBisector{}})
	if err != nil {
		t.Fatal(err)
	}
	for lvl := 0; lvl <= tree.MaxLevel(); lvl++ {
		view, err := tree.LevelCellCountsView(lvl)
		if err != nil {
			t.Fatal(err)
		}
		copied, err := tree.LevelCellCounts(lvl)
		if err != nil {
			t.Fatal(err)
		}
		if len(view) != len(copied) {
			t.Fatalf("level %d: view has %d cells, copy %d", lvl, len(view), len(copied))
		}
		for i := range view {
			if view[i] != copied[i] {
				t.Fatalf("level %d cell %d: view %d, copy %d", lvl, i, view[i], copied[i])
			}
		}
	}
	if _, err := tree.LevelCellCountsView(-1); err == nil {
		t.Error("negative level accepted")
	}
}

// BenchmarkBuilderReuse measures the retained-scratch build against the
// throwaway-Builder wrapper on the same graph.
func BenchmarkBuilderReuse(b *testing.B) {
	g := randomGraph(b, 2000, 3000, 40000, 11)
	bld := NewBuilder()
	defer bld.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bld.Build(g, Options{Rounds: 6, Bisector: partition.BalancedBisector{}}); err != nil {
			b.Fatal(err)
		}
	}
}
