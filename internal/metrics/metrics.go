// Package metrics computes the paper's evaluation metric (relative error
// rate) and assembles experiment output: summary statistics, named series,
// markdown/CSV tables, and ASCII renderings of figures for terminal use.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// RER returns the paper's relative error rate |P−T|/T for a perturbed
// answer P and true answer T. It returns NaN when T is zero (the paper's
// metric is undefined there).
func RER(perturbed, truth float64) float64 {
	if truth == 0 {
		return math.NaN()
	}
	return math.Abs(perturbed-truth) / math.Abs(truth)
}

// AbsError returns |P−T|.
func AbsError(perturbed, truth float64) float64 { return math.Abs(perturbed - truth) }

// ErrEmpty reports an aggregate over no values.
var ErrEmpty = errors.New("metrics: empty input")

// Summary holds order statistics of a sample.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"`
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	P95    float64 `json:"p95"`
	Max    float64 `json:"max"`
}

// Summarize computes a Summary of the sample.
func Summarize(values []float64) (Summary, error) {
	if len(values) == 0 {
		return Summary{}, ErrEmpty
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, v := range sorted {
		sum += v
		sumSq += v * v
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Std:    math.Sqrt(variance),
		Min:    sorted[0],
		Median: quantileSorted(sorted, 0.5),
		P95:    quantileSorted(sorted, 0.95),
		Max:    sorted[len(sorted)-1],
	}, nil
}

// Quantile returns the q-quantile (q in [0,1]) of the sample by linear
// interpolation.
func Quantile(values []float64, q float64) (float64, error) {
	if len(values) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("metrics: quantile %v outside [0,1]", q)
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Series is one named curve of an experiment figure.
type Series struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// Validate checks that X and Y align.
func (s Series) Validate() error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("metrics: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
	}
	if len(s.X) == 0 {
		return fmt.Errorf("metrics: series %q is empty: %w", s.Name, ErrEmpty)
	}
	return nil
}

// Table is a rendered experiment table.
type Table struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// AddRow appends a row, stringifying each cell.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case int:
			row[i] = strconv.Itoa(v)
		case int64:
			row[i] = strconv.FormatInt(v, 10)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case v == 0:
		return "0"
	case math.Abs(v) >= 0.001 && math.Abs(v) < 100000:
		return strconv.FormatFloat(v, 'f', 4, 64)
	default:
		return strconv.FormatFloat(v, 'e', 3, 64)
	}
}

// Markdown renders the table as GitHub-flavored markdown.
func (t Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted.
func (t Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Headers)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// PlotOptions configures RenderASCII.
type PlotOptions struct {
	// Width and Height are the plot area size in characters; defaults
	// 64x20.
	Width, Height int
	// LogY plots log10(y); zero or negative values clip to the floor.
	LogY bool
	// Title is printed above the plot.
	Title string
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
}

// RenderASCII draws the series as a character plot, one glyph per series,
// with a legend. It is the terminal stand-in for the paper's Figure 1.
func RenderASCII(series []Series, opts PlotOptions) (string, error) {
	if len(series) == 0 {
		return "", ErrEmpty
	}
	if opts.Width <= 0 {
		opts.Width = 64
	}
	if opts.Height <= 0 {
		opts.Height = 20
	}
	glyphs := []byte("ox*+#@%&$~^=")

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	transform := func(y float64) float64 {
		if !opts.LogY {
			return y
		}
		if y <= 0 {
			return math.NaN()
		}
		return math.Log10(y)
	}
	for _, s := range series {
		if err := s.Validate(); err != nil {
			return "", err
		}
		for i := range s.X {
			x, y := s.X[i], transform(s.Y[i])
			if math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if math.IsInf(xmin, 1) {
		return "", fmt.Errorf("metrics: no finite points to plot: %w", ErrEmpty)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, opts.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", opts.Width))
	}
	for si, s := range series {
		glyph := glyphs[si%len(glyphs)]
		for i := range s.X {
			x, y := s.X[i], transform(s.Y[i])
			if math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			cx := int((x - xmin) / (xmax - xmin) * float64(opts.Width-1))
			cy := opts.Height - 1 - int((y-ymin)/(ymax-ymin)*float64(opts.Height-1))
			grid[cy][cx] = glyph
		}
	}

	var b strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&b, "%s\n", opts.Title)
	}
	yLo, yHi := ymin, ymax
	suffix := ""
	if opts.LogY {
		suffix = " (log10)"
	}
	fmt.Fprintf(&b, "y%s: [%.4g, %.4g]  x: [%.4g, %.4g]\n", suffix, yLo, yHi, xmin, xmax)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", opts.Width) + "+\n")
	if opts.XLabel != "" || opts.YLabel != "" {
		fmt.Fprintf(&b, "x: %s   y: %s\n", opts.XLabel, opts.YLabel)
	}
	b.WriteString("legend: ")
	for si, s := range series {
		if si > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%c=%s", glyphs[si%len(glyphs)], s.Name)
	}
	b.WriteString("\n")
	return b.String(), nil
}
