// DurableLedger: crash-correct privacy accounting.
//
// DP spend is permanent by definition, so the ledger is the one piece
// of serving state that must outlive the process: an in-memory ledger
// that forgets its debits on restart silently re-arms exhausted budgets
// — a privacy violation, not an ops gap. DurableLedger writes every
// operation to an append-only write-ahead log and (under FsyncAlways)
// fsyncs it BEFORE the spend is admitted, so no caller ever releases
// noisy bytes for an op that is not durably logged. Reopening the same
// path replays the log: spent budget stays spent, the audit trail is
// bit-identical, and an exhausted ledger reopens exhausted.
//
// Failure semantics are strictly fail-closed. If a WAL write or fsync
// fails, the spend is NOT admitted, the in-memory state is untouched,
// and the ledger latches the failure: every subsequent spend returns
// ErrLedgerFailed until the ledger is reopened (a failed write may have
// left a torn record on disk; appending more records after it would put
// durable spends beyond a tear that replay must truncate at). Replay
// tolerates exactly one torn tail — the prefix up to the first frame
// that fails its checksum is the ledger, the tail is discarded and the
// file truncated — while structural corruption (sequence gaps, foreign
// magic, an unreadable snapshot) refuses to open at all.
//
// Every SnapshotEvery WAL records the ledger compacts: the full op
// trail is written to <path>.snap (temp file + fsync + atomic rename +
// directory fsync) and the WAL is reset to just its header. A crash
// between the rename and the WAL reset leaves both files describing an
// overlapping history; replay skips WAL records at or below the
// snapshot's sequence number.
//
// All file writes go through the WriteSyncer seam so tests can fail any
// write or fsync and assert the fail-closed contract.
package accountant

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"repro/internal/dp"
)

// Errors returned by the durable ledger.
var (
	// ErrLedgerClosed is returned by spends after Close: a closed ledger
	// fails closed rather than admitting unlogged spends.
	ErrLedgerClosed = errors.New("accountant: durable ledger is closed")
	// ErrLedgerFailed is the latched state after a WAL write or fsync
	// failure: no further spends are admitted until the ledger is
	// reopened (which replays the durable prefix).
	ErrLedgerFailed = errors.New("accountant: durable ledger write failed; ledger is latched closed, reopen to recover")
	// ErrLedgerCorrupt marks structural corruption replay cannot repair
	// by truncating a torn tail: sequence gaps, foreign file magic, an
	// invalid snapshot.
	ErrLedgerCorrupt = errors.New("accountant: ledger file corrupt")
	// ErrBudgetMismatch refuses to reopen a ledger under a different
	// total budget than it was created with — raising the budget of a
	// partially spent ledger would mint privacy out of thin air.
	ErrBudgetMismatch = errors.New("accountant: ledger file was created with a different budget")
	// ErrLedgerLocked reports that another live process holds the WAL.
	ErrLedgerLocked = errors.New("accountant: ledger file is locked by another process")
)

// FsyncPolicy selects when the WAL reaches stable storage.
type FsyncPolicy string

const (
	// FsyncAlways syncs every record before its spend is admitted: a
	// reported admission is durable even across power loss. The default.
	FsyncAlways FsyncPolicy = "always"
	// FsyncInterval syncs at most every FsyncInterval of wall time:
	// admissions inside the window may be lost to a crash (the reopened
	// ledger then under-counts spend — it never over-counts).
	FsyncInterval FsyncPolicy = "interval"
	// FsyncOff never syncs except on Close; durability degrades to
	// whatever the OS page cache survives.
	FsyncOff FsyncPolicy = "off"
)

// ParseFsyncPolicy resolves a policy name; "" selects FsyncAlways.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case "":
		return FsyncAlways, nil
	case FsyncAlways, FsyncInterval, FsyncOff:
		return FsyncPolicy(s), nil
	}
	return "", fmt.Errorf("accountant: unknown fsync policy %q (want %q, %q or %q)",
		s, FsyncAlways, FsyncInterval, FsyncOff)
}

// WriteSyncer is the durable ledger's file-write seam: *os.File in
// production, a fault injector in tests.
type WriteSyncer interface {
	io.Writer
	Sync() error
	Close() error
}

// LockFile takes the same non-blocking exclusive advisory lock the
// durable ledger holds on its WAL — exported so other durable logs
// (the sequencer's replicated group log) enforce the identical
// single-writer-per-file discipline.
func LockFile(f *os.File) error { return lockLedgerFile(f) }

// Durability defaults.
const (
	DefaultFsyncInterval = 100 * time.Millisecond
	DefaultSnapshotEvery = 1024
)

// DurableOptions configures OpenDurableLedger. The zero value selects
// FsyncAlways, the default snapshot cadence, and real files.
type DurableOptions struct {
	// Fsync is the WAL sync policy; "" selects FsyncAlways.
	Fsync FsyncPolicy
	// FsyncInterval bounds the unsynced window under FsyncInterval
	// (default DefaultFsyncInterval).
	FsyncInterval time.Duration
	// SnapshotEvery compacts the WAL after this many records (0 selects
	// DefaultSnapshotEvery; negative disables compaction).
	SnapshotEvery int
	// OpenWriter opens a path for appending — the fault-injection seam.
	// nil uses os.OpenFile(O_WRONLY|O_APPEND|O_CREATE). Replay reads
	// and the flock are NOT routed through it: injected faults hit
	// writes and syncs, exactly the failures the ledger must fail
	// closed on.
	OpenWriter func(path string) (WriteSyncer, error)
}

func (o DurableOptions) withDefaults() (DurableOptions, error) {
	p, err := ParseFsyncPolicy(string(o.Fsync))
	if err != nil {
		return DurableOptions{}, err
	}
	o.Fsync = p
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = DefaultFsyncInterval
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = DefaultSnapshotEvery
	}
	if o.OpenWriter == nil {
		o.OpenWriter = func(path string) (WriteSyncer, error) {
			return os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
		}
	}
	return o, nil
}

// DurableStatus reports a durable ledger's backing state — the audit
// surface's durability panel.
type DurableStatus struct {
	Path   string `json:"path"`
	Policy string `json:"policy"`
	// WALRecords / WALBytes describe the live WAL segment (records
	// since the last snapshot; bytes include the header).
	WALRecords int   `json:"wal_records"`
	WALBytes   int64 `json:"wal_bytes"`
	// SnapshotOps is the op count captured in the snapshot file.
	SnapshotOps int `json:"snapshot_ops"`
	// ReplayedOps is how many ops the last open restored from disk.
	ReplayedOps int `json:"replayed_ops"`
	// Compactions counts snapshot+truncate cycles this ledger ran.
	Compactions int `json:"compactions"`
	// Unsynced counts records written since the last fsync (always 0
	// under FsyncAlways) — the worst-case admission loss of a crash now.
	Unsynced int  `json:"unsynced"`
	Closed   bool `json:"closed"`
	// Err is the latched failure, "" while healthy.
	Err string `json:"error,omitempty"`
}

// DurableLedger is the WAL+snapshot-backed Ledger implementation. The
// in-memory MemLedger state is the cache; the log is the truth.
type DurableLedger struct {
	path     string
	snapPath string
	opts     DurableOptions

	// mem holds the replayed/admitted state; its mutex also guards every
	// field below (one lock keeps the check→log→commit sequence atomic).
	mem         MemLedger
	w           WriteSyncer
	lockF       *os.File // flock holder; also the replay read handle
	scratch     []byte   // payload assembly buffer
	buf         []byte   // frame assembly buffer
	walRecords  int
	walBytes    int64
	snapOps     int
	replayed    int
	compactions int
	unsynced    int
	lastSync    time.Time
	failed      error
	closed      bool
}

// OpenDurableLedger opens (creating if absent) the WAL at path and
// replays it, together with its snapshot at path+".snap", into a live
// ledger with the given total budget. A reopened ledger resumes exactly
// where the durable prefix left off: Spent, OpCount and Ops reproduce
// the prior process's admitted history, and an exhausted budget stays
// exhausted. Reopening under a different budget fails with
// ErrBudgetMismatch. The file is flock'd for the ledger's lifetime; a
// second live process gets ErrLedgerLocked.
func OpenDurableLedger(budget dp.Params, path string, opts DurableOptions) (*DurableLedger, error) {
	if err := budget.Validate(); err != nil {
		return nil, err
	}
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	d := &DurableLedger{
		path:     path,
		snapPath: path + ".snap",
		opts:     opts,
		mem:      MemLedger{budget: budget},
	}

	// The WAL file itself carries the inter-process lock, held for the
	// ledger's lifetime through a dedicated read handle.
	lockF, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("accountant: opening ledger %s: %w", path, err)
	}
	if err := lockLedgerFile(lockF); err != nil {
		lockF.Close()
		return nil, fmt.Errorf("%w: %s", err, path)
	}
	d.lockF = lockF

	fail := func(err error) (*DurableLedger, error) {
		lockF.Close()
		return nil, err
	}

	// Snapshot first: it is the compacted history the WAL appends to.
	if snap, err := os.ReadFile(d.snapPath); err == nil {
		if err := d.loadSnapshot(snap); err != nil {
			return fail(err)
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return fail(fmt.Errorf("accountant: reading snapshot %s: %w", d.snapPath, err))
	}
	d.snapOps = len(d.mem.ops)

	// Replay the WAL's valid prefix and truncate any torn tail so the
	// append writer starts at a clean record boundary.
	data, err := io.ReadAll(lockF)
	if err != nil {
		return fail(fmt.Errorf("accountant: reading ledger %s: %w", path, err))
	}
	validLen, err := d.replayWAL(data)
	if err != nil {
		return fail(err)
	}
	if validLen < int64(len(data)) {
		if err := lockF.Truncate(validLen); err != nil {
			return fail(fmt.Errorf("accountant: truncating torn ledger tail %s: %w", path, err))
		}
	}
	d.replayed = len(d.mem.ops)
	d.walBytes = validLen

	d.w, err = opts.OpenWriter(path)
	if err != nil {
		return fail(fmt.Errorf("accountant: opening ledger writer %s: %w", path, err))
	}
	d.lastSync = time.Now()
	if validLen == 0 {
		if err := d.writeWALHeader(); err != nil {
			d.w.Close()
			return fail(fmt.Errorf("accountant: writing ledger header %s: %w", path, err))
		}
	}
	return d, nil
}

// loadSnapshot applies a snapshot file. Snapshots are written atomically
// (temp + rename), so unlike the WAL they get no torn-tail tolerance:
// anything short of a fully valid file is ErrLedgerCorrupt — silently
// ignoring a bad snapshot would re-arm every budget it recorded.
func (d *DurableLedger) loadSnapshot(data []byte) error {
	corrupt := func(what string) error {
		return fmt.Errorf("%w: snapshot %s: %s", ErrLedgerCorrupt, d.snapPath, what)
	}
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != snapMagic {
		return corrupt("bad magic")
	}
	off := len(snapMagic)
	payload, n, ok := nextFrame(data[off:])
	if !ok {
		return corrupt("bad header frame")
	}
	hdr, ok := parseHeaderPayload(payload, true)
	if !ok || hdr.version != ledgerVersion {
		return corrupt("bad header record")
	}
	if hdr.budget != d.mem.budget {
		return fmt.Errorf("%w: snapshot %s has budget %s, configured %s",
			ErrBudgetMismatch, d.snapPath, hdr.budget, d.mem.budget)
	}
	off += n
	for i := uint64(0); i < hdr.opCount; i++ {
		payload, n, ok := nextFrame(data[off:])
		if !ok {
			return corrupt(fmt.Sprintf("op frame %d torn or missing", i+1))
		}
		op, ok := parseOpPayload(payload)
		if !ok || op.seq != i+1 || op.cost.Validate() != nil {
			return corrupt(fmt.Sprintf("op record %d invalid", i+1))
		}
		d.mem.commit(op.label, op.cost)
		off += n
	}
	if off != len(data) {
		return corrupt("trailing bytes after final op")
	}
	return nil
}

// replayWAL applies the WAL's valid prefix on top of the snapshot state
// and returns its byte length. Records at or below the snapshot's last
// sequence number are skipped (the compaction-crash overlap); the first
// torn frame ends the prefix; a sequence gap is structural corruption.
func (d *DurableLedger) replayWAL(data []byte) (int64, error) {
	if len(data) < len(walMagic) {
		// Empty or mid-creation: treat as fresh. Ops cannot exist past a
		// header that was never fully written.
		return 0, nil
	}
	if string(data[:len(walMagic)]) != walMagic {
		return 0, fmt.Errorf("%w: %s: bad WAL magic", ErrLedgerCorrupt, d.path)
	}
	off := len(walMagic)
	payload, n, ok := nextFrame(data[off:])
	if !ok {
		return 0, nil // torn header: same mid-creation case
	}
	hdr, ok := parseHeaderPayload(payload, false)
	if !ok || hdr.version != ledgerVersion {
		return 0, fmt.Errorf("%w: %s: bad WAL header", ErrLedgerCorrupt, d.path)
	}
	if hdr.budget != d.mem.budget {
		return 0, fmt.Errorf("%w: %s has budget %s, configured %s",
			ErrBudgetMismatch, d.path, hdr.budget, d.mem.budget)
	}
	off += n
	for off < len(data) {
		payload, n, ok := nextFrame(data[off:])
		if !ok {
			break // torn tail: the prefix is the ledger
		}
		op, ok := parseOpPayload(payload)
		if !ok {
			break // torn/garbage payload that still checksummed? impossible, but fail safe
		}
		next := uint64(len(d.mem.ops)) + 1
		switch {
		case op.seq < next:
			// Overlap with the snapshot (crash between snapshot rename
			// and WAL reset): already applied, skip.
		case op.seq == next:
			if op.cost.Validate() != nil {
				return 0, fmt.Errorf("%w: %s: op %d has invalid cost", ErrLedgerCorrupt, d.path, op.seq)
			}
			d.mem.commit(op.label, op.cost)
			d.walRecords++
		default:
			return 0, fmt.Errorf("%w: %s: op sequence gap (have %d ops, next record is %d)",
				ErrLedgerCorrupt, d.path, next-1, op.seq)
		}
		off += n
	}
	return int64(off), nil
}

// writeWALHeader writes magic+header to a fresh WAL through the seam.
// Callers hold the lock (or are in Open, pre-publication).
func (d *DurableLedger) writeWALHeader() error {
	d.scratch = appendHeaderPayload(d.scratch[:0], d.mem.budget, 0, false)
	d.buf = append(d.buf[:0], walMagic...)
	d.buf = frame(d.buf, d.scratch)
	if _, err := d.w.Write(d.buf); err != nil {
		return err
	}
	d.walBytes = int64(len(d.buf))
	d.walRecords = 0
	if d.opts.Fsync != FsyncOff {
		if err := d.w.Sync(); err != nil {
			return err
		}
		d.lastSync = time.Now()
	}
	return nil
}

// Spend implements Ledger.
func (d *DurableLedger) Spend(label string, cost dp.Params) error {
	return d.SpendBytes([]byte(label), cost)
}

// SpendBytes implements Ledger: check the budget, log the op, make it
// durable per the fsync policy, and only then admit it. Any logging
// failure latches the ledger (see the package comment) and admits
// nothing.
func (d *DurableLedger) SpendBytes(label []byte, cost dp.Params) error {
	if err := cost.Validate(); err != nil {
		return err
	}
	l := &d.mem
	l.mu.Lock()
	defer l.mu.Unlock()
	if d.failed != nil {
		return fmt.Errorf("%w (label %q)", d.failed, label)
	}
	if err := l.check(cost); err != nil {
		return fmt.Errorf("%w (label %q)", err, label)
	}
	// Compact BEFORE appending the new record: a compaction failure then
	// cleanly aborts this spend instead of leaving an already-admitted
	// op entangled with a half-reset WAL.
	if d.opts.SnapshotEvery > 0 && d.walRecords >= d.opts.SnapshotEvery {
		if err := d.compactLocked(); err != nil {
			d.failed = fmt.Errorf("%w: compaction: %v", ErrLedgerFailed, err)
			return fmt.Errorf("%w (label %q)", d.failed, label)
		}
	}
	seq := uint64(len(l.ops)) + 1
	d.buf, d.scratch = appendOpFrame(d.buf[:0], d.scratch, seq, cost, label)
	if err := d.logLocked(d.buf); err != nil {
		d.failed = fmt.Errorf("%w: op %d: %v", ErrLedgerFailed, seq, err)
		return fmt.Errorf("%w (label %q)", d.failed, label)
	}
	l.commit(label, cost)
	d.walRecords++
	d.walBytes += int64(len(d.buf))
	return nil
}

// logLocked appends one frame and applies the fsync policy.
func (d *DurableLedger) logLocked(frame []byte) error {
	if _, err := d.w.Write(frame); err != nil {
		return err
	}
	switch d.opts.Fsync {
	case FsyncAlways:
		if err := d.w.Sync(); err != nil {
			return err
		}
		d.unsynced = 0
		d.lastSync = time.Now()
	case FsyncInterval:
		d.unsynced++
		if time.Since(d.lastSync) >= d.opts.FsyncInterval {
			if err := d.w.Sync(); err != nil {
				return err
			}
			d.unsynced = 0
			d.lastSync = time.Now()
		}
	case FsyncOff:
		d.unsynced++
	}
	return nil
}

// compactLocked snapshots the full trail and resets the WAL: temp file,
// fsync, atomic rename, directory fsync, then truncate+re-head the WAL.
// Callers hold the lock.
func (d *DurableLedger) compactLocked() error {
	l := &d.mem
	tmp := d.snapPath + ".tmp"
	_ = os.Remove(tmp)
	w, err := d.opts.OpenWriter(tmp)
	if err != nil {
		return fmt.Errorf("opening %s: %w", tmp, err)
	}
	// Assemble the whole snapshot and write it in one call; snapshots
	// run every SnapshotEvery spends, so an O(ops) buffer here is cheap.
	buf := append([]byte(nil), snapMagic...)
	d.scratch = appendHeaderPayload(d.scratch[:0], l.budget, uint64(len(l.ops)), true)
	buf = frame(buf, d.scratch)
	for i, rec := range l.ops {
		label := l.arena[rec.labelOff : rec.labelOff+rec.labelLen]
		d.scratch = appendOpPayload(d.scratch[:0], uint64(i)+1, rec.cost, label)
		buf = frame(buf, d.scratch)
	}
	if _, err := w.Write(buf); err != nil {
		w.Close()
		os.Remove(tmp)
		return fmt.Errorf("writing %s: %w", tmp, err)
	}
	if err := w.Sync(); err != nil {
		w.Close()
		os.Remove(tmp)
		return fmt.Errorf("syncing %s: %w", tmp, err)
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, d.snapPath); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("publishing snapshot: %w", err)
	}
	syncDir(filepath.Dir(d.snapPath))

	// The snapshot now owns the history; reset the WAL to a bare header.
	// From here on a failure latches the ledger (the WAL is mid-surgery),
	// but the snapshot already holds every admitted op — reopening loses
	// nothing.
	if err := d.w.Close(); err != nil {
		return fmt.Errorf("closing WAL for reset: %w", err)
	}
	if err := d.lockF.Truncate(0); err != nil {
		return fmt.Errorf("truncating WAL: %w", err)
	}
	if d.w, err = d.opts.OpenWriter(d.path); err != nil {
		return fmt.Errorf("reopening WAL: %w", err)
	}
	if err := d.writeWALHeader(); err != nil {
		return fmt.Errorf("rewriting WAL header: %w", err)
	}
	d.snapOps = len(l.ops)
	d.compactions++
	d.unsynced = 0
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's dirent is durable.
// Best effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		_ = f.Sync()
		f.Close()
	}
}

// Sync flushes the WAL to stable storage regardless of policy.
func (d *DurableLedger) Sync() error {
	d.mem.mu.Lock()
	defer d.mem.mu.Unlock()
	if d.failed != nil {
		return d.failed
	}
	if err := d.w.Sync(); err != nil {
		d.failed = fmt.Errorf("%w: sync: %v", ErrLedgerFailed, err)
		return d.failed
	}
	d.unsynced = 0
	d.lastSync = time.Now()
	return nil
}

// Close flushes and closes the WAL and releases the file lock. The
// ledger fails closed afterwards: further spends return ErrLedgerClosed.
// Close is idempotent.
func (d *DurableLedger) Close() error {
	d.mem.mu.Lock()
	defer d.mem.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	var errs []error
	if d.w != nil {
		// Flush even under FsyncOff/Interval: Close is the graceful-
		// shutdown path and must leave every admitted op durable. Skip
		// only if the ledger already latched a write failure (the tail
		// is torn; replay will discard it).
		if d.failed == nil {
			if err := d.w.Sync(); err != nil {
				errs = append(errs, fmt.Errorf("accountant: syncing ledger %s: %w", d.path, err))
			} else {
				d.unsynced = 0
			}
		}
		if err := d.w.Close(); err != nil {
			errs = append(errs, fmt.Errorf("accountant: closing ledger %s: %w", d.path, err))
		}
		d.w = nil
	}
	if d.lockF != nil {
		if err := d.lockF.Close(); err != nil { // also releases the flock
			errs = append(errs, err)
		}
		d.lockF = nil
	}
	if d.failed == nil {
		d.failed = ErrLedgerClosed
	}
	return errors.Join(errs...)
}

// Status reports the ledger's durable-backing state.
func (d *DurableLedger) Status() DurableStatus {
	d.mem.mu.Lock()
	defer d.mem.mu.Unlock()
	st := DurableStatus{
		Path:        d.path,
		Policy:      string(d.opts.Fsync),
		WALRecords:  d.walRecords,
		WALBytes:    d.walBytes,
		SnapshotOps: d.snapOps,
		ReplayedOps: d.replayed,
		Compactions: d.compactions,
		Unsynced:    d.unsynced,
		Closed:      d.closed,
	}
	if d.failed != nil && !errors.Is(d.failed, ErrLedgerClosed) {
		st.Err = d.failed.Error()
	}
	return st
}

// Budget, Spent, Remaining, OpCount, Ops and AuditReport delegate to the
// replayed in-memory state (reads never touch the disk).
func (d *DurableLedger) Budget() dp.Params    { return d.mem.Budget() }
func (d *DurableLedger) Spent() dp.Params     { return d.mem.Spent() }
func (d *DurableLedger) Remaining() dp.Params { return d.mem.Remaining() }
func (d *DurableLedger) OpCount() int         { return d.mem.OpCount() }
func (d *DurableLedger) Ops() []Op            { return d.mem.Ops() }
func (d *DurableLedger) AuditReport() string  { return d.mem.AuditReport() }
