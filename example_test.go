package repro_test

import (
	"bytes"
	"fmt"
	"log"

	"repro"
)

// ExampleNewPipeline shows the minimal curator-side flow: build a graph,
// run the two-phase pipeline, inspect the artifact's shape.
func ExampleNewPipeline() {
	g, err := repro.FromEdges(4, 4, []repro.Edge{
		{Left: 0, Right: 0}, {Left: 0, Right: 1},
		{Left: 1, Right: 1}, {Left: 2, Right: 2},
		{Left: 3, Right: 3}, {Left: 3, Right: 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := repro.NewPipeline(repro.Params{Epsilon: 0.9, Delta: 1e-5},
		repro.WithRounds(2), repro.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	rel, err := pipe.Run(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rel.ModeName, rel.ModelName, len(rel.Counts.Levels), "level released")
	// Output: per-level cells 1 level released
}

// ExampleGroupSensitivity shows how group sensitivity shrinks as levels
// refine — the mechanism behind the paper's privilege ladder. The default
// pipeline uses the deterministic balanced bisector, so the sensitivities
// are reproducible.
func ExampleGroupSensitivity() {
	g, err := repro.FromEdges(4, 4, []repro.Edge{
		{Left: 0, Right: 0}, {Left: 0, Right: 1}, {Left: 0, Right: 2},
		{Left: 1, Right: 1}, {Left: 2, Right: 2}, {Left: 3, Right: 3},
		{Left: 1, Right: 3}, {Left: 2, Right: 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := repro.NewPipeline(repro.Params{Epsilon: 0.5, Delta: 1e-5},
		repro.WithRounds(2), repro.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	rel, err := pipe.Run(g)
	if err != nil {
		log.Fatal(err)
	}
	tree := rel.Tree()
	for level := 2; level >= 0; level-- {
		sens, err := repro.GroupSensitivity(tree, level, repro.ModelCells)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("level %d: Δ = %d\n", level, sens)
	}
	// Output:
	// level 2: Δ = 8
	// level 1: Δ = 3
	// level 0: Δ = 1
}

// ExampleReadRelease shows the consumer side: load a published artifact
// and read a tier's guarantee.
func ExampleReadRelease() {
	g, err := repro.FromEdges(2, 2, []repro.Edge{{Left: 0, Right: 0}, {Left: 1, Right: 1}})
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := repro.NewPipeline(repro.Params{Epsilon: 0.9, Delta: 1e-5},
		repro.WithRounds(2), repro.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	rel, err := pipe.Run(g)
	if err != nil {
		log.Fatal(err)
	}
	var artifact bytes.Buffer
	if err := rel.WriteJSON(&artifact, false); err != nil {
		log.Fatal(err)
	}

	loaded, err := repro.ReadRelease(&artifact)
	if err != nil {
		log.Fatal(err)
	}
	view, err := loaded.ViewFor(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tier 0 guarantee: ε=%g δ=%g at level %d\n",
		view.Count.Epsilon, view.Count.Delta, view.Count.Level)
	// Output: tier 0 guarantee: ε=0.9 δ=1e-05 at level 0
}

// ExampleOpenRegistry shows the serving flow: a registry ingests a
// dataset from an edge stream (never materializing the graph), sessions
// answer queries from reusable buffers, and every query debits the
// dataset's privacy ledger before noise is drawn.
func ExampleOpenRegistry() {
	g, err := repro.FromEdges(4, 4, []repro.Edge{
		{Left: 0, Right: 0}, {Left: 0, Right: 1}, {Left: 1, Right: 1},
		{Left: 2, Right: 2}, {Left: 3, Right: 3}, {Left: 3, Right: 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	reg, err := repro.OpenRegistry(repro.ServeConfig{
		Budget:   repro.Params{Epsilon: 1, Delta: 1e-4},
		PerQuery: repro.Params{Epsilon: 0.1, Delta: 1e-5},
		Rounds:   2,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Close()

	ds, err := reg.AddDataset("demo", repro.NewGraphEdgeSource(g))
	if err != nil {
		log.Fatal(err)
	}
	sess := ds.SessionAt(1) // pinned stream: replayable under this seed
	view, err := sess.ReleaseLevel(1)
	if err != nil {
		log.Fatal(err)
	}
	marginals, err := sess.Marginal(1, repro.Left)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("histogram cells:", len(view.Cells.Counts))
	fmt.Println("left groups:", len(marginals))
	fmt.Printf("remaining ε: %.2f\n", ds.Remaining().Epsilon)
	// Output:
	// histogram cells: 4
	// left groups: 2
	// remaining ε: 0.70
}
