package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/accountant"
)

func TestParseArgs(t *testing.T) {
	dir := t.TempDir()
	opts, addr, pprofAddr, err := parseArgs([]string{
		"-addr", "127.0.0.1:9999", "-ledger-dir", dir,
		"-fsync", "interval", "-fsync-interval", "50ms",
		"-snapshot-every", "128", "-pprof", "127.0.0.1:6061",
	})
	if err != nil {
		t.Fatal(err)
	}
	if addr != "127.0.0.1:9999" || pprofAddr != "127.0.0.1:6061" {
		t.Fatalf("addr %q pprof %q", addr, pprofAddr)
	}
	if opts.Dir != dir || opts.Fsync != accountant.FsyncInterval ||
		opts.FsyncInterval != 50*time.Millisecond || opts.SnapshotEvery != 128 {
		t.Fatalf("opts = %+v", opts)
	}

	if _, _, _, err := parseArgs(nil); err == nil {
		t.Fatal("missing -ledger-dir accepted")
	}
	if _, _, _, err := parseArgs([]string{"-ledger-dir", dir, "-fsync", "sometimes"}); err == nil {
		t.Fatal("bogus -fsync policy accepted")
	}
}

// TestLedgerdEndToEnd boots the real binary path: attach, spend,
// restart, verify the fence and the replayed budget, shut down cleanly.
func TestLedgerdEndToEnd(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ledgers")

	start := func() (base string, cancel context.CancelFunc, done chan error) {
		ctx, cancelCtx := context.WithCancel(context.Background())
		addrc := make(chan string, 1)
		done = make(chan error, 1)
		go func() {
			done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-ledger-dir", dir},
				func(addr string) { addrc <- addr })
		}()
		select {
		case addr := <-addrc:
			return "http://" + addr, cancelCtx, done
		case err := <-done:
			t.Fatalf("sequencer exited early: %v", err)
		case <-time.After(30 * time.Second):
			t.Fatal("sequencer never started")
		}
		panic("unreachable")
	}
	stop := func(cancel context.CancelFunc, done chan error) {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("shutdown: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("sequencer never shut down")
		}
	}

	base, cancel, done := start()
	var att struct {
		Epoch string `json:"epoch"`
	}
	postJSON(t, base+"/v1/ledgers/k/attach", `{"budget":{"epsilon":0.2,"delta":2e-6}}`, http.StatusOK, &att)
	var sp struct {
		Admitted bool `json:"admitted"`
		Ops      int  `json:"ops"`
	}
	postJSON(t, base+"/v1/ledgers/k/spend",
		`{"epoch":"`+att.Epoch+`","op_id":"c-1","label":"q0","cost":{"epsilon":0.1,"delta":1e-6}}`,
		http.StatusOK, &sp)
	if !sp.Admitted || sp.Ops != 1 {
		t.Fatalf("spend = %+v", sp)
	}
	stop(cancel, done)

	// Restart on the same directory: the old epoch is fenced, the spend
	// replayed, the budget still half gone.
	base, cancel, done = start()
	defer stop(cancel, done)
	var fenced struct {
		Code string `json:"code"`
	}
	postJSON(t, base+"/v1/ledgers/k/spend",
		`{"epoch":"`+att.Epoch+`","op_id":"c-2","label":"q1","cost":{"epsilon":0.1,"delta":1e-6}}`,
		http.StatusConflict, &fenced)
	if fenced.Code != "epoch-fenced" {
		t.Fatalf("stale-epoch code = %q, want epoch-fenced", fenced.Code)
	}
	var att2 struct {
		Epoch string `json:"epoch"`
		Ops   int    `json:"ops"`
	}
	postJSON(t, base+"/v1/ledgers/k/attach", `{"budget":{"epsilon":0.2,"delta":2e-6}}`, http.StatusOK, &att2)
	if att2.Epoch == att.Epoch || att2.Ops != 1 {
		t.Fatalf("re-attach = %+v (old epoch %q)", att2, att.Epoch)
	}
}

func postJSON(t *testing.T, url, body string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: HTTP %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("POST %s: decoding: %v", url, err)
	}
}
