package experiments

import (
	"encoding/json"
	"testing"
)

// TestFigure1StreamedMatchesInMemory pins the streamed quick path: the
// whole Figure-1 result must serialize identically whether trial
// hierarchies are built from the materialized graph or from slice-source
// cursors over the synthesized edge list, across worker counts.
func TestFigure1StreamedMatchesInMemory(t *testing.T) {
	t.Parallel()
	base, err := DefaultFigure1Config(Options{Quick: true, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	base.Trials = 3

	inMem := base
	inMem.Stream = false
	want, err := RunFigure1(inMem)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		streamed := base
		streamed.Stream = true
		streamed.Workers = workers
		got, err := RunFigure1(streamed)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got.Config = want.Config // compare results, not the mode flags
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(gotJSON) != string(wantJSON) {
			t.Fatalf("workers=%d: streamed Figure-1 result differs from in-memory", workers)
		}
	}
}
