package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro"
)

func TestParseArgs(t *testing.T) {
	cfg, hopts, addr, loads, pprofAddr, err := parseArgs([]string{
		"-addr", "127.0.0.1:9999", "-eps", "3", "-delta", "1e-6",
		"-rounds", "5", "-seed", "42", "-allow-path-ingest",
		"-release-workers", "4", "-pprof", "127.0.0.1:6060",
		"-dataset", "a=/tmp/a.tsv", "-dataset", "b=/tmp/b.bpg",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ReleaseWorkers != 4 {
		t.Fatalf("ReleaseWorkers = %d, want 4", cfg.ReleaseWorkers)
	}
	if pprofAddr != "127.0.0.1:6060" {
		t.Fatalf("pprof addr = %q", pprofAddr)
	}
	if addr != "127.0.0.1:9999" || cfg.Budget.Epsilon != 3 || cfg.Budget.Delta != 1e-6 ||
		cfg.Rounds != 5 || cfg.Seed != 42 {
		t.Fatalf("cfg = %+v addr = %q", cfg, addr)
	}
	if len(loads) != 2 || loads[0] != (preload{"a", "/tmp/a.tsv"}) || loads[1] != (preload{"b", "/tmp/b.bpg"}) {
		t.Fatalf("loads = %+v", loads)
	}
	if !hopts.AllowPathIngest {
		t.Fatal("-allow-path-ingest not threaded through")
	}

	if defCfg, hopts, _, _, pprofDef, err := parseArgs(nil); err != nil || hopts.AllowPathIngest {
		t.Fatalf("path ingest must default off (hopts=%+v err=%v)", hopts, err)
	} else if defCfg.ReleaseWorkers != 1 || pprofDef != "" {
		t.Fatalf("defaults: release-workers=%d pprof=%q", defCfg.ReleaseWorkers, pprofDef)
	}
	if _, _, _, _, _, err := parseArgs([]string{"-dataset", "missing-equals"}); err == nil {
		t.Fatal("malformed -dataset accepted")
	}

	// seed 0 draws entropy.
	cfg, _, _, _, _, err = parseArgs([]string{"-seed", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed == 0 {
		t.Fatal("seed 0 was not replaced with entropy")
	}
}

// TestServeEndToEnd boots the real binary path: preload a TSV, serve,
// query over HTTP, shut down on context cancel.
func TestServeEndToEnd(t *testing.T) {
	g, err := repro.GenerateDataset(repro.PresetDBLPTiny, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "edges.tsv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := repro.SaveTSV(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-rounds", "5", "-seed", "7",
			"-dataset", "tiny=" + path,
		}, func(addr string) { addrc <- addr })
	}()

	var base string
	select {
	case addr := <-addrc:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server never started")
	}

	resp, err := http.Post(base+"/v1/datasets/tiny/sessions", "application/json",
		bytes.NewReader([]byte(`{"stream": 1}`)))
	if err != nil {
		t.Fatal(err)
	}
	var sess struct {
		Session uint64 `json:"session"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Post(fmt.Sprintf("%s/v1/sessions/%d/level", base, sess.Session),
		"application/json", bytes.NewReader([]byte(`{"level": 2}`)))
	if err != nil {
		t.Fatal(err)
	}
	var level struct {
		View struct {
			Cells struct {
				Counts []float64 `json:"counts"`
			} `json:"cells"`
		} `json:"view"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&level); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(level.View.Cells.Counts) == 0 {
		t.Fatalf("level query: status %d, %d cells", resp.StatusCode, len(level.View.Cells.Counts))
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never shut down")
	}
}
