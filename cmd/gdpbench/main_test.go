package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperimentQuick(t *testing.T) {
	if err := run([]string{"-exp", "adjacency", "-quick", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithCSVOutput(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "mechanism", "-quick", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no CSV written")
	}
	blob, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), ",") {
		t.Error("CSV content malformed")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "bogus"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestSanitize(t *testing.T) {
	t.Parallel()
	if got := sanitize("budget-split"); got != "budget-split" {
		t.Errorf("sanitize = %q", got)
	}
	if got := sanitize("We?ird/Name"); strings.ContainsAny(got, "?/ABCDEFGHIJKLMNOPQRSTUVWXYZ") {
		t.Errorf("sanitize left bad chars: %q", got)
	}
}
