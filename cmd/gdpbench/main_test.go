package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperimentQuick(t *testing.T) {
	if err := run([]string{"-exp", "adjacency", "-quick", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithCSVOutput(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "mechanism", "-quick", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no CSV written")
	}
	blob, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), ",") {
		t.Error("CSV content malformed")
	}
}

func TestRunWithBenchJSON(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "adjacency", "-quick", "-workers", "2", "-benchjson", dir}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, "BENCH_adjacency.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec benchRecord
	if err := json.Unmarshal(blob, &rec); err != nil {
		t.Fatalf("bench record is not valid JSON: %v", err)
	}
	if rec.Experiment != "adjacency" || !rec.Quick || rec.Workers != 2 {
		t.Errorf("bench record = %+v", rec)
	}
	if rec.WallMS <= 0 {
		t.Errorf("wall_ms = %v, want > 0", rec.WallMS)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "bogus"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestSanitize(t *testing.T) {
	t.Parallel()
	if got := sanitize("budget-split"); got != "budget-split" {
		t.Errorf("sanitize = %q", got)
	}
	if got := sanitize("We?ird/Name"); strings.ContainsAny(got, "?/ABCDEFGHIJKLMNOPQRSTUVWXYZ") {
		t.Errorf("sanitize left bad chars: %q", got)
	}
}
