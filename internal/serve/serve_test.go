package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/accountant"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dp"
)

// testConfig is the shared serving setup: budget for exactly 50
// single-debit queries (ε 1.0 / 0.02, δ 1e-4 / 2e-6).
func testConfig() Config {
	return Config{
		Budget:   dp.Params{Epsilon: 1.0, Delta: 1e-4},
		PerQuery: dp.Params{Epsilon: 0.02, Delta: 2e-6},
		Rounds:   5,
		Seed:     71,
	}
}

// testSource returns a fresh edge stream of the shared test dataset.
func testSource(t testing.TB) bipartite.EdgeSource {
	t.Helper()
	cfg := datagen.Config{
		Name: "serve-test", NumLeft: 120, NumRight: 150, NumEdges: 1800,
		LeftZipf: 1.9, RightZipf: 2.6, Seed: 5,
	}
	edges, nl, nr, err := datagen.EdgeList(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return bipartite.NewSliceSource(nl, nr, edges)
}

// openTestDataset opens a registry with one ingested dataset.
func openTestDataset(t testing.TB, cfg Config) (*Registry, *Dataset) {
	t.Helper()
	reg, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	ds, err := reg.AddDataset("tiny", testSource(t))
	if err != nil {
		t.Fatal(err)
	}
	return reg, ds
}

func TestRegistryIngestAndLevelView(t *testing.T) {
	t.Parallel()
	reg, ds := openTestDataset(t, testConfig())

	if got := ds.Stats().NumEdges; got != 1800 {
		t.Fatalf("ingested edges = %d, want 1800", got)
	}
	if ds.MaxLevel() != 5 {
		t.Fatalf("max level = %d, want 5", ds.MaxLevel())
	}
	if names := reg.Names(); len(names) != 1 || names[0] != "tiny" {
		t.Fatalf("names = %v", names)
	}

	sess := ds.SessionAt(3)
	view, err := sess.ReleaseLevel(2)
	if err != nil {
		t.Fatal(err)
	}
	k, err := ds.Tree().NumSideGroups(2)
	if err != nil {
		t.Fatal(err)
	}
	if view.Cells == nil || len(view.Cells.Counts) != k*k {
		t.Fatalf("level view histogram has %d cells, want %d", len(view.Cells.Counts), k*k)
	}
	if view.Count.Level != 2 || view.Count.Sigma <= 0 {
		t.Fatalf("level view count malformed: %+v", view.Count)
	}

	// A level view debits exactly 2×PerQuery, atomically.
	pq := reg.Config().PerQuery
	spent := ds.Spent()
	if math.Abs(spent.Epsilon-2*pq.Epsilon) > 1e-12 || math.Abs(spent.Delta-2*pq.Delta) > 1e-18 {
		t.Fatalf("spent %v after one level view, want 2×%v", spent, pq)
	}
	ops := ds.Ops()
	if len(ops) != 1 || ops[0].Label != "s3/q0/view/level2" {
		t.Fatalf("audit trail = %+v", ops)
	}

	// The histogram buffer is the session's reusable engine buffer: a
	// second query writes into the same backing array.
	first := &view.Cells.Counts[0]
	view2, err := sess.ReleaseLevel(2)
	if err != nil {
		t.Fatal(err)
	}
	if &view2.Cells.Counts[0] != first {
		t.Fatal("second level view reallocated the session's cell buffer")
	}
}

func TestSessionQueriesValidateBeforeSpending(t *testing.T) {
	t.Parallel()
	_, ds := openTestDataset(t, testConfig())
	sess := ds.NewSession()

	if _, err := sess.ReleaseLevel(99); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := sess.Marginal(2, bipartite.Side(9)); err == nil {
		t.Fatal("bad side accepted")
	}
	if _, err := sess.TopK(2, bipartite.Left, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := sess.TopK(2, bipartite.Left, 1<<20); err == nil {
		t.Fatal("oversized k accepted")
	}
	if spent := ds.Spent(); spent.Epsilon != 0 || spent.Delta != 0 {
		t.Fatalf("invalid queries spent budget: %v", spent)
	}
	if sess.Seq() != 0 {
		t.Fatalf("invalid queries advanced the stream: seq=%d", sess.Seq())
	}
}

func TestRegistryDatasetLifecycle(t *testing.T) {
	t.Parallel()
	reg, _ := openTestDataset(t, testConfig())

	if _, err := reg.AddDataset("tiny", testSource(t)); !errors.Is(err, ErrDatasetExists) {
		t.Fatalf("duplicate ingest: %v", err)
	}
	if _, err := reg.Dataset("nope"); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("unknown dataset: %v", err)
	}
	if err := reg.RemoveDataset("tiny"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Dataset("tiny"); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("removed dataset still served: %v", err)
	}
	reg.Close()
	if _, err := reg.AddDataset("post-close", testSource(t)); !errors.Is(err, ErrClosed) {
		t.Fatalf("ingest after close: %v", err)
	}
}

func TestPhase1EpsilonDebitsIngest(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.Phase1Epsilon = 0.01
	_, ds := openTestDataset(t, cfg)
	want := 2 * float64(cfg.Rounds) * cfg.Phase1Epsilon
	if spent := ds.Spent(); math.Abs(spent.Epsilon-want) > 1e-12 {
		t.Fatalf("phase-1 ingest spent ε=%v, want %v", spent.Epsilon, want)
	}
	ops := ds.Ops()
	if len(ops) != 1 || ops[0].Label != "ingest/phase1" {
		t.Fatalf("audit trail = %+v", ops)
	}

	// A budget too small for the specialization must refuse the ingest.
	tight := testConfig()
	tight.Phase1Epsilon = 1.0 // 2·5·1.0 = 10 > ε budget 1.0
	reg2, err := Open(tight)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if _, err := reg2.AddDataset("x", testSource(t)); !errors.Is(err, accountant.ErrBudgetExceeded) {
		t.Fatalf("over-budget phase 1: %v", err)
	}
	if _, err := reg2.Dataset("x"); !errors.Is(err, ErrUnknownDataset) {
		t.Fatal("failed ingest left the name registered")
	}
}

// TestConcurrentSessionsDrainLedgerExactly is the serving layer's race
// and accounting contract: N goroutine sessions hammer one dataset until
// the ledger refuses; exactly capacity queries are admitted (no
// overspend, no stranded budget), and every session's answers match a
// serial replay of the same per-session sequences — interleaving can
// change who gets budget, never what anyone's draws are.
func TestConcurrentSessionsDrainLedgerExactly(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	const sessions = 8
	const capacity = 50 // Budget / PerQuery on both components

	_, ds := openTestDataset(t, cfg)
	var admitted atomic.Int64
	results := make([][][]float64, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := ds.SessionAt(uint64(i))
			for {
				m, err := sess.Marginal(2, bipartite.Left)
				if err != nil {
					if !errors.Is(err, accountant.ErrBudgetExceeded) {
						t.Errorf("session %d: unexpected error: %v", i, err)
					}
					return
				}
				admitted.Add(1)
				results[i] = append(results[i], m)
			}
		}(i)
	}
	wg.Wait()

	if got := admitted.Load(); got != capacity {
		t.Fatalf("admitted %d queries, want exactly %d", got, capacity)
	}
	spent, budget := ds.Spent(), ds.Budget()
	if spent.Epsilon > budget.Epsilon*(1+1e-9) || spent.Delta > budget.Delta*(1+1e-9) {
		t.Fatalf("overspend: %v > %v", spent, budget)
	}
	rem := ds.Remaining()
	if rem.Epsilon > budget.Epsilon*1e-9 || rem.Delta > budget.Delta*1e-9 {
		t.Fatalf("ledger not drained to zero: remaining %v", rem)
	}
	// Exhausted means exhausted for every query shape.
	if _, err := ds.NewSession().ReleaseLevel(1); !errors.Is(err, accountant.ErrBudgetExceeded) {
		t.Fatalf("post-drain level view: %v", err)
	}

	// Serial replay on a fresh registry: each session re-runs its own
	// admitted count in order; every answer must be bitwise identical to
	// what it got under contention.
	_, replayDS := openTestDataset(t, cfg)
	for i := 0; i < sessions; i++ {
		sess := replayDS.SessionAt(uint64(i))
		for qi, want := range results[i] {
			got, err := sess.Marginal(2, bipartite.Left)
			if err != nil {
				t.Fatalf("replay session %d query %d: %v", i, qi, err)
			}
			for gi := range want {
				if math.Float64bits(got[gi]) != math.Float64bits(want[gi]) {
					t.Fatalf("session %d query %d group %d: concurrent %v, replay %v",
						i, qi, gi, want[gi], got[gi])
				}
			}
		}
	}
}

// TestSessionReplayByteIdentical pins the full replay contract across
// registries: same seed, same dataset, same pinned stream, same query
// sequence — the serialized answers are byte-identical, and distinct
// streams draw distinct noise.
func TestSessionReplayByteIdentical(t *testing.T) {
	t.Parallel()
	transcript := func(stream uint64) []byte {
		_, ds := openTestDataset(t, testConfig())
		sess := ds.SessionAt(stream)
		var blob []byte
		view, err := sess.ReleaseLevel(2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(view)
		if err != nil {
			t.Fatal(err)
		}
		blob = append(blob, b...)
		m, err := sess.Marginal(1, bipartite.Right)
		if err != nil {
			t.Fatal(err)
		}
		b, err = json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		blob = append(blob, b...)
		topk, err := sess.TopK(2, bipartite.Left, 3)
		if err != nil {
			t.Fatal(err)
		}
		b, err = json.Marshal(topk)
		if err != nil {
			t.Fatal(err)
		}
		return append(blob, b...)
	}

	a, b := transcript(7), transcript(7)
	if string(a) != string(b) {
		t.Fatal("pinned stream did not replay byte-identical answers")
	}
	if string(a) == string(transcript(8)) {
		t.Fatal("distinct streams produced identical transcripts")
	}
}

func TestConfigValidation(t *testing.T) {
	t.Parallel()
	if _, err := Open(Config{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero config: %v", err)
	}
	bad := testConfig()
	bad.Rounds = 99
	if _, err := Open(bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bad rounds: %v", err)
	}
	bad = testConfig()
	bad.Phase1Epsilon = -1
	if _, err := Open(bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("negative phase-1 eps: %v", err)
	}
	bad = testConfig()
	bad.Model = core.GroupModel(42)
	if _, err := Open(bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bad model: %v", err)
	}

	// PerQuery defaulting: Budget/64 on both components.
	cfg := testConfig()
	cfg.PerQuery = dp.Params{}
	reg, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	pq := reg.Config().PerQuery
	if pq.Epsilon != cfg.Budget.Epsilon/64 || pq.Delta != cfg.Budget.Delta/64 {
		t.Fatalf("defaulted per-query budget = %v", pq)
	}

	// Registry rejects empty names and nil sources.
	if _, err := reg.AddDataset("", testSource(t)); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := reg.AddDataset("ds", nil); err == nil {
		t.Fatal("nil source accepted")
	}
}

// TestConcurrentIngestLanes fans several ingests across two retained
// Builder lanes; every dataset must be independently correct.
func TestConcurrentIngestLanes(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.IngestLanes = 2
	reg, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	const n = 6
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = reg.AddDataset(fmt.Sprintf("ds%d", i), testSource(t))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	if got := len(reg.Names()); got != n {
		t.Fatalf("registry serves %d datasets, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		ds, err := reg.Dataset(fmt.Sprintf("ds%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if ds.Stats().NumEdges != 1800 {
			t.Fatalf("dataset %d has %d edges", i, ds.Stats().NumEdges)
		}
	}
}

// benchDataset opens a registry whose budget never exhausts under b.N.
func benchDataset(b *testing.B) *Dataset {
	b.Helper()
	cfg := Config{
		Budget:   dp.Params{Epsilon: 1e12, Delta: 0.5},
		PerQuery: dp.Params{Epsilon: 1e-3, Delta: 1e-12},
		Rounds:   6,
		Seed:     71,
	}
	_, ds := openTestDataset(b, cfg)
	return ds
}

// BenchmarkServeSessionMarginal is the serving hot path: ledger debit +
// one batched histogram release into the session's reusable buffer +
// marginal post-processing.
func BenchmarkServeSessionMarginal(b *testing.B) {
	ds := benchDataset(b)
	sess := ds.SessionAt(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Marginal(2, bipartite.Left); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeSessionLevelView serves the full level view (count +
// histogram) per iteration.
func BenchmarkServeSessionLevelView(b *testing.B) {
	ds := benchDataset(b)
	sess := ds.SessionAt(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.ReleaseLevel(3); err != nil {
			b.Fatal(err)
		}
	}
}
