package query

import (
	"errors"
	"math"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dp"
	"repro/internal/hierarchy"
	"repro/internal/partition"
	"repro/internal/rng"
)

func testTree(t testing.TB) *hierarchy.Tree {
	t.Helper()
	g, err := datagen.Generate(datagen.Config{
		Name: "q", NumLeft: 100, NumRight: 150, NumEdges: 1200,
		LeftZipf: 1.9, RightZipf: 2.8, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := hierarchy.Build(g, hierarchy.Options{Rounds: 4, Bisector: partition.BalancedBisector{}})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestTotalAssociations(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	if TotalAssociations(tree.Graph()) != tree.Graph().NumEdges() {
		t.Error("TotalAssociations disagrees with graph")
	}
	var empty bipartite.Graph
	if TotalAssociations(&empty) != 0 {
		t.Error("empty graph should count 0")
	}
}

func TestExactRectFullGridEqualsTotal(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	for level := 0; level <= tree.MaxLevel(); level++ {
		k, err := tree.NumSideGroups(level)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := ExactRect(tree, Rect{Level: level, I0: 0, I1: k, J0: 0, J1: k})
		if err != nil {
			t.Fatal(err)
		}
		if sum != tree.Graph().NumEdges() {
			t.Errorf("level %d full rect = %d, want %d", level, sum, tree.Graph().NumEdges())
		}
	}
}

func TestExactRectAdditive(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	const level = 2 // 4x4 grid
	left, err := ExactRect(tree, Rect{Level: level, I0: 0, I1: 2, J0: 0, J1: 4})
	if err != nil {
		t.Fatal(err)
	}
	right, err := ExactRect(tree, Rect{Level: level, I0: 2, I1: 4, J0: 0, J1: 4})
	if err != nil {
		t.Fatal(err)
	}
	if left+right != tree.Graph().NumEdges() {
		t.Errorf("halves sum to %d, want %d", left+right, tree.Graph().NumEdges())
	}
}

func TestRectValidation(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	bad := []Rect{
		{Level: 2, I0: -1, I1: 1, J0: 0, J1: 1},
		{Level: 2, I0: 0, I1: 0, J0: 0, J1: 1},
		{Level: 2, I0: 0, I1: 5, J0: 0, J1: 1},
		{Level: 2, I0: 0, I1: 1, J0: 3, J1: 2},
	}
	for _, r := range bad {
		if _, err := ExactRect(tree, r); !errors.Is(err, ErrBadRect) {
			t.Errorf("rect %+v error = %v", r, err)
		}
	}
	if _, err := ExactRect(nil, Rect{Level: 0, I1: 1, J1: 1}); !errors.Is(err, ErrNilTree) {
		t.Errorf("nil tree: %v", err)
	}
	if _, err := ExactRect(tree, Rect{Level: 99, I1: 1, J1: 1}); err == nil {
		t.Error("bad level accepted")
	}
}

func TestRectNumCells(t *testing.T) {
	t.Parallel()
	r := Rect{I0: 1, I1: 3, J0: 0, J1: 4}
	if r.NumCells() != 8 {
		t.Errorf("NumCells = %d, want 8", r.NumCells())
	}
}

func TestReleasedRect(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	const level = 2
	rel, err := core.ReleaseCells(tree, level, dp.Params{Epsilon: 0.9, Delta: 1e-5},
		core.CalibrationClassical, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	k := rel.SideGroups
	full := Rect{Level: level, I0: 0, I1: k, J0: 0, J1: k}
	got, err := ReleasedRect(rel, full)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-rel.SumCells()) > 1e-9 {
		t.Errorf("full released rect = %v, want %v", got, rel.SumCells())
	}
	// Level mismatch.
	if _, err := ReleasedRect(rel, Rect{Level: 1, I1: 1, J1: 1}); !errors.Is(err, ErrLevelMismatch) {
		t.Errorf("level mismatch error = %v", err)
	}
	if _, err := ReleasedRect(rel, Rect{Level: level, I0: 0, I1: k + 1, J0: 0, J1: 1}); !errors.Is(err, ErrBadRect) {
		t.Errorf("bad rect error = %v", err)
	}
}

func TestRandomRectsInRange(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	const level = 1
	k, err := tree.NumSideGroups(level)
	if err != nil {
		t.Fatal(err)
	}
	rects, err := RandomRects(rng.New(5), tree, level, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rects) != 200 {
		t.Fatalf("got %d rects", len(rects))
	}
	for _, r := range rects {
		if err := r.validate(k); err != nil {
			t.Fatalf("generated invalid rect: %v", err)
		}
		if r.Level != level {
			t.Fatal("rect level wrong")
		}
	}
}

func TestRandomRectsErrors(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	if _, err := RandomRects(nil, tree, 0, 5); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := RandomRects(rng.New(1), nil, 0, 5); !errors.Is(err, ErrNilTree) {
		t.Error("nil tree accepted")
	}
	if _, err := RandomRects(rng.New(1), tree, 0, -1); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := RandomRects(rng.New(1), tree, 99, 5); err == nil {
		t.Error("bad level accepted")
	}
}

func TestEvaluateWorkload(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	const level = 2
	rel, err := core.ReleaseCells(tree, level, dp.Params{Epsilon: 0.9, Delta: 1e-5},
		core.CalibrationClassical, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	rects, err := RandomRects(rng.New(9), tree, level, 100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(tree, rel, rects)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumQueries != 100 || res.Level != level {
		t.Errorf("result = %+v", res)
	}
	if res.AbsErr.N != 100 {
		t.Errorf("abs err N = %d", res.AbsErr.N)
	}
	// Mean absolute error should be within an order of magnitude of
	// sigma * sqrt(mean cells per rect); loose sanity bound.
	if res.AbsErr.Mean <= 0 {
		t.Error("zero mean abs error from a noisy release is implausible")
	}
	maxPlausible := rel.Sigma * math.Sqrt(float64(16)) * 10
	if res.AbsErr.Mean > maxPlausible {
		t.Errorf("mean abs error %v exceeds plausible bound %v", res.AbsErr.Mean, maxPlausible)
	}
}

func TestEvaluateEmptyWorkload(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	rel, err := core.ReleaseCells(tree, 1, dp.Params{Epsilon: 0.9, Delta: 1e-5},
		core.CalibrationClassical, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(tree, rel, nil); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestEvaluateMoreBudgetLessError(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	const level = 2
	rects, err := RandomRects(rng.New(10), tree, level, 200)
	if err != nil {
		t.Fatal(err)
	}
	run := func(eps float64) float64 {
		rel, err := core.ReleaseCells(tree, level, dp.Params{Epsilon: eps, Delta: 1e-5},
			core.CalibrationClassical, rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Evaluate(tree, rel, rects)
		if err != nil {
			t.Fatal(err)
		}
		return res.AbsErr.Mean
	}
	tight := run(0.1)
	loose := run(0.9)
	if loose >= tight {
		t.Errorf("error with eps=0.9 (%v) not lower than eps=0.1 (%v)", loose, tight)
	}
}
