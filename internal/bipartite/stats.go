package bipartite

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stats summarizes the shape of an association graph. The disclosure
// pipeline logs these to document each dataset, and the synthetic
// generator's tests compare them against DBLP's published shape.
type Stats struct {
	NumLeft  int   `json:"num_left"`
	NumRight int   `json:"num_right"`
	NumEdges int64 `json:"num_edges"`

	MeanLeftDegree  float64 `json:"mean_left_degree"`
	MeanRightDegree float64 `json:"mean_right_degree"`
	MaxLeftDegree   int64   `json:"max_left_degree"`
	MaxRightDegree  int64   `json:"max_right_degree"`

	// MedianLeftDegree and MedianRightDegree are medians over nodes that
	// exist on that side (isolated nodes count with degree zero).
	MedianLeftDegree  float64 `json:"median_left_degree"`
	MedianRightDegree float64 `json:"median_right_degree"`

	// GiniLeft and GiniRight measure degree concentration in [0,1];
	// heavy-tailed real datasets such as DBLP sit well above 0.4 on the
	// author side.
	GiniLeft  float64 `json:"gini_left"`
	GiniRight float64 `json:"gini_right"`

	Density float64 `json:"density"`
}

// ComputeStats scans the graph once per side and returns its summary.
func ComputeStats(g *Graph) Stats {
	return StatsFromDegrees(degreeSlice(g, Left), degreeSlice(g, Right))
}

// StatsFromDegrees computes the summary from per-node degree slices alone
// — everything Stats reports is a functional of the two degree sequences.
// The streamed build path uses it to document a dataset it never held as
// a Graph; ComputeStats delegates here, so the two paths agree bit for
// bit. The slices are read, not modified.
func StatsFromDegrees(leftDegrees, rightDegrees []int64) Stats {
	var edges int64
	for _, d := range leftDegrees {
		edges += d
	}
	s := Stats{
		NumLeft:  len(leftDegrees),
		NumRight: len(rightDegrees),
		NumEdges: edges,
	}
	if s.NumLeft > 0 {
		s.MeanLeftDegree = float64(s.NumEdges) / float64(s.NumLeft)
	}
	if s.NumRight > 0 {
		s.MeanRightDegree = float64(s.NumEdges) / float64(s.NumRight)
	}
	s.MaxLeftDegree = maxOf(leftDegrees)
	s.MaxRightDegree = maxOf(rightDegrees)
	s.MedianLeftDegree = medianOf(leftDegrees)
	s.MedianRightDegree = medianOf(rightDegrees)
	s.GiniLeft = gini(leftDegrees)
	s.GiniRight = gini(rightDegrees)
	if s.NumLeft > 0 && s.NumRight > 0 {
		s.Density = float64(s.NumEdges) / (float64(s.NumLeft) * float64(s.NumRight))
	}
	return s
}

// Degrees returns a fresh slice of per-node degrees on side s, indexed by
// node id.
func (g *Graph) Degrees(s Side) []int64 { return degreeSlice(g, s) }

// String renders the stats as a compact single-line summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "|L|=%d |R|=%d |E|=%d", s.NumLeft, s.NumRight, s.NumEdges)
	fmt.Fprintf(&b, " degL(mean=%.2f,med=%.1f,max=%d)", s.MeanLeftDegree, s.MedianLeftDegree, s.MaxLeftDegree)
	fmt.Fprintf(&b, " degR(mean=%.2f,med=%.1f,max=%d)", s.MeanRightDegree, s.MedianRightDegree, s.MaxRightDegree)
	fmt.Fprintf(&b, " gini(L=%.3f,R=%.3f)", s.GiniLeft, s.GiniRight)
	return b.String()
}

func degreeSlice(g *Graph, side Side) []int64 {
	n := g.NumSide(side)
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		out[i] = g.Degree(side, int32(i))
	}
	return out
}

func maxOf(v []int64) int64 {
	var m int64
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

func medianOf(v []int64) float64 {
	if len(v) == 0 {
		return 0
	}
	sorted := append([]int64(nil), v...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return float64(sorted[mid])
	}
	return float64(sorted[mid-1]+sorted[mid]) / 2
}

// gini computes the Gini coefficient of a non-negative integer vector.
func gini(v []int64) float64 {
	if len(v) == 0 {
		return 0
	}
	sorted := append([]int64(nil), v...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total, weighted float64
	for i, x := range sorted {
		total += float64(x)
		weighted += float64(i+1) * float64(x)
	}
	if total == 0 {
		return 0
	}
	n := float64(len(sorted))
	return (2*weighted - (n+1)*total) / (n * total)
}

// DegreeHistogram returns counts[d] = number of nodes on side s with
// degree d, up to and including the maximum degree.
func DegreeHistogram(g *Graph, s Side) []int64 {
	max := g.MaxDegree(s)
	counts := make([]int64, max+1)
	n := g.NumSide(s)
	for i := 0; i < n; i++ {
		counts[g.Degree(s, int32(i))]++
	}
	return counts
}

// DegreeQuantile returns the q-quantile (q in [0,1]) of the side-s degree
// distribution. NaN is returned for an empty side or invalid q.
func DegreeQuantile(g *Graph, s Side, q float64) float64 {
	n := g.NumSide(s)
	if n == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	degrees := degreeSlice(g, s)
	sort.Slice(degrees, func(i, j int) bool { return degrees[i] < degrees[j] })
	idx := int(q * float64(n-1))
	return float64(degrees[idx])
}
