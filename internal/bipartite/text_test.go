package bipartite

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestIsUintCanonical pins the canonical-digits rule: ParseInt-permissive
// forms ("+1", "01") must not count as numeric, because in id mode they
// would collapse fields that are distinct as names onto one dense id.
func TestIsUintCanonical(t *testing.T) {
	accept := []string{"0", "1", "42", "2147483647"}
	reject := []string{"", "+1", "-1", "01", "00", " 1", "1 ", "1.0", "0x1", "2147483648", "99999999999", "a", "１"}
	for _, s := range accept {
		if !isUint(s) {
			t.Errorf("isUint(%q) = false, want true", s)
		}
	}
	for _, s := range reject {
		if isUint(s) {
			t.Errorf("isUint(%q) = true, want false", s)
		}
	}
}

// TestLoadTSVLeadingZeroIsNameMode is the regression for the id-collapse
// bug: "01" and "1" are distinct left entities, so the file must load in
// name mode with two left nodes — the old ParseInt-based sniff folded
// them both onto id 1.
func TestLoadTSVLeadingZeroIsNameMode(t *testing.T) {
	g, err := LoadTSV(strings.NewReader("01\t5\n1\t5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasNames() {
		t.Fatalf("leading-zero field should force name mode")
	}
	if g.NumLeft() != 2 {
		t.Fatalf("NumLeft = %d, want 2 ('01' and '1' are distinct)", g.NumLeft())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
}

// TestLoadTSVPlusSignIsNameMode: "+1" parses under ParseInt but is not a
// canonical id, so it must intern as a name.
func TestLoadTSVPlusSignIsNameMode(t *testing.T) {
	g, err := LoadTSV(strings.NewReader("+1\t2\n1\t2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasNames() || g.NumLeft() != 2 {
		t.Fatalf("HasNames=%v NumLeft=%d, want name mode with 2 left nodes", g.HasNames(), g.NumLeft())
	}
}

// TestTSVRoundTripNumericNames is the regression for the save/load
// asymmetry: a graph whose interned names are numeric strings must come
// back in name mode with the same shape, not silently re-densify as ids.
func TestTSVRoundTripNumericNames(t *testing.T) {
	b := NewBuilder(0)
	b.AddAssociation("10", "7")
	b.AddAssociation("3", "7")
	b.AddAssociation("10", "44")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := SaveTSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), tsvHeaderPrefix+tsvModeNames+"\n") {
		t.Fatalf("named graph did not save a names-mode header; got %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	got, err := LoadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasNames() {
		t.Fatalf("numeric-string names reloaded without names")
	}
	if got.NumLeft() != g.NumLeft() || got.NumRight() != g.NumRight() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %dx%d/%d -> %dx%d/%d",
			g.NumLeft(), g.NumRight(), g.NumEdges(), got.NumLeft(), got.NumRight(), got.NumEdges())
	}
	// Edges must be preserved under the names, whatever the id order.
	want := map[[2]string]bool{}
	g.ForEachEdge(func(l, r int32) bool {
		want[[2]string{g.LeftName(l), g.RightName(r)}] = true
		return true
	})
	got.ForEachEdge(func(l, r int32) bool {
		key := [2]string{got.LeftName(l), got.RightName(r)}
		if !want[key] {
			t.Errorf("unexpected edge %v after round trip", key)
		}
		delete(want, key)
		return true
	})
	if len(want) != 0 {
		t.Fatalf("edges lost in round trip: %v", want)
	}
}

// TestTSVRoundTripIDsHeader: id graphs save an ids header and reload in id
// mode with identical shape.
func TestTSVRoundTripIDsHeader(t *testing.T) {
	g, err := FromEdges(3, 4, []Edge{{0, 1}, {2, 3}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveTSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), tsvHeaderPrefix+tsvModeIDs+"\n") {
		t.Fatalf("id graph did not save an ids-mode header")
	}
	got, err := LoadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.HasNames() {
		t.Fatalf("id-mode file reloaded with names")
	}
	if got.NumEdges() != g.NumEdges() {
		t.Fatalf("NumEdges = %d, want %d", got.NumEdges(), g.NumEdges())
	}
}

// TestLoadTSVHeaderForcesNames: a names header makes all-numeric fields
// intern as labels.
func TestLoadTSVHeaderForcesNames(t *testing.T) {
	in := tsvHeaderPrefix + tsvModeNames + "\n10\t7\n3\t7\n"
	g, err := LoadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasNames() {
		t.Fatalf("names header ignored")
	}
	if g.NumLeft() != 2 || g.NumRight() != 1 {
		t.Fatalf("sides %dx%d, want 2x1 (dense interning, not id values)", g.NumLeft(), g.NumRight())
	}
}

// TestLoadTSVHeaderIDsRejectsNonNumeric: under a forced ids header a
// non-numeric field is an error with its line number, not a silent mode
// flip.
func TestLoadTSVHeaderIDsRejectsNonNumeric(t *testing.T) {
	in := tsvHeaderPrefix + tsvModeIDs + "\n1\t2\nalice\t2\n"
	_, err := LoadTSV(strings.NewReader(in))
	if err == nil {
		t.Fatal("want error for non-numeric field in id-mode file")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %q does not name line 3", err)
	}
}

// TestLoadTSVUnknownHeaderMode rejects a header with a bogus mode.
func TestLoadTSVUnknownHeaderMode(t *testing.T) {
	if _, err := LoadTSV(strings.NewReader(tsvHeaderPrefix + "banana\n1\t2\n")); err == nil {
		t.Fatal("want error for unknown header mode")
	}
}

// TestLoadTSVTooLongLineNamesLine is the regression for the bare
// bufio.ErrTooLong: the error must carry the line number of the offender
// and unwrap to bufio.ErrTooLong.
func TestLoadTSVTooLongLineNamesLine(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("1\t2\n")
	sb.WriteString("3\t")
	sb.WriteString(strings.Repeat("x", maxTSVLine+1))
	sb.WriteString("\n")
	_, err := LoadTSV(strings.NewReader(sb.String()))
	if err == nil {
		t.Fatal("want error for an over-long line")
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("error %v does not unwrap to bufio.ErrTooLong", err)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %q does not name line 2", err)
	}
}

// TestLoadTSVParseErrorsSurface: numeric-branch parse failures return an
// error naming the field rather than silently truncating ids to zero.
// (Canonical sniffing makes the branch unreachable through public input
// today; the guard is what keeps a future sniff change from reintroducing
// silent zeros.)
func TestLoadTSVParseErrorsSurface(t *testing.T) {
	// 2147483648 overflows int32: canonical sniff rejects it, so the file
	// loads as names — the old code would have ParseInt-error'd into id 0.
	g, err := LoadTSV(strings.NewReader("2147483648\t1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasNames() {
		t.Fatal("int32-overflowing field must fall back to name mode, not id 0")
	}
	if g.LeftName(0) != "2147483648" {
		t.Fatalf("LeftName(0) = %q, want the original field", g.LeftName(0))
	}
}
