//go:build !unix

package accountant

import "os"

// lockLedgerFile is a no-op on platforms without flock; single-writer
// discipline is then the operator's responsibility.
func lockLedgerFile(*os.File) error { return nil }
