// Command gdploadgen is an open-loop load generator for gdpserve: it
// fires queries at a fixed target rate on an absolute schedule (tick n
// fires at start + n/QPS whether or not earlier requests have
// returned), so a slow server shows up as high latency and dropped
// ticks instead of the generator politely slowing down to match it —
// the coordinated-omission failure mode of closed-loop harnesses.
//
// Usage:
//
//	gdploadgen -addr 127.0.0.1:8080 -dataset load -qps 200 -duration 10s
//	gdploadgen -hit-ratio 0.9 -mix marginal=0.7,topk=0.2,level=0.1
//	gdploadgen -benchjson BENCH_load.json
//
// Sessions come in groups pinned to one RNG stream each. Every member
// of a group replays the same deterministic query sequence, so after a
// group's fastest member has answered sequence number s, the other
// members' (stream, seq, query) keys hit the server's response cache —
// with D members per group the steady-state hit fraction approaches
// (D-1)/D, which is how -hit-ratio shapes the served mix without any
// server-side knob. Cache hits serve the prior answer without
// re-debiting the privacy ledger, so the server's budget drains with
// the miss rate, not the request rate.
//
// Latencies land in an HDR-style log-linear histogram (64 sub-buckets
// per power of two, ≤ ~3% relative error) and the run can emit a
// BENCH_load.json consumed by cmd/benchdiff.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/bits"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gdploadgen:", err)
		os.Exit(1)
	}
}

// config is the parsed flag set.
type config struct {
	base       string // http://host:port
	dataset    string
	qps        float64
	duration   time.Duration
	groups     int     // stream groups
	hitRatio   float64 // target cache-hit fraction → members per group
	mix        queryMix
	levelMax   int
	kMax       int
	streamBase uint64
	seed       uint64
	benchjson  string
	timeout    time.Duration
}

// queryMix is the relative weight of each query kind, normalized to
// sum 1.
type queryMix struct {
	marginal, topk, level float64
}

func parseMix(s string) (queryMix, error) {
	m := queryMix{}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return queryMix{}, fmt.Errorf("mix term %q: want kind=weight", part)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w < 0 || math.IsInf(w, 0) || math.IsNaN(w) {
			return queryMix{}, fmt.Errorf("mix term %q: bad weight", part)
		}
		switch name {
		case "marginal":
			m.marginal = w
		case "topk":
			m.topk = w
		case "level":
			m.level = w
		default:
			return queryMix{}, fmt.Errorf("mix term %q: unknown kind (want marginal, topk or level)", part)
		}
	}
	total := m.marginal + m.topk + m.level
	if total <= 0 {
		return queryMix{}, fmt.Errorf("mix %q has no positive weight", s)
	}
	m.marginal /= total
	m.topk /= total
	m.level /= total
	return m, nil
}

// membersPerGroup converts the target hit ratio into the replay fan-out
// D: with D members replaying one sequence, roughly (D-1)/D of requests
// hit the response cache.
func membersPerGroup(hitRatio float64) int {
	if hitRatio <= 0 {
		return 1
	}
	if hitRatio >= 1 {
		return 16
	}
	d := int(math.Round(1 / (1 - hitRatio)))
	if d < 1 {
		d = 1
	}
	if d > 16 {
		d = 16
	}
	return d
}

func parseArgs(args []string) (config, error) {
	fs := flag.NewFlagSet("gdploadgen", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "gdpserve address (host:port or http:// URL)")
		dataset  = fs.String("dataset", "load", "dataset to query")
		qps      = fs.Float64("qps", 200, "target request rate (open loop: the schedule never slows down for the server)")
		duration = fs.Duration("duration", 10*time.Second, "run length")
		groups   = fs.Int("sessions", 8, "session stream groups (each pins one RNG stream)")
		hit      = fs.Float64("hit-ratio", 0.5, "target response-cache hit fraction in [0,1); members per group = round(1/(1-h)), capped at 16")
		mixFlag  = fs.String("mix", "marginal=0.7,topk=0.2,level=0.1", "query-kind weights")
		levelMax = fs.Int("level-max", 3, "queries draw levels in [1, level-max]")
		kMax     = fs.Int("k-max", 8, "top-k queries draw k in [1, k-max]")
		stream   = fs.Uint64("stream-base", 1<<32, "first group's pinned stream (group g uses stream-base + g)")
		seed     = fs.Uint64("seed", 1, "query-sequence seed (same seed + flags = same query schedule)")
		benchout = fs.String("benchjson", "", "write the run's metrics to this JSON file")
		timeout  = fs.Duration("timeout", 5*time.Second, "per-request timeout")
	)
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	cfg := config{
		base: *addr, dataset: *dataset, qps: *qps, duration: *duration,
		groups: *groups, hitRatio: *hit, levelMax: *levelMax, kMax: *kMax,
		streamBase: *stream, seed: *seed, benchjson: *benchout, timeout: *timeout,
	}
	if !strings.Contains(cfg.base, "://") {
		cfg.base = "http://" + cfg.base
	}
	cfg.base = strings.TrimRight(cfg.base, "/")
	if cfg.qps <= 0 || math.IsInf(cfg.qps, 0) || math.IsNaN(cfg.qps) {
		return config{}, fmt.Errorf("bad -qps %v", cfg.qps)
	}
	if cfg.duration <= 0 {
		return config{}, fmt.Errorf("bad -duration %v", cfg.duration)
	}
	if cfg.groups < 1 {
		return config{}, fmt.Errorf("bad -sessions %d", cfg.groups)
	}
	if cfg.hitRatio < 0 || cfg.hitRatio > 1 || math.IsNaN(cfg.hitRatio) {
		return config{}, fmt.Errorf("bad -hit-ratio %v", cfg.hitRatio)
	}
	if cfg.levelMax < 1 {
		return config{}, fmt.Errorf("bad -level-max %d", cfg.levelMax)
	}
	if cfg.kMax < 1 {
		return config{}, fmt.Errorf("bad -k-max %d", cfg.kMax)
	}
	var err error
	cfg.mix, err = parseMix(*mixFlag)
	if err != nil {
		return config{}, err
	}
	return cfg, nil
}

// query is one generated request.
type query struct {
	kind  string // "marginal", "topk", "level"
	level int
	side  string
	k     int
}

// member is one HTTP session handle replaying its group's sequence.
// Exactly one in-flight request per member (returned to the ready pool
// only after completion), so its seq counter and query source advance
// strictly in order — the alignment the cache-replay scheme needs.
type member struct {
	session uint64
	qsrc    *rng.Source
}

// nextQuery draws the member's next query. Every member of a group owns
// an identically seeded source and draws the same fields in the same
// order, so position i yields the same query for all of them. All four
// draws happen for every query regardless of kind, keeping the
// sequence alignment draw-count independent.
func (m *member) nextQuery(cfg *config) query {
	u := m.qsrc.Float64()
	level := 1 + m.qsrc.Intn(cfg.levelMax)
	side := "left"
	if m.qsrc.Uint64()&1 == 1 {
		side = "right"
	}
	k := 1 + m.qsrc.Intn(cfg.kMax)
	q := query{level: level, side: side, k: k}
	switch {
	case u < cfg.mix.marginal:
		q.kind = "marginal"
	case u < cfg.mix.marginal+cfg.mix.topk:
		q.kind = "topk"
	default:
		q.kind = "level"
	}
	return q
}

// hdrHist is a log-linear latency histogram: values below 64 map to
// their own bucket; above, each power of two splits into 64 sub-buckets
// (the top 32 are populated), bounding relative error by 1/32.
type hdrHist struct {
	counts []atomic.Uint64
	total  atomic.Uint64
	max    atomic.Uint64
}

const hdrSubBits = 6 // 64 sub-buckets per power of two

func newHdrHist() *hdrHist {
	// 64-bit values need at most (64-hdrSubBits) scaled rows.
	return &hdrHist{counts: make([]atomic.Uint64, (64-hdrSubBits+1)<<hdrSubBits)}
}

func hdrIndex(v uint64) int {
	row := bits.Len64(v) - hdrSubBits
	if row <= 0 {
		return int(v)
	}
	// v>>row lands in [32, 64): the populated upper half of the row.
	return row<<hdrSubBits + int(v>>row)
}

// hdrValue reconstructs a bucket's midpoint value.
func hdrValue(idx int) uint64 {
	row := idx >> hdrSubBits
	sub := uint64(idx & (1<<hdrSubBits - 1))
	if row == 0 {
		return sub
	}
	return sub<<row + 1<<(row-1)
}

func (h *hdrHist) add(v uint64) {
	h.counts[hdrIndex(v)].Add(1)
	h.total.Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// percentile returns the value at quantile q in [0,1].
func (h *hdrHist) percentile(q float64) uint64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			return hdrValue(i)
		}
	}
	return h.max.Load()
}

// loadReport is the BENCH_load.json shape; cmd/benchdiff gates
// achieved_qps and the CPU-stamp fields let it skip cross-machine
// comparisons.
type loadReport struct {
	Bench       string  `json:"bench"`
	Dataset     string  `json:"dataset"`
	TargetQPS   float64 `json:"target_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	DurationS   float64 `json:"duration_s"`
	Requests    uint64  `json:"requests"`
	Errors      uint64  `json:"errors"`
	Dropped     uint64  `json:"dropped"`
	P50Us       uint64  `json:"p50_us"`
	P95Us       uint64  `json:"p95_us"`
	P99Us       uint64  `json:"p99_us"`
	MaxUs       uint64  `json:"max_us"`
	Groups      int     `json:"sessions"`
	Members     int     `json:"members_per_session"`
	HitTarget   float64 `json:"hit_ratio_target"`
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	NumCPU      int     `json:"num_cpu"`
	Seed        uint64  `json:"seed"`
	UnixMS      int64   `json:"unix_ms"`
}

func run(args []string, out io.Writer) error {
	cfg, err := parseArgs(args)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: cfg.timeout}

	members, err := openSessions(client, &cfg)
	if err != nil {
		return err
	}
	d := membersPerGroup(cfg.hitRatio)
	fmt.Fprintf(out, "gdploadgen: %d groups x %d members, %.0f qps for %s against %s/%s\n",
		cfg.groups, d, cfg.qps, cfg.duration, cfg.base, cfg.dataset)

	hist := newHdrHist()
	var requests, errors, dropped atomic.Uint64

	ready := make(chan *member, len(members))
	for _, m := range members {
		ready <- m
	}

	interval := time.Duration(float64(time.Second) / cfg.qps)
	start := time.Now()
	deadline := start.Add(cfg.duration)
	var wg sync.WaitGroup
	for n := 0; ; n++ {
		scheduled := start.Add(time.Duration(n) * interval)
		if scheduled.After(deadline) {
			break
		}
		if wait := time.Until(scheduled); wait > 0 {
			time.Sleep(wait)
		}
		select {
		case m := <-ready:
			wg.Add(1)
			go func() {
				defer wg.Done()
				q := m.nextQuery(&cfg)
				err := fire(client, &cfg, m, q)
				// Latency from the scheduled fire time: queueing delay
				// the open-loop schedule observed is part of the number.
				us := uint64(time.Since(scheduled).Microseconds())
				requests.Add(1)
				if err != nil {
					errors.Add(1)
				}
				hist.add(us)
				ready <- m
			}()
		default:
			// Every member has a request in flight: the server is behind
			// the schedule. Count the tick instead of queueing it — the
			// drop is the signal.
			dropped.Add(1)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	hits, misses := cacheStats(client, &cfg)

	rep := loadReport{
		Bench:       "load",
		Dataset:     cfg.dataset,
		TargetQPS:   cfg.qps,
		AchievedQPS: float64(requests.Load()) / elapsed.Seconds(),
		DurationS:   elapsed.Seconds(),
		Requests:    requests.Load(),
		Errors:      errors.Load(),
		Dropped:     dropped.Load(),
		P50Us:       hist.percentile(0.50),
		P95Us:       hist.percentile(0.95),
		P99Us:       hist.percentile(0.99),
		MaxUs:       hist.max.Load(),
		Groups:      cfg.groups,
		Members:     d,
		HitTarget:   cfg.hitRatio,
		CacheHits:   hits,
		CacheMisses: misses,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Seed:        cfg.seed,
		UnixMS:      time.Now().UnixMilli(),
	}
	fmt.Fprintf(out, "gdploadgen: %d requests (%.1f qps achieved, target %.1f), %d errors, %d dropped ticks\n",
		rep.Requests, rep.AchievedQPS, rep.TargetQPS, rep.Errors, rep.Dropped)
	fmt.Fprintf(out, "gdploadgen: latency p50 %dus p95 %dus p99 %dus max %dus\n",
		rep.P50Us, rep.P95Us, rep.P99Us, rep.MaxUs)
	fmt.Fprintf(out, "gdploadgen: server cache %d hits / %d misses\n", hits, misses)

	if cfg.benchjson != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.benchjson, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "gdploadgen: wrote %s\n", cfg.benchjson)
	}
	if rep.Requests == 0 {
		return fmt.Errorf("no requests completed (all %d ticks dropped?)", rep.Dropped)
	}
	return nil
}

// openSessions opens groups × membersPerGroup session handles; all
// members of group g pin stream streamBase + g and seed identical query
// sources.
func openSessions(client *http.Client, cfg *config) ([]*member, error) {
	d := membersPerGroup(cfg.hitRatio)
	members := make([]*member, 0, cfg.groups*d)
	for g := 0; g < cfg.groups; g++ {
		stream := cfg.streamBase + uint64(g)
		for i := 0; i < d; i++ {
			body, err := json.Marshal(map[string]uint64{"stream": stream})
			if err != nil {
				return nil, err
			}
			var resp struct {
				Session uint64 `json:"session"`
			}
			err = postJSON(client, fmt.Sprintf("%s/v1/datasets/%s/sessions", cfg.base, cfg.dataset), body, &resp)
			if err != nil {
				return nil, fmt.Errorf("opening session (group %d member %d): %w", g, i, err)
			}
			members = append(members, &member{
				session: resp.Session,
				qsrc:    rng.New(cfg.seed).Split(uint64(g)),
			})
		}
	}
	return members, nil
}

// fire issues one query and checks for HTTP success.
func fire(client *http.Client, cfg *config, m *member, q query) error {
	var body []byte
	var path string
	switch q.kind {
	case "marginal":
		body = mustJSON(map[string]any{"level": q.level, "side": q.side})
		path = fmt.Sprintf("%s/v1/sessions/%d/marginal", cfg.base, m.session)
	case "topk":
		body = mustJSON(map[string]any{"level": q.level, "side": q.side, "k": q.k})
		path = fmt.Sprintf("%s/v1/sessions/%d/topk", cfg.base, m.session)
	default:
		body = mustJSON(map[string]any{"level": q.level})
		path = fmt.Sprintf("%s/v1/sessions/%d/level", cfg.base, m.session)
	}
	return postJSON(client, path, body, nil)
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// postJSON POSTs body and decodes a 2xx response into dst (when
// non-nil); non-2xx statuses are errors carrying the server's error
// body.
func postJSON(client *http.Client, url string, body []byte, dst any) error {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		blob, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(blob)))
	}
	if dst == nil {
		_, err := io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}

// cacheStats fetches the dataset's response-cache counters; a failed
// fetch reports zeros rather than failing the run.
func cacheStats(client *http.Client, cfg *config) (hits, misses uint64) {
	resp, err := client.Get(fmt.Sprintf("%s/v1/datasets/%s/budget", cfg.base, cfg.dataset))
	if err != nil {
		return 0, 0
	}
	defer resp.Body.Close()
	var body struct {
		Cache struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"cache"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&body) != nil {
		return 0, 0
	}
	return body.Cache.Hits, body.Cache.Misses
}
