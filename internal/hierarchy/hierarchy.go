// Package hierarchy builds and represents the multi-level group structure
// produced by the paper's Phase-1 specialization.
//
// Each side of the bipartite graph carries a binary bisection tree: one
// specialization round splits every current node group of the left side in
// two and every current node group of the right side in two, each cut
// chosen by a partition.Bisector (the exponential mechanism in the private
// configuration). This realizes the paper's "each group in level i is
// split to 4 subgroups in level i−1; two sub groups correspond to the left
// side nodes of the bipartite graph and the other two sub groups refer to
// the right side nodes".
//
// Two group semantics are derived from the side trees (DESIGN.md §2):
//
//   - Cell model (primary): the level-ℓ groups of the record universe are
//     the crossings (Li, Rj) of the 2^d left ranges and 2^d right ranges
//     at depth d = MaxLevel − ℓ. A cell's records are the associations
//     between its two ranges; cells partition the record universe at every
//     level, exactly the structure Definition 3 (group-level adjacency)
//     ranges over. Count-query sensitivity at a level is the largest cell.
//
//   - Node-group model (ablation A4): the groups are the side ranges
//     themselves, and removing a group removes all associations incident
//     to its nodes; sensitivity is the largest incident-edge sum.
//
// Levels follow the paper's numbering: the root (entire dataset) sits at
// level MaxLevel and groups get four times smaller per level down; with
// the paper's nine rounds the root is level 9 and level 0 is the finest.
//
// Representation: per side, a permutation of node ids plus, per depth, the
// boundaries of the 2^d contiguous ranges over that permutation. Splits
// reorder nodes only inside their own range, so deeper levels strictly
// refine shallower ones and all levels share one permutation.
package hierarchy

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/bipartite"
	"repro/internal/partition"
)

// MaxRounds caps tree depth; 4^12 cells is the largest level a dense
// per-level cell matrix can reasonably hold.
const MaxRounds = 12

// Order controls how a range's nodes are arranged before the bisector
// chooses a prefix cut.
type Order int

// Orderings. OrderWeightDesc sorts nodes by degree descending with a
// deterministic tie-break on node id, which lets balance-seeking bisectors
// find good cuts; OrderNatural keeps the current permutation order.
const (
	OrderWeightDesc Order = iota + 1
	OrderNatural
)

// Valid reports whether o is a known ordering.
func (o Order) Valid() bool { return o == OrderWeightDesc || o == OrderNatural }

// Options configures Build.
type Options struct {
	// Rounds is the number of specialization rounds; the resulting tree
	// has Rounds+1 levels with the root at level Rounds. Must be in
	// [1, MaxRounds].
	Rounds int
	// Bisector chooses every cut. Required.
	Bisector partition.Bisector
	// Order arranges range nodes before cutting; defaults to
	// OrderWeightDesc.
	Order Order
	// Workers parallelizes the per-range weight computation and ordering
	// across goroutines. Cut decisions remain serial in range order, so
	// the built tree is identical for any worker count. Values < 2 run
	// single-threaded.
	Workers int
}

// Errors returned by Build and the accessors.
var (
	ErrNilGraph    = errors.New("hierarchy: nil graph")
	ErrNilBisector = errors.New("hierarchy: nil bisector")
	ErrBadRounds   = errors.New("hierarchy: rounds must be in [1, 12]")
	ErrBadLevel    = errors.New("hierarchy: level out of range")
	ErrInvalid     = errors.New("hierarchy: invalid tree")
)

// sideTree is the recursive bisection of one node side.
type sideTree struct {
	perm []int32 // position -> node id
	pos  []int32 // node id -> position
	// bounds[d] holds the 2^d+1 range boundaries at depth d:
	// range i spans positions [bounds[d][i], bounds[d][i+1]).
	bounds [][]int32
}

// Tree is the built hierarchy. It is immutable after Build.
type Tree struct {
	graph    *bipartite.Graph
	maxLevel int

	left  sideTree
	right sideTree

	// cells[d] is the row-major (2^d)x(2^d) matrix of per-cell record
	// counts at depth d.
	cells [][]int64

	privateCuts int
}

// Build runs Phase-1 specialization and returns the tree.
func Build(g *bipartite.Graph, opts Options) (*Tree, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	if opts.Bisector == nil {
		return nil, ErrNilBisector
	}
	if opts.Rounds < 1 || opts.Rounds > MaxRounds {
		return nil, fmt.Errorf("%w (got %d)", ErrBadRounds, opts.Rounds)
	}
	if opts.Order == 0 {
		opts.Order = OrderWeightDesc
	}
	if !opts.Order.Valid() {
		return nil, fmt.Errorf("hierarchy: unknown order %d", opts.Order)
	}

	t := &Tree{
		graph:    g,
		maxLevel: opts.Rounds,
		left:     newSideTree(g.NumLeft()),
		right:    newSideTree(g.NumRight()),
	}
	for d := 0; d < opts.Rounds; d++ {
		if err := t.splitDepth(&t.left, bipartite.Left, d, opts); err != nil {
			return nil, fmt.Errorf("hierarchy: splitting left side at depth %d: %w", d, err)
		}
		if err := t.splitDepth(&t.right, bipartite.Right, d, opts); err != nil {
			return nil, fmt.Errorf("hierarchy: splitting right side at depth %d: %w", d, err)
		}
	}
	t.computeCells()
	return t, nil
}

func newSideTree(n int) sideTree {
	st := sideTree{
		perm:   make([]int32, n),
		pos:    make([]int32, n),
		bounds: [][]int32{{0, int32(n)}},
	}
	for i := 0; i < n; i++ {
		st.perm[i] = int32(i)
		st.pos[i] = int32(i)
	}
	return st
}

// rangeItem pairs a node with its weight during range preparation.
type rangeItem struct {
	node   int32
	weight int64
}

// splitDepth refines every depth-d range of one side into two, appending
// the depth d+1 boundaries. Preparation (weight lookup and ordering) is
// pure per range and fans out across opts.Workers goroutines; the cut
// decisions run serially in range order so randomized bisectors consume
// their stream deterministically.
func (t *Tree) splitDepth(st *sideTree, side bipartite.Side, d int, opts Options) error {
	cur := st.bounds[d]
	nRanges := len(cur) - 1
	prepared := make([][]rangeItem, nRanges)

	prepare := func(i int) {
		prepared[i] = t.prepareRange(st, side, cur[i], cur[i+1], opts.Order)
	}
	if opts.Workers > 1 && nRanges > 1 {
		var wg sync.WaitGroup
		indices := make(chan int)
		workers := opts.Workers
		if workers > nRanges {
			workers = nRanges
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range indices {
					prepare(i)
				}
			}()
		}
		for i := 0; i < nRanges; i++ {
			indices <- i
		}
		close(indices)
		wg.Wait()
	} else {
		for i := 0; i < nRanges; i++ {
			prepare(i)
		}
	}

	next := make([]int32, 0, 2*nRanges+1)
	for i := 0; i < nRanges; i++ {
		lo := cur[i]
		cut, err := t.applyCut(st, lo, prepared[i], opts)
		if err != nil {
			return fmt.Errorf("range %d [%d,%d): %w", i, lo, cur[i+1], err)
		}
		next = append(next, lo, lo+int32(cut))
	}
	next = append(next, cur[nRanges])
	st.bounds = append(st.bounds, next)
	return nil
}

// prepareRange materializes and orders the items of [lo, hi). It reads
// only immutable state (graph degrees, the current permutation span) and
// is safe to run concurrently across disjoint ranges.
func (t *Tree) prepareRange(st *sideTree, side bipartite.Side, lo, hi int32, order Order) []rangeItem {
	n := int(hi - lo)
	if n == 0 {
		return nil
	}
	items := make([]rangeItem, n)
	for i := 0; i < n; i++ {
		node := st.perm[lo+int32(i)]
		items[i] = rangeItem{node: node, weight: t.graph.Degree(side, node)}
	}
	if order == OrderWeightDesc {
		sort.Slice(items, func(i, j int) bool {
			if items[i].weight != items[j].weight {
				return items[i].weight > items[j].weight
			}
			return items[i].node < items[j].node
		})
	}
	return items
}

// applyCut asks the bisector for a cut over the prepared items and writes
// the order back into the permutation. Ranges with fewer than two nodes
// return their size (an empty second part).
func (t *Tree) applyCut(st *sideTree, lo int32, items []rangeItem, opts Options) (int, error) {
	n := len(items)
	if n < 2 {
		return n, nil
	}
	weights := make([]int64, n)
	for i, it := range items {
		weights[i] = it.weight
	}
	cut, err := opts.Bisector.Bisect(weights)
	if err != nil {
		return 0, err
	}
	if _, ok := opts.Bisector.(*partition.ExpMechBisector); ok {
		t.privateCuts++
	}
	for i, it := range items {
		st.perm[lo+int32(i)] = it.node
		st.pos[it.node] = lo + int32(i)
	}
	return cut, nil
}

// computeCells fills the per-depth cell count matrices in one edge scan
// per depth.
func (t *Tree) computeCells() {
	depths := len(t.left.bounds)
	t.cells = make([][]int64, depths)
	for d := 0; d < depths; d++ {
		k := 1 << d
		counts := make([]int64, k*k)
		leftIdx := rangeIndexByPosition(t.left.bounds[d], len(t.left.perm))
		rightIdx := rangeIndexByPosition(t.right.bounds[d], len(t.right.perm))
		t.graph.ForEachEdge(func(l, r int32) bool {
			i := leftIdx[t.left.pos[l]]
			j := rightIdx[t.right.pos[r]]
			counts[int(i)*k+int(j)]++
			return true
		})
		t.cells[d] = counts
	}
}

// rangeIndexByPosition expands range boundaries into a per-position range
// index lookup.
func rangeIndexByPosition(bounds []int32, n int) []int32 {
	idx := make([]int32, n)
	for i := 0; i < len(bounds)-1; i++ {
		for p := bounds[i]; p < bounds[i+1]; p++ {
			idx[p] = int32(i)
		}
	}
	return idx
}

// Graph returns the underlying graph.
func (t *Tree) Graph() *bipartite.Graph { return t.graph }

// MaxLevel returns the root's level number.
func (t *Tree) MaxLevel() int { return t.maxLevel }

// NumPrivateCuts returns how many exponential-mechanism cuts Build made;
// the release pipeline multiplies it by the per-cut ε for accounting.
func (t *Tree) NumPrivateCuts() int { return t.privateCuts }

// DepthOfLevel converts a paper-style level number to tree depth.
func (t *Tree) DepthOfLevel(level int) (int, error) {
	d := t.maxLevel - level
	if d < 0 || d >= len(t.left.bounds) {
		return 0, fmt.Errorf("%w: level %d not in [0,%d]", ErrBadLevel, level, t.maxLevel)
	}
	return d, nil
}

// NumSideGroups returns the number of node groups per side at the level
// (2^depth).
func (t *Tree) NumSideGroups(level int) (int, error) {
	d, err := t.DepthOfLevel(level)
	if err != nil {
		return 0, err
	}
	return 1 << d, nil
}

// NumCells returns the number of record groups (cells) at the level
// (4^depth).
func (t *Tree) NumCells(level int) (int, error) {
	k, err := t.NumSideGroups(level)
	if err != nil {
		return 0, err
	}
	return k * k, nil
}

// CellEdges returns the record count of cell (i, j) at the level.
func (t *Tree) CellEdges(level, i, j int) (int64, error) {
	d, err := t.DepthOfLevel(level)
	if err != nil {
		return 0, err
	}
	k := 1 << d
	if i < 0 || i >= k || j < 0 || j >= k {
		return 0, fmt.Errorf("hierarchy: cell (%d,%d) outside %dx%d grid", i, j, k, k)
	}
	return t.cells[d][i*k+j], nil
}

// LevelCellCounts returns a copy of the row-major cell count matrix at the
// level.
func (t *Tree) LevelCellCounts(level int) ([]int64, error) {
	d, err := t.DepthOfLevel(level)
	if err != nil {
		return nil, err
	}
	return append([]int64(nil), t.cells[d]...), nil
}

// CellOfEdge returns the cell coordinates containing association (l, r) at
// the level.
func (t *Tree) CellOfEdge(level int, l, r int32) (i, j int, err error) {
	d, err := t.DepthOfLevel(level)
	if err != nil {
		return 0, 0, err
	}
	if l < 0 || int(l) >= t.graph.NumLeft() || r < 0 || int(r) >= t.graph.NumRight() {
		return 0, 0, fmt.Errorf("hierarchy: edge (%d,%d) out of range", l, r)
	}
	return findRange(t.left.bounds[d], t.left.pos[l]), findRange(t.right.bounds[d], t.right.pos[r]), nil
}

// findRange locates the range containing position p via binary search over
// the boundary array.
func findRange(bounds []int32, p int32) int {
	// bounds is sorted; find the last boundary <= p.
	idx := sort.Search(len(bounds), func(i int) bool { return bounds[i] > p }) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(bounds)-1 {
		idx = len(bounds) - 2
	}
	return idx
}

// SideGroupNodes materializes the node ids of side group i at the level.
func (t *Tree) SideGroupNodes(level int, side bipartite.Side, i int) ([]int32, error) {
	d, err := t.DepthOfLevel(level)
	if err != nil {
		return nil, err
	}
	st, err := t.sideTree(side)
	if err != nil {
		return nil, err
	}
	bounds := st.bounds[d]
	if i < 0 || i >= len(bounds)-1 {
		return nil, fmt.Errorf("hierarchy: side group %d outside [0,%d)", i, len(bounds)-1)
	}
	return append([]int32(nil), st.perm[bounds[i]:bounds[i+1]]...), nil
}

// SideGroupOfNode returns the index of the side group containing the node
// at the level.
func (t *Tree) SideGroupOfNode(level int, side bipartite.Side, node int32) (int, error) {
	d, err := t.DepthOfLevel(level)
	if err != nil {
		return 0, err
	}
	st, err := t.sideTree(side)
	if err != nil {
		return 0, err
	}
	if node < 0 || int(node) >= len(st.pos) {
		return 0, fmt.Errorf("hierarchy: node %d out of range", node)
	}
	return findRange(st.bounds[d], st.pos[node]), nil
}

func (t *Tree) sideTree(side bipartite.Side) (*sideTree, error) {
	switch side {
	case bipartite.Left:
		return &t.left, nil
	case bipartite.Right:
		return &t.right, nil
	default:
		return nil, fmt.Errorf("hierarchy: invalid side %v", side)
	}
}

// SideGroupIncidentEdges returns, per side group at the level, the number
// of associations incident to the group's nodes (the node-group model's
// group weight).
func (t *Tree) SideGroupIncidentEdges(level int, side bipartite.Side) ([]int64, error) {
	d, err := t.DepthOfLevel(level)
	if err != nil {
		return nil, err
	}
	st, err := t.sideTree(side)
	if err != nil {
		return nil, err
	}
	bounds := st.bounds[d]
	out := make([]int64, len(bounds)-1)
	for i := 0; i < len(bounds)-1; i++ {
		var sum int64
		for p := bounds[i]; p < bounds[i+1]; p++ {
			sum += t.graph.Degree(side, st.perm[p])
		}
		out[i] = sum
	}
	return out, nil
}

// MaxCellEdges returns the largest cell at the level — the group-DP
// sensitivity of the association-count query under the cell model.
func (t *Tree) MaxCellEdges(level int) (int64, error) {
	d, err := t.DepthOfLevel(level)
	if err != nil {
		return 0, err
	}
	var max int64
	for _, c := range t.cells[d] {
		if c > max {
			max = c
		}
	}
	return max, nil
}

// MaxSideGroupIncidentEdges returns the largest incident-edge sum over all
// side groups (both sides) at the level — the sensitivity under the
// node-group model.
func (t *Tree) MaxSideGroupIncidentEdges(level int) (int64, error) {
	var max int64
	for _, side := range []bipartite.Side{bipartite.Left, bipartite.Right} {
		sums, err := t.SideGroupIncidentEdges(level, side)
		if err != nil {
			return 0, err
		}
		for _, s := range sums {
			if s > max {
				max = s
			}
		}
	}
	return max, nil
}

// SidePermutation returns a copy of one side's node permutation
// (position → node id).
func (t *Tree) SidePermutation(side bipartite.Side) ([]int32, error) {
	st, err := t.sideTree(side)
	if err != nil {
		return nil, err
	}
	return append([]int32(nil), st.perm...), nil
}

// SideBounds returns a copy of one side's range boundaries at a level
// (2^depth + 1 positions over the permutation).
func (t *Tree) SideBounds(level int, side bipartite.Side) ([]int32, error) {
	d, err := t.DepthOfLevel(level)
	if err != nil {
		return nil, err
	}
	st, err := t.sideTree(side)
	if err != nil {
		return nil, err
	}
	return append([]int32(nil), st.bounds[d]...), nil
}

// LevelProfile summarizes one level of the tree.
type LevelProfile struct {
	Level         int     `json:"level"`
	NumCells      int     `json:"num_cells"`
	NonEmpty      int     `json:"non_empty"`
	TotalEdges    int64   `json:"total_edges"`
	MaxCellEdges  int64   `json:"max_cell_edges"`
	MeanCellEdges float64 `json:"mean_cell_edges"`
	// Skew is MaxCellEdges divided by the balanced cell size
	// TotalEdges/NumCells; 1.0 means perfectly even cells. Zero when the
	// level holds no records.
	Skew float64 `json:"skew"`
}

// Profile computes the summary of one level.
func (t *Tree) Profile(level int) (LevelProfile, error) {
	d, err := t.DepthOfLevel(level)
	if err != nil {
		return LevelProfile{}, err
	}
	p := LevelProfile{Level: level, NumCells: len(t.cells[d])}
	for _, c := range t.cells[d] {
		p.TotalEdges += c
		if c > 0 {
			p.NonEmpty++
		}
		if c > p.MaxCellEdges {
			p.MaxCellEdges = c
		}
	}
	if p.NumCells > 0 {
		p.MeanCellEdges = float64(p.TotalEdges) / float64(p.NumCells)
	}
	if p.TotalEdges > 0 && p.NumCells > 0 {
		p.Skew = float64(p.MaxCellEdges) / (float64(p.TotalEdges) / float64(p.NumCells))
	}
	return p, nil
}

// SensitivityProfile returns the cell-model sensitivity for every level
// from the root down; index i holds level MaxLevel−i.
func (t *Tree) SensitivityProfile() ([]int64, error) {
	out := make([]int64, len(t.cells))
	for d := range t.cells {
		s, err := t.MaxCellEdges(t.maxLevel - d)
		if err != nil {
			return nil, err
		}
		out[d] = s
	}
	return out, nil
}

// ImbalanceSummary returns the per-level skew (max cell / balanced cell),
// used by ablation A3 to compare bisectors; index i holds level
// MaxLevel−i.
func (t *Tree) ImbalanceSummary() ([]float64, error) {
	out := make([]float64, len(t.cells))
	for d := range t.cells {
		p, err := t.Profile(t.maxLevel - d)
		if err != nil {
			return nil, err
		}
		out[d] = p.Skew
	}
	return out, nil
}

// Validate checks the structural invariants the rest of the system relies
// on:
//
//   - permutations are bijections and pos arrays their inverses,
//   - range boundaries are monotone, span the whole side, and every depth
//     refines the previous one,
//   - per-level cell counts match a fresh recount and sum to the total
//     record count.
func (t *Tree) Validate() error {
	if err := checkPerm(t.left.perm, t.left.pos); err != nil {
		return fmt.Errorf("%w: left perm: %v", ErrInvalid, err)
	}
	if err := checkPerm(t.right.perm, t.right.pos); err != nil {
		return fmt.Errorf("%w: right perm: %v", ErrInvalid, err)
	}
	for _, st := range []*sideTree{&t.left, &t.right} {
		n := int32(len(st.perm))
		for d, bounds := range st.bounds {
			if len(bounds) != (1<<d)+1 {
				return fmt.Errorf("%w: depth %d has %d boundaries, want %d", ErrInvalid, d, len(bounds), (1<<d)+1)
			}
			if bounds[0] != 0 || bounds[len(bounds)-1] != n {
				return fmt.Errorf("%w: depth %d boundaries do not span [0,%d]", ErrInvalid, d, n)
			}
			for i := 1; i < len(bounds); i++ {
				if bounds[i] < bounds[i-1] {
					return fmt.Errorf("%w: depth %d boundaries decrease at %d", ErrInvalid, d, i)
				}
			}
			if d > 0 {
				prev := st.bounds[d-1]
				for i, b := range prev {
					if bounds[2*i] != b {
						return fmt.Errorf("%w: depth %d does not refine depth %d at %d", ErrInvalid, d, d-1, i)
					}
				}
			}
		}
	}
	total := t.graph.NumEdges()
	for d := range t.cells {
		k := 1 << d
		counts := make([]int64, k*k)
		leftIdx := rangeIndexByPosition(t.left.bounds[d], len(t.left.perm))
		rightIdx := rangeIndexByPosition(t.right.bounds[d], len(t.right.perm))
		t.graph.ForEachEdge(func(l, r int32) bool {
			counts[int(leftIdx[t.left.pos[l]])*k+int(rightIdx[t.right.pos[r]])]++
			return true
		})
		var sum int64
		for i, c := range counts {
			if c != t.cells[d][i] {
				return fmt.Errorf("%w: depth %d cell %d stored %d, recounted %d", ErrInvalid, d, i, t.cells[d][i], c)
			}
			sum += c
		}
		if sum != total {
			return fmt.Errorf("%w: depth %d cells sum to %d, want %d", ErrInvalid, d, sum, total)
		}
	}
	return nil
}

func checkPerm(perm, pos []int32) error {
	if len(perm) != len(pos) {
		return errors.New("perm and pos lengths differ")
	}
	for p, node := range perm {
		if node < 0 || int(node) >= len(perm) {
			return fmt.Errorf("perm[%d] = %d out of range", p, node)
		}
		if pos[node] != int32(p) {
			return fmt.Errorf("pos[%d] = %d, want %d", node, pos[node], p)
		}
	}
	return nil
}
