package bipartite

import (
	"errors"
	"testing"

	"repro/internal/rng"
)

func TestInducedSubgraphBasic(t *testing.T) {
	t.Parallel()
	g := buildTestGraph(t)
	// Fixture edges: (0,0),(0,1),(1,1),(2,0),(2,1),(2,2).
	sub, m, err := InducedSubgraph(g, []int32{0, 2}, []int32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Surviving edges: (0,1)->(0,0), (2,1)->(1,0), (2,2)->(1,1).
	if sub.NumLeft() != 2 || sub.NumRight() != 2 || sub.NumEdges() != 3 {
		t.Fatalf("subgraph shape %d/%d/%d", sub.NumLeft(), sub.NumRight(), sub.NumEdges())
	}
	if !sub.HasEdge(0, 0) || !sub.HasEdge(1, 0) || !sub.HasEdge(1, 1) {
		t.Error("expected edges missing from subgraph")
	}
	if sub.HasEdge(0, 1) {
		t.Error("edge (0,2) should not be in subgraph (parent (0,2) absent)")
	}
	// Mapping round trips.
	if p, ok := m.ToParent(Left, 1); !ok || p != 2 {
		t.Errorf("ToParent(Left,1) = %d,%v", p, ok)
	}
	if s, ok := m.FromParent(Right, 2); !ok || s != 1 {
		t.Errorf("FromParent(Right,2) = %d,%v", s, ok)
	}
	if _, ok := m.FromParent(Left, 1); ok {
		t.Error("node 1 should not be in subgraph left side")
	}
	if _, ok := m.ToParent(Left, 99); ok {
		t.Error("out-of-range subgraph id accepted")
	}
	if _, ok := m.ToParent(Side(0), 0); ok {
		t.Error("invalid side accepted")
	}
}

func TestInducedSubgraphValidation(t *testing.T) {
	t.Parallel()
	g := buildTestGraph(t)
	if _, _, err := InducedSubgraph(nil, nil, nil); err == nil {
		t.Error("nil graph accepted")
	}
	if _, _, err := InducedSubgraph(g, []int32{-1}, nil); !errors.Is(err, ErrBadNodeSet) {
		t.Errorf("negative node: %v", err)
	}
	if _, _, err := InducedSubgraph(g, []int32{99}, nil); !errors.Is(err, ErrBadNodeSet) {
		t.Errorf("out-of-range node: %v", err)
	}
	if _, _, err := InducedSubgraph(g, []int32{1, 1}, nil); !errors.Is(err, ErrBadNodeSet) {
		t.Errorf("duplicate node: %v", err)
	}
}

func TestInducedSubgraphEmptySets(t *testing.T) {
	t.Parallel()
	g := buildTestGraph(t)
	sub, _, err := InducedSubgraph(g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumEdges() != 0 || sub.NumLeft() != 0 || sub.NumRight() != 0 {
		t.Error("empty node sets should give empty subgraph")
	}
}

func TestInducedSubgraphCarriesNames(t *testing.T) {
	t.Parallel()
	b := NewBuilder(0)
	b.AddAssociation("alice", "insulin")
	b.AddAssociation("bob", "aspirin")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := InducedSubgraph(g, []int32{1}, []int32{1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.LeftName(0) != "bob" || sub.RightName(0) != "aspirin" {
		t.Errorf("names = %q/%q", sub.LeftName(0), sub.RightName(0))
	}
	if sub.NumEdges() != 1 {
		t.Errorf("edges = %d", sub.NumEdges())
	}
}

func TestInducedSubgraphEdgeCountMatchesScan(t *testing.T) {
	t.Parallel()
	// Random graph, random node sets: subgraph edge count must match a
	// brute-force scan.
	r := rng.New(404)
	b := NewBuilder(0)
	const nl, nr = 40, 40
	b.SetNumLeft(nl)
	b.SetNumRight(nr)
	for i := 0; i < 400; i++ {
		b.AddEdge(int32(r.Intn(nl)), int32(r.Intn(nr)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var left, right []int32
	inL := map[int32]bool{}
	inR := map[int32]bool{}
	for i := int32(0); i < nl; i += 2 {
		left = append(left, i)
		inL[i] = true
	}
	for i := int32(0); i < nr; i += 3 {
		right = append(right, i)
		inR[i] = true
	}
	sub, _, err := InducedSubgraph(g, left, right)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	g.ForEachEdge(func(l, rr int32) bool {
		if inL[l] && inR[rr] {
			want++
		}
		return true
	})
	if sub.NumEdges() != want {
		t.Errorf("subgraph edges = %d, brute force = %d", sub.NumEdges(), want)
	}
}
