// Package ledgertest is the shared conformance suite every
// accountant.Ledger implementation must pass — MemLedger,
// DurableLedger, and the sequencer-backed RemoteLedger run the same
// checks, so "a ledger is a ledger" holds whichever backend a
// deployment picks. The properties are the ones the serving layer's
// privacy argument leans on:
//
//   - admission exactness: admitted ops appear in the trail in order,
//     spent composes to exactly their sum, and the first over-budget
//     spend is rejected with ErrBudgetExceeded having changed nothing;
//   - zero-delta rejection: a δ=0 budget admits no op with any δ > 0,
//     however small — there is no absolute slack to hide under;
//   - concurrent drain: racing spenders admit exactly the budgeted
//     number of ops, never one more, and every loser sees
//     ErrBudgetExceeded;
//   - fail-closed latching (backends with a failure mode): after the
//     backend fails, every spend errors and the observed spent never
//     decreases — a broken ledger refuses, it never forgets.
package ledgertest

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/accountant"
	"repro/internal/dp"
)

// Factory adapts one Ledger implementation to the suite.
type Factory struct {
	// New opens a fresh, empty ledger with the given budget.
	New func(t *testing.T, budget dp.Params) accountant.Ledger
	// Fail, if non-nil, forces the backend underneath l into its
	// failure mode (a WAL that stops syncing, a sequencer that stops
	// answering). Backends without a failure mode (MemLedger) leave it
	// nil and skip the latching check.
	Fail func(t *testing.T, l accountant.Ledger)
}

// Run executes the conformance suite against the factory's ledgers.
func Run(t *testing.T, f Factory) {
	t.Run("AdmissionExactness", func(t *testing.T) { testAdmissionExactness(t, f) })
	t.Run("ZeroDeltaRejection", func(t *testing.T) { testZeroDeltaRejection(t, f) })
	t.Run("ConcurrentDrain", func(t *testing.T) { testConcurrentDrain(t, f) })
	if f.Fail != nil {
		t.Run("FailClosedLatching", func(t *testing.T) { testFailClosedLatching(t, f) })
	}
}

// closeTol is the acceptance band for spent-vs-budget comparisons: the
// admission check itself allows relative error 1e-9, so the suite must
// not demand bit-exact float sums.
const closeTol = 1e-9

func closeTo(got, want float64) bool {
	return math.Abs(got-want) <= closeTol*math.Max(math.Abs(want), 1)
}

func testAdmissionExactness(t *testing.T, f Factory) {
	budget := dp.Params{Epsilon: 1.0, Delta: 1e-4}
	per := dp.Params{Epsilon: 0.25, Delta: 2.5e-5}
	l := f.New(t, budget)
	for i := 0; i < 4; i++ {
		if err := l.Spend(fmt.Sprintf("op-%d", i), per); err != nil {
			t.Fatalf("spend %d within budget: %v", i, err)
		}
	}
	if err := l.Spend("over", per); !errors.Is(err, accountant.ErrBudgetExceeded) {
		t.Fatalf("over-budget spend: got %v, want ErrBudgetExceeded", err)
	}
	if got := l.OpCount(); got != 4 {
		t.Fatalf("op count after rejection: got %d, want 4 (the rejected op must not appear)", got)
	}
	spent := l.Spent()
	if !closeTo(spent.Epsilon, budget.Epsilon) || !closeTo(spent.Delta, budget.Delta) {
		t.Fatalf("spent %v, want the full budget %v", spent, budget)
	}
	rem := l.Remaining()
	if !closeTo(rem.Epsilon, 0) || !closeTo(rem.Delta, 0) {
		t.Fatalf("remaining %v, want ~zero", rem)
	}
	ops := l.Ops()
	if len(ops) != 4 {
		t.Fatalf("trail length %d, want 4", len(ops))
	}
	for i, op := range ops {
		if want := fmt.Sprintf("op-%d", i); op.Label != want {
			t.Errorf("op %d label %q, want %q (trail must preserve labels and order)", i, op.Label, want)
		}
		if op.Seq != i+1 {
			t.Errorf("op %d seq %d, want %d (seqs are 1-based admission order)", i, op.Seq, i+1)
		}
		if op.Cost != per {
			t.Errorf("op %d cost %v, want %v", i, op.Cost, per)
		}
	}
}

func testZeroDeltaRejection(t *testing.T, f Factory) {
	l := f.New(t, dp.Params{Epsilon: 1.0})
	// A pure-ε budget has NO δ to give: any positive δ must be refused,
	// no matter how small — an absolute tolerance here would let an
	// adversary mine unbounded δ in dust-sized increments.
	if err := l.Spend("dust", dp.Params{Epsilon: 0.1, Delta: 1e-12}); !errors.Is(err, accountant.ErrBudgetExceeded) {
		t.Fatalf("δ-dust spend against δ=0 budget: got %v, want ErrBudgetExceeded", err)
	}
	if got := l.OpCount(); got != 0 {
		t.Fatalf("op count after rejection: got %d, want 0", got)
	}
	if err := l.Spend("pure", dp.Params{Epsilon: 0.1}); err != nil {
		t.Fatalf("pure-ε spend against δ=0 budget: %v", err)
	}
}

func testConcurrentDrain(t *testing.T, f Factory) {
	const (
		slots    = 20
		spenders = 8
		tries    = 10 // 8×10 = 80 attempts racing for 20 slots
	)
	budget := dp.Params{Epsilon: 1.0, Delta: 1e-4}
	per := dp.Params{Epsilon: budget.Epsilon / slots, Delta: budget.Delta / slots}
	l := f.New(t, budget)
	var (
		wg     sync.WaitGroup
		admits int
		mu     sync.Mutex
	)
	for g := 0; g < spenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < tries; i++ {
				err := l.Spend(fmt.Sprintf("g%d/i%d", g, i), per)
				switch {
				case err == nil:
					mu.Lock()
					admits++
					mu.Unlock()
				case errors.Is(err, accountant.ErrBudgetExceeded):
					// the only acceptable refusal while draining
				default:
					t.Errorf("spend g%d/i%d: unexpected error %v", g, i, err)
				}
			}
		}(g)
	}
	wg.Wait()
	if admits != slots {
		t.Fatalf("concurrent drain admitted %d ops, want exactly %d (over-admission breaks the privacy bound, under-admission wastes budget)", admits, slots)
	}
	if got := l.OpCount(); got != slots {
		t.Fatalf("trail has %d ops, want %d", got, slots)
	}
	if err := l.Spend("post-drain", per); !errors.Is(err, accountant.ErrBudgetExceeded) {
		t.Fatalf("spend after drain: got %v, want ErrBudgetExceeded", err)
	}
	spent := l.Spent()
	if !closeTo(spent.Epsilon, budget.Epsilon) || !closeTo(spent.Delta, budget.Delta) {
		t.Fatalf("drained spent %v, want the full budget %v", spent, budget)
	}
}

func testFailClosedLatching(t *testing.T, f Factory) {
	budget := dp.Params{Epsilon: 1.0, Delta: 1e-4}
	per := dp.Params{Epsilon: 0.1, Delta: 1e-5}
	l := f.New(t, budget)
	if err := l.Spend("healthy", per); err != nil {
		t.Fatalf("spend before failure: %v", err)
	}
	before := l.Spent()
	f.Fail(t, l)
	if err := l.Spend("after-failure", per); err == nil {
		t.Fatal("spend after backend failure succeeded; a broken ledger must refuse")
	}
	// The latch must hold: every later spend keeps failing, budget
	// exhaustion does not overrule a broken backend.
	for i := 0; i < 3; i++ {
		if err := l.Spend(fmt.Sprintf("latched-%d", i), per); err == nil {
			t.Fatalf("spend %d after latch succeeded", i)
		}
	}
	// Observed spent never decreases across the failure: a broken
	// ledger may report stale-but-admitted state, never less.
	after := l.Spent()
	if after.Epsilon < before.Epsilon-closeTol || after.Delta < before.Delta-closeTol {
		t.Fatalf("spent decreased across failure: %v -> %v", before, after)
	}
}
