// Package query evaluates counting queries against both the exact graph
// hierarchy and the noisy releases, quantifying the utility a data user at
// each privilege tier actually gets.
//
// Beyond the paper's single "how many associations are there?" query, the
// package supports rectangle (range) queries over a level's cell grid —
// "how many associations exist between these author groups and these
// paper groups?" — which is what the released subgraph histograms are
// for. Workload generation and error evaluation feed the experiment
// harness.
package query

import (
	"errors"
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// TotalAssociations returns the exact answer to the paper's count query.
func TotalAssociations(g *bipartite.Graph) int64 { return g.NumEdges() }

// Rect is a rectangle over a level's cell grid: side-group index ranges
// [I0, I1) × [J0, J1).
type Rect struct {
	Level int `json:"level"`
	I0    int `json:"i0"`
	I1    int `json:"i1"`
	J0    int `json:"j0"`
	J1    int `json:"j1"`
}

// Errors returned by this package.
var (
	ErrBadRect       = errors.New("query: invalid rectangle")
	ErrLevelMismatch = errors.New("query: release level does not match rectangle level")
	ErrNilTree       = errors.New("query: nil tree")
)

// validate checks rect against a k×k grid.
func (r Rect) validate(k int) error {
	if r.I0 < 0 || r.J0 < 0 || r.I1 > k || r.J1 > k || r.I0 >= r.I1 || r.J0 >= r.J1 {
		return fmt.Errorf("%w: [%d,%d)x[%d,%d) on %dx%d grid", ErrBadRect, r.I0, r.I1, r.J0, r.J1, k, k)
	}
	return nil
}

// NumCells returns the number of cells the rectangle covers.
func (r Rect) NumCells() int { return (r.I1 - r.I0) * (r.J1 - r.J0) }

// ExactRect answers the rectangle query from the exact hierarchy.
func ExactRect(t *hierarchy.Tree, r Rect) (int64, error) {
	if t == nil {
		return 0, ErrNilTree
	}
	k, err := t.NumSideGroups(r.Level)
	if err != nil {
		return 0, err
	}
	if err := r.validate(k); err != nil {
		return 0, err
	}
	counts, err := t.LevelCellCounts(r.Level)
	if err != nil {
		return 0, err
	}
	var sum int64
	for i := r.I0; i < r.I1; i++ {
		for j := r.J0; j < r.J1; j++ {
			sum += counts[i*k+j]
		}
	}
	return sum, nil
}

// ReleasedRect answers the rectangle query from a noisy cell release.
func ReleasedRect(c core.CellRelease, r Rect) (float64, error) {
	if c.Level != r.Level {
		return 0, fmt.Errorf("%w: release level %d, rect level %d", ErrLevelMismatch, c.Level, r.Level)
	}
	k := c.SideGroups
	if err := r.validate(k); err != nil {
		return 0, err
	}
	var sum float64
	for i := r.I0; i < r.I1; i++ {
		for j := r.J0; j < r.J1; j++ {
			sum += c.Counts[i*k+j]
		}
	}
	return sum, nil
}

// RandomRects generates n random rectangles over the level's grid for
// workload evaluation.
func RandomRects(src *rng.Source, t *hierarchy.Tree, level, n int) ([]Rect, error) {
	if t == nil {
		return nil, ErrNilTree
	}
	if src == nil {
		return nil, errors.New("query: nil rng source")
	}
	if n < 0 {
		return nil, fmt.Errorf("query: negative workload size %d", n)
	}
	k, err := t.NumSideGroups(level)
	if err != nil {
		return nil, err
	}
	out := make([]Rect, 0, n)
	for len(out) < n {
		i0 := src.Intn(k)
		i1 := i0 + 1 + src.Intn(k-i0)
		j0 := src.Intn(k)
		j1 := j0 + 1 + src.Intn(k-j0)
		out = append(out, Rect{Level: level, I0: i0, I1: i1, J0: j0, J1: j1})
	}
	return out, nil
}

// Result is the error profile of a workload against one release.
type Result struct {
	Level int `json:"level"`
	// NumQueries is the workload size.
	NumQueries int `json:"num_queries"`
	// AbsErr summarizes |released − exact| across queries.
	AbsErr metrics.Summary `json:"abs_err"`
	// RER summarizes the relative error across queries with non-zero
	// exact answers; NumZeroTruth counts the skipped ones.
	RER          metrics.Summary `json:"rer"`
	NumZeroTruth int             `json:"num_zero_truth"`
}

// Evaluate runs the workload against the exact tree and a noisy cell
// release, returning the error profile.
func Evaluate(t *hierarchy.Tree, c core.CellRelease, workload []Rect) (Result, error) {
	if len(workload) == 0 {
		return Result{}, errors.New("query: empty workload")
	}
	absErrs := make([]float64, 0, len(workload))
	rers := make([]float64, 0, len(workload))
	zero := 0
	for qi, r := range workload {
		exact, err := ExactRect(t, r)
		if err != nil {
			return Result{}, fmt.Errorf("query %d: %w", qi, err)
		}
		released, err := ReleasedRect(c, r)
		if err != nil {
			return Result{}, fmt.Errorf("query %d: %w", qi, err)
		}
		absErrs = append(absErrs, metrics.AbsError(released, float64(exact)))
		if exact == 0 {
			zero++
			continue
		}
		rers = append(rers, metrics.RER(released, float64(exact)))
	}
	out := Result{Level: c.Level, NumQueries: len(workload), NumZeroTruth: zero}
	var err error
	if out.AbsErr, err = metrics.Summarize(absErrs); err != nil {
		return Result{}, err
	}
	if len(rers) > 0 {
		if out.RER, err = metrics.Summarize(rers); err != nil {
			return Result{}, err
		}
	}
	return out, nil
}
