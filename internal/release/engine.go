package release

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/hierarchy"
	"repro/internal/rng"
)

// Engine is the Phase-2 tail of the pipeline as a reusable component: it
// answers count and cell-histogram releases against an already built
// hierarchy, holding the reusable histogram buffer that makes repeated
// releases allocation-free (core.ReleaseCellsInto's contract).
//
// Pipeline.finish runs one Engine per artifact; a serving session
// (internal/serve) holds one Engine for its whole lifetime and answers
// every query through it, so steady-state serving never reallocates the
// cell buffer. An Engine is NOT safe for concurrent use — give each
// session or goroutine its own; Engines are cheap until the first Cells
// call sizes the buffer.
type Engine struct {
	model core.GroupModel
	calib core.Calibration
	mech  core.NoiseMechanism

	// cellMech is the cell-histogram noise mechanism. The default
	// Gaussian runs the chunked parallel fill; Laplace/geometric run the
	// serial pure-ε path (core.ReleaseCellsPureInto), which ignores the
	// worker knob. Zero means Gaussian.
	cellMech core.NoiseMechanism

	// workers shards each cell release's noise pass across goroutines
	// (core.ReleaseCellsWorkersInto); releases are bit-identical for
	// every value, so it is purely a latency knob. 0 and 1 both mean
	// single-threaded.
	workers int

	// cells is the reusable histogram buffer. Cells and CellsSigma
	// overwrite it and return a pointer into it; the previous result is
	// invalid after the next call.
	cells core.CellRelease
}

// NewEngine validates the release configuration and returns an Engine.
func NewEngine(model core.GroupModel, calib core.Calibration, mech core.NoiseMechanism) (*Engine, error) {
	if !model.Valid() {
		return nil, fmt.Errorf("%w: model %d", ErrBadOption, int(model))
	}
	if !calib.Valid() {
		return nil, fmt.Errorf("%w: calibration %d", ErrBadOption, int(calib))
	}
	if !mech.Valid() {
		return nil, fmt.Errorf("%w: mechanism %d", ErrBadOption, int(mech))
	}
	return &Engine{model: model, calib: calib, mech: mech}, nil
}

// Model returns the configured group-adjacency model.
func (e *Engine) Model() core.GroupModel { return e.model }

// SetCellMechanism selects the cell-histogram noise mechanism. Gaussian
// (the default) keeps the chunked worker-sharded fill; Laplace and
// geometric switch Cells to the serial pure-ε path with δ = 0.
func (e *Engine) SetCellMechanism(m core.NoiseMechanism) error {
	if !m.Valid() {
		return fmt.Errorf("%w: cell mechanism %d", ErrBadOption, int(m))
	}
	e.cellMech = m
	return nil
}

// CellMechanism returns the cell-histogram noise mechanism (Gaussian
// when unset).
func (e *Engine) CellMechanism() core.NoiseMechanism {
	if e.cellMech == 0 {
		return core.MechGaussian
	}
	return e.cellMech
}

// SetWorkers sets the per-release noise-pass parallelism. Every cell
// release draws per-chunk forked streams regardless, so the released
// values are bit-identical across worker counts — n only changes how
// many cores one release occupies. Values below 1 select 1.
func (e *Engine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	e.workers = n
}

// Workers returns the per-release noise-pass parallelism (at least 1).
func (e *Engine) Workers() int {
	if e.workers < 1 {
		return 1
	}
	return e.workers
}

// Count answers the association-count query at one level, consuming the
// given budget.
func (e *Engine) Count(t *hierarchy.Tree, level int, budget dp.Params, src *rng.Source) (core.LevelRelease, error) {
	return core.ReleaseCountWith(t, level, budget, e.model, e.calib, e.mech, src)
}

// CountSigma is Count with an externally calibrated Gaussian scale (the
// RDP-accounted path); advertised records the per-release budget implied
// by sigma.
func (e *Engine) CountSigma(t *hierarchy.Tree, level int, sigma float64, advertised dp.Params, src *rng.Source) (core.LevelRelease, error) {
	return core.ReleaseCountSigma(t, level, e.model, sigma, advertised, src)
}

// Cells releases a level's noisy cell histogram into the Engine's
// reusable buffer and returns a view of it. The result is valid until the
// next Cells or CellsSigma call; callers that retain it across calls must
// clone (CloneCellRelease).
func (e *Engine) Cells(t *hierarchy.Tree, level int, budget dp.Params, src *rng.Source) (*core.CellRelease, error) {
	if m := e.CellMechanism(); m != core.MechGaussian {
		if err := core.ReleaseCellsPureInto(&e.cells, t, level, budget, m, src); err != nil {
			return nil, err
		}
		return &e.cells, nil
	}
	if err := core.ReleaseCellsWorkersInto(&e.cells, t, level, budget, e.calib, src, e.Workers()); err != nil {
		return nil, err
	}
	return &e.cells, nil
}

// CellsSigma is Cells with an externally calibrated Gaussian scale. It
// is Gaussian-only: pure-ε mechanisms have no external σ accounting.
func (e *Engine) CellsSigma(t *hierarchy.Tree, level int, sigma float64, advertised dp.Params, src *rng.Source) (*core.CellRelease, error) {
	if m := e.CellMechanism(); m != core.MechGaussian {
		return nil, fmt.Errorf("%w: sigma-calibrated cells need the Gaussian mechanism, engine has %s", ErrBadOption, m)
	}
	if err := core.ReleaseCellsSigmaWorkersInto(&e.cells, t, level, sigma, advertised, src, e.Workers()); err != nil {
		return nil, err
	}
	return &e.cells, nil
}

// LoadCells copies src into the Engine's reusable buffer and returns
// the buffer view — how a serving-layer cache hit rehydrates a retained
// histogram while preserving the engine's buffer-reuse contract (the
// result is valid until the next Cells/CellsSigma/LoadCells call, and
// repeated queries keep writing one backing array).
func (e *Engine) LoadCells(src *core.CellRelease) *core.CellRelease {
	counts := e.cells.Counts
	e.cells = *src
	e.cells.Counts = append(counts[:0], src.Counts...)
	return &e.cells
}

// CloneCellRelease deep-copies a cell release so it survives the Engine
// buffer's next reuse — what the artifact assembly does when it retains
// every level's histogram.
func CloneCellRelease(c core.CellRelease) core.CellRelease {
	c.Counts = append([]float64(nil), c.Counts...)
	return c
}
