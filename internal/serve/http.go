package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"

	"repro/internal/accountant"
	"repro/internal/bipartite"
	"repro/internal/dp"
	"repro/internal/release"
)

// HTTP/JSON front end over a Registry.
//
//	POST   /v1/datasets/{name}           ingest (body: TSV/binary edges, or JSON {"path": ...})
//	GET    /v1/datasets                  list datasets
//	GET    /v1/datasets/{name}           dataset info (stats + ledger summary)
//	GET    /v1/datasets/{name}/budget    ledger state + audit report
//	POST   /v1/datasets/{name}/sessions  open a session handle ({"stream": n} pins the RNG stream;
//	                                     auto sessions derive from a disjoint stream domain)
//	DELETE /v1/sessions/{id}             close a session handle
//	POST   /v1/sessions/{id}/level       {"level": l} → level view (count + histogram)
//	POST   /v1/sessions/{id}/marginal    {"level": l, "side": "left"|"right"}
//	POST   /v1/sessions/{id}/topk        {"level": l, "side": ..., "k": n}
//	GET    /healthz                      liveness (process answers)
//	GET    /readyz                       readiness (ingests settled, ledger sequencer reachable)
//
// Budget exhaustion returns 429 with code "budget-exhausted"; the
// ledger was not debited and no noise was drawn. Query responses are a
// pure function of (seed, dataset, stream id, session query sequence,
// query parameters), so replaying a pinned stream returns
// byte-identical bodies for the same query sequence, while distinct
// queries draw independent noise even on a shared stream id. Replays
// resident in the dataset's response cache are served without a ledger
// debit (the DP cost of those bytes was already paid; the budget
// endpoint's "cache" stats count them), so read-heavy clients replaying
// pinned streams do not drain budgets.

// maxQueryBody bounds the JSON bodies of query endpoints.
const maxQueryBody = 1 << 20

// Serving-surface resource defaults (see HandlerOptions).
const (
	DefaultMaxUploadBytes = int64(1) << 30 // 1 GiB per ingest upload
	DefaultMaxSessions    = 1024           // open handles per handler
)

// HandlerOptions configures the HTTP front end.
type HandlerOptions struct {
	// AllowPathIngest permits JSON {"path": ...} ingest bodies, which
	// open server-side files. Off by default: on a reachable listener
	// that is an arbitrary-file read oracle (ingest parse errors echo
	// file fragments back to the client). Enable only for trusted or
	// loopback deployments; uploads in the request body are always
	// allowed.
	AllowPathIngest bool
	// MaxUploadBytes caps the size of an ingest request body before it
	// is spooled to the server's temp disk. Oversized uploads get 413.
	// 0 selects DefaultMaxUploadBytes; negative disables the cap.
	MaxUploadBytes int64
	// MaxSessions caps the concurrently open session handles; opening
	// one past the cap gets 429 until a handle is DELETEd. 0 selects
	// DefaultMaxSessions; negative disables the cap.
	MaxSessions int
	// MaxCacheEntries overrides the registry's per-dataset response-cache
	// capacity (Config.MaxCacheEntries) for the whole registry this
	// handler fronts, including datasets ingested before the handler was
	// constructed. 0 inherits the registry's setting; negative disables
	// response caching.
	MaxCacheEntries int
}

// withDefaults resolves the zero-value resource caps.
func (o HandlerOptions) withDefaults() HandlerOptions {
	if o.MaxUploadBytes == 0 {
		o.MaxUploadBytes = DefaultMaxUploadBytes
	}
	if o.MaxSessions == 0 {
		o.MaxSessions = DefaultMaxSessions
	}
	return o
}

// NewHandler returns the HTTP front end for a registry with default
// options (server-side path ingest disabled).
func NewHandler(reg *Registry) http.Handler { return NewHandlerWith(reg, HandlerOptions{}) }

// NewHandlerWith returns the HTTP front end with explicit options.
func NewHandlerWith(reg *Registry, opts HandlerOptions) http.Handler {
	if opts.MaxCacheEntries != 0 {
		reg.setCacheCap(opts.MaxCacheEntries)
	}
	s := &httpServer{reg: reg, opts: opts.withDefaults(), sessions: make(map[uint64]*httpSession)}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /readyz", s.readyz)
	mux.HandleFunc("GET /v1/datasets", s.listDatasets)
	mux.HandleFunc("POST /v1/datasets/{name}", s.ingest)
	mux.HandleFunc("GET /v1/datasets/{name}", s.datasetInfo)
	mux.HandleFunc("GET /v1/datasets/{name}/budget", s.budget)
	mux.HandleFunc("POST /v1/datasets/{name}/sessions", s.openSession)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.closeSession)
	mux.HandleFunc("POST /v1/sessions/{id}/level", s.level)
	mux.HandleFunc("POST /v1/sessions/{id}/marginal", s.marginal)
	mux.HandleFunc("POST /v1/sessions/{id}/topk", s.topk)
	return mux
}

// httpServer carries the handler state: the registry plus the open
// session handles. Handle ids are process-local (they number the
// handles, not the RNG streams — a pinned stream can be reopened under
// a fresh handle after a restart and replay identically).
type httpServer struct {
	reg  *Registry
	opts HandlerOptions

	mu       sync.Mutex
	nextID   uint64
	sessions map[uint64]*httpSession
}

// httpSession serializes queries on one session handle: a Session is
// not safe for concurrent use, so concurrent requests to one handle
// queue on its mutex while requests to different handles run fully in
// parallel.
type httpSession struct {
	mu   sync.Mutex
	sess *Session
}

// errorBody is the uniform error shape.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// encodeBuffer pairs a reusable byte buffer with a JSON encoder bound to
// it; writeJSON checks one out per response so the HTTP path does not
// allocate a fresh encoder (and its indent state) per request.
type encodeBuffer struct {
	buf bytes.Buffer
	enc *json.Encoder
}

// encodeBuffers pools response-encoding state across requests, keeping
// the HTTP serving path allocation-flat under sustained load. Buffers
// that ballooned on an unusually large response (a deep level view) are
// dropped instead of pooled so one outlier cannot pin megabytes.
var encodeBuffers = sync.Pool{
	New: func() any {
		e := &encodeBuffer{}
		e.enc = json.NewEncoder(&e.buf)
		e.enc.SetIndent("", "  ")
		return e
	},
}

// maxPooledEncodeBuffer bounds the capacity a buffer may keep when it
// returns to the pool. It is sized to hold a deep level view (a 4^9-cell
// histogram serializes to a few MB) so the largest — and most
// reallocation-sensitive — responses benefit from pooling too; sync.Pool
// entries are dropped across GC cycles, so a ballooned buffer is
// retained only transiently even at this cap.
const maxPooledEncodeBuffer = 8 << 20

// writeJSON writes one JSON response through the encoder pool.
func writeJSON(w http.ResponseWriter, status int, v any) {
	e := encodeBuffers.Get().(*encodeBuffer)
	e.buf.Reset()
	encodeErr := e.enc.Encode(v)
	body := e.buf.Bytes()
	if encodeErr != nil {
		// Nothing has been written to the client yet; surface a clean 500
		// in the same JSON error shape every other response uses.
		status = http.StatusInternalServerError
		body = []byte(`{"error":"serve: encoding response","code":"encode-failed"}` + "\n")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
	if e.buf.Cap() <= maxPooledEncodeBuffer {
		encodeBuffers.Put(e)
	}
}

// errSpool marks server-side ingest-spool failures (temp-disk full,
// unwritable temp dir) — the client did nothing wrong, so they map to
// 500 rather than the default 400.
var errSpool = errors.New("serve: spooling ingest body")

// writeErr maps registry errors onto HTTP statuses.
func writeErr(w http.ResponseWriter, err error) {
	status, code := http.StatusBadRequest, "bad-request"
	var tooLarge *http.MaxBytesError
	switch {
	case errors.As(err, &tooLarge):
		status, code = http.StatusRequestEntityTooLarge, "body-too-large"
	case errors.Is(err, errSpool):
		status, code = http.StatusInternalServerError, "ingest-spool-failed"
	case errors.Is(err, accountant.ErrBudgetExceeded):
		status, code = http.StatusTooManyRequests, "budget-exhausted"
	case errors.Is(err, accountant.ErrLedgerFailed):
		status, code = http.StatusServiceUnavailable, "ledger-failed"
	case errors.Is(err, ErrUnknownDataset):
		status, code = http.StatusNotFound, "unknown-dataset"
	case errors.Is(err, ErrUnknownSession):
		status, code = http.StatusNotFound, "unknown-session"
	case errors.Is(err, ErrDatasetExists):
		status, code = http.StatusConflict, "dataset-exists"
	case errors.Is(err, ErrBadConfig):
		status, code = http.StatusBadRequest, "bad-config"
	case errors.Is(err, ErrClosed):
		status, code = http.StatusServiceUnavailable, "registry-closed"
	}
	writeJSON(w, status, errorBody{Error: err.Error(), Code: code})
}

// decodeBody parses a bounded JSON body into v; an empty body leaves v
// at its zero value. Unknown fields are rejected: a misspelled key must
// fail the request up front, not silently run a defaulted query that
// debits the permanent privacy ledger.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxQueryBody))
	if err != nil {
		return fmt.Errorf("serve: reading body: %w", err)
	}
	if len(body) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: parsing body: %w", err)
	}
	// Reject trailing content after the value: an ambiguous body (two
	// concatenated requests, appended garbage) must not run as whatever
	// its first object happens to say.
	if _, err := dec.Token(); err != io.EOF {
		return errors.New("serve: parsing body: trailing data after JSON value")
	}
	return nil
}

func (s *httpServer) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "datasets": len(s.reg.Names())})
}

// readyz is the load-balancer gate: 200 only when this replica can
// actually answer AND account a query right now. Liveness stays on
// /healthz — a replica mid-ingest or cut off from its ledger sequencer
// is alive but must not take traffic.
func (s *httpServer) readyz(w http.ResponseWriter, r *http.Request) {
	ready, reason := s.reg.Ready()
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{"ready": ready, "reason": reason})
}

// budgetJSON serializes one (ε, δ) pair.
type budgetJSON struct {
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
}

func toBudgetJSON(p dp.Params) budgetJSON { return budgetJSON{Epsilon: p.Epsilon, Delta: p.Delta} }

// datasetJSON is the dataset summary shape shared by list/info/ingest.
type datasetJSON struct {
	Name     string          `json:"name"`
	Stats    bipartite.Stats `json:"stats"`
	MaxLevel int             `json:"max_level"`
	// Strategy names the dataset's release strategy when it is not the
	// default — absence IS the default, the same convention the release
	// artifact uses, which keeps default-strategy response bytes
	// identical to the pre-strategy serving layer.
	Strategy  string     `json:"strategy,omitempty"`
	Budget    budgetJSON `json:"budget"`
	Spent     budgetJSON `json:"spent"`
	Remaining budgetJSON `json:"remaining"`
}

// strategyLabel is a dataset's strategy name for response bodies: empty
// for the default strategy (field omitted), the registry name otherwise.
func strategyLabel(d *Dataset) string {
	if s := d.Strategy(); s != release.DefaultStrategyName {
		return s
	}
	return ""
}

func describeDataset(d *Dataset) datasetJSON {
	return datasetJSON{
		Name:      d.Name(),
		Stats:     d.Stats(),
		MaxLevel:  d.MaxLevel(),
		Strategy:  strategyLabel(d),
		Budget:    toBudgetJSON(d.Budget()),
		Spent:     toBudgetJSON(d.Spent()),
		Remaining: toBudgetJSON(d.Remaining()),
	}
}

func (s *httpServer) listDatasets(w http.ResponseWriter, r *http.Request) {
	names := s.reg.Names()
	sort.Strings(names)
	out := make([]datasetJSON, 0, len(names))
	for _, name := range names {
		if ds, err := s.reg.Dataset(name); err == nil {
			out = append(out, describeDataset(ds))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": out})
}

// ingest cold-starts a dataset. A JSON body {"path": "..."} streams a
// server-side file; any other body is spooled to a temporary file
// (bounded by MaxUploadBytes so a client cannot fill the temp disk)
// and streamed from there, so the edges are never resident in memory
// regardless of upload size. The format is sniffed from the first
// bytes: "BPG1" selects the binary codec, anything else is TSV.
//
// The release strategy is selected per dataset with the ?strategy=
// query parameter (raw uploads, whose body is edge data) or the
// "strategy" JSON field (path ingest; it wins when both are given).
// Unknown names fail with 400 "bad-config" before any build work.
func (s *httpServer) ingest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	opts := DatasetOptions{Strategy: r.URL.Query().Get("strategy")}
	var f *os.File
	if mediaType, _, err := mime.ParseMediaType(r.Header.Get("Content-Type")); err == nil && mediaType == "application/json" {
		if !s.opts.AllowPathIngest {
			writeJSON(w, http.StatusForbidden, errorBody{
				Error: "serve: server-side path ingest is disabled (start the server with path ingest enabled, or upload the edge file as the request body)",
				Code:  "path-ingest-disabled",
			})
			return
		}
		var req struct {
			Path     string `json:"path"`
			Strategy string `json:"strategy"`
		}
		if err := decodeBody(w, r, &req); err != nil {
			writeErr(w, err)
			return
		}
		if req.Path == "" {
			writeErr(w, errors.New("serve: ingest JSON body requires \"path\""))
			return
		}
		if req.Strategy != "" {
			opts.Strategy = req.Strategy
		}
		file, err := os.Open(req.Path)
		if err != nil {
			writeErr(w, fmt.Errorf("serve: opening %q: %w", req.Path, err))
			return
		}
		f = file
	} else {
		body := io.Reader(r.Body)
		if s.opts.MaxUploadBytes > 0 {
			body = http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
		}
		tmp, err := spoolBody(body)
		if err != nil {
			writeErr(w, err)
			return
		}
		defer os.Remove(tmp.Name())
		f = tmp
	}
	defer f.Close()

	src, err := OpenEdgeSourceFile(f)
	if err != nil {
		writeErr(w, err)
		return
	}
	ds, err := s.reg.AddDatasetWith(name, src, opts)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, describeDataset(ds))
}

// spoolBody writes an upload to an unlinked-on-ingest temp file so the
// edge bytes back a seekable two-pass source without living in RAM.
func spoolBody(body io.Reader) (*os.File, error) {
	tmp, err := os.CreateTemp("", "gdpserve-ingest-*")
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errSpool, err)
	}
	// io.Copy surfaces one error for either side; track the write side
	// so only temp-file faults (the server's) map to errSpool/500, while
	// client-side body read errors stay 400.
	tw := &trackedWriter{w: tmp}
	if _, err := io.Copy(tw, body); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		// An over-cap body is the client's fault (413), not a spool
		// fault; keep the MaxBytesError chain intact for writeErr.
		var tooLarge *http.MaxBytesError
		switch {
		case errors.As(err, &tooLarge):
			return nil, fmt.Errorf("serve: spooling ingest body: %w", err)
		case tw.err != nil:
			return nil, fmt.Errorf("%w: %v", errSpool, err)
		default:
			return nil, fmt.Errorf("serve: reading ingest body: %v", err)
		}
	}
	if _, err := tmp.Seek(0, io.SeekStart); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("%w: rewinding: %v", errSpool, err)
	}
	return tmp, nil
}

// trackedWriter records whether the destination side of a copy failed.
type trackedWriter struct {
	w   io.Writer
	err error
}

func (t *trackedWriter) Write(p []byte) (int, error) {
	n, err := t.w.Write(p)
	if err != nil {
		t.err = err
	}
	return n, err
}

// OpenEdgeSourceFile sniffs an edge file's format ("BPG1" magic =
// binary codec, otherwise TSV) and returns a chunked source over it —
// the ingest path cmd/gdpserve and the HTTP upload share.
func OpenEdgeSourceFile(f *os.File) (bipartite.EdgeSource, error) {
	var magic [4]byte
	n, err := io.ReadFull(f, magic[:])
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, fmt.Errorf("serve: sniffing %s: %w", f.Name(), err)
	}
	if n == 4 && string(magic[:]) == "BPG1" {
		return bipartite.NewBinaryEdgeSource(f)
	}
	return bipartite.NewTSVEdgeSource(f)
}

func (s *httpServer) datasetInfo(w http.ResponseWriter, r *http.Request) {
	ds, err := s.reg.Dataset(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, describeDataset(ds))
}

// durabilityJSON is the /budget "durability" field: every dataset
// stamps its accounting backend ("mem", "wal" or "remote" — consumers
// like benchdiff must never compare numbers across backends); durable
// datasets embed the full accountant.DurableStatus, remote datasets
// their sequencer binding, in-memory ones report only the stamp.
type durabilityJSON struct {
	Backend string `json:"backend"`
	Durable bool   `json:"durable"`
	*accountant.DurableStatus
	Remote *accountant.RemoteStatus `json:"remote,omitempty"`
}

func describeDurability(ds *Dataset) durabilityJSON {
	out := durabilityJSON{Backend: ds.LedgerBackend()}
	if st, ok := ds.Durability(); ok {
		out.Durable = true
		out.DurableStatus = &st
	}
	if st, ok := ds.RemoteStatus(); ok {
		// The sequencer fsyncs every admission into its WAL before the
		// ack this client requires, so a remote dataset's accounting is
		// durable too — just not locally.
		out.Durable = true
		out.Remote = &st
	}
	return out
}

func (s *httpServer) budget(w http.ResponseWriter, r *http.Request) {
	ds, err := s.reg.Dataset(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	body := map[string]any{
		"dataset":    ds.Name(),
		"budget":     toBudgetJSON(ds.Budget()),
		"spent":      toBudgetJSON(ds.Spent()),
		"remaining":  toBudgetJSON(ds.Remaining()),
		"ops":        ds.OpCount(),
		"cache":      ds.CacheStats(),
		"durability": describeDurability(ds),
	}
	// The audit trail grows with every admitted op, so after a load run
	// the full report is megabytes. ?ops=N keeps only the N most recent
	// entries (the header still reports the true totals), ?ops=0 omits
	// the report entirely; no parameter preserves the full trail for
	// existing consumers.
	switch capStr := r.URL.Query().Get("ops"); capStr {
	case "":
		body["audit"] = ds.AuditReport()
	case "0":
	default:
		n, err := strconv.Atoi(capStr)
		if err != nil || n < 0 {
			writeErr(w, fmt.Errorf("serve: ops must be a non-negative integer (got %q)", capStr))
			return
		}
		body["audit"] = auditReportTail(ds, n)
	}
	// Same convention as the dataset summary: the field appears only for
	// non-default strategies, keeping default transcripts byte-stable.
	if label := strategyLabel(ds); label != "" {
		body["strategy"] = label
	}
	writeJSON(w, http.StatusOK, body)
}

// auditReportTail renders the ledger report with only the n most recent
// ops (the most relevant under a capped view: the spends that exhausted
// the budget are at the end of the trail).
func auditReportTail(ds *Dataset, n int) string {
	ops := ds.Ops()
	total := len(ops)
	if n >= total {
		return ds.AuditReport()
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "privacy ledger: budget %s, spent %s, %d ops (showing last %d)\n",
		ds.Budget(), ds.Spent(), total, n)
	for _, op := range ops[total-n:] {
		fmt.Fprintf(&b, "  %3d. %-24s %s\n", op.Seq, op.Label, op.Cost)
	}
	return b.String()
}

func (s *httpServer) openSession(w http.ResponseWriter, r *http.Request) {
	ds, err := s.reg.Dataset(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	var req struct {
		Stream *uint64 `json:"stream"`
	}
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	s.mu.Lock()
	if s.opts.MaxSessions > 0 && len(s.sessions) >= s.opts.MaxSessions {
		s.mu.Unlock()
		writeJSON(w, http.StatusTooManyRequests, errorBody{
			Error: fmt.Sprintf("serve: %d session handles already open (the handler cap); DELETE /v1/sessions/{id} to free one", s.opts.MaxSessions),
			Code:  "too-many-sessions",
		})
		return
	}
	var sess *Session
	if req.Stream != nil {
		sess = ds.SessionAt(*req.Stream)
	} else {
		sess = ds.NewSession()
	}
	s.nextID++
	id := s.nextID
	s.sessions[id] = &httpSession{sess: sess}
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]any{
		"session": id,
		"stream":  sess.Stream(),
		"pinned":  sess.Pinned(),
		"dataset": ds.Name(),
	})
}

// session resolves a handle id from the path.
func (s *httpServer) session(r *http.Request) (*httpSession, uint64, error) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("serve: bad session id %q", r.PathValue("id"))
	}
	s.mu.Lock()
	hs, ok := s.sessions[id]
	s.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("%w: %d", ErrUnknownSession, id)
	}
	return hs, id, nil
}

func (s *httpServer) closeSession(w http.ResponseWriter, r *http.Request) {
	_, id, err := s.session(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.mu.Lock()
	delete(s.sessions, id)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"closed": id})
}

// queryRequest is the shared query body shape. Level and K are pointers
// so omitted fields are distinguishable from zero values — a query must
// name its parameters explicitly before it may spend budget, and each
// endpoint rejects fields it does not consume (a body shaped for one
// query kind must not silently run as another).
type queryRequest struct {
	Level *int   `json:"level"`
	Side  string `json:"side"`
	K     *int   `json:"k"`
}

// reject returns an error when the request carries fields the endpoint
// ignores; silently dropping them could spend budget on a query the
// client did not intend.
func (q queryRequest) reject(side, k bool) error {
	if side && q.Side != "" {
		return errors.New("serve: \"side\" is not valid for this endpoint")
	}
	if k && q.K != nil {
		return errors.New("serve: \"k\" is not valid for this endpoint")
	}
	return nil
}

// side parses the request's side field.
func (q queryRequest) side() (bipartite.Side, error) {
	switch q.Side {
	case "left", "":
		return bipartite.Left, nil
	case "right":
		return bipartite.Right, nil
	default:
		return 0, fmt.Errorf("serve: side must be \"left\" or \"right\" (got %q)", q.Side)
	}
}

// withSession parses the body, locks the handle, and runs fn with the
// request's level. The level must be present: every query endpoint
// debits the ledger, so nothing may run against a defaulted level.
func (s *httpServer) withSession(w http.ResponseWriter, r *http.Request, fn func(hs *httpSession, req queryRequest, level int)) {
	hs, _, err := s.session(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	var req queryRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if req.Level == nil {
		writeErr(w, errors.New("serve: query body requires \"level\""))
		return
	}
	hs.mu.Lock()
	defer hs.mu.Unlock()
	fn(hs, req, *req.Level)
}

func (s *httpServer) level(w http.ResponseWriter, r *http.Request) {
	s.withSession(w, r, func(hs *httpSession, req queryRequest, level int) {
		if err := req.reject(true, true); err != nil {
			writeErr(w, err)
			return
		}
		seq := hs.sess.Seq()
		view, err := hs.sess.ReleaseLevel(level)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"dataset": hs.sess.Dataset().Name(),
			"stream":  hs.sess.Stream(),
			"seq":     seq,
			"view":    view,
		})
	})
}

func (s *httpServer) marginal(w http.ResponseWriter, r *http.Request) {
	s.withSession(w, r, func(hs *httpSession, req queryRequest, level int) {
		if err := req.reject(false, true); err != nil {
			writeErr(w, err)
			return
		}
		side, err := req.side()
		if err != nil {
			writeErr(w, err)
			return
		}
		seq := hs.sess.Seq()
		marginals, err := hs.sess.Marginal(level, side)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"dataset":   hs.sess.Dataset().Name(),
			"stream":    hs.sess.Stream(),
			"seq":       seq,
			"level":     level,
			"side":      side.String(),
			"marginals": marginals,
		})
	})
}

func (s *httpServer) topk(w http.ResponseWriter, r *http.Request) {
	s.withSession(w, r, func(hs *httpSession, req queryRequest, level int) {
		side, err := req.side()
		if err != nil {
			writeErr(w, err)
			return
		}
		if req.K == nil {
			writeErr(w, errors.New("serve: top-k body requires \"k\""))
			return
		}
		seq := hs.sess.Seq()
		groups, err := hs.sess.TopK(level, side, *req.K)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"dataset": hs.sess.Dataset().Name(),
			"stream":  hs.sess.Stream(),
			"seq":     seq,
			"level":   level,
			"side":    side.String(),
			"k":       *req.K,
			"groups":  groups,
		})
	})
}
