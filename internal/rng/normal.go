package rng

import "math"

// Batched normal sampling.
//
// The Marsaglia polar Normal costs a log and a square root per pair of
// variates and rejects ~21% of its uniforms, which is fine for scalar
// queries but dominates Phase 2 when a release fills a 4^9-cell noisy
// histogram. NormalsSigma instead runs a 128-layer Marsaglia–Tsang
// ziggurat: ~98.8% of draws are one Uint64, one table lookup and one
// multiply; the remaining draws fall back to a slow path that samples the
// wedge (one exp) or the tail (two logs). The two samplers realize the
// same N(0, 1) law — rng_test.go cross-validates moments and the KS
// statistic of both against the exact normal CDF — but they consume the
// underlying uniform stream differently, so Normal() is kept unchanged
// for draw-for-draw compatibility with existing seeded streams.

// Ziggurat constants: zigTailR is the right edge of the last layer and
// zigArea the common area of each of the 128 layers (tail included in
// layer 0), the canonical Marsaglia–Tsang parameters for 128 layers.
const (
	zigTailR = 3.442619855899
	zigArea  = 9.91256303526217e-3
	// zigM scales the 56-bit signed integer drawn per sample to [-1, 1).
	zigM = 1 << 55
)

// Ziggurat tables, filled by initZiggurat: zigK[i] is the acceptance
// threshold for the |56-bit integer| in layer i, zigW[i] the layer's
// scale x_i/zigM, and zigF[i] = exp(-x_i²/2).
var (
	zigK [128]uint64
	zigW [128]float64
	zigF [128]float64
)

func init() { initZiggurat() }

func initZiggurat() {
	dn := zigTailR
	tn := dn
	q := zigArea / math.Exp(-0.5*dn*dn)

	zigK[0] = uint64((dn / q) * zigM)
	zigK[1] = 0
	zigW[0] = q / zigM
	zigW[127] = dn / zigM
	zigF[0] = 1
	zigF[127] = math.Exp(-0.5 * dn * dn)
	for i := 126; i >= 1; i-- {
		dn = math.Sqrt(-2 * math.Log(zigArea/dn+math.Exp(-0.5*dn*dn)))
		zigK[i+1] = uint64((dn / tn) * zigM)
		tn = dn
		zigF[i] = math.Exp(-0.5 * dn * dn)
		zigW[i] = dn / zigM
	}
}

// NormalsSigma fills dst with independent normal variates of mean 0 and
// standard deviation sigma, drawn from the ziggurat sampler. One batched
// call replaces len(dst) scalar Normal calls in the Phase-2 release hot
// path. A non-positive sigma fills dst with zeros (empty levels need no
// noise). NormalsSigma advances the same uniform stream as every other
// sampler on the Source but is not draw-for-draw compatible with
// Normal(); give each consumer its own Split stream when exact replay
// matters.
func (r *Source) NormalsSigma(dst []float64, sigma float64) {
	if sigma <= 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	for i := range dst {
		u := r.Uint64()
		// Bits 0–6 select the layer, bits 8–63 form a signed 56-bit
		// uniform; the two fields are disjoint, so layer and position are
		// independent.
		j := int64(u) >> 8
		iz := u & 127
		abs := uint64(j)
		if j < 0 {
			abs = uint64(-j)
		}
		if abs < zigK[iz] {
			dst[i] = sigma * (float64(j) * zigW[iz])
			continue
		}
		dst[i] = sigma * r.normalZigSlow(j, iz)
	}
}

// normalZigSlow handles the ~1.2% of ziggurat draws that miss the
// rectangular fast path: layer 0 falls through to Marsaglia's exact tail
// sampler beyond zigTailR, other layers accept or reject inside the
// wedge between f(x_i) and f(x_{i-1}), resampling from scratch on
// rejection.
func (r *Source) normalZigSlow(j int64, iz uint64) float64 {
	for {
		if iz == 0 {
			// Tail: sample x > zigTailR with density proportional to
			// exp(-x²/2) via the standard double-exponential rejection.
			for {
				x := -math.Log(r.OpenFloat64()) / zigTailR
				y := -math.Log(r.OpenFloat64())
				if y+y >= x*x {
					if j >= 0 {
						return zigTailR + x
					}
					return -(zigTailR + x)
				}
			}
		}
		x := float64(j) * zigW[iz]
		if zigF[iz]+r.Float64()*(zigF[iz-1]-zigF[iz]) < math.Exp(-0.5*x*x) {
			return x
		}
		u := r.Uint64()
		j = int64(u) >> 8
		iz = u & 127
		abs := uint64(j)
		if j < 0 {
			abs = uint64(-j)
		}
		if abs < zigK[iz] {
			return float64(j) * zigW[iz]
		}
	}
}
