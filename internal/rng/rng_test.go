package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	t.Parallel()
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: sources with equal seeds diverged: %d != %d", i, got, want)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	t.Parallel()
	a := New(1)
	b := New(2)
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sources with different seeds agreed on %d/%d draws", same, n)
	}
}

func TestSplitIndependence(t *testing.T) {
	t.Parallel()
	parent := New(7)
	c1 := parent.Split(0)
	c2 := parent.Split(1)
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling streams agreed on %d/%d draws", same, n)
	}
}

func TestSplitDeterministic(t *testing.T) {
	t.Parallel()
	mk := func() *Source { return New(99).Split(5) }
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic for equal (seed, label)")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	t.Parallel()
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestOpenFloat64Range(t *testing.T) {
	t.Parallel()
	r := New(4)
	for i := 0; i < 100000; i++ {
		f := r.OpenFloat64()
		if f <= 0 || f >= 1 {
			t.Fatalf("OpenFloat64 out of (0,1): %v", f)
		}
	}
}

func TestUint64nUnbiasedSmallDomain(t *testing.T) {
	t.Parallel()
	r := New(5)
	const n = 10
	const draws = 200000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, want about %.0f", v, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	t.Parallel()
	r := New(11)
	const n = 400000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want about 1", variance)
	}
}

func TestNormalSigmaScales(t *testing.T) {
	t.Parallel()
	r := New(12)
	const n = 200000
	const sigma = 7.5
	var sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormalSigma(sigma)
		sumSq += x * x
	}
	sd := math.Sqrt(sumSq / n)
	if math.Abs(sd-sigma)/sigma > 0.02 {
		t.Errorf("sample sd = %v, want about %v", sd, sigma)
	}
}

func TestLaplaceMoments(t *testing.T) {
	t.Parallel()
	r := New(13)
	const n = 400000
	const b = 3.0
	var sum, sumAbs float64
	for i := 0; i < n; i++ {
		x := r.Laplace(b)
		sum += x
		sumAbs += math.Abs(x)
	}
	mean := sum / n
	meanAbs := sumAbs / n
	if math.Abs(mean) > 0.05 {
		t.Errorf("laplace mean = %v, want about 0", mean)
	}
	// E|X| = b for Laplace(0, b).
	if math.Abs(meanAbs-b)/b > 0.02 {
		t.Errorf("laplace E|X| = %v, want about %v", meanAbs, b)
	}
}

func TestExponentialMean(t *testing.T) {
	t.Parallel()
	r := New(14)
	const n = 300000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want about 1", mean)
	}
}

func TestGumbelMean(t *testing.T) {
	t.Parallel()
	r := New(15)
	const n = 300000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Gumbel()
	}
	const eulerMascheroni = 0.5772156649015329
	if mean := sum / n; math.Abs(mean-eulerMascheroni) > 0.02 {
		t.Errorf("gumbel mean = %v, want about %v", mean, eulerMascheroni)
	}
}

func TestTwoSidedGeometricSymmetryAndDecay(t *testing.T) {
	t.Parallel()
	r := New(16)
	const n = 400000
	const alpha = 0.5
	var sum float64
	counts := map[int64]int{}
	for i := 0; i < n; i++ {
		k := r.TwoSidedGeometric(alpha)
		sum += float64(k)
		counts[k]++
	}
	if mean := sum / n; math.Abs(mean) > 0.05 {
		t.Errorf("two-sided geometric mean = %v, want about 0", mean)
	}
	// P(1)/P(0) should be about alpha.
	ratio := float64(counts[1]) / float64(counts[0])
	if math.Abs(ratio-alpha) > 0.05 {
		t.Errorf("P(1)/P(0) = %v, want about %v", ratio, alpha)
	}
	// Symmetry: P(1) close to P(-1).
	symm := float64(counts[1]) / float64(counts[-1])
	if math.Abs(symm-1) > 0.1 {
		t.Errorf("P(1)/P(-1) = %v, want about 1", symm)
	}
}

func TestTwoSidedGeometricPanicsOnBadAlpha(t *testing.T) {
	t.Parallel()
	for _, alpha := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TwoSidedGeometric(%v) did not panic", alpha)
				}
			}()
			New(1).TwoSidedGeometric(alpha)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	t.Parallel()
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) returned %d elements", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) is not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleUniformityFirstPosition(t *testing.T) {
	t.Parallel()
	r := New(18)
	const n = 5
	const draws = 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		vals := []int{0, 1, 2, 3, 4}
		r.Shuffle(n, func(a, b int) { vals[a], vals[b] = vals[b], vals[a] })
		counts[vals[0]]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("value %d first %d times, want about %.0f", v, c, want)
		}
	}
}

func TestNewZipfValidation(t *testing.T) {
	t.Parallel()
	src := New(1)
	cases := []struct {
		name    string
		s, v    float64
		wantErr bool
	}{
		{name: "valid", s: 2, v: 1, wantErr: false},
		{name: "s too small", s: 1, v: 1, wantErr: true},
		{name: "negative s", s: -2, v: 1, wantErr: true},
		{name: "v too small", s: 2, v: 0.5, wantErr: true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			_, err := NewZipf(src, tc.s, tc.v, 100)
			if (err != nil) != tc.wantErr {
				t.Fatalf("NewZipf(s=%v,v=%v) error = %v, wantErr %v", tc.s, tc.v, err, tc.wantErr)
			}
		})
	}
	if _, err := NewZipf(nil, 2, 1, 10); err == nil {
		t.Error("NewZipf(nil source) did not error")
	}
}

func TestZipfInRangeAndMonotoneMass(t *testing.T) {
	t.Parallel()
	src := New(19)
	const imax = 50
	z, err := NewZipf(src, 2.0, 1.0, imax)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300000
	counts := make([]int, imax+1)
	for i := 0; i < n; i++ {
		k := z.Next()
		if k > imax {
			t.Fatalf("Zipf produced %d > imax %d", k, imax)
		}
		counts[k]++
	}
	// Mass should be (weakly, allowing noise) decreasing over the first few
	// ranks and rank 0 should dominate.
	if counts[0] < counts[1] || counts[1] < counts[2] {
		t.Errorf("Zipf head not decreasing: %v", counts[:5])
	}
	// For s=2, v=1: P(0)/P(1) = 4.
	ratio := float64(counts[0]) / float64(counts[1])
	if math.Abs(ratio-4) > 0.4 {
		t.Errorf("P(0)/P(1) = %v, want about 4", ratio)
	}
}

func TestZipfDistributionMatchesExactLaw(t *testing.T) {
	t.Parallel()
	src := New(20)
	const imax = 9
	const s, v = 2.5, 1.0
	z, err := NewZipf(src, s, v, imax)
	if err != nil {
		t.Fatal(err)
	}
	var norm float64
	expected := make([]float64, imax+1)
	for k := 0; k <= imax; k++ {
		expected[k] = math.Pow(v+float64(k), -s)
		norm += expected[k]
	}
	const n = 500000
	counts := make([]int, imax+1)
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for k := 0; k <= imax; k++ {
		want := expected[k] / norm * n
		if want < 50 {
			continue // too little mass for a stable comparison
		}
		if math.Abs(float64(counts[k])-want) > 6*math.Sqrt(want) {
			t.Errorf("k=%d: count %d, want about %.0f", k, counts[k], want)
		}
	}
}

func TestQuickUint64nAlwaysInRange(t *testing.T) {
	t.Parallel()
	r := New(21)
	f := func(seed uint64, nRaw uint32) bool {
		n := uint64(nRaw%10000) + 1
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickLaplaceSignSymmetric(t *testing.T) {
	t.Parallel()
	// Property: with a fresh deterministic source, the empirical sign bias
	// over a batch is small for any scale.
	f := func(seed uint64, scaleRaw uint32) bool {
		b := 0.1 + float64(scaleRaw%1000)/100
		r := New(seed)
		pos := 0
		const n = 2000
		for i := 0; i < n; i++ {
			if r.Laplace(b) > 0 {
				pos++
			}
		}
		return pos > n/2-200 && pos < n/2+200
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestNewRandomSeed(t *testing.T) {
	t.Parallel()
	a, err := NewRandomSeed()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRandomSeed()
	if err != nil {
		t.Fatal(err)
	}
	// Not a strict guarantee, but a collision is astronomically unlikely
	// and would indicate the entropy source is broken.
	if a == b {
		t.Error("two NewRandomSeed calls returned the same value")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Normal()
	}
}

func BenchmarkLaplace(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Laplace(1)
	}
}

// TestSplitToMatchesSplit pins the zero-alloc SplitTo to Split: same
// derived state for the same (parent state, label), including in-place
// self-collapse (src.SplitTo(src, label)), and the polar spare is
// cleared so a recycled scratch Source cannot leak a previous stream's
// cached variate.
func TestSplitToMatchesSplit(t *testing.T) {
	a, b := New(7), New(7)
	want := a.Split(13)
	var got Source
	b.SplitTo(&got, 13)
	for i := 0; i < 16; i++ {
		if w, g := want.Uint64(), got.Uint64(); w != g {
			t.Fatalf("draw %d: Split %d != SplitTo %d", i, w, g)
		}
	}
	// Parents advanced identically.
	if a.Uint64() != b.Uint64() {
		t.Fatal("Split and SplitTo advanced their parents differently")
	}

	// In-place chain collapse: x.SplitTo(x, l) == x = x.Split(l).
	c, d := New(11), New(11)
	wantChain := c.Split(1).Split(2).Split(3)
	e := d
	e.SplitTo(e, 1)
	e.SplitTo(e, 2)
	e.SplitTo(e, 3)
	for i := 0; i < 16; i++ {
		if w, g := wantChain.Uint64(), e.Uint64(); w != g {
			t.Fatalf("chained draw %d: Split %d != SplitTo %d", i, w, g)
		}
	}

	// A dirty spare must not survive into the derived stream.
	f := New(3)
	f.Normal() // leaves hasSpare set
	var dirty Source
	dirty.spare, dirty.hasSpare = 123, true
	f.SplitTo(&dirty, 5)
	g := New(3)
	g.Normal()
	if dirty.Normal() != g.Split(5).Normal() {
		t.Fatal("SplitTo leaked a stale polar spare into the child stream")
	}
}

// TestForkMatchesSplit pins the Fork derivation to Split: child index i
// of a fork taken at some parent state must equal Split(i) taken at the
// same state, so per-chunk fork streams stay in the one derivation
// family the repo's determinism story is built on.
func TestForkMatchesSplit(t *testing.T) {
	t.Parallel()
	for _, label := range []uint64{0, 1, 13, 1 << 40} {
		a, b := New(7), New(7)
		f := a.Fork()
		want := b.Split(label)
		got := f.Stream(label)
		for i := 0; i < 16; i++ {
			if w, g := want.Uint64(), got.Uint64(); w != g {
				t.Fatalf("label %d draw %d: Split %d != Fork.Stream %d", label, i, w, g)
			}
		}
	}
	// Fork and Split consume the parent identically (one Uint64).
	a, b := New(9), New(9)
	a.Fork()
	b.Split(0)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Fork and Split advanced their parents differently")
	}
}

// TestForkOrderIndependence is the property the parallel noise pass
// rests on: a Fork is an immutable value, so any interleaving of child
// derivations — including concurrent StreamTo into per-worker scratch
// sources — yields the same streams.
func TestForkOrderIndependence(t *testing.T) {
	t.Parallel()
	f := New(21).Fork()
	const children = 8
	want := make([]uint64, children)
	for i := range want {
		want[i] = f.Stream(uint64(i)).Uint64()
	}
	// Reverse order, shared scratch.
	var scratch Source
	for i := children - 1; i >= 0; i-- {
		f.StreamTo(&scratch, uint64(i))
		if got := scratch.Uint64(); got != want[i] {
			t.Fatalf("child %d differs when derived in reverse order", i)
		}
	}
	// StreamTo must clear a dirty polar spare like SplitTo does.
	dirty := New(3)
	dirty.Normal()
	f.StreamTo(dirty, 4)
	fresh := f.Stream(4)
	if dirty.Normal() != fresh.Normal() {
		t.Fatal("Fork.StreamTo leaked a stale polar spare into the child stream")
	}
}
