package bipartite

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
)

// maxTSVLine caps one TSV line (the scanner's buffer limit). Lines past it
// fail with a wrapped bufio.ErrTooLong naming the offending line.
const maxTSVLine = 16 * 1024 * 1024

// TSV mode header. SaveTSV writes it as the first line so LoadTSV and the
// chunked TSVEdgeSource can restore the graph in the mode it was saved in:
// without it, a graph whose interned *names* happen to all be numeric
// strings would reload in dense-id mode, silently changing NumLeft and
// NumRight. The line starts with '#', so pre-header readers skip it as a
// comment.
const (
	tsvHeaderPrefix = "# gdp-tsv mode="
	tsvModeIDs      = "ids"
	tsvModeNames    = "names"
)

// tsvMode is the field interpretation of one TSV file.
type tsvMode int

const (
	// tsvSniff means no header was seen (yet): fields are ids while every
	// one of them is a canonical non-negative integer, names otherwise.
	tsvSniff tsvMode = iota
	tsvIDs
	tsvNames
)

// parseTSVHeader recognizes the mode header line. It returns an error for
// a header with an unknown mode, and ok=false for any other line.
func parseTSVHeader(line string) (mode tsvMode, ok bool, err error) {
	if !strings.HasPrefix(line, tsvHeaderPrefix) {
		return tsvSniff, false, nil
	}
	switch m := strings.TrimSpace(strings.TrimPrefix(line, tsvHeaderPrefix)); m {
	case tsvModeIDs:
		return tsvIDs, true, nil
	case tsvModeNames:
		return tsvNames, true, nil
	default:
		return tsvSniff, false, fmt.Errorf("bipartite: tsv header: unknown mode %q (want %s or %s)", m, tsvModeIDs, tsvModeNames)
	}
}

// newTSVScanner returns a line scanner with the package's line cap.
func newTSVScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxTSVLine)
	return sc
}

// wrapTSVScanErr decorates scanner failures; bufio.ErrTooLong gains the
// number of the line that exceeded the cap (one past the last line that
// scanned cleanly) instead of surfacing as a bare "token too long".
func wrapTSVScanErr(err error, lastLine int) error {
	if errors.Is(err, bufio.ErrTooLong) {
		return fmt.Errorf("bipartite: tsv line %d: line exceeds %d-byte cap: %w", lastLine+1, maxTSVLine, err)
	}
	return fmt.Errorf("bipartite: scanning tsv: %w", err)
}

// splitTSVFields splits one data line into its two tab-separated fields.
func splitTSVFields(line string) (l, r string, err error) {
	fields := strings.Split(line, "\t")
	if len(fields) != 2 {
		return "", "", fmt.Errorf("want 2 tab-separated fields, got %d", len(fields))
	}
	return fields[0], fields[1], nil
}

// SaveTSV writes the mode header followed by one association per line as
// "left<TAB>right". When the graph carries names the labels are written;
// otherwise the dense ids are. The header pins the mode so LoadTSV
// round-trips numeric-looking names as names.
func SaveTSV(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	mode := tsvModeIDs
	if g.HasNames() {
		mode = tsvModeNames
	}
	var err error
	if _, err = fmt.Fprintf(bw, "%s%s\n", tsvHeaderPrefix, mode); err != nil {
		return fmt.Errorf("bipartite: writing tsv header: %w", err)
	}
	g.ForEachEdge(func(l, r int32) bool {
		if g.HasNames() {
			_, err = fmt.Fprintf(bw, "%s\t%s\n", g.LeftName(l), g.RightName(r))
		} else {
			_, err = fmt.Fprintf(bw, "%d\t%d\n", l, r)
		}
		return err == nil
	})
	if err != nil {
		return fmt.Errorf("bipartite: writing tsv: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("bipartite: flushing tsv: %w", err)
	}
	return nil
}

// LoadTSV reads "left<TAB>right" lines. A "# gdp-tsv mode=" header (first
// line) fixes the field interpretation; without one, the graph is built
// over dense ids if every field on both sides is a canonical non-negative
// integer (digits only, no sign, no leading zero) and fields are interned
// as names otherwise. Blank lines and lines starting with '#' are skipped.
func LoadTSV(r io.Reader) (*Graph, error) {
	type pair struct{ l, r string }
	var pairs []pair
	mode := tsvSniff
	numeric := true

	sc := newTSVScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			if lineNo == 1 {
				m, ok, err := parseTSVHeader(line)
				if err != nil {
					return nil, err
				}
				if ok {
					mode = m
				}
			}
			continue
		}
		l, r, err := splitTSVFields(line)
		if err != nil {
			return nil, fmt.Errorf("bipartite: tsv line %d: %v", lineNo, err)
		}
		if mode == tsvIDs && (!isUint(l) || !isUint(r)) {
			return nil, fmt.Errorf("bipartite: tsv line %d: non-numeric field in id-mode file", lineNo)
		}
		if numeric && (!isUint(l) || !isUint(r)) {
			numeric = false
		}
		pairs = append(pairs, pair{l: l, r: r})
	}
	if err := sc.Err(); err != nil {
		return nil, wrapTSVScanErr(err, lineNo)
	}
	if mode == tsvSniff {
		mode = tsvIDs
		if !numeric {
			mode = tsvNames
		}
	}

	b := NewBuilder(len(pairs))
	for _, p := range pairs {
		if mode == tsvIDs {
			l, err := parseNodeID(p.l)
			if err != nil {
				return nil, fmt.Errorf("bipartite: tsv: parsing left id: %w", err)
			}
			r, err := parseNodeID(p.r)
			if err != nil {
				return nil, fmt.Errorf("bipartite: tsv: parsing right id: %w", err)
			}
			b.AddEdge(l, r)
		} else {
			b.AddAssociation(p.l, p.r)
		}
	}
	return b.Build()
}

// parseID parses the canonical base-10 form of a non-negative int32 in a
// single pass: digits only — no sign, no spaces — and no leading zero
// (except "0" itself). Canonical-only matters for mode sniffing: ParseInt
// would accept "+1" and "01", collapsing fields that are distinct as
// names ("01" vs "1") onto one dense id. The per-edge ingest loops call
// this once per field, so validation and value extraction share one walk.
func parseID(s string) (int32, bool) {
	if s == "" || (len(s) > 1 && s[0] == '0') || len(s) > 10 {
		return 0, false
	}
	var v int64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
	}
	if v > 1<<31-1 {
		return 0, false
	}
	return int32(v), true
}

// isUint reports whether s is a canonical non-negative id (see parseID).
func isUint(s string) bool {
	_, ok := parseID(s)
	return ok
}

// parseNodeID is parseID with an error for reporting paths.
func parseNodeID(s string) (int32, error) {
	v, ok := parseID(s)
	if !ok {
		return 0, fmt.Errorf("field %q is not a canonical non-negative id", s)
	}
	return v, nil
}
