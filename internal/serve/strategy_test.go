package serve

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/release"
)

func TestOpenUnknownStrategy(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.Strategy = "no-such-strategy"
	if _, err := Open(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("Open with unknown strategy: got %v, want ErrBadConfig", err)
	}
}

func TestAddDatasetWithUnknownStrategy(t *testing.T) {
	t.Parallel()
	reg, _ := openTestDataset(t, testConfig())
	if _, err := reg.AddDatasetWith("x", testSource(t), DatasetOptions{Strategy: "no-such-strategy"}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("AddDatasetWith unknown strategy: got %v, want ErrBadConfig", err)
	}
	// The failed add must not have reserved the name.
	if _, err := reg.AddDataset("x", testSource(t)); err != nil {
		t.Fatalf("re-adding after a refused strategy: %v", err)
	}
}

// TestDatasetStrategyAudit pins the audit-trail convention: non-default
// strategies prefix every ledger label with "strategy=<name>/", the
// default stays prefix-free (byte-identical to the pre-strategy layer).
func TestDatasetStrategyAudit(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.Phase1Epsilon = 0.002
	reg, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })

	for _, name := range release.Strategies.Names() {
		ds, err := reg.AddDatasetWith("ds-"+name, testSource(t), DatasetOptions{Strategy: name})
		if err != nil {
			t.Fatalf("%s: ingest: %v", name, err)
		}
		if ds.Strategy() != name {
			t.Errorf("%s: Dataset.Strategy() = %q", name, ds.Strategy())
		}
		sess := ds.SessionAt(1)
		if _, err := sess.Marginal(1, bipartite.Left); err != nil {
			t.Fatalf("%s: marginal: %v", name, err)
		}
		ops := ds.Ops()
		if len(ops) < 2 {
			t.Fatalf("%s: expected phase-1 + query ops, got %d", name, len(ops))
		}
		wantPrefix := "strategy=" + name + "/"
		for _, op := range ops {
			if name == release.DefaultStrategyName {
				if strings.HasPrefix(op.Label, "strategy=") {
					t.Errorf("default strategy op %q carries a strategy prefix", op.Label)
				}
			} else if !strings.HasPrefix(op.Label, wantPrefix) {
				t.Errorf("%s: op %q missing prefix %q", name, op.Label, wantPrefix)
			}
		}
	}
}

// TestStrategySessionStreamsDisjoint pins that datasets of the same
// data under different strategies never share noise: the strategy salt
// re-keys every session stream.
func TestStrategySessionStreamsDisjoint(t *testing.T) {
	t.Parallel()
	reg, err := Open(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })

	marginals := map[string][]float64{}
	for _, name := range []string{release.DefaultStrategyName, "community-gaussian"} {
		ds, err := reg.AddDatasetWith("ds-"+name, testSource(t), DatasetOptions{Strategy: name})
		if err != nil {
			t.Fatal(err)
		}
		m, err := ds.SessionAt(9).Marginal(1, bipartite.Left)
		if err != nil {
			t.Fatal(err)
		}
		marginals[name] = append([]float64(nil), m...)
	}
	a := marginals[release.DefaultStrategyName]
	b := marginals["community-gaussian"]
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("default and community strategies drew identical marginal noise at one (stream, seq)")
		}
	}
}

// TestPureStrategyServesDeltaZero pins the ε-accounting difference end
// to end: a pure-ε registry admits δ=0 budgets (the Gaussian σ probe
// would have refused them), serves Laplace histograms, and never
// spends δ — while a Gaussian-strategy dataset on the same registry is
// refused up front because its cells cannot be calibrated.
func TestPureStrategyServesDeltaZero(t *testing.T) {
	t.Parallel()
	reg, err := Open(Config{
		Budget:   dp.Params{Epsilon: 1},
		PerQuery: dp.Params{Epsilon: 0.02},
		Rounds:   5,
		Seed:     71,
		Strategy: "quadtree-laplace",
	})
	if err != nil {
		t.Fatalf("pure-ε registry with δ=0 budget: %v", err)
	}
	t.Cleanup(func() { reg.Close() })

	ds, err := reg.AddDataset("tiny", testSource(t))
	if err != nil {
		t.Fatal(err)
	}
	view, err := ds.SessionAt(1).ReleaseLevel(2)
	if err != nil {
		t.Fatal(err)
	}
	if view.Cells.MechName != core.MechLaplace.String() {
		t.Errorf("cells mechanism = %q, want laplace", view.Cells.MechName)
	}
	if spent := ds.Spent(); spent.Delta != 0 || spent.Epsilon <= 0 {
		t.Errorf("spent = %+v, want ε>0 and δ=0", spent)
	}

	if _, err := reg.AddDatasetWith("gauss", testSource(t), DatasetOptions{Strategy: release.DefaultStrategyName}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("gaussian dataset on a δ=0 registry: got %v, want ErrBadConfig", err)
	}
}
