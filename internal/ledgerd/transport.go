// Replication transport: how group members reach each other, plus the
// fault-injection seam the failover tests drive.
//
// The interface mirrors the accountant.WriteSyncer idiom — production
// uses the real thing (HTTP here, *os.File there) and tests wrap it in
// a fault injector that can drop, delay, or partition traffic per
// destination without touching the protocol logic under test.
package ledgerd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// ErrPeerUnreachable wraps transport-level failures (network errors,
// injected drops); the caller treats them as a silent peer.
var ErrPeerUnreachable = errors.New("ledgerd: peer unreachable")

// AppendRequest replicates a log suffix from the primary. Entries are
// raw checksummed WAL frames (base64 on the wire via encoding/json);
// the follower verifies each checksum before fsyncing the bytes
// verbatim into its own log.
type AppendRequest struct {
	Term      uint64   `json:"term"`
	Leader    string   `json:"leader"`
	PrevIndex uint64   `json:"prev_index"`
	PrevTerm  uint64   `json:"prev_term"`
	Commit    uint64   `json:"commit"`
	Entries   [][]byte `json:"entries,omitempty"`
}

// AppendResponse acknowledges (or refuses) a replication batch. A
// refusal with OK=false and no error is the log-consistency backoff
// signal; LogLen hints where the leader should resume. A stale-term
// append never reaches this shape — it is an HTTP 409 "epoch-fenced".
type AppendResponse struct {
	OK     bool   `json:"ok"`
	Term   uint64 `json:"term"`
	LogLen uint64 `json:"log_len"`
}

// VoteRequest asks a peer to durably adopt Term, which is that peer's
// one vote for it. LastLogTerm/LogLen carry the candidate's log
// position for raft's up-to-date check.
type VoteRequest struct {
	Term        uint64 `json:"term"`
	Candidate   string `json:"candidate"`
	LastLogTerm uint64 `json:"last_log_term"`
	LogLen      uint64 `json:"log_len"`
}

// VoteResponse reports whether the peer persisted Term for this
// candidate. Term is the peer's (possibly higher) durable term.
type VoteResponse struct {
	Granted bool   `json:"granted"`
	Term    uint64 `json:"term"`
}

// StateResponse is a peer's durable position — what a candidate reads
// from a majority before bidding for a higher term.
type StateResponse struct {
	Node        string `json:"node"`
	Term        uint64 `json:"term"`
	LastLogTerm uint64 `json:"last_log_term"`
	LogLen      uint64 `json:"log_len"`
	Commit      uint64 `json:"commit"`
	Role        string `json:"role"`
	Leader      string `json:"leader,omitempty"`
}

// GroupTransport carries replication traffic between members.
type GroupTransport interface {
	Append(ctx context.Context, addr string, req AppendRequest) (AppendResponse, error)
	Vote(ctx context.Context, addr string, req VoteRequest) (VoteResponse, error)
	State(ctx context.Context, addr string) (StateResponse, error)
}

// HTTPGroupTransport is the production transport: JSON over the group
// endpoints NewGroupHandler serves.
type HTTPGroupTransport struct {
	// Client overrides the HTTP client (nil uses http.DefaultClient).
	Client *http.Client
}

func (t *HTTPGroupTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

func (t *HTTPGroupTransport) post(ctx context.Context, addr, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(addr, "/")+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.client().Do(req)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrPeerUnreachable, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrPeerUnreachable, err)
	}
	if resp.StatusCode != http.StatusOK {
		var we errorWire
		_ = json.Unmarshal(data, &we)
		if we.Code == CodeEpochFenced {
			// The peer's durable term is newer: the sender is fenced. Term
			// rides in the error body so the sender can adopt it.
			return &fencedError{term: we.Term, msg: we.Error}
		}
		return fmt.Errorf("%w: HTTP %d (%s): %s", ErrPeerUnreachable, resp.StatusCode, we.Code, we.Error)
	}
	return json.Unmarshal(data, out)
}

// fencedError carries the fencing peer's term back to a stale sender.
type fencedError struct {
	term uint64
	msg  string
}

func (e *fencedError) Error() string {
	return fmt.Sprintf("ledgerd: fenced by peer at term %d: %s", e.term, e.msg)
}

func (e *fencedError) Is(target error) bool { return target == ErrEpochFenced }

func (t *HTTPGroupTransport) Append(ctx context.Context, addr string, req AppendRequest) (AppendResponse, error) {
	var res AppendResponse
	err := t.post(ctx, addr, "/v1/group/append", req, &res)
	return res, err
}

func (t *HTTPGroupTransport) Vote(ctx context.Context, addr string, req VoteRequest) (VoteResponse, error) {
	var res VoteResponse
	err := t.post(ctx, addr, "/v1/group/vote", req, &res)
	return res, err
}

func (t *HTTPGroupTransport) State(ctx context.Context, addr string) (StateResponse, error) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(addr, "/")+"/v1/group/state", nil)
	if err != nil {
		return StateResponse{}, err
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return StateResponse{}, fmt.Errorf("%w: %v", ErrPeerUnreachable, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		return StateResponse{}, fmt.Errorf("%w: state HTTP %d: %v", ErrPeerUnreachable, resp.StatusCode, err)
	}
	var res StateResponse
	if err := json.Unmarshal(data, &res); err != nil {
		return StateResponse{}, fmt.Errorf("%w: %v", ErrPeerUnreachable, err)
	}
	return res, nil
}

// FaultTransport wraps a GroupTransport with per-destination drop and
// delay controls — the replication-stream analogue of the WriteSyncer
// fault seam. Outbound only: to partition a node both sides arm their
// own transports (see the tests' partition helper). Safe for concurrent
// use.
type FaultTransport struct {
	Inner GroupTransport

	mu      sync.Mutex
	dropAll bool
	drop    map[string]bool
	delay   time.Duration
}

// Drop starts dropping all traffic to addr.
func (f *FaultTransport) Drop(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.drop == nil {
		f.drop = make(map[string]bool)
	}
	f.drop[addr] = true
}

// DropAll starts dropping all outbound traffic (a fully isolated node).
func (f *FaultTransport) DropAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropAll = true
}

// Delay injects a fixed pause before every delivered call.
func (f *FaultTransport) Delay(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delay = d
}

// Heal clears every injected fault.
func (f *FaultTransport) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropAll = false
	f.drop = nil
	f.delay = 0
}

// pass decides one call's fate: an error to drop it, else a delay to
// apply before delivery.
func (f *FaultTransport) pass(ctx context.Context, addr string) error {
	f.mu.Lock()
	dropped := f.dropAll || f.drop[addr]
	delay := f.delay
	f.mu.Unlock()
	if dropped {
		return fmt.Errorf("%w: injected drop to %s", ErrPeerUnreachable, addr)
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return fmt.Errorf("%w: %v", ErrPeerUnreachable, ctx.Err())
		}
	}
	return nil
}

func (f *FaultTransport) Append(ctx context.Context, addr string, req AppendRequest) (AppendResponse, error) {
	if err := f.pass(ctx, addr); err != nil {
		return AppendResponse{}, err
	}
	return f.Inner.Append(ctx, addr, req)
}

func (f *FaultTransport) Vote(ctx context.Context, addr string, req VoteRequest) (VoteResponse, error) {
	if err := f.pass(ctx, addr); err != nil {
		return VoteResponse{}, err
	}
	return f.Inner.Vote(ctx, addr, req)
}

func (f *FaultTransport) State(ctx context.Context, addr string) (StateResponse, error) {
	if err := f.pass(ctx, addr); err != nil {
		return StateResponse{}, err
	}
	return f.Inner.State(ctx, addr)
}
