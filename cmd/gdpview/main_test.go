package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro"
)

// writeArtifact produces a small published artifact on disk.
func writeArtifact(t *testing.T) string {
	t.Helper()
	g, err := repro.GenerateDataset(repro.PresetDBLPTiny, 2)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := repro.NewPipeline(repro.Params{Epsilon: 0.9, Delta: 1e-5},
		repro.WithRounds(5), repro.WithSeed(6), repro.WithCellHistograms(true))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := pipe.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rel.WriteJSON(&buf, false); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rel.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFullArtifact(t *testing.T) {
	path := writeArtifact(t)
	if err := run([]string{path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLevelView(t *testing.T) {
	path := writeArtifact(t)
	if err := run([]string{"-level", "2", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-level", "99", path}); err == nil {
		t.Error("missing level accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"/nonexistent.json"}); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}); err == nil {
		t.Error("invalid artifact accepted")
	}
}
