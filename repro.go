// Package repro is the public API of the group-differential-privacy
// library, a from-scratch Go reproduction of
//
//	Palanisamy, Li, Krishnamurthy. "Group Differential Privacy-preserving
//	Disclosure of Multi-level Association Graphs", IEEE ICDCS 2017.
//
// The library discloses bipartite association graphs (authors×papers,
// patients×drugs, viewers×movies) at multiple information levels: every
// level carries εg-group differential privacy for the groups formed at
// that level of a privately built hierarchy, so higher-privilege users
// receive less-perturbed data while aggregate information about coarser
// groups stays protected.
//
// Quick start:
//
//	g, _ := repro.GenerateDataset(repro.PresetDBLPTiny, 1)
//	pipe, _ := repro.NewPipeline(repro.Params{Epsilon: 0.9, Delta: 1e-5},
//	    repro.WithRounds(6), repro.WithSeed(7))
//	rel, _ := pipe.Run(g)
//	view, _ := rel.ViewFor(3) // what a privilege-3 user sees
//
// The facade re-exports the stable surface of the internal packages; see
// DESIGN.md for the full system inventory and EXPERIMENTS.md for the
// paper-vs-measured evaluation.
package repro

import (
	"io"
	"net/http"
	"os"

	"repro/internal/accountant"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dp"
	"repro/internal/experiments"
	"repro/internal/hierarchy"
	"repro/internal/query"
	"repro/internal/release"
	"repro/internal/rng"
	"repro/internal/serve"
)

// Core data types.
type (
	// Graph is an immutable bipartite association graph.
	Graph = bipartite.Graph
	// GraphBuilder accumulates associations and freezes them into a Graph.
	GraphBuilder = bipartite.Builder
	// Edge is one association record.
	Edge = bipartite.Edge
	// Side selects the left or right node side.
	Side = bipartite.Side
	// Stats summarizes a graph's shape.
	Stats = bipartite.Stats

	// Params is an (ε, δ) differential-privacy budget.
	Params = dp.Params

	// Pipeline is the configured two-phase discloser.
	Pipeline = release.Pipeline
	// Release is the published multi-level artifact.
	Release = release.Release
	// View is what one privilege tier receives.
	View = release.View
	// Option configures NewPipeline.
	Option = release.Option
	// Mode selects the budget mode.
	Mode = release.Mode

	// GroupModel selects group-adjacency semantics.
	GroupModel = core.GroupModel
	// Calibration selects the Gaussian calibration.
	Calibration = core.Calibration
	// LevelRelease is one level's noisy count answer.
	LevelRelease = core.LevelRelease
	// CellRelease is one level's noisy subgraph histogram.
	CellRelease = core.CellRelease
	// GroupUniverse describes one level's group partition.
	GroupUniverse = core.GroupUniverse

	// Tree is the multi-level group hierarchy (curator-side state).
	Tree = hierarchy.Tree

	// DatasetConfig describes a synthetic dataset.
	DatasetConfig = datagen.Config

	// ExperimentOptions configures RunExperiment.
	ExperimentOptions = experiments.Options
	// ExperimentReport is an experiment's rendered output.
	ExperimentReport = experiments.Report
)

// Graph sides.
const (
	Left  = bipartite.Left
	Right = bipartite.Right
)

// Budget modes (see release.Mode).
const (
	ModePerLevel         = release.ModePerLevel
	ModeComposedBasic    = release.ModeComposedBasic
	ModeComposedAdvanced = release.ModeComposedAdvanced
	ModeComposedRDP      = release.ModeComposedRDP
)

// Group models (see core.GroupModel).
const (
	ModelCells      = core.ModelCells
	ModelNodeGroups = core.ModelNodeGroups
	ModelIndividual = core.ModelIndividual
)

// Gaussian calibrations (see core.Calibration).
const (
	CalibrationClassical = core.CalibrationClassical
	CalibrationAnalytic  = core.CalibrationAnalytic
)

// Dataset presets (see internal/datagen).
const (
	PresetDBLPFull   = datagen.PresetDBLPFull
	PresetDBLPScaled = datagen.PresetDBLPScaled
	PresetDBLPTiny   = datagen.PresetDBLPTiny
	PresetPharmacy   = datagen.PresetPharmacy
	PresetMovies     = datagen.PresetMovies
)

// NewGraphBuilder returns an empty graph builder with a capacity hint.
func NewGraphBuilder(edgeCapacity int) *GraphBuilder {
	return bipartite.NewBuilder(edgeCapacity)
}

// FromEdges builds a Graph from explicit edges and side sizes.
func FromEdges(numLeft, numRight int32, edges []Edge) (*Graph, error) {
	return bipartite.FromEdges(numLeft, numRight, edges)
}

// LoadTSV reads "left<TAB>right" association lines.
func LoadTSV(r io.Reader) (*Graph, error) { return bipartite.LoadTSV(r) }

// SaveTSV writes one association per line.
func SaveTSV(w io.Writer, g *Graph) error { return bipartite.SaveTSV(w, g) }

// LoadDBLPXML parses a DBLP-style XML dump into an author-paper graph.
func LoadDBLPXML(r io.Reader) (*Graph, error) { return bipartite.LoadDBLPXML(r) }

// EncodeBinary writes the compact binary graph format.
func EncodeBinary(w io.Writer, g *Graph) error { return bipartite.EncodeBinary(w, g) }

// DecodeBinary reads the compact binary graph format.
func DecodeBinary(r io.Reader) (*Graph, error) { return bipartite.DecodeBinary(r) }

// ComputeStats summarizes a graph.
func ComputeStats(g *Graph) Stats { return bipartite.ComputeStats(g) }

// EdgeSource is a resettable chunked edge stream — the substrate of the
// beyond-RAM disclosure path (see Pipeline.RunFromEdges).
type EdgeSource = bipartite.EdgeSource

// NewTSVEdgeSource streams a "left<TAB>right" file as edge chunks without
// holding its pairs in memory.
func NewTSVEdgeSource(rs io.ReadSeeker) (EdgeSource, error) { return bipartite.NewTSVEdgeSource(rs) }

// NewBinaryEdgeSource streams the compact binary graph format as edge
// chunks without rebuilding the CSR arrays.
func NewBinaryEdgeSource(rs io.ReadSeeker) (EdgeSource, error) {
	return bipartite.NewBinaryEdgeSource(rs)
}

// NewGraphEdgeSource streams an in-memory graph's edges in left-major
// order (useful for verifying the streamed path against the in-memory
// one).
func NewGraphEdgeSource(g *Graph) EdgeSource { return bipartite.NewGraphSource(g) }

// NewSliceEdgeSource streams an explicit edge slice with declared side
// sizes; many cursors may share one immutable slice.
func NewSliceEdgeSource(numLeft, numRight int32, edges []Edge) EdgeSource {
	return bipartite.NewSliceSource(numLeft, numRight, edges)
}

// NewDatasetStream yields a synthetic dataset's edges as chunks without
// materializing the Graph.
func NewDatasetStream(cfg DatasetConfig) (EdgeSource, error) { return datagen.NewStream(cfg) }

// BuildHierarchyFromEdges runs Phase-1 specialization over an edge stream
// in two passes, with peak memory independent of the edge count. The tree
// is bit-identical to one built from a materialized Graph holding the
// same associations.
func BuildHierarchyFromEdges(src EdgeSource, opts HierarchyOptions) (*Tree, error) {
	return hierarchy.BuildFromEdges(src, opts)
}

// HierarchyOptions configures a direct hierarchy build.
type HierarchyOptions = hierarchy.Options

// GenerateDataset builds a synthetic dataset from a preset name.
func GenerateDataset(preset string, seed uint64) (*Graph, error) {
	cfg, err := datagen.ByName(preset, seed)
	if err != nil {
		return nil, err
	}
	return datagen.Generate(cfg)
}

// GenerateCustom builds a synthetic dataset from an explicit config.
func GenerateCustom(cfg DatasetConfig) (*Graph, error) { return datagen.Generate(cfg) }

// NewPipeline returns a configured two-phase disclosure pipeline.
func NewPipeline(budget Params, opts ...Option) (*Pipeline, error) {
	return release.New(budget, opts...)
}

// Pipeline options, re-exported from internal/release.
var (
	WithRounds         = release.WithRounds
	WithLevels         = release.WithLevels
	WithMode           = release.WithMode
	WithModel          = release.WithModel
	WithCalibration    = release.WithCalibration
	WithMechanism      = release.WithMechanism
	WithPhase1Epsilon  = release.WithPhase1Epsilon
	WithOrder          = release.WithOrder
	WithCellHistograms = release.WithCellHistograms
	WithConsistency    = release.WithConsistency
	WithGrouping       = release.WithGrouping
	WithSeed           = release.WithSeed
	WithStrategy       = release.WithStrategy
	WithWorkers        = release.WithWorkers
)

// ReleaseStrategyNames lists the registered release strategies
// (partitioner × noise × consistency compositions) selectable with
// WithStrategy, ServeConfig.Strategy, DatasetOptions.Strategy, or the
// HTTP ingest ?strategy= parameter.
func ReleaseStrategyNames() []string { return release.Strategies.Names() }

// DefaultReleaseStrategy is the strategy used when none is named; its
// artifacts are byte-identical to releases produced before strategies
// existed.
const DefaultReleaseStrategy = release.DefaultStrategyName

// Grouping is the published node → group assignment per level.
type Grouping = release.Grouping

// GroupSensitivity returns the count-query sensitivity at a level of a
// built hierarchy under the given adjacency model.
func GroupSensitivity(t *Tree, level int, model GroupModel) (int64, error) {
	return core.Sensitivity(t, level, model)
}

// UniverseAt describes the group partition at one level.
func UniverseAt(t *Tree, level int, model GroupModel) (GroupUniverse, error) {
	return core.Universe(t, level, model)
}

// RunExperiment executes a named experiment ("figure1", "budget-split",
// "calibration", "partitioner", "adjacency", "delta", "scale").
func RunExperiment(name string, opts ExperimentOptions) (*ExperimentReport, error) {
	return experiments.Run(name, opts)
}

// ExperimentNames lists the available experiments.
func ExperimentNames() []string { return experiments.Names() }

// NewRandomSeed returns an OS-entropy seed for production (non-
// reproducible) releases.
func NewRandomSeed() (uint64, error) { return rng.NewRandomSeed() }

// NoiseMechanism selects the Phase-2 noise distribution for advanced
// release paths (see core.ReleaseCountWith).
type NoiseMechanism = core.NoiseMechanism

// Noise mechanisms (see core.NoiseMechanism).
const (
	MechGaussian  = core.MechGaussian
	MechLaplace   = core.MechLaplace
	MechGeometric = core.MechGeometric
)

// ReadRelease parses and validates a published artifact produced by
// Release.WriteJSON, for the data-user side.
func ReadRelease(r io.Reader) (*Release, error) { return release.ReadJSON(r) }

// MarginalCounts returns per-side-group association counts implied by a
// noisy cell release (row/column sums of the cell grid).
func MarginalCounts(c CellRelease, side Side) ([]float64, error) {
	return query.MarginalCounts(c, side)
}

// TopKGroups returns the indices of the k heaviest side groups according
// to a noisy cell release.
func TopKGroups(c CellRelease, side Side, k int) ([]int, error) {
	return query.TopKGroups(c, side, k)
}

// MarginalCountsInto is MarginalCounts reusing dst's capacity — the
// zero-allocation form for callers looping over releases.
func MarginalCountsInto(dst []float64, c CellRelease, side Side) ([]float64, error) {
	return query.MarginalCountsInto(dst, c, side)
}

// TopKScratch holds TopKGroupsInto's reusable ranking buffers; the zero
// value is ready to use.
type TopKScratch = query.TopKScratch

// TopKGroupsInto is TopKGroups ranking through the caller's scratch;
// the returned slice is valid until the scratch's next use.
func TopKGroupsInto(s *TopKScratch, c CellRelease, side Side, k int) ([]int, error) {
	return query.TopKGroupsInto(s, c, side, k)
}

// Serving API — the long-lived, budget-accounted, multi-tenant layer
// over the release engine (internal/serve; cmd/gdpserve is the server
// binary).
type (
	// ServeConfig configures OpenRegistry: per-dataset budget, per-query
	// cost, hierarchy depth, seed, ingest parallelism. Set LedgerAddr to
	// a gdpledgerd sequencer address to make N replicas of the same
	// dataset spend one shared budget (mutually exclusive with the local
	// LedgerDir/LedgerFsync* knobs).
	ServeConfig = serve.Config
	// Registry owns named served datasets and their ingest lanes.
	Registry = serve.Registry
	// Dataset is one served hierarchy plus its privacy ledger.
	Dataset = serve.Dataset
	// DatasetOptions carries per-dataset ingest options — notably a
	// release-strategy override — for Registry.AddDatasetWith.
	DatasetOptions = serve.DatasetOptions
	// Session is one tenant's query handle: reusable release buffers
	// and a private pre-split RNG stream. Not safe for concurrent use;
	// open one per goroutine.
	Session = serve.Session
	// LevelView is a session's served answer for one level: noisy count
	// plus noisy cell histogram.
	LevelView = serve.LevelView
	// ServeCacheStats reports a dataset's response-cache counters
	// (Dataset.CacheStats): hits replay prior answers without debiting
	// the ledger.
	ServeCacheStats = serve.CacheStats
	// LedgerFsyncPolicy selects when a durable ledger's WAL is fsynced
	// (ServeConfig.LedgerFsync): LedgerFsyncAlways, LedgerFsyncInterval
	// or LedgerFsyncOff.
	LedgerFsyncPolicy = accountant.FsyncPolicy
	// LedgerDurability reports a dataset's durable-ledger state
	// (Dataset.Durability): WAL path, fsync policy, record counts,
	// replayed ops, and whether the ledger has failed closed.
	LedgerDurability = accountant.DurableStatus
	// LedgerRemoteStatus reports a dataset's shared-sequencer binding
	// (Dataset.RemoteStatus) when ServeConfig.LedgerAddr points the
	// registry at a gdpledgerd service: sequencer address, budget key,
	// pinned epoch token, and any latched failure. With a shared
	// sequencer, N serving replicas spend ONE (ε, δ) budget per dataset.
	LedgerRemoteStatus = accountant.RemoteStatus
)

// Durable-ledger fsync policies (ServeConfig.LedgerFsync).
const (
	// LedgerFsyncAlways fsyncs the WAL before every spend is admitted:
	// no noise bytes are ever released for an op that is not durably
	// logged. The default.
	LedgerFsyncAlways = accountant.FsyncAlways
	// LedgerFsyncInterval bounds the unsynced window by
	// ServeConfig.LedgerFsyncInterval — a crash may forget spends
	// admitted within the window (budget-unsafe but faster).
	LedgerFsyncInterval = accountant.FsyncInterval
	// LedgerFsyncOff syncs only on snapshot, close, and explicit Sync.
	LedgerFsyncOff = accountant.FsyncOff
)

// OpenRegistry opens an empty serving registry. Datasets are added with
// Registry.AddDataset from any EdgeSource — the edges stream through
// the two-pass hierarchy build and are never resident in memory.
// Queries run through Dataset.NewSession (or SessionAt for replayable
// pinned streams) and debit the dataset's ledger before any noise is
// drawn; exhausted budgets refuse queries with an error satisfying
// errors.Is(err, ErrBudgetExhausted).
func OpenRegistry(cfg ServeConfig) (*Registry, error) { return serve.Open(cfg) }

// ErrBudgetExhausted is returned (wrapped) by sessions of a dataset
// whose privacy ledger cannot admit another query.
var ErrBudgetExhausted = accountant.ErrBudgetExceeded

// ErrLedgerFailed is the fail-closed latch of durable and
// sequencer-backed ledgers: once a dataset's ledger cannot prove a
// spend was recorded (write error, lost ack, partition, epoch fence),
// every later query fails with an error satisfying
// errors.Is(err, ErrLedgerFailed) rather than release unaccounted
// noise.
var ErrLedgerFailed = accountant.ErrLedgerFailed

// NewServeHandler returns the HTTP/JSON front end over a registry —
// dataset ingest, budget inspection, level views, marginal and top-k
// queries (see cmd/gdpserve for the standalone server). Server-side
// path ingest is disabled; see NewServeHandlerWith.
func NewServeHandler(r *Registry) http.Handler { return serve.NewHandler(r) }

// ServeHandlerOptions configures NewServeHandlerWith.
type ServeHandlerOptions = serve.HandlerOptions

// NewServeHandlerWith is NewServeHandler with explicit options: enabling
// JSON {"path": ...} ingest of server-side files (safe only on trusted
// or loopback listeners), and the resource caps on upload size and open
// session handles.
func NewServeHandlerWith(r *Registry, opts ServeHandlerOptions) http.Handler {
	return serve.NewHandlerWith(r, opts)
}

// OpenEdgeSourceFile sniffs an edge file's format (binary codec vs TSV)
// and returns a chunked source over it.
func OpenEdgeSourceFile(f *os.File) (EdgeSource, error) { return serve.OpenEdgeSourceFile(f) }
