package core

import (
	"fmt"
	"math"

	"repro/internal/dp"
	"repro/internal/hierarchy"
	"repro/internal/rng"
)

// ReleaseCountSigma answers the association-count query with Gaussian
// noise at an externally calibrated scale — the path used when an RDP
// accountant (rather than a per-query (ε, δ) split) governs the global
// budget. advertised records the honest per-release budget implied by
// sigma for the artifact's metadata; compute it with dp.GaussianEpsilon.
func ReleaseCountSigma(t *hierarchy.Tree, level int, model GroupModel, sigma float64, advertised dp.Params, src *rng.Source) (LevelRelease, error) {
	if t == nil {
		return LevelRelease{}, ErrNilTree
	}
	if src == nil {
		return LevelRelease{}, dp.ErrNilSource
	}
	if !(sigma >= 0) || math.IsInf(sigma, 0) {
		return LevelRelease{}, fmt.Errorf("core: invalid sigma %v", sigma)
	}
	sens, err := Sensitivity(t, level, model)
	if err != nil {
		return LevelRelease{}, err
	}
	trueCount := t.NumEdges()
	noisy := float64(trueCount) + gaussianScalar(src, sigma)
	rel := LevelRelease{
		Level: level, Model: model,
		ModelName: model.String(), CalibName: "rdp", MechName: MechGaussian.String(),
		Params: advertised, Epsilon: advertised.Epsilon, Delta: advertised.Delta,
		Sensitivity: sens, Sigma: sigma,
		TrueCount: trueCount, NoisyCount: noisy,
	}
	if trueCount > 0 {
		rel.RER = math.Abs(noisy-float64(trueCount)) / float64(trueCount)
	}
	return rel, nil
}

// ReleaseCellsSigma releases a level's cell histogram with Gaussian noise
// at an externally calibrated scale (see ReleaseCountSigma).
func ReleaseCellsSigma(t *hierarchy.Tree, level int, sigma float64, advertised dp.Params, src *rng.Source) (CellRelease, error) {
	var rel CellRelease
	if err := ReleaseCellsSigmaInto(&rel, t, level, sigma, advertised, src); err != nil {
		return CellRelease{}, err
	}
	return rel, nil
}

// ReleaseCellsSigmaInto is ReleaseCellsSigma writing into dst, reusing
// dst.Counts' capacity; see ReleaseCellsInto for the reuse contract. The
// level's noise comes from chunked batched ziggurat fills on per-chunk
// forked streams.
func ReleaseCellsSigmaInto(dst *CellRelease, t *hierarchy.Tree, level int, sigma float64, advertised dp.Params, src *rng.Source) error {
	return ReleaseCellsSigmaWorkersInto(dst, t, level, sigma, advertised, src, 1)
}

// ReleaseCellsSigmaWorkersInto is ReleaseCellsSigmaInto with the noise
// pass sharded across workers goroutines; like ReleaseCellsWorkersInto,
// the release is bit-identical for every workers value.
func ReleaseCellsSigmaWorkersInto(dst *CellRelease, t *hierarchy.Tree, level int, sigma float64, advertised dp.Params, src *rng.Source, workers int) error {
	if t == nil {
		return ErrNilTree
	}
	if src == nil {
		return dp.ErrNilSource
	}
	if !(sigma >= 0) || math.IsInf(sigma, 0) {
		return fmt.Errorf("core: invalid sigma %v", sigma)
	}
	sens, err := Sensitivity(t, level, ModelCells)
	if err != nil {
		return err
	}
	return releaseCellsResolved(dst, t, level, sens, sigma, 0, "rdp", advertised, src, workers)
}
