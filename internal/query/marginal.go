package query

import (
	"fmt"
	"sort"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/metrics"
)

// MarginalCounts returns the per-side-group association counts implied by
// a noisy cell release: row sums for the left side, column sums for the
// right side. Because a level's cells partition the records by (left
// group, right group), the exact row sum equals the left group's incident
// edge count, so the released marginal is an εg-group-DP estimate of
// "how many associations does this author group account for?" — the
// paper's motivating sensitive aggregate.
func MarginalCounts(c core.CellRelease, side bipartite.Side) ([]float64, error) {
	if !side.Valid() {
		return nil, fmt.Errorf("query: invalid side %v", side)
	}
	k := c.SideGroups
	if k <= 0 || len(c.Counts) != k*k {
		return nil, fmt.Errorf("query: malformed cell release (%d counts for k=%d)", len(c.Counts), k)
	}
	out := make([]float64, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			switch side {
			case bipartite.Left:
				out[i] += c.Counts[i*k+j]
			case bipartite.Right:
				out[i] += c.Counts[j*k+i]
			}
		}
	}
	return out, nil
}

// MarginalError compares released marginals against the exact incident
// edge counts from the hierarchy and summarizes the absolute error.
func MarginalError(t *hierarchy.Tree, c core.CellRelease, side bipartite.Side) (metrics.Summary, error) {
	if t == nil {
		return metrics.Summary{}, ErrNilTree
	}
	released, err := MarginalCounts(c, side)
	if err != nil {
		return metrics.Summary{}, err
	}
	exact, err := t.SideGroupIncidentEdges(c.Level, side)
	if err != nil {
		return metrics.Summary{}, err
	}
	if len(exact) != len(released) {
		return metrics.Summary{}, fmt.Errorf("query: release has %d groups, tree has %d", len(released), len(exact))
	}
	errs := make([]float64, len(exact))
	for i := range exact {
		errs[i] = metrics.AbsError(released[i], float64(exact[i]))
	}
	return metrics.Summarize(errs)
}

// TopKGroups returns the indices of the k largest released marginals on a
// side, descending — the noisy "heaviest author groups" list a data user
// would compute.
func TopKGroups(c core.CellRelease, side bipartite.Side, k int) ([]int, error) {
	marginals, err := MarginalCounts(c, side)
	if err != nil {
		return nil, err
	}
	if k <= 0 || k > len(marginals) {
		return nil, fmt.Errorf("query: k=%d outside [1,%d]", k, len(marginals))
	}
	idx := make([]int, len(marginals))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return marginals[idx[a]] > marginals[idx[b]] })
	return idx[:k], nil
}

// TopKPrecision measures how many of the released top-k groups are truly
// in the exact top-k (set precision in [0, 1]): the utility of heavy-
// hitter identification at a privilege tier.
func TopKPrecision(t *hierarchy.Tree, c core.CellRelease, side bipartite.Side, k int) (float64, error) {
	if t == nil {
		return 0, ErrNilTree
	}
	released, err := TopKGroups(c, side, k)
	if err != nil {
		return 0, err
	}
	exact, err := t.SideGroupIncidentEdges(c.Level, side)
	if err != nil {
		return 0, err
	}
	idx := make([]int, len(exact))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return exact[idx[a]] > exact[idx[b]] })
	truth := make(map[int]bool, k)
	for _, i := range idx[:k] {
		truth[i] = true
	}
	hits := 0
	for _, i := range released {
		if truth[i] {
			hits++
		}
	}
	return float64(hits) / float64(k), nil
}
