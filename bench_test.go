// Benchmarks regenerating every figure and ablation in DESIGN.md §5.
//
// Each benchmark runs the corresponding experiment end to end (Phase 1
// specialization + Phase 2 noise injection + metric assembly) on the
// quick dataset so `go test -bench=.` finishes on a laptop; pass
// -benchtime and the gdpbench CLI's -preset dblp-scaled / dblp-full for
// larger runs. Custom metrics report reproduction quality alongside
// wall-time: rer_I7 is the measured relative error rate of the coarsest
// released level at εg≈1 (the paper's headline 0.35 on full DBLP).
package repro_test

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dp"
	"repro/internal/experiments"
	"repro/internal/hierarchy"
	"repro/internal/partition"
	"repro/internal/rng"
)

func benchOpts() experiments.Options {
	return experiments.Options{Quick: true, Seed: 1}
}

// BenchmarkFigure1 regenerates Figure 1 (RER vs εg for every information
// level).
func BenchmarkFigure1(b *testing.B) {
	cfg, err := experiments.DefaultFigure1Config(benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	cfg.Trials = 2
	var lastTop float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		top := res.Series[len(res.Series)-1]
		lastTop = top.Y[len(top.Y)-1]
	}
	b.ReportMetric(lastTop, "rer_I7")
}

// BenchmarkAblationBudgetSplit regenerates ablation A1.
func BenchmarkAblationBudgetSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunBudgetSplit(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCalibration regenerates ablation A2.
func BenchmarkAblationCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunCalibration(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPartitioner regenerates ablation A3.
func BenchmarkAblationPartitioner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunPartitioner(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAdjacency regenerates ablation A4.
func BenchmarkAblationAdjacency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAdjacency(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDelta regenerates ablation A5.
func BenchmarkAblationDelta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunDeltaSweep(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMechanism regenerates ablation A7.
func BenchmarkAblationMechanism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunMechanism(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationConsistency regenerates experiment A9 (constrained
// inference).
func BenchmarkAblationConsistency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunConsistency(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTopK regenerates experiment A8 (heavy-hitter utility).
func BenchmarkAblationTopK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTopK(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineScale regenerates ablation A6 (scalability).
func BenchmarkPipelineScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunScale(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhase1Specialization isolates the hierarchy build (the
// pipeline's dominant cost) on the tiny DBLP preset.
func BenchmarkPhase1Specialization(b *testing.B) {
	g, err := datagen.Generate(datagen.DBLPTiny(1))
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(2)
	bis, err := partition.NewExpMechBisector(0.1, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hierarchy.Build(g, hierarchy.Options{Rounds: 6, Bisector: bis}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(g.NumEdges()) * 8)
}

// BenchmarkPhase1SpecializationParallel is the same build with the worker
// pool engaged; the produced tree is bit-identical to the serial one.
func BenchmarkPhase1SpecializationParallel(b *testing.B) {
	g, err := datagen.Generate(datagen.DBLPTiny(1))
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(2)
	bis, err := partition.NewExpMechBisector(0.1, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hierarchy.Build(g, hierarchy.Options{Rounds: 6, Bisector: bis, Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(g.NumEdges()) * 8)
}

// BenchmarkPhase2Release isolates the per-level noisy count release.
func BenchmarkPhase2Release(b *testing.B) {
	g, err := datagen.Generate(datagen.DBLPTiny(1))
	if err != nil {
		b.Fatal(err)
	}
	tree, err := hierarchy.Build(g, hierarchy.Options{Rounds: 6, Bisector: partition.BalancedBisector{}})
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(3)
	p := dp.Params{Epsilon: 0.5, Delta: 1e-5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ReleaseCount(tree, 4, p, core.ModelCells, core.CalibrationClassical, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndPipeline measures the full public-API path.
func BenchmarkEndToEndPipeline(b *testing.B) {
	g, err := repro.GenerateDataset(repro.PresetDBLPTiny, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe, err := repro.NewPipeline(repro.Params{Epsilon: 0.9, Delta: 1e-5},
			repro.WithRounds(6), repro.WithSeed(uint64(i)+1), repro.WithPhase1Epsilon(0.1))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pipe.Run(g); err != nil {
			b.Fatal(err)
		}
	}
}

// releaseCellsTree builds the nine-round tree the Phase-2 benchmarks
// release from (4^9 = 262144 cells at the deepest level).
func releaseCellsTree(b *testing.B) *hierarchy.Tree {
	b.Helper()
	g, err := datagen.Generate(datagen.DBLPTiny(1))
	if err != nil {
		b.Fatal(err)
	}
	tree, err := hierarchy.Build(g, hierarchy.Options{Rounds: 9, Bisector: partition.BalancedBisector{}})
	if err != nil {
		b.Fatal(err)
	}
	return tree
}

// BenchmarkReleaseCells isolates the Phase-2 noisy histogram release at
// the deepest level through the engine hot path: chunked blocked-ziggurat
// fills fused with the counts add into a reused buffer
// (core.ReleaseCellsInto). The pre-refactor per-cell polar loop measured
// 5,734,665 ns/op and 2 allocs/op on this setup; the scalar-ziggurat
// engine path of PR 2 measured ~1.7 ms, and the blocked 512-layer fill
// holds it near ~1.1 ms — the engine path must stay ≥4× faster than the
// polar loop and allocation-free (CI diffs the BENCH_phase2.json record
// against bench/baseline via cmd/benchdiff).
func BenchmarkReleaseCells(b *testing.B) {
	tree := releaseCellsTree(b)
	src := rng.New(5)
	p := dp.Params{Epsilon: 0.5, Delta: 1e-5}
	cells, err := tree.NumCells(0)
	if err != nil {
		b.Fatal(err)
	}
	var rel core.CellRelease
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.ReleaseCellsInto(&rel, tree, 0, p, core.CalibrationClassical, src); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(cells) * 8)
}

// BenchmarkReleaseCellsWorkers shards the same release's noise pass
// across goroutines at noiseChunk granularity (per-chunk forked
// streams, so the output is bit-identical to workers=1). Speedup needs
// cores: on a 1-CPU runner the sub-benchmarks are flat and only the
// goroutine overhead shows.
func BenchmarkReleaseCellsWorkers(b *testing.B) {
	tree := releaseCellsTree(b)
	p := dp.Params{Epsilon: 0.5, Delta: 1e-5}
	cells, err := tree.NumCells(0)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4, 7} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			src := rng.New(5)
			var rel core.CellRelease
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := core.ReleaseCellsWorkersInto(&rel, tree, 0, p, core.CalibrationClassical, src, workers); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(cells) * 8)
		})
	}
}

// BenchmarkReleaseCellsAlloc is the same release through the allocating
// public wrapper (a fresh Counts slice per call), the path publishers
// retaining every histogram pay.
func BenchmarkReleaseCellsAlloc(b *testing.B) {
	tree := releaseCellsTree(b)
	src := rng.New(5)
	p := dp.Params{Epsilon: 0.5, Delta: 1e-5}
	cells, err := tree.NumCells(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ReleaseCells(tree, 0, p, core.CalibrationClassical, src); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(cells) * 8)
}

// BenchmarkParallelTrials runs the Figure 1 trial loop serially and over
// a four-lane fan-out on a pre-generated graph (RunFigure1On, so dataset
// synthesis does not mask the loop); the produced figures are
// bit-identical, only the wall time differs.
func BenchmarkParallelTrials(b *testing.B) {
	g, err := datagen.Generate(datagen.DBLPTiny(1))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg, err := experiments.DefaultFigure1Config(experiments.Options{Quick: true, Seed: 1, Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			cfg.Trials = 16
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunFigure1On(g, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
