// Package dp implements the differential-privacy mechanism suite the
// disclosure pipeline is built on: the Laplace, Gaussian (classical and
// analytic calibration), exponential and geometric mechanisms, together
// with parameter validation shared by all of them.
//
// All randomness flows through internal/rng so experiments are exactly
// reproducible under a fixed seed. Mechanisms are constructed once with
// validated parameters and then used for any number of perturbations; each
// Perturb call corresponds to one query answer, and budget accounting is
// the caller's responsibility (see internal/accountant).
package dp

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by parameter validation across the package.
var (
	ErrEpsilon     = errors.New("dp: epsilon must be > 0 and finite")
	ErrDelta       = errors.New("dp: delta must be in [0, 1)")
	ErrDeltaZero   = errors.New("dp: this mechanism requires delta > 0")
	ErrSensitivity = errors.New("dp: sensitivity must be > 0 and finite")
	ErrNilSource   = errors.New("dp: a non-nil rng source is required")
	ErrEmptyDomain = errors.New("dp: candidate domain must be non-empty")
)

// Params carries an (ε, δ) differential-privacy budget. δ = 0 denotes pure
// ε-DP.
type Params struct {
	Epsilon float64
	Delta   float64
}

// Validate checks that the parameters describe a meaningful guarantee.
func (p Params) Validate() error {
	if !(p.Epsilon > 0) || math.IsInf(p.Epsilon, 0) || math.IsNaN(p.Epsilon) {
		return fmt.Errorf("%w (got %v)", ErrEpsilon, p.Epsilon)
	}
	if p.Delta < 0 || p.Delta >= 1 || math.IsNaN(p.Delta) {
		return fmt.Errorf("%w (got %v)", ErrDelta, p.Delta)
	}
	return nil
}

// Pure reports whether the budget is pure ε-DP (δ = 0).
func (p Params) Pure() bool { return p.Delta == 0 }

// String renders the budget as "(ε=…, δ=…)".
func (p Params) String() string {
	if p.Pure() {
		return fmt.Sprintf("(ε=%g)", p.Epsilon)
	}
	return fmt.Sprintf("(ε=%g, δ=%g)", p.Epsilon, p.Delta)
}

// validateSensitivity rejects non-positive or non-finite sensitivities.
func validateSensitivity(s float64) error {
	if !(s > 0) || math.IsInf(s, 0) || math.IsNaN(s) {
		return fmt.Errorf("%w (got %v)", ErrSensitivity, s)
	}
	return nil
}

// Additive is the interface shared by the noise-adding mechanisms.
type Additive interface {
	// Perturb returns the private answer for the exact query value.
	Perturb(value float64) float64
	// Scale returns the mechanism's noise scale parameter (b for
	// Laplace, σ for Gaussian).
	Scale() float64
	// ExpectedAbsError returns E|noise|, the expected absolute error a
	// single perturbation adds.
	ExpectedAbsError() float64
}

// phi is the standard normal CDF.
func phi(t float64) float64 {
	return 0.5 * math.Erfc(-t/math.Sqrt2)
}
