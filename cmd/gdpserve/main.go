// Command gdpserve is the multi-tenant disclosure server: a long-lived
// process that ingests association-graph datasets through the streamed
// two-pass hierarchy build (edges are never resident — peak ingest
// memory is O(chunk + sides + 4^rounds) per dataset) and answers
// εg-group-DP level, marginal and top-k queries over HTTP, debiting a
// per-dataset privacy ledger before any noise is drawn.
//
// Usage:
//
//	gdpserve -addr 127.0.0.1:8080 -eps 2 -delta 1e-5
//	gdpserve -dataset dblp=/data/dblp.tsv -dataset rx=/data/pharmacy.bpg
//	gdpserve -seed 0                # OS-entropy seed (production: non-replayable)
//	gdpserve -strategy quadtree-laplace  # pure-ε releases (δ=0 budgets admitted)
//	gdpserve -ledger-addr 127.0.0.1:8850 # N replicas spend ONE budget via gdpledgerd
//
// Endpoints (see internal/serve):
//
//	POST   /v1/datasets/{name}           ingest (TSV/binary body, or JSON {"path": ...})
//	GET    /v1/datasets                  list
//	GET    /v1/datasets/{name}/budget    ledger state + audit report
//	POST   /v1/datasets/{name}/sessions  open a session ({"stream": n} pins the RNG stream)
//	POST   /v1/sessions/{id}/level       level view (noisy count + histogram)
//	POST   /v1/sessions/{id}/marginal    per-group marginals
//	POST   /v1/sessions/{id}/topk        heaviest groups
//
// With a pinned -seed, a pinned session stream replays byte-identical
// responses for the same query sequence; budget is debited either way.
// Budget exhaustion returns HTTP 429 and is permanent for the dataset.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "gdpserve:", err)
		os.Exit(1)
	}
}

// preload is one -dataset name=path flag.
type preload struct{ name, path string }

// parseArgs resolves flags into a serving config, the listen address,
// the datasets to preload, and the optional pprof side address.
func parseArgs(args []string) (cfg repro.ServeConfig, hopts repro.ServeHandlerOptions, addr string, loads []preload, pprof string, err error) {
	fs := flag.NewFlagSet("gdpserve", flag.ContinueOnError)
	var (
		addrFlag   = fs.String("addr", "127.0.0.1:8080", "listen address")
		eps        = fs.Float64("eps", 2.0, "per-dataset total privacy budget ε")
		delta      = fs.Float64("delta", 1e-5, "per-dataset total privacy budget δ")
		queryEps   = fs.Float64("query-eps", 0, "per-query ε (0 = ε/64)")
		queryDelta = fs.Float64("query-delta", 0, "per-query δ (0 = δ/64)")
		rounds     = fs.Int("rounds", 9, "specialization rounds per ingested hierarchy")
		phase1     = fs.Float64("phase1-eps", 0, "per-cut exponential-mechanism ε for private ingest (0 = public balanced grouping)")
		seed       = fs.Uint64("seed", 1, "RNG seed; 0 draws one from OS entropy (non-replayable)")
		strategy   = fs.String("strategy", "", "release strategy for ingested datasets (empty = "+repro.DefaultReleaseStrategy+"; per-dataset override via ingest ?strategy=); one of: "+strings.Join(repro.ReleaseStrategyNames(), ", "))
		workers    = fs.Int("workers", runtime.GOMAXPROCS(0), "ingest build parallelism")
		relWorkers = fs.Int("release-workers", 1, "per-query noise-pass parallelism (responses are bit-identical for any value; >1 trades cores per query for single-query latency on large levels)")
		lanes      = fs.Int("lanes", 2, "concurrent ingest lanes (each retains a hierarchy builder)")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof on this side address (e.g. 127.0.0.1:6060; empty = disabled)")
		pathIngest = fs.Bool("allow-path-ingest", false, "allow HTTP clients to ingest server-side files via JSON {\"path\": ...} (file-read oracle on open listeners; uploads are always allowed)")
		maxUpload  = fs.Int64("max-upload-bytes", 0, "cap on one ingest upload body spooled to temp disk (0 = 1 GiB default, negative = unlimited)")
		maxSess    = fs.Int("max-sessions", 0, "cap on concurrently open session handles (0 = 1024 default, negative = unlimited)")
		maxCache   = fs.Int("max-cache-entries", 0, "per-dataset response-cache capacity; replayed (stream, seq, query) keys serve their prior answer without re-debiting the ledger (0 = 1024 default, negative = disable caching)")
		ledgerDir  = fs.String("ledger-dir", "", "directory for durable per-dataset privacy ledgers (WAL + snapshot); restarts replay spent budget so exhausted datasets stay exhausted (empty = in-memory ledgers, forgotten on exit)")
		ledgerAddr = fs.String("ledger-addr", "", "address of a shared gdpledgerd privacy-ledger sequencer (host:port, or a comma-separated replicated-group member list a:8850,b:8850,c:8850); all replicas pointed at it spend ONE budget per dataset; mutually exclusive with -ledger-dir and the -fsync*/-snapshot-every knobs")
		fsync      = fs.String("fsync", "", "durable-ledger fsync policy: always (the default; sync before every admitted spend), interval, or off")
		fsyncEvery = fs.Duration("fsync-interval", 0, "max unsynced window under -fsync interval (0 = 100ms default)")
		snapEvery  = fs.Int("snapshot-every", 0, "compact each ledger WAL into a snapshot after this many records (0 = 1024 default, negative = never compact)")
	)
	fs.Var(preloadFlag{&loads}, "dataset", "preload a dataset as name=path (repeatable; TSV or binary, sniffed)")
	if err := fs.Parse(args); err != nil {
		return repro.ServeConfig{}, repro.ServeHandlerOptions{}, "", nil, "", err
	}
	resolvedSeed := *seed
	if resolvedSeed == 0 {
		s, err := repro.NewRandomSeed()
		if err != nil {
			return repro.ServeConfig{}, repro.ServeHandlerOptions{}, "", nil, "", err
		}
		resolvedSeed = s
	}
	cfg = repro.ServeConfig{
		Budget: repro.Params{Epsilon: *eps, Delta: *delta},
		// A zero PerQuery (neither flag set) selects the Budget/64
		// serving default in OpenRegistry.
		PerQuery:            repro.Params{Epsilon: *queryEps, Delta: *queryDelta},
		Rounds:              *rounds,
		Phase1Epsilon:       *phase1,
		Strategy:            *strategy,
		Seed:                resolvedSeed,
		Workers:             *workers,
		ReleaseWorkers:      *relWorkers,
		IngestLanes:         *lanes,
		MaxCacheEntries:     *maxCache,
		LedgerDir:           *ledgerDir,
		LedgerAddr:          *ledgerAddr,
		LedgerFsync:         repro.LedgerFsyncPolicy(*fsync),
		LedgerFsyncInterval: *fsyncEvery,
		LedgerSnapshotEvery: *snapEvery,
	}
	hopts = repro.ServeHandlerOptions{
		AllowPathIngest: *pathIngest,
		MaxUploadBytes:  *maxUpload,
		MaxSessions:     *maxSess,
	}
	return cfg, hopts, *addrFlag, loads, *pprofAddr, nil
}

// preloadFlag accumulates repeated -dataset name=path values.
type preloadFlag struct{ loads *[]preload }

func (p preloadFlag) String() string { return "" }

func (p preloadFlag) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*p.loads = append(*p.loads, preload{name: name, path: path})
	return nil
}

// run opens the registry, preloads datasets, and serves until ctx is
// canceled. started (if non-nil) receives the bound address once the
// listener is up — the test hook.
func run(ctx context.Context, args []string, started func(addr string)) error {
	cfg, hopts, addr, loads, pprofAddr, err := parseArgs(args)
	if err != nil {
		return err
	}
	if pprofAddr != "" {
		stopProf, err := startPprof(pprofAddr)
		if err != nil {
			return err
		}
		defer stopProf()
	}
	reg, err := repro.OpenRegistry(cfg)
	if err != nil {
		return err
	}
	// Close flushes and syncs every durable ledger WAL — the graceful
	// path that makes interval/off fsync policies safe across clean
	// shutdowns. Its error must reach the operator: a spend the WAL
	// could not persist is a budget that will under-report on restart.
	closeReg := func() error { return reg.Close() }
	defer func() { _ = closeReg() }()

	for _, l := range loads {
		if err := ingestFile(reg, l.name, l.path); err != nil {
			return err
		}
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("gdpserve: listening on %s (budget %s per dataset, seed %d)\n",
		ln.Addr(), cfg.Budget, cfg.Seed)
	if started != nil {
		started(ln.Addr().String())
	}

	srv := httpServer(repro.NewServeHandlerWith(reg, hopts))
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return closeReg()
	}
}

// httpServer wraps a handler with the slow-client timeouts every server
// we expose must carry: a stalled peer may not hold a connection (and
// its goroutine) forever. ReadTimeout is generous because ingest bodies
// stream for a while on big datasets; idle keep-alives still expire.
func httpServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       10 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// startPprof serves net/http/pprof on its own listener and mux — the
// profiling surface never shares a port (or the default mux) with the
// query API, so exposing it stays an explicit operator decision. The
// returned func closes the listener.
func startPprof(addr string) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := httpServer(mux)
	go func() { _ = srv.Serve(ln) }()
	fmt.Printf("gdpserve: pprof on http://%s/debug/pprof/\n", ln.Addr())
	return func() { _ = srv.Close() }, nil
}

// ingestFile streams one -dataset file into the registry.
func ingestFile(reg *repro.Registry, name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("preloading %q: %w", name, err)
	}
	defer f.Close()
	src, err := repro.OpenEdgeSourceFile(f)
	if err != nil {
		return fmt.Errorf("preloading %q: %w", name, err)
	}
	ds, err := reg.AddDataset(name, src)
	if err != nil {
		return fmt.Errorf("preloading %q: %w", name, err)
	}
	fmt.Printf("gdpserve: preloaded %q: %s\n", name, ds.Stats())
	return nil
}
