// Package bipartite implements the association-graph substrate the paper's
// disclosure pipeline runs on: an immutable bipartite graph in compressed
// sparse row (CSR) form, a deduplicating builder, summary statistics, and
// codecs for TSV, JSON-lines and a compact binary format, plus a loader for
// DBLP-style XML.
//
// Nodes on the two sides are identified by dense int32 indices. In the
// paper's running example the left side holds entities such as authors,
// patients or viewers, and the right side holds papers, drugs or movies; an
// edge is one association record ("author a wrote paper p").
package bipartite

import (
	"errors"
	"fmt"
)

// Side selects one of the two node sides of a bipartite graph.
type Side int

// Sides of the bipartite graph. The enum starts at 1 so that the zero
// value is invalid and cannot be mistaken for a deliberate choice.
const (
	Left Side = iota + 1
	Right
)

// String implements fmt.Stringer.
func (s Side) String() string {
	switch s {
	case Left:
		return "left"
	case Right:
		return "right"
	default:
		return fmt.Sprintf("Side(%d)", int(s))
	}
}

// Other returns the opposite side.
func (s Side) Other() Side {
	switch s {
	case Left:
		return Right
	case Right:
		return Left
	default:
		return s
	}
}

// Valid reports whether s is Left or Right.
func (s Side) Valid() bool { return s == Left || s == Right }

// Edge is one association record between a left node and a right node.
type Edge struct {
	Left  int32
	Right int32
}

// Graph is an immutable bipartite association graph stored in CSR form
// from both sides. Construct one with a Builder or a codec; the zero value
// is an empty graph.
type Graph struct {
	numLeft  int32
	numRight int32

	// CSR from the left side: neighbors of left node i are
	// leftAdj[leftOff[i]:leftOff[i+1]], sorted ascending.
	leftOff []int64
	leftAdj []int32

	// CSR from the right side, symmetric to the above.
	rightOff []int64
	rightAdj []int32

	// Optional human-readable labels; nil when the graph is anonymous.
	leftNames  []string
	rightNames []string
}

// NumLeft returns the number of left-side nodes.
func (g *Graph) NumLeft() int { return int(g.numLeft) }

// NumRight returns the number of right-side nodes.
func (g *Graph) NumRight() int { return int(g.numRight) }

// NumNodes returns the total node count across both sides.
func (g *Graph) NumNodes() int { return int(g.numLeft) + int(g.numRight) }

// NumEdges returns the number of association records.
func (g *Graph) NumEdges() int64 { return int64(len(g.leftAdj)) }

// NumSide returns the node count of the given side. It returns 0 for an
// invalid side.
func (g *Graph) NumSide(s Side) int {
	switch s {
	case Left:
		return g.NumLeft()
	case Right:
		return g.NumRight()
	default:
		return 0
	}
}

// Degree returns the degree of node id on the given side. It panics if the
// id is out of range, mirroring slice indexing semantics.
func (g *Graph) Degree(s Side, id int32) int64 {
	switch s {
	case Left:
		return g.leftOff[id+1] - g.leftOff[id]
	case Right:
		return g.rightOff[id+1] - g.rightOff[id]
	default:
		panic("bipartite: Degree called with invalid side")
	}
}

// Neighbors returns the sorted adjacency list of node id on side s. The
// returned slice aliases the graph's internal storage and must not be
// modified.
func (g *Graph) Neighbors(s Side, id int32) []int32 {
	switch s {
	case Left:
		return g.leftAdj[g.leftOff[id]:g.leftOff[id+1]]
	case Right:
		return g.rightAdj[g.rightOff[id]:g.rightOff[id+1]]
	default:
		panic("bipartite: Neighbors called with invalid side")
	}
}

// HasEdge reports whether the association (l, r) is present, via binary
// search on the smaller adjacency list.
func (g *Graph) HasEdge(l, r int32) bool {
	if l < 0 || l >= g.numLeft || r < 0 || r >= g.numRight {
		return false
	}
	var adj []int32
	var want int32
	if g.Degree(Left, l) <= g.Degree(Right, r) {
		adj, want = g.Neighbors(Left, l), r
	} else {
		adj, want = g.Neighbors(Right, r), l
	}
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < want {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(adj) && adj[lo] == want
}

// ForEachEdge calls fn once per association in left-major order. It stops
// early if fn returns false.
func (g *Graph) ForEachEdge(fn func(l, r int32) bool) {
	for l := int32(0); l < g.numLeft; l++ {
		for _, r := range g.leftAdj[g.leftOff[l]:g.leftOff[l+1]] {
			if !fn(l, r) {
				return
			}
		}
	}
}

// AdjacencyView exposes the CSR arrays of side s without a per-edge
// callback: off has NumSide(s)+1 entries and adj holds the concatenated,
// sorted neighbor lists, so the neighbors of node i on side s are
// adj[off[i]:off[i+1]]. Iterating adj in order visits every association
// exactly once (left-major for s == Left). Both slices alias the graph's
// internal storage and must not be modified; hot paths such as the
// hierarchy's single-scan cell aggregation use this view to stream edges
// at memory bandwidth instead of paying a function call per edge.
func (g *Graph) AdjacencyView(s Side) (off []int64, adj []int32) {
	switch s {
	case Left:
		return g.leftOff, g.leftAdj
	case Right:
		return g.rightOff, g.rightAdj
	default:
		panic("bipartite: AdjacencyView called with invalid side")
	}
}

// Edges materializes all associations in left-major order. Prefer
// ForEachEdge for large graphs.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	g.ForEachEdge(func(l, r int32) bool {
		out = append(out, Edge{Left: l, Right: r})
		return true
	})
	return out
}

// LeftName returns the label of left node id, or an empty string when the
// graph carries no labels.
func (g *Graph) LeftName(id int32) string {
	if g.leftNames == nil {
		return ""
	}
	return g.leftNames[id]
}

// RightName returns the label of right node id, or an empty string when
// the graph carries no labels.
func (g *Graph) RightName(id int32) string {
	if g.rightNames == nil {
		return ""
	}
	return g.rightNames[id]
}

// HasNames reports whether the graph carries node labels.
func (g *Graph) HasNames() bool { return g.leftNames != nil || g.rightNames != nil }

// MaxDegree returns the maximum degree on side s, or 0 for an empty side.
func (g *Graph) MaxDegree(s Side) int64 {
	var max int64
	n := int32(g.NumSide(s))
	for id := int32(0); id < n; id++ {
		if d := g.Degree(s, id); d > max {
			max = d
		}
	}
	return max
}

// errValidate prefixes validation failures.
var errValidate = errors.New("bipartite: invalid graph")

// Validate checks internal consistency of the CSR structures. Decoded
// graphs are validated automatically; Validate is exposed for tests and
// for callers that construct graphs through unsafe paths.
func (g *Graph) Validate() error {
	if int64(len(g.leftAdj)) != int64(len(g.rightAdj)) {
		return fmt.Errorf("%w: left and right CSR disagree on edge count (%d vs %d)",
			errValidate, len(g.leftAdj), len(g.rightAdj))
	}
	if len(g.leftOff) != int(g.numLeft)+1 || len(g.rightOff) != int(g.numRight)+1 {
		return fmt.Errorf("%w: offset array lengths do not match node counts", errValidate)
	}
	if err := validateCSR(g.leftOff, g.leftAdj, g.numRight); err != nil {
		return fmt.Errorf("%w: left CSR: %v", errValidate, err)
	}
	if err := validateCSR(g.rightOff, g.rightAdj, g.numLeft); err != nil {
		return fmt.Errorf("%w: right CSR: %v", errValidate, err)
	}
	if g.leftNames != nil && len(g.leftNames) != int(g.numLeft) {
		return fmt.Errorf("%w: left name count %d != %d", errValidate, len(g.leftNames), g.numLeft)
	}
	if g.rightNames != nil && len(g.rightNames) != int(g.numRight) {
		return fmt.Errorf("%w: right name count %d != %d", errValidate, len(g.rightNames), g.numRight)
	}
	return nil
}

func validateCSR(off []int64, adj []int32, otherSide int32) error {
	if len(off) == 0 || off[0] != 0 {
		return errors.New("offsets must start at 0")
	}
	if off[len(off)-1] != int64(len(adj)) {
		return fmt.Errorf("final offset %d != adjacency length %d", off[len(off)-1], len(adj))
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("offsets decrease at %d", i)
		}
		row := adj[off[i-1]:off[i]]
		for j, v := range row {
			if v < 0 || v >= otherSide {
				return fmt.Errorf("neighbor %d out of range [0,%d)", v, otherSide)
			}
			if j > 0 && row[j-1] >= v {
				return fmt.Errorf("row %d not strictly increasing", i-1)
			}
		}
	}
	return nil
}
