package experiments

import (
	"fmt"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// RunConsistency is experiment A9 (extension): the utility gain from
// hierarchical constrained inference over the multi-level cell releases.
// Post-processing costs no privacy budget; the table reports per-level
// mean absolute cell error before and after enforcement, averaged over
// noise trials.
func RunConsistency(opts Options) (*Report, error) {
	tree, err := standardTree(opts)
	if err != nil {
		return nil, err
	}
	trials := opts.trials(15, 3)
	const eps = 0.5
	levels := levelsFor(tree.MaxLevel())

	exact := map[int][]float64{}
	for _, lvl := range levels {
		counts, err := tree.LevelCellCounts(lvl)
		if err != nil {
			return nil, err
		}
		e := make([]float64, len(counts))
		for i, c := range counts {
			e[i] = float64(c)
		}
		exact[lvl] = e
	}
	meanAbs := func(r core.CellRelease) float64 {
		var sum float64
		for i, v := range r.Counts {
			sum += metrics.AbsError(v, exact[r.Level][i])
		}
		return sum / float64(len(r.Counts))
	}

	// Pre-split every (trial, level) noise stream in the serial loop's
	// order, then fan trials across Options.Workers lanes; the per-level
	// error means reduce in trial order, so the report is bit-identical
	// for any worker count.
	src := rng.New(opts.Seed + 7)
	srcs := make([][]*rng.Source, trials)
	for trial := range srcs {
		srcs[trial] = make([]*rng.Source, len(levels))
		for i := len(levels) - 1; i >= 0; i-- { // coarse first
			srcs[trial][i] = src.Split(uint64(trial)<<8 | uint64(levels[i]))
		}
	}
	type trialErrs struct {
		raw, fixed map[int]float64
	}
	results := make([]trialErrs, trials)
	err = runTrials(opts.Workers, trials, func(worker, trial int) error {
		var raw []core.CellRelease
		for i := len(levels) - 1; i >= 0; i-- { // coarse first
			rel, err := core.ReleaseCells(tree, levels[i], dp.Params{Epsilon: eps, Delta: 1e-5},
				core.CalibrationClassical, srcs[trial][i])
			if err != nil {
				return err
			}
			raw = append(raw, rel)
		}
		fixed, err := consistency.Enforce(raw)
		if err != nil {
			return fmt.Errorf("experiments: consistency trial %d: %w", trial, err)
		}
		res := trialErrs{raw: make(map[int]float64, len(raw)), fixed: make(map[int]float64, len(raw))}
		for i := range raw {
			res.raw[raw[i].Level] = meanAbs(raw[i])
			res.fixed[fixed[i].Level] = meanAbs(fixed[i])
		}
		results[trial] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	rawErr := make(map[int]float64, len(levels))
	fixedErr := make(map[int]float64, len(levels))
	for trial := range results {
		for _, lvl := range levels {
			rawErr[lvl] += results[trial].raw[lvl] / float64(trials)
			fixedErr[lvl] += results[trial].fixed[lvl] / float64(trials)
		}
	}

	table := metrics.Table{
		Title:   fmt.Sprintf("A9 — hierarchical consistency at εg=%.1f (mean |cell error|, %d trials)", eps, trials),
		Headers: []string{"level", "raw", "consistent", "improvement"},
	}
	rawSeries := metrics.Series{Name: "raw"}
	fixedSeries := metrics.Series{Name: "consistent"}
	for i := len(levels) - 1; i >= 0; i-- {
		lvl := levels[i]
		improvement := 0.0
		if rawErr[lvl] > 0 {
			improvement = 1 - fixedErr[lvl]/rawErr[lvl]
		}
		table.AddRow(lvl, rawErr[lvl], fixedErr[lvl], fmt.Sprintf("%.1f%%", improvement*100))
		rawSeries.X = append(rawSeries.X, float64(lvl))
		rawSeries.Y = append(rawSeries.Y, rawErr[lvl])
		fixedSeries.X = append(fixedSeries.X, float64(lvl))
		fixedSeries.Y = append(fixedSeries.Y, fixedErr[lvl])
	}
	fig, err := metrics.RenderASCII([]metrics.Series{rawSeries, fixedSeries}, metrics.PlotOptions{
		Title: "A9: mean cell error, raw vs consistent (log y)", LogY: true,
		XLabel: "level", YLabel: "mean |error|",
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Name: "consistency", Title: "A9 — hierarchical constrained inference",
		Tables:  []metrics.Table{table},
		Series:  []metrics.Series{rawSeries, fixedSeries},
		Figures: []string{fig},
		Notes: []string{
			"post-processing is free under DP: the consistent release dominates the raw one at every level, with the largest gains where own-level noise is worst",
		},
	}, nil
}
