package release

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bipartite"
	"repro/internal/dp"
	"repro/internal/hierarchy"
	"repro/internal/partition"
	"repro/internal/rng"
)

// CommunityPartitioner is a Phase-1 stage in the PrivGraph shape:
// instead of ordering each side by raw degree, it discovers communities
// by synchronous label propagation over the bipartite edges (a
// modularity-style grouping — each node adopts the strongest label among
// its neighbours), perturbs the per-node assignments with k-ary
// randomized response when a Phase-1 budget is configured, and hands the
// hierarchy an explicit ordering that lays each community out
// contiguously (degree-descending inside it). The quadtree's contiguous
// range cuts then approximate community boundaries, concentrating
// within-community mass into few cells.
//
// The propagation itself reads only the edge multiset, so the privacy
// cost is exactly the randomized response over assignments: one k-RR per
// node at cfg.Epsilon, parallel across the disjoint nodes of a side,
// charged as one ledger op per side. Unlike the quadtree's
// exponential-mechanism cuts the spend happens before any tree exists,
// so ChargeAlways reports true and the pipeline charges whenever the
// budget is set, private cuts or not.
type CommunityPartitioner struct {
	// Passes is the number of synchronous label-propagation sweeps;
	// 0 selects the default (4). Propagation is Jacobi-style — every
	// pass reads the previous pass's labels only — so the result is
	// independent of edge order and worker count.
	Passes int
}

// communityDefaultPasses is the label-propagation sweep count when
// CommunityPartitioner.Passes is zero. Four sweeps reach label
// agreement on the small-diameter association graphs the pipeline
// targets; more sweeps only churn ties.
const communityDefaultPasses = 4

// Name implements Partitioner.
func (CommunityPartitioner) Name() string { return "community" }

// Ops implements Partitioner: one randomized-response charge per side.
func (CommunityPartitioner) Ops(cfg PartitionConfig) []PhaseOp {
	if cfg.Epsilon <= 0 {
		return nil
	}
	return []PhaseOp{
		{Label: "phase1/community/left", Cost: dp.Params{Epsilon: cfg.Epsilon}},
		{Label: "phase1/community/right", Cost: dp.Params{Epsilon: cfg.Epsilon}},
	}
}

// ChargeAlways implements Partitioner: the randomized response spends
// before the tree exists, independent of whether any cut is private.
func (CommunityPartitioner) ChargeAlways() bool { return true }

// PlanGraph implements Partitioner by streaming the graph's edges, so
// the in-memory and streamed build paths share one code path and are
// identical by construction.
func (c CommunityPartitioner) PlanGraph(g *bipartite.Graph, cfg PartitionConfig, src *rng.Source) (PartitionPlan, error) {
	if g == nil {
		return PartitionPlan{}, ErrNilGraph
	}
	return c.PlanSource(bipartite.NewGraphSource(g), cfg, src)
}

// PlanSource implements Partitioner.
func (c CommunityPartitioner) PlanSource(es bipartite.EdgeSource, cfg PartitionConfig, src *rng.Source) (PartitionPlan, error) {
	if es == nil {
		return PartitionPlan{}, ErrNilSource
	}
	passes := c.Passes
	if passes <= 0 {
		passes = communityDefaultPasses
	}

	leftDeg, rightDeg, err := communityDegrees(es)
	if err != nil {
		return PartitionPlan{}, err
	}

	leftLab, rightLab, err := propagateLabels(es, leftDeg, rightDeg, passes)
	if err != nil {
		return PartitionPlan{}, err
	}

	// Collapse raw labels to dense per-side community ranks, perturb
	// them, and derive the static ordering keys. The randomized response
	// consumes nodes in id order (left side first) from one serial
	// stream, so the draw sequence — and with it every downstream noise
	// stream — is fixed by (data, epsilon, seed) alone.
	leftRank := denseRanks(leftLab)
	rightRank := denseRanks(rightLab)
	if cfg.Epsilon > 0 {
		randomizeRanks(leftRank, cfg.Epsilon, src)
		randomizeRanks(rightRank, cfg.Epsilon, src)
	}

	keys := &hierarchy.OrderKeys{
		Left:  communityKeys(leftRank, leftDeg),
		Right: communityKeys(rightRank, rightDeg),
	}

	bisector := cfg.Override
	if bisector == nil {
		// The ordering already encodes the (perturbed) grouping and the
		// budget is spent on it, so the cuts themselves stay public.
		bisector = partition.BalancedBisector{}
	}
	return PartitionPlan{Bisector: bisector, Keys: keys}, nil
}

// communityDegrees is the partitioner's degree pass, sized by the same
// rule as the hierarchy's streamed degree scan (declared sides when
// known, grown to cover every observed id) so the produced key slices
// always match the tree's side sizes.
func communityDegrees(es bipartite.EdgeSource) (leftDeg, rightDeg []int64, err error) {
	if err := es.Reset(); err != nil {
		return nil, nil, fmt.Errorf("release: community degree pass: %w", err)
	}
	if nl, nr, known := es.Sides(); known {
		leftDeg = make([]int64, nl)
		rightDeg = make([]int64, nr)
	}
	buf := make([]bipartite.Edge, bipartite.DefaultChunkEdges)
	err = bipartite.ForEachChunk(es, buf, func(chunk []bipartite.Edge) error {
		for _, e := range chunk {
			leftDeg = growTo(leftDeg, int(e.Left))
			rightDeg = growTo(rightDeg, int(e.Right))
			leftDeg[e.Left]++
			rightDeg[e.Right]++
		}
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("release: community degree pass: %w", err)
	}
	return leftDeg, rightDeg, nil
}

// growTo extends s to cover index i, doubling to amortize ascending-id
// sources.
func growTo(s []int64, i int) []int64 {
	if i < len(s) {
		return s
	}
	n := len(s)
	if n == 0 {
		n = 1
	}
	for n <= i {
		n *= 2
	}
	grown := make([]int64, i+1, n)
	copy(grown, s)
	return grown
}

// labelRecord is one node's state during propagation: its current
// community label and the strength backing it.
type labelRecord struct {
	label    uint64
	strength int64
}

// better reports whether candidate a beats b: higher strength wins,
// ties break toward the smaller label. Both orders are total and
// edge-order-independent, which is what keeps the synchronous sweep
// deterministic.
func better(a, b labelRecord) bool {
	if a.strength != b.strength {
		return a.strength > b.strength
	}
	return a.label < b.label
}

// propagateLabels runs synchronous label propagation over the stream:
// every node starts as its own community (left node i → label i, right
// node j → label numLeft+j) with strength equal to its degree; each pass
// every node adopts the strongest label among its previous-pass
// neighbours, capped at its own degree so hub labels do not steamroll
// the periphery. Each pass reads only the previous pass's records, so
// the fixed point depends on the edge multiset, never on edge order.
func propagateLabels(es bipartite.EdgeSource, leftDeg, rightDeg []int64, passes int) (leftLab, rightLab []uint64, err error) {
	nl := len(leftDeg)
	left := make([]labelRecord, nl)
	right := make([]labelRecord, len(rightDeg))
	for i := range left {
		left[i] = labelRecord{label: uint64(i), strength: leftDeg[i]}
	}
	for j := range right {
		right[j] = labelRecord{label: uint64(nl + j), strength: rightDeg[j]}
	}

	nextLeft := make([]labelRecord, len(left))
	nextRight := make([]labelRecord, len(right))
	buf := make([]bipartite.Edge, bipartite.DefaultChunkEdges)
	for p := 0; p < passes; p++ {
		copy(nextLeft, left)
		copy(nextRight, right)
		if err := es.Reset(); err != nil {
			return nil, nil, fmt.Errorf("release: community pass %d: %w", p, err)
		}
		err := bipartite.ForEachChunk(es, buf, func(chunk []bipartite.Edge) error {
			for _, e := range chunk {
				if cand := right[e.Right]; better(cand, nextLeft[e.Left]) {
					nextLeft[e.Left] = cand
				}
				if cand := left[e.Left]; better(cand, nextRight[e.Right]) {
					nextRight[e.Right] = cand
				}
			}
			return nil
		})
		if err != nil {
			return nil, nil, fmt.Errorf("release: community pass %d: %w", p, err)
		}
		for i := range nextLeft {
			if nextLeft[i].strength > leftDeg[i] {
				nextLeft[i].strength = leftDeg[i]
			}
		}
		for j := range nextRight {
			if nextRight[j].strength > rightDeg[j] {
				nextRight[j].strength = rightDeg[j]
			}
		}
		left, nextLeft = nextLeft, left
		right, nextRight = nextRight, right
	}

	leftLab = make([]uint64, len(left))
	for i, r := range left {
		leftLab[i] = r.label
	}
	rightLab = make([]uint64, len(right))
	for j, r := range right {
		rightLab[j] = r.label
	}
	return leftLab, rightLab, nil
}

// denseRanks collapses arbitrary labels to 0..K-1 ranks in ascending
// label order.
func denseRanks(labels []uint64) []uint32 {
	distinct := make([]uint64, 0, len(labels))
	seen := make(map[uint64]uint32, len(labels))
	for _, l := range labels {
		if _, ok := seen[l]; !ok {
			seen[l] = 0
			distinct = append(distinct, l)
		}
	}
	sort.Slice(distinct, func(a, b int) bool { return distinct[a] < distinct[b] })
	for rank, l := range distinct {
		seen[l] = uint32(rank)
	}
	ranks := make([]uint32, len(labels))
	for i, l := range labels {
		ranks[i] = seen[l]
	}
	return ranks
}

// RandomizedRank releases one community assignment under k-ary
// randomized response: the true rank is kept with probability
// e^ε/(e^ε+K−1) and otherwise replaced by a uniform draw over the K−1
// OTHER communities — the textbook mechanism, whose worst-case
// likelihood ratio is exactly e^ε. (A uniform draw over all K would
// exceed that ratio.) Exported so the privacy auditor (internal/
// dpcheck) can sample the exact production draw. k ≤ 1 returns the
// rank unchanged without consuming randomness.
func RandomizedRank(rank uint32, k uint64, eps float64, src *rng.Source) uint32 {
	if k <= 1 {
		return rank
	}
	expEps := math.Exp(eps)
	keep := expEps / (expEps + float64(k-1))
	if src.Float64() < keep {
		return rank
	}
	alt := src.Uint64n(k - 1)
	if alt >= uint64(rank) {
		alt++
	}
	return uint32(alt)
}

// randomizeRanks applies RandomizedRank in place to a side's dense
// assignments, serial in node-id order.
func randomizeRanks(ranks []uint32, eps float64, src *rng.Source) {
	k := uint64(0)
	for _, r := range ranks {
		if uint64(r) >= k {
			k = uint64(r) + 1
		}
	}
	if k <= 1 {
		return
	}
	for i := range ranks {
		ranks[i] = RandomizedRank(ranks[i], k, eps, src)
	}
}

// communityKeys packs (community rank, within-side degree rank) into
// the hierarchy's static ordering keys: communities laid out
// contiguously in rank order, degree-descending inside each. The degree
// rank is unique per node (degree desc, id asc), so keys are unique and
// the ordering is total without relying on the sort's id tie-break.
func communityKeys(ranks []uint32, deg []int64) []uint64 {
	idx := make([]int32, len(deg))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		if deg[idx[a]] != deg[idx[b]] {
			return deg[idx[a]] > deg[idx[b]]
		}
		return idx[a] < idx[b]
	})
	keys := make([]uint64, len(deg))
	for degRank, node := range idx {
		keys[node] = uint64(ranks[node])<<32 | uint64(uint32(degRank))
	}
	return keys
}
