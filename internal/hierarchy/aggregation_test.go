package hierarchy

import (
	"testing"

	"repro/internal/bipartite"
	"repro/internal/partition"
	"repro/internal/rng"
)

// naiveCellCounts recounts the depth-d cell matrix the slow way — one
// full edge pass with a per-edge binary search over the range boundaries,
// the seed implementation's algorithm — sharing no code with the
// single-scan aggregation it cross-checks.
func naiveCellCounts(tree *Tree, d int) []int64 {
	k := 1 << d
	counts := make([]int64, k*k)
	tree.graph.ForEachEdge(func(l, r int32) bool {
		i := findRange(tree.left.bounds[d], tree.left.pos[l])
		j := findRange(tree.right.bounds[d], tree.right.pos[r])
		counts[i*k+j]++
		return true
	})
	return counts
}

// randomGraph builds a reproducible random bipartite graph.
func randomGraph(t testing.TB, nl, nr, edges int, seed uint64) *bipartite.Graph {
	t.Helper()
	r := rng.New(seed)
	b := bipartite.NewBuilder(edges)
	b.SetNumLeft(int32(nl))
	b.SetNumRight(int32(nr))
	for i := 0; i < edges; i++ {
		b.AddEdge(int32(r.Intn(nl)), int32(r.Intn(nr)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCellAggregationMatchesNaiveRecount is the golden equivalence test
// for the single-scan bottom-up cell matrices: at every depth of trees
// over random graphs of several sizes and seeds, the aggregated matrix
// must be bit-identical to a naive per-depth recount.
func TestCellAggregationMatchesNaiveRecount(t *testing.T) {
	t.Parallel()
	shapes := []struct{ nl, nr, edges, rounds int }{
		{8, 8, 40, 3},
		{50, 70, 400, 4},
		{200, 300, 3000, 5},
		{512, 256, 8000, 6},
	}
	for _, shape := range shapes {
		for seed := uint64(1); seed <= 3; seed++ {
			g := randomGraph(t, shape.nl, shape.nr, shape.edges, seed)
			bis, err := partition.NewExpMechBisector(0.5, rng.New(seed+100))
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range []partition.Bisector{partition.BalancedBisector{}, bis} {
				tree, err := Build(g, Options{Rounds: shape.rounds, Bisector: b})
				if err != nil {
					t.Fatal(err)
				}
				for d := 0; d <= shape.rounds; d++ {
					want := naiveCellCounts(tree, d)
					got := tree.cells[d]
					if len(got) != len(want) {
						t.Fatalf("%dx%d seed %d %s: depth %d has %d cells, want %d",
							shape.nl, shape.nr, seed, b.Name(), d, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%dx%d seed %d %s: depth %d cell %d aggregated %d, naive %d",
								shape.nl, shape.nr, seed, b.Name(), d, i, got[i], want[i])
						}
					}
				}
				if err := tree.Validate(); err != nil {
					t.Fatalf("%dx%d seed %d %s: %v", shape.nl, shape.nr, seed, b.Name(), err)
				}
			}
		}
	}
}

// TestBuildWorkersBitIdentical asserts the full internal state — not just
// cell counts — is identical between serial and parallel builds, and that
// both validate.
func TestBuildWorkersBitIdentical(t *testing.T) {
	t.Parallel()
	g := randomGraph(t, 300, 450, 6000, 7)
	build := func(workers int) *Tree {
		bis, err := partition.NewExpMechBisector(0.3, rng.New(99))
		if err != nil {
			t.Fatal(err)
		}
		tree, err := Build(g, Options{Rounds: 5, Bisector: bis, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return tree
	}
	serial := build(1)
	parallel := build(4)
	for side, pair := range map[string][2]*sideTree{
		"left":  {&serial.left, &parallel.left},
		"right": {&serial.right, &parallel.right},
	} {
		a, b := pair[0], pair[1]
		for p := range a.perm {
			if a.perm[p] != b.perm[p] {
				t.Fatalf("%s perm differs at %d: %d vs %d", side, p, a.perm[p], b.perm[p])
			}
		}
		for n := range a.pos {
			if a.pos[n] != b.pos[n] {
				t.Fatalf("%s pos differs at %d", side, n)
			}
		}
		for d := range a.bounds {
			for i := range a.bounds[d] {
				if a.bounds[d][i] != b.bounds[d][i] {
					t.Fatalf("%s bounds differ at depth %d index %d", side, d, i)
				}
			}
		}
		for p := range a.degPrefix {
			if a.degPrefix[p] != b.degPrefix[p] {
				t.Fatalf("%s degPrefix differs at %d", side, p)
			}
		}
	}
	for d := range serial.cells {
		for i := range serial.cells[d] {
			if serial.cells[d][i] != parallel.cells[d][i] {
				t.Fatalf("cells differ at depth %d index %d", d, i)
			}
		}
	}
	if serial.NumPrivateCuts() != parallel.NumPrivateCuts() {
		t.Fatalf("private cuts differ: %d vs %d", serial.NumPrivateCuts(), parallel.NumPrivateCuts())
	}
}

// TestSideGroupIncidentEdgesMatchesNaive cross-checks the degree-prefix
// answers against a naive per-node degree sum.
func TestSideGroupIncidentEdgesMatchesNaive(t *testing.T) {
	t.Parallel()
	g := randomGraph(t, 120, 90, 1500, 3)
	tree, err := Build(g, Options{Rounds: 4, Bisector: partition.BalancedBisector{}})
	if err != nil {
		t.Fatal(err)
	}
	for level := 0; level <= tree.MaxLevel(); level++ {
		for _, side := range []bipartite.Side{bipartite.Left, bipartite.Right} {
			got, err := tree.SideGroupIncidentEdges(level, side)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				nodes, err := tree.SideGroupNodes(level, side, i)
				if err != nil {
					t.Fatal(err)
				}
				var want int64
				for _, node := range nodes {
					want += g.Degree(side, node)
				}
				if got[i] != want {
					t.Fatalf("level %d side %v group %d: prefix sum %d, naive %d", level, side, i, got[i], want)
				}
			}
		}
	}
}

// TestRadixSortMatchesComparisonSort pins the radix path to compareItems'
// total order on adversarial weight distributions.
func TestRadixSortMatchesComparisonSort(t *testing.T) {
	t.Parallel()
	r := rng.New(41)
	for trial := 0; trial < 20; trial++ {
		n := radixMinLen + r.Intn(500)
		ref := make([]rangeItem, n)
		for i := range ref {
			w := int64(r.Intn(5)) // heavy ties
			if trial%2 == 0 {
				w = int64(r.Intn(1 << 20))
			}
			ref[i] = rangeItem{node: int32(i), weight: w}
		}
		// Shuffle node ids so ties exercise the node tie-break.
		for i := n - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			ref[i].node, ref[j].node = ref[j].node, ref[i].node
		}
		got := append([]rangeItem(nil), ref...)
		var maxW int64
		for _, it := range ref {
			if it.weight > maxW {
				maxW = it.weight
			}
		}
		radixSortItems(got, make([]uint64, n), make([]uint64, n), maxW)
		slicesSortRef(ref)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("trial %d: index %d radix %+v, comparison %+v", trial, i, got[i], ref[i])
			}
		}
	}
}

func slicesSortRef(items []rangeItem) {
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && compareItems(items[j], items[j-1]) < 0; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
}

// BenchmarkComputeCells isolates the cell-matrix computation: one edge
// scan at the deepest level plus bottom-up aggregation, across worker
// counts. The graph is dense enough (300k edges over a 64×64 deepest
// grid) that the sharded scan engages for the parallel case.
func BenchmarkComputeCells(b *testing.B) {
	g := randomGraph(b, 2000, 3000, 300000, 5)
	tree, err := Build(g, Options{Rounds: 6, Bisector: partition.BalancedBisector{}})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "workers1", 4: "workers4"}[workers], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tree.computeCells(workers)
			}
		})
	}
}

// BenchmarkSideGroupSums measures the O(groups) incident-edge answers
// over every level of a deep tree.
func BenchmarkSideGroupSums(b *testing.B) {
	g := randomGraph(b, 2000, 3000, 50000, 6)
	tree, err := Build(g, Options{Rounds: 8, Bisector: partition.BalancedBisector{}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for level := 0; level <= tree.MaxLevel(); level++ {
			if _, err := tree.MaxSideGroupIncidentEdges(level); err != nil {
				b.Fatal(err)
			}
		}
	}
}
