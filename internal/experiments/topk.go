package experiments

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/rng"
)

// RunTopK is experiment A8 (extension): heavy-hitter identification
// utility. A data user at each tier computes the top-k heaviest left-side
// groups ("most prolific author groups") from the released noisy cell
// histogram; we measure set precision against the exact top-k. This
// quantifies a *task-level* utility the paper's scalar RER metric cannot
// see: coarse tiers may have usable counts yet useless rankings.
func RunTopK(opts Options) (*Report, error) {
	tree, err := standardTree(opts)
	if err != nil {
		return nil, err
	}
	trials := opts.trials(20, 4)
	grid := epsGrid(opts.Quick)
	const k = 4
	// Levels with at least 2k side groups so the task is non-trivial.
	var levels []int
	for _, lvl := range levelsFor(tree.MaxLevel()) {
		groups, err := tree.NumSideGroups(lvl)
		if err != nil {
			return nil, err
		}
		if groups >= 2*k {
			levels = append(levels, lvl)
		}
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("experiments: topk needs a level with >= %d side groups", 2*k)
	}
	levels = pickSpread(levels)

	table := metrics.Table{
		Title:   fmt.Sprintf("A8 — top-%d group precision from released histograms (%d trials)", k, trials),
		Headers: []string{"εg"},
	}
	series := make([]metrics.Series, len(levels))
	for li, lvl := range levels {
		table.Headers = append(table.Headers, fmt.Sprintf("level %d", lvl))
		series[li] = metrics.Series{Name: fmt.Sprintf("level %d", lvl)}
	}
	src := rng.New(opts.Seed + 99)
	for _, eps := range grid {
		row := []any{eps}
		for li, lvl := range levels {
			var sum float64
			for trial := 0; trial < trials; trial++ {
				rel, err := core.ReleaseCells(tree, lvl, dp.Params{Epsilon: eps, Delta: 1e-5},
					core.CalibrationClassical, src.Split(uint64(trial)<<16|uint64(lvl)<<8|uint64(eps*1000)))
				if err != nil {
					return nil, err
				}
				p, err := query.TopKPrecision(tree, rel, bipartite.Left, k)
				if err != nil {
					return nil, err
				}
				sum += p
			}
			mean := sum / float64(trials)
			row = append(row, mean)
			series[li].X = append(series[li].X, eps)
			series[li].Y = append(series[li].Y, mean)
		}
		table.AddRow(row...)
	}
	fig, err := metrics.RenderASCII(series, metrics.PlotOptions{
		Title:  fmt.Sprintf("A8: top-%d precision vs εg", k),
		XLabel: "εg", YLabel: "precision",
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Name: "topk", Title: "A8 — heavy-hitter identification utility",
		Tables: []metrics.Table{table}, Series: series, Figures: []string{fig},
		Notes: []string{
			"ranking quality tracks the inter-group gap / noise ratio, not RER: coarse levels rank usably despite large RER, while fine levels (many near-equal groups, noise fixed at the level's Δ) rank poorly even where counts look accurate",
		},
	}, nil
}
