// RemoteLedger: the client side of the shared privacy-ledger sequencer
// (internal/ledgerd, cmd/gdpledgerd).
//
// N serving replicas pointing their registries at one sequencer spend
// ONE budget: every Spend becomes an idempotent HTTP admission request
// carrying a client-unique op ID, and the sequencer fsyncs the op into
// its WAL before acking — the same durable-before-admitted contract
// DurableLedger gives one process, extended across processes.
//
// Failure semantics are strictly fail-closed, in the only safe
// direction: budget may be charged without bytes released, never the
// reverse.
//
//   - A definitive budget rejection (HTTP 429 "budget-exceeded") is a
//     clean ErrBudgetExceeded — the ledger state only grows, so the
//     rejection is permanent and nothing was spent.
//   - Transient failures (timeouts, connection errors, 5xx) are retried
//     with bounded exponential backoff and jitter under the SAME op ID,
//     so an admission whose ack was lost is re-acked, not re-debited.
//   - Anything else — retries exhausted, an epoch fence (the sequencer
//     restarted), a budget or protocol mismatch — latches the ledger:
//     every subsequent spend returns ErrLedgerFailed until a new
//     RemoteLedger is opened (which re-attaches and re-pins the
//     authoritative state). A latched spend admitted nothing the caller
//     may release.
package accountant

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	mrand "math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dp"
)

// ErrRemoteProtocol marks responses the client cannot interpret — a
// wrong server, a wire-format drift. It latches like any other
// non-transient failure.
var ErrRemoteProtocol = errors.New("accountant: unexpected remote-ledger response")

// RemoteOptions configures OpenRemoteLedger. The zero value selects the
// production defaults.
type RemoteOptions struct {
	// Timeout bounds each HTTP attempt (default 2s).
	Timeout time.Duration
	// Attempts bounds the tries per operation, first included
	// (default 5).
	Attempts int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// attempts (defaults 50ms and 2s); each pause is jittered uniformly
	// in [base/2, base) at its current exponent so retrying replicas
	// never thundering-herd a recovering sequencer.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Client overrides the HTTP client (tests); Timeout still bounds
	// each attempt through the request context.
	Client *http.Client
}

func (o RemoteOptions) withDefaults() RemoteOptions {
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.Attempts <= 0 {
		o.Attempts = 5
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	return o
}

// RemoteLedger implements Ledger against a gdpledgerd sequencer. Reads
// (Spent, Remaining, OpCount) report the sequencer's authoritative
// state when reachable and fall back to the last state an admission
// response carried; Ops and AuditReport require the sequencer. Safe
// for concurrent use.
type RemoteLedger struct {
	base   string // http://host:port, no trailing slash
	key    string
	budget dp.Params
	opts   RemoteOptions

	// clientID is drawn from OS entropy per open; opSeq numbers this
	// client's spends. Together they make op IDs unique across every
	// replica and restart without coordination.
	clientID string
	opSeq    atomic.Uint64

	mu      sync.Mutex
	epoch   string
	spent   dp.Params // last authoritative spent observed
	opCount int
	failed  error
	rng     *mrand.Rand // backoff jitter; never touches released bytes
}

var _ Ledger = (*RemoteLedger)(nil)

// OpenRemoteLedger attaches to the sequencer at base (e.g.
// "http://127.0.0.1:8850"), opening — or replaying — the durable ledger
// for key under the given budget, and pins the sequencer's epoch token.
// Attaching an existing key under a different budget fails with
// ErrBudgetMismatch. The attach itself is retried like a spend; an
// unreachable sequencer fails the open (nothing to latch yet).
func OpenRemoteLedger(base, key string, budget dp.Params, opts RemoteOptions) (*RemoteLedger, error) {
	if err := budget.Validate(); err != nil {
		return nil, err
	}
	if key == "" {
		return nil, errors.New("accountant: remote ledger key is required")
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	var idBytes [8]byte
	if _, err := rand.Read(idBytes[:]); err != nil {
		return nil, fmt.Errorf("accountant: drawing remote-ledger client id: %w", err)
	}
	seed := binary.LittleEndian.Uint64(idBytes[:])
	r := &RemoteLedger{
		base:     strings.TrimSuffix(base, "/"),
		key:      key,
		budget:   budget,
		opts:     opts.withDefaults(),
		clientID: fmt.Sprintf("%016x", seed),
		rng:      mrand.New(mrand.NewSource(int64(seed))),
	}
	var res wireState
	err := r.call(http.MethodPost, "/attach",
		map[string]any{"budget": wireBudget{budget.Epsilon, budget.Delta}}, &res)
	if err != nil {
		return nil, fmt.Errorf("accountant: attaching remote ledger %q at %s: %w", key, r.base, err)
	}
	got := dp.Params{Epsilon: res.Budget.Epsilon, Delta: res.Budget.Delta}
	if got != budget {
		return nil, fmt.Errorf("%w: sequencer has %s, configured %s", ErrBudgetMismatch, got, budget)
	}
	if res.Epoch == "" {
		return nil, fmt.Errorf("%w: attach response carries no epoch", ErrRemoteProtocol)
	}
	r.epoch = res.Epoch
	r.spent = dp.Params{Epsilon: res.Spent.Epsilon, Delta: res.Spent.Delta}
	r.opCount = res.Ops
	return r, nil
}

// Addr returns the sequencer base URL.
func (r *RemoteLedger) Addr() string { return r.base }

// Key returns the budget key this ledger spends under.
func (r *RemoteLedger) Key() string { return r.key }

// RemoteStatus is the remote ledger's durability panel (the serving
// layer's /budget endpoint embeds it).
type RemoteStatus struct {
	Addr  string `json:"addr"`
	Key   string `json:"key"`
	Epoch string `json:"epoch"`
	// Err is the latched failure, "" while healthy.
	Err string `json:"error,omitempty"`
}

// Status reports the client's view of its sequencer binding.
func (r *RemoteLedger) Status() RemoteStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RemoteStatus{Addr: r.base, Key: r.key, Epoch: r.epoch}
	if r.failed != nil && !errors.Is(r.failed, ErrLedgerClosed) {
		st.Err = r.failed.Error()
	}
	return st
}

// Close latches the client closed: subsequent spends fail with
// ErrLedgerClosed. The sequencer keeps the durable state — a new
// RemoteLedger (any replica) reattaches to the same budget.
func (r *RemoteLedger) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failed == nil {
		r.failed = ErrLedgerClosed
	}
	return nil
}

// wireBudget and the response shapes mirror internal/ledgerd's wire
// protocol (kept in sync by the conformance tests, which run this
// client against the real service).
type wireBudget struct {
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
}

type wireState struct {
	Epoch     string     `json:"epoch"`
	Admitted  bool       `json:"admitted"`
	Replayed  bool       `json:"replayed"`
	Seq       int        `json:"seq"`
	Budget    wireBudget `json:"budget"`
	Spent     wireBudget `json:"spent"`
	Remaining wireBudget `json:"remaining"`
	Ops       int        `json:"ops"`
}

type wireError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// Budget implements Ledger.
func (r *RemoteLedger) Budget() dp.Params { return r.budget }

// Spend implements Ledger.
func (r *RemoteLedger) Spend(label string, cost dp.Params) error {
	return r.SpendBytes([]byte(label), cost)
}

// SpendBytes implements Ledger: one idempotent admission round trip.
// The op ID is fixed before the first attempt, so however many retries
// a flaky network forces, the sequencer debits at most once; nil is
// returned only after the sequencer durably acked the admission.
func (r *RemoteLedger) SpendBytes(label []byte, cost dp.Params) error {
	if err := cost.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	failed := r.failed
	epoch := r.epoch
	r.mu.Unlock()
	if failed != nil {
		return fmt.Errorf("%w (label %q)", failed, label)
	}
	opID := fmt.Sprintf("%s-%d", r.clientID, r.opSeq.Add(1))
	var res wireState
	err := r.call(http.MethodPost, "/spend", map[string]any{
		"epoch": epoch,
		"op_id": opID,
		"label": string(label),
		"cost":  wireBudget{cost.Epsilon, cost.Delta},
	}, &res)
	if err != nil {
		if errors.Is(err, ErrBudgetExceeded) {
			// Definitive rejection: nothing spent, nothing latched, and
			// (spend being monotone) retrying could never succeed.
			return fmt.Errorf("%w (label %q)", err, label)
		}
		latched := fmt.Errorf("%w: %v", ErrLedgerFailed, err)
		r.mu.Lock()
		if r.failed == nil {
			r.failed = latched
		}
		failed = r.failed
		r.mu.Unlock()
		return fmt.Errorf("%w (label %q)", failed, label)
	}
	if !res.Admitted {
		// A 200 that does not admit is protocol drift; treat as latching.
		latched := fmt.Errorf("%w: %v", ErrLedgerFailed, ErrRemoteProtocol)
		r.mu.Lock()
		if r.failed == nil {
			r.failed = latched
		}
		failed = r.failed
		r.mu.Unlock()
		return fmt.Errorf("%w (label %q)", failed, label)
	}
	r.observe(res)
	return nil
}

// observe folds an authoritative response into the cached read state.
// Spent is monotone, so the freshest view is the componentwise max —
// out-of-order responses from concurrent spends cannot roll it back.
func (r *RemoteLedger) observe(res wireState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spent.Epsilon = math.Max(r.spent.Epsilon, res.Spent.Epsilon)
	r.spent.Delta = math.Max(r.spent.Delta, res.Spent.Delta)
	if res.Ops > r.opCount {
		r.opCount = res.Ops
	}
}

// refresh pulls the sequencer's authoritative state; best effort — a
// failure leaves the cache (reads must not latch the ledger, and must
// keep answering during partitions, from the last known state).
func (r *RemoteLedger) refresh() {
	var res wireState
	if err := r.call(http.MethodGet, "", nil, &res); err == nil {
		r.observe(res)
	}
}

// Spent implements Ledger: the sequencer's authoritative total when
// reachable, else the last observed state (never ahead of the truth —
// both sources only report durably admitted ops).
func (r *RemoteLedger) Spent() dp.Params {
	r.refresh()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spent
}

// Remaining implements Ledger.
func (r *RemoteLedger) Remaining() dp.Params {
	spent := r.Spent()
	return dp.Params{
		Epsilon: math.Max(0, r.budget.Epsilon-spent.Epsilon),
		Delta:   math.Max(0, r.budget.Delta-spent.Delta),
	}
}

// OpCount implements Ledger.
func (r *RemoteLedger) OpCount() int {
	r.refresh()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.opCount
}

// Ops implements Ledger: the sequencer's audit trail (labels exactly as
// spent; the sequencer strips its op-ID envelope). Returns nil when the
// sequencer is unreachable — the trail lives with the WAL, not here.
func (r *RemoteLedger) Ops() []Op {
	var res struct {
		Ops []struct {
			Seq     int     `json:"seq"`
			Label   string  `json:"label"`
			Epsilon float64 `json:"epsilon"`
			Delta   float64 `json:"delta"`
		} `json:"ops"`
	}
	if err := r.call(http.MethodGet, "/ops", nil, &res); err != nil {
		return nil
	}
	out := make([]Op, len(res.Ops))
	for i, op := range res.Ops {
		out[i] = Op{Seq: op.Seq, Label: op.Label, Cost: dp.Params{Epsilon: op.Epsilon, Delta: op.Delta}}
	}
	return out
}

// AuditReport implements Ledger.
func (r *RemoteLedger) AuditReport() string {
	ops := r.Ops()
	spent := r.Spent()
	var b strings.Builder
	fmt.Fprintf(&b, "privacy ledger (remote %s, key %s): budget %s, spent %s, %d ops\n",
		r.base, r.key, r.budget, spent, len(ops))
	for _, op := range ops {
		fmt.Fprintf(&b, "  %3d. %-24s %s\n", op.Seq, op.Label, op.Cost)
	}
	return b.String()
}

// call runs one request against /v1/ledgers/{key}{path} with the retry
// policy: transient failures (network errors, timeouts, 5xx) back off
// exponentially with jitter and retry under the same body; definitive
// answers (2xx, 4xx) return immediately.
func (r *RemoteLedger) call(method, path string, body any, out any) error {
	url := r.base + "/v1/ledgers/" + r.key + path
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return err
		}
	}
	var lastErr error
	for attempt := 0; attempt < r.opts.Attempts; attempt++ {
		if attempt > 0 {
			r.sleepBackoff(attempt)
		}
		res, retry, err := r.attempt(method, url, payload, out)
		if err == nil {
			_ = res
			return nil
		}
		lastErr = err
		if !retry {
			return err
		}
	}
	return fmt.Errorf("accountant: remote ledger %s unreachable after %d attempts: %w",
		r.base, r.opts.Attempts, lastErr)
}

// attempt is one HTTP round trip. retry reports whether the failure is
// transient.
func (r *RemoteLedger) attempt(method, url string, payload []byte, out any) (status int, retry bool, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.Timeout)
	defer cancel()
	var bodyReader io.Reader
	if payload != nil {
		bodyReader = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, bodyReader)
	if err != nil {
		return 0, false, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return 0, true, err // network/timeout: transient
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return resp.StatusCode, true, err
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out != nil {
			if err := json.Unmarshal(data, out); err != nil {
				return resp.StatusCode, false, fmt.Errorf("%w: %v", ErrRemoteProtocol, err)
			}
		}
		return resp.StatusCode, false, nil
	}
	var we wireError
	_ = json.Unmarshal(data, &we)
	msg := we.Error
	if msg == "" {
		msg = strings.TrimSpace(string(data))
	}
	switch {
	case we.Code == "budget-exceeded":
		return resp.StatusCode, false, fmt.Errorf("%w: %s", ErrBudgetExceeded, msg)
	case we.Code == "budget-mismatch":
		return resp.StatusCode, false, fmt.Errorf("%w: %s", ErrBudgetMismatch, msg)
	case we.Code == "epoch-fenced", we.Code == "not-attached":
		return resp.StatusCode, false, fmt.Errorf("accountant: sequencer fenced this writer (%s): %s", we.Code, msg)
	case resp.StatusCode >= 500 || resp.StatusCode == http.StatusServiceUnavailable:
		// Sequencer-side trouble: retrying under the same op ID is safe
		// and may land once it recovers (or re-ack an admitted op).
		return resp.StatusCode, true, fmt.Errorf("accountant: sequencer error (HTTP %d, %s): %s", resp.StatusCode, we.Code, msg)
	default:
		return resp.StatusCode, false, fmt.Errorf("%w: HTTP %d (%s): %s", ErrRemoteProtocol, resp.StatusCode, we.Code, msg)
	}
}

// sleepBackoff pauses before retry #attempt: exponential in the attempt
// number, capped at BackoffMax, jittered uniformly in [d/2, d).
func (r *RemoteLedger) sleepBackoff(attempt int) {
	d := r.opts.BackoffBase << (attempt - 1)
	if d > r.opts.BackoffMax || d <= 0 {
		d = r.opts.BackoffMax
	}
	r.mu.Lock()
	jittered := d/2 + time.Duration(r.rng.Int63n(int64(d/2)+1))
	r.mu.Unlock()
	time.Sleep(jittered)
}
