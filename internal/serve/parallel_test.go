package serve

import (
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"repro/internal/bipartite"
)

// workerTranscript opens a fresh registry at the given ReleaseWorkers
// setting, pins a session stream, and serializes a mixed query
// transcript.
func workerTranscript(t *testing.T, releaseWorkers int, stream uint64) []byte {
	t.Helper()
	cfg := testConfig()
	cfg.ReleaseWorkers = releaseWorkers
	_, ds := openTestDataset(t, cfg)
	sess := ds.SessionAt(stream)
	var blob []byte
	for _, q := range []func() (any, error){
		func() (any, error) { return sess.ReleaseLevel(2) },
		func() (any, error) { return sess.Marginal(1, bipartite.Right) },
		func() (any, error) { return sess.TopK(2, bipartite.Left, 3) },
		func() (any, error) { return sess.Marginal(2, bipartite.Left) },
	} {
		v, err := q()
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		blob = append(blob, b...)
	}
	return blob
}

// TestReleaseWorkersByteIdentical is the serving-layer face of the
// tentpole: the same pinned stream must answer byte-identically whether
// each release's noise pass runs on 1, 4 or 7 goroutines.
func TestReleaseWorkersByteIdentical(t *testing.T) {
	t.Parallel()
	want := workerTranscript(t, 1, 7)
	for _, workers := range []int{4, 7} {
		if got := workerTranscript(t, workers, 7); string(got) != string(want) {
			t.Fatalf("ReleaseWorkers=%d transcript differs from single-worker", workers)
		}
	}
}

// TestReleaseWorkersConfigValidation: negative rejected, zero defaults
// to one.
func TestReleaseWorkersConfigValidation(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.ReleaseWorkers = -1
	if _, err := Open(cfg); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("negative ReleaseWorkers: %v", err)
	}
	cfg.ReleaseWorkers = 0
	reg, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if reg.cfg.ReleaseWorkers != 1 {
		t.Fatalf("zero ReleaseWorkers resolved to %d, want 1", reg.cfg.ReleaseWorkers)
	}
}

// TestConcurrentSessionsParallelRelease drives many sessions at once
// with a multi-worker noise pass — the -race CI job's view of the
// sharded release running inside concurrent request handling. Each
// pinned stream must still match its own serial replay.
func TestConcurrentSessionsParallelRelease(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.ReleaseWorkers = 4
	_, ds := openTestDataset(t, cfg)

	const sessions = 6
	transcripts := make([][]byte, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := ds.SessionAt(uint64(100 + i))
			for q := 0; q < 3; q++ {
				m, err := sess.Marginal(2, bipartite.Left)
				if err != nil {
					errs[i] = err
					return
				}
				b, err := json.Marshal(m)
				if err != nil {
					errs[i] = err
					return
				}
				transcripts[i] = append(transcripts[i], b...)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}

	// Replay each stream serially against a fresh single-worker registry:
	// concurrency and the worker count must both be invisible in the bytes.
	cfg2 := testConfig()
	cfg2.ReleaseWorkers = 1
	_, ds2 := openTestDataset(t, cfg2)
	for i := 0; i < sessions; i++ {
		sess := ds2.SessionAt(uint64(100 + i))
		var want []byte
		for q := 0; q < 3; q++ {
			m, err := sess.Marginal(2, bipartite.Left)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, b...)
		}
		if string(transcripts[i]) != string(want) {
			t.Fatalf("session %d: concurrent parallel-release transcript differs from serial replay", i)
		}
	}
}
