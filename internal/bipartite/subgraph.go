package bipartite

import (
	"errors"
	"fmt"
)

// ErrBadNodeSet reports an induced-subgraph request with invalid nodes.
var ErrBadNodeSet = errors.New("bipartite: invalid node set")

// InducedSubgraph extracts the subgraph spanned by the given left and
// right node sets — exactly a hierarchy cell when called with a cell's two
// side groups. Node ids are re-indexed densely in the order given
// (duplicates rejected); the mapping back to the parent graph is returned
// alongside the subgraph. Labels are carried over when present.
func InducedSubgraph(g *Graph, leftNodes, rightNodes []int32) (*Graph, *SubgraphMapping, error) {
	if g == nil {
		return nil, nil, errors.New("bipartite: nil graph")
	}
	leftMap, err := buildIndex(leftNodes, int32(g.NumLeft()), "left")
	if err != nil {
		return nil, nil, err
	}
	rightMap, err := buildIndex(rightNodes, int32(g.NumRight()), "right")
	if err != nil {
		return nil, nil, err
	}

	b := NewBuilder(0)
	b.SetNumLeft(int32(len(leftNodes)))
	b.SetNumRight(int32(len(rightNodes)))
	// Iterate the smaller side's adjacency for efficiency.
	for subL, l := range leftNodes {
		for _, r := range g.Neighbors(Left, l) {
			if subR, ok := rightMap[r]; ok {
				b.AddEdge(int32(subL), subR)
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("bipartite: building induced subgraph: %w", err)
	}
	if g.HasNames() {
		sub.leftNames = make([]string, len(leftNodes))
		sub.rightNames = make([]string, len(rightNodes))
		for i, l := range leftNodes {
			sub.leftNames[i] = g.LeftName(l)
		}
		for i, r := range rightNodes {
			sub.rightNames[i] = g.RightName(r)
		}
	}
	m := &SubgraphMapping{
		LeftToParent:  append([]int32(nil), leftNodes...),
		RightToParent: append([]int32(nil), rightNodes...),
		leftIndex:     leftMap,
		rightIndex:    rightMap,
	}
	return sub, m, nil
}

// SubgraphMapping translates between subgraph ids and parent-graph ids.
type SubgraphMapping struct {
	// LeftToParent[i] is the parent id of subgraph left node i; likewise
	// RightToParent.
	LeftToParent  []int32
	RightToParent []int32

	leftIndex  map[int32]int32
	rightIndex map[int32]int32
}

// ToParent maps a subgraph node id to its parent id. The boolean is false
// for out-of-range ids.
func (m *SubgraphMapping) ToParent(side Side, id int32) (int32, bool) {
	var arr []int32
	switch side {
	case Left:
		arr = m.LeftToParent
	case Right:
		arr = m.RightToParent
	default:
		return 0, false
	}
	if id < 0 || int(id) >= len(arr) {
		return 0, false
	}
	return arr[id], true
}

// FromParent maps a parent node id to its subgraph id. The boolean is
// false when the node is not part of the subgraph.
func (m *SubgraphMapping) FromParent(side Side, id int32) (int32, bool) {
	switch side {
	case Left:
		v, ok := m.leftIndex[id]
		return v, ok
	case Right:
		v, ok := m.rightIndex[id]
		return v, ok
	default:
		return 0, false
	}
}

func buildIndex(nodes []int32, limit int32, what string) (map[int32]int32, error) {
	idx := make(map[int32]int32, len(nodes))
	for i, n := range nodes {
		if n < 0 || n >= limit {
			return nil, fmt.Errorf("%w: %s node %d outside [0,%d)", ErrBadNodeSet, what, n, limit)
		}
		if _, dup := idx[n]; dup {
			return nil, fmt.Errorf("%w: duplicate %s node %d", ErrBadNodeSet, what, n)
		}
		idx[n] = int32(i)
	}
	return idx, nil
}
