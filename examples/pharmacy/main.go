// Pharmacy scenario from the paper's introduction: patients (left)
// purchase drugs (right), and the aggregate "how many psychiatric-drug
// purchases came from this neighbourhood" is itself sensitive — classical
// record-level DP does not protect it, g-group DP does.
//
// The example releases the purchase graph at several group levels with
// cell histograms enabled, then answers neighbourhood-style range queries
// from each tier's noisy histogram and reports the error a data user at
// that tier would actually see.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/query"
	"repro/internal/rng"
)

func main() {
	g, err := repro.GenerateDataset(repro.PresetPharmacy, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("purchase graph:", repro.ComputeStats(g))
	fmt.Printf("example records: %q bought %q\n\n",
		g.LeftName(g.Neighbors(repro.Right, 0)[0]), g.RightName(0))

	pipe, err := repro.NewPipeline(
		repro.Params{Epsilon: 0.8, Delta: 1e-5},
		repro.WithRounds(6),
		repro.WithPhase1Epsilon(0.1),
		repro.WithCellHistograms(true), // release noisy subgraph histograms
		repro.WithSeed(11),
	)
	if err != nil {
		log.Fatal(err)
	}
	rel, err := pipe.Run(g)
	if err != nil {
		log.Fatal(err)
	}
	tree := rel.Tree()

	// "Neighbourhoods" are the patient-side groups the hierarchy formed;
	// a range query over consecutive groups asks how many purchases a
	// block of neighbourhoods made in a block of drug groups.
	fmt.Printf("%-8s %12s %16s %16s\n", "level", "groups/side", "mean |error|", "mean RER")
	for _, lvl := range rel.Levels() {
		view, err := rel.ViewFor(lvl)
		if err != nil {
			log.Fatal(err)
		}
		if view.Cells == nil {
			continue
		}
		workload, err := query.RandomRects(rng.New(99), tree, lvl, 200)
		if err != nil {
			log.Fatal(err)
		}
		res, err := query.Evaluate(tree, *view.Cells, workload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("I6,%-5d %12d %16.1f %15.1f%%\n",
			lvl, view.Cells.SideGroups, res.AbsErr.Mean, res.RER.Mean*100)
	}

	fmt.Println("\nlow-privilege tiers see neighbourhood aggregates only through heavy noise;")
	fmt.Println("high-privilege tiers (fine levels) get accurate counts — the paper's access model.")
}
