// The group's durable replicated log.
//
// Group mode does not replicate N per-key WAL files; it replicates ONE
// totally ordered log of term-tagged entries (attach, spend, barrier
// no-op) and derives every key's ledger state by applying the committed
// prefix. The log reuses the accountant WAL frame envelope — u32 len |
// payload | u32 crc32c — so the bytes a primary fsyncs locally are the
// exact checksummed frames it streams to followers, and a follower
// verifies the same checksum the disk replay does before fsyncing them
// verbatim. Spend entries embed the accountant op-record payload
// unchanged, so the replicated history stores precisely the op shape a
// single-node DurableLedger would.
//
// Durability discipline matches durable.go: every append batch is
// fsynced before the caller acks anything; replay tolerates exactly one
// torn tail (truncated away) while structural corruption — bad magic,
// an index gap, an undecodable checksum-valid frame — refuses to open.
// Truncation is only ever invoked on UNCOMMITTED suffixes (the group
// core guarantees committed entries are never contradicted), mirroring
// raft's conflict-resolution rule.
package ledgerd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/accountant"
	"repro/internal/dp"
)

const (
	// groupLogMagic heads the replicated log file; distinct from the
	// per-key WAL magic so the two formats can never be confused.
	groupLogMagic = "GDPGRP1\n"
	// termFile persists the node's durable term (the generalized epoch).
	// Dot-led, so ledger keys cannot collide with it.
	termFile = ".group-term"
	// groupLogFile holds the replicated log. Dot-led for the same reason.
	groupLogFile = ".group.wal"

	// recEntry is the replicated-log record type inside a frame payload.
	recEntry = 'E'

	// Entry kinds.
	entryNoop   = 'N' // leadership barrier: carries only index+term
	entryAttach = 'A' // opens a key under a budget
	entrySpend  = 'S' // embeds an accountant op-record payload
)

// ErrGroupLogCorrupt marks structural corruption of the replicated log
// that torn-tail truncation cannot repair.
var ErrGroupLogCorrupt = errors.New("ledgerd: group log corrupt")

// groupEntry is one decoded replicated-log entry. Index is 1-based and
// dense; Term is the leadership term that appended the entry.
type groupEntry struct {
	Index uint64
	Term  uint64
	Kind  byte
	Key   string // attach + spend
	// Attach payload.
	Budget dp.Params
	// Spend payload: the embedded accountant op record. Seq is the
	// per-key 1-based op sequence; Label carries the op-ID envelope.
	Seq   uint64
	Cost  dp.Params
	Label string
}

// encodeEntryPayload encodes e as a frame payload.
func encodeEntryPayload(dst []byte, e groupEntry) []byte {
	dst = append(dst, recEntry)
	dst = binary.LittleEndian.AppendUint64(dst, e.Index)
	dst = binary.LittleEndian.AppendUint64(dst, e.Term)
	dst = append(dst, e.Kind)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(e.Key)))
	dst = append(dst, e.Key...)
	switch e.Kind {
	case entryAttach:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.Budget.Epsilon))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.Budget.Delta))
	case entrySpend:
		dst = accountant.AppendOpPayload(dst, e.Seq, e.Cost, []byte(e.Label))
	}
	return dst
}

// decodeEntryPayload decodes one frame payload back into an entry.
func decodeEntryPayload(p []byte) (groupEntry, bool) {
	const fixed = 1 + 8 + 8 + 1 + 2
	if len(p) < fixed || p[0] != recEntry {
		return groupEntry{}, false
	}
	e := groupEntry{
		Index: binary.LittleEndian.Uint64(p[1:]),
		Term:  binary.LittleEndian.Uint64(p[9:]),
		Kind:  p[17],
	}
	keyLen := int(binary.LittleEndian.Uint16(p[18:]))
	if len(p) < fixed+keyLen {
		return groupEntry{}, false
	}
	e.Key = string(p[fixed : fixed+keyLen])
	rest := p[fixed+keyLen:]
	switch e.Kind {
	case entryNoop:
		if len(rest) != 0 || keyLen != 0 {
			return groupEntry{}, false
		}
	case entryAttach:
		if len(rest) != 16 {
			return groupEntry{}, false
		}
		e.Budget = dp.Params{
			Epsilon: math.Float64frombits(binary.LittleEndian.Uint64(rest)),
			Delta:   math.Float64frombits(binary.LittleEndian.Uint64(rest[8:])),
		}
	case entrySpend:
		seq, cost, label, ok := accountant.ParseOpPayload(rest)
		if !ok {
			return groupEntry{}, false
		}
		e.Seq, e.Cost, e.Label = seq, cost, string(label)
	default:
		return groupEntry{}, false
	}
	return e, true
}

// groupLog is the durable replicated log of one group member: the file
// (flock'd, append-only through the WriteSyncer seam) plus the decoded
// in-memory copy and the raw frame bytes replication re-ships verbatim.
// Callers (the group core) serialize access.
type groupLog struct {
	path       string
	lockF      *os.File
	w          accountant.WriteSyncer
	openWriter func(path string) (accountant.WriteSyncer, error)

	entries []groupEntry
	frames  [][]byte // raw frame bytes per entry, for replication
	offsets []int64  // file offset where entry i's frame starts
	size    int64
	scratch []byte
}

// openGroupLog opens (creating if absent) and replays the replicated
// log at dir/groupLogFile, truncating a torn tail.
func openGroupLog(dir string, openWriter func(string) (accountant.WriteSyncer, error)) (*groupLog, error) {
	if openWriter == nil {
		openWriter = func(path string) (accountant.WriteSyncer, error) {
			return os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
		}
	}
	path := filepath.Join(dir, groupLogFile)
	lockF, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledgerd: opening group log %s: %w", path, err)
	}
	if err := accountant.LockFile(lockF); err != nil {
		lockF.Close()
		return nil, fmt.Errorf("%w: %s", err, path)
	}
	l := &groupLog{path: path, lockF: lockF, openWriter: openWriter}
	fail := func(err error) (*groupLog, error) {
		lockF.Close()
		return nil, err
	}

	data, err := io.ReadAll(lockF)
	if err != nil {
		return fail(fmt.Errorf("ledgerd: reading group log %s: %w", path, err))
	}
	validLen := int64(0)
	if len(data) >= len(groupLogMagic) {
		if string(data[:len(groupLogMagic)]) != groupLogMagic {
			return fail(fmt.Errorf("%w: %s: bad magic", ErrGroupLogCorrupt, path))
		}
		off := len(groupLogMagic)
		for off < len(data) {
			payload, n, ok := accountant.NextFrame(data[off:])
			if !ok {
				break // torn tail: the prefix is the log
			}
			e, ok := decodeEntryPayload(payload)
			if !ok {
				// A checksum-valid frame that does not decode is structural
				// corruption, not a tear.
				return fail(fmt.Errorf("%w: %s: undecodable entry frame at offset %d",
					ErrGroupLogCorrupt, path, off))
			}
			if e.Index != uint64(len(l.entries))+1 {
				return fail(fmt.Errorf("%w: %s: entry index gap (have %d, next frame is %d)",
					ErrGroupLogCorrupt, path, len(l.entries), e.Index))
			}
			l.offsets = append(l.offsets, int64(off))
			l.entries = append(l.entries, e)
			l.frames = append(l.frames, append([]byte(nil), data[off:off+n]...))
			off += n
		}
		validLen = int64(off)
	}
	if validLen < int64(len(data)) {
		if err := lockF.Truncate(validLen); err != nil {
			return fail(fmt.Errorf("ledgerd: truncating torn group log tail %s: %w", path, err))
		}
	}
	l.size = validLen

	if l.w, err = openWriter(path); err != nil {
		return fail(fmt.Errorf("ledgerd: opening group log writer %s: %w", path, err))
	}
	if validLen == 0 {
		if _, err := l.w.Write([]byte(groupLogMagic)); err == nil {
			err = l.w.Sync()
		}
		if err != nil {
			l.w.Close()
			return fail(fmt.Errorf("ledgerd: writing group log magic %s: %w", path, err))
		}
		l.size = int64(len(groupLogMagic))
	}
	return l, nil
}

// len returns the log length (the last entry's index).
func (l *groupLog) len() uint64 { return uint64(len(l.entries)) }

// lastTerm returns the last entry's term (0 for an empty log).
func (l *groupLog) lastTerm() uint64 {
	if len(l.entries) == 0 {
		return 0
	}
	return l.entries[len(l.entries)-1].Term
}

// termAt returns entry i's term (1-based; 0 for index 0).
func (l *groupLog) termAt(i uint64) uint64 {
	if i == 0 {
		return 0
	}
	return l.entries[i-1].Term
}

// entry returns entry i (1-based).
func (l *groupLog) entry(i uint64) groupEntry { return l.entries[i-1] }

// frame returns entry i's raw frame bytes (1-based).
func (l *groupLog) frame(i uint64) []byte { return l.frames[i-1] }

// appendEntry encodes, writes and fsyncs one locally originated entry,
// returning the frame bytes replication ships to followers.
func (l *groupLog) appendEntry(e groupEntry) ([]byte, error) {
	l.scratch = encodeEntryPayload(l.scratch[:0], e)
	frame := accountant.Frame(nil, l.scratch)
	if err := l.appendFrames([][]byte{frame}, []groupEntry{e}); err != nil {
		return nil, err
	}
	return frame, nil
}

// appendFrames writes pre-framed entries (a follower's replicated
// batch, already checksum-verified and decoded by the caller) and
// fsyncs once. The entries' indexes must continue the log densely.
func (l *groupLog) appendFrames(frames [][]byte, entries []groupEntry) error {
	if len(frames) == 0 {
		return nil
	}
	var buf []byte
	for _, f := range frames {
		buf = append(buf, f...)
	}
	if _, err := l.w.Write(buf); err != nil {
		return err
	}
	if err := l.w.Sync(); err != nil {
		return err
	}
	off := l.size
	for i, f := range frames {
		l.offsets = append(l.offsets, off)
		l.entries = append(l.entries, entries[i])
		l.frames = append(l.frames, append([]byte(nil), f...))
		off += int64(len(f))
	}
	l.size = off
	return nil
}

// truncateFrom discards entries from index i (1-based, inclusive) —
// raft conflict resolution on an uncommitted suffix. The file is
// truncated at the entry boundary and the append writer reopened.
func (l *groupLog) truncateFrom(i uint64) error {
	if i > l.len() {
		return nil
	}
	off := l.offsets[i-1]
	if err := l.w.Close(); err != nil {
		return err
	}
	if err := l.lockF.Truncate(off); err != nil {
		return err
	}
	w, err := l.openWriter(l.path)
	if err != nil {
		return err
	}
	l.w = w
	l.entries = l.entries[:i-1]
	l.frames = l.frames[:i-1]
	l.offsets = l.offsets[:i-1]
	l.size = off
	return nil
}

// close releases the writer and the flock.
func (l *groupLog) close() error {
	var errs []error
	if l.w != nil {
		if err := l.w.Sync(); err != nil {
			errs = append(errs, err)
		}
		if err := l.w.Close(); err != nil {
			errs = append(errs, err)
		}
		l.w = nil
	}
	if l.lockF != nil {
		if err := l.lockF.Close(); err != nil {
			errs = append(errs, err)
		}
		l.lockF = nil
	}
	return errors.Join(errs...)
}

// loadTerm reads the durable term (0 when the file does not exist).
func loadTerm(dir string) (uint64, error) {
	data, err := os.ReadFile(filepath.Join(dir, termFile))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("ledgerd: reading term file: %w", err)
	}
	term, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("ledgerd: malformed term file: %v", err)
	}
	return term, nil
}

// storeTerm durably persists a term BEFORE any reply that depends on it
// (a vote grant, an append ack at that term): temp + fsync + rename +
// dir fsync, the same discipline as the single-node epoch file. A term
// write is this node's one vote for that term — losing it to a crash
// could elect two primaries for the same term.
func storeTerm(dir string, term uint64) error {
	path := filepath.Join(dir, termFile)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ledgerd: writing term file: %w", err)
	}
	if _, err := f.WriteString(strconv.FormatUint(term, 10) + "\n"); err == nil {
		err = f.Sync()
	}
	if errClose := f.Close(); err == nil {
		err = errClose
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ledgerd: writing term file: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ledgerd: publishing term file: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}
