package datagen

import (
	"sort"
	"testing"

	"repro/internal/bipartite"
)

func sortedEdges(edges []bipartite.Edge) []bipartite.Edge {
	out := append([]bipartite.Edge(nil), edges...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Left != out[j].Left {
			return out[i].Left < out[j].Left
		}
		return out[i].Right < out[j].Right
	})
	return out
}

// TestStreamMatchesGenerate: the chunked stream must emit exactly the
// edge set Generate builds its graph from — same seed, same dedup and
// fallback draws — and replay it identically after Reset.
func TestStreamMatchesGenerate(t *testing.T) {
	t.Parallel()
	cfg := Config{
		Name: "stream", NumLeft: 500, NumRight: 700, NumEdges: 6000,
		LeftZipf: 1.9, RightZipf: 2.8, Seed: 11,
	}
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := bipartite.ReadAllEdges(s)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Edges() // sorted left-major by construction
	gotSorted := sortedEdges(got)
	if len(gotSorted) != len(want) {
		t.Fatalf("stream emitted %d edges, graph has %d", len(gotSorted), len(want))
	}
	for i := range want {
		if gotSorted[i] != want[i] {
			t.Fatalf("edge %d: stream %v, graph %v", i, gotSorted[i], want[i])
		}
	}

	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	replay, err := bipartite.ReadAllEdges(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != len(got) {
		t.Fatalf("replay emitted %d edges, first pass %d", len(replay), len(got))
	}
	for i := range got {
		if replay[i] != got[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, replay[i], got[i])
		}
	}

	nl, nr, known := s.Sides()
	if !known || int(nl) != cfg.NumLeft || int(nr) != cfg.NumRight {
		t.Fatalf("Sides = %d,%d,%v, want %d,%d,true", nl, nr, known, cfg.NumLeft, cfg.NumRight)
	}
}

// TestStreamDenseFallback exercises the uniform-fallback path (a dense
// target forces long duplicate runs) and still matches Generate.
func TestStreamDenseFallback(t *testing.T) {
	t.Parallel()
	cfg := Config{
		Name: "dense", NumLeft: 12, NumRight: 14, NumEdges: 150,
		LeftZipf: 2.5, RightZipf: 2.5, Seed: 5,
	}
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := bipartite.ReadAllEdges(s)
	if err != nil {
		t.Fatal(err)
	}
	gotSorted := sortedEdges(got)
	want := g.Edges()
	if len(gotSorted) != len(want) {
		t.Fatalf("stream emitted %d edges, graph has %d", len(gotSorted), len(want))
	}
	for i := range want {
		if gotSorted[i] != want[i] {
			t.Fatalf("edge %d: stream %v, graph %v", i, gotSorted[i], want[i])
		}
	}
}

// TestStreamRejectsBadConfigs mirrors Generate's validation and the
// labels restriction.
func TestStreamRejectsBadConfigs(t *testing.T) {
	t.Parallel()
	if _, err := NewStream(Config{NumLeft: 0, NumRight: 1, LeftZipf: 2, RightZipf: 2}); err == nil {
		t.Fatal("want validation error")
	}
	cfg := DBLPTiny(1)
	cfg.Labels = true
	if _, err := NewStream(cfg); err == nil {
		t.Fatal("want error for labels on the streamed path")
	}
}

// TestEdgeListMatchesStream: the materialized list equals one full stream
// pass and reports the declared sides.
func TestEdgeListMatchesStream(t *testing.T) {
	t.Parallel()
	cfg := DBLPTiny(9)
	list, nl, nr, err := EdgeList(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if int(nl) != cfg.NumLeft || int(nr) != cfg.NumRight {
		t.Fatalf("sides %d,%d, want %d,%d", nl, nr, cfg.NumLeft, cfg.NumRight)
	}
	if len(list) != cfg.NumEdges {
		t.Fatalf("list has %d edges, want %d", len(list), cfg.NumEdges)
	}
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := bipartite.ReadAllEdges(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range list {
		if list[i] != streamed[i] {
			t.Fatalf("EdgeList diverges from stream at %d", i)
		}
	}
}
