package accountant

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/dp"
)

// RDPAccountant tracks cumulative privacy loss in Rényi differential
// privacy at a fixed grid of orders, the composition machinery modern DP
// systems use for Gaussian-heavy workloads: RDP composes by simple
// addition per order, and converts to (ε, δ)-DP at the end via
//
//	ε(δ) = min over orders α of  ε_RDP(α) + ln(1/δ)/(α−1).
//
// For many Gaussian releases this is substantially tighter than the
// advanced composition theorem (see the package tests for the crossover).
// It is safe for concurrent use.
type RDPAccountant struct {
	mu     sync.Mutex
	orders []float64
	eps    []float64
	count  int
}

// DefaultRDPOrders returns the standard order grid (1+small fractions
// through 64), dense at low orders where small-δ conversions land.
func DefaultRDPOrders() []float64 {
	orders := []float64{1.25, 1.5, 1.75, 2, 2.5, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32, 48, 64}
	return append([]float64(nil), orders...)
}

// NewRDPAccountant returns an accountant over the given orders (nil uses
// DefaultRDPOrders). Orders must all be > 1.
func NewRDPAccountant(orders []float64) (*RDPAccountant, error) {
	if orders == nil {
		orders = DefaultRDPOrders()
	}
	if len(orders) == 0 {
		return nil, fmt.Errorf("accountant: rdp needs at least one order")
	}
	for _, a := range orders {
		if !(a > 1) || math.IsInf(a, 0) || math.IsNaN(a) {
			return nil, fmt.Errorf("accountant: rdp order %v must be > 1 and finite", a)
		}
	}
	return &RDPAccountant{
		orders: append([]float64(nil), orders...),
		eps:    make([]float64, len(orders)),
	}, nil
}

// AddGaussian records one Gaussian release with noise scale sigma and L2
// sensitivity. The Gaussian mechanism is (α, α·Δ²/(2σ²))-RDP for every
// α > 1.
func (a *RDPAccountant) AddGaussian(sigma, l2Sensitivity float64) error {
	if !(sigma > 0) || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return fmt.Errorf("accountant: rdp gaussian sigma %v must be > 0", sigma)
	}
	if !(l2Sensitivity >= 0) || math.IsInf(l2Sensitivity, 0) {
		return fmt.Errorf("accountant: rdp gaussian sensitivity %v must be >= 0", l2Sensitivity)
	}
	base := l2Sensitivity * l2Sensitivity / (2 * sigma * sigma)
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, order := range a.orders {
		a.eps[i] += order * base
	}
	a.count++
	return nil
}

// AddPure records one pure ε-DP release. Rényi divergence is bounded by
// the max divergence, so an ε-DP mechanism is (α, ε)-RDP for every α; the
// tighter Bun–Steinke bound min(ε, 2αε²) is used where it helps.
func (a *RDPAccountant) AddPure(epsilon float64) error {
	if !(epsilon > 0) || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		return fmt.Errorf("accountant: rdp pure epsilon %v must be > 0", epsilon)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, order := range a.orders {
		bound := epsilon
		if quad := 2 * order * epsilon * epsilon; quad < bound {
			bound = quad
		}
		a.eps[i] += bound
	}
	a.count++
	return nil
}

// Count returns how many releases have been recorded.
func (a *RDPAccountant) Count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.count
}

// Epsilons returns a copy of the per-order cumulative RDP ε values,
// aligned with Orders.
func (a *RDPAccountant) Epsilons() []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]float64(nil), a.eps...)
}

// Orders returns a copy of the order grid.
func (a *RDPAccountant) Orders() []float64 {
	return append([]float64(nil), a.orders...)
}

// ToApproxDP converts the accumulated RDP guarantee to (ε, δ)-DP, taking
// the best order.
func (a *RDPAccountant) ToApproxDP(delta float64) (dp.Params, error) {
	if !(delta > 0 && delta < 1) {
		return dp.Params{}, fmt.Errorf("accountant: rdp conversion delta %v must be in (0,1)", delta)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	best := math.Inf(1)
	for i, order := range a.orders {
		candidate := a.eps[i] + math.Log(1/delta)/(order-1)
		if candidate < best {
			best = candidate
		}
	}
	return dp.Params{Epsilon: best, Delta: delta}, nil
}

// GaussianSigmaForBudget inverts the accountant for the uniform case: the
// smallest σ (per unit sensitivity) such that k Gaussian releases compose
// to at most (epsTotal, delta) under RDP. Solved by bisection on σ.
func GaussianSigmaForBudget(epsTotal, delta float64, k int) (float64, error) {
	if !(epsTotal > 0) || k <= 0 || !(delta > 0 && delta < 1) {
		return 0, fmt.Errorf("accountant: invalid rdp budget (eps=%v, delta=%v, k=%d)", epsTotal, delta, k)
	}
	epsFor := func(sigma float64) float64 {
		acc, err := NewRDPAccountant(nil)
		if err != nil {
			return math.Inf(1)
		}
		for i := 0; i < k; i++ {
			if err := acc.AddGaussian(sigma, 1); err != nil {
				return math.Inf(1)
			}
		}
		p, err := acc.ToApproxDP(delta)
		if err != nil {
			return math.Inf(1)
		}
		return p.Epsilon
	}
	lo, hi := 1e-3, 1.0
	for epsFor(hi) > epsTotal {
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("accountant: failed to bracket sigma for eps=%v k=%d", epsTotal, k)
		}
	}
	for epsFor(lo) < epsTotal && lo > 1e-9 {
		lo /= 2
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if epsFor(mid) > epsTotal {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}
