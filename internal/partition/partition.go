// Package partition implements Phase 1 of the paper's disclosure pipeline:
// the specialization step that splits a node side in two, selected through
// the exponential mechanism so the split itself is differentially private.
//
// A bisector sees only an ordered slice of per-item weights (each item is a
// node of the cell being specialized; its weight is the number of
// associations it contributes to the cell) and chooses a cut index k: items
// [0,k) form the first subgroup and [k,n) the second. The private bisector
// scores each cut by edge balance — utility(k) = −|S_k − (S_n − S_k)| where
// S_k is the prefix weight sum — and samples a cut through the exponential
// mechanism. Adding or removing a single association changes any prefix sum
// by at most 1, so the balance utility has sensitivity 1.
//
// Non-private baselines (deterministic balanced cut, uniform random cut,
// midpoint cut) support ablation A3 in DESIGN.md.
package partition

import (
	"errors"
	"fmt"

	"repro/internal/dp"
	"repro/internal/rng"
)

// Errors returned by bisectors.
var (
	// ErrTooSmall reports a cell with fewer than two items, which cannot
	// be split. Callers treat it as "stop specializing this branch".
	ErrTooSmall = errors.New("partition: fewer than two items to bisect")
	// ErrNegativeWeight reports an item with a negative weight.
	ErrNegativeWeight = errors.New("partition: item weights must be non-negative")
)

// Bisector chooses a cut index in [1, n-1] for a weighted item sequence.
type Bisector interface {
	// Bisect returns the cut index for the given per-item weights. The
	// weights slice is read-only: implementations must not modify or
	// retain it — hierarchy.Build hands bisectors a view of live internal
	// state on its hot path.
	Bisect(weights []int64) (int, error)
	// Name identifies the strategy in experiment output.
	Name() string
}

// PrivacyConsumer is implemented by bisectors that spend privacy budget
// on every cut. Callers that meter Phase-1 spending (hierarchy.Build's
// private-cut counter) check for this interface instead of asserting a
// concrete type, so wrappers and custom private bisectors are accounted
// correctly: a wrapper should forward Private to the bisector it wraps.
type PrivacyConsumer interface {
	// Private reports whether each Bisect call consumes privacy budget.
	Private() bool
}

// validate rejects degenerate inputs shared by all bisectors.
func validate(weights []int64) error {
	if len(weights) < 2 {
		return fmt.Errorf("%w (n=%d)", ErrTooSmall, len(weights))
	}
	for i, w := range weights {
		if w < 0 {
			return fmt.Errorf("%w (item %d = %d)", ErrNegativeWeight, i, w)
		}
	}
	return nil
}

// appendBalanceUtilities appends utility(k) = -|S_k - (S_n - S_k)| for
// every cut k in [1, n-1] to dst (as float64 for the exponential
// mechanism) and returns the extended slice. Passing a reused dst[:0]
// makes the computation allocation-free in steady state.
func appendBalanceUtilities(dst []float64, weights []int64) []float64 {
	n := len(weights)
	var total int64
	for _, w := range weights {
		total += w
	}
	var prefix int64
	for k := 1; k < n; k++ {
		prefix += weights[k-1]
		imbalance := prefix - (total - prefix)
		if imbalance < 0 {
			imbalance = -imbalance
		}
		dst = append(dst, -float64(imbalance))
	}
	return dst
}

// balanceUtilities materializes a fresh utility slice; kept for tests and
// one-shot callers.
func balanceUtilities(weights []int64) []float64 {
	return appendBalanceUtilities(make([]float64, 0, len(weights)-1), weights)
}

// ExpMechBisector selects the cut through the exponential mechanism with
// the balance utility, consuming ε per invocation. It samples through
// dp.Exponential.SelectFast — the allocation-free inverse-CDF path, one
// uniform draw per cut — and reuses internal scratch buffers across
// calls, so a single ExpMechBisector is not safe for concurrent use (its
// RNG stream already is not); hierarchy.Build serializes all cut
// decisions.
type ExpMechBisector struct {
	mech *dp.Exponential
	eps  float64
	util []float64 // balance utilities, reused across Bisect calls
	prob []float64 // SelectFast scratch, reused across Bisect calls
}

var (
	_ Bisector        = (*ExpMechBisector)(nil)
	_ PrivacyConsumer = (*ExpMechBisector)(nil)
)

// NewExpMechBisector returns a private bisector spending epsilon per cut.
func NewExpMechBisector(epsilon float64, src *rng.Source) (*ExpMechBisector, error) {
	mech, err := dp.NewExponential(epsilon, 1, src)
	if err != nil {
		return nil, fmt.Errorf("partition: building exponential mechanism: %w", err)
	}
	return &ExpMechBisector{mech: mech, eps: epsilon}, nil
}

// Epsilon returns the per-cut privacy cost.
func (b *ExpMechBisector) Epsilon() float64 { return b.eps }

// Bisect implements Bisector.
func (b *ExpMechBisector) Bisect(weights []int64) (int, error) {
	if err := validate(weights); err != nil {
		return 0, err
	}
	b.util = appendBalanceUtilities(b.util[:0], weights)
	idx, prob, err := b.mech.SelectFast(b.util, b.prob)
	b.prob = prob
	if err != nil {
		return 0, err
	}
	return idx + 1, nil
}

// Name implements Bisector.
func (b *ExpMechBisector) Name() string { return "expmech" }

// Private implements PrivacyConsumer.
func (b *ExpMechBisector) Private() bool { return true }

// BalancedBisector deterministically picks the most edge-balanced cut. It
// is the non-private skyline for ablation A3.
type BalancedBisector struct{}

var _ Bisector = BalancedBisector{}

// Bisect implements Bisector. It scans prefix sums directly — no utility
// slice is materialized — and keeps the earliest most-balanced cut, the
// same choice the utility-argmax formulation makes.
func (BalancedBisector) Bisect(weights []int64) (int, error) {
	if err := validate(weights); err != nil {
		return 0, err
	}
	var total int64
	for _, w := range weights {
		total += w
	}
	best, bestImbalance := 1, int64(-1)
	var prefix int64
	for k := 1; k < len(weights); k++ {
		prefix += weights[k-1]
		imbalance := 2*prefix - total
		if imbalance < 0 {
			imbalance = -imbalance
		}
		if bestImbalance < 0 || imbalance < bestImbalance {
			best, bestImbalance = k, imbalance
		}
	}
	return best, nil
}

// Name implements Bisector.
func (BalancedBisector) Name() string { return "balanced" }

// RandomBisector picks a uniform random cut; it models specialization with
// no utility signal at all.
type RandomBisector struct {
	src *rng.Source
}

var _ Bisector = (*RandomBisector)(nil)

// NewRandomBisector returns a RandomBisector drawing from src.
func NewRandomBisector(src *rng.Source) (*RandomBisector, error) {
	if src == nil {
		return nil, dp.ErrNilSource
	}
	return &RandomBisector{src: src}, nil
}

// Bisect implements Bisector.
func (b *RandomBisector) Bisect(weights []int64) (int, error) {
	if err := validate(weights); err != nil {
		return 0, err
	}
	return 1 + b.src.Intn(len(weights)-1), nil
}

// Name implements Bisector.
func (b *RandomBisector) Name() string { return "random" }

// MidpointBisector always cuts at n/2, balancing item counts rather than
// edge weight.
type MidpointBisector struct{}

var _ Bisector = MidpointBisector{}

// Bisect implements Bisector.
func (MidpointBisector) Bisect(weights []int64) (int, error) {
	if err := validate(weights); err != nil {
		return 0, err
	}
	return len(weights) / 2, nil
}

// Name implements Bisector.
func (MidpointBisector) Name() string { return "midpoint" }

// CutQuality describes how balanced a chosen cut is, for diagnostics and
// experiment reporting.
type CutQuality struct {
	// LeftWeight and RightWeight are the summed weights of the two parts.
	LeftWeight  int64
	RightWeight int64
	// Imbalance is |LeftWeight − RightWeight| / TotalWeight in [0, 1];
	// zero for a perfectly balanced cut. It is 0 when the total is 0.
	Imbalance float64
}

// Quality evaluates a cut.
func Quality(weights []int64, cut int) (CutQuality, error) {
	if err := validate(weights); err != nil {
		return CutQuality{}, err
	}
	if cut < 1 || cut >= len(weights) {
		return CutQuality{}, fmt.Errorf("partition: cut %d outside [1,%d)", cut, len(weights))
	}
	var q CutQuality
	for i, w := range weights {
		if i < cut {
			q.LeftWeight += w
		} else {
			q.RightWeight += w
		}
	}
	if total := q.LeftWeight + q.RightWeight; total > 0 {
		diff := q.LeftWeight - q.RightWeight
		if diff < 0 {
			diff = -diff
		}
		q.Imbalance = float64(diff) / float64(total)
	}
	return q, nil
}
