package repro_test

import (
	"bytes"
	"math"
	"testing"

	"repro"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/dp"
)

// TestEndToEndCuratorConsumerFlow exercises the complete curator→consumer
// path across every module: synthetic data, private specialization, noisy
// multi-level release with histograms + grouping + consistency, JSON
// publication, consumer-side load, and downstream analytics.
func TestEndToEndCuratorConsumerFlow(t *testing.T) {
	t.Parallel()
	g, err := repro.GenerateDataset(repro.PresetDBLPTiny, 77)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := repro.NewPipeline(repro.Params{Epsilon: 0.9, Delta: 1e-5},
		repro.WithRounds(6),
		repro.WithPhase1Epsilon(0.1),
		repro.WithCellHistograms(true),
		repro.WithConsistency(true),
		repro.WithGrouping(true),
		repro.WithWorkers(4),
		repro.WithSeed(31),
	)
	if err != nil {
		t.Fatal(err)
	}
	curator, err := pipe.Run(g)
	if err != nil {
		t.Fatal(err)
	}

	var published bytes.Buffer
	if err := curator.WriteJSON(&published, false); err != nil {
		t.Fatal(err)
	}
	artifact, err := repro.ReadRelease(&published)
	if err != nil {
		t.Fatal(err)
	}

	// Consumer checks the privacy claims.
	if artifact.BudgetEpsilon != 0.9 || artifact.ModeName != "per-level" {
		t.Errorf("artifact claims = %v / %s", artifact.BudgetEpsilon, artifact.ModeName)
	}
	// Histograms are consistent across levels (coarse-first order).
	if err := consistency.CheckConsistent(artifact.Cells, 1e-6); err != nil {
		t.Errorf("published cells not consistent: %v", err)
	}
	// Grouping answers membership queries.
	if artifact.Grouping == nil {
		t.Fatal("grouping missing")
	}
	lvl := artifact.Counts.Levels[len(artifact.Counts.Levels)-1].Level
	grp, err := artifact.Grouping.GroupOf(repro.Left, 5, lvl)
	if err != nil {
		t.Fatal(err)
	}
	k, err := artifact.Grouping.NumGroups(lvl)
	if err != nil {
		t.Fatal(err)
	}
	if grp < 0 || grp >= k {
		t.Errorf("group index %d outside [0,%d)", grp, k)
	}
	// Downstream analytics from noisy data alone.
	view, err := artifact.ViewFor(lvl)
	if err != nil {
		t.Fatal(err)
	}
	if view.Cells == nil {
		t.Fatal("view missing histogram")
	}
	marginals, err := repro.MarginalCounts(*view.Cells, repro.Left)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, m := range marginals {
		total += m
	}
	// Marginal total equals the histogram total exactly (both are sums
	// of the same noisy cells).
	if math.Abs(total-view.Cells.SumCells()) > 1e-6 {
		t.Errorf("marginal total %v != cell total %v", total, view.Cells.SumCells())
	}
	if _, err := repro.TopKGroups(*view.Cells, repro.Right, 2); err != nil {
		t.Fatal(err)
	}
}

// TestAllModesProduceValidArtifacts runs every budget mode and checks the
// published JSON passes consumer-side validation.
func TestAllModesProduceValidArtifacts(t *testing.T) {
	t.Parallel()
	g, err := repro.GenerateDataset(repro.PresetDBLPTiny, 3)
	if err != nil {
		t.Fatal(err)
	}
	modes := []repro.Mode{
		repro.ModePerLevel,
		repro.ModeComposedBasic,
		repro.ModeComposedAdvanced,
		repro.ModeComposedRDP,
	}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			pipe, err := repro.NewPipeline(repro.Params{Epsilon: 0.8, Delta: 1e-5},
				repro.WithRounds(5), repro.WithMode(mode), repro.WithSeed(9))
			if err != nil {
				t.Fatal(err)
			}
			rel, err := pipe.Run(g)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := rel.WriteJSON(&buf, false); err != nil {
				t.Fatal(err)
			}
			if _, err := repro.ReadRelease(&buf); err != nil {
				t.Fatalf("mode %v artifact invalid: %v", mode, err)
			}
		})
	}
}

// TestMechanismsProduceValidArtifacts covers the noise-mechanism options
// end to end.
func TestMechanismsProduceValidArtifacts(t *testing.T) {
	t.Parallel()
	g, err := repro.GenerateDataset(repro.PresetDBLPTiny, 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		budget repro.Params
		mech   repro.NoiseMechanism
	}{
		{name: "gaussian", budget: repro.Params{Epsilon: 0.8, Delta: 1e-5}, mech: repro.MechGaussian},
		{name: "laplace pure", budget: repro.Params{Epsilon: 2}, mech: repro.MechLaplace},
		{name: "geometric pure", budget: repro.Params{Epsilon: 0.8}, mech: repro.MechGeometric},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			pipe, err := repro.NewPipeline(tc.budget,
				repro.WithRounds(5), repro.WithMechanism(tc.mech), repro.WithSeed(10))
			if err != nil {
				t.Fatal(err)
			}
			rel, err := pipe.Run(g)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := rel.WriteJSON(&buf, false); err != nil {
				t.Fatal(err)
			}
			if _, err := repro.ReadRelease(&buf); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFigureShapeInvariants asserts, deterministically via expected RER,
// the two monotonicity properties Figure 1's story depends on: error
// falls with εg and rises with level.
func TestFigureShapeInvariants(t *testing.T) {
	t.Parallel()
	g, err := repro.GenerateDataset(repro.PresetDBLPTiny, 5)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := repro.NewPipeline(repro.Params{Epsilon: 0.5, Delta: 1e-5},
		repro.WithRounds(6), repro.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := pipe.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	tree := rel.Tree()
	grid := []float64{0.1, 0.3, 0.5, 0.7, 0.999}
	levels := []int{0, 1, 2, 3, 4}
	prevByLevel := make([]float64, len(levels))
	for i := range prevByLevel {
		prevByLevel[i] = math.Inf(1)
	}
	for _, eps := range grid {
		var prevLevelRER float64 = -1
		for li, lvl := range levels {
			exp, err := core.ExpectedRER(tree, lvl, dp.Params{Epsilon: eps, Delta: 1e-5},
				core.ModelCells, core.CalibrationClassical)
			if err != nil {
				t.Fatal(err)
			}
			if exp > prevByLevel[li] {
				t.Errorf("level %d: RER rose with eps at %v", lvl, eps)
			}
			prevByLevel[li] = exp
			if exp < prevLevelRER {
				t.Errorf("eps %v: RER fell from level %d to %d", eps, lvl-1, lvl)
			}
			prevLevelRER = exp
		}
	}
}
