// Package core implements the paper's primary contribution: g-group
// differential privacy over multi-level association graphs.
//
// Definitions (paper §II):
//
//   - Group-level adjacent datasets (Def. 3): D1 = D2 ∪ Gi for some group
//     Gi of a fixed partition G of the record universe.
//   - g-group differential privacy (Def. 4): a randomized algorithm A is
//     εg-group-DP if Pr[A(D1)=S] ≤ e^{εg}·Pr[A(D2)=S] for all group-level
//     adjacent D1, D2.
//
// For a counting query, removing an entire group changes the answer by at
// most the largest group's record count, so calibrating a Gaussian (or
// Laplace) mechanism to sensitivity Δℓ = max group size at level ℓ yields
// εg-group DP at that level. This package computes those sensitivities
// from a hierarchy.Tree under two group semantics (cells and node groups,
// DESIGN.md §2), calibrates the paper's Phase-2 Gaussian noise, and
// produces single-level and multi-level releases.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/dp"
	"repro/internal/hierarchy"
	"repro/internal/rng"
)

// GroupModel selects the group-adjacency semantics.
type GroupModel int

// Group models.
//
// ModelCells (primary): groups are the level's cells — crossings of left
// and right node ranges; removing a group removes exactly its records.
//
// ModelNodeGroups (ablation A4): groups are the level's single-side node
// ranges; removing a group removes every association incident to its
// nodes.
//
// ModelIndividual: classical record-level DP (sensitivity 1) regardless of
// level; the paper's "level 0 is the individual user level".
const (
	ModelCells GroupModel = iota + 1
	ModelNodeGroups
	ModelIndividual
)

// String implements fmt.Stringer.
func (m GroupModel) String() string {
	switch m {
	case ModelCells:
		return "cells"
	case ModelNodeGroups:
		return "node-groups"
	case ModelIndividual:
		return "individual"
	default:
		return fmt.Sprintf("GroupModel(%d)", int(m))
	}
}

// Valid reports whether m is a known model.
func (m GroupModel) Valid() bool {
	return m == ModelCells || m == ModelNodeGroups || m == ModelIndividual
}

// Calibration selects how the Phase-2 Gaussian noise scale is derived
// from (εg, δ) and the sensitivity.
type Calibration int

// Calibrations. CalibrationClassical is the Dwork–Roth bound the paper
// cites (requires εg < 1, exactly the range swept in Figure 1);
// CalibrationAnalytic is the exact Balle–Wang bound, valid for every
// εg > 0 and strictly tighter (ablation A2).
const (
	CalibrationClassical Calibration = iota + 1
	CalibrationAnalytic
)

// String implements fmt.Stringer.
func (c Calibration) String() string {
	switch c {
	case CalibrationClassical:
		return "classical"
	case CalibrationAnalytic:
		return "analytic"
	default:
		return fmt.Sprintf("Calibration(%d)", int(c))
	}
}

// Valid reports whether c is a known calibration.
func (c Calibration) Valid() bool {
	return c == CalibrationClassical || c == CalibrationAnalytic
}

// Errors returned by this package.
var (
	ErrNilTree     = errors.New("core: nil hierarchy tree")
	ErrBadModel    = errors.New("core: unknown group model")
	ErrBadCalib    = errors.New("core: unknown calibration")
	ErrEmptyLevels = errors.New("core: no levels requested")
)

// GroupUniverse describes the group partition at one level under one
// model — the G that Definitions 3 and 4 quantify over.
type GroupUniverse struct {
	Level     int        `json:"level"`
	Model     GroupModel `json:"-"`
	ModelName string     `json:"model"`
	// NumGroups is the number of groups in the partition.
	NumGroups int `json:"num_groups"`
	// MaxGroupRecords is the largest group's record count — the
	// count-query sensitivity at this level.
	MaxGroupRecords int64 `json:"max_group_records"`
	// TotalRecords is the number of records in the dataset.
	TotalRecords int64 `json:"total_records"`
}

// Universe computes the group universe of a level under a model.
func Universe(t *hierarchy.Tree, level int, model GroupModel) (GroupUniverse, error) {
	if t == nil {
		return GroupUniverse{}, ErrNilTree
	}
	if !model.Valid() {
		return GroupUniverse{}, fmt.Errorf("%w: %d", ErrBadModel, int(model))
	}
	u := GroupUniverse{
		Level:        level,
		Model:        model,
		ModelName:    model.String(),
		TotalRecords: t.NumEdges(),
	}
	switch model {
	case ModelCells:
		n, err := t.NumCells(level)
		if err != nil {
			return GroupUniverse{}, err
		}
		max, err := t.MaxCellEdges(level)
		if err != nil {
			return GroupUniverse{}, err
		}
		u.NumGroups, u.MaxGroupRecords = n, max
	case ModelNodeGroups:
		n, err := t.NumSideGroups(level)
		if err != nil {
			return GroupUniverse{}, err
		}
		max, err := t.MaxSideGroupIncidentEdges(level)
		if err != nil {
			return GroupUniverse{}, err
		}
		u.NumGroups, u.MaxGroupRecords = 2*n, max
	case ModelIndividual:
		// Validate the level exists, then report record-level granularity.
		if _, err := t.DepthOfLevel(level); err != nil {
			return GroupUniverse{}, err
		}
		u.NumGroups = int(t.NumEdges())
		u.MaxGroupRecords = 1
		if u.TotalRecords == 0 {
			u.MaxGroupRecords = 0
		}
	}
	return u, nil
}

// Sensitivity returns the sensitivity of the association-count query at a
// level under a model: the largest group's record count. Removing a group
// changes the count by exactly that many records (cells), at most that
// many (node groups), or one record (individual). For a scalar count the
// L1 and L2 sensitivities coincide.
func Sensitivity(t *hierarchy.Tree, level int, model GroupModel) (int64, error) {
	u, err := Universe(t, level, model)
	if err != nil {
		return 0, err
	}
	return u.MaxGroupRecords, nil
}

// Sigma calibrates the Phase-2 Gaussian noise scale for the given budget
// and sensitivity. A zero sensitivity (empty dataset) needs no noise.
func Sigma(p dp.Params, sensitivity int64, calib Calibration) (float64, error) {
	if !calib.Valid() {
		return 0, fmt.Errorf("%w: %d", ErrBadCalib, int(calib))
	}
	if sensitivity < 0 {
		return 0, fmt.Errorf("core: negative sensitivity %d", sensitivity)
	}
	if sensitivity == 0 {
		return 0, nil
	}
	switch calib {
	case CalibrationAnalytic:
		return dp.AnalyticGaussianSigma(p, float64(sensitivity))
	default:
		return dp.ClassicalGaussianSigma(p, float64(sensitivity))
	}
}

// LevelRelease is the εg-group-DP answer to the association-count query
// at one information level — one point of the paper's Figure 1.
type LevelRelease struct {
	// Level is the protected group level (the i of I9,i).
	Level int `json:"level"`
	// Model and Calibration record how the noise was derived.
	Model       GroupModel  `json:"-"`
	Calibration Calibration `json:"-"`
	ModelName   string      `json:"model"`
	CalibName   string      `json:"calibration"`
	// MechName records the noise mechanism ("gaussian" unless released
	// through ReleaseCountWith).
	MechName string `json:"mechanism,omitempty"`
	// Params is the (εg, δ) budget this release consumed.
	Params dp.Params `json:"-"`
	// Epsilon and Delta mirror Params for serialization.
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
	// Sensitivity is Δℓ, the largest group at the level.
	Sensitivity int64 `json:"sensitivity"`
	// Sigma is the calibrated Gaussian scale.
	Sigma float64 `json:"sigma"`
	// TrueCount is the exact answer. It is retained for evaluation (the
	// curator knows it); publishers serialize releases with OmitTrue.
	TrueCount int64 `json:"true_count,omitempty"`
	// NoisyCount is the released answer.
	NoisyCount float64 `json:"noisy_count"`
	// RER is the relative error rate |P−T|/T, the paper's metric.
	RER float64 `json:"rer"`
}

// ReleaseCount answers the association-count query at one level with
// εg-group DP.
func ReleaseCount(t *hierarchy.Tree, level int, p dp.Params, model GroupModel, calib Calibration, src *rng.Source) (LevelRelease, error) {
	if t == nil {
		return LevelRelease{}, ErrNilTree
	}
	if src == nil {
		return LevelRelease{}, dp.ErrNilSource
	}
	if err := p.Validate(); err != nil {
		return LevelRelease{}, err
	}
	sens, err := Sensitivity(t, level, model)
	if err != nil {
		return LevelRelease{}, err
	}
	sigma, err := Sigma(p, sens, calib)
	if err != nil {
		return LevelRelease{}, err
	}
	trueCount := t.NumEdges()
	noisy := float64(trueCount) + gaussianScalar(src, sigma)
	rel := LevelRelease{
		Level: level, Model: model, Calibration: calib,
		ModelName: model.String(), CalibName: calib.String(),
		Params: p, Epsilon: p.Epsilon, Delta: p.Delta,
		Sensitivity: sens, Sigma: sigma,
		TrueCount: trueCount, NoisyCount: noisy,
	}
	if trueCount > 0 {
		rel.RER = math.Abs(noisy-float64(trueCount)) / float64(trueCount)
	}
	return rel, nil
}

// gaussianScalar draws one N(0, σ²) variate through the same batched
// ziggurat sampler the histogram releases use (a one-element fill), so
// every Gaussian release path shares one noise source. σ ≤ 0 (empty
// dataset) draws nothing.
func gaussianScalar(src *rng.Source, sigma float64) float64 {
	if sigma <= 0 {
		return 0
	}
	var noise [1]float64
	src.NormalsSigma(noise[:], sigma)
	return noise[0]
}

// ExpectedRER returns the expected relative error rate of a level release
// without sampling: E|N(0,σ²)| / T = σ·√(2/π)/T. Used for forecasting and
// for cross-checking measured curves.
func ExpectedRER(t *hierarchy.Tree, level int, p dp.Params, model GroupModel, calib Calibration) (float64, error) {
	if t == nil {
		return 0, ErrNilTree
	}
	sens, err := Sensitivity(t, level, model)
	if err != nil {
		return 0, err
	}
	sigma, err := Sigma(p, sens, calib)
	if err != nil {
		return 0, err
	}
	total := t.NumEdges()
	if total == 0 {
		return 0, nil
	}
	return sigma * math.Sqrt(2/math.Pi) / float64(total), nil
}

// CellRelease is the εg-group-DP release of a level's full cell histogram
// — the "noise injected into the subgraphs induced by each group level"
// of the paper's Phase 2.
type CellRelease struct {
	Level       int         `json:"level"`
	Model       GroupModel  `json:"-"`
	Calibration Calibration `json:"-"`
	// ModelName and CalibName serialize the provenance the enum fields
	// above cannot (they are json:"-"), mirroring LevelRelease; published
	// cell histograms carry how their noise was derived.
	ModelName   string    `json:"model"`
	CalibName   string    `json:"calibration"`
	Params      dp.Params `json:"-"`
	Epsilon     float64   `json:"epsilon"`
	Delta       float64   `json:"delta"`
	Sensitivity int64     `json:"sensitivity"`
	Sigma       float64   `json:"sigma"`
	// Counts holds the noisy per-cell record counts, row-major over the
	// (k × k) cell grid of the level.
	Counts []float64 `json:"counts"`
	// SideGroups is k, the number of node groups per side.
	SideGroups int `json:"side_groups"`
	// MechName names the noise mechanism when it is not the default
	// Gaussian ("laplace", "geometric"); empty means Gaussian, keeping
	// Gaussian artifacts byte-stable across mechanism additions.
	MechName string `json:"mechanism,omitempty"`
}

// ReleaseCells releases the noisy per-cell histogram of a level.
//
// Under cell adjacency, removing one group Gi changes only coordinate i of
// the histogram, by |Gi| records, so the histogram's L2 sensitivity equals
// the count query's: Δℓ = max cell size. Per-coordinate Gaussian noise at
// that scale therefore gives εg-group DP for the whole histogram.
func ReleaseCells(t *hierarchy.Tree, level int, p dp.Params, calib Calibration, src *rng.Source) (CellRelease, error) {
	var rel CellRelease
	if err := ReleaseCellsInto(&rel, t, level, p, calib, src); err != nil {
		return CellRelease{}, err
	}
	return rel, nil
}

// ReleaseCellsInto is ReleaseCells writing into dst, reusing dst.Counts'
// capacity — the release engine's hot path: a caller looping releases
// (experiment trials, repeated queries at one level) passes the same dst
// every iteration and the per-release allocations drop to zero. The
// level's noise comes from chunked batched ziggurat fills
// (rng.Source.NormalsSigma) on per-chunk forked streams instead of one
// scalar Normal call per cell; the output distribution is the same
// N(count, σ²) per coordinate.
func ReleaseCellsInto(dst *CellRelease, t *hierarchy.Tree, level int, p dp.Params, calib Calibration, src *rng.Source) error {
	return ReleaseCellsWorkersInto(dst, t, level, p, calib, src, 1)
}

// ReleaseCellsWorkersInto is ReleaseCellsInto with the noise pass
// sharded across workers goroutines at noiseChunk granularity. Each
// chunk draws from its own stream derived by index from one fork point
// (rng.Source.Fork), so the released histogram is bit-identical for
// EVERY workers value — parallelism is purely a wall-clock knob, never
// a replay change. workers < 2 (or a release smaller than two chunks)
// runs on the calling goroutine.
func ReleaseCellsWorkersInto(dst *CellRelease, t *hierarchy.Tree, level int, p dp.Params, calib Calibration, src *rng.Source, workers int) error {
	if t == nil {
		return ErrNilTree
	}
	if src == nil {
		return dp.ErrNilSource
	}
	if err := p.Validate(); err != nil {
		return err
	}
	sens, err := Sensitivity(t, level, ModelCells)
	if err != nil {
		return err
	}
	sigma, err := Sigma(p, sens, calib)
	if err != nil {
		return err
	}
	return releaseCellsResolved(dst, t, level, sens, sigma, calib, calib.String(), p, src, workers)
}

// releaseCellsResolved assembles a cell release once the sensitivity and
// noise scale are settled — the tail shared by the calibrated
// (ReleaseCellsWorkersInto) and externally scaled
// (ReleaseCellsSigmaWorkersInto) paths, so the release shape is defined
// in exactly one place.
func releaseCellsResolved(dst *CellRelease, t *hierarchy.Tree, level int, sens int64, sigma float64, calib Calibration, calibName string, p dp.Params, src *rng.Source, workers int) error {
	counts, err := t.LevelCellCountsView(level)
	if err != nil {
		return err
	}
	k, err := t.NumSideGroups(level)
	if err != nil {
		return err
	}
	counts32, _ := t.LevelCellCounts32View(level)
	*dst = CellRelease{
		Level: level, Model: ModelCells, Calibration: calib,
		ModelName: ModelCells.String(), CalibName: calibName,
		Params: p, Epsilon: p.Epsilon, Delta: p.Delta,
		Sensitivity: sens, Sigma: sigma,
		Counts: noisyCells(dst.Counts, counts, counts32, sigma, src, workers), SideGroups: k,
	}
	return nil
}

// noiseChunk is the chunk grid of the noise pass: a multiple of
// rng.ZigBlock sized so one chunk's noise window and its counts stay
// L1/L2-resident while the add runs (without chunking, a 4^9-cell
// release streams the 2 MB histogram out of cache during the fill and
// drags it — plus the count matrix — back through memory for the add).
// Each chunk draws from its own fork-derived stream, which is also the
// unit the parallel release shards across cores: the grid is a pure
// function of the histogram length, so the released values cannot
// depend on the worker count.
const noiseChunk = 16 * rng.ZigBlock

// noiseChunkCount returns the number of chunks the grid assigns to an
// n-cell noise pass. A final fragment shorter than one ziggurat block
// is absorbed into the last chunk (a sub-block fill would run the
// scalar sampler path; absorbing keeps every chunk on the blocked
// path), so the last chunk's length is in [noiseChunk,
// noiseChunk+rng.ZigBlock) — or all of n when only one chunk fits.
func noiseChunkCount(n int) int {
	full, rem := n/noiseChunk, n%noiseChunk
	switch {
	case full == 0:
		return 1
	case rem >= rng.ZigBlock:
		return full + 1
	default:
		return full
	}
}

// noisyCells fills buf (grown if its capacity is short) with
// counts + N(0, σ²) noise: the histogram is cut into noiseChunk-sized
// windows, each drawing its noise from the chunk-indexed child of one
// fork point on src (rng.Fork) with the counts add fused into the fill
// window while it is cache-resident. When counts32 is non-nil (the
// level's counts all fit int32 — hierarchy.Tree.LevelCellCounts32View)
// the add pass reads 4-byte counts, halving its memory traffic.
// workers > 1 shards the chunks across goroutines; because every
// chunk's stream depends only on (fork point, chunk index), the result
// is bit-identical for every worker count. σ = 0 (empty dataset)
// copies the counts unchanged and draws nothing.
func noisyCells(buf []float64, counts []int64, counts32 []int32, sigma float64, src *rng.Source, workers int) []float64 {
	if cap(buf) < len(counts) {
		buf = make([]float64, len(counts))
	} else {
		buf = buf[:len(counts)]
	}
	if sigma <= 0 {
		for i, c := range counts {
			buf[i] = float64(c)
		}
		return buf
	}
	fork := src.Fork()
	chunks := noiseChunkCount(len(buf))
	if workers > chunks {
		workers = chunks
	}
	if workers < 2 {
		var cs rng.Source
		for c := 0; c < chunks; c++ {
			fork.StreamTo(&cs, uint64(c))
			noisyChunk(buf, counts, counts32, sigma, &cs, c, chunks)
		}
		return buf
	}
	noisyCellsParallel(buf, counts, counts32, sigma, fork, chunks, workers)
	return buf
}

// noisyCellsParallel is noisyCells' multi-worker tail, kept out of
// noisyCells so the goroutine closure does not force the single-worker
// path's locals to the heap (the serving layer's steady-state queries
// are allocation-free through workers == 1).
func noisyCellsParallel(buf []float64, counts []int64, counts32 []int32, sigma float64, fork rng.Fork, chunks, workers int) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cs rng.Source
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				fork.StreamTo(&cs, uint64(c))
				noisyChunk(buf, counts, counts32, sigma, &cs, c, chunks)
			}
		}()
	}
	wg.Wait()
}

// noisyChunk fills chunk c of the grid: one batched ziggurat fill on the
// chunk's own stream, then the counts add over the still-resident
// window through the narrow (int32) counts when available.
func noisyChunk(buf []float64, counts []int64, counts32 []int32, sigma float64, cs *rng.Source, c, chunks int) {
	off := c * noiseChunk
	end := off + noiseChunk
	if c == chunks-1 {
		end = len(buf)
	}
	window := buf[off:end]
	cs.NormalsSigma(window, sigma)
	if counts32 != nil {
		for i, v := range counts32[off:end] {
			window[i] += float64(v)
		}
	} else {
		for i, v := range counts[off:end] {
			window[i] += float64(v)
		}
	}
}

// SumCells returns the total association count implied by a cell release
// (the sum of its noisy cells).
func (c CellRelease) SumCells() float64 {
	var sum float64
	for _, v := range c.Counts {
		sum += v
	}
	return sum
}

// MultiLevelRelease is the full multi-level disclosure: one count release
// per requested information level.
type MultiLevelRelease struct {
	// MaxLevel is the hierarchy root level (9 in the paper's setup).
	MaxLevel int `json:"max_level"`
	// Levels holds the per-level releases, indexed by request order.
	Levels []LevelRelease `json:"levels"`
}

// ReleaseLevels produces count releases for the given levels. Each level
// consumes the full budget p (the paper's per-level reading: a level-i
// user receives only release i, and releases to different tiers compose
// in parallel). Budget-split modes live in internal/release.
func ReleaseLevels(t *hierarchy.Tree, levels []int, p dp.Params, model GroupModel, calib Calibration, src *rng.Source) (MultiLevelRelease, error) {
	if t == nil {
		return MultiLevelRelease{}, ErrNilTree
	}
	if len(levels) == 0 {
		return MultiLevelRelease{}, ErrEmptyLevels
	}
	out := MultiLevelRelease{MaxLevel: t.MaxLevel(), Levels: make([]LevelRelease, 0, len(levels))}
	for _, lvl := range levels {
		rel, err := ReleaseCount(t, lvl, p, model, calib, src)
		if err != nil {
			return MultiLevelRelease{}, fmt.Errorf("core: level %d: %w", lvl, err)
		}
		out.Levels = append(out.Levels, rel)
	}
	return out, nil
}

// ForLevel returns the release protecting the given group level.
func (m MultiLevelRelease) ForLevel(level int) (LevelRelease, bool) {
	for _, r := range m.Levels {
		if r.Level == level {
			return r, true
		}
	}
	return LevelRelease{}, false
}

// OmitTrue returns a copy with the exact counts and error rates removed,
// suitable for publication to data users.
func (m MultiLevelRelease) OmitTrue() MultiLevelRelease {
	out := MultiLevelRelease{MaxLevel: m.MaxLevel, Levels: make([]LevelRelease, len(m.Levels))}
	copy(out.Levels, m.Levels)
	for i := range out.Levels {
		out.Levels[i].TrueCount = 0
		out.Levels[i].RER = 0
	}
	return out
}
