// Access levels: demonstrates the multi-level access-privilege model of
// the paper — one published artifact, different views per tier — and the
// difference between the curator-side artifact (with exact counts) and
// the publishable artifact (OmitTrue).
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
)

func main() {
	g, err := repro.GenerateDataset(repro.PresetMovies, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("movie-rating graph:", repro.ComputeStats(g))

	pipe, err := repro.NewPipeline(
		repro.Params{Epsilon: 0.9, Delta: 1e-5},
		repro.WithRounds(7),
		repro.WithPhase1Epsilon(0.05),
		repro.WithSeed(21),
	)
	if err != nil {
		log.Fatal(err)
	}
	rel, err := pipe.Run(g)
	if err != nil {
		log.Fatal(err)
	}

	tiers := []struct {
		name  string
		level int
	}{
		{name: "public (lowest privilege)", level: 5},
		{name: "registered analyst", level: 3},
		{name: "trusted partner", level: 1},
		{name: "internal auditor (highest)", level: 0},
	}
	exact := float64(g.NumEdges())
	fmt.Printf("\nexact rating count (curator only): %.0f\n\n", exact)
	for _, tier := range tiers {
		view, err := rel.ViewFor(tier.level)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s sees %9.0f ratings  (level %d, Δ=%d, off by %.2f%%)\n",
			tier.name, view.Count.NoisyCount, tier.level,
			view.Count.Sensitivity, view.Count.RER*100)
	}

	// The publishable JSON strips exact counts; the curator-side JSON
	// keeps them for utility audits.
	var buf bytes.Buffer
	if err := rel.WriteJSON(&buf, false); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npublishable artifact (first lines):")
	preview := buf.String()
	if len(preview) > 400 {
		preview = preview[:400] + "\n..."
	}
	fmt.Println(preview)
}
