package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/accountant"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dp"
)

// testConfig is the shared serving setup: budget for exactly 50
// single-debit queries (ε 1.0 / 0.02, δ 1e-4 / 2e-6).
func testConfig() Config {
	return Config{
		Budget:   dp.Params{Epsilon: 1.0, Delta: 1e-4},
		PerQuery: dp.Params{Epsilon: 0.02, Delta: 2e-6},
		Rounds:   5,
		Seed:     71,
	}
}

// testSource returns a fresh edge stream of the shared test dataset.
func testSource(t testing.TB) bipartite.EdgeSource {
	t.Helper()
	cfg := datagen.Config{
		Name: "serve-test", NumLeft: 120, NumRight: 150, NumEdges: 1800,
		LeftZipf: 1.9, RightZipf: 2.6, Seed: 5,
	}
	edges, nl, nr, err := datagen.EdgeList(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return bipartite.NewSliceSource(nl, nr, edges)
}

// openTestDataset opens a registry with one ingested dataset.
func openTestDataset(t testing.TB, cfg Config) (*Registry, *Dataset) {
	t.Helper()
	reg, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	ds, err := reg.AddDataset("tiny", testSource(t))
	if err != nil {
		t.Fatal(err)
	}
	return reg, ds
}

func TestRegistryIngestAndLevelView(t *testing.T) {
	t.Parallel()
	reg, ds := openTestDataset(t, testConfig())

	if got := ds.Stats().NumEdges; got != 1800 {
		t.Fatalf("ingested edges = %d, want 1800", got)
	}
	if ds.MaxLevel() != 5 {
		t.Fatalf("max level = %d, want 5", ds.MaxLevel())
	}
	if names := reg.Names(); len(names) != 1 || names[0] != "tiny" {
		t.Fatalf("names = %v", names)
	}

	sess := ds.SessionAt(3)
	view, err := sess.ReleaseLevel(2)
	if err != nil {
		t.Fatal(err)
	}
	k, err := ds.Tree().NumSideGroups(2)
	if err != nil {
		t.Fatal(err)
	}
	if view.Cells == nil || len(view.Cells.Counts) != k*k {
		t.Fatalf("level view histogram has %d cells, want %d", len(view.Cells.Counts), k*k)
	}
	if view.Count.Level != 2 || view.Count.Sigma <= 0 {
		t.Fatalf("level view count malformed: %+v", view.Count)
	}

	// A level view debits exactly 2×PerQuery, atomically.
	pq := reg.Config().PerQuery
	spent := ds.Spent()
	if math.Abs(spent.Epsilon-2*pq.Epsilon) > 1e-12 || math.Abs(spent.Delta-2*pq.Delta) > 1e-18 {
		t.Fatalf("spent %v after one level view, want 2×%v", spent, pq)
	}
	ops := ds.Ops()
	if len(ops) != 1 || ops[0].Label != "s3/q0/view/level2" {
		t.Fatalf("audit trail = %+v", ops)
	}

	// The histogram buffer is the session's reusable engine buffer: a
	// second query writes into the same backing array.
	first := &view.Cells.Counts[0]
	view2, err := sess.ReleaseLevel(2)
	if err != nil {
		t.Fatal(err)
	}
	if &view2.Cells.Counts[0] != first {
		t.Fatal("second level view reallocated the session's cell buffer")
	}
}

func TestSessionQueriesValidateBeforeSpending(t *testing.T) {
	t.Parallel()
	_, ds := openTestDataset(t, testConfig())
	sess := ds.NewSession()

	if _, err := sess.ReleaseLevel(99); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := sess.Marginal(2, bipartite.Side(9)); err == nil {
		t.Fatal("bad side accepted")
	}
	if _, err := sess.TopK(2, bipartite.Left, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := sess.TopK(2, bipartite.Left, 1<<20); err == nil {
		t.Fatal("oversized k accepted")
	}
	if spent := ds.Spent(); spent.Epsilon != 0 || spent.Delta != 0 {
		t.Fatalf("invalid queries spent budget: %v", spent)
	}
	if sess.Seq() != 0 {
		t.Fatalf("invalid queries advanced the stream: seq=%d", sess.Seq())
	}
}

func TestRegistryDatasetLifecycle(t *testing.T) {
	t.Parallel()
	reg, _ := openTestDataset(t, testConfig())

	if _, err := reg.AddDataset("tiny", testSource(t)); !errors.Is(err, ErrDatasetExists) {
		t.Fatalf("duplicate ingest: %v", err)
	}
	if _, err := reg.Dataset("nope"); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("unknown dataset: %v", err)
	}
	if err := reg.RemoveDataset("tiny"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Dataset("tiny"); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("removed dataset still served: %v", err)
	}
	reg.Close()
	if _, err := reg.AddDataset("post-close", testSource(t)); !errors.Is(err, ErrClosed) {
		t.Fatalf("ingest after close: %v", err)
	}
}

func TestPhase1EpsilonDebitsIngest(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.Phase1Epsilon = 0.01
	_, ds := openTestDataset(t, cfg)
	want := 2 * float64(cfg.Rounds) * cfg.Phase1Epsilon
	if spent := ds.Spent(); math.Abs(spent.Epsilon-want) > 1e-12 {
		t.Fatalf("phase-1 ingest spent ε=%v, want %v", spent.Epsilon, want)
	}
	ops := ds.Ops()
	if len(ops) != 1 || ops[0].Label != "ingest/phase1" {
		t.Fatalf("audit trail = %+v", ops)
	}

	// A budget too small for the specialization must refuse the ingest.
	tight := testConfig()
	tight.Phase1Epsilon = 1.0 // 2·5·1.0 = 10 > ε budget 1.0
	reg2, err := Open(tight)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if _, err := reg2.AddDataset("x", testSource(t)); !errors.Is(err, accountant.ErrBudgetExceeded) {
		t.Fatalf("over-budget phase 1: %v", err)
	}
	if _, err := reg2.Dataset("x"); !errors.Is(err, ErrUnknownDataset) {
		t.Fatal("failed ingest left the name registered")
	}
}

// TestConcurrentSessionsDrainLedgerExactly is the serving layer's race
// and accounting contract: N goroutine sessions hammer one dataset until
// the ledger refuses; exactly capacity queries are admitted (no
// overspend, no stranded budget), and every session's answers match a
// serial replay of the same per-session sequences — interleaving can
// change who gets budget, never what anyone's draws are.
func TestConcurrentSessionsDrainLedgerExactly(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	const sessions = 8
	const capacity = 50 // Budget / PerQuery on both components

	_, ds := openTestDataset(t, cfg)
	var admitted atomic.Int64
	results := make([][][]float64, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := ds.SessionAt(uint64(i))
			for {
				m, err := sess.Marginal(2, bipartite.Left)
				if err != nil {
					if !errors.Is(err, accountant.ErrBudgetExceeded) {
						t.Errorf("session %d: unexpected error: %v", i, err)
					}
					return
				}
				admitted.Add(1)
				// Marginal returns a view of the session's scratch, valid
				// until the next query — clone to retain.
				results[i] = append(results[i], append([]float64(nil), m...))
			}
		}(i)
	}
	wg.Wait()

	if got := admitted.Load(); got != capacity {
		t.Fatalf("admitted %d queries, want exactly %d", got, capacity)
	}
	spent, budget := ds.Spent(), ds.Budget()
	if spent.Epsilon > budget.Epsilon*(1+1e-9) || spent.Delta > budget.Delta*(1+1e-9) {
		t.Fatalf("overspend: %v > %v", spent, budget)
	}
	rem := ds.Remaining()
	if rem.Epsilon > budget.Epsilon*1e-9 || rem.Delta > budget.Delta*1e-9 {
		t.Fatalf("ledger not drained to zero: remaining %v", rem)
	}
	// Exhausted means exhausted for every query shape.
	if _, err := ds.NewSession().ReleaseLevel(1); !errors.Is(err, accountant.ErrBudgetExceeded) {
		t.Fatalf("post-drain level view: %v", err)
	}

	// Serial replay on a fresh registry: each session re-runs its own
	// admitted count in order; every answer must be bitwise identical to
	// what it got under contention.
	_, replayDS := openTestDataset(t, cfg)
	for i := 0; i < sessions; i++ {
		sess := replayDS.SessionAt(uint64(i))
		for qi, want := range results[i] {
			got, err := sess.Marginal(2, bipartite.Left)
			if err != nil {
				t.Fatalf("replay session %d query %d: %v", i, qi, err)
			}
			for gi := range want {
				if math.Float64bits(got[gi]) != math.Float64bits(want[gi]) {
					t.Fatalf("session %d query %d group %d: concurrent %v, replay %v",
						i, qi, gi, want[gi], got[gi])
				}
			}
		}
	}
}

// TestDistinctQueriesShareNoDraws is the differencing-attack
// regression: two sessions pinned to ONE stream id issue different
// queries at the same sequence number. If the per-query streams were
// keyed only by (stream, seq), both marginals below would be sums over
// the SAME noisy cell matrix — their totals would agree to float
// reordering error and a client could difference the responses to
// cancel the noise. With the query identity folded into the
// derivation, the draws are independent and the totals disagree by
// O(noise).
func TestDistinctQueriesShareNoDraws(t *testing.T) {
	t.Parallel()
	_, ds := openTestDataset(t, testConfig())

	sum := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s
	}

	left, err := ds.SessionAt(7).Marginal(2, bipartite.Left)
	if err != nil {
		t.Fatal(err)
	}
	right, err := ds.SessionAt(7).Marginal(2, bipartite.Right)
	if err != nil {
		t.Fatal(err)
	}
	// Row sums and column sums of one matrix have identical totals; with
	// independent per-query noise the two totals differ by the noise
	// scale, orders of magnitude above any float-reordering error.
	if diff := math.Abs(sum(left) - sum(right)); diff < 1e-6 {
		t.Fatalf("left/right marginal totals differ by %v — same-stream queries shared noise draws", diff)
	}

	// A marginal and a top-k on the same (stream, seq, level, side) must
	// not share cell draws either: under shared draws the top-k's full
	// ranking would be exactly the stable argsort of the other query's
	// marginal (TopKGroups ranks by the same side's marginal).
	m9, err := ds.SessionAt(9).Marginal(2, bipartite.Left)
	if err != nil {
		t.Fatal(err)
	}
	ranking, err := ds.SessionAt(9).TopK(2, bipartite.Left, len(m9))
	if err != nil {
		t.Fatal(err)
	}
	argsort := make([]int, len(m9))
	for i := range argsort {
		argsort[i] = i
	}
	sort.SliceStable(argsort, func(a, b int) bool { return m9[argsort[a]] > m9[argsort[b]] })
	same := true
	for i := range ranking {
		if ranking[i] != argsort[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("same-stream top-k ranking %v equals the marginal's argsort — shared cell draws", ranking)
	}

	// The replay contract is untouched: the SAME query at the same
	// (stream, seq) still replays bit-identically.
	replay, err := ds.SessionAt(7).Marginal(2, bipartite.Left)
	if err != nil {
		t.Fatal(err)
	}
	for i := range left {
		if math.Float64bits(replay[i]) != math.Float64bits(left[i]) {
			t.Fatalf("identical query on a shared stream did not replay: group %d %v vs %v", i, replay[i], left[i])
		}
	}
}

// TestQueryDerivationsDistinct sweeps a query-shape space and demands
// that every (seq, kind, level, side, k) tuple derives a distinct
// stream — the property the independence of same-stream queries rests
// on. Each tuple gets a fresh session at one pinned id, so the first
// draw is a pure function of the tuple.
func TestQueryDerivationsDistinct(t *testing.T) {
	t.Parallel()
	_, ds := openTestDataset(t, testConfig())
	seen := make(map[uint64]string)
	for _, kind := range []int{queryKindView, queryKindMarginal, queryKindTopK} {
		for level := 0; level <= 9; level++ {
			for _, side := range []bipartite.Side{bipartite.Left, bipartite.Right} {
				for k := 0; k <= 8; k++ {
					key := fmt.Sprintf("kind=%d level=%d side=%d k=%d", kind, level, side, k)
					first := ds.SessionAt(11).querySource(kind, level, side, k).Uint64()
					if prev, ok := seen[first]; ok {
						t.Fatalf("query stream collision: %s and %s draw the same first variate", prev, key)
					}
					seen[first] = key
				}
			}
		}
	}
	// Sequence numbers separate streams too.
	s := ds.SessionAt(11)
	s.seq = 1
	if _, ok := seen[s.querySource(queryKindView, 0, 0, 0).Uint64()]; ok {
		t.Fatal("seq=1 derivation collided with a seq=0 stream")
	}
}

// TestAutoSessionsDisjointFromPinned: auto and pinned sessions derive
// from disjoint stream domains, so a client pinning ANY id can never
// land on an auto session's noise stream — while auto ids stay small
// enough to round-trip exactly through JSON doubles.
func TestAutoSessionsDisjointFromPinned(t *testing.T) {
	t.Parallel()
	_, ds := openTestDataset(t, testConfig())
	auto := ds.NewSession()
	if auto.Pinned() {
		t.Fatal("auto session reports pinned")
	}
	if auto.Stream() != 0 {
		t.Fatalf("first auto stream id = %d, want 0", auto.Stream())
	}
	if b := ds.NewSession(); b.Stream() != 1 {
		t.Fatalf("second auto stream id = %d, want 1", b.Stream())
	}
	pinned := ds.SessionAt(auto.Stream())
	if !pinned.Pinned() || pinned.Stream() != auto.Stream() {
		t.Fatalf("pinned session = (stream %d, pinned %v)", pinned.Stream(), pinned.Pinned())
	}

	// Same numeric id, same query — different domains, different noise.
	ma, err := auto.Marginal(2, bipartite.Left)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := pinned.Marginal(2, bipartite.Left)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range ma {
		if math.Float64bits(ma[i]) != math.Float64bits(mp[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("auto and pinned sessions with one numeric id shared a noise stream")
	}

	// The audit trail tells the two id spaces apart.
	ops := ds.Ops()
	if len(ops) != 2 || ops[0].Label != "a0/q0/marginal/level2" || ops[1].Label != "s0/q0/marginal/level2" {
		t.Fatalf("audit labels = %+v", ops)
	}
}

// TestReingestRekeysSessionStreams: session streams fold in a
// fingerprint of the served data, so removing a dataset and re-adding
// DIFFERENT data under the same name derives fresh noise — a client
// cannot difference pre/post responses at one (stream, seq, query) to
// cancel the noise — while re-ingesting IDENTICAL data preserves the
// replay contract bit for bit.
func TestReingestRekeysSessionStreams(t *testing.T) {
	t.Parallel()
	reg, ds1 := openTestDataset(t, testConfig())
	m1, err := ds1.SessionAt(3).Marginal(2, bipartite.Left)
	if err != nil {
		t.Fatal(err)
	}

	// Different data, same name.
	if err := reg.RemoveDataset("tiny"); err != nil {
		t.Fatal(err)
	}
	other := datagen.Config{
		Name: "serve-test-b", NumLeft: 120, NumRight: 150, NumEdges: 1800,
		LeftZipf: 1.9, RightZipf: 2.6, Seed: 6,
	}
	edges, nl, nr, err := datagen.EdgeList(other)
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := reg.AddDataset("tiny", bipartite.NewSliceSource(nl, nr, edges))
	if err != nil {
		t.Fatal(err)
	}
	if ds2.print == ds1.print {
		t.Fatal("different data under one name share a fingerprint")
	}

	// Identical data, same name: fingerprint and replay are restored.
	if err := reg.RemoveDataset("tiny"); err != nil {
		t.Fatal(err)
	}
	ds3, err := reg.AddDataset("tiny", testSource(t))
	if err != nil {
		t.Fatal(err)
	}
	if ds3.print != ds1.print {
		t.Fatal("identical re-ingest changed the fingerprint")
	}
	m3, err := ds3.SessionAt(3).Marginal(2, bipartite.Left)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1 {
		if math.Float64bits(m3[i]) != math.Float64bits(m1[i]) {
			t.Fatalf("identical re-ingest broke replay: group %d %v vs %v", i, m3[i], m1[i])
		}
	}
}

// TestSessionReplayByteIdentical pins the full replay contract across
// registries: same seed, same dataset, same pinned stream, same query
// sequence — the serialized answers are byte-identical, and distinct
// streams draw distinct noise.
func TestSessionReplayByteIdentical(t *testing.T) {
	t.Parallel()
	transcript := func(stream uint64) []byte {
		_, ds := openTestDataset(t, testConfig())
		sess := ds.SessionAt(stream)
		var blob []byte
		view, err := sess.ReleaseLevel(2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(view)
		if err != nil {
			t.Fatal(err)
		}
		blob = append(blob, b...)
		m, err := sess.Marginal(1, bipartite.Right)
		if err != nil {
			t.Fatal(err)
		}
		b, err = json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		blob = append(blob, b...)
		topk, err := sess.TopK(2, bipartite.Left, 3)
		if err != nil {
			t.Fatal(err)
		}
		b, err = json.Marshal(topk)
		if err != nil {
			t.Fatal(err)
		}
		return append(blob, b...)
	}

	a, b := transcript(7), transcript(7)
	if string(a) != string(b) {
		t.Fatal("pinned stream did not replay byte-identical answers")
	}
	if string(a) == string(transcript(8)) {
		t.Fatal("distinct streams produced identical transcripts")
	}
}

func TestConfigValidation(t *testing.T) {
	t.Parallel()
	if _, err := Open(Config{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero config: %v", err)
	}
	bad := testConfig()
	bad.Rounds = 99
	if _, err := Open(bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bad rounds: %v", err)
	}
	bad = testConfig()
	bad.Phase1Epsilon = -1
	if _, err := Open(bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("negative phase-1 eps: %v", err)
	}
	bad = testConfig()
	bad.Model = core.GroupModel(42)
	if _, err := Open(bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bad model: %v", err)
	}

	// A per-query budget the Gaussian cell calibration can never answer
	// (δ=0) must fail Open — otherwise every query would debit the
	// ledger and THEN hit the engine error, draining budget for nothing.
	bad = testConfig()
	bad.PerQuery.Delta = 0
	if _, err := Open(bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero per-query delta: %v", err)
	}
	// The cell histogram is Gaussian-calibrated regardless of the count
	// mechanism, so a pure-DP mechanism does not lift the requirement.
	bad.Mechanism = core.MechLaplace
	if _, err := Open(bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero per-query delta under laplace: %v", err)
	}

	// PerQuery defaulting: Budget/64 on both components.
	cfg := testConfig()
	cfg.PerQuery = dp.Params{}
	reg, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	pq := reg.Config().PerQuery
	if pq.Epsilon != cfg.Budget.Epsilon/64 || pq.Delta != cfg.Budget.Delta/64 {
		t.Fatalf("defaulted per-query budget = %v", pq)
	}

	// Registry rejects empty names and nil sources.
	if _, err := reg.AddDataset("", testSource(t)); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := reg.AddDataset("ds", nil); err == nil {
		t.Fatal("nil source accepted")
	}
}

// TestConcurrentIngestLanes fans several ingests across two retained
// Builder lanes; every dataset must be independently correct.
func TestConcurrentIngestLanes(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.IngestLanes = 2
	reg, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	const n = 6
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = reg.AddDataset(fmt.Sprintf("ds%d", i), testSource(t))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	if got := len(reg.Names()); got != n {
		t.Fatalf("registry serves %d datasets, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		ds, err := reg.Dataset(fmt.Sprintf("ds%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if ds.Stats().NumEdges != 1800 {
			t.Fatalf("dataset %d has %d edges", i, ds.Stats().NumEdges)
		}
	}
}

// benchDataset opens a registry whose budget never exhausts under b.N.
// The response cache is disabled: these benchmarks (and the zero-alloc
// test) measure the steady-state compute path, where every query is a
// distinct (seq, identity) key the cache could only add insert work to;
// cache behavior has its own benchmarks.
func benchDataset(b testing.TB) *Dataset {
	b.Helper()
	cfg := Config{
		Budget:          dp.Params{Epsilon: 1e12, Delta: 0.5},
		PerQuery:        dp.Params{Epsilon: 1e-3, Delta: 1e-12},
		Rounds:          6,
		Seed:            71,
		MaxCacheEntries: -1,
	}
	_, ds := openTestDataset(b, cfg)
	return ds
}

// BenchmarkServeSessionMarginal is the serving hot path: ledger debit +
// one batched histogram release into the session's reusable buffer +
// marginal post-processing.
func BenchmarkServeSessionMarginal(b *testing.B) {
	ds := benchDataset(b)
	sess := ds.SessionAt(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Marginal(2, bipartite.Left); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeSessionLevelView serves the full level view (count +
// histogram) per iteration.
func BenchmarkServeSessionLevelView(b *testing.B) {
	ds := benchDataset(b)
	sess := ds.SessionAt(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.ReleaseLevel(3); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSteadyStateQueriesAllocationFree pins the zero-alloc query tail:
// after warm-up, Marginal and TopK perform no per-query heap
// allocations — the stream chain collapses through session scratch, the
// ledger label is assembled in a reusable buffer and copied into the
// ledger's arena, and the result vectors reuse session buffers. The
// only allocations left are the audit trail's amortized slice growth,
// which AllocsPerRun sees as a fractional average.
func TestSteadyStateQueriesAllocationFree(t *testing.T) {
	ds := benchDataset(t)
	sess := ds.SessionAt(1)
	if _, err := sess.Marginal(2, bipartite.Left); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.TopK(2, bipartite.Left, 3); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := sess.Marginal(2, bipartite.Left); err != nil {
			t.Fatal(err)
		}
	}); avg > 0.25 {
		t.Errorf("steady-state Marginal allocates %.2f objects/op, want ~0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := sess.TopK(2, bipartite.Left, 3); err != nil {
			t.Fatal(err)
		}
	}); avg > 0.25 {
		t.Errorf("steady-state TopK allocates %.2f objects/op, want ~0", avg)
	}
}

// BenchmarkServeSessionMarginalCacheHit measures the replay path: the
// query key is resident in the dataset's response cache, so serving it
// skips the ledger debit and the Phase-2 draw entirely — the acceptance
// bar is ≥10× cheaper than the compute path above.
func BenchmarkServeSessionMarginalCacheHit(b *testing.B) {
	cfg := Config{
		Budget:   dp.Params{Epsilon: 1e12, Delta: 0.5},
		PerQuery: dp.Params{Epsilon: 1e-3, Delta: 1e-12},
		Rounds:   6,
		Seed:     71,
	}
	_, ds := openTestDataset(b, cfg)
	if _, err := ds.SessionAt(1).Marginal(2, bipartite.Left); err != nil {
		b.Fatal(err)
	}
	sess := ds.SessionAt(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// White-box replay: the cache key is (domain, stream, seq,
		// identity), so rewinding seq replays the resident key without
		// paying session construction per iteration — the pure hit path.
		sess.seq = 0
		if _, err := sess.Marginal(2, bipartite.Left); err != nil {
			b.Fatal(err)
		}
	}
}
