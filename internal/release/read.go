package release

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrBadArtifact reports a release JSON that fails validation.
var ErrBadArtifact = errors.New("release: invalid artifact")

// ReadJSON parses a release artifact previously produced by WriteJSON and
// validates its internal consistency, so data users can load published
// files defensively. The curator-side tree and audit trail are not part
// of the JSON and remain nil.
func ReadJSON(r io.Reader) (*Release, error) {
	dec := json.NewDecoder(r)
	var rel Release
	if err := dec.Decode(&rel); err != nil {
		return nil, fmt.Errorf("%w: decoding: %v", ErrBadArtifact, err)
	}
	if err := validateArtifact(&rel); err != nil {
		return nil, err
	}
	return &rel, nil
}

func validateArtifact(rel *Release) error {
	if rel.Rounds < 1 {
		return fmt.Errorf("%w: rounds %d", ErrBadArtifact, rel.Rounds)
	}
	if !(rel.BudgetEpsilon > 0) {
		return fmt.Errorf("%w: budget epsilon %v", ErrBadArtifact, rel.BudgetEpsilon)
	}
	if len(rel.Counts.Levels) == 0 {
		return fmt.Errorf("%w: no level releases", ErrBadArtifact)
	}
	seen := make(map[int]bool, len(rel.Counts.Levels))
	for i, lr := range rel.Counts.Levels {
		if lr.Level < 0 || lr.Level > rel.Rounds {
			return fmt.Errorf("%w: level release %d has level %d outside [0,%d]",
				ErrBadArtifact, i, lr.Level, rel.Rounds)
		}
		if seen[lr.Level] {
			return fmt.Errorf("%w: duplicate release for level %d", ErrBadArtifact, lr.Level)
		}
		seen[lr.Level] = true
		if lr.Sensitivity < 0 {
			return fmt.Errorf("%w: level %d negative sensitivity", ErrBadArtifact, lr.Level)
		}
		if math.IsNaN(lr.NoisyCount) || math.IsInf(lr.NoisyCount, 0) {
			return fmt.Errorf("%w: level %d noisy count %v", ErrBadArtifact, lr.Level, lr.NoisyCount)
		}
		if !(lr.Epsilon > 0) {
			return fmt.Errorf("%w: level %d epsilon %v", ErrBadArtifact, lr.Level, lr.Epsilon)
		}
	}
	if rel.Grouping != nil {
		if err := rel.Grouping.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrBadArtifact, err)
		}
	}
	for i, c := range rel.Cells {
		if c.SideGroups < 1 || len(c.Counts) != c.SideGroups*c.SideGroups {
			return fmt.Errorf("%w: cell release %d has %d counts for %d side groups",
				ErrBadArtifact, i, len(c.Counts), c.SideGroups)
		}
		if !seen[c.Level] {
			return fmt.Errorf("%w: cell release %d for level %d without a count release",
				ErrBadArtifact, i, c.Level)
		}
		for _, v := range c.Counts {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: cell release %d contains non-finite count", ErrBadArtifact, i)
			}
		}
	}
	return nil
}
