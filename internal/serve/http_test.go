package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/datagen"
)

// newTestServer spins an HTTP front end over a fresh registry.
func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Registry) {
	t.Helper()
	return newTestServerWith(t, cfg, HandlerOptions{})
}

func newTestServerWith(t *testing.T, cfg Config, opts HandlerOptions) (*httptest.Server, *Registry) {
	t.Helper()
	reg, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandlerWith(reg, opts))
	t.Cleanup(func() { srv.Close(); reg.Close() })
	return srv, reg
}

// testTSV renders the shared test dataset as a TSV upload body.
func testTSV(t *testing.T) []byte {
	t.Helper()
	cfg := datagen.Config{
		Name: "serve-test", NumLeft: 120, NumRight: 150, NumEdges: 1800,
		LeftZipf: 1.9, RightZipf: 2.6, Seed: 5,
	}
	g, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := bipartite.SaveTSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// do issues one request and decodes the JSON response.
func do(t *testing.T, method, url string, body []byte, contentType string, wantStatus int) map[string]any {
	t.Helper()
	raw := doRaw(t, method, url, body, contentType, wantStatus)
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("%s %s: bad JSON: %v\n%s", method, url, err, raw)
	}
	return out
}

func doRaw(t *testing.T, method, url string, body []byte, contentType string, wantStatus int) []byte {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d, want %d\n%s", method, url, resp.StatusCode, wantStatus, raw)
	}
	return raw
}

func TestHTTPServeEndToEnd(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t, testConfig())
	base := srv.URL

	// Health before any data.
	health := do(t, "GET", base+"/healthz", nil, "", http.StatusOK)
	if health["ok"] != true {
		t.Fatalf("healthz = %v", health)
	}

	// Ingest via upload body (TSV sniffed).
	ing := do(t, "POST", base+"/v1/datasets/dblp", testTSV(t), "text/tab-separated-values", http.StatusCreated)
	if ing["name"] != "dblp" {
		t.Fatalf("ingest response = %v", ing)
	}
	stats := ing["stats"].(map[string]any)
	if stats["num_edges"].(float64) != 1800 {
		t.Fatalf("ingested stats = %v", stats)
	}

	// Duplicate name → 409.
	errBody := do(t, "POST", base+"/v1/datasets/dblp", testTSV(t), "", http.StatusConflict)
	if errBody["code"] != "dataset-exists" {
		t.Fatalf("duplicate ingest = %v", errBody)
	}

	// List + info.
	list := do(t, "GET", base+"/v1/datasets", nil, "", http.StatusOK)
	if n := len(list["datasets"].([]any)); n != 1 {
		t.Fatalf("listed %d datasets", n)
	}
	do(t, "GET", base+"/v1/datasets/dblp", nil, "", http.StatusOK)
	if nf := do(t, "GET", base+"/v1/datasets/nope", nil, "", http.StatusNotFound); nf["code"] != "unknown-dataset" {
		t.Fatalf("unknown dataset = %v", nf)
	}

	// Open a pinned session and serve a level view.
	sess := do(t, "POST", base+"/v1/datasets/dblp/sessions", []byte(`{"stream": 7}`), "application/json", http.StatusCreated)
	sid := fmt.Sprintf("%.0f", sess["session"].(float64))
	if sess["stream"].(float64) != 7 {
		t.Fatalf("session = %v", sess)
	}

	levelResp := do(t, "POST", base+"/v1/sessions/"+sid+"/level", []byte(`{"level": 2}`), "application/json", http.StatusOK)
	view := levelResp["view"].(map[string]any)
	cells := view["cells"].(map[string]any)
	if len(cells["counts"].([]any)) == 0 {
		t.Fatal("level view histogram is empty")
	}
	if levelResp["seq"].(float64) != 0 {
		t.Fatalf("first query seq = %v", levelResp["seq"])
	}

	// The ledger recorded the debit.
	budget := do(t, "GET", base+"/v1/datasets/dblp/budget", nil, "", http.StatusOK)
	spent := budget["spent"].(map[string]any)
	if spent["epsilon"].(float64) <= 0 {
		t.Fatalf("budget endpoint shows no spend: %v", budget)
	}
	if !strings.Contains(budget["audit"].(string), "s7/q0/view/level2") {
		t.Fatalf("audit report missing the query op:\n%s", budget["audit"])
	}

	// Marginal and top-k.
	marg := do(t, "POST", base+"/v1/sessions/"+sid+"/marginal", []byte(`{"level": 1, "side": "right"}`), "application/json", http.StatusOK)
	if len(marg["marginals"].([]any)) == 0 {
		t.Fatal("empty marginals")
	}
	topk := do(t, "POST", base+"/v1/sessions/"+sid+"/topk", []byte(`{"level": 2, "side": "left", "k": 3}`), "application/json", http.StatusOK)
	if len(topk["groups"].([]any)) != 3 {
		t.Fatalf("topk = %v", topk)
	}

	// Bad requests.
	if bad := do(t, "POST", base+"/v1/sessions/"+sid+"/level", []byte(`{"level": 99}`), "application/json", http.StatusBadRequest); bad["code"] != "bad-request" {
		t.Fatalf("bad level = %v", bad)
	}
	do(t, "POST", base+"/v1/sessions/"+sid+"/marginal", []byte(`{"level": 1, "side": "up"}`), "application/json", http.StatusBadRequest)
	do(t, "POST", base+"/v1/sessions/99999/level", []byte(`{"level": 1}`), "application/json", http.StatusNotFound)

	// A misspelled or missing level must be rejected BEFORE any budget
	// is spent — the ledger is permanent, so a typo must not silently
	// run a defaulted level-0 query.
	spentBefore := do(t, "GET", base+"/v1/datasets/dblp/budget", nil, "", http.StatusOK)["spent"].(map[string]any)["epsilon"].(float64)
	do(t, "POST", base+"/v1/sessions/"+sid+"/level", []byte(`{"lvl": 3}`), "application/json", http.StatusBadRequest)
	do(t, "POST", base+"/v1/sessions/"+sid+"/level", nil, "", http.StatusBadRequest)
	do(t, "POST", base+"/v1/sessions/"+sid+"/marginal", []byte(`{"side": "left"}`), "application/json", http.StatusBadRequest)
	do(t, "POST", base+"/v1/sessions/"+sid+"/level", []byte(`{"level": 1}{"level": 3}`), "application/json", http.StatusBadRequest)
	do(t, "POST", base+"/v1/sessions/"+sid+"/level", []byte(`{"level": 1} trailing`), "application/json", http.StatusBadRequest)
	// Fields an endpoint does not consume are rejected, not ignored — a
	// body shaped for one query kind must not run as another.
	do(t, "POST", base+"/v1/sessions/"+sid+"/level", []byte(`{"level": 1, "side": "left", "k": 5}`), "application/json", http.StatusBadRequest)
	do(t, "POST", base+"/v1/sessions/"+sid+"/marginal", []byte(`{"level": 1, "side": "left", "k": 5}`), "application/json", http.StatusBadRequest)
	do(t, "POST", base+"/v1/sessions/"+sid+"/topk", []byte(`{"level": 1, "side": "left"}`), "application/json", http.StatusBadRequest)
	spentAfter := do(t, "GET", base+"/v1/datasets/dblp/budget", nil, "", http.StatusOK)["spent"].(map[string]any)["epsilon"].(float64)
	if spentAfter != spentBefore {
		t.Fatalf("rejected queries spent budget: %v -> %v", spentBefore, spentAfter)
	}

	// Close the session handle.
	do(t, "DELETE", base+"/v1/sessions/"+sid, nil, "", http.StatusOK)
	do(t, "POST", base+"/v1/sessions/"+sid+"/level", []byte(`{"level": 1}`), "application/json", http.StatusNotFound)
}

// TestHTTPPinnedStreamReplaysByteIdentical is the serving acceptance
// check: with a pinned seed and stream id, re-running the same query
// sequence — on a fresh handle, even a fresh server process — returns
// byte-identical response bodies.
func TestHTTPPinnedStreamReplaysByteIdentical(t *testing.T) {
	t.Parallel()
	transcript := func() []byte {
		srv, _ := newTestServer(t, testConfig())
		base := srv.URL
		do(t, "POST", base+"/v1/datasets/dblp", testTSV(t), "", http.StatusCreated)
		sess := do(t, "POST", base+"/v1/datasets/dblp/sessions", []byte(`{"stream": 42}`), "application/json", http.StatusCreated)
		sid := fmt.Sprintf("%.0f", sess["session"].(float64))
		var blob []byte
		blob = append(blob, doRaw(t, "POST", base+"/v1/sessions/"+sid+"/level", []byte(`{"level": 2}`), "application/json", http.StatusOK)...)
		blob = append(blob, doRaw(t, "POST", base+"/v1/sessions/"+sid+"/marginal", []byte(`{"level": 1, "side": "left"}`), "application/json", http.StatusOK)...)
		blob = append(blob, doRaw(t, "POST", base+"/v1/sessions/"+sid+"/topk", []byte(`{"level": 2, "side": "right", "k": 2}`), "application/json", http.StatusOK)...)
		return blob
	}
	a, b := transcript(), transcript()
	if !bytes.Equal(a, b) {
		t.Fatal("pinned stream replay produced different response bytes")
	}
}

func TestHTTPBudgetExhaustionReturns429(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	// Room for exactly two marginal queries.
	cfg.Budget.Epsilon = 0.04
	cfg.Budget.Delta = 4e-6
	srv, _ := newTestServer(t, cfg)
	base := srv.URL
	do(t, "POST", base+"/v1/datasets/dblp", testTSV(t), "", http.StatusCreated)
	sess := do(t, "POST", base+"/v1/datasets/dblp/sessions", nil, "", http.StatusCreated)
	sid := fmt.Sprintf("%.0f", sess["session"].(float64))

	body := []byte(`{"level": 1, "side": "left"}`)
	do(t, "POST", base+"/v1/sessions/"+sid+"/marginal", body, "application/json", http.StatusOK)
	do(t, "POST", base+"/v1/sessions/"+sid+"/marginal", body, "application/json", http.StatusOK)
	out := do(t, "POST", base+"/v1/sessions/"+sid+"/marginal", body, "application/json", http.StatusTooManyRequests)
	if out["code"] != "budget-exhausted" {
		t.Fatalf("exhaustion response = %v", out)
	}
}

func TestHTTPIngestFromServerPath(t *testing.T) {
	t.Parallel()
	srv, reg := newTestServerWith(t, testConfig(), HandlerOptions{AllowPathIngest: true})
	base := srv.URL

	path := filepath.Join(t.TempDir(), "edges.tsv")
	if err := os.WriteFile(path, testTSV(t), 0o644); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]string{"path": path})
	if err != nil {
		t.Fatal(err)
	}
	do(t, "POST", base+"/v1/datasets/frompath", body, "application/json", http.StatusCreated)
	ds, err := reg.Dataset("frompath")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Stats().NumEdges != 1800 {
		t.Fatalf("path ingest edges = %d", ds.Stats().NumEdges)
	}

	do(t, "POST", base+"/v1/datasets/badpath", []byte(`{"path": "/nope/missing.tsv"}`), "application/json", http.StatusBadRequest)
	do(t, "POST", base+"/v1/datasets/nopath", []byte(`{}`), "application/json", http.StatusBadRequest)
}

// TestHTTPPathIngestDisabledByDefault: without the opt-in, JSON path
// ingest is refused before any file is opened — the default handler
// must not be a server-side file-read oracle. The check matches the
// media type, not the raw header, so a charset parameter cannot smuggle
// the JSON body into the upload-spool branch.
func TestHTTPPathIngestDisabledByDefault(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t, testConfig())
	for _, ct := range []string{"application/json", "application/json; charset=utf-8"} {
		out := do(t, "POST", srv.URL+"/v1/datasets/x", []byte(`{"path": "/etc/hostname"}`), ct, http.StatusForbidden)
		if out["code"] != "path-ingest-disabled" {
			t.Fatalf("path ingest (Content-Type %q) response = %v", ct, out)
		}
	}
}

// TestHTTPIngestUploadBounded: an upload larger than MaxUploadBytes is
// refused with 413 instead of being spooled to the server's temp disk,
// and the refused name stays available for a well-sized retry.
func TestHTTPIngestUploadBounded(t *testing.T) {
	t.Parallel()
	tsv := testTSV(t)
	srv, _ := newTestServerWith(t, testConfig(), HandlerOptions{MaxUploadBytes: int64(len(tsv))})
	out := do(t, "POST", srv.URL+"/v1/datasets/big", append(tsv, '\n'), "text/tab-separated-values", http.StatusRequestEntityTooLarge)
	if out["code"] != "body-too-large" {
		t.Fatalf("oversized upload response = %v", out)
	}
	do(t, "POST", srv.URL+"/v1/datasets/big", tsv, "text/tab-separated-values", http.StatusCreated)
}

// TestHTTPSessionHandleCap: the handle map is bounded — opening past
// MaxSessions yields 429 until a handle is DELETEd.
func TestHTTPSessionHandleCap(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServerWith(t, testConfig(), HandlerOptions{MaxSessions: 2})
	base := srv.URL
	do(t, "POST", base+"/v1/datasets/dblp", testTSV(t), "", http.StatusCreated)

	first := do(t, "POST", base+"/v1/datasets/dblp/sessions", nil, "", http.StatusCreated)
	do(t, "POST", base+"/v1/datasets/dblp/sessions", nil, "", http.StatusCreated)
	out := do(t, "POST", base+"/v1/datasets/dblp/sessions", nil, "", http.StatusTooManyRequests)
	if out["code"] != "too-many-sessions" {
		t.Fatalf("over-cap session response = %v", out)
	}
	sid := fmt.Sprintf("%.0f", first["session"].(float64))
	do(t, "DELETE", base+"/v1/sessions/"+sid, nil, "", http.StatusOK)
	do(t, "POST", base+"/v1/datasets/dblp/sessions", nil, "", http.StatusCreated)
}

// TestHTTPSessionStreamInterop: auto-assigned stream ids stay small
// (exactly representable as JSON doubles, starting from 0) and the
// response's pinned flag distinguishes the two disjoint id spaces.
func TestHTTPSessionStreamInterop(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t, testConfig())
	base := srv.URL
	do(t, "POST", base+"/v1/datasets/dblp", testTSV(t), "", http.StatusCreated)

	auto := do(t, "POST", base+"/v1/datasets/dblp/sessions", nil, "", http.StatusCreated)
	if auto["stream"].(float64) != 0 || auto["pinned"] != false {
		t.Fatalf("auto session = %v", auto)
	}
	pin := do(t, "POST", base+"/v1/datasets/dblp/sessions", []byte(`{"stream": 0}`), "application/json", http.StatusCreated)
	if pin["stream"].(float64) != 0 || pin["pinned"] != true {
		t.Fatalf("pinned session = %v", pin)
	}
}

// TestOpenEdgeSourceFile sniffs both supported formats.
func TestOpenEdgeSourceFile(t *testing.T) {
	t.Parallel()
	g, err := datagen.Generate(datagen.Config{
		Name: "sniff", NumLeft: 30, NumRight: 30, NumEdges: 200,
		LeftZipf: 2.0, RightZipf: 2.0, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	var tsv, bin bytes.Buffer
	if err := bipartite.SaveTSV(&tsv, g); err != nil {
		t.Fatal(err)
	}
	if err := bipartite.EncodeBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	for name, blob := range map[string][]byte{"g.tsv": tsv.Bytes(), "g.bpg": bin.Bytes()} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		src, err := OpenEdgeSourceFile(f)
		if err != nil {
			f.Close()
			t.Fatalf("%s: %v", name, err)
		}
		var edges int64
		buf := make([]bipartite.Edge, 256)
		if err := bipartite.ForEachChunk(src, buf, func(chunk []bipartite.Edge) error {
			edges += int64(len(chunk))
			return nil
		}); err != nil {
			f.Close()
			t.Fatalf("%s: %v", name, err)
		}
		f.Close()
		if edges != g.NumEdges() {
			t.Fatalf("%s: streamed %d edges, want %d", name, edges, g.NumEdges())
		}
	}
}

// TestHTTPCachedReplaySkipsDebit: two handles pinned to one stream issue
// the same query sequence; the second handle's responses are
// byte-identical and spend nothing (the response cache covers them), and
// the budget endpoint reports the hit. With caching disabled through
// HandlerOptions, the same replay debits twice.
func TestHTTPCachedReplaySkipsDebit(t *testing.T) {
	t.Parallel()
	run := func(opts HandlerOptions) (first, replay []byte, ops float64, stats map[string]any) {
		srv, _ := newTestServerWith(t, testConfig(), opts)
		base := srv.URL
		do(t, "POST", base+"/v1/datasets/dblp", testTSV(t), "", http.StatusCreated)
		open := func() string {
			s := do(t, "POST", base+"/v1/datasets/dblp/sessions", []byte(`{"stream": 6}`), "application/json", http.StatusCreated)
			return fmt.Sprintf("%.0f", s["session"].(float64))
		}
		q := []byte(`{"level": 2, "side": "left"}`)
		sid1 := open()
		first = doRaw(t, "POST", base+"/v1/sessions/"+sid1+"/marginal", q, "application/json", http.StatusOK)
		sid2 := open()
		replay = doRaw(t, "POST", base+"/v1/sessions/"+sid2+"/marginal", q, "application/json", http.StatusOK)
		budget := do(t, "GET", base+"/v1/datasets/dblp/budget", nil, "", http.StatusOK)
		return first, replay, budget["ops"].(float64), budget["cache"].(map[string]any)
	}

	first, replay, ops, stats := run(HandlerOptions{})
	if !bytes.Equal(first, replay) {
		t.Fatal("cached HTTP replay is not byte-identical")
	}
	if ops != 1 {
		t.Fatalf("cached replay debited the ledger: %v ops, want 1", ops)
	}
	if stats["hits"].(float64) != 1 || stats["misses"].(float64) != 1 {
		t.Fatalf("budget cache stats = %v, want 1 hit / 1 miss", stats)
	}

	first, replay, ops, stats = run(HandlerOptions{MaxCacheEntries: -1})
	if !bytes.Equal(first, replay) {
		t.Fatal("uncached replay must still be byte-identical (pinned stream contract)")
	}
	if ops != 2 {
		t.Fatalf("with caching disabled, replay should debit again: %v ops, want 2", ops)
	}
	if stats["hits"].(float64) != 0 || stats["misses"].(float64) != 0 {
		t.Fatalf("disabled cache recorded traffic: %v", stats)
	}
}
