package query

import (
	"fmt"
	"sort"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/metrics"
)

// MarginalCounts returns the per-side-group association counts implied by
// a noisy cell release: row sums for the left side, column sums for the
// right side. Because a level's cells partition the records by (left
// group, right group), the exact row sum equals the left group's incident
// edge count, so the released marginal is an εg-group-DP estimate of
// "how many associations does this author group account for?" — the
// paper's motivating sensitive aggregate.
func MarginalCounts(c core.CellRelease, side bipartite.Side) ([]float64, error) {
	return MarginalCountsInto(nil, c, side)
}

// MarginalCountsInto is MarginalCounts writing into dst, reusing dst's
// capacity — the serving hot path: a session passes its retained scratch
// every query and steady-state marginals allocate nothing. dst may be
// nil or short (it is grown as needed); the returned slice is the
// resized dst.
func MarginalCountsInto(dst []float64, c core.CellRelease, side bipartite.Side) ([]float64, error) {
	if !side.Valid() {
		return nil, fmt.Errorf("query: invalid side %v", side)
	}
	k := c.SideGroups
	if k <= 0 || len(c.Counts) != k*k {
		return nil, fmt.Errorf("query: malformed cell release (%d counts for k=%d)", len(c.Counts), k)
	}
	if cap(dst) < k {
		dst = make([]float64, k)
	} else {
		dst = dst[:k]
	}
	switch side {
	case bipartite.Left:
		// Row sums: walk the matrix row-major so every cell is touched
		// exactly once in memory order.
		for i := 0; i < k; i++ {
			var sum float64
			for _, v := range c.Counts[i*k : (i+1)*k] {
				sum += v
			}
			dst[i] = sum
		}
	case bipartite.Right:
		// Column sums: accumulate rows into dst to keep the single
		// sequential pass over the matrix.
		for i := range dst {
			dst[i] = 0
		}
		for j := 0; j < k; j++ {
			row := c.Counts[j*k : (j+1)*k]
			for i, v := range row {
				dst[i] += v
			}
		}
	}
	return dst, nil
}

// MarginalError compares released marginals against the exact incident
// edge counts from the hierarchy and summarizes the absolute error.
func MarginalError(t *hierarchy.Tree, c core.CellRelease, side bipartite.Side) (metrics.Summary, error) {
	if t == nil {
		return metrics.Summary{}, ErrNilTree
	}
	released, err := MarginalCounts(c, side)
	if err != nil {
		return metrics.Summary{}, err
	}
	exact, err := t.SideGroupIncidentEdges(c.Level, side)
	if err != nil {
		return metrics.Summary{}, err
	}
	if len(exact) != len(released) {
		return metrics.Summary{}, fmt.Errorf("query: release has %d groups, tree has %d", len(released), len(exact))
	}
	errs := make([]float64, len(exact))
	for i := range exact {
		errs[i] = metrics.AbsError(released[i], float64(exact[i]))
	}
	return metrics.Summarize(errs)
}

// TopKGroups returns the indices of the k largest released marginals on a
// side, descending — the noisy "heaviest author groups" list a data user
// would compute.
func TopKGroups(c core.CellRelease, side bipartite.Side, k int) ([]int, error) {
	var s TopKScratch
	return TopKGroupsInto(&s, c, side, k)
}

// TopKScratch holds the reusable buffers of TopKGroupsInto: the marginal
// vector and the index permutation it ranks. A serving session retains
// one scratch for its lifetime so steady-state top-k queries allocate
// nothing. The zero value is ready to use.
type TopKScratch struct {
	marginals []float64
	sorter    topkSorter
}

// TopKGroupsInto is TopKGroups ranking through the caller's scratch. The
// returned slice aliases the scratch and is valid until its next use;
// copy to retain.
func TopKGroupsInto(s *TopKScratch, c core.CellRelease, side bipartite.Side, k int) ([]int, error) {
	marginals, err := MarginalCountsInto(s.marginals, c, side)
	if err != nil {
		return nil, err
	}
	s.marginals = marginals
	if k <= 0 || k > len(marginals) {
		return nil, fmt.Errorf("query: k=%d outside [1,%d]", k, len(marginals))
	}
	if cap(s.sorter.idx) < len(marginals) {
		s.sorter.idx = make([]int, len(marginals))
	} else {
		s.sorter.idx = s.sorter.idx[:len(marginals)]
	}
	for i := range s.sorter.idx {
		s.sorter.idx[i] = i
	}
	s.sorter.vals = marginals
	sort.Sort(&s.sorter)
	return s.sorter.idx[:k], nil
}

// topkSorter orders an index permutation by descending marginal with the
// index itself as the tie-break. The total order makes the (unstable)
// sort.Sort produce exactly what sort.SliceStable over an ascending
// initial permutation produced — equal values stay in ascending index
// order — while a concrete Interface on a retained pointer keeps the
// sort allocation-free.
type topkSorter struct {
	idx  []int
	vals []float64
}

func (t *topkSorter) Len() int      { return len(t.idx) }
func (t *topkSorter) Swap(i, j int) { t.idx[i], t.idx[j] = t.idx[j], t.idx[i] }
func (t *topkSorter) Less(i, j int) bool {
	a, b := t.idx[i], t.idx[j]
	if t.vals[a] != t.vals[b] {
		return t.vals[a] > t.vals[b]
	}
	return a < b
}

// TopKPrecision measures how many of the released top-k groups are truly
// in the exact top-k (set precision in [0, 1]): the utility of heavy-
// hitter identification at a privilege tier.
func TopKPrecision(t *hierarchy.Tree, c core.CellRelease, side bipartite.Side, k int) (float64, error) {
	if t == nil {
		return 0, ErrNilTree
	}
	released, err := TopKGroups(c, side, k)
	if err != nil {
		return 0, err
	}
	exact, err := t.SideGroupIncidentEdges(c.Level, side)
	if err != nil {
		return 0, err
	}
	idx := make([]int, len(exact))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return exact[idx[a]] > exact[idx[b]] })
	truth := make(map[int]bool, k)
	for _, i := range idx[:k] {
		truth[i] = true
	}
	hits := 0
	for _, i := range released {
		if truth[i] {
			hits++
		}
	}
	return float64(hits) / float64(k), nil
}
