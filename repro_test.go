package repro_test

import (
	"bytes"
	"strings"
	"testing"

	"repro"
)

// TestPublicAPIEndToEnd exercises the documented quick-start path.
func TestPublicAPIEndToEnd(t *testing.T) {
	t.Parallel()
	g, err := repro.GenerateDataset(repro.PresetDBLPTiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := repro.NewPipeline(repro.Params{Epsilon: 0.9, Delta: 1e-5},
		repro.WithRounds(6),
		repro.WithSeed(7),
		repro.WithPhase1Epsilon(0.1),
		repro.WithCellHistograms(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := pipe.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	view, err := rel.ViewFor(3)
	if err != nil {
		t.Fatal(err)
	}
	if view.Count.NoisyCount == 0 || view.Cells == nil {
		t.Errorf("view = %+v", view)
	}
	var buf bytes.Buffer
	if err := rel.WriteJSON(&buf, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "noisy_count") {
		t.Error("published json missing noisy counts")
	}
}

func TestPublicGraphHelpers(t *testing.T) {
	t.Parallel()
	g, err := repro.FromEdges(2, 2, []repro.Edge{{Left: 0, Right: 1}, {Left: 1, Right: 0}})
	if err != nil {
		t.Fatal(err)
	}
	var tsv bytes.Buffer
	if err := repro.SaveTSV(&tsv, g); err != nil {
		t.Fatal(err)
	}
	back, err := repro.LoadTSV(&tsv)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != 2 {
		t.Errorf("tsv round trip lost edges: %d", back.NumEdges())
	}
	var bin bytes.Buffer
	if err := repro.EncodeBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	back2, err := repro.DecodeBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if back2.NumEdges() != 2 {
		t.Errorf("binary round trip lost edges: %d", back2.NumEdges())
	}
	stats := repro.ComputeStats(g)
	if stats.NumEdges != 2 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestPublicSensitivityHelpers(t *testing.T) {
	t.Parallel()
	g, err := repro.GenerateDataset(repro.PresetDBLPTiny, 2)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := repro.NewPipeline(repro.Params{Epsilon: 0.5, Delta: 1e-5},
		repro.WithRounds(5), repro.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := pipe.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	tree := rel.Tree()
	sens, err := repro.GroupSensitivity(tree, 2, repro.ModelCells)
	if err != nil {
		t.Fatal(err)
	}
	if sens <= 0 {
		t.Errorf("sensitivity = %d", sens)
	}
	u, err := repro.UniverseAt(tree, 2, repro.ModelCells)
	if err != nil {
		t.Fatal(err)
	}
	if u.MaxGroupRecords != sens {
		t.Errorf("universe max %d != sensitivity %d", u.MaxGroupRecords, sens)
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	t.Parallel()
	names := repro.ExperimentNames()
	if len(names) != 10 {
		t.Fatalf("experiments = %v", names)
	}
	report, err := repro.RunExperiment("adjacency", repro.ExperimentOptions{Quick: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if report.Name != "adjacency" || len(report.Tables) == 0 {
		t.Errorf("report = %+v", report)
	}
}

func TestNewRandomSeed(t *testing.T) {
	t.Parallel()
	a, err := repro.NewRandomSeed()
	if err != nil {
		t.Fatal(err)
	}
	b, err := repro.NewRandomSeed()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("entropy seeds collided")
	}
}
