// DBLP reproduction: the paper's Figure 1 experiment on the synthetic
// DBLP stand-in — relative error rate of the association count per
// information level, swept over the group privacy budget εg.
//
// Run with -scaled for the 1/20-scale DBLP (≈320k associations; the
// default is the tiny preset so the example finishes in seconds). A real
// DBLP dump can be swapped in via repro.LoadDBLPXML.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	scaled := flag.Bool("scaled", false, "use the 1/20-scale DBLP preset (slower)")
	trials := flag.Int("trials", 5, "noise trials per point")
	flag.Parse()

	opts := repro.ExperimentOptions{Quick: !*scaled, Seed: 1, Trials: *trials}
	if *scaled {
		opts.Preset = repro.PresetDBLPScaled
	}
	cfg, err := experiments.DefaultFigure1Config(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d authors × %d papers, %d associations; %d rounds, δ=%g, %d trials\n\n",
		cfg.Dataset.Name, cfg.Dataset.NumLeft, cfg.Dataset.NumRight, cfg.Dataset.NumEdges,
		cfg.Rounds, cfg.Delta, cfg.Trials)

	res, err := experiments.RunFigure1(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fig, err := metrics.RenderASCII(res.Series, metrics.PlotOptions{
		Title:  "Figure 1 (reproduced): RER vs εg, one curve per information level",
		LogY:   true,
		XLabel: "εg",
		YLabel: "relative error rate",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig)
	fmt.Println(res.Table.Markdown())

	// Paper comparison at the largest εg.
	last := len(cfg.EpsGrid) - 1
	fmt.Println("paper reference (full-scale DBLP, εg=0.999) vs this run:")
	for li, lvl := range cfg.Levels {
		ref, ok := experiments.PaperFigure1Reference[lvl]
		if !ok {
			continue
		}
		fmt.Printf("  I%d,%d: paper %.4f, measured %.4f\n",
			cfg.Rounds, lvl, ref, res.Series[li].Y[last])
	}
}
