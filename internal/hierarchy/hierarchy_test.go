package hierarchy

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/bipartite"
	"repro/internal/partition"
	"repro/internal/rng"
)

// smallGraph builds an 8x8 bipartite graph with deterministic edges.
func smallGraph(t testing.TB) *bipartite.Graph {
	t.Helper()
	r := rng.New(2024)
	b := bipartite.NewBuilder(0)
	b.SetNumLeft(8)
	b.SetNumRight(8)
	for i := 0; i < 40; i++ {
		b.AddEdge(int32(r.Intn(8)), int32(r.Intn(8)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func buildTree(t testing.TB, g *bipartite.Graph, rounds int, bis partition.Bisector) *Tree {
	t.Helper()
	tree, err := Build(g, Options{Rounds: rounds, Bisector: bis})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestBuildValidation(t *testing.T) {
	t.Parallel()
	g := smallGraph(t)
	if _, err := Build(nil, Options{Rounds: 1, Bisector: partition.BalancedBisector{}}); !errors.Is(err, ErrNilGraph) {
		t.Errorf("nil graph: %v", err)
	}
	if _, err := Build(g, Options{Rounds: 1}); !errors.Is(err, ErrNilBisector) {
		t.Errorf("nil bisector: %v", err)
	}
	for _, rounds := range []int{0, -1, MaxRounds + 1} {
		if _, err := Build(g, Options{Rounds: rounds, Bisector: partition.BalancedBisector{}}); !errors.Is(err, ErrBadRounds) {
			t.Errorf("rounds=%d: %v", rounds, err)
		}
	}
	if _, err := Build(g, Options{Rounds: 1, Bisector: partition.BalancedBisector{}, Order: Order(99)}); err == nil {
		t.Error("bad order accepted")
	}
}

func TestBuildSmallTreeShape(t *testing.T) {
	t.Parallel()
	g := smallGraph(t)
	tree := buildTree(t, g, 2, partition.BalancedBisector{})
	if tree.MaxLevel() != 2 {
		t.Errorf("MaxLevel = %d, want 2", tree.MaxLevel())
	}
	for lvl, wantCells := range map[int]int{2: 1, 1: 4, 0: 16} {
		n, err := tree.NumCells(lvl)
		if err != nil {
			t.Fatal(err)
		}
		if n != wantCells {
			t.Errorf("level %d has %d cells, want %d", lvl, n, wantCells)
		}
	}
	for lvl, wantGroups := range map[int]int{2: 1, 1: 2, 0: 4} {
		n, err := tree.NumSideGroups(lvl)
		if err != nil {
			t.Fatal(err)
		}
		if n != wantGroups {
			t.Errorf("level %d has %d side groups, want %d", lvl, n, wantGroups)
		}
	}
	rootEdges, err := tree.CellEdges(2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rootEdges != g.NumEdges() {
		t.Errorf("root cell edges = %d, want %d", rootEdges, g.NumEdges())
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLevelOutOfRange(t *testing.T) {
	t.Parallel()
	tree := buildTree(t, smallGraph(t), 2, partition.BalancedBisector{})
	if _, err := tree.NumCells(3); !errors.Is(err, ErrBadLevel) {
		t.Errorf("level above root: %v", err)
	}
	if _, err := tree.NumCells(-1); !errors.Is(err, ErrBadLevel) {
		t.Errorf("level below leaves: %v", err)
	}
	if _, err := tree.CellEdges(1, 4, 0); err == nil {
		t.Error("cell index out of grid accepted")
	}
	if _, err := tree.LevelCellCounts(5); !errors.Is(err, ErrBadLevel) {
		t.Error("LevelCellCounts accepted bad level")
	}
}

func TestEdgePartitionPerLevel(t *testing.T) {
	t.Parallel()
	g := smallGraph(t)
	tree := buildTree(t, g, 3, partition.BalancedBisector{})
	for level := 0; level <= tree.MaxLevel(); level++ {
		k, err := tree.NumSideGroups(level)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int64, k*k)
		g.ForEachEdge(func(l, r int32) bool {
			i, j, err := tree.CellOfEdge(level, l, r)
			if err != nil {
				t.Fatalf("level %d edge (%d,%d): %v", level, l, r, err)
			}
			counts[i*k+j]++
			return true
		})
		stored, err := tree.LevelCellCounts(level)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for idx := range counts {
			if counts[idx] != stored[idx] {
				t.Errorf("level %d cell %d: counted %d, stored %d", level, idx, counts[idx], stored[idx])
			}
			total += stored[idx]
		}
		if total != g.NumEdges() {
			t.Errorf("level %d total %d != %d", level, total, g.NumEdges())
		}
	}
}

func TestCellOfEdgeErrors(t *testing.T) {
	t.Parallel()
	tree := buildTree(t, smallGraph(t), 1, partition.BalancedBisector{})
	if _, _, err := tree.CellOfEdge(0, -1, 0); err == nil {
		t.Error("negative node accepted")
	}
	if _, _, err := tree.CellOfEdge(5, 0, 0); !errors.Is(err, ErrBadLevel) {
		t.Error("level above root accepted")
	}
}

func TestSideGroupNodesPartitionSide(t *testing.T) {
	t.Parallel()
	g := smallGraph(t)
	tree := buildTree(t, g, 2, partition.BalancedBisector{})
	for _, side := range []bipartite.Side{bipartite.Left, bipartite.Right} {
		for level := 0; level <= 2; level++ {
			k, err := tree.NumSideGroups(level)
			if err != nil {
				t.Fatal(err)
			}
			seen := map[int32]bool{}
			for i := 0; i < k; i++ {
				nodes, err := tree.SideGroupNodes(level, side, i)
				if err != nil {
					t.Fatal(err)
				}
				for _, v := range nodes {
					if seen[v] {
						t.Fatalf("node %d in two groups at level %d side %v", v, level, side)
					}
					seen[v] = true
				}
			}
			if len(seen) != g.NumSide(side) {
				t.Errorf("level %d side %v covers %d nodes, want %d", level, side, len(seen), g.NumSide(side))
			}
		}
	}
	if _, err := tree.SideGroupNodes(1, bipartite.Side(0), 0); err == nil {
		t.Error("invalid side accepted")
	}
	if _, err := tree.SideGroupNodes(1, bipartite.Left, 5); err == nil {
		t.Error("group index out of range accepted")
	}
}

func TestSideGroupOfNodeConsistent(t *testing.T) {
	t.Parallel()
	g := smallGraph(t)
	tree := buildTree(t, g, 2, partition.BalancedBisector{})
	for level := 0; level <= 2; level++ {
		k, err := tree.NumSideGroups(level)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			nodes, err := tree.SideGroupNodes(level, bipartite.Left, i)
			if err != nil {
				t.Fatal(err)
			}
			for _, node := range nodes {
				got, err := tree.SideGroupOfNode(level, bipartite.Left, node)
				if err != nil {
					t.Fatal(err)
				}
				if got != i {
					t.Errorf("level %d: node %d reported in group %d, want %d", level, node, got, i)
				}
			}
		}
	}
	if _, err := tree.SideGroupOfNode(1, bipartite.Left, 99); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestSideGroupIncidentEdges(t *testing.T) {
	t.Parallel()
	g := smallGraph(t)
	tree := buildTree(t, g, 2, partition.BalancedBisector{})
	// At the root there is one group per side and its incident edges are
	// all edges.
	sums, err := tree.SideGroupIncidentEdges(2, bipartite.Left)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 || sums[0] != g.NumEdges() {
		t.Errorf("root incident sums = %v", sums)
	}
	// At any level, a side's incident sums add up to the total edge count.
	for level := 0; level <= 2; level++ {
		for _, side := range []bipartite.Side{bipartite.Left, bipartite.Right} {
			sums, err := tree.SideGroupIncidentEdges(level, side)
			if err != nil {
				t.Fatal(err)
			}
			var total int64
			for _, s := range sums {
				total += s
			}
			if total != g.NumEdges() {
				t.Errorf("level %d side %v incident sum = %d, want %d", level, side, total, g.NumEdges())
			}
		}
	}
}

func TestMaxSideGroupIncidentEdges(t *testing.T) {
	t.Parallel()
	g := smallGraph(t)
	tree := buildTree(t, g, 2, partition.BalancedBisector{})
	max, err := tree.MaxSideGroupIncidentEdges(2)
	if err != nil {
		t.Fatal(err)
	}
	if max != g.NumEdges() {
		t.Errorf("root node-group sensitivity = %d, want %d", max, g.NumEdges())
	}
	finer, err := tree.MaxSideGroupIncidentEdges(0)
	if err != nil {
		t.Fatal(err)
	}
	if finer > max {
		t.Errorf("node-group sensitivity grew with depth: %d > %d", finer, max)
	}
}

func TestSensitivityProfileMonotone(t *testing.T) {
	t.Parallel()
	g := smallGraph(t)
	tree := buildTree(t, g, 3, partition.BalancedBisector{})
	prof, err := tree.SensitivityProfile()
	if err != nil {
		t.Fatal(err)
	}
	if prof[0] != g.NumEdges() {
		t.Errorf("root sensitivity = %d, want %d", prof[0], g.NumEdges())
	}
	for i := 1; i < len(prof); i++ {
		if prof[i] > prof[i-1] {
			t.Errorf("sensitivity increased from depth %d (%d) to %d (%d)", i-1, prof[i-1], i, prof[i])
		}
	}
}

func TestProfileAndSkew(t *testing.T) {
	t.Parallel()
	g := smallGraph(t)
	tree := buildTree(t, g, 2, partition.BalancedBisector{})
	p, err := tree.Profile(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCells != 4 || p.TotalEdges != g.NumEdges() {
		t.Errorf("profile = %+v", p)
	}
	if p.Skew < 1 {
		t.Errorf("skew = %v, want >= 1", p.Skew)
	}
	if p.MeanCellEdges <= 0 {
		t.Errorf("mean cell edges = %v", p.MeanCellEdges)
	}
}

func TestOrderNatural(t *testing.T) {
	t.Parallel()
	g := smallGraph(t)
	tree, err := Build(g, Options{
		Rounds:   2,
		Bisector: partition.MidpointBisector{},
		Order:    OrderNatural,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNumPrivateCuts(t *testing.T) {
	t.Parallel()
	g := smallGraph(t)
	bis, err := partition.NewExpMechBisector(0.5, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	tree := buildTree(t, g, 2, bis)
	// Depth 0: 2 cuts (one per side). Depth 1: up to 4 cuts. Ranges
	// smaller than 2 nodes are not cut.
	if n := tree.NumPrivateCuts(); n < 2 || n > 6 {
		t.Errorf("NumPrivateCuts = %d, want in [2,6]", n)
	}
	nonPrivate := buildTree(t, g, 2, partition.BalancedBisector{})
	if nonPrivate.NumPrivateCuts() != 0 {
		t.Error("non-private build counted private cuts")
	}
}

// forwardingBisector wraps another bisector, forwarding privacy status
// through partition.PrivacyConsumer — the pattern applyCut must account
// for without knowing concrete types.
type forwardingBisector struct {
	inner partition.Bisector
}

func (f forwardingBisector) Bisect(weights []int64) (int, error) { return f.inner.Bisect(weights) }
func (f forwardingBisector) Name() string                        { return "wrapped-" + f.inner.Name() }
func (f forwardingBisector) Private() bool {
	pc, ok := f.inner.(partition.PrivacyConsumer)
	return ok && pc.Private()
}

func TestWrappedPrivateBisectorCounted(t *testing.T) {
	t.Parallel()
	g := smallGraph(t)
	inner, err := partition.NewExpMechBisector(0.5, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	wrapped := buildTree(t, g, 2, forwardingBisector{inner: inner})
	if wrapped.NumPrivateCuts() == 0 {
		t.Error("wrapped private bisector not counted")
	}
	nonPrivate := buildTree(t, g, 2, forwardingBisector{inner: partition.BalancedBisector{}})
	if n := nonPrivate.NumPrivateCuts(); n != 0 {
		t.Errorf("wrapped non-private bisector counted %d cuts", n)
	}
}

func TestDepthOfLevel(t *testing.T) {
	t.Parallel()
	tree := buildTree(t, smallGraph(t), 3, partition.BalancedBisector{})
	d, err := tree.DepthOfLevel(3)
	if err != nil || d != 0 {
		t.Errorf("DepthOfLevel(3) = %d, %v", d, err)
	}
	d, err = tree.DepthOfLevel(0)
	if err != nil || d != 3 {
		t.Errorf("DepthOfLevel(0) = %d, %v", d, err)
	}
	if _, err := tree.DepthOfLevel(4); !errors.Is(err, ErrBadLevel) {
		t.Error("level above root accepted")
	}
}

func TestImbalanceSummary(t *testing.T) {
	t.Parallel()
	tree := buildTree(t, smallGraph(t), 2, partition.BalancedBisector{})
	skews, err := tree.ImbalanceSummary()
	if err != nil {
		t.Fatal(err)
	}
	if len(skews) != 3 {
		t.Fatalf("len = %d, want 3", len(skews))
	}
	if skews[0] != 1 {
		t.Errorf("root skew = %v, want 1", skews[0])
	}
}

func TestEmptyGraphTree(t *testing.T) {
	t.Parallel()
	b := bipartite.NewBuilder(0)
	b.SetNumLeft(4)
	b.SetNumRight(4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tree := buildTree(t, g, 2, partition.MidpointBisector{})
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := tree.MaxCellEdges(0)
	if err != nil || s != 0 {
		t.Errorf("MaxCellEdges = %d, %v", s, err)
	}
}

func TestDeeperThanNodesTree(t *testing.T) {
	t.Parallel()
	// 2x2 graph split 4 rounds: ranges bottom out at single nodes and
	// empty ranges; invariants must hold throughout.
	g, err := bipartite.FromEdges(2, 2, []bipartite.Edge{{Left: 0, Right: 0}, {Left: 1, Right: 1}, {Left: 0, Right: 1}})
	if err != nil {
		t.Fatal(err)
	}
	tree := buildTree(t, g, 4, partition.BalancedBisector{})
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := tree.MaxCellEdges(0)
	if err != nil {
		t.Fatal(err)
	}
	if s < 1 {
		t.Errorf("finest sensitivity = %d, want >= 1", s)
	}
}

// TestQuickTreeInvariants builds trees over random graphs with random
// bisector choices and checks Validate plus sensitivity monotonicity.
func TestQuickTreeInvariants(t *testing.T) {
	t.Parallel()
	src := rng.New(808)
	f := func(seed uint64) bool {
		r := src.Split(seed)
		nl := r.Intn(30) + 2
		nr := r.Intn(30) + 2
		b := bipartite.NewBuilder(0)
		b.SetNumLeft(int32(nl))
		b.SetNumRight(int32(nr))
		for i := 0; i < r.Intn(200); i++ {
			b.AddEdge(int32(r.Intn(nl)), int32(r.Intn(nr)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		var bis partition.Bisector
		switch r.Intn(3) {
		case 0:
			bis = partition.BalancedBisector{}
		case 1:
			bis = partition.MidpointBisector{}
		default:
			rb, err := partition.NewRandomBisector(r.Split(1))
			if err != nil {
				return false
			}
			bis = rb
		}
		rounds := r.Intn(4) + 1
		tree, err := Build(g, Options{Rounds: rounds, Bisector: bis})
		if err != nil {
			return false
		}
		if err := tree.Validate(); err != nil {
			return false
		}
		prof, err := tree.SensitivityProfile()
		if err != nil {
			return false
		}
		for i := 1; i < len(prof); i++ {
			if prof[i] > prof[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSidePermutationAndBounds(t *testing.T) {
	t.Parallel()
	g := smallGraph(t)
	tree := buildTree(t, g, 2, partition.BalancedBisector{})
	perm, err := tree.SidePermutation(bipartite.Left)
	if err != nil {
		t.Fatal(err)
	}
	if len(perm) != g.NumLeft() {
		t.Fatalf("perm length = %d", len(perm))
	}
	seen := map[int32]bool{}
	for _, v := range perm {
		if seen[v] {
			t.Fatal("permutation has duplicates")
		}
		seen[v] = true
	}
	// Returned slices are copies.
	perm[0] = perm[1]
	perm2, err := tree.SidePermutation(bipartite.Left)
	if err != nil {
		t.Fatal(err)
	}
	if perm2[0] == perm2[1] {
		t.Error("SidePermutation aliases internal state")
	}
	bounds, err := tree.SideBounds(1, bipartite.Right)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != 3 || bounds[0] != 0 || int(bounds[2]) != g.NumRight() {
		t.Errorf("bounds = %v", bounds)
	}
	if _, err := tree.SideBounds(99, bipartite.Left); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := tree.SidePermutation(bipartite.Side(0)); err == nil {
		t.Error("bad side accepted")
	}
}

func TestParallelBuildIdentical(t *testing.T) {
	t.Parallel()
	r := rng.New(606)
	b := bipartite.NewBuilder(0)
	const nl, nr = 500, 700
	b.SetNumLeft(nl)
	b.SetNumRight(nr)
	for i := 0; i < 5000; i++ {
		b.AddEdge(int32(r.Intn(nl)), int32(r.Intn(nr)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	build := func(workers int, seed uint64) *Tree {
		bis, err := partition.NewExpMechBisector(0.2, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		tree, err := Build(g, Options{Rounds: 5, Bisector: bis, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return tree
	}
	serial := build(1, 42)
	parallel := build(8, 42)
	if err := parallel.Validate(); err != nil {
		t.Fatal(err)
	}
	// Worker count must not change any cut: identical cell counts at
	// every level.
	for level := 0; level <= 5; level++ {
		a, err := serial.LevelCellCounts(level)
		if err != nil {
			t.Fatal(err)
		}
		c, err := parallel.LevelCellCounts(level)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != c[i] {
				t.Fatalf("level %d cell %d: serial %d != parallel %d", level, i, a[i], c[i])
			}
		}
	}
	if serial.NumPrivateCuts() != parallel.NumPrivateCuts() {
		t.Error("worker count changed private cut count")
	}
}

func BenchmarkBuildRounds6(b *testing.B) {
	r := rng.New(99)
	builder := bipartite.NewBuilder(0)
	const nl, nr = 2000, 3000
	builder.SetNumLeft(nl)
	builder.SetNumRight(nr)
	for i := 0; i < 20000; i++ {
		builder.AddEdge(int32(r.Intn(nl)), int32(r.Intn(nr)))
	}
	g, err := builder.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, err := Build(g, Options{Rounds: 6, Bisector: partition.BalancedBisector{}})
		if err != nil {
			b.Fatal(err)
		}
		_ = tree
	}
}
