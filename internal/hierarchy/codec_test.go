package hierarchy

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/partition"
	"repro/internal/rng"
)

func TestTreeBinaryRoundTrip(t *testing.T) {
	t.Parallel()
	g := smallGraph(t)
	bis, err := partition.NewExpMechBisector(0.5, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	tree := buildTree(t, g, 3, bis)

	var buf bytes.Buffer
	if err := tree.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxLevel() != tree.MaxLevel() {
		t.Errorf("maxLevel = %d, want %d", got.MaxLevel(), tree.MaxLevel())
	}
	if got.NumPrivateCuts() != tree.NumPrivateCuts() {
		t.Errorf("privateCuts = %d, want %d", got.NumPrivateCuts(), tree.NumPrivateCuts())
	}
	// Cell counts must be identical at every level.
	for level := 0; level <= tree.MaxLevel(); level++ {
		want, err := tree.LevelCellCounts(level)
		if err != nil {
			t.Fatal(err)
		}
		gotCounts, err := got.LevelCellCounts(level)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if want[i] != gotCounts[i] {
				t.Fatalf("level %d cell %d: %d != %d", level, i, gotCounts[i], want[i])
			}
		}
	}
	// Side groups match too.
	nodes1, err := tree.SideGroupNodes(1, bipartite.Left, 0)
	if err != nil {
		t.Fatal(err)
	}
	nodes2, err := got.SideGroupNodes(1, bipartite.Left, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes1) != len(nodes2) {
		t.Fatal("side group sizes differ after round trip")
	}
	for i := range nodes1 {
		if nodes1[i] != nodes2[i] {
			t.Fatal("side group nodes differ after round trip")
		}
	}
}

func TestTreeDecodeErrors(t *testing.T) {
	t.Parallel()
	g := smallGraph(t)
	tree := buildTree(t, g, 2, partition.BalancedBisector{})
	var buf bytes.Buffer
	if err := tree.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	if _, err := DecodeBinary(bytes.NewReader(full), nil); !errors.Is(err, ErrNilGraph) {
		t.Errorf("nil graph: %v", err)
	}
	if _, err := DecodeBinary(strings.NewReader("BOGUS..."), g); !errors.Is(err, ErrBadTreeFormat) {
		t.Errorf("bad magic: %v", err)
	}
	// Graph mismatch: different side sizes.
	other, err := bipartite.FromEdges(3, 3, []bipartite.Edge{{Left: 0, Right: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBinary(bytes.NewReader(full), other); !errors.Is(err, ErrBadTreeFormat) {
		t.Errorf("graph mismatch: %v", err)
	}
	// Every strict prefix fails cleanly.
	for cut := 0; cut < len(full); cut += 3 {
		if _, err := DecodeBinary(bytes.NewReader(full[:cut]), g); err == nil {
			t.Fatalf("decode of %d-byte prefix succeeded", cut)
		}
	}
}

func TestTreeDecodeDetectsCorruption(t *testing.T) {
	t.Parallel()
	g := smallGraph(t)
	tree := buildTree(t, g, 2, partition.BalancedBisector{})
	var buf bytes.Buffer
	if err := tree.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Flip bytes one at a time past the magic; decode must never succeed
	// with an invalid tree (it may succeed if the flip is benign, but
	// then Validate inside DecodeBinary has passed).
	for i := 4; i < len(full); i++ {
		mutated := append([]byte(nil), full...)
		mutated[i] ^= 0x7f
		got, err := DecodeBinary(bytes.NewReader(mutated), g)
		if err != nil {
			continue
		}
		if vErr := got.Validate(); vErr != nil {
			t.Fatalf("byte %d corruption produced an invalid tree that decoded: %v", i, vErr)
		}
	}
}

func TestTreeDecodeMatchesDifferentGraphEdges(t *testing.T) {
	t.Parallel()
	// Same side sizes, different edges: decode succeeds (the structure
	// is valid for any graph with those sides) and recomputes cell
	// counts for the new graph.
	g := smallGraph(t)
	tree := buildTree(t, g, 2, partition.BalancedBisector{})
	var buf bytes.Buffer
	if err := tree.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	r := rng.New(77)
	b := bipartite.NewBuilder(0)
	b.SetNumLeft(int32(g.NumLeft()))
	b.SetNumRight(int32(g.NumRight()))
	for i := 0; i < 20; i++ {
		b.AddEdge(int32(r.Intn(g.NumLeft())), int32(r.Intn(g.NumRight())))
	}
	g2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(bytes.NewReader(buf.Bytes()), g2)
	if err != nil {
		t.Fatal(err)
	}
	total, err := got.MaxCellEdges(got.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	if total != g2.NumEdges() {
		t.Errorf("recomputed root cell = %d, want %d", total, g2.NumEdges())
	}
}
