// Command gdpbench regenerates the paper's evaluation. Every experiment
// in DESIGN.md §5 — Figure 1 plus ablations A1–A6 — is a named entry;
// gdpbench prints its tables (markdown), ASCII figures, and the
// paper-vs-measured notes, and can dump CSVs for external plotting.
//
// Usage:
//
//	gdpbench -exp figure1
//	gdpbench -exp all -quick
//	gdpbench -exp figure1 -preset dblp-scaled -trials 20 -csv out/
//	gdpbench -exp all -quick -benchjson out/
//
// -benchjson writes one machine-readable BENCH_<experiment>.json per
// experiment (configuration plus wall time), the perf-trajectory record
// CI and regression tooling diff across commits.
//
// # Streamed ingest: -edges
//
//	gdpbench -edges dblp.tsv -rounds 9
//	gdpbench -edges dblp.bpg -streamverify -benchjson out/
//
// -edges streams an edge file through the chunked two-pass build
// (hierarchy.BuildFromEdges) instead of running experiments: pass 1
// accumulates side degrees, pass 2 feeds the sharded cell aggregation,
// and the file's edges are never materialized — not as a pair list and
// not as either CSR direction — so peak memory is O(chunk + sides +
// 4^rounds), independent of the edge count. The format is sniffed from
// the first bytes ("BPG1" means the compact binary codec, anything else
// is TSV). TSV inputs must not repeat pairs: the streamed build counts
// every line while the in-memory loader deduplicates, so deduplicate
// first (e.g. sort -u) — -streamverify catches the divergence. With
// -benchjson a BENCH_stream.json records the ingest rate
// (edges/sec over the whole two-pass build). -streamverify additionally
// loads the same file in memory, runs the release pipeline both ways
// with one seed, and fails unless the artifacts are byte-identical —
// the self-checking mode CI's stream smoke job runs; skip it for files
// that do not fit in RAM, which is what -edges exists for.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dp"
	"repro/internal/experiments"
	"repro/internal/hierarchy"
	"repro/internal/partition"
	"repro/internal/release"
	"repro/internal/rng"
)

// benchRecord is the machine-readable result of one timed experiment
// run. Preset is the resolved dataset name, never empty; Trials echoes
// the -trials override, where 0 means the experiment's own default.
type benchRecord struct {
	Experiment string  `json:"experiment"`
	Preset     string  `json:"preset"`
	Quick      bool    `json:"quick"`
	Trials     int     `json:"trials"`
	Seed       uint64  `json:"seed"`
	Workers    int     `json:"workers"`
	WallMS     float64 `json:"wall_ms"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	UnixMS     int64   `json:"unix_ms"`
}

// phase2Record is the Phase-2 throughput record written alongside the
// per-experiment timings: the batched cell-histogram release at the
// deepest level of a nine-round tree (the BenchmarkReleaseCells setup)
// and the Figure-1 trial loop serial vs fanned out, so BENCH_phase2.json
// tracks noise-injection and trial throughput across commits.
type phase2Record struct {
	// Cells is the released histogram size (4^9).
	Cells int `json:"cells"`
	// ReleaseCellsNsPerOp is the mean wall time of one batched release
	// through the reusable-buffer engine path; CellsPerSec is the implied
	// noise throughput. ReleaseCellsParNsPerOp is the same release with
	// the noise pass sharded across Workers goroutines (bit-identical
	// output; flat on a 1-CPU runner).
	ReleaseCellsNsPerOp    float64 `json:"release_cells_ns_per_op"`
	CellsPerSec            float64 `json:"release_cells_per_sec"`
	ReleaseCellsParNsPerOp float64 `json:"release_cells_parallel_ns_per_op"`
	// TrialsSerialMS and TrialsParallelMS time the same Figure-1 trial
	// loop with one lane and with Workers lanes (bit-identical outputs).
	Trials           int     `json:"figure1_trials"`
	TrialsSerialMS   float64 `json:"figure1_trials_serial_ms"`
	TrialsParallelMS float64 `json:"figure1_trials_parallel_ms"`
	// StrategyReleaseMS times one full pipeline run (hierarchy + count
	// + cell releases) per registered release strategy, keyed by
	// strategy name — the record that keeps alternative partitioner ×
	// noise compositions on the perf trajectory. benchdiff ignores
	// unknown fields, so older baselines diff cleanly.
	StrategyReleaseMS map[string]float64 `json:"strategy_release_ms,omitempty"`
	Workers           int                `json:"workers"`
	GOMAXPROCS        int                `json:"gomaxprocs"`
	NumCPU            int                `json:"num_cpu"`
	Seed              uint64             `json:"seed"`
	UnixMS            int64              `json:"unix_ms"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gdpbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gdpbench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "figure1", fmt.Sprintf("experiment name or 'all' %v", experiments.Names()))
		preset   = fs.String("preset", "", "dataset preset override (default dblp-scaled, dblp-tiny with -quick)")
		seed     = fs.Uint64("seed", 1, "random seed")
		trials   = fs.Int("trials", 0, "trial count override (0 = experiment default)")
		quick    = fs.Bool("quick", false, "shrink datasets and grids for a fast run")
		csvDir   = fs.String("csv", "", "also write each table as CSV into this directory")
		workers  = fs.Int("workers", runtime.GOMAXPROCS(0), "experiment parallelism: trial fan-out and phase-1 builds (results identical for any value)")
		benchDir = fs.String("benchjson", "", "write a machine-readable BENCH_<experiment>.json per experiment into this directory")
		strategy = fs.String("strategy", "all", "release strategy for the per-strategy sweep in BENCH_phase2.json: a registered name, or 'all' "+fmt.Sprint(release.Strategies.Names()))

		edgesFile    = fs.String("edges", "", "stream an edge file (TSV or binary graph) through the chunked build instead of running experiments")
		rounds       = fs.Int("rounds", 9, "specialization rounds for -edges")
		streamVerify = fs.Bool("streamverify", false, "with -edges: also run the in-memory path and fail unless the releases are byte-identical")

		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file (go tool pprof)")
		memProfile = fs.String("memprofile", "", "write an end-of-run heap profile to this file (go tool pprof)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gdpbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "gdpbench: memprofile:", err)
			}
		}()
	}
	if *edgesFile != "" {
		return runEdges(*edgesFile, *rounds, *workers, *seed, *streamVerify, *benchDir)
	}

	opts := repro.ExperimentOptions{
		Preset:  *preset,
		Seed:    *seed,
		Trials:  *trials,
		Quick:   *quick,
		Workers: *workers,
	}
	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		start := time.Now()
		report, err := repro.RunExperiment(name, opts)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", name, err)
		}
		elapsed := time.Since(start)
		if err := emit(report, *csvDir); err != nil {
			return err
		}
		if *benchDir != "" {
			rec := benchRecord{
				Experiment: name,
				Preset:     opts.EffectivePreset(),
				Quick:      *quick,
				Trials:     *trials,
				Seed:       *seed,
				Workers:    *workers,
				WallMS:     float64(elapsed.Nanoseconds()) / 1e6,
				GOMAXPROCS: runtime.GOMAXPROCS(0),
				NumCPU:     runtime.NumCPU(),
				UnixMS:     start.UnixMilli(),
			}
			if err := writeBenchJSON(*benchDir, rec); err != nil {
				return err
			}
		}
	}
	// The Phase-2 and serving throughput records ride along with the
	// full perf-trajectory sweep only, so single-experiment bench runs
	// stay proportional to what was asked.
	if *benchDir != "" && *exp == "all" {
		if err := writePhase2Bench(*benchDir, *seed, *workers, *strategy); err != nil {
			return err
		}
		if err := writeServeBench(*benchDir, *seed, *workers); err != nil {
			return err
		}
	}
	return nil
}

// serveRecord is the serving-layer throughput record: an in-process
// registry ingests the tiny dataset and concurrent sessions drain a
// query workload; QueriesPerSec is the aggregate throughput and
// P50QueryMS the median single-query latency inside a session (one
// ledger debit + one batched histogram release + marginal
// post-processing per query).
type serveRecord struct {
	Edges      int64   `json:"edges"`
	Sessions   int     `json:"sessions"`
	Queries    int     `json:"queries"`
	Level      int     `json:"level"`
	IngestMS   float64 `json:"ingest_ms"`
	WallMS     float64 `json:"wall_ms"`
	QueriesSec float64 `json:"queries_per_sec"`
	P50QueryMS float64 `json:"p50_query_ms"`
	// CacheMissNs and CacheHitNs compare one marginal query computed
	// fresh (ledger debit + Phase 2 + cache insert) against the same
	// query replayed out of the response cache (no debit, no draw);
	// CacheSpeedup is their ratio.
	CacheMissNs  float64 `json:"cache_miss_ns_per_op"`
	CacheHitNs   float64 `json:"cache_hit_ns_per_op"`
	CacheSpeedup float64 `json:"cache_speedup"`
	// LedgerBackend stamps which privacy-ledger implementation admitted
	// the workload ("mem", "wal", or "remote"): a ledger debit sits on
	// the query path, so throughput across backends is not comparable
	// and benchdiff refuses to gate across a backend change.
	LedgerBackend string `json:"ledger_backend"`
	Workers       int    `json:"workers"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	NumCPU        int    `json:"num_cpu"`
	Seed          uint64 `json:"seed"`
	UnixMS        int64  `json:"unix_ms"`
}

// writeServeBench measures the serving layer end to end in-process and
// writes BENCH_serve.json.
func writeServeBench(dir string, seed uint64, workers int) error {
	const (
		sessions   = 4
		perSession = 64
		level      = 2
	)
	cfg, err := datagen.ByName(datagen.PresetDBLPTiny, seed+1)
	if err != nil {
		return err
	}
	stream, err := datagen.NewStream(cfg)
	if err != nil {
		return err
	}
	reg, err := repro.OpenRegistry(repro.ServeConfig{
		// Ample room for the whole workload: the bench measures
		// throughput, not exhaustion.
		Budget:   repro.Params{Epsilon: 16, Delta: 1e-4},
		PerQuery: repro.Params{Epsilon: 0.01, Delta: 1e-8},
		Rounds:   6,
		Seed:     seed,
		Workers:  workers,
	})
	if err != nil {
		return err
	}
	defer reg.Close()

	ingestStart := time.Now()
	ds, err := reg.AddDataset("bench", stream)
	if err != nil {
		return err
	}
	ingestMS := float64(time.Since(ingestStart).Nanoseconds()) / 1e6

	durations := make([][]time.Duration, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := ds.SessionAt(uint64(i))
			durations[i] = make([]time.Duration, 0, perSession)
			for q := 0; q < perSession; q++ {
				qStart := time.Now()
				if _, err := sess.Marginal(level, repro.Left); err != nil {
					errs[i] = err
					return
				}
				durations[i] = append(durations[i], time.Since(qStart))
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("serve bench query: %w", err)
		}
	}

	var all []time.Duration
	for _, d := range durations {
		all = append(all, d...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p50 := all[len(all)/2]

	// Cache hit vs miss: a fresh pinned stream computes its sequence
	// (misses: ledger debit + Phase 2 + cache insert), then a second
	// session replays the identical (stream, seq, query) keys out of the
	// response cache (hits: no debit, no draw).
	const cacheProbe = 256
	missSess := ds.SessionAt(1 << 20)
	missStart := time.Now()
	for q := 0; q < cacheProbe; q++ {
		if _, err := missSess.Marginal(level, repro.Left); err != nil {
			return fmt.Errorf("serve bench cache-miss probe: %w", err)
		}
	}
	missNs := float64(time.Since(missStart).Nanoseconds()) / cacheProbe
	hitSess := ds.SessionAt(1 << 20)
	hitStart := time.Now()
	for q := 0; q < cacheProbe; q++ {
		if _, err := hitSess.Marginal(level, repro.Left); err != nil {
			return fmt.Errorf("serve bench cache-hit probe: %w", err)
		}
	}
	hitNs := float64(time.Since(hitStart).Nanoseconds()) / cacheProbe

	rec := serveRecord{
		Edges:         ds.Stats().NumEdges,
		Sessions:      sessions,
		Queries:       len(all),
		Level:         level,
		IngestMS:      ingestMS,
		WallMS:        float64(wall.Nanoseconds()) / 1e6,
		QueriesSec:    float64(len(all)) / wall.Seconds(),
		P50QueryMS:    float64(p50.Nanoseconds()) / 1e6,
		CacheMissNs:   missNs,
		CacheHitNs:    hitNs,
		CacheSpeedup:  missNs / hitNs,
		LedgerBackend: ds.LedgerBackend(),
		Workers:       workers,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Seed:          seed,
		UnixMS:        start.UnixMilli(),
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_serve.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("(serve bench record written to %s)\n\n", path)
	return nil
}

// streamRecord is the machine-readable result of one -edges ingest run:
// the whole two-pass streamed build timed end to end, with EdgesPerSec =
// NumEdges / wall (both passes included).
type streamRecord struct {
	File       string  `json:"file"`
	Format     string  `json:"format"`
	Edges      int64   `json:"edges"`
	NumLeft    int     `json:"num_left"`
	NumRight   int     `json:"num_right"`
	Rounds     int     `json:"rounds"`
	Workers    int     `json:"workers"`
	WallMS     float64 `json:"wall_ms"`
	EdgesSec   float64 `json:"edges_per_sec"`
	Verified   bool    `json:"verified"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	UnixMS     int64   `json:"unix_ms"`
}

// runEdges is the -edges mode: stream the file through the chunked build,
// report the ingest rate, and optionally pin the result against the
// in-memory path.
func runEdges(path string, rounds, workers int, seed uint64, verify bool, benchDir string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var magic [4]byte
	n, err := f.Read(magic[:])
	if err != nil && n == 0 {
		return fmt.Errorf("reading %s: %w", path, err)
	}
	format := "tsv"
	if n == 4 && string(magic[:]) == "BPG1" {
		format = "binary"
	}

	var src bipartite.EdgeSource
	if format == "binary" {
		src, err = bipartite.NewBinaryEdgeSource(f)
	} else {
		src, err = bipartite.NewTSVEdgeSource(f)
	}
	if err != nil {
		return fmt.Errorf("opening %s source %s: %w", format, path, err)
	}

	start := time.Now()
	tree, err := hierarchy.BuildFromEdges(src, hierarchy.Options{
		Rounds:   rounds,
		Bisector: partition.BalancedBisector{},
		Workers:  workers,
	})
	if err != nil {
		return fmt.Errorf("streamed build of %s: %w", path, err)
	}
	wall := time.Since(start)
	stats := tree.DatasetStats()
	edgesSec := float64(stats.NumEdges) / wall.Seconds()
	fmt.Printf("## streamed ingest — %s (%s)\n\n", path, format)
	fmt.Printf("dataset: %s\n", stats)
	fmt.Printf("build:   rounds=%d workers=%d wall=%.1fms ingest=%.0f edges/s (two passes, O(chunk+sides) peak)\n",
		rounds, workers, float64(wall.Nanoseconds())/1e6, edgesSec)

	verified := false
	if verify {
		if err := verifyStreamedRelease(f, format, tree, rounds, workers, seed, src); err != nil {
			return err
		}
		verified = true
		fmt.Println("verify:  streamed release is byte-identical to the in-memory path")
	}
	fmt.Println()

	if benchDir != "" {
		rec := streamRecord{
			File:       path,
			Format:     format,
			Edges:      stats.NumEdges,
			NumLeft:    stats.NumLeft,
			NumRight:   stats.NumRight,
			Rounds:     rounds,
			Workers:    workers,
			WallMS:     float64(wall.Nanoseconds()) / 1e6,
			EdgesSec:   edgesSec,
			Verified:   verified,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			UnixMS:     start.UnixMilli(),
		}
		if err := os.MkdirAll(benchDir, 0o755); err != nil {
			return err
		}
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		recPath := filepath.Join(benchDir, "BENCH_stream.json")
		if err := os.WriteFile(recPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("(stream bench record written to %s)\n\n", recPath)
	}
	return nil
}

// verifyStreamedRelease loads the file in memory, checks the streamed
// tree's grouping bit-identical to the in-memory build, and runs the full
// release pipeline down both paths, failing on any byte difference.
func verifyStreamedRelease(f *os.File, format string, streamedTree *hierarchy.Tree, rounds, workers int, seed uint64, src bipartite.EdgeSource) error {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	var g *bipartite.Graph
	var err error
	if format == "binary" {
		g, err = bipartite.DecodeBinary(f)
	} else {
		g, err = bipartite.LoadTSV(f)
	}
	if err != nil {
		return fmt.Errorf("in-memory load for -streamverify: %w", err)
	}

	memTree, err := hierarchy.Build(g, hierarchy.Options{
		Rounds:   rounds,
		Bisector: partition.BalancedBisector{},
		Workers:  workers,
	})
	if err != nil {
		return err
	}
	var streamedEnc, memEnc bytes.Buffer
	if err := streamedTree.EncodeBinary(&streamedEnc); err != nil {
		return err
	}
	if err := memTree.EncodeBinary(&memEnc); err != nil {
		return err
	}
	if !bytes.Equal(streamedEnc.Bytes(), memEnc.Bytes()) {
		return fmt.Errorf("streamed tree differs from in-memory build (duplicate edge lines in the input? the streamed path counts every line, the in-memory loader deduplicates)")
	}

	newPipeline := func() (*release.Pipeline, error) {
		return release.New(dp.Params{Epsilon: 0.5, Delta: 1e-5},
			release.WithRounds(rounds),
			release.WithSeed(seed),
			release.WithCellHistograms(true),
			release.WithWorkers(workers),
		)
	}
	pMem, err := newPipeline()
	if err != nil {
		return err
	}
	relMem, err := pMem.Run(g)
	if err != nil {
		return err
	}
	pStream, err := newPipeline()
	if err != nil {
		return err
	}
	relStream, err := pStream.RunFromEdges(src)
	if err != nil {
		return err
	}
	var a, b bytes.Buffer
	if err := relMem.WriteJSON(&a, true); err != nil {
		return err
	}
	if err := relStream.WriteJSON(&b, true); err != nil {
		return err
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		return fmt.Errorf("streamed release differs from in-memory release")
	}
	return nil
}

// writePhase2Bench measures the Phase-2 release engine in-process and
// writes BENCH_phase2.json: the batched deepest-level histogram release
// and the parallel trial fan-out.
func writePhase2Bench(dir string, seed uint64, workers int, strategy string) error {
	g, err := datagen.Generate(datagen.DBLPTiny(seed))
	if err != nil {
		return err
	}
	tree, err := hierarchy.Build(g, hierarchy.Options{Rounds: 9, Bisector: partition.BalancedBisector{}})
	if err != nil {
		return err
	}
	cells, err := tree.NumCells(0)
	if err != nil {
		return err
	}
	src := rng.New(seed + 1)
	p := dp.Params{Epsilon: 0.5, Delta: 1e-5}
	var rel core.CellRelease
	const releaseIters = 25
	start := time.Now()
	for i := 0; i < releaseIters; i++ {
		if err := core.ReleaseCellsInto(&rel, tree, 0, p, core.CalibrationClassical, src); err != nil {
			return err
		}
	}
	nsPerOp := float64(time.Since(start).Nanoseconds()) / releaseIters

	parStart := time.Now()
	for i := 0; i < releaseIters; i++ {
		if err := core.ReleaseCellsWorkersInto(&rel, tree, 0, p, core.CalibrationClassical, src, workers); err != nil {
			return err
		}
	}
	parNsPerOp := float64(time.Since(parStart).Nanoseconds()) / releaseIters

	cfg, err := experiments.DefaultFigure1Config(experiments.Options{Quick: true, Seed: seed, Workers: 1})
	if err != nil {
		return err
	}
	cfg.Trials = 8
	timeTrials := func(w int) (float64, error) {
		cfg.Workers = w
		t0 := time.Now()
		if _, err := experiments.RunFigure1On(g, cfg); err != nil {
			return 0, err
		}
		return float64(time.Since(t0).Nanoseconds()) / 1e6, nil
	}
	serialMS, err := timeTrials(1)
	if err != nil {
		return err
	}
	parallelMS, err := timeTrials(workers)
	if err != nil {
		return err
	}

	// Per-strategy sweep: one full pipeline run per registered strategy
	// (or just -strategy), timed over a few iterations on the same tiny
	// graph, so composition overheads (community label propagation, pure
	// Laplace cells) stay visible across commits.
	names := release.Strategies.Names()
	if strategy != "all" {
		if _, err := release.Strategies.Resolve(strategy); err != nil {
			return err
		}
		names = []string{strategy}
	}
	stratMS := make(map[string]float64, len(names))
	const stratIters = 5
	for _, name := range names {
		p, err := release.New(dp.Params{Epsilon: 0.5, Delta: 1e-5},
			release.WithStrategy(name),
			release.WithRounds(6),
			release.WithSeed(seed),
			release.WithCellHistograms(true),
			release.WithWorkers(workers),
		)
		if err != nil {
			return fmt.Errorf("strategy %s: %w", name, err)
		}
		t0 := time.Now()
		for i := 0; i < stratIters; i++ {
			if _, err := p.Run(g); err != nil {
				return fmt.Errorf("strategy %s: %w", name, err)
			}
		}
		stratMS[name] = float64(time.Since(t0).Nanoseconds()) / 1e6 / stratIters
	}

	rec := phase2Record{
		Cells:                  cells,
		ReleaseCellsNsPerOp:    nsPerOp,
		CellsPerSec:            float64(cells) / (nsPerOp / 1e9),
		ReleaseCellsParNsPerOp: parNsPerOp,
		Trials:                 cfg.Trials,
		TrialsSerialMS:         serialMS,
		TrialsParallelMS:       parallelMS,
		StrategyReleaseMS:      stratMS,
		Workers:                workers,
		GOMAXPROCS:             runtime.GOMAXPROCS(0),
		NumCPU:                 runtime.NumCPU(),
		Seed:                   seed,
		UnixMS:                 time.Now().UnixMilli(),
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_phase2.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("(phase-2 bench record written to %s)\n\n", path)
	return nil
}

// writeBenchJSON writes one experiment's timing record to
// dir/BENCH_<experiment>.json.
func writeBenchJSON(dir string, rec benchRecord) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", sanitize(rec.Experiment)))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("(bench record written to %s)\n\n", path)
	return nil
}

func emit(report *repro.ExperimentReport, csvDir string) error {
	fmt.Printf("## %s\n\n", report.Title)
	for _, fig := range report.Figures {
		fmt.Println(fig)
	}
	for ti, table := range report.Tables {
		fmt.Println(table.Markdown())
		if csvDir != "" {
			if err := os.MkdirAll(csvDir, 0o755); err != nil {
				return err
			}
			name := fmt.Sprintf("%s_%d.csv", sanitize(report.Name), ti)
			path := filepath.Join(csvDir, name)
			if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
				return err
			}
			fmt.Printf("(csv written to %s)\n\n", path)
		}
	}
	for _, note := range report.Notes {
		fmt.Printf("> %s\n", note)
	}
	fmt.Println()
	return nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
