package bipartite

import (
	"math"
	"strings"
	"testing"
)

func TestComputeStatsFixture(t *testing.T) {
	t.Parallel()
	g := buildTestGraph(t)
	s := ComputeStats(g)
	if s.NumLeft != 3 || s.NumRight != 3 || s.NumEdges != 6 {
		t.Fatalf("shape = %d/%d/%d", s.NumLeft, s.NumRight, s.NumEdges)
	}
	if s.MeanLeftDegree != 2 || s.MeanRightDegree != 2 {
		t.Errorf("means = %v/%v, want 2/2", s.MeanLeftDegree, s.MeanRightDegree)
	}
	if s.MaxLeftDegree != 3 || s.MaxRightDegree != 3 {
		t.Errorf("max = %d/%d, want 3/3", s.MaxLeftDegree, s.MaxRightDegree)
	}
	if s.MedianLeftDegree != 2 {
		t.Errorf("median left = %v, want 2", s.MedianLeftDegree)
	}
	// density = 6 / 9
	if math.Abs(s.Density-6.0/9.0) > 1e-12 {
		t.Errorf("density = %v", s.Density)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	t.Parallel()
	s := ComputeStats(&Graph{})
	if s.NumEdges != 0 || s.MeanLeftDegree != 0 || s.Density != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestStatsString(t *testing.T) {
	t.Parallel()
	s := ComputeStats(buildTestGraph(t))
	out := s.String()
	for _, want := range []string{"|L|=3", "|R|=3", "|E|=6", "gini"} {
		if !strings.Contains(out, want) {
			t.Errorf("Stats.String() = %q missing %q", out, want)
		}
	}
}

func TestGiniUniformIsZero(t *testing.T) {
	t.Parallel()
	// A perfectly regular graph has Gini 0 on both sides.
	g, err := FromEdges(4, 4, []Edge{
		{0, 0}, {1, 1}, {2, 2}, {3, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(g)
	if s.GiniLeft != 0 || s.GiniRight != 0 {
		t.Errorf("gini = %v/%v, want 0/0", s.GiniLeft, s.GiniRight)
	}
}

func TestGiniConcentrated(t *testing.T) {
	t.Parallel()
	// One hub owns every edge: Gini approaches (n-1)/n.
	edges := make([]Edge, 10)
	for i := range edges {
		edges[i] = Edge{Left: 0, Right: int32(i)}
	}
	g, err := FromEdges(5, 10, edges)
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(g)
	if s.GiniLeft < 0.7 {
		t.Errorf("GiniLeft = %v, want high concentration", s.GiniLeft)
	}
}

func TestDegreeHistogram(t *testing.T) {
	t.Parallel()
	g := buildTestGraph(t)
	h := DegreeHistogram(g, Left)
	// degrees on left: 2, 1, 3 -> hist[1]=1, hist[2]=1, hist[3]=1
	want := []int64{0, 1, 1, 1}
	if len(h) != len(want) {
		t.Fatalf("hist len = %d, want %d", len(h), len(want))
	}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("hist[%d] = %d, want %d", i, h[i], want[i])
		}
	}
}

func TestDegreeQuantile(t *testing.T) {
	t.Parallel()
	g := buildTestGraph(t)
	if q := DegreeQuantile(g, Left, 0); q != 1 {
		t.Errorf("q0 = %v, want 1", q)
	}
	if q := DegreeQuantile(g, Left, 1); q != 3 {
		t.Errorf("q1 = %v, want 3", q)
	}
	if !math.IsNaN(DegreeQuantile(g, Left, -0.5)) {
		t.Error("negative quantile should be NaN")
	}
	if !math.IsNaN(DegreeQuantile(&Graph{}, Left, 0.5)) {
		t.Error("quantile of empty side should be NaN")
	}
}
