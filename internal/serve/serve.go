// Package serve turns the one-shot release pipeline into a long-lived,
// budget-accounted, multi-tenant serving layer — the ROADMAP's "serve
// releases" shape.
//
// A Registry owns named datasets. Each dataset is cold-started from a
// bipartite.EdgeSource through the streamed two-pass
// hierarchy.BuildFromEdges, so the process never holds an O(E) graph per
// dataset — only the built Tree (degrees, permutations, cell matrices).
// Ingest runs on a bounded set of lanes, each retaining one
// hierarchy.Builder so repeated ingests reuse scratch and worker pools.
//
// Every dataset carries one accountant.Ledger with the dataset's total
// (ε, δ) budget. Every query debits the ledger BEFORE any noise is
// drawn; once the budget is exhausted the dataset refuses further
// queries with accountant.ErrBudgetExceeded, forever. The audit trail
// records which session spent what.
//
// Queries run through Session handles. A session owns a
// release.Engine — the reusable Phase-2 tail, whose cell buffer makes
// repeated histogram releases allocation-free — and a private RNG
// stream derived purely from (registry seed, dataset name, data
// fingerprint, session stream id) via rng.Source.Split — the data
// fingerprint keeps a re-ingested name from replaying stale noise
// against new data. Each query then splits off its own
// child keyed by BOTH the sequence number and the query's full identity
// (kind, level, side, k), so two sessions that share a stream id but
// issue different queries never share a single draw — an adversary
// cannot difference two such responses to cancel the noise. Sessions
// with pinned stream ids replay byte-identical releases for the same
// query sequence, which is what makes concurrent serving reproducible:
// give every goroutine its own session and the interleaving cannot
// change any answer, only the ledger's admission order.
//
// Because answers are pure functions of their key, every dataset also
// carries a bounded-LRU response cache (cache.go): replaying a resident
// (stream, seq, query) key returns the byte-identical prior answer
// without debiting the ledger or re-running Phase 2 — the DP cost of
// those bytes was already paid. Concurrent replays of one key compute
// once. Config.MaxCacheEntries sizes it; re-ingests start a fresh cache.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/accountant"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/hierarchy"
	"repro/internal/query"
	"repro/internal/release"
	"repro/internal/rng"
)

// Errors returned by the registry and its sessions. Budget exhaustion
// surfaces as accountant.ErrBudgetExceeded (test with errors.Is).
var (
	ErrDatasetExists  = errors.New("serve: dataset already exists")
	ErrUnknownDataset = errors.New("serve: unknown dataset")
	ErrUnknownSession = errors.New("serve: unknown session")
	ErrClosed         = errors.New("serve: registry closed")
	ErrBadConfig      = errors.New("serve: invalid config")
)

// Stream-derivation domains: every random decision in the serving layer
// descends from rng.New(seed).Split(fnv64a(dataset)).Split(domain), so
// the phase-1 cuts and the session streams never share draws.
const (
	domainPhase1 = 1
	// domainSessions and domainAutoSessions are disjoint derivation
	// domains for SessionAt (client-pinned ids) and NewSession
	// (auto-assigned ids): an auto session can never land on a pinned
	// session's stream no matter what numeric id either carries, and
	// both id spaces stay small enough to round-trip exactly through
	// JSON doubles.
	domainSessions     = 2
	domainAutoSessions = 3
)

// Query kinds, folded into every per-query stream derivation so queries
// of different shapes can never share a draw.
const (
	queryKindView = iota + 1
	queryKindMarginal
	queryKindTopK
)

// Config configures a Registry. The zero value is not usable: Budget
// must validate. Everything else has serving defaults.
type Config struct {
	// Budget is the total (ε, δ) privacy budget of EVERY dataset added
	// to the registry; a per-dataset ledger enforces it.
	Budget dp.Params
	// PerQuery is the (ε, δ) one query consumes (a level view consumes
	// two: count + histogram). Zero defaults to Budget/64.
	PerQuery dp.Params
	// Rounds is the specialization depth of ingested hierarchies
	// (default 9, the paper's DBLP setup).
	Rounds int
	// Phase1Epsilon is the per-cut exponential-mechanism budget for
	// ingest-time specialization. Zero (default) builds the non-private
	// balanced hierarchy; positive values debit 2·Rounds·Phase1Epsilon
	// from the dataset's ledger at ingest.
	Phase1Epsilon float64
	// Model, Calib and Mechanism configure the Phase-2 releases
	// (defaults: cells, classical, and the strategy's count mechanism —
	// gaussian for the default strategy). A non-zero Mechanism overrides
	// the strategy's count mechanism for every dataset.
	Model     core.GroupModel
	Calib     core.Calibration
	Mechanism core.NoiseMechanism
	// Strategy names the registry-wide default release strategy
	// (release.Strategies): the composed partitioner × noise ×
	// consistency plan ingests build under and sessions answer with.
	// Empty selects release.DefaultStrategyName, the paper's quadtree +
	// Gaussian pipeline. Individual datasets may override it at
	// AddDatasetWith / the HTTP ingest request. Unknown names fail Open
	// with ErrBadConfig.
	Strategy string
	// Seed roots every RNG stream. Use rng.NewRandomSeed in production;
	// a pinned seed makes every session's releases replayable.
	Seed uint64
	// Workers parallelizes each ingest's two-pass build (both the degree
	// pass and the cell scan shard across it). Trees are identical for
	// any value.
	Workers int
	// ReleaseWorkers shards every session's Phase-2 noise pass across
	// this many goroutines at cache-sized chunk granularity
	// (release.Engine.SetWorkers). Each chunk draws from its own
	// fork-derived stream, so released bytes are bit-identical for every
	// value — the knob trades cores per query for single-query latency
	// on large levels; under high query concurrency 1 (the default)
	// usually wins because concurrent sessions already fill the machine.
	ReleaseWorkers int
	// IngestLanes bounds concurrent dataset builds; each lane retains
	// one hierarchy.Builder across ingests (default 1).
	IngestLanes int
	// LedgerDir enables crash-correct privacy accounting: each dataset's
	// ledger becomes an accountant.DurableLedger backed by an
	// append-only WAL (plus periodic snapshot) under this directory,
	// keyed by dataset name AND data fingerprint — re-ingesting the same
	// data reopens the same file and replays its spent budget (exhausted
	// stays exhausted across restarts), while different data under a
	// reused name starts a fresh ledger. Empty (the default) keeps
	// in-memory ledgers, which forget every debit on restart.
	LedgerDir string
	// LedgerAddr points privacy accounting at a shared gdpledgerd
	// sequencer (host:port or http://host:port, or a comma-separated
	// member list "a:8850,b:8850,c:8850" naming every node of a
	// replicated sequencer group): each dataset's ledger becomes an
	// accountant.RemoteLedger spending against the sequencer's durable
	// budget for the (name, fingerprint) key — the deployment shape
	// where N replicas share ONE budget instead of silently multiplying
	// it. With a member list the client walks the membership on network
	// errors and primary fences, so spends survive any minority of
	// sequencer failures. Mutually exclusive with LedgerDir and with the
	// LedgerFsync*/LedgerSnapshotEvery knobs (durability policy lives
	// with the sequencer); conflicts fail Open with ErrBadConfig.
	LedgerAddr string
	// LedgerFsync is the WAL fsync policy when LedgerDir is set:
	// accountant.FsyncAlways (default — every admission is durable
	// before any noise is drawn), FsyncInterval, or FsyncOff.
	LedgerFsync accountant.FsyncPolicy
	// LedgerFsyncInterval bounds the unsynced window under
	// FsyncInterval (0 selects the accountant default).
	LedgerFsyncInterval time.Duration
	// LedgerSnapshotEvery compacts each WAL after this many records
	// (0 selects the accountant default; negative disables compaction).
	LedgerSnapshotEvery int
	// ledgerOpenWriter is the test-only fault-injection seam threaded
	// into accountant.DurableOptions.OpenWriter.
	ledgerOpenWriter func(path string) (accountant.WriteSyncer, error)
	// ledgerRemoteOptions overrides the RemoteLedger client policy
	// (test-only — fast retries against stopped sequencers).
	ledgerRemoteOptions accountant.RemoteOptions
	// MaxCacheEntries bounds each dataset's response cache: answered
	// pinned-session queries are retained by their full identity (stream
	// domain, stream id, seq, kind, level, side, k) and a replay of the
	// exact key returns the byte-identical prior answer WITHOUT debiting
	// the ledger or re-running Phase 2 — the DP cost of a cached answer
	// was already paid (see cache.go). Auto sessions bypass the cache:
	// their keys are never replayable. 0 selects DefaultMaxCacheEntries;
	// negative disables caching. Mind the memory: a cached level view
	// retains its whole cell histogram.
	MaxCacheEntries int

	// strategy is the resolved registry-wide default; mechExplicit
	// records whether Mechanism was set by the caller (and so overrides
	// every dataset strategy's count mechanism) or defaulted.
	strategy     *release.Strategy
	mechExplicit bool
}

// withDefaults validates cfg and fills the serving defaults.
func (c Config) withDefaults() (Config, error) {
	if err := c.Budget.Validate(); err != nil {
		return Config{}, fmt.Errorf("%w: budget: %v", ErrBadConfig, err)
	}
	if c.PerQuery == (dp.Params{}) {
		c.PerQuery = dp.Params{Epsilon: c.Budget.Epsilon / 64, Delta: c.Budget.Delta / 64}
	}
	if err := c.PerQuery.Validate(); err != nil {
		return Config{}, fmt.Errorf("%w: per-query budget: %v", ErrBadConfig, err)
	}
	if c.Rounds == 0 {
		c.Rounds = 9
	}
	if c.Rounds < 1 || c.Rounds > hierarchy.MaxRounds {
		return Config{}, fmt.Errorf("%w: rounds %d outside [1,%d]", ErrBadConfig, c.Rounds, hierarchy.MaxRounds)
	}
	if c.Phase1Epsilon < 0 {
		return Config{}, fmt.Errorf("%w: negative phase-1 epsilon %v", ErrBadConfig, c.Phase1Epsilon)
	}
	strat, err := release.Strategies.Resolve(c.Strategy)
	if err != nil {
		return Config{}, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	c.strategy = strat
	if c.Model == 0 {
		c.Model = core.ModelCells
	}
	if c.Calib == 0 {
		c.Calib = core.CalibrationClassical
	}
	c.mechExplicit = c.Mechanism != 0
	if c.Mechanism == 0 {
		c.Mechanism = strat.Noise.Count
	}
	if c.IngestLanes == 0 {
		c.IngestLanes = 1
	}
	if c.IngestLanes < 0 {
		return Config{}, fmt.Errorf("%w: negative ingest lanes %d", ErrBadConfig, c.IngestLanes)
	}
	if c.ReleaseWorkers < 0 {
		return Config{}, fmt.Errorf("%w: negative release workers %d", ErrBadConfig, c.ReleaseWorkers)
	}
	if c.ReleaseWorkers == 0 {
		c.ReleaseWorkers = 1
	}
	if c.MaxCacheEntries == 0 {
		c.MaxCacheEntries = DefaultMaxCacheEntries
	}
	if c.LedgerDir != "" && c.LedgerAddr != "" {
		return Config{}, fmt.Errorf("%w: ledger dir %q and ledger addr %q are mutually exclusive — accounting is either local-durable or delegated to a sequencer, never both", ErrBadConfig, c.LedgerDir, c.LedgerAddr)
	}
	if c.LedgerAddr != "" {
		// Durability policy lives with the sequencer; a local fsync or
		// snapshot knob alongside a remote ledger would be silently
		// ignored, and silently ignored durability config is exactly the
		// misconfiguration this layer exists to refuse.
		switch {
		case c.LedgerFsync != "":
			return Config{}, fmt.Errorf("%w: ledger fsync policy %q has no effect with a remote ledger (set it on gdpledgerd)", ErrBadConfig, c.LedgerFsync)
		case c.LedgerFsyncInterval != 0:
			return Config{}, fmt.Errorf("%w: ledger fsync interval has no effect with a remote ledger (set it on gdpledgerd)", ErrBadConfig)
		case c.LedgerSnapshotEvery != 0:
			return Config{}, fmt.Errorf("%w: ledger snapshot cadence has no effect with a remote ledger (set it on gdpledgerd)", ErrBadConfig)
		}
	}
	if c.LedgerDir != "" {
		policy, err := accountant.ParseFsyncPolicy(string(c.LedgerFsync))
		if err != nil {
			return Config{}, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		c.LedgerFsync = policy
	}
	// Fail the whole registry rather than every future session: the
	// engine configuration must be releasable.
	if _, err := release.NewEngine(c.Model, c.Calib, c.Mechanism); err != nil {
		return Config{}, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	// Every served query under a Gaussian cell stage releases a
	// Gaussian-calibrated histogram, so probe the calibration with the
	// per-query budget NOW: a config the engine can never answer (e.g.
	// δ=0) must fail Open instead of draining ledgers through post-spend
	// engine errors. Pure-ε strategies skip the probe — they are the
	// configuration where δ=0 budgets are legitimate. Datasets that
	// override the strategy re-probe at AddDataset.
	if strat.Noise.Cells == core.MechGaussian {
		if _, err := core.Sigma(c.PerQuery, 1, c.Calib); err != nil {
			return Config{}, fmt.Errorf("%w: per-query budget: %v", ErrBadConfig, err)
		}
	}
	return c, nil
}

// Registry owns named datasets and the ingest lanes that build them. It
// is safe for concurrent use.
type Registry struct {
	cfg   Config
	lanes chan *hierarchy.Builder
	// ingests counts in-flight AddDataset calls. Close waits for it
	// before draining the lane channel, so an ingest that passed the
	// closed check can never block forever on a drained channel.
	ingests sync.WaitGroup

	// cacheCap is the live per-dataset response-cache capacity. It is
	// read on every cache insertion (not captured at dataset build), so
	// the HTTP handler's MaxCacheEntries override reaches datasets that
	// already exist; ≤ 0 disables caching.
	cacheCap atomic.Int64

	mu       sync.RWMutex
	closed   bool
	datasets map[string]*Dataset // nil value = ingest in flight (name reserved)
}

// Open validates cfg and returns an empty registry. When cfg.LedgerDir
// is set the directory is created if needed; every dataset added to the
// registry then accounts its budget in a durable WAL there. When
// cfg.LedgerAddr is set the sequencer is pinged once (any READY member
// of a comma-separated group will do) — a registry that could never
// account a spend must fail at startup, not on the first ingest.
func Open(cfg Config) (*Registry, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if cfg.LedgerDir != "" {
		if err := os.MkdirAll(cfg.LedgerDir, 0o755); err != nil {
			return nil, fmt.Errorf("%w: ledger dir: %v", ErrBadConfig, err)
		}
	}
	if cfg.LedgerAddr != "" {
		if err := pingSequencer(cfg.LedgerAddr); err != nil {
			return nil, fmt.Errorf("%w: ledger addr %q: %v", ErrBadConfig, cfg.LedgerAddr, err)
		}
	}
	r := &Registry{
		cfg:      cfg,
		lanes:    make(chan *hierarchy.Builder, cfg.IngestLanes),
		datasets: make(map[string]*Dataset),
	}
	r.cacheCap.Store(int64(cfg.MaxCacheEntries))
	for i := 0; i < cfg.IngestLanes; i++ {
		r.lanes <- hierarchy.NewBuilder()
	}
	return r, nil
}

// setCacheCap retargets the live response-cache capacity (the HTTP
// handler's MaxCacheEntries override) and eagerly trims every existing
// dataset's cache to it — a shrink (or a disable, after which no
// insertion would ever trim again) must release the retained answers,
// not strand them until the dataset is removed.
func (r *Registry) setCacheCap(n int) {
	r.cacheCap.Store(int64(n))
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, ds := range r.datasets {
		if ds != nil {
			ds.cache.trim(n)
		}
	}
}

// Config returns the registry's resolved configuration.
func (r *Registry) Config() Config { return r.cfg }

// Close releases the ingest lanes' worker pools (waiting for in-flight
// ingests to return their Builders) and flushes and closes every
// dataset's durable ledger WAL — the graceful-shutdown path that makes
// "every admitted spend is on disk" hold even under FsyncInterval/Off.
// Further AddDataset calls fail with ErrClosed. Datasets with in-memory
// ledgers stay queryable; durable datasets fail closed on their next
// spend (their WAL is gone — admitting unlogged ops would violate the
// durability contract).
func (r *Registry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	r.ingests.Wait()
	for i := 0; i < r.cfg.IngestLanes; i++ {
		(<-r.lanes).Close()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var errs []error
	for name, ds := range r.datasets {
		if ds == nil {
			continue
		}
		if err := ds.closeLedger(); err != nil {
			errs = append(errs, fmt.Errorf("serve: closing ledger of %q: %w", name, err))
		}
	}
	return errors.Join(errs...)
}

// streamFor derives the serving layer's RNG streams. The chain is
// rebuilt from the seed on every call, so the result is a pure function
// of (seed, dataset name, domain, label) — independent of call order,
// which is what makes concurrent sessions deterministic.
func (r *Registry) streamFor(dataset string, domain, label uint64) *rng.Source {
	h := fnv.New64a()
	h.Write([]byte(dataset))
	return rng.New(r.cfg.Seed).Split(h.Sum64()).Split(domain).Split(label)
}

// DatasetOptions carries per-dataset overrides of the registry
// configuration.
type DatasetOptions struct {
	// Strategy selects the release strategy this dataset is built under
	// and served with (release.Strategies). Empty inherits the
	// registry's configured strategy. Unknown names fail AddDatasetWith
	// with ErrBadConfig before any build work.
	Strategy string
}

// AddDataset cold-starts a named dataset from an edge stream under the
// registry's configured strategy: the two-pass streamed build runs on
// one ingest lane's retained Builder, and the dataset's ledger is
// opened with the configured budget (minus the phase-1 specialization
// cost when Phase1Epsilon > 0, debited before the build draws a single
// cut). The source's edges are never materialized — peak ingest memory
// is O(chunk + sides + 4^Rounds).
func (r *Registry) AddDataset(name string, src bipartite.EdgeSource) (*Dataset, error) {
	return r.AddDatasetWith(name, src, DatasetOptions{})
}

// AddDatasetWith is AddDataset with per-dataset overrides.
func (r *Registry) AddDatasetWith(name string, src bipartite.EdgeSource, opts DatasetOptions) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: empty dataset name", ErrBadConfig)
	}
	if src == nil {
		return nil, hierarchy.ErrNilSource
	}
	strat, err := r.datasetStrategy(opts)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if _, ok := r.datasets[name]; ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDatasetExists, name)
	}
	r.datasets[name] = nil // reserve the name while the build runs unlocked
	r.ingests.Add(1)       // under r.mu, so Close cannot start draining between the closed check and here
	r.mu.Unlock()
	defer r.ingests.Done()

	ds, err := r.buildDataset(name, src, strat)
	r.mu.Lock()
	if err != nil {
		delete(r.datasets, name)
	} else {
		r.datasets[name] = ds
	}
	r.mu.Unlock()
	return ds, err
}

// phase1Label is the audit label of the ingest-time specialization
// debit; durable reopens look for it to avoid double-charging.
// Non-default strategies prefix it (like every other op label) with
// "strategy=<name>/" — absence of the prefix IS the default strategy,
// keeping default audit trails byte-identical to the pre-strategy
// serving layer.
const phase1Label = "ingest/phase1"

// datasetStrategy resolves a dataset's effective strategy and validates
// that this registry can actually serve it — unknown names and
// σ-incompatible per-query budgets fail here with ErrBadConfig, before
// any name is reserved or any build work starts.
func (r *Registry) datasetStrategy(opts DatasetOptions) (*release.Strategy, error) {
	strat := r.cfg.strategy
	if opts.Strategy != "" {
		s, err := release.Strategies.Resolve(opts.Strategy)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		strat = s
	}
	// A Gaussian cell stage needs a σ-calibratable per-query budget;
	// re-probe here because a pure-ε registry default skips the probe
	// at Open (δ=0 budgets are legitimate there).
	if strat.Noise.Cells == core.MechGaussian {
		if _, err := core.Sigma(r.cfg.PerQuery, 1, r.cfg.Calib); err != nil {
			return nil, fmt.Errorf("%w: per-query budget: %v", ErrBadConfig, err)
		}
	}
	return strat, nil
}

// datasetCountMech resolves a dataset's count-release mechanism: an
// explicit Config.Mechanism overrides the strategy's count stage; the
// cell stage always follows the strategy.
func (r *Registry) datasetCountMech(strat *release.Strategy) core.NoiseMechanism {
	if r.cfg.mechExplicit {
		return r.cfg.Mechanism
	}
	return strat.Noise.Count
}

// buildDataset runs the ledgered ingest on a checked-out lane.
//
// With an in-memory ledger the phase-1 cost is debited before the build
// draws a single cut. With a durable ledger the file is keyed by the
// data fingerprint, which only exists after the build, so the order
// inverts: build, open (replaying any prior incarnation's spends), then
// debit phase 1 unless the replayed trail already charged it. A cheap
// pre-check still refuses obviously over-budget specializations before
// the expensive build, and nothing is ever released from a dataset
// whose ledger refused the phase-1 debit — the ingest fails and the
// name is never served.
func (r *Registry) buildDataset(name string, src bipartite.EdgeSource, strat *release.Strategy) (*Dataset, error) {
	durable := r.cfg.LedgerDir != ""
	remote := r.cfg.LedgerAddr != ""
	salt := release.StrategySalt(strat.Name())
	labelPrefix := ""
	if strat.Name() != release.DefaultStrategyName {
		labelPrefix = "strategy=" + strat.Name() + "/"
	}
	ingestLabel := labelPrefix + phase1Label

	// The strategy's partitioner declares the ingest cost (the
	// quadtree's 2·Rounds side-depths, the community partitioner's one
	// randomized response per side) and resolves the build plan. Its
	// phase-1 stream is salted per strategy, so two strategies over the
	// same data never share a cut or assignment draw.
	pcfg := release.PartitionConfig{
		Rounds:  r.cfg.Rounds,
		Epsilon: r.cfg.Phase1Epsilon,
		Workers: r.cfg.Workers,
	}
	phase1Ops := strat.Partitioner.Ops(pcfg)
	phase1Cost := release.PhaseCost(phase1Ops)
	charge := len(phase1Ops) > 0
	plan, err := strat.Partitioner.PlanSource(src, pcfg, r.streamFor(name, domainPhase1, salt))
	if err != nil {
		return nil, fmt.Errorf("serve: ingest %q: %w", name, err)
	}

	var ledger accountant.Ledger
	var durableLedger *accountant.DurableLedger
	var remoteLedger *accountant.RemoteLedger
	if !durable && !remote {
		mem, err := accountant.NewLedger(r.cfg.Budget)
		if err != nil {
			return nil, err
		}
		if charge {
			if err := mem.Spend(ingestLabel, phase1Cost); err != nil {
				return nil, fmt.Errorf("serve: ingest %q: %w", name, err)
			}
		}
		ledger = mem
	} else if charge {
		// Durable and remote ledgers are keyed by the data fingerprint,
		// which only exists after the build; pre-check against an empty
		// budget so a misconfigured specialization fails before the
		// build, like the mem path.
		probe, err := accountant.NewLedger(r.cfg.Budget)
		if err != nil {
			return nil, err
		}
		if err := probe.Spend(ingestLabel, phase1Cost); err != nil {
			return nil, fmt.Errorf("serve: ingest %q: %w", name, err)
		}
	}

	lane := <-r.lanes
	tree, err := lane.BuildFromEdges(src, hierarchy.Options{
		Rounds:   r.cfg.Rounds,
		Bisector: plan.Bisector,
		Keys:     plan.Keys,
		Workers:  r.cfg.Workers,
	})
	r.lanes <- lane
	if err != nil {
		return nil, fmt.Errorf("serve: ingest %q: %w", name, err)
	}
	// The strategy salt joins the fingerprint so distinct strategies
	// over identical data never share session streams or a ledger WAL;
	// the default strategy's salt is 0, keeping its fingerprints — and
	// with them WAL filenames and every session stream — exactly as
	// before the strategy seam.
	print := fingerprintTree(tree) ^ salt

	if durable {
		path := filepath.Join(r.cfg.LedgerDir, ledgerFileName(name, print))
		dl, err := accountant.OpenDurableLedger(r.cfg.Budget, path, accountant.DurableOptions{
			Fsync:         r.cfg.LedgerFsync,
			FsyncInterval: r.cfg.LedgerFsyncInterval,
			SnapshotEvery: r.cfg.LedgerSnapshotEvery,
			OpenWriter:    r.cfg.ledgerOpenWriter,
		})
		if err != nil {
			return nil, fmt.Errorf("serve: ingest %q: opening ledger: %w", name, err)
		}
		if charge && !hasOpLabeled(dl, ingestLabel) {
			if err := dl.Spend(ingestLabel, phase1Cost); err != nil {
				dl.Close()
				return nil, fmt.Errorf("serve: ingest %q: %w", name, err)
			}
		}
		ledger = dl
		durableLedger = dl
	}
	if remote {
		// Same (name, fingerprint) key as the WAL filename minus its
		// extension: every replica that ingests the same data under the
		// same name attaches to — and spends from — ONE sequencer budget.
		// The phase-1 dedup below keeps reopens and replica restarts from
		// re-charging the specialization; replicas racing the very first
		// ingest may each charge it, which errs in the only safe
		// direction (budget over-debited, never under-accounted).
		rl, err := accountant.OpenRemoteLedger(r.cfg.LedgerAddr, ledgerKey(name, print), r.cfg.Budget, r.cfg.ledgerRemoteOptions)
		if err != nil {
			return nil, fmt.Errorf("serve: ingest %q: attaching remote ledger: %w", name, err)
		}
		if charge && !hasOpLabeled(rl, ingestLabel) {
			if err := rl.Spend(ingestLabel, phase1Cost); err != nil {
				rl.Close()
				return nil, fmt.Errorf("serve: ingest %q: %w", name, err)
			}
		}
		ledger = rl
		remoteLedger = rl
	}

	return &Dataset{
		reg:         r,
		name:        name,
		tree:        tree,
		ledger:      ledger,
		durable:     durableLedger,
		remote:      remoteLedger,
		print:       print,
		strat:       strat,
		countMech:   r.datasetCountMech(strat),
		labelPrefix: labelPrefix,
		// A fresh cache per ingest is the invalidation story: re-adding a
		// name (same or different data) can never serve a previous
		// incarnation's answers.
		cache: newRespCache(func() int { return int(r.cacheCap.Load()) }),
	}, nil
}

// hasOpLabeled reports whether the ledger's trail contains an op with
// the given label (ingest-time only — it materializes the trail).
func hasOpLabeled(l accountant.Ledger, label string) bool {
	for _, op := range l.Ops() {
		if op.Label == label {
			return true
		}
	}
	return false
}

// ledgerKey keys a dataset's budget by its name AND data fingerprint:
// re-ingesting different data under a reused name must start a fresh
// budget, never inherit (or clobber) the old one. The name is sanitized
// for the filesystem (and for sequencer URLs), so an fnv hash of the
// exact name keeps two names that sanitize identically ("a/b" vs "a_b")
// from colliding into one shared budget. Locally the key names the WAL
// file (ledgerFileName); remotely it names the sequencer ledger — the
// SAME key either way, so every replica that ingested the same data
// lands on the same budget.
func ledgerKey(name string, print uint64) string {
	h := fnv.New64a()
	h.Write([]byte(name))
	safe := make([]byte, 0, len(name))
	for i := 0; i < len(name) && len(safe) < 40; i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
			safe = append(safe, c)
		default:
			safe = append(safe, '_')
		}
	}
	return fmt.Sprintf("%s-%016x-%016x", safe, h.Sum64(), print)
}

// ledgerFileName is the on-disk WAL name of a dataset's local durable
// ledger.
func ledgerFileName(name string, print uint64) string {
	return ledgerKey(name, print) + ".wal"
}

// pingSequencer checks that a gdpledgerd sequencer is READY to admit
// spends: addr is one host:port (or http://host:port) or a
// comma-separated group member list, and the ping succeeds if ANY
// member answers /readyz with 200. Readiness — not liveness — is the
// right probe here: a follower that is up but has lost its leader
// answers /healthz cheerfully while every spend routed at it would
// bounce.
func pingSequencer(addr string) error {
	client := &http.Client{Timeout: 2 * time.Second}
	var lastErr error
	for _, member := range strings.Split(addr, ",") {
		member = strings.TrimSpace(member)
		if member == "" {
			continue
		}
		if !strings.Contains(member, "://") {
			member = "http://" + member
		}
		resp, err := client.Get(strings.TrimSuffix(member, "/") + "/readyz")
		if err != nil {
			lastErr = err
			continue
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return nil
		}
		lastErr = fmt.Errorf("sequencer readyz answered HTTP %d", resp.StatusCode)
	}
	if lastErr == nil {
		return errors.New("no sequencer members in address list")
	}
	return fmt.Errorf("no ready sequencer member: %w", lastErr)
}

// Ready reports whether the registry can currently serve and account
// queries: it is open, no preloaded ingest is still building, and (when
// accounting is delegated) at least one sequencer member is ready. The
// false reason is operator-facing — it names the gate that failed.
func (r *Registry) Ready() (bool, string) {
	r.mu.RLock()
	closed := r.closed
	building := 0
	for _, ds := range r.datasets {
		if ds == nil {
			building++
		}
	}
	r.mu.RUnlock()
	if closed {
		return false, "registry closed"
	}
	if building > 0 {
		return false, fmt.Sprintf("%d ingest(s) in flight", building)
	}
	if r.cfg.LedgerAddr != "" {
		if err := pingSequencer(r.cfg.LedgerAddr); err != nil {
			return false, fmt.Sprintf("ledger sequencer: %v", err)
		}
	}
	return true, "ready"
}

// fingerprintTree hashes the dataset as served. The finest-level cell
// matrix determines every released statistic (higher levels aggregate
// it, sensitivities derive from it), so two ingests that share a
// fingerprint answer every query identically — shared noise streams
// between them reveal nothing — while ANY data change under a reused
// dataset name re-keys every session stream. Without this term a
// dataset removed and re-added (or re-ingested after a restart with a
// pinned seed) would replay the old noise against the new data, and a
// client could difference the responses to cancel it.
func fingerprintTree(t *hierarchy.Tree) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	st := t.DatasetStats()
	put(uint64(st.NumLeft))
	put(uint64(st.NumRight))
	put(uint64(st.NumEdges))
	// Level 0 is the finest histogram; the accessor only errors on a
	// malformed tree, which BuildFromEdges cannot return.
	cells, err := t.LevelCellCountsView(0)
	if err != nil {
		panic(fmt.Sprintf("serve: fingerprinting built tree: %v", err))
	}
	put(uint64(len(cells)))
	for _, c := range cells {
		put(uint64(c))
	}
	return h.Sum64()
}

// Dataset returns a served dataset by name.
func (r *Registry) Dataset(name string) (*Dataset, error) {
	r.mu.RLock()
	ds, ok := r.datasets[name]
	r.mu.RUnlock()
	if !ok || ds == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	return ds, nil
}

// Names lists the served datasets. Order is unspecified; callers sort
// when they need stable output.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.datasets))
	for name, ds := range r.datasets {
		if ds != nil {
			out = append(out, name)
		}
	}
	return out
}

// RemoveDataset drops a dataset from the registry. Its sessions keep
// working against the detached state until released — except durable
// datasets, whose WAL is flushed and closed here (releasing the file
// lock so a re-ingest of the same data can reopen the same budget);
// their detached sessions fail closed on the next spend.
func (r *Registry) RemoveDataset(name string) error {
	r.mu.Lock()
	ds, ok := r.datasets[name]
	if !ok || ds == nil {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	delete(r.datasets, name)
	r.mu.Unlock()
	if err := ds.closeLedger(); err != nil {
		return fmt.Errorf("serve: closing ledger of %q: %w", name, err)
	}
	return nil
}

// Dataset is one served hierarchy plus its privacy ledger. All methods
// are safe for concurrent use; queries go through Sessions.
type Dataset struct {
	reg    *Registry
	name   string
	tree   *hierarchy.Tree
	ledger accountant.Ledger
	// durable is non-nil iff ledger is a WAL-backed DurableLedger
	// (Config.LedgerDir set); it carries the durability-only surface
	// (Status, Sync, Close) the Ledger interface deliberately omits.
	durable *accountant.DurableLedger
	// remote is non-nil iff ledger spends against a gdpledgerd sequencer
	// (Config.LedgerAddr set).
	remote *accountant.RemoteLedger
	print  uint64 // data fingerprint (strategy-salted) folded into every session stream
	// strat is the strategy the dataset was built under; countMech its
	// resolved count-release mechanism; labelPrefix the "strategy=…/"
	// audit prefix (empty for the default strategy, whose trail must
	// stay byte-identical to the pre-strategy serving layer).
	strat       *release.Strategy
	countMech   core.NoiseMechanism
	labelPrefix string
	cache       *respCache
	nextID      atomic.Uint64
}

// closeLedger flushes and closes the dataset's durable WAL, or detaches
// its remote-ledger client (no-op for in-memory ledgers). Idempotent.
func (d *Dataset) closeLedger() error {
	if d.durable != nil {
		return d.durable.Close()
	}
	if d.remote != nil {
		return d.remote.Close()
	}
	return nil
}

// LedgerBackend names the accounting backend serving this dataset:
// "mem" (in-process, forgotten on restart), "wal" (local DurableLedger)
// or "remote" (shared gdpledgerd sequencer). Benchmark records and the
// /budget endpoint stamp it so results are never compared across
// backends.
func (d *Dataset) LedgerBackend() string {
	switch {
	case d.durable != nil:
		return "wal"
	case d.remote != nil:
		return "remote"
	default:
		return "mem"
	}
}

// Durability reports the dataset's durable-ledger status; ok is false
// for in-memory and remote ledgers (the sequencer owns the WAL —
// RemoteStatus reports the client's binding).
func (d *Dataset) Durability() (st accountant.DurableStatus, ok bool) {
	if d.durable == nil {
		return accountant.DurableStatus{}, false
	}
	return d.durable.Status(), true
}

// RemoteStatus reports the dataset's sequencer binding; ok is false for
// local ledgers.
func (d *Dataset) RemoteStatus() (st accountant.RemoteStatus, ok bool) {
	if d.remote == nil {
		return accountant.RemoteStatus{}, false
	}
	return d.remote.Status(), true
}

// CacheStats reports the dataset's response-cache counters.
func (d *Dataset) CacheStats() CacheStats { return d.cache.stats() }

// Name returns the registry key.
func (d *Dataset) Name() string { return d.name }

// Strategy returns the name of the release strategy the dataset was
// built under and is served with.
func (d *Dataset) Strategy() string { return d.strat.Name() }

// Stats summarizes the ingested dataset (computed from the streamed
// degrees — no graph was ever resident).
func (d *Dataset) Stats() bipartite.Stats { return d.tree.DatasetStats() }

// MaxLevel returns the hierarchy's root level; queryable levels are
// 0..MaxLevel.
func (d *Dataset) MaxLevel() int { return d.tree.MaxLevel() }

// Tree exposes the curator-side hierarchy (evaluation tooling only —
// it is not part of any served answer).
func (d *Dataset) Tree() *hierarchy.Tree { return d.tree }

// Budget, Spent and Remaining report the ledger state.
func (d *Dataset) Budget() dp.Params    { return d.ledger.Budget() }
func (d *Dataset) Spent() dp.Params     { return d.ledger.Spent() }
func (d *Dataset) Remaining() dp.Params { return d.ledger.Remaining() }

// AuditReport renders the ledger's audit trail.
func (d *Dataset) AuditReport() string { return d.ledger.AuditReport() }

// Ops returns the ledger's audit trail.
func (d *Dataset) Ops() []accountant.Op { return d.ledger.Ops() }

// OpCount returns the number of admitted ledger operations without
// materializing the audit trail.
func (d *Dataset) OpCount() int { return d.ledger.OpCount() }

// NewSession returns a session on the next auto-assigned stream id.
// Auto sessions derive their noise from a stream domain disjoint from
// SessionAt's, so no pinned id can ever land on an auto session's
// stream (and vice versa); their ids are unique per dataset but depend
// on allocation order, so pin ids with SessionAt when replayability
// matters.
func (d *Dataset) NewSession() *Session {
	return d.session(d.nextID.Add(1)-1, domainAutoSessions, false)
}

// SessionAt returns a session on a pinned stream id. Two pinned
// sessions with the same stream id (across restarts, across replicas
// with one seed) draw identical noise for identical query sequences
// against identical data — the replay contract; re-ingesting different
// data under the same name re-keys the streams (see fingerprintTree).
// Sharing a stream id leaks nothing beyond the replay itself: queries
// that differ in kind or parameters derive disjoint noise streams (see
// querySource). Re-running a sequence costs budget again only when the
// key has left the response cache: replays resident in the dataset's
// cache are served without a debit — their DP cost was already paid —
// while evicted or never-cached keys recompute and debit (cache.go).
func (d *Dataset) SessionAt(stream uint64) *Session {
	return d.session(stream, domainSessions, true)
}

// session constructs a handle on one (domain, stream id) noise stream.
func (d *Dataset) session(stream, domain uint64, pinned bool) *Session {
	eng, err := release.NewEngine(d.reg.cfg.Model, d.reg.cfg.Calib, d.countMech)
	if err == nil {
		err = eng.SetCellMechanism(d.strat.Noise.Cells)
	}
	if err != nil {
		// withDefaults and datasetStrategy pre-validated the engine
		// configuration.
		panic(fmt.Sprintf("serve: engine config became invalid: %v", err))
	}
	eng.SetWorkers(d.reg.cfg.ReleaseWorkers)
	// The data fingerprint joins the chain so a re-ingested name never
	// replays a previous ingest's noise against different data.
	return &Session{
		ds:     d,
		stream: stream,
		domain: domain,
		pinned: pinned,
		src:    d.reg.streamFor(d.name, domain, stream).Split(d.print),
		eng:    eng,
	}
}

// Session is one tenant's query handle: a reusable release engine (the
// cell-histogram buffer survives across queries), a private pre-split
// RNG stream, and the scratch buffers of the query tail — the per-query
// stream chain, the ledger label, and the marginal/top-k result vectors.
// Everything a steady-state query touches is retained here, so after
// warm-up a Marginal or TopK performs zero heap allocations end to end.
// A Session is NOT safe for concurrent use — open one per goroutine;
// sessions of one dataset may run fully in parallel.
type Session struct {
	ds     *Dataset
	stream uint64
	domain uint64
	pinned bool
	seq    uint64
	src    *rng.Source
	eng    *release.Engine

	// qsrc and qsub are the per-query stream-derivation scratch: the
	// Split chain collapses through them in place (rng.Source.SplitTo)
	// instead of allocating a Source per link.
	qsrc, qsub rng.Source
	// label is the ledger-label assembly buffer (accountant.SpendBytes).
	label []byte
	// marginals, topk and topkOut back the slices Marginal and TopK
	// return; all are overwritten by the session's next query.
	marginals []float64
	topk      query.TopKScratch
	topkOut   []int
}

// useCache reports whether this session's queries go through the
// dataset's response cache. Only pinned sessions participate: an auto
// session's stream id is unique for the dataset's lifetime and its seq
// only grows, so its keys can never be replayed — caching them would
// spend LRU capacity (and, for level views, whole retained histograms)
// on entries that evict the pinned replays the cache exists for.
func (s *Session) useCache() bool { return s.pinned && s.ds.cache.enabled() }

// cacheKeyFor is the query's full identity in the dataset's response
// cache — the same tuple the per-query stream derivation folds in, so
// equal keys imply byte-identical answers.
func (s *Session) cacheKeyFor(kind, level int, side bipartite.Side, k int) cacheKey {
	return cacheKey{
		domain: s.domain,
		stream: s.stream,
		seq:    s.seq,
		kind:   uint8(kind),
		level:  int32(level),
		side:   uint8(side),
		k:      int32(k),
	}
}

// serveCached is the one implementation of the cache singleflight
// protocol every query kind runs: acquire the key; as owner, compute
// (debiting the ledger) and publish into the entry before waking
// waiters; as waiter, wait — retrying if the owner aborted — and on a
// hit consume the seq slot and advance the session stream exactly as
// computing would have, WITHOUT a ledger debit. It returns the resident
// entry on a hit and nil after an owner compute, so callers load the
// payload without passing a third closure (keeping the hit path
// allocation-free).
func (s *Session) serveCached(key cacheKey, compute func() error, publish func(*cacheEntry)) (*cacheEntry, error) {
	c := s.ds.cache
	for {
		e, owner := c.acquire(key)
		if owner {
			if err := compute(); err != nil {
				c.abort(e)
				return nil, err
			}
			publish(e)
			c.complete(e)
			return nil, nil
		}
		<-e.ready
		if !e.ok {
			continue // owner aborted; retry (one waiter becomes owner)
		}
		s.querySource(int(key.kind), int(key.level), bipartite.Side(key.side), int(key.k))
		return e, nil
	}
}

// Dataset returns the session's dataset.
func (s *Session) Dataset() *Dataset { return s.ds }

// Stream returns the session's stream id. Pinned and auto sessions
// number their streams independently (disjoint derivation domains), so
// ids are only comparable between sessions of the same kind.
func (s *Session) Stream() uint64 { return s.stream }

// Pinned reports whether the session's stream id was pinned by the
// caller (SessionAt) — the replayable kind — or auto-assigned.
func (s *Session) Pinned() bool { return s.pinned }

// Seq returns the next query sequence number.
func (s *Session) Seq() uint64 { return s.seq }

// LevelView is one privilege tier's served answer: the noisy
// association count and the noisy cell histogram of the level — the
// serving analogue of release.View.
type LevelView struct {
	Level int               `json:"level"`
	Count core.LevelRelease `json:"count"`
	// Cells points into the session's reusable buffer: it is valid
	// until the session's next query (serialize or copy to retain).
	Cells *core.CellRelease `json:"cells"`
}

// querySource advances the session to its next per-query stream.
// Every query owns a Split chain keyed by its sequence number AND its
// full identity — one Split level per parameter, so distinct tuples
// take distinct paths through the stream tree with no hashing step to
// collide — and a query's draws depend only on (seed, dataset, stream,
// seq, kind, level, side, k), never on other sessions. Without the
// identity terms, two sessions pinned to one stream could issue
// different queries at the same seq, draw the same underlying variates,
// and let a client difference the responses to cancel the noise.
// The chain collapses in place through the session's scratch Source
// (values identical to the allocating Split chain); the returned
// pointer is invalidated by the session's next query.
func (s *Session) querySource(kind, level int, side bipartite.Side, k int) *rng.Source {
	q := &s.qsrc
	s.src.SplitTo(q, s.seq)
	q.SplitTo(q, uint64(kind))
	q.SplitTo(q, uint64(level))
	q.SplitTo(q, uint64(side))
	q.SplitTo(q, uint64(k))
	s.seq++
	return q
}

// spend debits the ledger, labeling the op with this session's stream
// and the query's sequence number. It is the gate in front of every
// noise draw: on ErrBudgetExceeded nothing has been sampled and the
// sequence number has not advanced. Everything the release engine
// could reject (level, side, k, the per-query params) is validated
// before spend is called; in the unreachable case of an engine error
// after a successful spend, the serving layer fails closed — the
// budget and the seq slot stay consumed, and nothing is refunded for a
// draw that may already have happened.
func (s *Session) spend(what string, level int, cost dp.Params) error {
	// Pinned ("s") and auto ("a") sessions number streams in disjoint
	// domains; the prefix keeps their audit labels unambiguous. The
	// label is assembled in the session's scratch and copied into the
	// ledger's arena — no per-query string allocation. Non-default
	// strategies lead with "strategy=<name>/" so the trail records what
	// plan answered; the default's labels stay byte-identical to the
	// pre-strategy serving layer.
	prefix := byte('s')
	if !s.pinned {
		prefix = 'a'
	}
	b := append(s.label[:0], s.ds.labelPrefix...)
	b = append(b, prefix)
	b = strconv.AppendUint(b, s.stream, 10)
	b = append(b, "/q"...)
	b = strconv.AppendUint(b, s.seq, 10)
	b = append(b, '/')
	b = append(b, what...)
	b = append(b, "/level"...)
	b = strconv.AppendInt(b, int64(level), 10)
	s.label = b
	if err := s.ds.ledger.SpendBytes(b, cost); err != nil {
		return fmt.Errorf("serve: %s on %q: %w", what, s.ds.name, err)
	}
	return nil
}

// checkLevel validates the level before any budget is spent.
func (s *Session) checkLevel(level int) error {
	_, err := s.ds.tree.DepthOfLevel(level)
	return err
}

// ReleaseLevel serves a level view: the εg-group-DP association count
// and the level's noisy cell histogram. It debits 2·PerQuery (count +
// histogram are two mechanism invocations) as one atomic ledger op.
// A response-cache hit on the full query identity returns the
// byte-identical prior answer without debiting the ledger (cache.go).
func (s *Session) ReleaseLevel(level int) (LevelView, error) {
	if err := s.checkLevel(level); err != nil {
		return LevelView{}, err
	}
	if s.useCache() {
		var view LevelView
		e, err := s.serveCached(s.cacheKeyFor(queryKindView, level, 0, 0),
			func() (err error) { view, err = s.releaseLevelCompute(level); return err },
			func(e *cacheEntry) {
				e.view = &cachedView{count: view.Count, cells: release.CloneCellRelease(*view.Cells)}
			})
		if err != nil {
			return LevelView{}, err
		}
		if e != nil { // hit: rehydrate through the session's engine buffer
			return LevelView{Level: level, Count: e.view.count, Cells: s.eng.LoadCells(&e.view.cells)}, nil
		}
		return view, nil
	}
	return s.releaseLevelCompute(level)
}

// releaseLevelCompute is the ledgered Phase-2 path of ReleaseLevel.
func (s *Session) releaseLevelCompute(level int) (LevelView, error) {
	pq := s.ds.reg.cfg.PerQuery
	cost := dp.Params{Epsilon: 2 * pq.Epsilon, Delta: 2 * pq.Delta}
	if err := s.spend("view", level, cost); err != nil {
		return LevelView{}, err
	}
	qsrc := s.querySource(queryKindView, level, 0, 0)
	qsrc.SplitTo(&s.qsub, 0)
	count, err := s.eng.Count(s.ds.tree, level, pq, &s.qsub)
	if err != nil {
		return LevelView{}, err
	}
	qsrc.SplitTo(&s.qsub, 1)
	cells, err := s.eng.Cells(s.ds.tree, level, pq, &s.qsub)
	if err != nil {
		return LevelView{}, err
	}
	return LevelView{Level: level, Count: count, Cells: cells}, nil
}

// Marginal serves the per-side-group association counts of a level: one
// fresh PerQuery histogram draw, post-processed (free) into row or
// column sums. The returned slice points into the session's reusable
// scratch — like LevelView.Cells, it is valid until the session's next
// query; copy to retain.
func (s *Session) Marginal(level int, side bipartite.Side) ([]float64, error) {
	if err := s.checkLevel(level); err != nil {
		return nil, err
	}
	if !side.Valid() {
		return nil, fmt.Errorf("serve: invalid side %v", side)
	}
	if s.useCache() {
		var m []float64
		e, err := s.serveCached(s.cacheKeyFor(queryKindMarginal, level, side, 0),
			func() (err error) { m, err = s.marginalCompute(level, side); return err },
			func(e *cacheEntry) { e.marginals = append([]float64(nil), m...) })
		if err != nil {
			return nil, err
		}
		if e != nil { // hit: copy into the session's reusable scratch
			s.marginals = append(s.marginals[:0], e.marginals...)
			return s.marginals, nil
		}
		return m, nil
	}
	return s.marginalCompute(level, side)
}

// marginalCompute is the ledgered Phase-2 path of Marginal.
func (s *Session) marginalCompute(level int, side bipartite.Side) ([]float64, error) {
	if err := s.spend("marginal", level, s.ds.reg.cfg.PerQuery); err != nil {
		return nil, err
	}
	cells, err := s.eng.Cells(s.ds.tree, level, s.ds.reg.cfg.PerQuery, s.querySource(queryKindMarginal, level, side, 0))
	if err != nil {
		return nil, err
	}
	m, err := query.MarginalCountsInto(s.marginals, *cells, side)
	if err != nil {
		return nil, err
	}
	s.marginals = m
	return m, nil
}

// TopK serves the k heaviest side groups of a level according to one
// fresh PerQuery histogram draw (heavy-hitter identification with the
// ranking as free post-processing). The returned slice points into the
// session's reusable scratch — valid until the session's next query;
// copy to retain.
func (s *Session) TopK(level int, side bipartite.Side, k int) ([]int, error) {
	if err := s.checkLevel(level); err != nil {
		return nil, err
	}
	if !side.Valid() {
		return nil, fmt.Errorf("serve: invalid side %v", side)
	}
	n, err := s.ds.tree.NumSideGroups(level)
	if err != nil {
		return nil, err
	}
	if k <= 0 || k > n {
		return nil, fmt.Errorf("serve: k=%d outside [1,%d]", k, n)
	}
	if s.useCache() {
		var groups []int
		e, err := s.serveCached(s.cacheKeyFor(queryKindTopK, level, side, k),
			func() (err error) { groups, err = s.topKCompute(level, side, k); return err },
			func(e *cacheEntry) { e.topk = append([]int(nil), groups...) })
		if err != nil {
			return nil, err
		}
		if e != nil { // hit: copy into the session's reusable scratch
			s.topkOut = append(s.topkOut[:0], e.topk...)
			return s.topkOut, nil
		}
		return groups, nil
	}
	return s.topKCompute(level, side, k)
}

// topKCompute is the ledgered Phase-2 path of TopK.
func (s *Session) topKCompute(level int, side bipartite.Side, k int) ([]int, error) {
	if err := s.spend("topk", level, s.ds.reg.cfg.PerQuery); err != nil {
		return nil, err
	}
	cells, err := s.eng.Cells(s.ds.tree, level, s.ds.reg.cfg.PerQuery, s.querySource(queryKindTopK, level, side, k))
	if err != nil {
		return nil, err
	}
	return query.TopKGroupsInto(&s.topk, *cells, side, k)
}
