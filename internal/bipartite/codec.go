package bipartite

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary format:
//
//	magic "BPG1"
//	flags uvarint          (bit 0: names present)
//	numLeft, numRight      uvarint
//	for each left node: degree uvarint, then neighbor deltas uvarint
//	                    (first neighbor absolute, then successive gaps-1)
//	if names: numLeft strings, numRight strings (uvarint length + bytes)
//
// Adjacency lists are strictly increasing after Build, so delta encoding
// is lossless and compact.

var binaryMagic = [4]byte{'B', 'P', 'G', '1'}

const flagNames = 1 << 0

// ErrBadFormat reports a corrupt or truncated binary stream.
var ErrBadFormat = errors.New("bipartite: bad binary format")

// EncodeBinary writes the graph to w in the package's compact binary
// format.
func EncodeBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return fmt.Errorf("bipartite: writing magic: %w", err)
	}
	var flags uint64
	if g.HasNames() {
		flags |= flagNames
	}
	writeUvarint(bw, flags)
	writeUvarint(bw, uint64(g.numLeft))
	writeUvarint(bw, uint64(g.numRight))
	for l := int32(0); l < g.numLeft; l++ {
		row := g.Neighbors(Left, l)
		writeUvarint(bw, uint64(len(row)))
		prev := int32(-1)
		for i, r := range row {
			if i == 0 {
				writeUvarint(bw, uint64(r))
			} else {
				writeUvarint(bw, uint64(r-prev-1))
			}
			prev = r
		}
	}
	if g.HasNames() {
		for l := int32(0); l < g.numLeft; l++ {
			writeString(bw, g.LeftName(l))
		}
		for r := int32(0); r < g.numRight; r++ {
			writeString(bw, g.RightName(r))
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("bipartite: flushing binary graph: %w", err)
	}
	return nil
}

// DecodeBinary reads a graph previously written by EncodeBinary and
// validates it.
func DecodeBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrBadFormat, err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, magic[:])
	}
	flags, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: flags: %v", ErrBadFormat, err)
	}
	numLeft, err := readCount(br, "numLeft")
	if err != nil {
		return nil, err
	}
	numRight, err := readCount(br, "numRight")
	if err != nil {
		return nil, err
	}
	b := NewBuilder(0)
	b.SetNumLeft(int32(numLeft))
	b.SetNumRight(int32(numRight))
	for l := int64(0); l < numLeft; l++ {
		deg, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: degree of left %d: %v", ErrBadFormat, l, err)
		}
		if deg > uint64(numRight) {
			return nil, fmt.Errorf("%w: degree %d exceeds right side %d", ErrBadFormat, deg, numRight)
		}
		prev := int64(-1)
		for i := uint64(0); i < deg; i++ {
			delta, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: neighbor of left %d: %v", ErrBadFormat, l, err)
			}
			var r int64
			if prev < 0 {
				r = int64(delta)
			} else {
				r = prev + 1 + int64(delta)
			}
			if r >= numRight {
				return nil, fmt.Errorf("%w: neighbor %d out of range", ErrBadFormat, r)
			}
			b.AddEdge(int32(l), int32(r))
			prev = r
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	if flags&flagNames != 0 {
		g.leftNames = make([]string, numLeft)
		g.rightNames = make([]string, numRight)
		for i := range g.leftNames {
			if g.leftNames[i], err = readString(br); err != nil {
				return nil, err
			}
		}
		for i := range g.rightNames {
			if g.rightNames[i], err = readString(br); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

func readCount(br *bufio.Reader, what string) (int64, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("%w: %s: %v", ErrBadFormat, what, err)
	}
	const maxNodes = 1 << 31
	if v >= maxNodes {
		return 0, fmt.Errorf("%w: %s %d exceeds int32 range", ErrBadFormat, what, v)
	}
	return int64(v), nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n]) //nolint:errcheck // bufio defers errors to Flush
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s) //nolint:errcheck // bufio defers errors to Flush
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", fmt.Errorf("%w: string length: %v", ErrBadFormat, err)
	}
	const maxName = 1 << 20
	if n > maxName {
		return "", fmt.Errorf("%w: name of %d bytes too long", ErrBadFormat, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", fmt.Errorf("%w: string body: %v", ErrBadFormat, err)
	}
	return string(buf), nil
}
