package experiments

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/metrics"
)

func quickOpts() Options {
	return Options{Quick: true, Seed: 11}
}

func TestNamesSortedAndComplete(t *testing.T) {
	t.Parallel()
	names := Names()
	want := []string{"adjacency", "budget-split", "calibration", "consistency", "delta", "figure1", "mechanism", "partitioner", "scale", "topk"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	t.Parallel()
	if _, err := Run("nope", quickOpts()); !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("unknown experiment error = %v", err)
	}
}

func TestOptionsDataset(t *testing.T) {
	t.Parallel()
	ds, err := (Options{Quick: true}).dataset()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != datagen.PresetDBLPTiny {
		t.Errorf("quick dataset = %q", ds.Name)
	}
	ds, err = (Options{}).dataset()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != datagen.PresetDBLPScaled {
		t.Errorf("default dataset = %q", ds.Name)
	}
	if _, err := (Options{Preset: "bogus"}).dataset(); err == nil {
		t.Error("bogus preset accepted")
	}
}

func TestFigure1QuickShape(t *testing.T) {
	t.Parallel()
	cfg, err := DefaultFigure1Config(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFigure1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != len(cfg.Levels) {
		t.Fatalf("series = %d, want %d", len(res.Series), len(cfg.Levels))
	}
	// Sensitivities (and hence noise) grow with level.
	for i := 1; i < len(res.Sensitivities); i++ {
		if res.Sensitivities[i] < res.Sensitivities[i-1] {
			t.Errorf("sensitivity not monotone at level index %d: %v", i, res.Sensitivities)
		}
	}
	// Expected RER decreases as eps grows, for every level.
	for _, s := range res.Expected {
		for ei := 1; ei < len(s.Y); ei++ {
			if s.Y[ei] > s.Y[ei-1] {
				t.Errorf("series %s expected RER increased with eps", s.Name)
			}
		}
	}
	// The coarsest released level has (weakly) the largest expected RER
	// at the smallest eps.
	first := res.Expected[0].Y[0]
	last := res.Expected[len(res.Expected)-1].Y[0]
	if last < first {
		t.Errorf("coarse level expected RER %v below fine level %v", last, first)
	}
	// Table shape: one row per eps, one column per level plus eps.
	if len(res.Table.Rows) != len(cfg.EpsGrid) {
		t.Errorf("table rows = %d", len(res.Table.Rows))
	}
	if len(res.Table.Headers) != len(cfg.Levels)+1 {
		t.Errorf("table headers = %d", len(res.Table.Headers))
	}
}

func TestFigure1Validation(t *testing.T) {
	t.Parallel()
	cfg, err := DefaultFigure1Config(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trials = 0
	if _, err := RunFigure1(cfg); err == nil {
		t.Error("zero trials accepted")
	}
	cfg.Trials = 1
	cfg.EpsGrid = nil
	if _, err := RunFigure1(cfg); err == nil {
		t.Error("empty grid accepted")
	}
}

func TestFigure1DeterministicUnderSeed(t *testing.T) {
	t.Parallel()
	cfg, err := DefaultFigure1Config(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trials = 2
	a, err := RunFigure1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFigure1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for si := range a.Series {
		for i := range a.Series[si].Y {
			if a.Series[si].Y[i] != b.Series[si].Y[i] {
				t.Fatal("figure1 not deterministic under fixed seed")
			}
		}
	}
}

func TestFigure1NodeGroupModel(t *testing.T) {
	t.Parallel()
	cfg, err := DefaultFigure1Config(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trials = 1
	cfg.Model = core.ModelNodeGroups
	res, err := RunFigure1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != len(cfg.Levels) {
		t.Error("node-group figure missing series")
	}
}

func TestRegistryRunnersQuick(t *testing.T) {
	// Each registry entry must produce a well-formed report in quick
	// mode. Run serially within subtests (they are CPU heavy).
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			report, err := Run(name, quickOpts())
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if report.Name != name {
				t.Errorf("report name = %q", report.Name)
			}
			if len(report.Tables) == 0 {
				t.Error("report has no tables")
			}
			for _, table := range report.Tables {
				if len(table.Rows) == 0 {
					t.Errorf("table %q empty", table.Title)
				}
				md := table.Markdown()
				if !strings.Contains(md, "|") {
					t.Error("markdown render failed")
				}
			}
		})
	}
}

func TestBudgetSplitOrdering(t *testing.T) {
	t.Parallel()
	report, err := RunBudgetSplit(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Per-level mode gives each level the full budget, so its RER must
	// (on average across levels) be no worse than composed-basic, which
	// splits the same budget across all levels.
	var perLevel, composed float64
	for _, s := range report.Series {
		var sum float64
		for _, y := range s.Y {
			sum += y
		}
		switch s.Name {
		case "per-level":
			perLevel = sum
		case "composed-basic":
			composed = sum
		}
	}
	if perLevel > composed {
		t.Errorf("per-level total RER %v worse than composed-basic %v", perLevel, composed)
	}
}

func TestAdjacencyDominance(t *testing.T) {
	t.Parallel()
	report, err := RunAdjacency(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var cells, nodes metrics.Series
	for _, s := range report.Series {
		switch s.Name {
		case "cells":
			cells = s
		case "node-groups":
			nodes = s
		}
	}
	if len(cells.Y) == 0 || len(nodes.Y) != len(cells.Y) {
		t.Fatal("missing series")
	}
	for i := range cells.Y {
		if nodes.Y[i] < cells.Y[i] {
			t.Errorf("level %v: node-group RER below cell RER", cells.X[i])
		}
	}
}
