// Group mode: the quorum-replicated sequencer.
//
// One primary accepts spends and synchronously streams checksummed WAL
// frames to its followers, acking a spend only after a majority of the
// group (itself included) has fsynced the frame — so any surviving
// majority reconstructs the exact spent/ops state. The protocol is a
// deliberately small raft subset, shaped by what a privacy ledger
// needs:
//
//   - The single-node epoch token generalizes to a monotonic TERM. A
//     node durably persists a term before acting at it; a persisted
//     term write IS that node's one vote for the term, so at most one
//     candidate can win any term and no separate votedFor state is
//     needed. Stale primaries get 409 epoch-fenced on their next
//     replication append — the same fencing machinery (and wire code)
//     the single-node sequencer uses against stale clients.
//   - A follower promotes only after reading a majority's durable
//     term + log position and durably writing a higher term to a
//     majority (the vote round). The raft up-to-date check — compare
//     (lastLogTerm, logLen) lexicographically — guarantees the winner
//     holds every committed entry.
//   - A new primary appends a no-op BARRIER entry at its term and
//     admits nothing until its whole log (barrier included) is
//     majority-committed: committing an old-term entry by counting
//     replicas directly is the classic raft Figure-8 unsafety.
//   - Entries are applied only once committed, so log truncation (the
//     conflict rule) only ever discards unapplied entries and no
//     rollback path exists. The applied state is an in-memory ledger
//     per key plus the op-ID dedup set; the replicated log is the
//     durable truth, exactly as the WAL is for a DurableLedger.
//   - The op-ID dedup index spans the ENTIRE local log, committed or
//     not: a spend whose replication round failed stays in the log, and
//     its retry must drive THAT entry to commit, never append a twin.
//
// A primary that cannot reach a quorum refuses spends with ErrNoQuorum
// (HTTP 503 — retryable; the multi-address client walks on). All
// decide→append→replicate→commit→apply steps run under one mutex:
// correctness first, and the sequencer's throughput ceiling is the
// majority fsync anyway.
package ledgerd

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/accountant"
	"repro/internal/dp"
)

// Group-mode errors; the HTTP layer maps them onto wire codes.
var (
	// ErrNotPrimary refuses client operations sent to a non-primary
	// member; the multi-address client walks the member list on it.
	ErrNotPrimary = errors.New("ledgerd: not the group primary")
	// ErrNoQuorum reports that the primary could not majority-commit the
	// operation. The op may sit in the log awaiting quorum: it is NOT
	// admitted, but a retry under the same op ID will converge on the
	// recorded outcome rather than double-charge.
	ErrNoQuorum = errors.New("ledgerd: no quorum")
)

// Roles of a group member.
const (
	roleFollower = "follower"
	rolePrimary  = "primary"
)

// GroupOptions configures one group member.
type GroupOptions struct {
	// NodeID names this member; Peers maps every member ID (this node
	// included) to its base address.
	NodeID string
	Peers  map[string]string
	// Dir holds the member's replicated log and durable term file.
	Dir string
	// HeartbeatEvery paces primary→follower replication pings
	// (default 100ms). Heartbeats also push commit indexes, so they are
	// always on.
	HeartbeatEvery time.Duration
	// ElectionTimeout is the base follower patience before bidding for
	// leadership; the live deadline is randomized in [T, 2T) to avoid
	// split votes (default 1s). Negative disables automatic elections —
	// promotion then happens only via Promote (deterministic tests).
	ElectionTimeout time.Duration
	// RPCTimeout bounds each peer round trip (default 1s).
	RPCTimeout time.Duration
	// Transport carries replication traffic; nil selects HTTP. Tests
	// wrap it in FaultTransport to drop/delay/partition the stream.
	Transport GroupTransport
	// OpenWriter is the fault-injection seam for the group log's file
	// writes (tests only), mirroring accountant.DurableOptions.
	OpenWriter func(path string) (accountant.WriteSyncer, error)
	// Logf, when set, receives group life-cycle events (promotions,
	// fencings, step-downs).
	Logf func(format string, args ...any)
}

func (o GroupOptions) withDefaults() GroupOptions {
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 100 * time.Millisecond
	}
	if o.ElectionTimeout == 0 {
		o.ElectionTimeout = time.Second
	}
	if o.RPCTimeout <= 0 {
		o.RPCTimeout = time.Second
	}
	if o.Transport == nil {
		o.Transport = &HTTPGroupTransport{}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// keyState is one budget key's applied state: the in-memory ledger
// rebuilt from the committed log prefix plus its op-ID→seq dedup map.
type keyState struct {
	mem *accountant.MemLedger
	ops map[string]int
}

// Group is one member of a replicated sequencer group. It serves the
// same client wire protocol as the single-node Service when primary and
// refuses client traffic (ErrNotPrimary) otherwise. Safe for concurrent
// use.
type Group struct {
	opts    GroupOptions
	self    string
	peerIDs []string // sorted, self excluded

	mu          sync.Mutex
	closed      bool
	failed      error
	role        string
	term        uint64
	leader      string // "" while unknown
	log         *groupLog
	commit      uint64
	applied     uint64
	state       map[string]*keyState
	opIndex     map[string]uint64 // key+"\x00"+opID → log index (whole log)
	nextIndex   map[string]uint64
	matchIndex  map[string]uint64
	lastContact time.Time
	deadline    time.Time // next election bid (follower, auto mode)
	rng         *rand.Rand

	stopc chan struct{}
	done  sync.WaitGroup
}

// NewGroup opens (creating if needed) the member's durable state and
// starts its replication loop. Every member boots as a follower; the
// first primary emerges from an election (automatic, or via Promote).
func NewGroup(opts GroupOptions) (*Group, error) {
	opts = opts.withDefaults()
	if opts.NodeID == "" {
		return nil, errors.New("ledgerd: GroupOptions.NodeID is required")
	}
	if opts.Dir == "" {
		return nil, errors.New("ledgerd: GroupOptions.Dir is required")
	}
	if _, ok := opts.Peers[opts.NodeID]; !ok {
		return nil, fmt.Errorf("ledgerd: GroupOptions.Peers must include this node (%q)", opts.NodeID)
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledgerd: group dir: %w", err)
	}
	term, err := loadTerm(opts.Dir)
	if err != nil {
		return nil, err
	}
	log, err := openGroupLog(opts.Dir, opts.OpenWriter)
	if err != nil {
		return nil, err
	}
	var seed [8]byte
	if _, err := cryptorand.Read(seed[:]); err != nil {
		log.close()
		return nil, fmt.Errorf("ledgerd: seeding election jitter: %w", err)
	}
	g := &Group{
		opts:       opts,
		self:       opts.NodeID,
		role:       roleFollower,
		term:       term,
		log:        log,
		state:      make(map[string]*keyState),
		opIndex:    make(map[string]uint64),
		nextIndex:  make(map[string]uint64),
		matchIndex: make(map[string]uint64),
		rng:        rand.New(rand.NewSource(int64(binary.LittleEndian.Uint64(seed[:])))),
		stopc:      make(chan struct{}),
	}
	for id := range opts.Peers {
		if id != g.self {
			g.peerIDs = append(g.peerIDs, id)
		}
	}
	sort.Strings(g.peerIDs)
	// Rebuild the whole-log dedup index. Nothing is APPLIED yet: a
	// restarted member does not know which suffix of its log committed,
	// and applies only once a primary tells it (or it wins an election
	// and commits its whole log through a barrier).
	g.rebuildOpIndexLocked()
	g.resetElectionLocked()
	g.done.Add(1)
	go g.run()
	return g, nil
}

// quorum is the majority size, this node included.
func (g *Group) quorum() int { return (len(g.opts.Peers) / 2) + 1 }

// Epoch returns the client-visible fencing token: the monotonic term.
func (g *Group) Epoch() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.epochLocked()
}

func (g *Group) epochLocked() string { return fmt.Sprintf("term:%d", g.term) }

func opIndexKey(key, opID string) string { return key + "\x00" + opID }

func (g *Group) rebuildOpIndexLocked() {
	clear(g.opIndex)
	for i := uint64(1); i <= g.log.len(); i++ {
		g.indexEntryLocked(g.log.entry(i))
	}
}

func (g *Group) indexEntryLocked(e groupEntry) {
	if e.Kind != entrySpend {
		return
	}
	if opID, _, ok := decodeLabel(e.Label); ok {
		g.opIndex[opIndexKey(e.Key, opID)] = e.Index
	}
}

// failLocked latches the member fail-closed: a durable-log fault or a
// protocol invariant violation must stop admissions, never corrupt the
// budget. The wrapped ErrLedgerFailed maps to HTTP 500 like any other
// latched ledger.
func (g *Group) failLocked(err error) {
	if g.failed == nil {
		g.failed = fmt.Errorf("%w: group member %s: %v", accountant.ErrLedgerFailed, g.self, err)
		g.opts.Logf("ledgerd[%s]: LATCHED fail-closed: %v", g.self, err)
	}
}

func (g *Group) resetElectionLocked() {
	et := g.opts.ElectionTimeout
	if et <= 0 {
		et = time.Second
	}
	g.deadline = time.Now().Add(et + time.Duration(g.rng.Int63n(int64(et))))
}

func (g *Group) stepDownLocked(leader string) {
	if g.role != roleFollower {
		g.opts.Logf("ledgerd[%s]: stepping down at term %d (leader now %q)", g.self, g.term, leader)
	}
	g.role = roleFollower
	g.leader = leader
}

// adoptTermLocked durably persists a higher term and steps down.
func (g *Group) adoptTermLocked(term uint64, leader string) error {
	if term <= g.term {
		g.stepDownLocked(leader)
		return nil
	}
	if err := storeTerm(g.opts.Dir, term); err != nil {
		g.failLocked(err)
		return g.failed
	}
	g.term = term
	g.stepDownLocked(leader)
	return nil
}

// run is the background pacemaker: heartbeat replication while primary,
// election bids while a leaderless follower (auto mode only).
func (g *Group) run() {
	defer g.done.Done()
	t := time.NewTicker(g.opts.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-g.stopc:
			return
		case <-t.C:
		}
		g.mu.Lock()
		switch {
		case g.closed || g.failed != nil:
			g.mu.Unlock()
			return
		case g.role == rolePrimary:
			g.replicateLocked()
		case g.opts.ElectionTimeout > 0 && time.Now().After(g.deadline):
			if err := g.promoteLocked(); err != nil {
				g.resetElectionLocked()
			}
		}
		g.mu.Unlock()
	}
}

// writableLocked gates client operations: open, healthy, primary.
func (g *Group) writableLocked() error {
	if g.closed {
		return ErrClosed
	}
	if g.failed != nil {
		return g.failed
	}
	if g.role != rolePrimary {
		if g.leader != "" {
			return fmt.Errorf("%w (leader: %s)", ErrNotPrimary, g.leader)
		}
		return ErrNotPrimary
	}
	return nil
}

// settleLocked drives any uncommitted log suffix to commit before a new
// decision is made against the applied state. This single gate closes
// two holes at once: the promotion barrier (a new primary's old-term
// suffix must commit before it admits anything — Figure 8), and budget
// reservation (an earlier spend stuck awaiting quorum holds budget the
// applied state does not show yet; deciding a new spend before it
// resolves could over-admit).
func (g *Group) settleLocked() error {
	if g.log.len() == g.commit {
		return nil
	}
	g.replicateLocked()
	if g.role != rolePrimary {
		return g.writableLocked()
	}
	if g.log.len() != g.commit {
		return fmt.Errorf("%w: %d log entries awaiting majority fsync", ErrNoQuorum, g.log.len()-g.commit)
	}
	return nil
}

// appendLocalLocked encodes, fsyncs and indexes one locally originated
// entry.
func (g *Group) appendLocalLocked(e groupEntry) error {
	if _, err := g.log.appendEntry(e); err != nil {
		g.failLocked(fmt.Errorf("appending entry %d: %v", e.Index, err))
		return g.failed
	}
	g.indexEntryLocked(e)
	return nil
}

// buildAppendLocked assembles the replication batch for a peer whose
// next expected entry is ni. Batches are bounded; a long catch-up takes
// several rounds.
func (g *Group) buildAppendLocked(ni uint64) (AppendRequest, uint64) {
	const maxBatch = 512
	req := AppendRequest{
		Term:      g.term,
		Leader:    g.self,
		PrevIndex: ni - 1,
		PrevTerm:  g.log.termAt(ni - 1),
		Commit:    g.commit,
	}
	last := g.log.len()
	if last >= ni+maxBatch {
		last = ni + maxBatch - 1
	}
	for i := ni; i <= last; i++ {
		req.Entries = append(req.Entries, g.log.frame(i))
	}
	if last < ni {
		last = ni - 1 // pure heartbeat
	}
	return req, last
}

// replicateLocked pushes the log and commit index to every peer (a few
// backtracking rounds at most) and advances the commit index by
// majority match. Called with the group mutex held; the peer RPCs run
// in parallel under RPCTimeout while the mutex stays held — the whole
// pipeline is deliberately serialized.
func (g *Group) replicateLocked() {
	for round := 0; round < 3 && g.role == rolePrimary && g.failed == nil; round++ {
		if !g.replicateRoundLocked() {
			return
		}
	}
}

// replicateRoundLocked runs one parallel append fan-out. It returns
// true when another immediate round could make progress (a peer asked
// for an earlier or later batch).
func (g *Group) replicateRoundLocked() bool {
	type outcome struct {
		peer string
		sent uint64
		res  AppendResponse
		err  error
	}
	results := make(chan outcome, len(g.peerIDs))
	for _, p := range g.peerIDs {
		ni := g.nextIndex[p]
		if ni == 0 {
			ni = g.log.len() + 1
			g.nextIndex[p] = ni
		}
		req, sent := g.buildAppendLocked(ni)
		addr := g.opts.Peers[p]
		go func(peer, addr string, req AppendRequest, sent uint64) {
			ctx, cancel := context.WithTimeout(context.Background(), g.opts.RPCTimeout)
			defer cancel()
			res, err := g.opts.Transport.Append(ctx, addr, req)
			results <- outcome{peer: peer, sent: sent, res: res, err: err}
		}(p, addr, req, sent)
	}
	again := false
	for range g.peerIDs {
		o := <-results
		switch {
		case o.err != nil:
			var fe *fencedError
			if errors.As(o.err, &fe) {
				// A peer holds a higher durable term: this primary is stale.
				// Adopt and stop admitting — the fence the ISSUE promises.
				g.opts.Logf("ledgerd[%s]: fenced by %s at term %d (was %d)", g.self, o.peer, fe.term, g.term)
				_ = g.adoptTermLocked(fe.term, "")
				return false
			}
			// Unreachable: the heartbeat loop retries.
		case o.res.OK:
			if o.sent > g.matchIndex[o.peer] {
				g.matchIndex[o.peer] = o.sent
			}
			g.nextIndex[o.peer] = o.sent + 1
			if g.log.len() > o.sent {
				again = true // batch was capped; keep streaming
			}
		default:
			// Log-consistency refusal: back up toward the peer's hint.
			ni := g.nextIndex[o.peer]
			hint := o.res.LogLen + 1
			if hint < ni {
				ni = hint
			} else if ni > 1 {
				ni--
			}
			if ni < 1 {
				ni = 1
			}
			g.nextIndex[o.peer] = ni
			again = true
		}
	}
	g.advanceCommitLocked()
	return again
}

// advanceCommitLocked commits the highest current-term index a majority
// has fsynced, then applies it. Old-term entries are never counted
// directly (Figure 8); they commit transitively under the barrier.
func (g *Group) advanceCommitLocked() {
	for n := g.log.len(); n > g.commit; n-- {
		if g.log.termAt(n) != g.term {
			return
		}
		count := 1 // self: appendEntry fsynced before returning
		for _, p := range g.peerIDs {
			if g.matchIndex[p] >= n {
				count++
			}
		}
		if count >= g.quorum() {
			g.commit = n
			g.applyToLocked(n)
			return
		}
	}
}

// applyToLocked applies committed entries (applied, to] to the key
// state. Any application failure is an invariant violation — the
// committed log IS the truth — and latches the member.
func (g *Group) applyToLocked(to uint64) {
	for i := g.applied + 1; i <= to && g.failed == nil; i++ {
		e := g.log.entry(i)
		switch e.Kind {
		case entryNoop:
		case entryAttach:
			if _, ok := g.state[e.Key]; ok {
				break // duplicate attach: deterministic no-op
			}
			mem, err := accountant.NewLedger(e.Budget)
			if err != nil {
				g.failLocked(fmt.Errorf("applying attach %d (%q): %v", i, e.Key, err))
				return
			}
			g.state[e.Key] = &keyState{mem: mem, ops: make(map[string]int)}
		case entrySpend:
			ks, ok := g.state[e.Key]
			if !ok {
				g.failLocked(fmt.Errorf("entry %d spends unattached key %q", i, e.Key))
				return
			}
			if err := ks.mem.Spend(e.Label, e.Cost); err != nil {
				g.failLocked(fmt.Errorf("entry %d diverged: %v", i, err))
				return
			}
			if got := uint64(ks.mem.OpCount()); got != e.Seq {
				g.failLocked(fmt.Errorf("entry %d applied as op %d, logged as %d", i, got, e.Seq))
				return
			}
			if opID, _, ok := decodeLabel(e.Label); ok {
				ks.ops[opID] = int(e.Seq)
			}
		}
		g.applied = i
	}
}

// truncateFromLocked discards an uncommitted conflicting suffix.
func (g *Group) truncateFromLocked(idx uint64) error {
	if err := g.log.truncateFrom(idx); err != nil {
		g.failLocked(fmt.Errorf("truncating conflict at %d: %v", idx, err))
		return g.failed
	}
	g.rebuildOpIndexLocked()
	return nil
}

// Attach opens (or re-opens) key under budget via a replicated attach
// entry. Idempotent; a budget mismatch is refused exactly as in
// single-node mode. Only the primary serves it.
func (g *Group) Attach(key string, budget dp.Params) (AttachResult, error) {
	if !ValidKey(key) {
		return AttachResult{}, fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	if err := budget.Validate(); err != nil {
		return AttachResult{}, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.writableLocked(); err != nil {
		return AttachResult{}, err
	}
	if err := g.settleLocked(); err != nil {
		return AttachResult{}, err
	}
	if ks, ok := g.state[key]; ok {
		if ks.mem.Budget() != budget {
			return AttachResult{}, fmt.Errorf("%w: key %q is open with budget %s, attach requested %s",
				accountant.ErrBudgetMismatch, key, ks.mem.Budget(), budget)
		}
		return g.attachResultLocked(ks), nil
	}
	e := groupEntry{Index: g.log.len() + 1, Term: g.term, Kind: entryAttach, Key: key, Budget: budget}
	if err := g.appendLocalLocked(e); err != nil {
		return AttachResult{}, err
	}
	g.replicateLocked()
	if g.commit < e.Index {
		if err := g.writableLocked(); err != nil {
			return AttachResult{}, err
		}
		return AttachResult{}, fmt.Errorf("%w: attach of %q logged at %d awaiting majority", ErrNoQuorum, key, e.Index)
	}
	return g.attachResultLocked(g.state[key]), nil
}

func (g *Group) attachResultLocked(ks *keyState) AttachResult {
	return AttachResult{
		Epoch:     g.epochLocked(),
		Budget:    ks.mem.Budget(),
		Spent:     ks.mem.Spent(),
		Remaining: ks.mem.Remaining(),
		OpCount:   ks.mem.OpCount(),
	}
}

// Spend admits one operation exactly once across the whole group: the
// spend entry is fsynced locally AND on a majority before the ack, the
// epoch (term) must match, and op-ID dedup spans the entire log so a
// retry across failover converges on the recorded outcome.
func (g *Group) Spend(key, epoch, opID, label string, cost dp.Params) (SpendResult, error) {
	if !ValidKey(key) {
		return SpendResult{}, fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	if !validOpID(opID) {
		return SpendResult{}, fmt.Errorf("%w: %q", ErrBadOpID, opID)
	}
	if err := cost.Validate(); err != nil {
		return SpendResult{}, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.writableLocked(); err != nil {
		return SpendResult{}, err
	}
	if err := g.settleLocked(); err != nil {
		return SpendResult{}, err
	}
	if epoch != g.epochLocked() {
		return SpendResult{}, fmt.Errorf("%w (request %q, live %q)", ErrEpochFenced, epoch, g.epochLocked())
	}
	// Whole-log dedup. After settle the log is fully committed and
	// applied, so a hit is always resolvable to its recorded outcome.
	if _, ok := g.opIndex[opIndexKey(key, opID)]; ok {
		ks := g.state[key]
		if ks == nil {
			g.failLocked(fmt.Errorf("dedup hit for %q/%s but key not applied", key, opID))
			return SpendResult{}, g.failed
		}
		return g.spendResultLocked(ks, ks.ops[opID], true), nil
	}
	ks, ok := g.state[key]
	if !ok {
		return SpendResult{}, fmt.Errorf("%w: %q", ErrNotAttached, key)
	}
	if err := ks.mem.Check(cost); err != nil {
		return SpendResult{}, fmt.Errorf("%w (label %q)", err, label)
	}
	e := groupEntry{
		Index: g.log.len() + 1,
		Term:  g.term,
		Kind:  entrySpend,
		Key:   key,
		Seq:   uint64(ks.mem.OpCount()) + 1,
		Cost:  cost,
		Label: encodeLabel(opID, label),
	}
	if err := g.appendLocalLocked(e); err != nil {
		return SpendResult{}, err
	}
	g.replicateLocked()
	if g.commit < e.Index {
		// Locally fsynced but not majority-acked: NOT admitted. The entry
		// stays in the log; a retry (same op ID) drives it to commit.
		if err := g.writableLocked(); err != nil {
			return SpendResult{}, err
		}
		return SpendResult{}, fmt.Errorf("%w: op %s logged at %d awaiting majority fsync", ErrNoQuorum, opID, e.Index)
	}
	return g.spendResultLocked(ks, int(e.Seq), false), nil
}

func (g *Group) spendResultLocked(ks *keyState, seq int, replayed bool) SpendResult {
	return SpendResult{
		Seq:       seq,
		Replayed:  replayed,
		Spent:     ks.mem.Spent(),
		Remaining: ks.mem.Remaining(),
		OpCount:   ks.mem.OpCount(),
	}
}

// Status reports one attached key's applied state. Primary only: a
// follower's applied state may trail the truth.
func (g *Group) Status(key string) (Status, error) {
	if !ValidKey(key) {
		return Status{}, fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.writableLocked(); err != nil {
		return Status{}, err
	}
	ks, ok := g.state[key]
	if !ok {
		return Status{}, fmt.Errorf("%w: %q", ErrNotAttached, key)
	}
	return Status{
		Key:       key,
		Epoch:     g.epochLocked(),
		Budget:    ks.mem.Budget(),
		Spent:     ks.mem.Spent(),
		Remaining: ks.mem.Remaining(),
		OpCount:   ks.mem.OpCount(),
		Durable: accountant.DurableStatus{
			Path:        g.log.path,
			Policy:      string(accountant.FsyncAlways),
			WALRecords:  int(g.log.len()),
			WALBytes:    g.log.size,
			ReplayedOps: int(g.applied),
		},
	}, nil
}

// Ops returns an attached key's audit trail (op-ID envelope stripped).
// Primary only.
func (g *Group) Ops(key string) ([]accountant.Op, error) {
	if !ValidKey(key) {
		return nil, fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.writableLocked(); err != nil {
		return nil, err
	}
	ks, ok := g.state[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotAttached, key)
	}
	ops := ks.mem.Ops()
	for i := range ops {
		if _, label, ok := decodeLabel(ops[i].Label); ok {
			ops[i].Label = label
		}
	}
	return ops, nil
}

// Keys lists the keys attached in the applied state.
func (g *Group) Keys() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.state))
	for k := range g.state {
		out = append(out, k)
	}
	return out
}

// Ready implements the readiness probe: a primary is ready once its
// whole log is majority-committed (it can admit spends NOW); a follower
// is ready while it has a live leader. Liveness (healthz) is always
// true for an open member — readiness is the load-balancer signal.
func (g *Group) Ready() (bool, string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	switch {
	case g.closed:
		return false, "closed"
	case g.failed != nil:
		return false, g.failed.Error()
	case g.role == rolePrimary:
		if g.commit == g.log.len() {
			return true, "primary"
		}
		return false, "primary awaiting quorum commit"
	default:
		stale := 3 * g.opts.HeartbeatEvery
		if stale < time.Second {
			stale = time.Second
		}
		if g.leader != "" && time.Since(g.lastContact) < stale {
			return true, "follower of " + g.leader
		}
		return false, "follower without live leader"
	}
}

// HandleAppend is the follower half of the replication stream: verify
// the sender's term (fencing stale primaries with ErrEpochFenced → 409
// epoch-fenced), check log consistency, verify each frame's checksum,
// fsync the batch, and advance commit/apply.
func (g *Group) HandleAppend(req AppendRequest) (AppendResponse, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return AppendResponse{}, ErrClosed
	}
	if g.failed != nil {
		return AppendResponse{}, g.failed
	}
	if req.Term < g.term {
		// The sender is a fenced ex-primary. The 409 body carries our
		// durable term so it can adopt it and stand down.
		return AppendResponse{}, &fencedError{term: g.term,
			msg: fmt.Sprintf("replication append from %s at term %d, durable term is %d",
				req.Leader, req.Term, g.term)}
	}
	if err := g.adoptTermLocked(req.Term, req.Leader); err != nil {
		return AppendResponse{}, err
	}
	g.leader = req.Leader
	g.lastContact = time.Now()
	g.resetElectionLocked()
	if req.PrevIndex > g.log.len() {
		return AppendResponse{OK: false, Term: g.term, LogLen: g.log.len()}, nil
	}
	if req.PrevIndex > 0 && g.log.termAt(req.PrevIndex) != req.PrevTerm {
		return AppendResponse{OK: false, Term: g.term, LogLen: req.PrevIndex - 1}, nil
	}
	idx := req.PrevIndex
	var frames [][]byte
	var entries []groupEntry
	for _, raw := range req.Entries {
		payload, n, ok := accountant.NextFrame(raw)
		if !ok || n != len(raw) {
			return AppendResponse{}, fmt.Errorf("%w: replicated frame failed checksum", ErrGroupLogCorrupt)
		}
		e, ok := decodeEntryPayload(payload)
		if !ok {
			return AppendResponse{}, fmt.Errorf("%w: replicated frame undecodable", ErrGroupLogCorrupt)
		}
		idx++
		if e.Index != idx {
			return AppendResponse{}, fmt.Errorf("%w: replicated batch index gap (%d at position %d)",
				ErrGroupLogCorrupt, e.Index, idx)
		}
		if idx <= g.log.len() {
			if g.log.termAt(idx) == e.Term {
				continue // already hold this entry
			}
			if idx <= g.commit {
				g.failLocked(fmt.Errorf("term-%d append contradicts committed entry %d", req.Term, idx))
				return AppendResponse{}, g.failed
			}
			if err := g.truncateFromLocked(idx); err != nil {
				return AppendResponse{}, err
			}
		}
		frames = append(frames, raw)
		entries = append(entries, e)
	}
	if err := g.log.appendFrames(frames, entries); err != nil {
		g.failLocked(fmt.Errorf("fsyncing replicated batch: %v", err))
		return AppendResponse{}, g.failed
	}
	for _, e := range entries {
		g.indexEntryLocked(e)
	}
	if c := min(req.Commit, g.log.len()); c > g.commit {
		g.commit = c
		g.applyToLocked(c)
		if g.failed != nil {
			return AppendResponse{}, g.failed
		}
	}
	return AppendResponse{OK: true, Term: g.term, LogLen: g.log.len()}, nil
}

// HandleVote is the voter half of promotion: grant (by durably
// persisting the candidate's term — the vote and the term write are the
// same fsync) iff the term is new to us and the candidate's log is at
// least as up to date as ours.
func (g *Group) HandleVote(req VoteRequest) (VoteResponse, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return VoteResponse{}, ErrClosed
	}
	if g.failed != nil {
		return VoteResponse{}, g.failed
	}
	if req.Term <= g.term {
		return VoteResponse{Granted: false, Term: g.term}, nil
	}
	upToDate := req.LastLogTerm > g.log.lastTerm() ||
		(req.LastLogTerm == g.log.lastTerm() && req.LogLen >= g.log.len())
	// Persist the higher term either way (it fences the old primary);
	// persisting on a refusal burns the term for every candidate, which
	// is safe — the up-to-date one simply bids the next term.
	if err := g.adoptTermLocked(req.Term, ""); err != nil {
		return VoteResponse{}, err
	}
	if !upToDate {
		return VoteResponse{Granted: false, Term: g.term}, nil
	}
	g.resetElectionLocked() // granted a vote: give the winner time to lead
	return VoteResponse{Granted: true, Term: g.term}, nil
}

// HandleState reports this member's durable position to a candidate.
func (g *Group) HandleState() (StateResponse, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return StateResponse{}, ErrClosed
	}
	return StateResponse{
		Node:        g.self,
		Term:        g.term,
		LastLogTerm: g.log.lastTerm(),
		LogLen:      g.log.len(),
		Commit:      g.commit,
		Role:        g.role,
		Leader:      g.leader,
	}, nil
}

// Promote runs one election bid now: read a majority's durable
// term+log position, pick a higher term, and durably write it to a
// majority (the vote round). On success this member is primary and has
// appended its barrier entry. Deterministic-failover tests and the
// operator runbook call this directly; auto mode calls it on election
// timeout.
func (g *Group) Promote() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return ErrClosed
	}
	if g.failed != nil {
		return g.failed
	}
	if g.role == rolePrimary {
		return nil
	}
	return g.promoteLocked()
}

func (g *Group) promoteLocked() error {
	// Phase A: read a majority's durable term + log position.
	type peerState struct {
		res StateResponse
		err error
	}
	results := make(chan peerState, len(g.peerIDs))
	for _, p := range g.peerIDs {
		addr := g.opts.Peers[p]
		go func(addr string) {
			ctx, cancel := context.WithTimeout(context.Background(), g.opts.RPCTimeout)
			defer cancel()
			res, err := g.opts.Transport.State(ctx, addr)
			results <- peerState{res: res, err: err}
		}(addr)
	}
	reached := 1 // self
	maxTerm := g.term
	myLast, myLen := g.log.lastTerm(), g.log.len()
	for range g.peerIDs {
		ps := <-results
		if ps.err != nil {
			continue
		}
		reached++
		if ps.res.Term > maxTerm {
			maxTerm = ps.res.Term
		}
		if ps.res.LastLogTerm > myLast || (ps.res.LastLogTerm == myLast && ps.res.LogLen > myLen) {
			// A more up-to-date member exists and is reachable: it must
			// lead (it may hold committed entries we lack).
			return fmt.Errorf("%w: peer %s log (term %d, len %d) is ahead of ours (term %d, len %d)",
				ErrNotPrimary, ps.res.Node, ps.res.LastLogTerm, ps.res.LogLen, myLast, myLen)
		}
	}
	if reached < g.quorum() {
		return fmt.Errorf("%w: reached %d of %d members", ErrNoQuorum, reached, len(g.opts.Peers))
	}

	// Phase B: durably write a higher term to a majority. Our own write
	// is our self-vote.
	newTerm := maxTerm + 1
	if err := storeTerm(g.opts.Dir, newTerm); err != nil {
		g.failLocked(err)
		return g.failed
	}
	g.term = newTerm
	g.role = roleFollower
	g.leader = ""
	req := VoteRequest{Term: newTerm, Candidate: g.self, LastLogTerm: myLast, LogLen: myLen}
	votes := make(chan VoteResponse, len(g.peerIDs))
	for _, p := range g.peerIDs {
		addr := g.opts.Peers[p]
		go func(addr string) {
			ctx, cancel := context.WithTimeout(context.Background(), g.opts.RPCTimeout)
			defer cancel()
			res, err := g.opts.Transport.Vote(ctx, addr, req)
			if err != nil {
				res = VoteResponse{}
			}
			votes <- res
		}(addr)
	}
	granted := 1
	for range g.peerIDs {
		v := <-votes
		if v.Term > g.term {
			_ = g.adoptTermLocked(v.Term, "")
			return fmt.Errorf("%w: outbid at term %d", ErrNotPrimary, v.Term)
		}
		if v.Granted {
			granted++
		}
	}
	if granted < g.quorum() {
		return fmt.Errorf("%w: %d of %d votes at term %d", ErrNoQuorum, granted, len(g.opts.Peers), newTerm)
	}

	// Won: lead. Append the barrier no-op; nothing is admitted until the
	// whole log (barrier included) majority-commits via settleLocked.
	g.role = rolePrimary
	g.leader = g.self
	for _, p := range g.peerIDs {
		g.nextIndex[p] = g.log.len() + 1
		g.matchIndex[p] = 0
	}
	g.opts.Logf("ledgerd[%s]: promoted to primary at term %d (log len %d)", g.self, newTerm, g.log.len())
	barrier := groupEntry{Index: g.log.len() + 1, Term: newTerm, Kind: entryNoop}
	if err := g.appendLocalLocked(barrier); err != nil {
		return err
	}
	g.replicateLocked()
	return nil
}

// GroupStatus is the operator panel served at /v1/group/status.
type GroupStatus struct {
	Node    string            `json:"node"`
	Role    string            `json:"role"`
	Term    uint64            `json:"term"`
	Leader  string            `json:"leader,omitempty"`
	Epoch   string            `json:"epoch"`
	LogLen  uint64            `json:"log_len"`
	Commit  uint64            `json:"commit"`
	Applied uint64            `json:"applied"`
	Quorum  int               `json:"quorum"`
	Members map[string]string `json:"members"`
	Match   map[string]uint64 `json:"match,omitempty"` // primary only
	Keys    int               `json:"keys"`
	Err     string            `json:"error,omitempty"`
}

// GroupStatus reports the member's replication state.
func (g *Group) GroupStatus() GroupStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := GroupStatus{
		Node:    g.self,
		Role:    g.role,
		Term:    g.term,
		Leader:  g.leader,
		Epoch:   g.epochLocked(),
		LogLen:  g.log.len(),
		Commit:  g.commit,
		Applied: g.applied,
		Quorum:  g.quorum(),
		Members: g.opts.Peers,
		Keys:    len(g.state),
	}
	if g.role == rolePrimary {
		st.Match = make(map[string]uint64, len(g.peerIDs))
		for _, p := range g.peerIDs {
			st.Match[p] = g.matchIndex[p]
		}
	}
	if g.failed != nil {
		st.Err = g.failed.Error()
	}
	return st
}

// Close stops the replication loop and releases the durable state.
// Idempotent.
func (g *Group) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	close(g.stopc)
	g.mu.Unlock()
	g.done.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.log.close()
}
