package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dp"
	"repro/internal/rng"
)

func TestNoiseMechanismStrings(t *testing.T) {
	t.Parallel()
	if MechGaussian.String() != "gaussian" || MechLaplace.String() != "laplace" || MechGeometric.String() != "geometric" {
		t.Error("unexpected mechanism names")
	}
	if NoiseMechanism(0).Valid() || !MechGeometric.Valid() {
		t.Error("Valid misclassifies mechanisms")
	}
}

func TestReleaseCountWithGaussianMatchesDefault(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	p := dp.Params{Epsilon: 0.9, Delta: 1e-5}
	a, err := ReleaseCount(tree, 2, p, ModelCells, CalibrationClassical, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReleaseCountWith(tree, 2, p, ModelCells, CalibrationClassical, MechGaussian, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.NoisyCount != b.NoisyCount {
		t.Error("gaussian path diverged from default ReleaseCount")
	}
	if b.MechName != "gaussian" {
		t.Errorf("MechName = %q", b.MechName)
	}
}

func TestReleaseCountWithLaplace(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	p := dp.Params{Epsilon: 0.9} // pure DP: no delta needed
	rel, err := ReleaseCountWith(tree, 2, p, ModelCells, CalibrationClassical, MechLaplace, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if rel.MechName != "laplace" || rel.Delta != 0 {
		t.Errorf("release = %+v", rel)
	}
	if rel.Sigma <= 0 {
		t.Error("laplace release missing noise scale")
	}
}

func TestReleaseCountWithGeometricIntegral(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	p := dp.Params{Epsilon: 0.9}
	rel, err := ReleaseCountWith(tree, 2, p, ModelCells, CalibrationClassical, MechGeometric, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if rel.NoisyCount != math.Trunc(rel.NoisyCount) {
		t.Errorf("geometric release non-integral: %v", rel.NoisyCount)
	}
	if rel.MechName != "geometric" {
		t.Errorf("MechName = %q", rel.MechName)
	}
}

func TestReleaseCountWithErrors(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	p := dp.Params{Epsilon: 0.9}
	if _, err := ReleaseCountWith(tree, 2, p, ModelCells, CalibrationClassical, NoiseMechanism(9), rng.New(1)); !errors.Is(err, ErrBadMechanism) {
		t.Errorf("bad mech: %v", err)
	}
	if _, err := ReleaseCountWith(nil, 2, p, ModelCells, CalibrationClassical, MechLaplace, rng.New(1)); !errors.Is(err, ErrNilTree) {
		t.Errorf("nil tree: %v", err)
	}
	if _, err := ReleaseCountWith(tree, 2, p, ModelCells, CalibrationClassical, MechLaplace, nil); !errors.Is(err, dp.ErrNilSource) {
		t.Errorf("nil src: %v", err)
	}
	if _, err := ReleaseCountWith(tree, 2, dp.Params{}, ModelCells, CalibrationClassical, MechLaplace, rng.New(1)); err == nil {
		t.Error("bad params accepted")
	}
	if _, err := ReleaseCountWith(tree, 99, p, ModelCells, CalibrationClassical, MechLaplace, rng.New(1)); err == nil {
		t.Error("bad level accepted")
	}
}

func TestExpectedRERWithLaplaceFormula(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	p := dp.Params{Epsilon: 0.5}
	sens, err := Sensitivity(tree, 2, ModelCells)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExpectedRERWith(tree, 2, p, ModelCells, CalibrationClassical, MechLaplace)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(sens) / 0.5 / float64(tree.Graph().NumEdges())
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("laplace E[RER] = %v, want %v", got, want)
	}
}

func TestExpectedRERWithEmpiricalAgreement(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	p := dp.Params{Epsilon: 0.7}
	for _, mech := range []NoiseMechanism{MechLaplace, MechGeometric} {
		want, err := ExpectedRERWith(tree, 2, p, ModelCells, CalibrationClassical, mech)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(77)
		const trials = 30000
		var sum float64
		for i := 0; i < trials; i++ {
			rel, err := ReleaseCountWith(tree, 2, p, ModelCells, CalibrationClassical, mech, src)
			if err != nil {
				t.Fatal(err)
			}
			sum += rel.RER
		}
		got := sum / trials
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("%v: empirical %v vs expected %v", mech, got, want)
		}
	}
}

func TestExpectedRERWithErrors(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	if _, err := ExpectedRERWith(tree, 2, dp.Params{Epsilon: 1}, ModelCells, CalibrationClassical, NoiseMechanism(9)); !errors.Is(err, ErrBadMechanism) {
		t.Errorf("bad mech: %v", err)
	}
	if _, err := ExpectedRERWith(nil, 2, dp.Params{Epsilon: 1}, ModelCells, CalibrationClassical, MechLaplace); !errors.Is(err, ErrNilTree) {
		t.Errorf("nil tree: %v", err)
	}
	if _, err := ExpectedRERWith(tree, 2, dp.Params{}, ModelCells, CalibrationClassical, MechLaplace); err == nil {
		t.Error("bad params accepted")
	}
}

// TestGaussianVsLaplaceCrossover: for a scalar count, Laplace (pure DP)
// needs less noise than the classically calibrated Gaussian at the same
// ε — the crossover the A7 ablation demonstrates.
func TestGaussianVsLaplaceCrossover(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	p := dp.Params{Epsilon: 0.5, Delta: 1e-5}
	gauss, err := ExpectedRER(tree, 2, p, ModelCells, CalibrationClassical)
	if err != nil {
		t.Fatal(err)
	}
	lap, err := ExpectedRERWith(tree, 2, p, ModelCells, CalibrationClassical, MechLaplace)
	if err != nil {
		t.Fatal(err)
	}
	if lap >= gauss {
		t.Errorf("laplace E[RER] %v not below classical gaussian %v for scalar count", lap, gauss)
	}
}
