package serve

import (
	"container/list"
	"sync"

	"repro/internal/core"
)

// Per-dataset response cache.
//
// Served answers are pure functions of (seed, dataset name, data
// fingerprint, stream domain, stream id, seq, query identity) — that is
// the replay contract — so a repeated query key MUST produce the
// byte-identical answer whether it is recomputed or returned from a
// cache. The cache exploits the other direction of that purity: once an
// answer for a key exists, replaying the key releases nothing new (the
// adversary already holds the exact bytes), so the DP cost of the first
// computation covers every replay. A cache hit therefore skips BOTH the
// ledger debit and the Phase-2 noise draw.
//
// The cache is keyed by the full query identity. Anything that changes
// the answer changes the key or the cache instance: the data
// fingerprint is not part of the key because a re-ingest under the same
// name constructs a new Dataset and with it a new, empty cache — stale
// answers cannot survive an ingest.
//
// Concurrency: the first session to miss a key becomes its owner and
// computes (debiting the ledger exactly once); sessions that arrive
// while the computation is in flight wait on the entry and receive the
// owner's answer without spending. If the owner fails (typically
// ErrBudgetExceeded), the entry is aborted and each waiter retries —
// one becomes the new owner, so an error never caches.

// DefaultMaxCacheEntries is the per-dataset response-cache capacity used
// when Config.MaxCacheEntries is zero. Entries are whole answers; a
// cached level view holds its full cell histogram (4^rounds float64s at
// the deepest level), so deployments serving deep levels to many
// replayed streams should size this against memory deliberately.
const DefaultMaxCacheEntries = 1024

// cacheKey is a query's full identity within one dataset incarnation.
// domain separates pinned from auto stream-id spaces, mirroring the
// stream derivation itself.
type cacheKey struct {
	domain uint64
	stream uint64
	seq    uint64
	kind   uint8
	level  int32
	side   uint8
	k      int32
}

// cachedView is a retained level view: the count release plus a deep
// copy of the cell histogram (the live one lives in a session's engine
// buffer and is overwritten by its next query).
type cachedView struct {
	count core.LevelRelease
	cells core.CellRelease
}

// cacheEntry is one key's lifecycle: born in-flight (owner computing,
// ready open), then either completed (payload set, ok=true, entered
// into the LRU) or aborted (ok=false, removed from the map) — both
// signalled by closing ready.
type cacheEntry struct {
	key   cacheKey
	ready chan struct{}
	ok    bool

	marginals []float64
	topk      []int
	view      *cachedView

	elem *list.Element // non-nil once completed and LRU-resident
}

// respCache is the per-dataset bounded LRU + singleflight. capFn reads
// the live capacity (the registry's knob, overridable by the HTTP
// handler); a non-positive capacity disables the cache entirely.
type respCache struct {
	capFn func() int

	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	lru     *list.List // completed entries, front = most recently used

	hits, misses uint64
}

func newRespCache(capFn func() int) *respCache {
	return &respCache{
		capFn:   capFn,
		entries: make(map[cacheKey]*cacheEntry),
		lru:     list.New(),
	}
}

// enabled reports whether queries should consult the cache at all.
func (c *respCache) enabled() bool { return c != nil && c.capFn() > 0 }

// acquire returns the entry for key and whether the caller owns its
// computation. Non-owners must wait on entry.ready; if the entry was
// aborted (ok false) they retry acquire. Owners must call complete or
// abort exactly once.
func (c *respCache) acquire(key cacheKey) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.hits++
		return e, false
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	return e, true
}

// complete publishes an owner's computed entry: it joins the LRU, the
// cache is trimmed to capacity (oldest completed entries evicted — an
// evicted key simply recomputes, and re-debits, on its next replay),
// and waiters wake.
func (c *respCache) complete(e *cacheEntry) {
	e.ok = true
	c.mu.Lock()
	e.elem = c.lru.PushFront(e)
	if max := c.capFn(); max > 0 {
		for c.lru.Len() > max {
			oldest := c.lru.Back()
			ev := c.lru.Remove(oldest).(*cacheEntry)
			delete(c.entries, ev.key)
		}
	}
	c.mu.Unlock()
	close(e.ready)
}

// abort withdraws an owner's failed computation so the error does not
// cache; woken waiters re-acquire and one of them re-attempts.
func (c *respCache) abort(e *cacheEntry) {
	c.mu.Lock()
	delete(c.entries, e.key)
	c.mu.Unlock()
	close(e.ready)
}

// trim evicts completed entries down to max resident (max ≤ 0 evicts
// them all). complete() trims on insertion, but a capacity DECREASE —
// in particular disabling the cache, after which no insertion will ever
// run again — must free the retained answers (cached level views hold
// whole cell histograms) eagerly. In-flight entries are untouched; they
// resolve through their owner.
func (c *respCache) trim(max int) {
	if c == nil {
		return
	}
	if max < 0 {
		max = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.lru.Len() > max {
		ev := c.lru.Remove(c.lru.Back()).(*cacheEntry)
		delete(c.entries, ev.key)
	}
}

// CacheStats reports the dataset cache's lifetime hit/miss counters and
// the current number of completed resident entries.
type CacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

func (c *respCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.lru.Len()}
}
