package accountant_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/accountant"
	"repro/internal/accountant/ledgertest"
	"repro/internal/dp"
)

// The local backends run the shared Ledger conformance suite here; the
// sequencer-backed RemoteLedger runs the same suite from
// internal/ledgerd (whose tests own a live sequencer), so all three
// implementations answer to one contract.

func TestMemLedgerConformance(t *testing.T) {
	ledgertest.Run(t, ledgertest.Factory{
		New: func(t *testing.T, budget dp.Params) accountant.Ledger {
			l, err := accountant.NewLedger(budget)
			if err != nil {
				t.Fatalf("NewLedger: %v", err)
			}
			return l
		},
		// MemLedger has no backend to fail: no latching leg.
	})
}

// switchSyncer is a WriteSyncer whose writes and syncs start failing
// when armed — the conformance suite's Fail hook for DurableLedger.
type switchSyncer struct {
	f      *os.File
	broken *atomic.Bool
}

func (s *switchSyncer) Write(p []byte) (int, error) {
	if s.broken.Load() {
		return 0, errors.New("injected write failure")
	}
	return s.f.Write(p)
}

func (s *switchSyncer) Sync() error {
	if s.broken.Load() {
		return errors.New("injected sync failure")
	}
	return s.f.Sync()
}

func (s *switchSyncer) Close() error { return s.f.Close() }

func TestDurableLedgerConformance(t *testing.T) {
	dir := t.TempDir()
	var (
		n      int
		broken *atomic.Bool // the most recently opened ledger's switch
	)
	ledgertest.Run(t, ledgertest.Factory{
		New: func(t *testing.T, budget dp.Params) accountant.Ledger {
			n++
			flag := &atomic.Bool{}
			broken = flag
			l, err := accountant.OpenDurableLedger(budget,
				filepath.Join(dir, fmt.Sprintf("conf-%d.wal", n)),
				accountant.DurableOptions{
					OpenWriter: func(path string) (accountant.WriteSyncer, error) {
						f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
						if err != nil {
							return nil, err
						}
						return &switchSyncer{f: f, broken: flag}, nil
					},
				})
			if err != nil {
				t.Fatalf("OpenDurableLedger: %v", err)
			}
			t.Cleanup(func() { l.Close() })
			return l
		},
		Fail: func(t *testing.T, _ accountant.Ledger) { broken.Store(true) },
	})
	if n == 0 {
		t.Fatal("suite opened no ledgers")
	}
}
