package ledgerd

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/accountant"
	"repro/internal/dp"
)

// HTTP/JSON wire protocol of the sequencer. accountant.RemoteLedger is
// the client; the codes below are the contract it keys its fail-closed
// behavior on.
//
//	GET  /healthz                      {"ok":true,"epoch":...,"ledgers":n}
//	POST /v1/ledgers/{key}/attach      {"budget":{"epsilon":e,"delta":d}}
//	POST /v1/ledgers/{key}/spend       {"epoch":...,"op_id":...,"label":...,
//	                                    "cost":{"epsilon":e,"delta":d}}
//	GET  /v1/ledgers/{key}             status + durability panel
//	GET  /v1/ledgers/{key}/ops         audit trail (client labels)
//
// Status mapping: 200 admitted/replayed, 429 "budget-exceeded"
// (definitive rejection — spent is unchanged and retrying cannot
// succeed), 409 "epoch-fenced" / "not-attached" / "budget-mismatch"
// (the writer's view is stale or wrong; it must latch fail-closed),
// 400 malformed requests, 500 "ledger-failed" (the durable log could
// not admit the op; the underlying ledger is latched), 503
// "service-closed".

// maxBody bounds request bodies: spends carry short labels.
const maxBody = 1 << 16

// Wire error codes.
const (
	CodeBudgetExceeded = "budget-exceeded"
	CodeBudgetMismatch = "budget-mismatch"
	CodeEpochFenced    = "epoch-fenced"
	CodeNotAttached    = "not-attached"
	CodeBadRequest     = "bad-request"
	CodeLedgerFailed   = "ledger-failed"
	CodeServiceClosed  = "service-closed"
	// Group-mode codes: a follower refuses client ops (the multi-address
	// client walks the member list), and a primary without a majority
	// refuses to admit (503 — retryable under the same op ID).
	CodeNotPrimary = "not-primary"
	CodeNoQuorum   = "no-quorum"
)

// budgetWire is the (ε, δ) wire shape.
type budgetWire struct {
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
}

func toWire(p dp.Params) budgetWire    { return budgetWire{Epsilon: p.Epsilon, Delta: p.Delta} }
func (b budgetWire) params() dp.Params { return dp.Params{Epsilon: b.Epsilon, Delta: b.Delta} }

// errorWire is the uniform error body. Term rides along on group-mode
// epoch-fenced refusals so a fenced sender can adopt the newer term.
type errorWire struct {
	Error string `json:"error"`
	Code  string `json:"code"`
	Term  uint64 `json:"term,omitempty"`
}

// sequencer is the admission surface the HTTP layer fronts: the
// single-writer Service or a replicated Group member. Both serve the
// identical client wire protocol, so gdpserve replicas cannot tell a
// group from a single node (beyond the extra codes above).
type sequencer interface {
	Epoch() string
	Attach(key string, budget dp.Params) (AttachResult, error)
	Spend(key, epoch, opID, label string, cost dp.Params) (SpendResult, error)
	Status(key string) (Status, error)
	Ops(key string) ([]accountant.Op, error)
	Keys() []string
	Ready() (bool, string)
}

var (
	_ sequencer = (*Service)(nil)
	_ sequencer = (*Group)(nil)
)

// NewHandler returns the single-node sequencer's HTTP front end.
func NewHandler(s *Service) http.Handler {
	return newHandler(s, nil)
}

// NewGroupHandler returns a group member's HTTP front end: the client
// wire protocol plus the replication endpoints.
//
//	POST /v1/group/append   replication stream (primary → follower)
//	POST /v1/group/vote     durable term write (candidate → voter)
//	GET  /v1/group/state    durable position (candidate reads a majority)
//	GET  /v1/group/status   operator panel
//	POST /v1/group/promote  manual failover (operator runbook)
func NewGroupHandler(g *Group) http.Handler {
	return newHandler(g, g)
}

func newHandler(seq sequencer, g *Group) http.Handler {
	h := &handler{svc: seq, group: g}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", h.healthz)
	mux.HandleFunc("GET /readyz", h.readyz)
	mux.HandleFunc("POST /v1/ledgers/{key}/attach", h.attach)
	mux.HandleFunc("POST /v1/ledgers/{key}/spend", h.spend)
	mux.HandleFunc("GET /v1/ledgers/{key}", h.status)
	mux.HandleFunc("GET /v1/ledgers/{key}/ops", h.ops)
	if g != nil {
		mux.HandleFunc("POST /v1/group/append", h.groupAppend)
		mux.HandleFunc("POST /v1/group/vote", h.groupVote)
		mux.HandleFunc("GET /v1/group/state", h.groupState)
		mux.HandleFunc("GET /v1/group/status", h.groupStatus)
		mux.HandleFunc("POST /v1/group/promote", h.groupPromote)
	}
	return mux
}

type handler struct {
	svc   sequencer
	group *Group
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr maps service errors onto the wire contract.
func writeErr(w http.ResponseWriter, err error) {
	status, code := http.StatusBadRequest, CodeBadRequest
	switch {
	case errors.Is(err, accountant.ErrBudgetExceeded):
		status, code = http.StatusTooManyRequests, CodeBudgetExceeded
	case errors.Is(err, accountant.ErrBudgetMismatch):
		status, code = http.StatusConflict, CodeBudgetMismatch
	case errors.Is(err, ErrEpochFenced):
		status, code = http.StatusConflict, CodeEpochFenced
	case errors.Is(err, ErrNotAttached):
		status, code = http.StatusConflict, CodeNotAttached
	case errors.Is(err, ErrNotPrimary):
		status, code = http.StatusConflict, CodeNotPrimary
	case errors.Is(err, ErrNoQuorum):
		status, code = http.StatusServiceUnavailable, CodeNoQuorum
	case errors.Is(err, ErrClosed):
		status, code = http.StatusServiceUnavailable, CodeServiceClosed
	case errors.Is(err, ErrBadKey), errors.Is(err, ErrBadOpID), errors.Is(err, errBadBody):
		status, code = http.StatusBadRequest, CodeBadRequest
	case errors.Is(err, accountant.ErrLedgerFailed),
		errors.Is(err, accountant.ErrLedgerClosed),
		errors.Is(err, accountant.ErrLedgerCorrupt),
		errors.Is(err, accountant.ErrLedgerLocked):
		status, code = http.StatusInternalServerError, CodeLedgerFailed
	case errors.Is(err, dp.ErrEpsilon), errors.Is(err, dp.ErrDelta):
		status, code = http.StatusBadRequest, CodeBadRequest
	default:
		// Unclassified failures are server-side: the client must latch,
		// not blame its request.
		status, code = http.StatusInternalServerError, CodeLedgerFailed
	}
	body := errorWire{Error: err.Error(), Code: code}
	if code == CodeEpochFenced {
		var fe *fencedError
		if errors.As(err, &fe) {
			body.Term = fe.term
		}
	}
	writeJSON(w, status, body)
}

// errBadBody marks malformed request bodies: the client's fault, 400.
var errBadBody = errors.New("ledgerd: bad request body")

// decode parses a bounded JSON body, rejecting unknown fields and
// trailing data — a malformed spend must fail up front, never run as
// whatever its prefix happens to parse as.
func decode(w http.ResponseWriter, r *http.Request, v any) error {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		return fmt.Errorf("%w: reading: %v", errBadBody, err)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: parsing: %v", errBadBody, err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("%w: trailing data after JSON value", errBadBody)
	}
	return nil
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"ok":      true,
		"epoch":   h.svc.Epoch(),
		"ledgers": len(h.svc.Keys()),
	}
	if h.group != nil {
		st := h.group.GroupStatus()
		body["role"], body["term"] = st.Role, st.Term
	}
	writeJSON(w, http.StatusOK, body)
}

// readyz is the load-balancer / fail-fast probe: 200 only when this
// member can take part in admissions right now (single node: open;
// primary: whole log committed; follower: live leader). healthz stays a
// pure liveness signal.
func (h *handler) readyz(w http.ResponseWriter, r *http.Request) {
	ready, reason := h.svc.Ready()
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{"ready": ready, "reason": reason, "epoch": h.svc.Epoch()})
}

// maxGroupBody bounds replication bodies: a catch-up batch of up to 512
// framed entries with short labels fits comfortably.
const maxGroupBody = 1 << 22

// decodeGroup parses a replication request body (larger bound than
// client bodies, same strictness).
func decodeGroup(w http.ResponseWriter, r *http.Request, v any) error {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxGroupBody))
	if err != nil {
		return fmt.Errorf("%w: reading: %v", errBadBody, err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("%w: parsing: %v", errBadBody, err)
	}
	return nil
}

func (h *handler) groupAppend(w http.ResponseWriter, r *http.Request) {
	var req AppendRequest
	if err := decodeGroup(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	res, err := h.group.HandleAppend(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (h *handler) groupVote(w http.ResponseWriter, r *http.Request) {
	var req VoteRequest
	if err := decodeGroup(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	res, err := h.group.HandleVote(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (h *handler) groupState(w http.ResponseWriter, r *http.Request) {
	res, err := h.group.HandleState()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (h *handler) groupStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.group.GroupStatus())
}

func (h *handler) groupPromote(w http.ResponseWriter, r *http.Request) {
	if err := h.group.Promote(); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, h.group.GroupStatus())
}

// attachWire is the attach request/response pair.
type attachRequest struct {
	Budget budgetWire `json:"budget"`
}

type attachResponse struct {
	Epoch     string     `json:"epoch"`
	Budget    budgetWire `json:"budget"`
	Spent     budgetWire `json:"spent"`
	Remaining budgetWire `json:"remaining"`
	Ops       int        `json:"ops"`
}

func (h *handler) attach(w http.ResponseWriter, r *http.Request) {
	var req attachRequest
	if err := decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	res, err := h.svc.Attach(r.PathValue("key"), req.Budget.params())
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, attachResponse{
		Epoch:     res.Epoch,
		Budget:    toWire(res.Budget),
		Spent:     toWire(res.Spent),
		Remaining: toWire(res.Remaining),
		Ops:       res.OpCount,
	})
}

type spendRequest struct {
	Epoch string     `json:"epoch"`
	OpID  string     `json:"op_id"`
	Label string     `json:"label"`
	Cost  budgetWire `json:"cost"`
}

type spendResponse struct {
	Admitted  bool       `json:"admitted"`
	Replayed  bool       `json:"replayed,omitempty"`
	Seq       int        `json:"seq"`
	Spent     budgetWire `json:"spent"`
	Remaining budgetWire `json:"remaining"`
	Ops       int        `json:"ops"`
}

func (h *handler) spend(w http.ResponseWriter, r *http.Request) {
	var req spendRequest
	if err := decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	res, err := h.svc.Spend(r.PathValue("key"), req.Epoch, req.OpID, req.Label, req.Cost.params())
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, spendResponse{
		Admitted:  true,
		Replayed:  res.Replayed,
		Seq:       res.Seq,
		Spent:     toWire(res.Spent),
		Remaining: toWire(res.Remaining),
		Ops:       res.OpCount,
	})
}

type statusResponse struct {
	Key        string                   `json:"key"`
	Epoch      string                   `json:"epoch"`
	Budget     budgetWire               `json:"budget"`
	Spent      budgetWire               `json:"spent"`
	Remaining  budgetWire               `json:"remaining"`
	Ops        int                      `json:"ops"`
	Durability accountant.DurableStatus `json:"durability"`
}

func (h *handler) status(w http.ResponseWriter, r *http.Request) {
	st, err := h.svc.Status(r.PathValue("key"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, statusResponse{
		Key:        st.Key,
		Epoch:      st.Epoch,
		Budget:     toWire(st.Budget),
		Spent:      toWire(st.Spent),
		Remaining:  toWire(st.Remaining),
		Ops:        st.OpCount,
		Durability: st.Durable,
	})
}

// opWire is one audit-trail entry on the wire.
type opWire struct {
	Seq     int     `json:"seq"`
	Label   string  `json:"label"`
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
}

func (h *handler) ops(w http.ResponseWriter, r *http.Request) {
	ops, err := h.svc.Ops(r.PathValue("key"))
	if err != nil {
		writeErr(w, err)
		return
	}
	out := make([]opWire, len(ops))
	for i, op := range ops {
		out[i] = opWire{Seq: op.Seq, Label: op.Label, Epsilon: op.Cost.Epsilon, Delta: op.Cost.Delta}
	}
	writeJSON(w, http.StatusOK, map[string]any{"key": r.PathValue("key"), "ops": out})
}
