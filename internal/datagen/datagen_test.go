package datagen

import (
	"errors"
	"testing"

	"repro/internal/bipartite"
)

func TestConfigValidate(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr error
	}{
		{name: "valid", mutate: func(c *Config) {}, wantErr: nil},
		{name: "zero left", mutate: func(c *Config) { c.NumLeft = 0 }, wantErr: ErrBadConfig},
		{name: "zero right", mutate: func(c *Config) { c.NumRight = 0 }, wantErr: ErrBadConfig},
		{name: "negative edges", mutate: func(c *Config) { c.NumEdges = -1 }, wantErr: ErrBadConfig},
		{name: "left zipf too small", mutate: func(c *Config) { c.LeftZipf = 1 }, wantErr: ErrBadConfig},
		{name: "right zipf too small", mutate: func(c *Config) { c.RightZipf = 0.5 }, wantErr: ErrBadConfig},
		{name: "too dense", mutate: func(c *Config) { c.NumEdges = 10000 }, wantErr: ErrTooDense},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			c := Config{NumLeft: 50, NumRight: 50, NumEdges: 200, LeftZipf: 2, RightZipf: 2}
			tc.mutate(&c)
			err := c.Validate()
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("Validate() = %v", err)
				}
				return
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Validate() = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestGenerateExactEdgeCount(t *testing.T) {
	t.Parallel()
	cfg := DBLPTiny(42)
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if int(g.NumEdges()) != cfg.NumEdges {
		t.Errorf("NumEdges = %d, want %d", g.NumEdges(), cfg.NumEdges)
	}
	if g.NumLeft() != cfg.NumLeft || g.NumRight() != cfg.NumRight {
		t.Errorf("sides = %d/%d, want %d/%d", g.NumLeft(), g.NumRight(), cfg.NumLeft, cfg.NumRight)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	t.Parallel()
	a, err := Generate(DBLPTiny(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DBLPTiny(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different edge counts")
	}
	equal := true
	a.ForEachEdge(func(l, r int32) bool {
		if !b.HasEdge(l, r) {
			equal = false
			return false
		}
		return true
	})
	if !equal {
		t.Error("same seed produced different graphs")
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	t.Parallel()
	a, err := Generate(DBLPTiny(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DBLPTiny(2))
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	a.ForEachEdge(func(l, r int32) bool {
		if b.HasEdge(l, r) {
			same++
		}
		return true
	})
	if same == int(a.NumEdges()) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestGenerateHeavyTail(t *testing.T) {
	t.Parallel()
	g, err := Generate(DBLPTiny(11))
	if err != nil {
		t.Fatal(err)
	}
	s := bipartite.ComputeStats(g)
	// Zipf-distributed endpoints concentrate mass on head nodes: the max
	// degree must far exceed the mean, and the Gini coefficient must show
	// real inequality.
	if float64(s.MaxLeftDegree) < 10*s.MeanLeftDegree {
		t.Errorf("left tail too light: max %d vs mean %.2f", s.MaxLeftDegree, s.MeanLeftDegree)
	}
	if s.GiniLeft < 0.3 {
		t.Errorf("left gini = %v, want heavy-tailed (> 0.3)", s.GiniLeft)
	}
}

func TestGenerateDenseFallback(t *testing.T) {
	t.Parallel()
	// Nearly saturated graph: duplicates force the uniform fallback; the
	// generator must still terminate with the exact count.
	cfg := Config{
		Name: "dense", NumLeft: 30, NumRight: 30, NumEdges: 850,
		LeftZipf: 2, RightZipf: 2, Seed: 3,
	}
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if int(g.NumEdges()) != cfg.NumEdges {
		t.Errorf("NumEdges = %d, want %d", g.NumEdges(), cfg.NumEdges)
	}
}

func TestGenerateLabels(t *testing.T) {
	t.Parallel()
	cfg := Config{
		Name: "labeled", NumLeft: 20, NumRight: 20, NumEdges: 50,
		LeftZipf: 2, RightZipf: 2, Seed: 5, Labels: true,
	}
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasNames() {
		t.Fatal("labels requested but graph has none")
	}
	if int(g.NumEdges()) != cfg.NumEdges {
		t.Errorf("NumEdges = %d, want %d", g.NumEdges(), cfg.NumEdges)
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	t.Parallel()
	if _, err := Generate(Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestPresets(t *testing.T) {
	t.Parallel()
	for _, name := range Presets() {
		cfg, err := ByName(name, 1)
		if err != nil {
			t.Errorf("preset %q: %v", name, err)
			continue
		}
		if cfg.Name != name {
			t.Errorf("preset %q has name %q", name, cfg.Name)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestDBLPScaledMatchesPaperShape(t *testing.T) {
	t.Parallel()
	cfg := DBLPScaled(1)
	// 1/20 of the paper's DBLP counts.
	if cfg.NumLeft != 1295100/20 || cfg.NumRight > 2281341/20+10 || cfg.NumEdges > 6384117/20+10 {
		t.Errorf("scaled preset drifted from paper scale: %+v", cfg)
	}
	// Mean papers-per-author at full scale is ~4.93; the scaled preset
	// preserves the ratio.
	meanLeft := float64(cfg.NumEdges) / float64(cfg.NumLeft)
	if meanLeft < 4.5 || meanLeft > 5.5 {
		t.Errorf("mean left degree = %v, want about 4.9", meanLeft)
	}
}
