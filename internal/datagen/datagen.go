// Package datagen generates synthetic bipartite association graphs with
// heavy-tailed degree distributions.
//
// The paper evaluates on the real DBLP dump (1,295,100 authors; 2,281,341
// papers; 6,384,117 author-paper associations), which this repository
// cannot ship. Per DESIGN.md §3 the generator substitutes a Zipf-degree
// bipartite graph matched to DBLP's published shape: the experiment's
// behaviour depends only on the total record count and the per-level
// maximum cell size produced by specialization on a heavy-tailed graph,
// both of which the generator preserves. Presets exist for the paper's
// full scale, a laptop-friendly 1/20 scale used by default, and the
// intro's motivating scenarios (pharmacy purchases, movie ratings).
package datagen

import (
	"errors"
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/rng"
)

// Config describes a synthetic bipartite graph.
type Config struct {
	// Name labels the dataset in experiment output.
	Name string `json:"name"`
	// NumLeft and NumRight are the side sizes (e.g. authors and papers).
	NumLeft  int `json:"num_left"`
	NumRight int `json:"num_right"`
	// NumEdges is the target number of distinct associations. Generation
	// retries duplicate pairs, so the result has exactly this many edges
	// unless the graph is too dense to honor it.
	NumEdges int `json:"num_edges"`
	// LeftZipf and RightZipf are the Zipf exponents (> 1) controlling the
	// degree tails of the two sides; larger means heavier concentration
	// on the head nodes.
	LeftZipf  float64 `json:"left_zipf"`
	RightZipf float64 `json:"right_zipf"`
	// Seed drives the deterministic generator.
	Seed uint64 `json:"seed"`
	// Labels attaches synthetic names ("left/0042") when true.
	Labels bool `json:"labels"`
}

// Errors returned by Generate.
var (
	ErrBadConfig = errors.New("datagen: invalid config")
	ErrTooDense  = errors.New("datagen: edge target exceeds possible distinct pairs")
)

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NumLeft <= 0 || c.NumRight <= 0 {
		return fmt.Errorf("%w: sides must be positive (%d, %d)", ErrBadConfig, c.NumLeft, c.NumRight)
	}
	if c.NumEdges < 0 {
		return fmt.Errorf("%w: negative edge count %d", ErrBadConfig, c.NumEdges)
	}
	if c.LeftZipf <= 1 || c.RightZipf <= 1 {
		return fmt.Errorf("%w: zipf exponents must be > 1 (%v, %v)", ErrBadConfig, c.LeftZipf, c.RightZipf)
	}
	possible := int64(c.NumLeft) * int64(c.NumRight)
	if int64(c.NumEdges) > possible {
		return fmt.Errorf("%w: want %d edges of %d possible", ErrTooDense, c.NumEdges, possible)
	}
	return nil
}

// Generate builds the synthetic graph described by c. Both endpoints of
// every association are drawn from (independent) Zipf distributions over
// the node ranks, which yields the heavy-tailed joint shape real
// association data exhibits (a few prolific authors, a few heavily
// co-authored papers).
func Generate(c Config) (*bipartite.Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	src := rng.New(c.Seed)
	zl, err := rng.NewZipf(src.Split(1), c.LeftZipf, 1, uint64(c.NumLeft-1))
	if err != nil {
		return nil, fmt.Errorf("datagen: left sampler: %w", err)
	}
	zr, err := rng.NewZipf(src.Split(2), c.RightZipf, 1, uint64(c.NumRight-1))
	if err != nil {
		return nil, fmt.Errorf("datagen: right sampler: %w", err)
	}

	b := bipartite.NewBuilder(c.NumEdges)
	b.SetNumLeft(int32(c.NumLeft))
	b.SetNumRight(int32(c.NumRight))
	seen := make(map[[2]int32]struct{}, c.NumEdges)
	uniform := src.Split(3)

	// Zipf sampling revisits head pairs often; retry duplicates, and if
	// the head is saturated (many consecutive duplicates), fall back to a
	// uniform endpoint for that draw so generation always terminates.
	const maxConsecutiveDup = 64
	dups := 0
	for len(seen) < c.NumEdges {
		var l, r int32
		if dups < maxConsecutiveDup {
			l = int32(zl.Next())
			r = int32(zr.Next())
		} else {
			l = int32(uniform.Intn(c.NumLeft))
			r = int32(uniform.Intn(c.NumRight))
		}
		key := [2]int32{l, r}
		if _, dup := seen[key]; dup {
			dups++
			continue
		}
		dups = 0
		seen[key] = struct{}{}
		b.AddEdge(l, r)
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("datagen: building graph: %w", err)
	}
	if c.Labels {
		return relabel(g, c)
	}
	return g, nil
}

// relabel rebuilds the graph with synthetic names attached.
func relabel(g *bipartite.Graph, c Config) (*bipartite.Graph, error) {
	nb := bipartite.NewBuilder(int(g.NumEdges()))
	var err error
	g.ForEachEdge(func(l, r int32) bool {
		nb.AddAssociation(
			fmt.Sprintf("left/%06d", l),
			fmt.Sprintf("right/%06d", r),
		)
		return true
	})
	labeled, buildErr := nb.Build()
	if buildErr != nil {
		return nil, fmt.Errorf("datagen: relabeling: %w", buildErr)
	}
	return labeled, err
}

// Preset names accepted by ByName.
const (
	PresetDBLPFull   = "dblp-full"
	PresetDBLPScaled = "dblp-scaled"
	PresetDBLPTiny   = "dblp-tiny"
	PresetPharmacy   = "pharmacy"
	PresetMovies     = "movies"
)

// DBLPFull is the paper's exact DBLP scale. Generating it takes a few
// minutes and several GB of memory; benchmarks default to DBLPScaled.
func DBLPFull(seed uint64) Config {
	return Config{
		Name:    PresetDBLPFull,
		NumLeft: 1295100, NumRight: 2281341, NumEdges: 6384117,
		LeftZipf: 1.9, RightZipf: 2.8,
		Seed: seed,
	}
}

// DBLPScaled is the default evaluation dataset: the paper's DBLP at 1/20
// scale with the same shape.
func DBLPScaled(seed uint64) Config {
	return Config{
		Name:    PresetDBLPScaled,
		NumLeft: 64755, NumRight: 114067, NumEdges: 319205,
		LeftZipf: 1.9, RightZipf: 2.8,
		Seed: seed,
	}
}

// DBLPTiny is a fast unit-test dataset with the DBLP shape.
func DBLPTiny(seed uint64) Config {
	return Config{
		Name:    PresetDBLPTiny,
		NumLeft: 2000, NumRight: 3500, NumEdges: 10000,
		LeftZipf: 1.9, RightZipf: 2.8,
		Seed: seed,
	}
}

// Pharmacy models the intro's purchase scenario: patients (left) buying
// drugs (right). Group privacy protects neighbourhood-level aggregates.
func Pharmacy(seed uint64) Config {
	return Config{
		Name:    PresetPharmacy,
		NumLeft: 5000, NumRight: 800, NumEdges: 60000,
		LeftZipf: 2.2, RightZipf: 1.6,
		Seed: seed, Labels: true,
	}
}

// MovieRatings models the intro's rating scenario: viewers (left) rating
// movies (right).
func MovieRatings(seed uint64) Config {
	return Config{
		Name:    PresetMovies,
		NumLeft: 10000, NumRight: 2000, NumEdges: 200000,
		LeftZipf: 2.0, RightZipf: 1.5,
		Seed: seed,
	}
}

// ByName returns the preset config with the given name.
func ByName(name string, seed uint64) (Config, error) {
	switch name {
	case PresetDBLPFull:
		return DBLPFull(seed), nil
	case PresetDBLPScaled:
		return DBLPScaled(seed), nil
	case PresetDBLPTiny:
		return DBLPTiny(seed), nil
	case PresetPharmacy:
		return Pharmacy(seed), nil
	case PresetMovies:
		return MovieRatings(seed), nil
	default:
		return Config{}, fmt.Errorf("datagen: unknown preset %q (have %s, %s, %s, %s, %s)",
			name, PresetDBLPFull, PresetDBLPScaled, PresetDBLPTiny, PresetPharmacy, PresetMovies)
	}
}

// Presets lists the available preset names.
func Presets() []string {
	return []string{PresetDBLPFull, PresetDBLPScaled, PresetDBLPTiny, PresetPharmacy, PresetMovies}
}
