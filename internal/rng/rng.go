// Package rng provides deterministic, splittable pseudo-randomness for the
// whole repository.
//
// Differential-privacy experiments must be exactly reproducible under a
// fixed seed, including when work is distributed across goroutines. The
// math/rand global source cannot offer that (it is shared mutable state),
// so this package implements its own generator: xoshiro256++ seeded through
// SplitMix64, with a Split operation that derives statistically independent
// child streams from a parent stream and a label. All samplers used by the
// privacy mechanisms (normal, Laplace, Gumbel, two-sided geometric) and by
// the synthetic data generator (Zipf, permutations) live here so that every
// random decision in the system flows through one auditable source.
//
// Normal variates come in two forms: the scalar Normal/NormalSigma
// (Marsaglia polar, kept draw-for-draw stable for existing seeded
// streams) and the batched NormalsSigma (normal.go), a 512-layer
// ziggurat that fills a whole slice per call — the Phase-2 release path
// uses it to noise an entire level histogram in one call instead of one
// method call per cell. Both realize the same N(0, σ²) law; the tests
// cross-validate their moments and KS statistics.
//
// A Source is NOT safe for concurrent use; share work by calling Split and
// giving each goroutine its own child stream.
package rng

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Source is a deterministic pseudo-random source (xoshiro256++).
// The zero value is not usable; construct with New or Split.
type Source struct {
	s [4]uint64

	// spare caches the second normal variate produced by the Marsaglia
	// polar method so consecutive Normal calls cost one round on average.
	spare    float64
	hasSpare bool
}

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is used for seeding and for deriving child streams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source deterministically derived from seed.
// Distinct seeds yield statistically independent streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = splitmix64(&sm)
	}
	// xoshiro256++ must not start from the all-zero state; SplitMix64
	// cannot produce four zero outputs in a row, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// NewRandomSeed returns a seed drawn from the operating system's entropy
// source. Use it when reproducibility is not required (e.g. production
// releases of privatized data, where a predictable seed would void the
// privacy guarantee).
func NewRandomSeed() (uint64, error) {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return 0, fmt.Errorf("rng: reading entropy: %w", err)
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// fillUint64 writes len(dst) consecutive stream outputs into dst. It is
// the bulk counterpart of Uint64 for the blocked samplers: the xoshiro
// state lives in registers for the whole loop instead of being loaded and
// stored through r.s once per output, which roughly halves the cost of a
// long uniform run. The stream advances exactly as len(dst) Uint64 calls
// would.
func (r *Source) fillUint64(dst []uint64) {
	s0, s1, s2, s3 := r.s[0], r.s[1], r.s[2], r.s[3]
	for i := range dst {
		dst[i] = bits.RotateLeft64(s0+s3, 23) + s0
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}

// Split derives a new Source from the current stream state and a caller
// chosen label. Child streams with distinct labels are independent of each
// other and of the parent's subsequent output, which makes fan-out across
// goroutines reproducible: split once per worker before starting them.
func (r *Source) Split(label uint64) *Source {
	child := new(Source)
	r.SplitTo(child, label)
	return child
}

// SplitTo is Split writing the derived child stream into dst instead of
// allocating one — the serving layer's per-query derivation chain reuses
// one scratch Source across queries, so a steady-state query performs no
// heap allocation. dst and r may be the same Source: the parent output
// that seeds the child is drawn before dst is overwritten, so
// src.SplitTo(src, label) collapses a chain link in place. The derived
// state is identical to Split's for the same (parent state, label).
func (r *Source) SplitTo(dst *Source, label uint64) {
	// Mix the parent state and the label through SplitMix64 so that
	// consecutive labels do not produce correlated children.
	sm := r.Uint64() ^ (label * 0x9e3779b97f4a7c15)
	for i := range dst.s {
		dst.s[i] = splitmix64(&sm)
	}
	if dst.s[0]|dst.s[1]|dst.s[2]|dst.s[3] == 0 {
		dst.s[0] = 1
	}
	dst.spare, dst.hasSpare = 0, false
}

// Fork captures an indexed stream-derivation point: one parent draw
// (the parent advances by exactly one Uint64) from which Stream and
// StreamTo derive the child stream of any index as a pure function of
// (fork point, index). Unlike a chain of Split calls, deriving child i
// does not disturb the derivation of child j, so parallel workers can
// claim indexed work items in any order — or any worker count — and
// still draw bit-identical noise per item. The index-i child is
// identical to the child Split(i) would have produced at the fork
// point, keeping forked streams in the same derivation family as the
// serving layer's session chains. A Fork value is immutable and safe
// for concurrent use.
type Fork struct{ base uint64 }

// Fork captures the current stream position as an indexed derivation
// point, advancing the parent by one Uint64.
func (r *Source) Fork() Fork { return Fork{base: r.Uint64()} }

// Stream returns the fork's index-th child stream.
func (f Fork) Stream(index uint64) *Source {
	child := new(Source)
	f.StreamTo(child, index)
	return child
}

// StreamTo writes the fork's index-th child stream into dst without
// allocating — the per-chunk scratch path of the parallel Phase-2
// release. The derived state is identical to Stream's (and to Split's
// at the fork point) for the same index.
func (f Fork) StreamTo(dst *Source, index uint64) {
	sm := f.base ^ (index * 0x9e3779b97f4a7c15)
	for i := range dst.s {
		dst.s[i] = splitmix64(&sm)
	}
	if dst.s[0]|dst.s[1]|dst.s[2]|dst.s[3] == 0 {
		dst.s[0] = 1
	}
	dst.spare, dst.hasSpare = 0, false
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// OpenFloat64 returns a uniform float64 in the open interval (0, 1).
// Samplers that take logarithms use it to avoid log(0).
func (r *Source) OpenFloat64() float64 {
	for {
		u := (float64(r.Uint64()>>11) + 0.5) / (1 << 53)
		if u > 0 && u < 1 {
			return u
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0; callers
// validate domain sizes before sampling.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's unbiased
// multiply-shift rejection method. It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with zero n")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Normal returns a standard normal variate (mean 0, variance 1) using the
// Marsaglia polar method.
func (r *Source) Normal() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// NormalSigma returns a normal variate with mean 0 and the given standard
// deviation.
func (r *Source) NormalSigma(sigma float64) float64 {
	return sigma * r.Normal()
}

// Laplace returns a Laplace(0, b) variate via inverse-CDF sampling.
func (r *Source) Laplace(b float64) float64 {
	u := r.OpenFloat64() - 0.5
	if u < 0 {
		return b * math.Log(1+2*u)
	}
	return -b * math.Log(1-2*u)
}

// Exponential returns an Exp(1) variate.
func (r *Source) Exponential() float64 {
	return -math.Log(r.OpenFloat64())
}

// Gumbel returns a standard Gumbel variate (location 0, scale 1). The
// exponential mechanism samples via the Gumbel-max trick, which is
// numerically stable even for widely spread utility scores.
func (r *Source) Gumbel() float64 {
	return -math.Log(-math.Log(r.OpenFloat64()))
}

// TwoSidedGeometric returns a two-sided geometric variate with decay alpha
// in (0, 1): P(k) ∝ alpha^|k| for integer k. With alpha = exp(-ε/Δ) this is
// the geometric mechanism's noise distribution. It panics if alpha is
// outside (0, 1); the dp package validates parameters before sampling.
func (r *Source) TwoSidedGeometric(alpha float64) int64 {
	if !(alpha > 0 && alpha < 1) {
		panic("rng: TwoSidedGeometric alpha must be in (0,1)")
	}
	// Difference of two one-sided geometric variates G1 - G2, each with
	// success probability 1-alpha, is two-sided geometric with decay alpha.
	g1 := r.oneSidedGeometric(alpha)
	g2 := r.oneSidedGeometric(alpha)
	return g1 - g2
}

// oneSidedGeometric returns k >= 0 with P(k) = (1-alpha) * alpha^k via
// inverse-CDF sampling.
func (r *Source) oneSidedGeometric(alpha float64) int64 {
	u := r.OpenFloat64()
	k := math.Floor(math.Log(u) / math.Log(alpha))
	if k < 0 {
		return 0
	}
	if k > math.MaxInt64/2 {
		return math.MaxInt64 / 2
	}
	return int64(k)
}

// Perm returns a uniform random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// ErrZipfParams reports invalid Zipf parameters.
var ErrZipfParams = errors.New("rng: zipf requires s > 1, v >= 1, imax >= 0")

// Zipf samples integers in [0, imax] with P(k) proportional to
// (v + k)^(-s), using Hörmann's rejection-inversion method. It mirrors the
// semantics of math/rand.Zipf but runs on this package's deterministic
// source. Construct once per distribution; Next is cheap.
type Zipf struct {
	src              *Source
	imax             float64
	v, s             float64
	q, oneminusQ     float64
	oneminusQinv     float64
	hxm, hx0minusHxm float64
}

// NewZipf returns a Zipf sampler or an error if parameters are invalid.
func NewZipf(src *Source, s, v float64, imax uint64) (*Zipf, error) {
	if src == nil {
		return nil, errors.New("rng: NewZipf requires a non-nil source")
	}
	if s <= 1 || v < 1 {
		return nil, fmt.Errorf("%w (s=%v, v=%v)", ErrZipfParams, s, v)
	}
	z := &Zipf{src: src, imax: float64(imax), v: v, s: s}
	z.q = s
	z.oneminusQ = 1 - z.q
	z.oneminusQinv = 1 / z.oneminusQ
	z.hxm = z.h(z.imax + 0.5)
	z.hx0minusHxm = z.h(0.5) - math.Exp(math.Log(v)*(-z.q)) - z.hxm
	return z, nil
}

// h is the antiderivative used by rejection-inversion:
// h(x) = exp(oneminusQ * log(v + x)) * oneminusQinv.
func (z *Zipf) h(x float64) float64 {
	return math.Exp(z.oneminusQ*math.Log(z.v+x)) * z.oneminusQinv
}

// hinv is the inverse of h.
func (z *Zipf) hinv(x float64) float64 {
	return math.Exp(z.oneminusQinv*math.Log(z.oneminusQ*x)) - z.v
}

// Next returns the next Zipf-distributed value in [0, imax].
func (z *Zipf) Next() uint64 {
	for {
		r := z.src.Float64()
		ur := z.hxm + r*z.hx0minusHxm
		x := z.hinv(ur)
		k := math.Floor(x + 0.5)
		if k > z.imax {
			k = z.imax
		}
		if k < 0 {
			k = 0
		}
		if ur >= z.h(k+0.5)-math.Exp(-math.Log(k+z.v)*z.q) {
			return uint64(k)
		}
	}
}
