package rng

import (
	"math"
	"sort"
	"testing"
)

// stdNormalCDF is Φ, the exact standard normal CDF.
func stdNormalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// ksStatistic returns the one-sample Kolmogorov–Smirnov statistic of
// samples against the normal CDF with the given sigma. samples is sorted
// in place.
func ksStatistic(samples []float64, sigma float64) float64 {
	sort.Float64s(samples)
	n := float64(len(samples))
	var d float64
	for i, x := range samples {
		f := stdNormalCDF(x / sigma)
		if lo := f - float64(i)/n; lo > d {
			d = lo
		}
		if hi := float64(i+1)/n - f; hi > d {
			d = hi
		}
	}
	return d
}

func TestNormalsSigmaDeterministic(t *testing.T) {
	a := make([]float64, 1000)
	b := make([]float64, 1000)
	New(42).NormalsSigma(a, 1.5)
	New(42).NormalsSigma(b, 1.5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("index %d: %v != %v under the same seed", i, a[i], b[i])
		}
	}
}

func TestNormalsSigmaZeroSigmaFillsZeros(t *testing.T) {
	dst := []float64{1, 2, 3, 4}
	New(1).NormalsSigma(dst, 0)
	for i, v := range dst {
		if v != 0 {
			t.Errorf("dst[%d] = %v, want 0 for sigma=0", i, v)
		}
	}
	dst = []float64{5, 6}
	New(1).NormalsSigma(dst, -1)
	for i, v := range dst {
		if v != 0 {
			t.Errorf("dst[%d] = %v, want 0 for negative sigma", i, v)
		}
	}
}

// TestNormalsSigmaMoments pins the first four moments of the ziggurat
// sampler to the normal law.
func TestNormalsSigmaMoments(t *testing.T) {
	const (
		n     = 400_000
		sigma = 2.5
	)
	samples := make([]float64, n)
	New(7).NormalsSigma(samples, sigma)

	var sum float64
	for _, x := range samples {
		sum += x
	}
	mean := sum / n
	var m2, m3, m4 float64
	for _, x := range samples {
		d := x - mean
		m2 += d * d
		m3 += d * d * d
		m4 += d * d * d * d
	}
	m2 /= n
	m3 /= n
	m4 /= n
	sd := math.Sqrt(m2)
	skew := m3 / (sd * sd * sd)
	exKurt := m4/(m2*m2) - 3

	// Standard errors: mean ~ σ/√n, variance ~ σ²√(2/n), skew ~ √(6/n),
	// kurtosis ~ √(24/n); allow 5 standard errors each.
	if tol := 5 * sigma / math.Sqrt(n); math.Abs(mean) > tol {
		t.Errorf("mean = %v, want |mean| < %v", mean, tol)
	}
	if tol := 5 * sigma * sigma * math.Sqrt(2.0/n); math.Abs(m2-sigma*sigma) > tol {
		t.Errorf("variance = %v, want %v ± %v", m2, sigma*sigma, tol)
	}
	if tol := 5 * math.Sqrt(6.0/n); math.Abs(skew) > tol {
		t.Errorf("skewness = %v, want |skew| < %v", skew, tol)
	}
	if tol := 5 * math.Sqrt(24.0/n); math.Abs(exKurt) > tol {
		t.Errorf("excess kurtosis = %v, want |kurt| < %v", exKurt, tol)
	}
}

// TestNormalsSigmaKSAgainstExactCDF checks the full distribution shape:
// the KS distance to the exact normal CDF must be below the α=0.001
// critical value, which a biased layer table or a wrong tail would blow
// past immediately.
func TestNormalsSigmaKSAgainstExactCDF(t *testing.T) {
	const n = 200_000
	samples := make([]float64, n)
	New(11).NormalsSigma(samples, 3)
	d := ksStatistic(samples, 3)
	crit := 1.95 / math.Sqrt(n) // α ≈ 0.001
	if d > crit {
		t.Errorf("KS statistic %v exceeds critical value %v", d, crit)
	}
}

// TestNormalsSigmaCrossValidatesPolar pins the ziggurat and the polar
// Normal to the same law: both KS distances against the exact CDF pass,
// and their sample moments agree within joint statistical tolerance, so
// replacing per-cell Normal draws with one batched fill preserves the
// release's output distribution.
func TestNormalsSigmaCrossValidatesPolar(t *testing.T) {
	const n = 200_000
	zig := make([]float64, n)
	New(23).NormalsSigma(zig, 1)
	polar := make([]float64, n)
	src := New(29)
	for i := range polar {
		polar[i] = src.Normal()
	}

	crit := 1.95 / math.Sqrt(n)
	if d := ksStatistic(zig, 1); d > crit {
		t.Errorf("ziggurat KS statistic %v exceeds %v", d, crit)
	}
	if d := ksStatistic(polar, 1); d > crit {
		t.Errorf("polar KS statistic %v exceeds %v", d, crit)
	}

	moments := func(xs []float64) (mean, variance float64) {
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean = sum / n
		for _, x := range xs {
			variance += (x - mean) * (x - mean)
		}
		variance /= n
		return
	}
	mz, vz := moments(zig)
	mp, vp := moments(polar)
	if tol := 10 / math.Sqrt(n); math.Abs(mz-mp) > tol {
		t.Errorf("means diverge: ziggurat %v vs polar %v", mz, mp)
	}
	if tol := 10 * math.Sqrt(2.0/n); math.Abs(vz-vp) > tol {
		t.Errorf("variances diverge: ziggurat %v vs polar %v", vz, vp)
	}
}

// TestNormalsSigmaTailCoverage verifies the slow path actually produces
// tail mass beyond the last ziggurat layer at the right rate.
func TestNormalsSigmaTailCoverage(t *testing.T) {
	const n = 1_000_000
	samples := make([]float64, n)
	New(31).NormalsSigma(samples, 1)
	var tail int
	for _, x := range samples {
		if math.Abs(x) > zigTailR {
			tail++
		}
	}
	p := 2 * (1 - stdNormalCDF(zigTailR))
	want := p * n
	if float64(tail) < want/2 || float64(tail) > want*2 {
		t.Errorf("tail count %d, want about %.0f (|x| > %v)", tail, want, zigTailR)
	}
}

// TestNormalsSigmaScales checks the sigma multiplier is applied.
func TestNormalsSigmaScales(t *testing.T) {
	a := make([]float64, 4096)
	b := make([]float64, 4096)
	New(5).NormalsSigma(a, 1)
	New(5).NormalsSigma(b, 10)
	for i := range a {
		if b[i] != 10*a[i] {
			t.Fatalf("index %d: %v != 10 * %v", i, b[i], a[i])
		}
	}
}

func BenchmarkNormalsSigma(b *testing.B) {
	src := New(3)
	dst := make([]float64, 4096)
	b.SetBytes(int64(len(dst)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.NormalsSigma(dst, 1.5)
	}
}

// TestZigguratTableCloses pins the 512-layer geometry: the recurrence
// from x_{N-1} = zigTailR down to x_1 must close the ziggurat exactly —
// zigArea/x_1 + f(x_1) = 1, i.e. the top layer's strip is the whole
// remaining area. A wrong (zigTailR, zigArea) pair (the constants come
// from an offline bisection solve, not a published table) would leave a
// residual here long before the statistical tests could see the bias.
func TestZigguratTableCloses(t *testing.T) {
	x1 := zigW[1] * zigM
	if res := math.Abs(zigArea/x1 + math.Exp(-0.5*x1*x1) - 1); res > 1e-12 {
		t.Errorf("ziggurat closure residual = %v, want < 1e-12", res)
	}
	// The tables must be monotone: x_i increases with i, f decreases.
	for i := 2; i < zigLayers; i++ {
		if zigW[i] <= zigW[i-1] {
			t.Fatalf("zigW not increasing at layer %d", i)
		}
		if zigF[i] >= zigF[i-1] {
			t.Fatalf("zigF not decreasing at layer %d", i)
		}
	}
	if zigW[zigLayers-1]*zigM != zigTailR {
		t.Errorf("last layer edge = %v, want zigTailR %v", zigW[zigLayers-1]*zigM, zigTailR)
	}
}

// TestNormalsSigmaGolden pins the blocked fill's exact fixed-seed output
// so replay stability across platforms and future refactors is a tested
// contract, not an accident. The blocked path consumes the uniform
// stream block-at-a-time (these values intentionally differ from the
// pre-blocked scalar implementation), and fills below the block-path
// cutoff run the scalar loop — its prefix agrees with the blocked path
// until the block's first straggler re-draw lands.
func TestNormalsSigmaGolden(t *testing.T) {
	dst := make([]float64, 4096)
	New(42).NormalsSigma(dst, 1.5)
	golden := []struct {
		i    int
		bits uint64
	}{
		{0, 0xbfe5901ef1728a72},
		{1, 0x40002332c60159a1},
		{2, 0xbfb9c6a96fc127b1},
		{3, 0xc000c550634b23c0},
		{511, 0x3fe4c93235dd8577},
		{512, 0x3fc9826b1a6fefbc},
		{1023, 0xbff98f2075640ec6},
		{2048, 0xc0024380a5caded8},
		{4095, 0x3fcb7bfe2d87d7ba},
	}
	for _, g := range golden {
		if got := math.Float64bits(dst[g.i]); got != g.bits {
			t.Errorf("dst[%d] = %v (0x%016x), want 0x%016x", g.i, dst[g.i], got, g.bits)
		}
	}
	small := make([]float64, 8)
	New(42).NormalsSigma(small, 1.5)
	goldenSmall := []uint64{
		0xbfe5901ef1728a72, 0x40002332c60159a1, 0xbfb9c6a96fc127b1, 0xc000c550634b23c0,
		0xbfe4cc0dd7f5b4f9, 0xbff57e80e1e056b9, 0x3fe6398910636ae6, 0xc000ea706239202e,
	}
	for i, want := range goldenSmall {
		if got := math.Float64bits(small[i]); got != want {
			t.Errorf("small[%d] = %v (0x%016x), want 0x%016x", i, small[i], got, want)
		}
	}
}

// TestNormalsSigmaChunkedStreamEquivalent is the contract core.noisyCells
// builds on: a fill issued as chunks at ZigBlock multiples consumes the
// stream identically to one whole-slice call, so the release engine can
// interleave the counts add at chunk granularity without changing a
// single released byte.
func TestNormalsSigmaChunkedStreamEquivalent(t *testing.T) {
	const n = 10 * ZigBlock
	whole := make([]float64, n)
	srcW := New(99)
	srcW.NormalsSigma(whole, 2)

	chunked := make([]float64, n)
	srcC := New(99)
	for off := 0; off < n; off += 2 * ZigBlock {
		srcC.NormalsSigma(chunked[off:off+2*ZigBlock], 2)
	}
	for i := range whole {
		if math.Float64bits(whole[i]) != math.Float64bits(chunked[i]) {
			t.Fatalf("index %d: whole %v != chunked %v", i, whole[i], chunked[i])
		}
	}
	// The sources must land in the same stream state too.
	if srcW.Uint64() != srcC.Uint64() {
		t.Fatal("whole and chunked fills left the stream in different states")
	}
}
