package experiments

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/rng"
)

// RunTopK is experiment A8 (extension): heavy-hitter identification
// utility. A data user at each tier computes the top-k heaviest left-side
// groups ("most prolific author groups") from the released noisy cell
// histogram; we measure set precision against the exact top-k. This
// quantifies a *task-level* utility the paper's scalar RER metric cannot
// see: coarse tiers may have usable counts yet useless rankings.
func RunTopK(opts Options) (*Report, error) {
	tree, err := standardTree(opts)
	if err != nil {
		return nil, err
	}
	trials := opts.trials(20, 4)
	grid := epsGrid(opts.Quick)
	const k = 4
	// Levels with at least 2k side groups so the task is non-trivial.
	var levels []int
	for _, lvl := range levelsFor(tree.MaxLevel()) {
		groups, err := tree.NumSideGroups(lvl)
		if err != nil {
			return nil, err
		}
		if groups >= 2*k {
			levels = append(levels, lvl)
		}
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("experiments: topk needs a level with >= %d side groups", 2*k)
	}
	levels = pickSpread(levels)

	table := metrics.Table{
		Title:   fmt.Sprintf("A8 — top-%d group precision from released histograms (%d trials)", k, trials),
		Headers: []string{"εg"},
	}
	series := make([]metrics.Series, len(levels))
	for li, lvl := range levels {
		table.Headers = append(table.Headers, fmt.Sprintf("level %d", lvl))
		series[li] = metrics.Series{Name: fmt.Sprintf("level %d", lvl)}
	}
	// Pre-split every noise stream in the serial (εg, level, trial) loop
	// order, then fan trials across Options.Workers lanes. A lane reuses
	// one CellRelease buffer through ReleaseCellsInto — the released
	// histogram is consumed by TopKPrecision before the next release
	// overwrites it — and the precision means reduce in trial order, so
	// the table is bit-identical for any worker count.
	src := rng.New(opts.Seed + 99)
	srcs := make([][][]*rng.Source, len(grid))
	for ei, eps := range grid {
		srcs[ei] = make([][]*rng.Source, len(levels))
		for li, lvl := range levels {
			srcs[ei][li] = make([]*rng.Source, trials)
			for trial := 0; trial < trials; trial++ {
				srcs[ei][li][trial] = src.Split(uint64(trial)<<16 | uint64(lvl)<<8 | uint64(eps*1000))
			}
		}
	}
	precision := make([][][]float64, trials)
	scratch := make([]core.CellRelease, numTrialWorkers(opts.Workers, trials))
	err = runTrials(opts.Workers, trials, func(worker, trial int) error {
		rel := &scratch[worker]
		res := make([][]float64, len(grid))
		for ei, eps := range grid {
			res[ei] = make([]float64, len(levels))
			for li, lvl := range levels {
				if err := core.ReleaseCellsInto(rel, tree, lvl, dp.Params{Epsilon: eps, Delta: 1e-5},
					core.CalibrationClassical, srcs[ei][li][trial]); err != nil {
					return err
				}
				p, err := query.TopKPrecision(tree, *rel, bipartite.Left, k)
				if err != nil {
					return err
				}
				res[ei][li] = p
			}
		}
		precision[trial] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ei, eps := range grid {
		row := []any{eps}
		for li := range levels {
			var sum float64
			for trial := 0; trial < trials; trial++ {
				sum += precision[trial][ei][li]
			}
			mean := sum / float64(trials)
			row = append(row, mean)
			series[li].X = append(series[li].X, eps)
			series[li].Y = append(series[li].Y, mean)
		}
		table.AddRow(row...)
	}
	fig, err := metrics.RenderASCII(series, metrics.PlotOptions{
		Title:  fmt.Sprintf("A8: top-%d precision vs εg", k),
		XLabel: "εg", YLabel: "precision",
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Name: "topk", Title: "A8 — heavy-hitter identification utility",
		Tables: []metrics.Table{table}, Series: series, Figures: []string{fig},
		Notes: []string{
			"ranking quality tracks the inter-group gap / noise ratio, not RER: coarse levels rank usably despite large RER, while fine levels (many near-equal groups, noise fixed at the level's Δ) rank poorly even where counts look accurate",
		},
	}, nil
}
