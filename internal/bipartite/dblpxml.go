package bipartite

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
)

// LoadDBLPXML parses a DBLP-style XML stream into an author-paper
// association graph (authors on the left, publications on the right).
//
// The paper's evaluation used the dblp.uni-trier.de dump. This loader
// understands the dump's structure — publication elements such as
// <article>, <inproceedings> etc. containing <author> children and a key
// attribute — so the pipeline can run on the real dataset when it is
// available. The synthetic generator in internal/datagen is the default
// substitute (see DESIGN.md §3).
//
// Parsing is streaming: memory is proportional to the output graph, not
// the XML text. Entity definitions beyond XML's builtin five are mapped
// through a permissive CharsetReader-free fallback: unknown entities cause
// an error from encoding/xml, so callers preprocessing real DBLP dumps
// should resolve entities first (the dump ships a DTD with hundreds of
// author-name entities).
func LoadDBLPXML(r io.Reader) (*Graph, error) {
	dec := xml.NewDecoder(r)
	// The real dump declares latin-1; accept it by treating bytes as-is.
	dec.CharsetReader = func(charset string, input io.Reader) (io.Reader, error) {
		return input, nil
	}

	publicationKinds := map[string]bool{
		"article": true, "inproceedings": true, "proceedings": true,
		"book": true, "incollection": true, "phdthesis": true,
		"mastersthesis": true, "www": false, // www entries are author homepages
	}

	b := NewBuilder(0)
	var (
		inPub      bool
		pubKey     string
		pubAuthors []string
		inAuthor   bool
		authorText []byte
		pubCount   int
	)
	for {
		tok, err := dec.Token()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("bipartite: parsing dblp xml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if !inPub {
				if publicationKinds[t.Name.Local] {
					inPub = true
					pubAuthors = pubAuthors[:0]
					pubKey = ""
					for _, attr := range t.Attr {
						if attr.Name.Local == "key" {
							pubKey = attr.Value
						}
					}
					if pubKey == "" {
						pubKey = fmt.Sprintf("pub/%d", pubCount)
					}
					pubCount++
				}
				continue
			}
			if t.Name.Local == "author" || t.Name.Local == "editor" {
				inAuthor = true
				authorText = authorText[:0]
			}
		case xml.CharData:
			if inAuthor {
				authorText = append(authorText, t...)
			}
		case xml.EndElement:
			switch {
			case inAuthor && (t.Name.Local == "author" || t.Name.Local == "editor"):
				inAuthor = false
				if name := string(authorText); name != "" {
					pubAuthors = append(pubAuthors, name)
				}
			case inPub && publicationKinds[t.Name.Local]:
				inPub = false
				for _, a := range pubAuthors {
					b.AddAssociation(a, pubKey)
				}
			}
		}
	}
	if b.NumEdgesAdded() == 0 {
		return nil, errors.New("bipartite: dblp xml contained no author-publication associations")
	}
	return b.Build()
}
