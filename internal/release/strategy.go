package release

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/bipartite"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/hierarchy"
	"repro/internal/partition"
	"repro/internal/rng"
)

// A Strategy decomposes the two-phase release into three composable
// stages — how Phase 1 groups the nodes (Partitioner), what noise Phase
// 2 injects (NoiseStage), and how the released histograms are
// post-processed (ConsistencyStep) — so the engine is a registry of
// named release plans instead of one hard-coded finish. The paper's
// quadtree + Gaussian pipeline is the default strategy and stays
// byte-identical; alternates (community-aware partitioning in the
// PrivGraph shape, pure-ε Laplace cells) plug in beside it and are
// selectable per dataset at serve.AddDataset / gdpserve -strategy /
// the HTTP ingest request.

// Strategy errors.
var (
	// ErrBadStrategy reports an invalid strategy definition or
	// registration (empty name, duplicate name, nil stage).
	ErrBadStrategy = errors.New("release: invalid strategy")
	// ErrUnknownStrategy reports a strategy name absent from the
	// registry — surfaced at configuration time (Pipeline.New,
	// serve.AddDataset, HTTP ingest), never as a late panic in finish.
	ErrUnknownStrategy = errors.New("release: unknown strategy")
)

// DefaultStrategyName is the paper's pipeline: exponential-mechanism
// quadtree specialization with Gaussian cells and hierarchical
// consistency. Its artifacts, noise streams and ledger labels are
// pinned byte-identical to the pre-strategy engine.
const DefaultStrategyName = "quadtree-gaussian"

// StrategySalt maps a strategy name to the RNG salt folded into stream
// derivation. The default strategy's salt is zero so its draws (and the
// serving layer's data fingerprints) stay exactly as before the
// strategy seam existed; every other name hashes to a distinct salt so
// two strategies over the same data never share a noise stream.
func StrategySalt(name string) uint64 {
	if name == "" || name == DefaultStrategyName {
		return 0
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte("strategy/" + name))
	return h.Sum64()
}

// PhaseOp is one Phase-1 ledger charge a partitioner declares: the
// label it will appear under in the audit trail and its (ε, δ) cost.
type PhaseOp struct {
	Label string
	Cost  dp.Params
}

// PhaseCost composes an op list into one (ε, δ) total. Uniform lists
// (every built-in partitioner) compose by multiplication, not serial
// addition — n·ε in one rounding step is what the pre-strategy engine
// reported for the quadtree's 2·rounds cuts, and n float additions of ε
// land on different low bits.
func PhaseCost(ops []PhaseOp) dp.Params {
	var total dp.Params
	if len(ops) == 0 {
		return total
	}
	uniform := true
	for _, op := range ops[1:] {
		if op.Cost != ops[0].Cost {
			uniform = false
			break
		}
	}
	if uniform {
		n := float64(len(ops))
		return dp.Params{Epsilon: n * ops[0].Cost.Epsilon, Delta: n * ops[0].Cost.Delta}
	}
	for _, op := range ops {
		total.Epsilon += op.Cost.Epsilon
		total.Delta += op.Cost.Delta
	}
	return total
}

// PartitionConfig is the slice of the pipeline configuration a
// partitioner consumes.
type PartitionConfig struct {
	// Rounds is the specialization depth.
	Rounds int
	// Epsilon is the Phase-1 privacy knob (WithPhase1Epsilon): the
	// per-cut exponential-mechanism budget for the quadtree family, the
	// per-side randomized-response budget for the community family.
	// Zero means a public (uncharged) grouping.
	Epsilon float64
	// Override is the WithBisector escape hatch, or nil.
	Override partition.Bisector
	// Workers bounds any internal parallelism; plans must be identical
	// for every value.
	Workers int
}

// PartitionPlan is a partitioner's resolved Phase-1 plan for one build:
// the bisector that cuts every range and, optionally, an explicit node
// ordering computed from the data.
type PartitionPlan struct {
	Bisector partition.Bisector
	Keys     *hierarchy.OrderKeys
}

// Partitioner is the Phase-1 stage: it decides how the hierarchy's
// contiguous ranges are ordered and cut, and declares what the grouping
// costs. Plans must be deterministic in (data, cfg, src) and identical
// between the graph and streamed build paths.
type Partitioner interface {
	Name() string
	// Ops returns the Phase-1 ledger charges implied by cfg. It is
	// data-independent so serving layers can account ingest cost before
	// touching edges.
	Ops(cfg PartitionConfig) []PhaseOp
	// ChargeAlways reports whether Ops are charged even when the built
	// tree records no private cuts (true for partitioners that spend
	// budget outside the bisector, e.g. on perturbed assignments).
	ChargeAlways() bool
	// PlanGraph and PlanSource resolve the plan for one build; exactly
	// one is called per run, matching the build path.
	PlanGraph(g *bipartite.Graph, cfg PartitionConfig, src *rng.Source) (PartitionPlan, error)
	PlanSource(es bipartite.EdgeSource, cfg PartitionConfig, src *rng.Source) (PartitionPlan, error)
}

// NoiseStage is the Phase-2 stage: the mechanism for scalar count
// releases and the mechanism for cell-histogram releases. Gaussian
// cells run the chunked worker-sharded fill; Laplace/geometric cells
// run the serial pure-ε path with δ = 0.
type NoiseStage struct {
	Count core.NoiseMechanism
	Cells core.NoiseMechanism
}

// ConsistencyStep post-processes the released per-level histograms.
// Post-processing of DP outputs is free, so steps never touch the
// ledger.
type ConsistencyStep interface {
	Name() string
	Apply(cells []core.CellRelease) ([]core.CellRelease, error)
}

// HierarchicalConsistency enforces parent = Σ children across levels
// (consistency.Enforce), the variance-weighted constrained inference
// the default strategy uses.
type HierarchicalConsistency struct{}

// Name implements ConsistencyStep.
func (HierarchicalConsistency) Name() string { return "hierarchical" }

// Apply implements ConsistencyStep.
func (HierarchicalConsistency) Apply(cells []core.CellRelease) ([]core.CellRelease, error) {
	return consistency.Enforce(cells)
}

// IdentityConsistency publishes the raw noisy histograms unchanged —
// the right step for the geometric mechanism (averaging would destroy
// integer counts) and for strategies whose variance bookkeeping the
// hierarchical solver does not model.
type IdentityConsistency struct{}

// Name implements ConsistencyStep.
func (IdentityConsistency) Name() string { return "identity" }

// Apply implements ConsistencyStep.
func (IdentityConsistency) Apply(cells []core.CellRelease) ([]core.CellRelease, error) {
	return cells, nil
}

// Strategy is one named composition of the three stages.
type Strategy struct {
	name        string
	Partitioner Partitioner
	Noise       NoiseStage
	Consistency ConsistencyStep
}

// NewStrategy validates and assembles a strategy.
func NewStrategy(name string, p Partitioner, n NoiseStage, c ConsistencyStep) (*Strategy, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: empty name", ErrBadStrategy)
	}
	if p == nil {
		return nil, fmt.Errorf("%w: %q has no partitioner", ErrBadStrategy, name)
	}
	if !n.Count.Valid() {
		return nil, fmt.Errorf("%w: %q count mechanism %d", ErrBadStrategy, name, int(n.Count))
	}
	if !n.Cells.Valid() {
		return nil, fmt.Errorf("%w: %q cell mechanism %d", ErrBadStrategy, name, int(n.Cells))
	}
	if c == nil {
		return nil, fmt.Errorf("%w: %q has no consistency step", ErrBadStrategy, name)
	}
	return &Strategy{name: name, Partitioner: p, Noise: n, Consistency: c}, nil
}

// Name returns the registry name.
func (s *Strategy) Name() string { return s.name }

// PureEpsilon reports whether the strategy's Phase-2 releases carry
// δ = 0 (no Gaussian stage), which serving layers consult to skip
// Gaussian-only calibration probes.
func (s *Strategy) PureEpsilon() bool {
	return s.Noise.Count != core.MechGaussian && s.Noise.Cells != core.MechGaussian
}

// StrategyRegistry is a named set of strategies. The zero value is not
// usable; construct with NewStrategyRegistry. The package-level
// Strategies registry carries the built-ins and is what the pipeline,
// the serving layer and the CLIs resolve against.
type StrategyRegistry struct {
	mu sync.RWMutex
	m  map[string]*Strategy
}

// NewStrategyRegistry returns an empty registry.
func NewStrategyRegistry() *StrategyRegistry {
	return &StrategyRegistry{m: make(map[string]*Strategy)}
}

// Register adds a strategy, rejecting nil strategies, empty names and
// duplicates — a second registration under one name would silently
// change which plan existing datasets resolve.
func (r *StrategyRegistry) Register(s *Strategy) error {
	if s == nil {
		return fmt.Errorf("%w: nil strategy", ErrBadStrategy)
	}
	if s.name == "" {
		return fmt.Errorf("%w: empty name", ErrBadStrategy)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[s.name]; ok {
		return fmt.Errorf("%w: %q is already registered", ErrBadStrategy, s.name)
	}
	r.m[s.name] = s
	return nil
}

// Resolve returns the named strategy; the empty name selects the
// default. Unknown names report ErrUnknownStrategy with the available
// names, so a typo surfaces at configuration time with enough context
// to fix it.
func (r *StrategyRegistry) Resolve(name string) (*Strategy, error) {
	if name == "" {
		name = DefaultStrategyName
	}
	r.mu.RLock()
	s, ok := r.m[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownStrategy, name, r.Names())
	}
	return s, nil
}

// Names returns the registered names, sorted.
func (r *StrategyRegistry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for name := range r.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Strategies is the process-wide registry, seeded with the built-ins.
var Strategies = NewStrategyRegistry()

func init() {
	mustRegister := func(name string, p Partitioner, n NoiseStage, c ConsistencyStep) {
		s, err := NewStrategy(name, p, n, c)
		if err == nil {
			err = Strategies.Register(s)
		}
		if err != nil {
			panic(err)
		}
	}
	// The paper's pipeline, byte-identical to the pre-strategy engine.
	mustRegister(DefaultStrategyName, QuadtreePartitioner{},
		NoiseStage{Count: core.MechGaussian, Cells: core.MechGaussian},
		HierarchicalConsistency{})
	// Pure-ε alternative: Laplace counts and cells, δ = 0 end to end.
	// Identity consistency keeps the variance bookkeeping honest (the
	// hierarchical solver weights by Gaussian σ²).
	mustRegister("quadtree-laplace", QuadtreePartitioner{},
		NoiseStage{Count: core.MechLaplace, Cells: core.MechLaplace},
		IdentityConsistency{})
	// Community-aware partitioning in the PrivGraph shape: modularity-
	// style label grouping on the side projections, DP-perturbed
	// assignment charged to the Phase-1 budget, Gaussian Phase 2.
	mustRegister("community-gaussian", CommunityPartitioner{},
		NoiseStage{Count: core.MechGaussian, Cells: core.MechGaussian},
		HierarchicalConsistency{})
}

// QuadtreePartitioner is the paper's Phase 1: degree-descending range
// order cut by the exponential-mechanism bisector when a Phase-1 budget
// is configured, the public balanced bisector otherwise. WithBisector
// overrides the bisector entirely (ablation A3).
type QuadtreePartitioner struct{}

// Name implements Partitioner.
func (QuadtreePartitioner) Name() string { return "quadtree" }

// Ops implements Partitioner: cuts within one (depth, side) operate on
// disjoint node ranges and compose in parallel; the 2·rounds
// side-depths compose sequentially.
func (QuadtreePartitioner) Ops(cfg PartitionConfig) []PhaseOp {
	if cfg.Epsilon <= 0 {
		return nil
	}
	ops := make([]PhaseOp, 0, 2*cfg.Rounds)
	for d := 0; d < cfg.Rounds; d++ {
		for _, side := range []string{"left", "right"} {
			ops = append(ops, PhaseOp{
				Label: fmt.Sprintf("phase1/depth%d/%s", d, side),
				Cost:  dp.Params{Epsilon: cfg.Epsilon},
			})
		}
	}
	return ops
}

// ChargeAlways implements Partitioner: the quadtree spends only through
// the bisector, so a build with no private cuts owes nothing.
func (QuadtreePartitioner) ChargeAlways() bool { return false }

// plan resolves the bisector with the historical precedence: explicit
// override, then the exponential mechanism when a budget is set, then
// the public balanced bisector.
func (QuadtreePartitioner) plan(cfg PartitionConfig, src *rng.Source) (PartitionPlan, error) {
	if cfg.Override != nil {
		return PartitionPlan{Bisector: cfg.Override}, nil
	}
	if cfg.Epsilon > 0 {
		b, err := partition.NewExpMechBisector(cfg.Epsilon, src)
		if err != nil {
			return PartitionPlan{}, fmt.Errorf("release: phase 1 bisector: %w", err)
		}
		return PartitionPlan{Bisector: b}, nil
	}
	return PartitionPlan{Bisector: partition.BalancedBisector{}}, nil
}

// PlanGraph implements Partitioner.
func (q QuadtreePartitioner) PlanGraph(_ *bipartite.Graph, cfg PartitionConfig, src *rng.Source) (PartitionPlan, error) {
	return q.plan(cfg, src)
}

// PlanSource implements Partitioner.
func (q QuadtreePartitioner) PlanSource(_ bipartite.EdgeSource, cfg PartitionConfig, src *rng.Source) (PartitionPlan, error) {
	return q.plan(cfg, src)
}
