package consistency

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dp"
	"repro/internal/hierarchy"
	"repro/internal/partition"
	"repro/internal/rng"
)

func testTree(t testing.TB) *hierarchy.Tree {
	t.Helper()
	g, err := datagen.Generate(datagen.Config{
		Name: "cons", NumLeft: 200, NumRight: 300, NumEdges: 2500,
		LeftZipf: 1.9, RightZipf: 2.8, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := hierarchy.Build(g, hierarchy.Options{Rounds: 4, Bisector: partition.BalancedBisector{}})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// releaseLevels produces noisy cell releases for levels hi..lo.
func releaseLevels(t testing.TB, tree *hierarchy.Tree, hi, lo int, eps float64, seed uint64) []core.CellRelease {
	t.Helper()
	src := rng.New(seed)
	var out []core.CellRelease
	for lvl := hi; lvl >= lo; lvl-- {
		rel, err := core.ReleaseCells(tree, lvl, dp.Params{Epsilon: eps, Delta: 1e-5},
			core.CalibrationClassical, src.Split(uint64(lvl)))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rel)
	}
	return out
}

func TestEnforceProducesExactConsistency(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	raw := releaseLevels(t, tree, 3, 0, 0.5, 11)
	// Raw releases are (almost surely) inconsistent.
	if err := CheckConsistent(raw, 1e-6); err == nil {
		t.Fatal("raw noisy releases unexpectedly consistent")
	}
	fixed, err := Enforce(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckConsistent(fixed, 1e-6); err != nil {
		t.Fatalf("enforced releases inconsistent: %v", err)
	}
	// Originals untouched.
	if err := CheckConsistent(raw, 1e-6); err == nil {
		t.Error("Enforce mutated its input")
	}
}

func TestEnforcePreservesNearExactInputs(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	// Build "noisy" releases with tiny sigma directly from exact counts:
	// enforcement should barely move them.
	var rels []core.CellRelease
	for lvl := 3; lvl >= 0; lvl-- {
		counts, err := tree.LevelCellCounts(lvl)
		if err != nil {
			t.Fatal(err)
		}
		k, err := tree.NumSideGroups(lvl)
		if err != nil {
			t.Fatal(err)
		}
		noisy := make([]float64, len(counts))
		for i, c := range counts {
			noisy[i] = float64(c)
		}
		rels = append(rels, core.CellRelease{Level: lvl, SideGroups: k, Counts: noisy, Sigma: 1e-9})
	}
	fixed, err := Enforce(rels)
	if err != nil {
		t.Fatal(err)
	}
	for d := range fixed {
		for i := range fixed[d].Counts {
			if math.Abs(fixed[d].Counts[i]-rels[d].Counts[i]) > 1e-3 {
				t.Fatalf("level %d cell %d moved from %v to %v", rels[d].Level, i, rels[d].Counts[i], fixed[d].Counts[i])
			}
		}
	}
	// Exact inputs are already consistent (cells partition records).
	if err := CheckConsistent(fixed, 1e-3); err != nil {
		t.Fatal(err)
	}
}

func TestEnforceReducesError(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	exact := map[int][]float64{}
	for lvl := 3; lvl >= 0; lvl-- {
		counts, err := tree.LevelCellCounts(lvl)
		if err != nil {
			t.Fatal(err)
		}
		e := make([]float64, len(counts))
		for i, c := range counts {
			e[i] = float64(c)
		}
		exact[lvl] = e
	}
	sqErr := func(rels []core.CellRelease) float64 {
		var total float64
		for _, r := range rels {
			for i, v := range r.Counts {
				d := v - exact[r.Level][i]
				total += d * d
			}
		}
		return total
	}
	var rawTotal, fixedTotal float64
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		raw := releaseLevels(t, tree, 3, 0, 0.5, uint64(100+trial))
		fixed, err := Enforce(raw)
		if err != nil {
			t.Fatal(err)
		}
		rawTotal += sqErr(raw)
		fixedTotal += sqErr(fixed)
	}
	if fixedTotal >= rawTotal {
		t.Errorf("consistency did not reduce squared error: raw %v, fixed %v", rawTotal, fixedTotal)
	}
}

func TestEnforceValidation(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	rels := releaseLevels(t, tree, 3, 0, 0.5, 1)

	if _, err := Enforce(nil); !errors.Is(err, ErrNoLevels) {
		t.Errorf("empty: %v", err)
	}
	if _, err := Enforce(rels[:1]); !errors.Is(err, ErrNoLevels) {
		t.Errorf("single level: %v", err)
	}
	// Non-contiguous levels.
	if _, err := Enforce([]core.CellRelease{rels[0], rels[2]}); !errors.Is(err, ErrNotContiguous) {
		t.Errorf("gap: %v", err)
	}
	// Corrupt grid.
	bad := make([]core.CellRelease, len(rels))
	copy(bad, rels)
	bad[1].SideGroups = 7
	if _, err := Enforce(bad); err == nil {
		t.Error("corrupt grid accepted")
	}
	// Zero sigma.
	copy(bad, rels)
	bad[0].Sigma = 0
	if _, err := Enforce(bad); !errors.Is(err, ErrBadRelease) {
		t.Errorf("zero sigma: %v", err)
	}
}

func TestEnforceOrdersInput(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	rels := releaseLevels(t, tree, 3, 0, 0.5, 2)
	// Shuffle: fine first.
	reversed := []core.CellRelease{rels[3], rels[2], rels[1], rels[0]}
	fixed, err := Enforce(reversed)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckConsistent(fixed, 1e-6); err != nil {
		t.Fatal(err)
	}
	if fixed[0].Level != 3 {
		t.Errorf("output not coarse-first: level %d", fixed[0].Level)
	}
}

func TestCheckConsistentErrors(t *testing.T) {
	t.Parallel()
	if err := CheckConsistent(nil, 1e-6); !errors.Is(err, ErrNoLevels) {
		t.Errorf("empty: %v", err)
	}
	a := core.CellRelease{Level: 2, SideGroups: 2, Counts: make([]float64, 4)}
	b := core.CellRelease{Level: 1, SideGroups: 8, Counts: make([]float64, 64)}
	if err := CheckConsistent([]core.CellRelease{a, b}, 1e-6); !errors.Is(err, ErrNotNested) {
		t.Errorf("not nested: %v", err)
	}
}

// TestQuickEnforceInvariants: for random nested grid families with random
// noise, Enforce always yields exact consistency and preserves the
// inverse-variance-weighted total estimate's unbiasedness structure (the
// output stays finite and level totals agree).
func TestQuickEnforceInvariants(t *testing.T) {
	t.Parallel()
	src := rng.New(515)
	f := func(seed uint64) bool {
		r := src.Split(seed)
		depths := r.Intn(3) + 2 // 2..4 levels
		topLevel := depths + r.Intn(3)
		rels := make([]core.CellRelease, depths)
		k := 1
		for d := 0; d < depths; d++ {
			counts := make([]float64, k*k)
			for i := range counts {
				counts[i] = float64(r.Intn(1000)) + r.NormalSigma(50)
			}
			rels[d] = core.CellRelease{
				Level:      topLevel - d,
				SideGroups: k,
				Counts:     counts,
				Sigma:      1 + float64(r.Intn(100)),
			}
			k *= 2
		}
		fixed, err := Enforce(rels)
		if err != nil {
			return false
		}
		if err := CheckConsistent(fixed, 1e-6); err != nil {
			return false
		}
		for _, fr := range fixed {
			for _, v := range fr.Counts {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
		// All levels agree on the total after enforcement.
		total := fixed[0].SumCells()
		for _, fr := range fixed[1:] {
			if math.Abs(fr.SumCells()-total) > 1e-6*(math.Abs(total)+1) {
				return false
			}
		}
		return true
	}
	if err := quickCheck(f, 60); err != nil {
		t.Error(err)
	}
}

// quickCheck adapts testing/quick with a bounded count.
func quickCheck(f func(uint64) bool, count int) error {
	for i := 0; i < count; i++ {
		if !f(uint64(i) * 2654435761) {
			return fmt.Errorf("property failed on iteration %d", i)
		}
	}
	return nil
}

func TestEnforceTotalSumMatchesRootEstimate(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	raw := releaseLevels(t, tree, 3, 0, 0.5, 9)
	fixed, err := Enforce(raw)
	if err != nil {
		t.Fatal(err)
	}
	// After enforcement every level implies the same total.
	first := fixed[0].SumCells()
	for _, r := range fixed[1:] {
		if math.Abs(r.SumCells()-first) > 1e-6*math.Abs(first)+1e-6 {
			t.Errorf("level %d total %v != root total %v", r.Level, r.SumCells(), first)
		}
	}
}
