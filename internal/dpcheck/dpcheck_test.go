package dpcheck

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dp"
	"repro/internal/hierarchy"
	"repro/internal/partition"
	"repro/internal/rng"
)

// laplacePair returns mechanism closures for a Laplace count query on two
// adjacent databases (true counts t and t+1, sensitivity 1).
func laplacePair(t *testing.T, eps float64) (MechanismFunc, MechanismFunc) {
	t.Helper()
	scale := 1 / eps
	onD1 := func(src *rng.Source) float64 { return 100 + src.Laplace(scale) }
	onD2 := func(src *rng.Source) float64 { return 101 + src.Laplace(scale) }
	return onD1, onD2
}

func TestEstimateEpsilonLaplace(t *testing.T) {
	t.Parallel()
	for _, eps := range []float64{0.5, 1, 2} {
		eps := eps
		onD1, onD2 := laplacePair(t, eps)
		res, err := EstimateEpsilon(onD1, onD2, Config{Seed: 42})
		if err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		// The empirical loss must be near ε: well above ε/2 (the
		// mechanism is tight) and no more than ~25% above (sampling).
		if res.EpsilonHat > eps*1.25 {
			t.Errorf("eps=%v: estimate %v too high", eps, res.EpsilonHat)
		}
		if res.EpsilonHat < eps*0.5 {
			t.Errorf("eps=%v: estimate %v implausibly low", eps, res.EpsilonHat)
		}
		if res.BinsUsed == 0 {
			t.Error("no bins used")
		}
	}
}

// TestEstimateEpsilonCatchesUnderNoising is the negative control: a
// mechanism that claims ε=1 but adds noise for ε=3 must be flagged.
func TestEstimateEpsilonCatchesUnderNoising(t *testing.T) {
	t.Parallel()
	onD1, onD2 := laplacePair(t, 3) // actual loss 3
	res, err := EstimateEpsilon(onD1, onD2, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const claimed = 1.0
	if res.EpsilonHat <= claimed*1.5 {
		t.Errorf("under-noised mechanism not caught: estimate %v vs claimed %v", res.EpsilonHat, claimed)
	}
}

func TestEstimateEpsilonGaussianWithinBudget(t *testing.T) {
	t.Parallel()
	p := dp.Params{Epsilon: 0.8, Delta: 1e-5}
	sigma, err := dp.ClassicalGaussianSigma(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	onD1 := func(src *rng.Source) float64 { return 50 + src.NormalSigma(sigma) }
	onD2 := func(src *rng.Source) float64 { return 51 + src.NormalSigma(sigma) }
	res, err := EstimateEpsilon(onD1, onD2, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Classical calibration is conservative; the bulk loss sits well
	// under ε. Allow sampling slack above ε but flag gross violations.
	if res.EpsilonHat > p.Epsilon*1.3 {
		t.Errorf("gaussian empirical loss %v exceeds ε=%v", res.EpsilonHat, p.Epsilon)
	}
}

func TestEstimateEpsilonIdenticalInputs(t *testing.T) {
	t.Parallel()
	m := func(src *rng.Source) float64 { return src.Laplace(1) }
	res, err := EstimateEpsilon(m, m, Config{Seed: 3, Samples: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if res.EpsilonHat > 0.15 {
		t.Errorf("identical distributions estimated at %v", res.EpsilonHat)
	}
}

func TestEstimateEpsilonConstantMechanism(t *testing.T) {
	t.Parallel()
	m := func(src *rng.Source) float64 { return 5 }
	res, err := EstimateEpsilon(m, m, Config{Seed: 3, Samples: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.EpsilonHat != 0 {
		t.Errorf("constant identical mechanism estimate = %v", res.EpsilonHat)
	}
	// Disjoint constants: no shared mass at all.
	m2 := func(src *rng.Source) float64 { return 6 }
	if _, err := EstimateEpsilon(m, m2, Config{Seed: 3, Samples: 1000}); !errors.Is(err, ErrNoBins) {
		t.Errorf("disjoint constants error = %v", err)
	}
}

func TestEstimateEpsilonNilMechanism(t *testing.T) {
	t.Parallel()
	m := func(src *rng.Source) float64 { return 0 }
	if _, err := EstimateEpsilon(nil, m, Config{}); !errors.Is(err, ErrNilMechanism) {
		t.Errorf("nil first: %v", err)
	}
	if _, err := EstimateEpsilon(m, nil, Config{}); !errors.Is(err, ErrNilMechanism) {
		t.Errorf("nil second: %v", err)
	}
}

func TestEstimateEpsilonDiscreteGeometric(t *testing.T) {
	t.Parallel()
	const eps = 1.0
	mk := func(value int64) DiscreteMechanismFunc {
		return func(src *rng.Source) int64 {
			m, err := dp.NewGeometric(eps, 1, src)
			if err != nil {
				panic(err)
			}
			return m.PerturbInt(value)
		}
	}
	res, err := EstimateEpsilonDiscrete(mk(100), mk(101), Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.EpsilonHat > eps*1.25 {
		t.Errorf("geometric empirical loss %v exceeds ε=%v", res.EpsilonHat, eps)
	}
	if res.EpsilonHat < eps*0.5 {
		t.Errorf("geometric empirical loss %v implausibly low", res.EpsilonHat)
	}
}

func TestEstimateEpsilonDiscreteNil(t *testing.T) {
	t.Parallel()
	m := func(src *rng.Source) int64 { return 0 }
	if _, err := EstimateEpsilonDiscrete(nil, m, Config{}); !errors.Is(err, ErrNilMechanism) {
		t.Errorf("nil first: %v", err)
	}
}

// TestGroupDPReleaseWithinBudget is the headline integration check: the
// paper's Phase-2 release, run on a dataset and on its group-adjacent
// neighbour (the largest level group removed), must show empirical
// privacy loss at or below εg.
func TestGroupDPReleaseWithinBudget(t *testing.T) {
	t.Parallel()
	g, err := datagen.Generate(datagen.Config{
		Name: "dpcheck", NumLeft: 120, NumRight: 160, NumEdges: 1500,
		LeftZipf: 1.9, RightZipf: 2.8, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := hierarchy.Build(g, hierarchy.Options{Rounds: 3, Bisector: partition.BalancedBisector{}})
	if err != nil {
		t.Fatal(err)
	}
	const level = 2
	p := dp.Params{Epsilon: 0.9, Delta: 1e-4}
	sens, err := core.Sensitivity(tree, level, core.ModelCells)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := core.Sigma(p, sens, core.CalibrationClassical)
	if err != nil {
		t.Fatal(err)
	}
	total := float64(g.NumEdges())
	// D2 = D1 minus the largest level-2 group (the worst-case adjacent
	// dataset for the count query).
	onD1 := func(src *rng.Source) float64 { return total + src.NormalSigma(sigma) }
	onD2 := func(src *rng.Source) float64 { return total - float64(sens) + src.NormalSigma(sigma) }
	res, err := EstimateEpsilon(onD1, onD2, Config{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if res.EpsilonHat > p.Epsilon*1.3 {
		t.Errorf("group-DP release empirical loss %v exceeds εg=%v", res.EpsilonHat, p.Epsilon)
	}
}

// TestGroupDPIndividualNoiseFailsGroupPrivacy is the paper's motivating
// negative result: calibrating noise for individual DP (Δ=1) does NOT
// protect the group — the empirical group-level loss blows past εg.
func TestGroupDPIndividualNoiseFailsGroupPrivacy(t *testing.T) {
	t.Parallel()
	const eps = 0.9
	p := dp.Params{Epsilon: eps, Delta: 1e-4}
	sigmaIndividual, err := dp.ClassicalGaussianSigma(p, 1) // record-level noise
	if err != nil {
		t.Fatal(err)
	}
	const groupSize = 200.0
	onD1 := func(src *rng.Source) float64 { return 1500 + src.NormalSigma(sigmaIndividual) }
	onD2 := func(src *rng.Source) float64 { return 1500 - groupSize + src.NormalSigma(sigmaIndividual) }
	res, err := EstimateEpsilon(onD1, onD2, Config{Seed: 33})
	if err != nil {
		// Distributions so far apart that no bin overlaps: that too
		// demonstrates the privacy failure.
		if errors.Is(err, ErrNoBins) {
			return
		}
		t.Fatal(err)
	}
	if res.EpsilonHat < eps*2 {
		t.Errorf("individual-DP noise should leak group membership: loss %v vs εg=%v", res.EpsilonHat, eps)
	}
}
