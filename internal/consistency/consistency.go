// Package consistency implements hierarchical constrained inference over
// the multi-level noisy cell releases, in the style of Hay et al. (VLDB
// 2010), generalized to per-level noise scales.
//
// The pipeline releases one noisy histogram per level, and the level
// grids nest: cell (i, j) at one level is exactly the union of its four
// child cells (2i+a, 2j+b) at the next finer level. The raw releases
// ignore that structure — a parent's noisy count and its children's noisy
// sum disagree. Because the releases are already differentially private,
// any post-processing is free: this package computes the
// minimum-variance unbiased linear estimate that satisfies every
// parent-equals-sum-of-children constraint, which both restores
// consistency (downstream consumers see one coherent dataset) and
// strictly reduces expected error at every level.
//
// Algorithm: an upward pass replaces each cell's estimate with the
// inverse-variance-weighted average of its own noisy value and its
// children's (already combined) sum; a downward pass then redistributes
// each parent's residual across its children proportionally to their
// variances, so the constraints hold exactly.
package consistency

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// Errors returned by Enforce.
var (
	ErrNoLevels      = errors.New("consistency: need at least two levels")
	ErrNotNested     = errors.New("consistency: level grids do not nest (side groups must double per level)")
	ErrBadRelease    = errors.New("consistency: malformed cell release")
	ErrNotContiguous = errors.New("consistency: level numbers must be contiguous")
)

// Enforce returns new cell releases whose counts satisfy every
// parent-equals-children-sum constraint. Input must be ordered or
// orderable coarse→fine with contiguous level numbers and doubling side
// groups; the originals are not modified.
func Enforce(releases []core.CellRelease) ([]core.CellRelease, error) {
	if len(releases) < 2 {
		return nil, ErrNoLevels
	}
	// Order coarse → fine (descending level number) without mutating the
	// caller's slice.
	ordered := make([]core.CellRelease, len(releases))
	copy(ordered, releases)
	for i := 0; i < len(ordered); i++ {
		for j := i + 1; j < len(ordered); j++ {
			if ordered[j].Level > ordered[i].Level {
				ordered[i], ordered[j] = ordered[j], ordered[i]
			}
		}
	}
	for i, r := range ordered {
		if r.SideGroups < 1 || len(r.Counts) != r.SideGroups*r.SideGroups {
			return nil, fmt.Errorf("%w: level %d has %d counts for k=%d",
				ErrBadRelease, r.Level, len(r.Counts), r.SideGroups)
		}
		if !(r.Sigma > 0) {
			return nil, fmt.Errorf("%w: level %d sigma %v", ErrBadRelease, r.Level, r.Sigma)
		}
		if i > 0 {
			if ordered[i-1].Level-1 != r.Level {
				return nil, fmt.Errorf("%w: %d then %d", ErrNotContiguous, ordered[i-1].Level, r.Level)
			}
			if r.SideGroups != 2*ordered[i-1].SideGroups {
				return nil, fmt.Errorf("%w: k=%d after k=%d", ErrNotNested, r.SideGroups, ordered[i-1].SideGroups)
			}
		}
	}

	n := len(ordered)
	// Upward pass: z[d] and v[d] are the combined estimates and
	// variances, finest first computed, coarse last.
	z := make([][]float64, n)
	v := make([][]float64, n)
	for d := n - 1; d >= 0; d-- {
		r := ordered[d]
		k := r.SideGroups
		z[d] = make([]float64, len(r.Counts))
		v[d] = make([]float64, len(r.Counts))
		ownVar := r.Sigma * r.Sigma
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				idx := i*k + j
				if d == n-1 {
					z[d][idx] = r.Counts[idx]
					v[d][idx] = ownVar
					continue
				}
				ck := ordered[d+1].SideGroups
				var childSum, childVar float64
				for a := 0; a < 2; a++ {
					for b := 0; b < 2; b++ {
						cidx := (2*i+a)*ck + (2*j + b)
						childSum += z[d+1][cidx]
						childVar += v[d+1][cidx]
					}
				}
				wOwn := 1 / ownVar
				wChild := 1 / childVar
				z[d][idx] = (r.Counts[idx]*wOwn + childSum*wChild) / (wOwn + wChild)
				v[d][idx] = 1 / (wOwn + wChild)
			}
		}
	}

	// Downward pass: final[0] = z[0]; each parent's residual spreads over
	// its children proportional to their variances.
	final := make([][]float64, n)
	final[0] = append([]float64(nil), z[0]...)
	for d := 0; d < n-1; d++ {
		k := ordered[d].SideGroups
		ck := ordered[d+1].SideGroups
		final[d+1] = append([]float64(nil), z[d+1]...)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				var childSum, childVar float64
				for a := 0; a < 2; a++ {
					for b := 0; b < 2; b++ {
						cidx := (2*i+a)*ck + (2*j + b)
						childSum += z[d+1][cidx]
						childVar += v[d+1][cidx]
					}
				}
				residual := final[d][i*k+j] - childSum
				for a := 0; a < 2; a++ {
					for b := 0; b < 2; b++ {
						cidx := (2*i+a)*ck + (2*j + b)
						final[d+1][cidx] = z[d+1][cidx] + residual*v[d+1][cidx]/childVar
					}
				}
			}
		}
	}

	out := make([]core.CellRelease, n)
	for d, r := range ordered {
		out[d] = r
		out[d].Counts = final[d]
	}
	return out, nil
}

// CheckConsistent verifies that every parent cell equals the sum of its
// four children within tol, returning the first violation found.
func CheckConsistent(releases []core.CellRelease, tol float64) error {
	if len(releases) < 2 {
		return ErrNoLevels
	}
	for d := 0; d < len(releases)-1; d++ {
		p, c := releases[d], releases[d+1]
		if c.SideGroups != 2*p.SideGroups {
			return fmt.Errorf("%w: k=%d after k=%d", ErrNotNested, c.SideGroups, p.SideGroups)
		}
		k, ck := p.SideGroups, c.SideGroups
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				var sum float64
				for a := 0; a < 2; a++ {
					for b := 0; b < 2; b++ {
						sum += c.Counts[(2*i+a)*ck+(2*j+b)]
					}
				}
				diff := p.Counts[i*k+j] - sum
				if diff < 0 {
					diff = -diff
				}
				if diff > tol {
					return fmt.Errorf("consistency: level %d cell (%d,%d) = %v but children sum %v",
						p.Level, i, j, p.Counts[i*k+j], sum)
				}
			}
		}
	}
	return nil
}
