package hierarchy

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/bipartite"
)

// Streamed Phase-1 builds.
//
// The deepest-level cell matrix is a pure sum over edges and every cut
// decision consumes only per-node degrees, so the whole build needs just
// two sequential passes over an edge stream:
//
//	pass 1 — accumulate per-node degrees on both sides (and discover the
//	         side sizes when the source does not declare them); declared-
//	         side sources shard across Options.Workers with per-worker
//	         degree arrays merged at the end;
//	pass 2 — after the cuts, count each edge into its deepest-level cell,
//	         feeding the same bottom-up aggregation the in-memory path
//	         uses.
//
// Peak memory is O(chunk + sides + 4^rounds): the edges themselves are
// never held — not as a pair list, not as either CSR direction. The
// produced tree is bit-identical to Build on a Graph holding the same
// associations (pinned by TestBuildFromEdgesMatchesInMemory): degrees
// determine the cuts, the bisector consumes its stream in the same serial
// range order, and cell counts are order-independent integer sums.

// ErrNilSource reports a nil EdgeSource.
var ErrNilSource = errors.New("hierarchy: nil edge source")

// streamChunkEdges is the chunk capacity the streamed build requests from
// the source per NextChunk call.
const streamChunkEdges = bipartite.DefaultChunkEdges

// BuildFromEdges runs Phase-1 specialization over an edge stream and
// returns the tree. Like Build it is a thin wrapper over a throwaway
// Builder; repeated-build callers should hold a Builder. The source is
// Reset before each of the two passes, and the returned tree has no
// backing Graph (Tree.Graph returns nil).
func BuildFromEdges(src bipartite.EdgeSource, opts Options) (*Tree, error) {
	b := NewBuilder()
	defer b.Close()
	return b.BuildFromEdges(src, opts)
}

// BuildFromEdges is the streamed counterpart of Builder.Build, reusing the
// Builder's scratch and pool across calls.
func (b *Builder) BuildFromEdges(src bipartite.EdgeSource, opts Options) (*Tree, error) {
	if src == nil {
		return nil, ErrNilSource
	}
	if err := normalizeOptions(&opts); err != nil {
		return nil, err
	}

	if err := src.Reset(); err != nil {
		return nil, fmt.Errorf("hierarchy: resetting source for degree pass: %w", err)
	}
	leftDeg, rightDeg, err := scanStreamDegrees(src, opts.Workers)
	if err != nil {
		return nil, fmt.Errorf("hierarchy: degree pass: %w", err)
	}

	t := &Tree{
		maxLevel: opts.Rounds,
		left:     newSideTree(len(leftDeg)),
		right:    newSideTree(len(rightDeg)),
	}
	t.left.deg = leftDeg
	t.right.deg = rightDeg
	t.left.initWeights(opts.Order)
	t.right.initWeights(opts.Order)
	if err := t.applyOrderKeys(opts.Keys); err != nil {
		return nil, err
	}
	if err := b.runSplits(t, opts); err != nil {
		return nil, err
	}

	if err := src.Reset(); err != nil {
		return nil, fmt.Errorf("hierarchy: resetting source for cell pass: %w", err)
	}
	if err := t.finalizeFromSource(src, opts.Workers); err != nil {
		return nil, err
	}
	return t, nil
}

// maxShardDegreeNodes caps the combined size of the per-worker degree
// arrays the parallel pass 1 accumulates (in int64 entries across both
// sides and all workers). Past it the merge and the arrays themselves
// would cost more than the chunk fan-out saves, so the scan falls back to
// the serial sweep.
const maxShardDegreeNodes = 1 << 24

// scanStreamDegrees is pass 1: a sweep accumulating per-node degrees. The
// returned slice lengths define the side sizes: the declared sizes when
// the source knows them, grown to cover every observed id (geometric
// growth, trimmed back at the end — a source that hands out ascending
// ids, like a header-mode TSV of SaveTSV output, must not cost one
// reallocation per node).
//
// With workers > 1 and a source that declares its sides, chunks fan out
// over the same reader/worker pipeline pass 2 uses: each counting worker
// owns private degree arrays merged at the end. Degrees are
// order-independent integer sums, so the result is identical for any
// worker count; sources whose NextChunk does real work per edge (codec
// decoding) overlap that work with the accumulation. Sources that do
// not declare sides (headerless TSV) stay serial: the per-worker arrays
// grow to O(max observed id) each, and without declared sides there is
// no way to bound that workers× blowup up front — the serial sweep's
// single array is the memory envelope the streamed build promises.
func scanStreamDegrees(src bipartite.EdgeSource, workers int) (leftDeg, rightDeg []int64, err error) {
	nl, nr, known := src.Sides()
	if workers > 1 && known && int64(workers)*(int64(nl)+int64(nr)) <= maxShardDegreeNodes {
		return scanStreamDegreesParallel(src, workers, nl, nr)
	}
	var maxL, maxR int32 = -1, -1
	if known {
		leftDeg = make([]int64, nl)
		rightDeg = make([]int64, nr)
		maxL, maxR = nl-1, nr-1
	}
	buf := make([]bipartite.Edge, streamChunkEdges)
	err = bipartite.ForEachChunk(src, buf, func(chunk []bipartite.Edge) error {
		for _, e := range chunk {
			if e.Left < 0 || e.Right < 0 {
				return fmt.Errorf("negative node id in edge (%d,%d)", e.Left, e.Right)
			}
			leftDeg = growCounts(leftDeg, e.Left)
			rightDeg = growCounts(rightDeg, e.Right)
			leftDeg[e.Left]++
			rightDeg[e.Right]++
			if e.Left > maxL {
				maxL = e.Left
			}
			if e.Right > maxR {
				maxR = e.Right
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return leftDeg[:maxL+1], rightDeg[:maxR+1], nil
}

// degreeShard is one worker's private accumulation state.
type degreeShard struct {
	left, right []int64
	maxL, maxR  int32
	err         error
}

// accumulate counts one chunk into the shard.
func (s *degreeShard) accumulate(chunk []bipartite.Edge) error {
	for _, e := range chunk {
		if e.Left < 0 || e.Right < 0 {
			return fmt.Errorf("negative node id in edge (%d,%d)", e.Left, e.Right)
		}
		s.left = growCounts(s.left, e.Left)
		s.right = growCounts(s.right, e.Right)
		s.left[e.Left]++
		s.right[e.Right]++
		if e.Left > s.maxL {
			s.maxL = e.Left
		}
		if e.Right > s.maxR {
			s.maxR = e.Right
		}
	}
	return nil
}

// fanOutChunks is the shared reader/worker chunk pump of the parallel
// streaming scans: one reader goroutine recycles chunk buffers through
// a bounded free list while `workers` goroutines each run accumulate
// with their worker index over the chunks they pop — per-worker state
// (and per-worker error capture) belongs to the caller's closure. The
// returned error is the reader's; callers merge and check their own
// worker errors after it returns.
func fanOutChunks(src bipartite.EdgeSource, workers int, accumulate func(worker int, edges []bipartite.Edge)) error {
	type chunk struct {
		buf []bipartite.Edge
		n   int
	}
	free := make(chan []bipartite.Edge, workers+1)
	for i := 0; i < workers+1; i++ {
		free <- make([]bipartite.Edge, streamChunkEdges)
	}
	work := make(chan chunk, workers+1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := range work {
				accumulate(w, c.buf[:c.n])
				free <- c.buf
			}
		}(w)
	}

	var readErr error
	for {
		buf := <-free
		n, err := src.NextChunk(buf)
		if err == io.EOF {
			break
		}
		if err == nil && n == 0 {
			err = errors.New("edge source returned an empty chunk without error")
		}
		if err != nil {
			readErr = err
			break
		}
		work <- chunk{buf: buf, n: n}
	}
	close(work)
	wg.Wait()
	return readErr
}

// scanStreamDegreesParallel fans degree accumulation across workers: the
// reader goroutine recycles chunk buffers through a free list while each
// worker grows private per-side arrays, merged by integer addition at the
// end — bit-identical to the serial sweep for any worker count. Only
// called for sources with declared sides, within the memory cap.
func scanStreamDegreesParallel(src bipartite.EdgeSource, workers int, nl, nr int32) ([]int64, []int64, error) {
	shards := make([]degreeShard, workers)
	for i := range shards {
		shards[i].maxL, shards[i].maxR = -1, -1
	}
	err := fanOutChunks(src, workers, func(w int, edges []bipartite.Edge) {
		if s := &shards[w]; s.err == nil {
			s.err = s.accumulate(edges)
		}
	})
	if err != nil {
		return nil, nil, err
	}
	maxL, maxR := nl-1, nr-1
	for i := range shards {
		if shards[i].err != nil {
			return nil, nil, shards[i].err
		}
		if shards[i].maxL > maxL {
			maxL = shards[i].maxL
		}
		if shards[i].maxR > maxR {
			maxR = shards[i].maxR
		}
	}
	leftDeg := make([]int64, maxL+1)
	rightDeg := make([]int64, maxR+1)
	for i := range shards {
		for id, d := range shards[i].left {
			leftDeg[id] += d
		}
		for id, d := range shards[i].right {
			rightDeg[id] += d
		}
	}
	return leftDeg, rightDeg, nil
}

// growCounts extends counts so that id is a valid index. Capacity at
// least doubles on reallocation and the zeroed tail is re-sliced into
// without copying, so a sequential id stream costs amortized O(1) per
// node instead of one reallocation each.
func growCounts(counts []int64, id int32) []int64 {
	n := int(id) + 1
	if n <= len(counts) {
		return counts
	}
	if n <= cap(counts) {
		return counts[:n] // make() zeroed the tail; it was never written
	}
	newCap := 2 * cap(counts)
	if newCap < n {
		newCap = n
	}
	grown := make([]int64, n, newCap)
	copy(grown, counts)
	return grown
}

// finalizeFromSource is the streamed finalize: the deepest cell matrix
// from one chunked scan of the source, the shared bottom-up aggregation,
// and the degree prefix sums. It cross-checks the two passes — a source
// whose replay yields a different edge multiset (or count) is rejected
// rather than silently producing a tree inconsistent with its own
// degrees.
func (t *Tree) finalizeFromSource(src bipartite.EdgeSource, workers int) error {
	dmax := len(t.left.bounds) - 1
	k := 1 << dmax
	deepest, err := t.scanCellsFromSource(src, k, workers)
	if err != nil {
		return fmt.Errorf("hierarchy: cell pass: %w", err)
	}
	var cellSum, degSum int64
	for _, c := range deepest {
		cellSum += c
	}
	for _, d := range t.left.deg {
		degSum += d
	}
	if cellSum != degSum {
		return fmt.Errorf("hierarchy: source changed between passes: degree pass saw %d edges, cell pass %d", degSum, cellSum)
	}
	t.setCells(deepest)
	t.left.computeDegreePrefix()
	t.right.computeDegreePrefix()
	return nil
}

// scanCellsFromSource counts the stream's edges into the deepest k×k cell
// matrix. With workers > 1 (and a matrix small enough that per-worker
// buffers stay under maxShardCells) chunks are fanned out over a small
// pipeline: the reader goroutine recycles chunk buffers through a free
// list while counting workers accumulate into private matrices merged at
// the end — integer sums, so the result is identical for any worker
// count.
func (t *Tree) scanCellsFromSource(src bipartite.EdgeSource, k, workers int) ([]int64, error) {
	leftGroup := t.left.groupOfNode(len(t.left.bounds) - 1)
	rightGroup := t.right.groupOfNode(len(t.right.bounds) - 1)
	shardCells := int64(workers) * int64(k) * int64(k)
	if workers < 2 || shardCells > maxShardCells {
		counts := make([]int64, k*k)
		buf := make([]bipartite.Edge, streamChunkEdges)
		err := bipartite.ForEachChunk(src, buf, func(chunk []bipartite.Edge) error {
			return countEdgeChunk(counts, chunk, leftGroup, rightGroup, k)
		})
		if err != nil {
			return nil, err
		}
		return counts, nil
	}

	parts := make([][]int64, workers)
	workerErrs := make([]error, workers)
	for w := range parts {
		parts[w] = make([]int64, k*k)
	}
	err := fanOutChunks(src, workers, func(w int, edges []bipartite.Edge) {
		if workerErrs[w] == nil {
			workerErrs[w] = countEdgeChunk(parts[w], edges, leftGroup, rightGroup, k)
		}
	})
	if err != nil {
		return nil, err
	}
	for _, werr := range workerErrs {
		if werr != nil {
			return nil, werr
		}
	}
	counts := make([]int64, k*k)
	for _, part := range parts {
		for i, c := range part {
			counts[i] += c
		}
	}
	return counts, nil
}

// countEdgeChunk counts one chunk into the k×k matrix, rejecting ids the
// degree pass never sized for (a source that grew between passes).
func countEdgeChunk(counts []int64, edges []bipartite.Edge, leftGroup, rightGroup []int32, k int) error {
	for _, e := range edges {
		if e.Left < 0 || int(e.Left) >= len(leftGroup) || e.Right < 0 || int(e.Right) >= len(rightGroup) {
			return fmt.Errorf("edge (%d,%d) outside the sides seen by the degree pass", e.Left, e.Right)
		}
		counts[int(leftGroup[e.Left])*k+int(rightGroup[e.Right])]++
	}
	return nil
}
