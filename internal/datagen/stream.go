package datagen

import (
	"fmt"
	"io"

	"repro/internal/bipartite"
	"repro/internal/rng"
)

// Stream yields the synthetic Zipf edges of a Config as chunks, in
// generation order, without ever building the Graph: no pair list, no
// CSR direction, no Builder sort. It implements bipartite.EdgeSource, so
// hierarchy.BuildFromEdges can specialize a synthetic dataset straight
// from the generator.
//
// The emitted edge set is exactly the set Generate(c) would put in its
// Graph — the same RNG streams are consumed in the same order, including
// the duplicate-retry and uniform-fallback draws — so a streamed build
// over a Stream is bit-identical to an in-memory build over Generate's
// output. Reset replays deterministically by re-deriving the RNG from the
// seed.
//
// Memory: the duplicate-rejection set is O(E) keys (8 bytes each plus map
// overhead) — far below a materialized Graph with its pair list and two
// CSR directions, but not constant. For truly beyond-RAM edge counts,
// generate once to a file (cmd/gdpgen) and stream it back with
// bipartite.NewTSVEdgeSource / NewBinaryEdgeSource instead.
type Stream struct {
	cfg Config

	zl, zr  *rng.Zipf
	uniform *rng.Source
	seen    map[[2]int32]struct{}
	dups    int
}

// NewStream validates c and returns a chunked source of its edges. Labels
// are a Graph-side concept (interned name tables) and are not supported on
// the streamed path.
func NewStream(c Config) (*Stream, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c.Labels {
		return nil, fmt.Errorf("%w: streaming does not support labels", ErrBadConfig)
	}
	s := &Stream{cfg: c}
	if err := s.Reset(); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset implements bipartite.EdgeSource: it rewinds the stream to the
// first edge by re-deriving every RNG stream from the seed.
func (s *Stream) Reset() error {
	src := rng.New(s.cfg.Seed)
	zl, err := rng.NewZipf(src.Split(1), s.cfg.LeftZipf, 1, uint64(s.cfg.NumLeft-1))
	if err != nil {
		return fmt.Errorf("datagen: left sampler: %w", err)
	}
	zr, err := rng.NewZipf(src.Split(2), s.cfg.RightZipf, 1, uint64(s.cfg.NumRight-1))
	if err != nil {
		return fmt.Errorf("datagen: right sampler: %w", err)
	}
	s.zl, s.zr = zl, zr
	s.uniform = src.Split(3)
	s.seen = make(map[[2]int32]struct{}, s.cfg.NumEdges)
	s.dups = 0
	return nil
}

// NextChunk implements bipartite.EdgeSource, running Generate's exact
// draw-retry-fallback loop until the chunk is full or the edge target is
// reached.
func (s *Stream) NextChunk(dst []bipartite.Edge) (int, error) {
	if len(dst) == 0 {
		return 0, fmt.Errorf("datagen: NextChunk called with an empty destination buffer")
	}
	if len(s.seen) >= s.cfg.NumEdges {
		return 0, io.EOF
	}
	const maxConsecutiveDup = 64
	n := 0
	for n < len(dst) && len(s.seen) < s.cfg.NumEdges {
		var l, r int32
		if s.dups < maxConsecutiveDup {
			l = int32(s.zl.Next())
			r = int32(s.zr.Next())
		} else {
			l = int32(s.uniform.Intn(s.cfg.NumLeft))
			r = int32(s.uniform.Intn(s.cfg.NumRight))
		}
		key := [2]int32{l, r}
		if _, dup := s.seen[key]; dup {
			s.dups++
			continue
		}
		s.dups = 0
		s.seen[key] = struct{}{}
		dst[n] = bipartite.Edge{Left: l, Right: r}
		n++
	}
	return n, nil
}

// Sides implements bipartite.EdgeSource; the config declares both sizes
// (isolated nodes included).
func (s *Stream) Sides() (int32, int32, bool) {
	return int32(s.cfg.NumLeft), int32(s.cfg.NumRight), true
}

// EdgeList materializes just the deduplicated edge list of a Config (in
// generation order) with the declared side sizes — the middle ground for
// repeated streamed builds over one synthetic dataset: one synthesis, 8
// bytes per edge, and bipartite.NewSliceSource cursors fan it out across
// trial lanes without re-drawing the Zipf streams per pass.
func EdgeList(c Config) (edges []bipartite.Edge, numLeft, numRight int32, err error) {
	s, err := NewStream(c)
	if err != nil {
		return nil, 0, 0, err
	}
	edges = make([]bipartite.Edge, 0, c.NumEdges)
	err = bipartite.ForEachChunk(s, make([]bipartite.Edge, bipartite.DefaultChunkEdges), func(chunk []bipartite.Edge) error {
		edges = append(edges, chunk...)
		return nil
	})
	if err != nil {
		return nil, 0, 0, err
	}
	return edges, int32(c.NumLeft), int32(c.NumRight), nil
}
