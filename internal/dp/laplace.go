package dp

import (
	"math"

	"repro/internal/rng"
)

// Laplace is the Laplace mechanism: it guarantees pure ε-DP for queries
// with bounded L1 sensitivity by adding Laplace(0, Δ1/ε) noise.
type Laplace struct {
	b   float64
	src *rng.Source
}

var _ Additive = (*Laplace)(nil)

// NewLaplace returns a Laplace mechanism for the given ε and L1
// sensitivity.
func NewLaplace(epsilon, l1Sensitivity float64, src *rng.Source) (*Laplace, error) {
	if err := (Params{Epsilon: epsilon}).Validate(); err != nil {
		return nil, err
	}
	if err := validateSensitivity(l1Sensitivity); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, ErrNilSource
	}
	return &Laplace{b: l1Sensitivity / epsilon, src: src}, nil
}

// Perturb returns value + Laplace(0, b) noise.
func (m *Laplace) Perturb(value float64) float64 {
	return value + m.src.Laplace(m.b)
}

// Scale returns the Laplace scale b = Δ1/ε.
func (m *Laplace) Scale() float64 { return m.b }

// ExpectedAbsError returns E|noise| = b.
func (m *Laplace) ExpectedAbsError() float64 { return m.b }

// LaplaceScale returns the noise scale the Laplace mechanism would use,
// without constructing a sampler. It is used for utility forecasting.
func LaplaceScale(epsilon, l1Sensitivity float64) (float64, error) {
	if err := (Params{Epsilon: epsilon}).Validate(); err != nil {
		return 0, err
	}
	if err := validateSensitivity(l1Sensitivity); err != nil {
		return 0, err
	}
	return l1Sensitivity / epsilon, nil
}

// laplaceTailBound returns the two-sided tail probability
// P(|noise| > t) = exp(-t/b) for the mechanism's scale.
func (m *Laplace) laplaceTailBound(t float64) float64 {
	if t <= 0 {
		return 1
	}
	return math.Exp(-t / m.b)
}

// ConfidenceInterval returns the half-width w such that the true value
// lies in [answer-w, answer+w] with the given confidence level in (0, 1).
func (m *Laplace) ConfidenceInterval(level float64) float64 {
	if !(level > 0 && level < 1) {
		return math.NaN()
	}
	return -m.b * math.Log(1-level)
}
