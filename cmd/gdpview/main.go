// Command gdpview renders a published release artifact (the JSON written
// by gdprelease / Release.WriteJSON) for human inspection: dataset
// summary, per-level noise parameters, privacy costs, and — with -level —
// the exact view a single privilege tier receives.
//
// Usage:
//
//	gdpview release.json
//	gdpview -level 3 release.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/metrics"
	"repro/internal/release"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gdpview:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gdpview", flag.ContinueOnError)
	level := fs.Int("level", -1, "show only this privilege tier's view")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: gdpview [-level N] <release.json>")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	rel, err := release.ReadJSON(f)
	if err != nil {
		return err
	}

	if *level >= 0 {
		return printView(rel, *level)
	}
	return printArtifact(rel)
}

func printArtifact(rel *release.Release) error {
	fmt.Printf("release artifact: %d rounds, mode %s, model %s, calibration %s\n",
		rel.Rounds, rel.ModeName, rel.ModelName, rel.CalibName)
	fmt.Printf("dataset: %s\n", rel.Dataset)
	fmt.Printf("budget: εg=%g δ=%g   phase-1 ε=%g\n", rel.BudgetEpsilon, rel.BudgetDelta, rel.Phase1Epsilon)
	fmt.Printf("cost: parallel ε=%.4f (per tier)   sequential ε=%.4f (all tiers)\n\n",
		rel.ParallelCostEpsilon, rel.SequentialCostEpsilon)

	table := metrics.Table{
		Title:   "Per-level releases",
		Headers: []string{"level", "ε", "δ", "sensitivity Δ", "σ", "noisy count"},
	}
	for _, lr := range rel.Counts.Levels {
		table.AddRow(lr.Level, lr.Epsilon, lr.Delta, lr.Sensitivity, lr.Sigma, lr.NoisyCount)
	}
	fmt.Println(table.Markdown())

	if len(rel.Cells) > 0 {
		cellTable := metrics.Table{
			Title:   "Cell-histogram releases",
			Headers: []string{"level", "side groups", "cells", "σ", "sum of cells"},
		}
		for _, c := range rel.Cells {
			cellTable.AddRow(c.Level, c.SideGroups, len(c.Counts), c.Sigma, c.SumCells())
		}
		fmt.Println(cellTable.Markdown())
	}

	if len(rel.Profiles) > 0 {
		prof := metrics.Table{
			Title:   "Hierarchy profile",
			Headers: []string{"level", "cells", "non-empty", "max cell", "mean cell", "skew"},
		}
		for _, p := range rel.Profiles {
			prof.AddRow(p.Level, p.NumCells, p.NonEmpty, p.MaxCellEdges, p.MeanCellEdges, p.Skew)
		}
		fmt.Println(prof.Markdown())
	}
	return nil
}

func printView(rel *release.Release, level int) error {
	v, err := rel.ViewFor(level)
	if err != nil {
		return err
	}
	fmt.Printf("view for privilege level %d\n", level)
	fmt.Printf("  association count: %.1f\n", v.Count.NoisyCount)
	fmt.Printf("  guarantee: εg=%g", v.Count.Epsilon)
	if v.Count.Delta > 0 {
		fmt.Printf(", δ=%g", v.Count.Delta)
	}
	fmt.Printf(" group-DP at level %d (Δ=%d, σ=%.1f)\n", v.Count.Level, v.Count.Sensitivity, v.Count.Sigma)
	if v.Cells != nil {
		fmt.Printf("  subgraph histogram: %d×%d cells, σ=%.1f, total %.1f\n",
			v.Cells.SideGroups, v.Cells.SideGroups, v.Cells.Sigma, v.Cells.SumCells())
	}
	return nil
}
