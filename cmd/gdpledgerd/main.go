// Command gdpledgerd is the shared privacy-ledger sequencer: a
// single-writer service that owns one durable (WAL + snapshot) budget
// per (dataset, data-fingerprint) key and admits spends over an
// idempotent HTTP/JSON protocol. Point N gdpserve replicas at it with
// -ledger-addr and they spend ONE (ε, δ) budget per dataset — the
// deployment shape where accounting stays centralized even when
// answering is not, closing the classic "two replicas silently double
// the budget" failure of distributed DP systems.
//
// Usage (single node):
//
//	gdpledgerd -addr 127.0.0.1:8850 -ledger-dir /var/lib/gdpledgerd
//	gdpserve   -addr 127.0.0.1:8080 -ledger-addr 127.0.0.1:8850 ...
//	gdpserve   -addr 127.0.0.1:8081 -ledger-addr 127.0.0.1:8850 ...
//
// Usage (replicated group — survives any minority failure):
//
//	gdpledgerd -addr a:8850 -ledger-dir /var/a -node-id n1 -peers n1=a:8850,n2=b:8850,n3=c:8850
//	gdpledgerd -addr b:8850 -ledger-dir /var/b -node-id n2 -peers n1=a:8850,n2=b:8850,n3=c:8850
//	gdpledgerd -addr c:8850 -ledger-dir /var/c -node-id n3 -peers n1=a:8850,n2=b:8850,n3=c:8850
//	gdpserve   -addr ...    -ledger-addr a:8850,b:8850,c:8850 ...
//
// Protocol (see internal/ledgerd):
//
//	POST /v1/ledgers/{key}/attach   open/replay a budget, returns the epoch token
//	POST /v1/ledgers/{key}/spend    idempotent admission (op_id dedups retries)
//	GET  /v1/ledgers/{key}          status + durability panel
//	GET  /v1/ledgers/{key}/ops      audit trail
//	GET  /healthz                   liveness
//	GET  /readyz                    readiness (primary with quorum, or follower with live leader)
//	POST /v1/group/{append,vote}    replication stream (group mode)
//	GET  /v1/group/{state,status}   durable position / operator panel (group mode)
//	POST /v1/group/promote          manual failover (group mode)
//
// Every admitted spend is fsynced into the WAL before the ack — in group
// mode, fsynced on a MAJORITY of members before the ack — so an
// admission can never be forgotten; a restart replays the log and fences
// stale writers through the epoch token (single node) or the monotonic
// term (group). Budgets are permanent: an exhausted key stays exhausted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/accountant"
	"repro/internal/ledgerd"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "gdpledgerd:", err)
		os.Exit(1)
	}
}

// config is the parsed command line: single-node options plus the
// optional group membership.
type config struct {
	opts      ledgerd.Options
	addr      string
	pprofAddr string
	// Group mode (both set): this node's ID and the full member map.
	nodeID string
	peers  map[string]string
	// heartbeat / electionTimeout tune the group pacemaker.
	heartbeat       time.Duration
	electionTimeout time.Duration
}

// parseArgs resolves flags into the sequencer configuration.
func parseArgs(args []string) (config, error) {
	fs := flag.NewFlagSet("gdpledgerd", flag.ContinueOnError)
	var (
		addrFlag   = fs.String("addr", "127.0.0.1:8850", "listen address")
		ledgerDir  = fs.String("ledger-dir", "", "directory holding the durable budget WALs (required)")
		fsync      = fs.String("fsync", "", "WAL fsync policy: always (the default; every admission is durable before its ack), interval, or off")
		fsyncEvery = fs.Duration("fsync-interval", 0, "max unsynced window under -fsync interval (0 = 100ms default)")
		snapEvery  = fs.Int("snapshot-every", 0, "compact each WAL into a snapshot after this many records (0 = 1024 default, negative = never compact)")
		pprofFlag  = fs.String("pprof", "", "serve net/http/pprof on this side address (e.g. 127.0.0.1:6061; empty = disabled)")
		nodeID     = fs.String("node-id", "", "this member's ID in a replicated group (requires -peers)")
		peersFlag  = fs.String("peers", "", "replicated-group membership as id=host:port[,id=host:port...], including this node (requires -node-id)")
		heartbeat  = fs.Duration("heartbeat", 0, "group replication heartbeat (0 = 100ms default)")
		election   = fs.Duration("election-timeout", 0, "base follower patience before bidding for leadership, randomized in [T, 2T) (0 = 1s default; negative disables auto elections — promote via POST /v1/group/promote)")
	)
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if *ledgerDir == "" {
		return config{}, errors.New("-ledger-dir is required (the sequencer exists to make budgets durable)")
	}
	policy, err := accountant.ParseFsyncPolicy(*fsync)
	if err != nil {
		return config{}, err
	}
	cfg := config{
		opts: ledgerd.Options{
			Dir:           *ledgerDir,
			Fsync:         policy,
			FsyncInterval: *fsyncEvery,
			SnapshotEvery: *snapEvery,
		},
		addr:            *addrFlag,
		pprofAddr:       *pprofFlag,
		nodeID:          *nodeID,
		heartbeat:       *heartbeat,
		electionTimeout: *election,
	}
	if (*peersFlag == "") != (*nodeID == "") {
		return config{}, errors.New("-peers and -node-id must be set together")
	}
	if *peersFlag != "" {
		if policy != accountant.FsyncAlways {
			return config{}, errors.New("group mode always fsyncs (a majority ack IS the durability guarantee); drop -fsync")
		}
		cfg.peers, err = parsePeers(*peersFlag)
		if err != nil {
			return config{}, err
		}
		if _, ok := cfg.peers[*nodeID]; !ok {
			return config{}, fmt.Errorf("-peers must include this node's -node-id (%q)", *nodeID)
		}
	}
	return cfg, nil
}

// parsePeers parses "id=host:port,id=host:port,...".
func parsePeers(s string) (map[string]string, error) {
	peers := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("-peers entry %q is not id=host:port", part)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("-peers repeats member id %q", id)
		}
		peers[id] = addr
	}
	if len(peers) == 0 {
		return nil, errors.New("-peers is empty")
	}
	return peers, nil
}

// httpServer wraps a handler with the slow-client timeouts every server
// we expose must carry: a stalled peer may not hold a connection (and
// its goroutine) forever.
func httpServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// run starts the sequencer and serves until ctx is canceled. started
// (if non-nil) receives the bound address once the listener is up — the
// test hook.
func run(ctx context.Context, args []string, started func(addr string)) error {
	cfg, err := parseArgs(args)
	if err != nil {
		return err
	}
	if cfg.pprofAddr != "" {
		stopProf, err := startPprof(cfg.pprofAddr)
		if err != nil {
			return err
		}
		defer stopProf()
	}

	var handler http.Handler
	var closeSvc func() error
	if cfg.peers != nil {
		group, err := ledgerd.NewGroup(ledgerd.GroupOptions{
			NodeID:          cfg.nodeID,
			Peers:           cfg.peers,
			Dir:             cfg.opts.Dir,
			HeartbeatEvery:  cfg.heartbeat,
			ElectionTimeout: cfg.electionTimeout,
			Logf: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		handler = ledgerd.NewGroupHandler(group)
		closeSvc = group.Close
		ids := make([]string, 0, len(cfg.peers))
		for id := range cfg.peers {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Printf("gdpledgerd: group member %s of %s (dir %s, epoch %s)\n",
			cfg.nodeID, strings.Join(ids, ","), cfg.opts.Dir, group.Epoch())
	} else {
		svc, err := ledgerd.New(cfg.opts)
		if err != nil {
			return err
		}
		handler = ledgerd.NewHandler(svc)
		// Close flushes and syncs every budget WAL — the graceful path
		// that makes interval/off fsync policies safe across clean
		// shutdowns.
		closeSvc = svc.Close
		fmt.Printf("gdpledgerd: single node (ledger dir %s, epoch %s)\n", cfg.opts.Dir, svc.Epoch())
	}
	defer func() { _ = closeSvc() }()

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Printf("gdpledgerd: listening on %s\n", ln.Addr())
	if started != nil {
		started(ln.Addr().String())
	}

	srv := httpServer(handler)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return closeSvc()
	}
}

// startPprof serves net/http/pprof on its own listener and mux, like
// gdpserve: the profiling surface never shares a port with the spend
// API. The returned func closes the listener.
func startPprof(addr string) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := httpServer(mux)
	go func() { _ = srv.Serve(ln) }()
	fmt.Printf("gdpledgerd: pprof on http://%s/debug/pprof/\n", ln.Addr())
	return func() { _ = srv.Close() }, nil
}
