package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/release"
)

func TestRunPresetToJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "rel.json")
	err := run([]string{
		"-preset", "dblp-tiny", "-eps", "0.9", "-rounds", "5",
		"-seed", "7", "-cells", "-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rel, err := repro.ReadRelease(f)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rounds != 5 || len(rel.Counts.Levels) != 4 || len(rel.Cells) != 4 {
		t.Errorf("artifact = %d rounds, %d levels, %d cells", rel.Rounds, len(rel.Counts.Levels), len(rel.Cells))
	}
	// Published by default: no true counts.
	for _, lr := range rel.Counts.Levels {
		if lr.TrueCount != 0 {
			t.Error("default output leaked true count")
		}
	}
}

func TestRunFromTSVFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "g.tsv")
	if err := os.WriteFile(in, []byte("0\t0\n0\t1\n1\t0\n1\t1\n2\t2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "rel.json")
	err := run([]string{"-in", in, "-eps", "0.9", "-rounds", "2", "-seed", "4",
		"-levels", "0", "-include-true", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rel, err := repro.ReadRelease(f)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Counts.Levels[0].TrueCount != 5 {
		t.Errorf("true count = %d, want 5", rel.Counts.Levels[0].TrueCount)
	}
}

func TestRunArgumentErrors(t *testing.T) {
	cases := [][]string{
		{},                                     // neither -preset nor -in
		{"-preset", "x", "-in", "y"},           // both
		{"-preset", "dblp-tiny", "-mode", "?"}, // bad mode
		{"-preset", "dblp-tiny", "-model", "?"},
		{"-preset", "dblp-tiny", "-calib", "?"},
		{"-preset", "dblp-tiny", "-mech", "?"},
		{"-preset", "dblp-tiny", "-levels", "a,b"},
		{"-in", "/nonexistent/file.tsv"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestParseHelpers(t *testing.T) {
	t.Parallel()
	if m, err := parseMode("composed-rdp"); err != nil || m != release.ModeComposedRDP {
		t.Errorf("parseMode = %v, %v", m, err)
	}
	if m, err := parseModel("node-groups"); err != nil || m != core.ModelNodeGroups {
		t.Errorf("parseModel = %v, %v", m, err)
	}
	if c, err := parseCalib("analytic"); err != nil || c != core.CalibrationAnalytic {
		t.Errorf("parseCalib = %v, %v", c, err)
	}
	if n, err := parseMech("geometric"); err != nil || n != core.MechGeometric {
		t.Errorf("parseMech = %v, %v", n, err)
	}
	lv, err := parseLevels("0, 2,4")
	if err != nil || len(lv) != 3 || lv[1] != 2 {
		t.Errorf("parseLevels = %v, %v", lv, err)
	}
}
