package release

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
)

// publishedArtifact runs a pipeline and returns the publishable JSON.
func publishedArtifact(t *testing.T, opts ...Option) []byte {
	t.Helper()
	base := []Option{WithRounds(4), WithSeed(5), WithCellHistograms(true)}
	p, err := New(defaultBudget(), append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := p.Run(testGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rel.WriteJSON(&buf, false); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadJSONRoundTrip(t *testing.T) {
	t.Parallel()
	blob := publishedArtifact(t)
	rel, err := ReadJSON(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rounds != 4 || len(rel.Counts.Levels) != 3 || len(rel.Cells) != 3 {
		t.Errorf("artifact = rounds %d, %d counts, %d cells", rel.Rounds, len(rel.Counts.Levels), len(rel.Cells))
	}
	// Published artifacts carry no exact counts.
	for _, lr := range rel.Counts.Levels {
		if lr.TrueCount != 0 {
			t.Error("published artifact leaked true count")
		}
	}
	// Views work on loaded artifacts.
	v, err := rel.ViewFor(1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Cells == nil {
		t.Error("loaded artifact lost cell histograms")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	t.Parallel()
	if _, err := ReadJSON(strings.NewReader("not json")); !errors.Is(err, ErrBadArtifact) {
		t.Errorf("garbage: %v", err)
	}
	if _, err := ReadJSON(strings.NewReader("{}")); !errors.Is(err, ErrBadArtifact) {
		t.Errorf("empty object: %v", err)
	}
}

func TestReadJSONValidation(t *testing.T) {
	t.Parallel()
	blob := publishedArtifact(t)
	cases := []struct {
		name   string
		mutate func(*Release)
	}{
		{name: "level out of range", mutate: func(r *Release) { r.Counts.Levels[0].Level = 99 }},
		{name: "duplicate level", mutate: func(r *Release) { r.Counts.Levels[1].Level = r.Counts.Levels[0].Level }},
		{name: "negative sensitivity", mutate: func(r *Release) { r.Counts.Levels[0].Sensitivity = -1 }},
		{name: "zero level epsilon", mutate: func(r *Release) { r.Counts.Levels[0].Epsilon = 0 }},
		{name: "zero rounds", mutate: func(r *Release) { r.Rounds = 0 }},
		{name: "zero budget", mutate: func(r *Release) { r.BudgetEpsilon = 0 }},
		{name: "no levels", mutate: func(r *Release) { r.Counts.Levels = nil }},
		{name: "cell grid mismatch", mutate: func(r *Release) { r.Cells[0].SideGroups = 7 }},
		{name: "orphan cell release", mutate: func(r *Release) { r.Cells[0].Level = 99 }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			var rel Release
			if err := json.Unmarshal(blob, &rel); err != nil {
				t.Fatal(err)
			}
			tc.mutate(&rel)
			mutated, err := json.Marshal(&rel)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ReadJSON(bytes.NewReader(mutated)); !errors.Is(err, ErrBadArtifact) {
				t.Errorf("error = %v, want ErrBadArtifact", err)
			}
		})
	}
}

// TestValidateArtifactNonFinite exercises the non-finite checks directly;
// valid JSON cannot carry NaN/Inf, but in-memory artifacts can.
func TestValidateArtifactNonFinite(t *testing.T) {
	t.Parallel()
	blob := publishedArtifact(t)
	load := func() *Release {
		var rel Release
		if err := json.Unmarshal(blob, &rel); err != nil {
			t.Fatal(err)
		}
		return &rel
	}
	rel := load()
	rel.Counts.Levels[0].NoisyCount = math.NaN()
	if err := validateArtifact(rel); !errors.Is(err, ErrBadArtifact) {
		t.Errorf("nan noisy count: %v", err)
	}
	rel = load()
	rel.Cells[0].Counts[0] = math.Inf(1)
	if err := validateArtifact(rel); !errors.Is(err, ErrBadArtifact) {
		t.Errorf("inf cell count: %v", err)
	}
}
