package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dp"
	"repro/internal/hierarchy"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/release"
	"repro/internal/rng"
)

// RunBudgetSplit is ablation A1: per-level full εg (the paper's reading)
// versus composing one global εg across all levels with basic or advanced
// composition. Composed modes give each level a fraction of the budget,
// so their RER is uniformly worse; the table quantifies by how much.
func RunBudgetSplit(opts Options) (*Report, error) {
	ds, err := opts.dataset()
	if err != nil {
		return nil, err
	}
	g, err := datagen.Generate(ds)
	if err != nil {
		return nil, err
	}
	r := rounds(opts.Quick)
	levels := levelsFor(r)
	trials := opts.trials(10, 2)
	budget := dp.Params{Epsilon: 0.5, Delta: 1e-5}
	modes := []release.Mode{
		release.ModePerLevel,
		release.ModeComposedBasic,
		release.ModeComposedAdvanced,
		release.ModeComposedRDP,
	}

	// One job per (mode, trial) pair; every pipeline is independently
	// seeded, so jobs fan out across lanes (each lane reusing one
	// hierarchy.Builder) and the per-mode means reduce in trial order —
	// bit-identical to the serial nesting for any worker count.
	jobs := len(modes) * trials
	perTrialRER := make([][][]float64, len(modes))
	for mi := range perTrialRER {
		perTrialRER[mi] = make([][]float64, trials)
	}
	builders := trialBuilders(numTrialWorkers(opts.Workers, jobs))
	defer closeBuilders(builders)
	buildWorkers := buildWorkersFor(opts.Workers, jobs)
	err = runTrials(opts.Workers, jobs, func(worker, job int) error {
		mi, trial := job/trials, job%trials
		p, err := release.New(budget,
			release.WithRounds(r),
			release.WithLevels(levels),
			release.WithMode(modes[mi]),
			release.WithSeed(opts.Seed+uint64(trial)*7919),
			release.WithPhase1Epsilon(0.1),
			release.WithWorkers(buildWorkers),
			release.WithBuilder(builders[worker]),
		)
		if err != nil {
			return err
		}
		rel, err := p.Run(g)
		if err != nil {
			return fmt.Errorf("experiments: budget-split mode %v: %w", modes[mi], err)
		}
		rers := make([]float64, len(rel.Counts.Levels))
		for li, lr := range rel.Counts.Levels {
			rers[li] = lr.RER
		}
		perTrialRER[mi][trial] = rers
		return nil
	})
	if err != nil {
		return nil, err
	}
	meanRER := make(map[release.Mode][]float64, len(modes))
	for mi, mode := range modes {
		meanRER[mode] = make([]float64, len(levels))
		for trial := 0; trial < trials; trial++ {
			for li, rer := range perTrialRER[mi][trial] {
				meanRER[mode][li] += rer / float64(trials)
			}
		}
	}

	table := metrics.Table{
		Title:   fmt.Sprintf("A1 — budget split at εg=%.2f", budget.Epsilon),
		Headers: []string{"level", "per-level RER", "composed-basic RER", "composed-advanced RER", "composed-rdp RER"},
	}
	var series []metrics.Series
	for _, mode := range modes {
		s := metrics.Series{Name: mode.String()}
		for li, lvl := range levels {
			s.X = append(s.X, float64(lvl))
			s.Y = append(s.Y, meanRER[mode][li])
		}
		series = append(series, s)
	}
	for li, lvl := range levels {
		table.AddRow(lvl,
			meanRER[release.ModePerLevel][li],
			meanRER[release.ModeComposedBasic][li],
			meanRER[release.ModeComposedAdvanced][li],
			meanRER[release.ModeComposedRDP][li])
	}
	fig, err := metrics.RenderASCII(series, metrics.PlotOptions{
		Title: "A1: RER per level by budget mode (log y)", LogY: true,
		XLabel: "level", YLabel: "RER",
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Name: "budget-split", Title: "A1 — per-level vs composed budgets",
		Tables: []metrics.Table{table}, Series: series, Figures: []string{fig},
		Notes: []string{"per-level mode matches the paper; composed modes answer the 'one user sees all levels' threat model"},
	}, nil
}

// RunCalibration is ablation A2: classical Dwork–Roth σ versus the
// analytic (Balle–Wang) σ across the εg grid, including εg ≥ 1 where the
// classical formula is undefined.
func RunCalibration(opts Options) (*Report, error) {
	tree, err := standardTree(opts)
	if err != nil {
		return nil, err
	}
	grid := append(epsGrid(opts.Quick), 1.5, 2.0)
	const delta = 1e-5
	level := tree.MaxLevel() - 2
	if level < 0 {
		level = 0
	}
	sens, err := core.Sensitivity(tree, level, core.ModelCells)
	if err != nil {
		return nil, err
	}

	table := metrics.Table{
		Title:   fmt.Sprintf("A2 — Gaussian calibration at level %d (Δ=%d, δ=%g)", level, sens, delta),
		Headers: []string{"εg", "classical σ", "analytic σ", "σ ratio", "classical RER", "analytic RER"},
	}
	classical := metrics.Series{Name: "classical"}
	analytic := metrics.Series{Name: "analytic"}
	total := float64(tree.NumEdges())
	for _, eps := range grid {
		p := dp.Params{Epsilon: eps, Delta: delta}
		sigmaA, err := core.Sigma(p, sens, core.CalibrationAnalytic)
		if err != nil {
			return nil, err
		}
		expA := sigmaA * 0.7978845608028654 / total // sqrt(2/pi)
		analytic.X = append(analytic.X, eps)
		analytic.Y = append(analytic.Y, expA)

		if eps < 1 {
			sigmaC, err := core.Sigma(p, sens, core.CalibrationClassical)
			if err != nil {
				return nil, err
			}
			expC := sigmaC * 0.7978845608028654 / total
			classical.X = append(classical.X, eps)
			classical.Y = append(classical.Y, expC)
			table.AddRow(eps, sigmaC, sigmaA, sigmaA/sigmaC, expC, expA)
		} else {
			table.AddRow(eps, "n/a (ε≥1)", sigmaA, "-", "-", expA)
		}
	}
	fig, err := metrics.RenderASCII([]metrics.Series{classical, analytic}, metrics.PlotOptions{
		Title: "A2: expected RER, classical vs analytic (log y)", LogY: true,
		XLabel: "εg", YLabel: "E[RER]",
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Name: "calibration", Title: "A2 — classical vs analytic Gaussian",
		Tables:  []metrics.Table{table},
		Series:  []metrics.Series{classical, analytic},
		Figures: []string{fig},
		Notes: []string{
			"analytic calibration is uniformly tighter and extends the release to εg ≥ 1, where the paper's classical formula is undefined",
		},
	}, nil
}

// RunPartitioner is ablation A3: the exponential-mechanism bisector versus
// non-private baselines, measured by per-level cell skew (max cell /
// balanced cell) and the resulting expected RER at εg = 0.999.
func RunPartitioner(opts Options) (*Report, error) {
	ds, err := opts.dataset()
	if err != nil {
		return nil, err
	}
	g, err := datagen.Generate(ds)
	if err != nil {
		return nil, err
	}
	r := rounds(opts.Quick)
	src := rng.New(opts.Seed + 17)

	type entry struct {
		name string
		bis  partition.Bisector
	}
	expBis, err := partition.NewExpMechBisector(0.1, src.Split(1))
	if err != nil {
		return nil, err
	}
	randBis, err := partition.NewRandomBisector(src.Split(2))
	if err != nil {
		return nil, err
	}
	entries := []entry{
		{name: "expmech(0.1)", bis: expBis},
		{name: "balanced", bis: partition.BalancedBisector{}},
		{name: "random", bis: randBis},
		{name: "midpoint", bis: partition.MidpointBisector{}},
	}

	builder := hierarchy.NewBuilder()
	defer builder.Close()

	p := dp.Params{Epsilon: 0.999, Delta: 1e-5}
	skewTable := metrics.Table{
		Title:   "A3 — cell skew by bisector (max cell / balanced cell)",
		Headers: []string{"level"},
	}
	rerTable := metrics.Table{
		Title:   "A3 — expected RER at εg=0.999 by bisector",
		Headers: []string{"level"},
	}
	levels := levelsFor(r)
	skews := make([][]float64, len(entries))
	rers := make([][]float64, len(entries))
	var series []metrics.Series
	for ei, e := range entries {
		skewTable.Headers = append(skewTable.Headers, e.name)
		rerTable.Headers = append(rerTable.Headers, e.name)
		tree, err := builder.Build(g, hierarchy.Options{Rounds: r, Bisector: e.bis, Workers: opts.Workers})
		if err != nil {
			return nil, fmt.Errorf("experiments: partitioner %s: %w", e.name, err)
		}
		skews[ei] = make([]float64, len(levels))
		rers[ei] = make([]float64, len(levels))
		s := metrics.Series{Name: e.name}
		for li, lvl := range levels {
			prof, err := tree.Profile(lvl)
			if err != nil {
				return nil, err
			}
			skews[ei][li] = prof.Skew
			exp, err := core.ExpectedRER(tree, lvl, p, core.ModelCells, core.CalibrationClassical)
			if err != nil {
				return nil, err
			}
			rers[ei][li] = exp
			s.X = append(s.X, float64(lvl))
			s.Y = append(s.Y, exp)
		}
		series = append(series, s)
	}
	for li, lvl := range levels {
		skewRow := []any{lvl}
		rerRow := []any{lvl}
		for ei := range entries {
			skewRow = append(skewRow, skews[ei][li])
			rerRow = append(rerRow, rers[ei][li])
		}
		skewTable.AddRow(skewRow...)
		rerTable.AddRow(rerRow...)
	}
	fig, err := metrics.RenderASCII(series, metrics.PlotOptions{
		Title: "A3: expected RER by bisector (log y)", LogY: true,
		XLabel: "level", YLabel: "E[RER]",
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Name: "partitioner", Title: "A3 — Phase-1 bisector comparison",
		Tables: []metrics.Table{skewTable, rerTable}, Series: series, Figures: []string{fig},
		Notes: []string{"skew drives sensitivity: balanced cuts minimize the max cell, random cuts inflate it"},
	}, nil
}

// RunAdjacency is ablation A4: the primary cell (record-group) adjacency
// versus node-group adjacency, which charges a group's full incident edge
// set and therefore needs more noise.
func RunAdjacency(opts Options) (*Report, error) {
	tree, err := standardTree(opts)
	if err != nil {
		return nil, err
	}
	p := dp.Params{Epsilon: 0.999, Delta: 1e-5}
	levels := levelsFor(tree.MaxLevel())
	table := metrics.Table{
		Title:   "A4 — adjacency semantics at εg=0.999",
		Headers: []string{"level", "cell Δ", "node-group Δ", "Δ ratio", "cell RER", "node-group RER"},
	}
	cellSeries := metrics.Series{Name: "cells"}
	nodeSeries := metrics.Series{Name: "node-groups"}
	for _, lvl := range levels {
		cellSens, err := core.Sensitivity(tree, lvl, core.ModelCells)
		if err != nil {
			return nil, err
		}
		nodeSens, err := core.Sensitivity(tree, lvl, core.ModelNodeGroups)
		if err != nil {
			return nil, err
		}
		cellRER, err := core.ExpectedRER(tree, lvl, p, core.ModelCells, core.CalibrationClassical)
		if err != nil {
			return nil, err
		}
		nodeRER, err := core.ExpectedRER(tree, lvl, p, core.ModelNodeGroups, core.CalibrationClassical)
		if err != nil {
			return nil, err
		}
		ratio := float64(nodeSens) / float64(cellSens)
		table.AddRow(lvl, cellSens, nodeSens, ratio, cellRER, nodeRER)
		cellSeries.X = append(cellSeries.X, float64(lvl))
		cellSeries.Y = append(cellSeries.Y, cellRER)
		nodeSeries.X = append(nodeSeries.X, float64(lvl))
		nodeSeries.Y = append(nodeSeries.Y, nodeRER)
	}
	fig, err := metrics.RenderASCII([]metrics.Series{cellSeries, nodeSeries}, metrics.PlotOptions{
		Title: "A4: expected RER by adjacency model (log y)", LogY: true,
		XLabel: "level", YLabel: "E[RER]",
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Name: "adjacency", Title: "A4 — cell vs node-group adjacency",
		Tables:  []metrics.Table{table},
		Series:  []metrics.Series{cellSeries, nodeSeries},
		Figures: []string{fig},
		Notes: []string{
			"node-group adjacency protects 'remove a whole author group' and pays for it with a strictly larger sensitivity at every level",
		},
	}, nil
}

// RunDeltaSweep is ablation A5: the effect of the unreported δ on per-
// level RER at fixed εg = 0.5.
func RunDeltaSweep(opts Options) (*Report, error) {
	tree, err := standardTree(opts)
	if err != nil {
		return nil, err
	}
	const eps = 0.5
	deltas := []float64{1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8}
	levels := pickSpread(levelsFor(tree.MaxLevel()))
	table := metrics.Table{
		Title:   fmt.Sprintf("A5 — δ sweep at εg=%.1f (expected RER)", eps),
		Headers: []string{"δ"},
	}
	for _, lvl := range levels {
		table.Headers = append(table.Headers, fmt.Sprintf("level %d", lvl))
	}
	var series []metrics.Series
	for _, lvl := range levels {
		series = append(series, metrics.Series{Name: fmt.Sprintf("level %d", lvl)})
	}
	for _, delta := range deltas {
		row := []any{delta}
		for li, lvl := range levels {
			exp, err := core.ExpectedRER(tree, lvl, dp.Params{Epsilon: eps, Delta: delta},
				core.ModelCells, core.CalibrationClassical)
			if err != nil {
				return nil, err
			}
			row = append(row, exp)
			series[li].X = append(series[li].X, -math.Log10(delta))
			series[li].Y = append(series[li].Y, exp)
		}
		table.AddRow(row...)
	}
	fig, err := metrics.RenderASCII(series, metrics.PlotOptions{
		Title: "A5: expected RER vs -log10(δ) (log y)", LogY: true,
		XLabel: "-log10(δ)", YLabel: "E[RER]",
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Name: "delta", Title: "A5 — δ sensitivity",
		Tables: []metrics.Table{table}, Series: series, Figures: []string{fig},
		Notes: []string{"RER grows only like √log(1/δ): the unreported δ cannot change the paper's conclusions"},
	}, nil
}

// RunScale is ablation A6: pipeline wall-time versus graph size, backing
// the paper's scalability claim.
func RunScale(opts Options) (*Report, error) {
	sizes := []int{10_000, 40_000, 160_000}
	if opts.Quick {
		sizes = []int{2_000, 8_000}
	}
	r := rounds(opts.Quick)
	table := metrics.Table{
		Title:   "A6 — pipeline wall time vs graph size",
		Headers: []string{"edges", "gen ms", "phase1 ms", "phase2 ms", "edges/s (phase1)"},
	}
	speed := metrics.Series{Name: "phase1 edges/s"}
	builder := hierarchy.NewBuilder()
	defer builder.Close()
	for _, edges := range sizes {
		cfg := datagen.Config{
			Name:    fmt.Sprintf("scale-%d", edges),
			NumLeft: edges / 5, NumRight: edges / 3, NumEdges: edges,
			LeftZipf: 1.9, RightZipf: 2.8, Seed: opts.Seed + uint64(edges),
		}
		t0 := time.Now()
		g, err := datagen.Generate(cfg)
		if err != nil {
			return nil, err
		}
		genMS := time.Since(t0).Seconds() * 1000

		t1 := time.Now()
		tree, err := buildTrialTree(builder, g, r, 0.1, opts.Workers, rng.New(opts.Seed+uint64(edges)+1))
		if err != nil {
			return nil, err
		}
		p1MS := time.Since(t1).Seconds() * 1000

		t2 := time.Now()
		src := rng.New(opts.Seed + uint64(edges) + 2)
		for _, lvl := range levelsFor(r) {
			if _, err := core.ReleaseCount(tree, lvl, dp.Params{Epsilon: 0.5, Delta: 1e-5},
				core.ModelCells, core.CalibrationClassical, src); err != nil {
				return nil, err
			}
		}
		p2MS := time.Since(t2).Seconds() * 1000

		eps := float64(edges) / (p1MS / 1000)
		table.AddRow(edges, genMS, p1MS, p2MS, eps)
		speed.X = append(speed.X, float64(edges))
		speed.Y = append(speed.Y, eps)
	}
	return &Report{
		Name: "scale", Title: "A6 — scalability",
		Tables: []metrics.Table{table}, Series: []metrics.Series{speed},
		Notes: []string{"phase 1 is the dominant cost and scales near-linearly in |E| (one degree scan per side per round)"},
	}, nil
}

// standardTree builds the deterministic balanced hierarchy most ablations
// share.
func standardTree(opts Options) (*hierarchy.Tree, error) {
	ds, err := opts.dataset()
	if err != nil {
		return nil, err
	}
	g, err := datagen.Generate(ds)
	if err != nil {
		return nil, err
	}
	return hierarchy.Build(g, hierarchy.Options{
		Rounds:   rounds(opts.Quick),
		Bisector: partition.BalancedBisector{},
		Workers:  opts.Workers,
	})
}

// pickSpread returns up to three representative levels (finest, middle,
// coarsest released).
func pickSpread(levels []int) []int {
	if len(levels) <= 3 {
		return levels
	}
	return []int{levels[0], levels[len(levels)/2], levels[len(levels)-1]}
}
