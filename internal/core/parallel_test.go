package core

import (
	"testing"

	"repro/internal/dp"
	"repro/internal/rng"
)

// noisySizes sweeps histogram lengths around every boundary the chunk
// grid cares about: the scalar/blocked ziggurat switch (rng.ZigBlock),
// one chunk (noiseChunk), the absorb rule's threshold (a final fragment
// shorter than ZigBlock joins the last chunk), and multi-chunk sizes.
var noisySizes = []int{
	1, 2, 127, 128, 129, 511, 512, 513,
	noiseChunk - 1, noiseChunk, noiseChunk + 1,
	noiseChunk + rng.ZigBlock - 1, noiseChunk + rng.ZigBlock, noiseChunk + rng.ZigBlock + 1,
	2*noiseChunk - 1, 2 * noiseChunk, 2*noiseChunk + rng.ZigBlock,
	3*noiseChunk + 77,
}

// TestNoisyCellsWorkerBitIdentity is the tentpole contract: the sharded
// noise pass must produce bit-identical output for every worker count,
// across histogram lengths straddling every chunk/block boundary.
func TestNoisyCellsWorkerBitIdentity(t *testing.T) {
	t.Parallel()
	for _, n := range noisySizes {
		counts := make([]int64, n)
		for i := range counts {
			counts[i] = int64(i % 9001)
		}
		want := noisyCells(nil, counts, nil, 3.5, rng.New(42), 1)
		for _, workers := range []int{2, 4, 7} {
			got := noisyCells(nil, counts, nil, 3.5, rng.New(42), workers)
			if len(got) != len(want) {
				t.Fatalf("n=%d workers=%d: len %d != %d", n, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d workers=%d: cell %d differs: %v != %v", n, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestNoisyCellsNarrowPathBitIdentity pins the int32 add path to the
// int64 one: float64(int32(v)) == float64(v) exactly for any value that
// fits, so the narrow read must not change a single bit.
func TestNoisyCellsNarrowPathBitIdentity(t *testing.T) {
	t.Parallel()
	for _, n := range noisySizes {
		counts := make([]int64, n)
		counts32 := make([]int32, n)
		for i := range counts {
			v := int64((i * 2654435761) % (1 << 31))
			counts[i] = v
			counts32[i] = int32(v)
		}
		for _, workers := range []int{1, 4} {
			wide := noisyCells(nil, counts, nil, 2.25, rng.New(7), workers)
			narrow := noisyCells(nil, counts, counts32, 2.25, rng.New(7), workers)
			for i := range wide {
				if wide[i] != narrow[i] {
					t.Fatalf("n=%d workers=%d: cell %d: wide %v != narrow %v", n, workers, i, wide[i], narrow[i])
				}
			}
		}
	}
}

// TestNoiseChunkCount pins the grid's absorb rule as a pure function of
// n — the property that makes chunk boundaries (and therefore streams)
// independent of the worker count.
func TestNoiseChunkCount(t *testing.T) {
	t.Parallel()
	cases := []struct{ n, want int }{
		{1, 1},
		{noiseChunk - 1, 1},
		{noiseChunk, 1},
		{noiseChunk + rng.ZigBlock - 1, 1}, // absorbed
		{noiseChunk + rng.ZigBlock, 2},     // big enough to stand alone
		{2 * noiseChunk, 2},
		{2*noiseChunk + 1, 2}, // absorbed
		{2*noiseChunk + rng.ZigBlock, 3},
	}
	for _, c := range cases {
		if got := noiseChunkCount(c.n); got != c.want {
			t.Errorf("noiseChunkCount(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	// Every chunk except possibly the last must be exactly noiseChunk;
	// the last lives in [1, noiseChunk+ZigBlock).
	for _, n := range noisySizes {
		chunks := noiseChunkCount(n)
		last := n - (chunks-1)*noiseChunk
		if chunks > 1 && (last < rng.ZigBlock || last >= noiseChunk+rng.ZigBlock) {
			t.Errorf("n=%d: last chunk length %d outside [ZigBlock, noiseChunk+ZigBlock)", n, last)
		}
		if chunks == 1 && last != n {
			t.Errorf("n=%d: single chunk of %d", n, last)
		}
	}
}

// TestReleaseCellsWorkersBitIdentity runs the public tree-level release
// across worker counts and checks the full record — counts, sigma,
// metadata — is identical.
func TestReleaseCellsWorkersBitIdentity(t *testing.T) {
	t.Parallel()
	tree := deepTree(t, 6)
	p := dp.Params{Epsilon: 0.5, Delta: 1e-5}
	var want CellRelease
	if err := ReleaseCellsWorkersInto(&want, tree, 0, p, CalibrationClassical, rng.New(5), 1); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 7} {
		var got CellRelease
		if err := ReleaseCellsWorkersInto(&got, tree, 0, p, CalibrationClassical, rng.New(5), workers); err != nil {
			t.Fatal(err)
		}
		if got.Sigma != want.Sigma || got.Level != want.Level || len(got.Counts) != len(want.Counts) {
			t.Fatalf("workers=%d: record header differs", workers)
		}
		for i := range got.Counts {
			if got.Counts[i] != want.Counts[i] {
				t.Fatalf("workers=%d: cell %d: %v != %v", workers, i, got.Counts[i], want.Counts[i])
			}
		}
	}
}

// TestNoisyCellsZeroSigma covers the σ=0 copy path (empty
// dataset edge case) under the worker plumbing: no draws, exact counts,
// any worker count.
func TestNoisyCellsZeroSigma(t *testing.T) {
	t.Parallel()
	counts := []int64{3, 1, 4, 1, 5}
	for _, workers := range []int{1, 4} {
		src := rng.New(1)
		before := *src
		got := noisyCells(nil, counts, nil, 0, src, workers)
		if *src != before {
			t.Fatalf("workers=%d: σ=0 consumed parent stream state", workers)
		}
		for i, c := range counts {
			if got[i] != float64(c) {
				t.Fatalf("workers=%d: cell %d: %v != %d", workers, i, got[i], c)
			}
		}
	}
}
