package bipartite

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodeBinary checks that arbitrary bytes never panic the binary
// decoder and that valid graphs survive a re-encode round trip. Run the
// seed corpus with `go test`; extend with `go test -fuzz=FuzzDecodeBinary`.
func FuzzDecodeBinary(f *testing.F) {
	// Seed with a real encoding and a few corruptions of it.
	g, err := FromEdges(3, 4, []Edge{{0, 0}, {1, 2}, {2, 3}, {0, 3}})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("BPG1"))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	if len(mutated) > 6 {
		mutated[6] ^= 0xff
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := DecodeBinary(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := decoded.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid graph: %v", err)
		}
		var out bytes.Buffer
		if err := EncodeBinary(&out, decoded); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := DecodeBinary(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.NumEdges() != decoded.NumEdges() {
			t.Fatalf("round trip changed edge count %d -> %d", decoded.NumEdges(), again.NumEdges())
		}
	})
}

// FuzzLoadTSV checks the TSV loader never panics on arbitrary text.
func FuzzLoadTSV(f *testing.F) {
	f.Add("0\t1\n1\t0\n")
	f.Add("alice\tinsulin\n")
	f.Add("# comment\n\n3\t4\n")
	f.Add("bad line with no tab\n")
	f.Add("1\t2\t3\n")
	f.Add("-5\t7\n")
	f.Fuzz(func(t *testing.T, data string) {
		g, err := LoadTSV(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("loader accepted an invalid graph: %v", err)
		}
	})
}

// FuzzLoadDBLPXML checks the XML loader never panics on arbitrary input.
func FuzzLoadDBLPXML(f *testing.F) {
	f.Add(`<dblp><article key="a"><author>X</author></article></dblp>`)
	f.Add(`<dblp></dblp>`)
	f.Add(`<dblp><article>`)
	f.Add(`not xml at all`)
	f.Fuzz(func(t *testing.T, data string) {
		g, err := LoadDBLPXML(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("loader accepted an invalid graph: %v", err)
		}
	})
}
