// Command gdpgen generates synthetic association datasets (the DBLP
// stand-in and the intro scenarios) to TSV or the compact binary format.
//
// Usage:
//
//	gdpgen -preset dblp-scaled -seed 1 -format binary -out dblp.bpg
//	gdpgen -preset pharmacy -stats
//	gdpgen -left 1000 -right 2000 -edges 8000 -out custom.tsv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/datagen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gdpgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gdpgen", flag.ContinueOnError)
	var (
		preset = fs.String("preset", "", fmt.Sprintf("dataset preset %v; empty for custom sizes", datagen.Presets()))
		seed   = fs.Uint64("seed", 1, "generator seed")
		out    = fs.String("out", "", "output path; empty writes to stdout")
		format = fs.String("format", "tsv", "output format: tsv or binary")
		stats  = fs.Bool("stats", false, "print dataset statistics to stderr")

		left   = fs.Int("left", 0, "custom: left side size")
		right  = fs.Int("right", 0, "custom: right side size")
		edges  = fs.Int("edges", 0, "custom: edge count")
		zipfL  = fs.Float64("zipf-left", 1.9, "custom: left Zipf exponent")
		zipfR  = fs.Float64("zipf-right", 2.8, "custom: right Zipf exponent")
		labels = fs.Bool("labels", false, "custom: attach synthetic names")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg datagen.Config
	if *preset != "" {
		var err error
		cfg, err = datagen.ByName(*preset, *seed)
		if err != nil {
			return err
		}
	} else {
		cfg = datagen.Config{
			Name: "custom", NumLeft: *left, NumRight: *right, NumEdges: *edges,
			LeftZipf: *zipfL, RightZipf: *zipfR, Seed: *seed, Labels: *labels,
		}
	}
	g, err := datagen.Generate(cfg)
	if err != nil {
		return err
	}
	if *stats {
		fmt.Fprintln(os.Stderr, repro.ComputeStats(g))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	switch *format {
	case "tsv":
		return repro.SaveTSV(w, g)
	case "binary":
		return repro.EncodeBinary(w, g)
	default:
		return fmt.Errorf("unknown format %q (want tsv or binary)", *format)
	}
}
