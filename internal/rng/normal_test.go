package rng

import (
	"math"
	"sort"
	"testing"
)

// stdNormalCDF is Φ, the exact standard normal CDF.
func stdNormalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// ksStatistic returns the one-sample Kolmogorov–Smirnov statistic of
// samples against the normal CDF with the given sigma. samples is sorted
// in place.
func ksStatistic(samples []float64, sigma float64) float64 {
	sort.Float64s(samples)
	n := float64(len(samples))
	var d float64
	for i, x := range samples {
		f := stdNormalCDF(x / sigma)
		if lo := f - float64(i)/n; lo > d {
			d = lo
		}
		if hi := float64(i+1)/n - f; hi > d {
			d = hi
		}
	}
	return d
}

func TestNormalsSigmaDeterministic(t *testing.T) {
	a := make([]float64, 1000)
	b := make([]float64, 1000)
	New(42).NormalsSigma(a, 1.5)
	New(42).NormalsSigma(b, 1.5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("index %d: %v != %v under the same seed", i, a[i], b[i])
		}
	}
}

func TestNormalsSigmaZeroSigmaFillsZeros(t *testing.T) {
	dst := []float64{1, 2, 3, 4}
	New(1).NormalsSigma(dst, 0)
	for i, v := range dst {
		if v != 0 {
			t.Errorf("dst[%d] = %v, want 0 for sigma=0", i, v)
		}
	}
	dst = []float64{5, 6}
	New(1).NormalsSigma(dst, -1)
	for i, v := range dst {
		if v != 0 {
			t.Errorf("dst[%d] = %v, want 0 for negative sigma", i, v)
		}
	}
}

// TestNormalsSigmaMoments pins the first four moments of the ziggurat
// sampler to the normal law.
func TestNormalsSigmaMoments(t *testing.T) {
	const (
		n     = 400_000
		sigma = 2.5
	)
	samples := make([]float64, n)
	New(7).NormalsSigma(samples, sigma)

	var sum float64
	for _, x := range samples {
		sum += x
	}
	mean := sum / n
	var m2, m3, m4 float64
	for _, x := range samples {
		d := x - mean
		m2 += d * d
		m3 += d * d * d
		m4 += d * d * d * d
	}
	m2 /= n
	m3 /= n
	m4 /= n
	sd := math.Sqrt(m2)
	skew := m3 / (sd * sd * sd)
	exKurt := m4/(m2*m2) - 3

	// Standard errors: mean ~ σ/√n, variance ~ σ²√(2/n), skew ~ √(6/n),
	// kurtosis ~ √(24/n); allow 5 standard errors each.
	if tol := 5 * sigma / math.Sqrt(n); math.Abs(mean) > tol {
		t.Errorf("mean = %v, want |mean| < %v", mean, tol)
	}
	if tol := 5 * sigma * sigma * math.Sqrt(2.0/n); math.Abs(m2-sigma*sigma) > tol {
		t.Errorf("variance = %v, want %v ± %v", m2, sigma*sigma, tol)
	}
	if tol := 5 * math.Sqrt(6.0/n); math.Abs(skew) > tol {
		t.Errorf("skewness = %v, want |skew| < %v", skew, tol)
	}
	if tol := 5 * math.Sqrt(24.0/n); math.Abs(exKurt) > tol {
		t.Errorf("excess kurtosis = %v, want |kurt| < %v", exKurt, tol)
	}
}

// TestNormalsSigmaKSAgainstExactCDF checks the full distribution shape:
// the KS distance to the exact normal CDF must be below the α=0.001
// critical value, which a biased layer table or a wrong tail would blow
// past immediately.
func TestNormalsSigmaKSAgainstExactCDF(t *testing.T) {
	const n = 200_000
	samples := make([]float64, n)
	New(11).NormalsSigma(samples, 3)
	d := ksStatistic(samples, 3)
	crit := 1.95 / math.Sqrt(n) // α ≈ 0.001
	if d > crit {
		t.Errorf("KS statistic %v exceeds critical value %v", d, crit)
	}
}

// TestNormalsSigmaCrossValidatesPolar pins the ziggurat and the polar
// Normal to the same law: both KS distances against the exact CDF pass,
// and their sample moments agree within joint statistical tolerance, so
// replacing per-cell Normal draws with one batched fill preserves the
// release's output distribution.
func TestNormalsSigmaCrossValidatesPolar(t *testing.T) {
	const n = 200_000
	zig := make([]float64, n)
	New(23).NormalsSigma(zig, 1)
	polar := make([]float64, n)
	src := New(29)
	for i := range polar {
		polar[i] = src.Normal()
	}

	crit := 1.95 / math.Sqrt(n)
	if d := ksStatistic(zig, 1); d > crit {
		t.Errorf("ziggurat KS statistic %v exceeds %v", d, crit)
	}
	if d := ksStatistic(polar, 1); d > crit {
		t.Errorf("polar KS statistic %v exceeds %v", d, crit)
	}

	moments := func(xs []float64) (mean, variance float64) {
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean = sum / n
		for _, x := range xs {
			variance += (x - mean) * (x - mean)
		}
		variance /= n
		return
	}
	mz, vz := moments(zig)
	mp, vp := moments(polar)
	if tol := 10 / math.Sqrt(n); math.Abs(mz-mp) > tol {
		t.Errorf("means diverge: ziggurat %v vs polar %v", mz, mp)
	}
	if tol := 10 * math.Sqrt(2.0/n); math.Abs(vz-vp) > tol {
		t.Errorf("variances diverge: ziggurat %v vs polar %v", vz, vp)
	}
}

// TestNormalsSigmaTailCoverage verifies the slow path actually produces
// tail mass beyond the last ziggurat layer at the right rate.
func TestNormalsSigmaTailCoverage(t *testing.T) {
	const n = 1_000_000
	samples := make([]float64, n)
	New(31).NormalsSigma(samples, 1)
	var tail int
	for _, x := range samples {
		if math.Abs(x) > zigTailR {
			tail++
		}
	}
	p := 2 * (1 - stdNormalCDF(zigTailR))
	want := p * n
	if float64(tail) < want/2 || float64(tail) > want*2 {
		t.Errorf("tail count %d, want about %.0f (|x| > %v)", tail, want, zigTailR)
	}
}

// TestNormalsSigmaScales checks the sigma multiplier is applied.
func TestNormalsSigmaScales(t *testing.T) {
	a := make([]float64, 4096)
	b := make([]float64, 4096)
	New(5).NormalsSigma(a, 1)
	New(5).NormalsSigma(b, 10)
	for i := range a {
		if b[i] != 10*a[i] {
			t.Fatalf("index %d: %v != 10 * %v", i, b[i], a[i])
		}
	}
}

func BenchmarkNormalsSigma(b *testing.B) {
	src := New(3)
	dst := make([]float64, 4096)
	b.SetBytes(int64(len(dst)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.NormalsSigma(dst, 1.5)
	}
}
