package experiments

import (
	"encoding/json"
	"math"
	"testing"
)

// TestFigure1WorkersBitIdentical is the golden test for the trial
// fan-out: the full Figure 1 result — measured series, expected series,
// sensitivities, and the rendered RER table — must be byte-identical
// between a serial run and a four-lane run.
func TestFigure1WorkersBitIdentical(t *testing.T) {
	t.Parallel()
	run := func(workers int) *Figure1Result {
		cfg, err := DefaultFigure1Config(Options{Quick: true, Seed: 9, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Trials = 5
		res, err := RunFigure1(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(4)

	if got, want := parallel.Table.Markdown(), serial.Table.Markdown(); got != want {
		t.Fatalf("RER tables differ:\nworkers=4:\n%s\nworkers=1:\n%s", got, want)
	}
	for li := range serial.Series {
		for ei := range serial.Series[li].Y {
			if math.Float64bits(serial.Series[li].Y[ei]) != math.Float64bits(parallel.Series[li].Y[ei]) {
				t.Fatalf("series %s point %d: %v vs %v",
					serial.Series[li].Name, ei, serial.Series[li].Y[ei], parallel.Series[li].Y[ei])
			}
			if math.Float64bits(serial.Expected[li].Y[ei]) != math.Float64bits(parallel.Expected[li].Y[ei]) {
				t.Fatalf("expected series %s point %d differs", serial.Series[li].Name, ei)
			}
		}
	}
	for li := range serial.Sensitivities {
		if math.Float64bits(serial.Sensitivities[li]) != math.Float64bits(parallel.Sensitivities[li]) {
			t.Fatalf("sensitivity %d: %v vs %v", li, serial.Sensitivities[li], parallel.Sensitivities[li])
		}
	}
}

// TestParallelTrialExperimentsBitIdentical pins every experiment that
// fans trials out — Figure 1, the budget-split ablation, consistency,
// and top-k — to its serial output: the whole JSON-encoded report must
// match byte for byte between Workers 1 and 4.
func TestParallelTrialExperimentsBitIdentical(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"figure1", "budget-split", "consistency", "topk"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			encode := func(workers int) []byte {
				report, err := Run(name, Options{Quick: true, Seed: 5, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				blob, err := json.Marshal(report)
				if err != nil {
					t.Fatal(err)
				}
				return blob
			}
			serial := encode(1)
			parallel := encode(4)
			if string(serial) != string(parallel) {
				t.Errorf("report differs between workers=1 and workers=4\nserial:   %.200s\nparallel: %.200s", serial, parallel)
			}
		})
	}
}

// TestRunTrialsCoversAllTrialsAndReportsLowestError checks the fan-out
// helper's contract directly.
func TestRunTrialsCoversAllTrialsAndReportsLowestError(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{0, 1, 3, 16} {
		seen := make([]int, 23)
		err := runTrials(workers, len(seen), func(worker, trial int) error {
			seen[trial]++
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for trial, n := range seen {
			if n != 1 {
				t.Fatalf("workers=%d: trial %d ran %d times", workers, trial, n)
			}
		}
	}

	boom := func(trial int) error {
		if trial == 7 || trial == 3 {
			return errTrial(trial)
		}
		return nil
	}
	for _, workers := range []int{1, 4} {
		err := runTrials(workers, 10, func(_, trial int) error { return boom(trial) })
		if err == nil || err.Error() != errTrial(3).Error() {
			t.Fatalf("workers=%d: got %v, want the lowest-index failure", workers, err)
		}
	}
}

type errTrial int

func (e errTrial) Error() string { return "trial failed: " + string(rune('0'+int(e))) }

// TestFigure1SweepWorkersBitIdentical pins the intra-trial εg × level
// sweep fan-out: with a single trial every lane lands on the sweep, and
// the result must still be byte-identical to the serial run.
func TestFigure1SweepWorkersBitIdentical(t *testing.T) {
	t.Parallel()
	run := func(workers int) []byte {
		cfg, err := DefaultFigure1Config(Options{Quick: true, Seed: 11, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Trials = 1
		res, err := RunFigure1(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res.Config = Figure1Config{} // compare results, not the worker knob
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	serial := run(1)
	for _, workers := range []int{4, 7} {
		if got := run(workers); string(got) != string(serial) {
			t.Fatalf("workers=%d: sweep result differs from serial", workers)
		}
	}
}
