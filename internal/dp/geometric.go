package dp

import (
	"math"

	"repro/internal/rng"
)

// Geometric is the geometric mechanism — the discrete analogue of the
// Laplace mechanism. For integer-valued queries with L1 sensitivity Δ1 it
// adds two-sided geometric noise with decay α = exp(-ε/Δ1) and guarantees
// pure ε-DP while keeping answers integral, which matters when releasing
// counts that downstream consumers validate as integers.
type Geometric struct {
	alpha float64
	src   *rng.Source
}

// NewGeometric returns a geometric mechanism for the given ε and L1
// sensitivity.
func NewGeometric(epsilon, l1Sensitivity float64, src *rng.Source) (*Geometric, error) {
	if err := (Params{Epsilon: epsilon}).Validate(); err != nil {
		return nil, err
	}
	if err := validateSensitivity(l1Sensitivity); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, ErrNilSource
	}
	return &Geometric{alpha: math.Exp(-epsilon / l1Sensitivity), src: src}, nil
}

// PerturbInt returns value + two-sided geometric noise.
func (m *Geometric) PerturbInt(value int64) int64 {
	return value + m.src.TwoSidedGeometric(m.alpha)
}

// Perturb adapts PerturbInt to the Additive interface by rounding the
// input to the nearest integer first.
func (m *Geometric) Perturb(value float64) float64 {
	return float64(m.PerturbInt(int64(math.Round(value))))
}

// Alpha returns the decay parameter α = exp(-ε/Δ1).
func (m *Geometric) Alpha() float64 { return m.alpha }

// Scale returns the standard deviation of the noise,
// √(2α)/(1−α), for comparability with the continuous mechanisms.
func (m *Geometric) Scale() float64 {
	return math.Sqrt(2*m.alpha) / (1 - m.alpha)
}

// ExpectedAbsError returns E|noise| = 2α/(1−α²).
func (m *Geometric) ExpectedAbsError() float64 {
	return 2 * m.alpha / (1 - m.alpha*m.alpha)
}

var _ Additive = (*Geometric)(nil)
