package metrics

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestRER(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name      string
		perturbed float64
		truth     float64
		want      float64
	}{
		{name: "exact", perturbed: 100, truth: 100, want: 0},
		{name: "over", perturbed: 110, truth: 100, want: 0.1},
		{name: "under", perturbed: 65, truth: 100, want: 0.35},
		{name: "negative truth", perturbed: -90, truth: -100, want: 0.1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if got := RER(tc.perturbed, tc.truth); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("RER = %v, want %v", got, tc.want)
			}
		})
	}
	if !math.IsNaN(RER(5, 0)) {
		t.Error("RER with zero truth should be NaN")
	}
}

func TestAbsError(t *testing.T) {
	t.Parallel()
	if AbsError(3, 5) != 2 || AbsError(5, 3) != 2 {
		t.Error("AbsError wrong")
	}
}

func TestSummarize(t *testing.T) {
	t.Parallel()
	s, err := Summarize([]float64{4, 1, 3, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	wantStd := math.Sqrt(2) // population std of 1..5
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Errorf("std = %v, want %v", s.Std, wantStd)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty error = %v", err)
	}
}

func TestQuantile(t *testing.T) {
	t.Parallel()
	vals := []float64{1, 2, 3, 4}
	q, err := Quantile(vals, 0)
	if err != nil || q != 1 {
		t.Errorf("q0 = %v, %v", q, err)
	}
	q, err = Quantile(vals, 1)
	if err != nil || q != 4 {
		t.Errorf("q1 = %v, %v", q, err)
	}
	q, err = Quantile(vals, 0.5)
	if err != nil || q != 2.5 {
		t.Errorf("median = %v, %v", q, err)
	}
	if _, err := Quantile(vals, 1.5); err == nil {
		t.Error("q=1.5 accepted")
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Error("empty accepted")
	}
	// Single element.
	q, err = Quantile([]float64{7}, 0.3)
	if err != nil || q != 7 {
		t.Errorf("single-element quantile = %v, %v", q, err)
	}
}

func TestSeriesValidate(t *testing.T) {
	t.Parallel()
	ok := Series{Name: "a", X: []float64{1}, Y: []float64{2}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid series rejected: %v", err)
	}
	bad := Series{Name: "b", X: []float64{1, 2}, Y: []float64{1}}
	if err := bad.Validate(); err == nil {
		t.Error("mismatched series accepted")
	}
	empty := Series{Name: "c"}
	if err := empty.Validate(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty series error = %v", err)
	}
}

func TestTableMarkdown(t *testing.T) {
	t.Parallel()
	tab := Table{Title: "Demo", Headers: []string{"level", "rer"}}
	tab.AddRow(7, 0.35)
	tab.AddRow("I9,1", 0.002)
	tab.AddRow(int64(42), 1e-9)
	md := tab.Markdown()
	for _, want := range []string{"### Demo", "| level | rer |", "| --- | --- |", "| 7 | 0.3500 |", "I9,1", "1.000e-09"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q in:\n%s", want, md)
		}
	}
}

func TestTableCSV(t *testing.T) {
	t.Parallel()
	tab := Table{Headers: []string{"a", "b"}}
	tab.AddRow("x,y", `quote"d`)
	tab.AddRow(1, 2)
	csv := tab.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Errorf("comma cell not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"quote""d"`) {
		t.Errorf("quote cell not escaped: %s", csv)
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Errorf("csv has %d lines, want 3", len(lines))
	}
}

func TestRenderASCIIBasic(t *testing.T) {
	t.Parallel()
	series := []Series{
		{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
		{Name: "down", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
	}
	out, err := RenderASCII(series, PlotOptions{Title: "T", Width: 30, Height: 10, XLabel: "eps", YLabel: "rer"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"T", "o=up", "x=down", "x: eps   y: rer"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Error("plot missing glyphs")
	}
}

func TestRenderASCIILogY(t *testing.T) {
	t.Parallel()
	series := []Series{{Name: "s", X: []float64{1, 2, 3}, Y: []float64{0.001, 0.1, 10}}}
	out, err := RenderASCII(series, PlotOptions{LogY: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "log10") {
		t.Errorf("log plot missing annotation:\n%s", out)
	}
}

func TestRenderASCIIErrors(t *testing.T) {
	t.Parallel()
	if _, err := RenderASCII(nil, PlotOptions{}); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty input error = %v", err)
	}
	bad := []Series{{Name: "b", X: []float64{1}, Y: []float64{1, 2}}}
	if _, err := RenderASCII(bad, PlotOptions{}); err == nil {
		t.Error("mismatched series accepted")
	}
	// All-NaN after log transform.
	nan := []Series{{Name: "n", X: []float64{1}, Y: []float64{-5}}}
	if _, err := RenderASCII(nan, PlotOptions{LogY: true}); err == nil {
		t.Error("no finite points accepted")
	}
}

func TestRenderASCIIConstantSeries(t *testing.T) {
	t.Parallel()
	// Degenerate ranges (single point) must not divide by zero.
	series := []Series{{Name: "pt", X: []float64{5}, Y: []float64{5}}}
	if _, err := RenderASCII(series, PlotOptions{}); err != nil {
		t.Fatalf("constant series failed: %v", err)
	}
}
