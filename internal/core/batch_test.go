package core

import (
	"encoding/json"
	"math"
	"sort"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/dp"
	"repro/internal/hierarchy"
	"repro/internal/partition"
	"repro/internal/rng"
)

// deepTree builds a hierarchy with many cells at its finest level so the
// batched noise path produces a large sample per release.
func deepTree(t testing.TB, rounds int) *hierarchy.Tree {
	t.Helper()
	r := rng.New(91)
	b := bipartite.NewBuilder(0)
	b.SetNumLeft(256)
	b.SetNumRight(256)
	for i := 0; i < 5000; i++ {
		b.AddEdge(int32(r.Intn(256)), int32(r.Intn(256)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tree, err := hierarchy.Build(g, hierarchy.Options{Rounds: rounds, Bisector: partition.BalancedBisector{}})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestReleaseCellsNoiseDistribution pins the batched release's output
// statistics to the calibrated Gaussian: across all cells of a fine
// level, the residuals (noisy − exact)/σ must look standard normal by
// moments and KS distance — the guarantee that swapping the scalar polar
// sampler for the batched ziggurat preserved the release distribution.
func TestReleaseCellsNoiseDistribution(t *testing.T) {
	t.Parallel()
	tree := deepTree(t, 6) // 4^6 = 4096 cells at level 0
	p := dp.Params{Epsilon: 0.5, Delta: 1e-5}
	src := rng.New(17)

	var residuals []float64
	var sigma float64
	const trials = 16
	for trial := 0; trial < trials; trial++ {
		rel, err := ReleaseCells(tree, 0, p, CalibrationClassical, src)
		if err != nil {
			t.Fatal(err)
		}
		sigma = rel.Sigma
		if sigma <= 0 {
			t.Fatalf("sigma = %v, want > 0", sigma)
		}
		exact, err := tree.LevelCellCounts(0)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range rel.Counts {
			residuals = append(residuals, (v-float64(exact[i]))/sigma)
		}
	}

	n := float64(len(residuals))
	var sum float64
	for _, r := range residuals {
		sum += r
	}
	mean := sum / n
	var m2 float64
	for _, r := range residuals {
		m2 += (r - mean) * (r - mean)
	}
	m2 /= n
	if tol := 5 / math.Sqrt(n); math.Abs(mean) > tol {
		t.Errorf("residual mean = %v, want |mean| < %v", mean, tol)
	}
	if tol := 5 * math.Sqrt(2/n); math.Abs(m2-1) > tol {
		t.Errorf("residual variance = %v, want 1 ± %v", m2, tol)
	}

	sort.Float64s(residuals)
	var d float64
	for i, x := range residuals {
		f := 0.5 * (1 + math.Erf(x/math.Sqrt2))
		if lo := f - float64(i)/n; lo > d {
			d = lo
		}
		if hi := float64(i+1)/n - f; hi > d {
			d = hi
		}
	}
	if crit := 1.95 / math.Sqrt(n); d > crit {
		t.Errorf("KS statistic %v exceeds critical value %v", d, crit)
	}
}

// TestReleaseCellsIntoReusesBuffer checks the engine contract: a dst
// passed back in keeps its Counts array when capacity suffices, and the
// release equals a fresh ReleaseCells drawn from an identical stream.
func TestReleaseCellsIntoReusesBuffer(t *testing.T) {
	t.Parallel()
	tree := deepTree(t, 4)
	p := dp.Params{Epsilon: 0.5, Delta: 1e-5}

	var reused CellRelease
	if err := ReleaseCellsInto(&reused, tree, 0, p, CalibrationClassical, rng.New(3)); err != nil {
		t.Fatal(err)
	}
	first := &reused.Counts[0]
	if err := ReleaseCellsInto(&reused, tree, 1, p, CalibrationClassical, rng.New(4)); err != nil {
		t.Fatal(err)
	}
	if &reused.Counts[0] != first {
		t.Error("second ReleaseCellsInto reallocated despite sufficient capacity")
	}

	fresh, err := ReleaseCells(tree, 1, p, CalibrationClassical, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Counts) != len(reused.Counts) {
		t.Fatalf("lengths differ: %d vs %d", len(fresh.Counts), len(reused.Counts))
	}
	for i := range fresh.Counts {
		if fresh.Counts[i] != reused.Counts[i] {
			t.Fatalf("cell %d: fresh %v vs reused %v", i, fresh.Counts[i], reused.Counts[i])
		}
	}
	if fresh.Sigma != reused.Sigma || fresh.Sensitivity != reused.Sensitivity ||
		fresh.ModelName != reused.ModelName || fresh.CalibName != reused.CalibName {
		t.Errorf("metadata differs: fresh %+v vs reused %+v", fresh, reused)
	}
}

// TestCellReleaseJSONRoundTrip pins the serialized provenance: a cell
// release must carry its model and calibration names through JSON the way
// LevelRelease does.
func TestCellReleaseJSONRoundTrip(t *testing.T) {
	t.Parallel()
	tree := deepTree(t, 3)
	p := dp.Params{Epsilon: 0.7, Delta: 1e-6}
	rel, err := ReleaseCells(tree, 1, p, CalibrationAnalytic, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if rel.ModelName != "cells" || rel.CalibName != "analytic" {
		t.Fatalf("provenance not set: %q / %q", rel.ModelName, rel.CalibName)
	}
	blob, err := json.Marshal(rel)
	if err != nil {
		t.Fatal(err)
	}
	var got CellRelease
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	if got.ModelName != "cells" {
		t.Errorf("model = %q after round trip, want %q", got.ModelName, "cells")
	}
	if got.CalibName != "analytic" {
		t.Errorf("calibration = %q after round trip, want %q", got.CalibName, "analytic")
	}
	if got.Level != rel.Level || got.Epsilon != rel.Epsilon || got.Delta != rel.Delta ||
		got.Sensitivity != rel.Sensitivity || got.Sigma != rel.Sigma || got.SideGroups != rel.SideGroups {
		t.Errorf("scalar fields lost: %+v vs %+v", got, rel)
	}
	for i := range rel.Counts {
		if got.Counts[i] != rel.Counts[i] {
			t.Fatalf("cell %d lost precision: %v vs %v", i, got.Counts[i], rel.Counts[i])
		}
	}

	relS, err := ReleaseCellsSigma(tree, 1, 2.5, p, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if relS.ModelName != "cells" || relS.CalibName != "rdp" {
		t.Errorf("sigma-path provenance: %q / %q, want cells / rdp", relS.ModelName, relS.CalibName)
	}
}

// TestReleaseCellsSigmaIntoMatchesFresh mirrors the reuse test for the
// externally calibrated path.
func TestReleaseCellsSigmaIntoMatchesFresh(t *testing.T) {
	t.Parallel()
	tree := deepTree(t, 4)
	p := dp.Params{Epsilon: 0.5, Delta: 1e-5}
	var reused CellRelease
	if err := ReleaseCellsSigmaInto(&reused, tree, 0, 3.5, p, rng.New(12)); err != nil {
		t.Fatal(err)
	}
	fresh, err := ReleaseCellsSigma(tree, 0, 3.5, p, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh.Counts {
		if fresh.Counts[i] != reused.Counts[i] {
			t.Fatalf("cell %d: fresh %v vs reused %v", i, fresh.Counts[i], reused.Counts[i])
		}
	}
}
