package bipartite

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

// collectEdges drains a source (after a Reset) and returns its edges.
func collectEdges(t *testing.T, src EdgeSource) []Edge {
	t.Helper()
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	edges, err := ReadAllEdges(src)
	if err != nil {
		t.Fatal(err)
	}
	return edges
}

// sortEdges orders edges left-major for set comparison.
func sortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Left != edges[j].Left {
			return edges[i].Left < edges[j].Left
		}
		return edges[i].Right < edges[j].Right
	})
}

func testGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdges(5, 7, []Edge{{0, 0}, {0, 6}, {1, 2}, {2, 3}, {2, 5}, {4, 1}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestGraphSourceStreamsAllEdges: the graph cursor yields exactly the
// graph's edges, in left-major order, across chunk sizes that do and do
// not divide the edge count, and replays identically after Reset.
func TestGraphSourceStreamsAllEdges(t *testing.T) {
	g := testGraph(t)
	src := NewGraphSource(g)
	for _, chunk := range []int{1, 2, 5, 100} {
		if err := src.Reset(); err != nil {
			t.Fatal(err)
		}
		var got []Edge
		buf := make([]Edge, chunk)
		for {
			n, err := src.NextChunk(buf)
			if err != nil {
				break
			}
			got = append(got, buf[:n]...)
		}
		want := g.Edges()
		if len(got) != len(want) {
			t.Fatalf("chunk %d: got %d edges, want %d", chunk, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("chunk %d: edge %d = %v, want %v", chunk, i, got[i], want[i])
			}
		}
	}
	nl, nr, known := src.Sides()
	if !known || int(nl) != g.NumLeft() || int(nr) != g.NumRight() {
		t.Fatalf("Sides = %d,%d,%v, want %d,%d,true", nl, nr, known, g.NumLeft(), g.NumRight())
	}
}

// TestSliceSourceRoundTrip: cursor semantics over a shared slice.
func TestSliceSourceRoundTrip(t *testing.T) {
	edges := []Edge{{3, 1}, {0, 2}, {3, 0}}
	src := NewSliceSource(10, 10, edges)
	got := collectEdges(t, src)
	if len(got) != len(edges) {
		t.Fatalf("got %d edges, want %d", len(got), len(edges))
	}
	for i := range got {
		if got[i] != edges[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], edges[i])
		}
	}
	again := collectEdges(t, src)
	if len(again) != len(edges) {
		t.Fatalf("replay after Reset lost edges: %d vs %d", len(again), len(edges))
	}
	nl, nr, known := src.Sides()
	if !known || nl != 10 || nr != 10 {
		t.Fatalf("Sides = %d,%d,%v", nl, nr, known)
	}
}

// TestBinaryEdgeSourceMatchesDecode: the delta-walking source yields the
// same edge set DecodeBinary builds, for graphs with and without names.
func TestBinaryEdgeSourceMatchesDecode(t *testing.T) {
	plain := testGraph(t)

	nb := NewBuilder(0)
	nb.AddAssociation("alice", "insulin")
	nb.AddAssociation("bob", "insulin")
	nb.AddAssociation("alice", "statin")
	named, err := nb.Build()
	if err != nil {
		t.Fatal(err)
	}

	for name, g := range map[string]*Graph{"plain": plain, "named": named} {
		var buf bytes.Buffer
		if err := EncodeBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		src, err := NewBinaryEdgeSource(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := collectEdges(t, src)
		want := g.Edges()
		sortEdges(got)
		if len(got) != len(want) {
			t.Fatalf("%s: got %d edges, want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: edge %d = %v, want %v", name, i, got[i], want[i])
			}
		}
		nl, nr, known := src.Sides()
		if !known || int(nl) != g.NumLeft() || int(nr) != g.NumRight() {
			t.Fatalf("%s: Sides = %d,%d,%v, want %d,%d", name, nl, nr, known, g.NumLeft(), g.NumRight())
		}
		// Replay must be identical.
		again := collectEdges(t, src)
		sortEdges(again)
		for i := range again {
			if again[i] != got[i] {
				t.Fatalf("%s: replay diverged at %d", name, i)
			}
		}
	}
}

// TestBinaryEdgeSourceRejectsCorruption: truncated streams error instead
// of yielding phantom edges.
func TestBinaryEdgeSourceRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, testGraph(t)); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	if _, err := NewBinaryEdgeSource(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("want error for bad magic")
	}
	trunc := valid[:len(valid)-2]
	src, err := NewBinaryEdgeSource(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAllEdges(src); err == nil {
		t.Fatal("want error for truncated edge section")
	}
}

// TestTSVEdgeSourceMatchesLoadTSV: for both id-mode and name-mode files
// (with and without headers), streaming + dedup-free replay agrees with
// LoadTSV's graph.
func TestTSVEdgeSourceMatchesLoadTSV(t *testing.T) {
	cases := map[string]string{
		"ids-sniffed":    "0\t1\n2\t3\n1\t1\n",
		"ids-header":     tsvHeaderPrefix + tsvModeIDs + "\n0\t1\n2\t3\n",
		"names-sniffed":  "alice\tinsulin\nbob\tinsulin\nalice\tstatin\n",
		"names-header":   tsvHeaderPrefix + tsvModeNames + "\n10\t7\n3\t7\n",
		"comments-blank": "# leading comment\n\n0\t1\n# mid comment\n2\t0\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			g, err := LoadTSV(strings.NewReader(in))
			if err != nil {
				t.Fatal(err)
			}
			src, err := NewTSVEdgeSource(strings.NewReader(in))
			if err != nil {
				t.Fatal(err)
			}
			got := collectEdges(t, src)
			sortEdges(got)
			want := g.Edges()
			if len(got) != len(want) {
				t.Fatalf("got %d edges, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("edge %d = %v, want %v", i, got[i], want[i])
				}
			}
			// After a full pass, sides must agree with the loaded graph.
			nl, nr, known := src.Sides()
			if !known || int(nl) != g.NumLeft() || int(nr) != g.NumRight() {
				t.Fatalf("Sides = %d,%d,%v, want %d,%d,true", nl, nr, known, g.NumLeft(), g.NumRight())
			}
			// Replay: intern tables persist, ids stay stable.
			again := collectEdges(t, src)
			sortEdges(again)
			for i := range again {
				if again[i] != got[i] {
					t.Fatalf("replay diverged at edge %d", i)
				}
			}
		})
	}
}

// TestTSVEdgeSourceErrors: malformed lines and forced-id violations carry
// line numbers.
func TestTSVEdgeSourceErrors(t *testing.T) {
	if _, err := NewTSVEdgeSource(strings.NewReader("a\tb\tc\n")); err == nil {
		t.Fatal("want construction error for 3-field line (sniff pass)")
	}
	src, err := NewTSVEdgeSource(strings.NewReader(tsvHeaderPrefix + tsvModeIDs + "\n1\t2\nalice\t2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAllEdges(src); err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want a line-3 error for non-numeric field under ids header, got %v", err)
	}
}

// FuzzTSVEdgeSource cross-checks the chunked reader against LoadTSV on
// arbitrary text: both must accept or both reject, and on acceptance the
// deduplicated streamed edges must equal the loaded graph's (LoadTSV's
// Builder deduplicates; the source contract says streams carry no
// duplicates, so files with repeated lines are deduped here before the
// comparison).
func FuzzTSVEdgeSource(f *testing.F) {
	f.Add("0\t1\n1\t0\n")
	f.Add("alice\tinsulin\n")
	f.Add("# comment\n\n3\t4\n")
	f.Add(tsvHeaderPrefix + tsvModeNames + "\n1\t2\n")
	f.Add(tsvHeaderPrefix + tsvModeIDs + "\n1\t2\n")
	f.Add("01\t1\n")
	f.Add("+5\t7\n")
	f.Add("bad line\n")
	f.Fuzz(func(t *testing.T, data string) {
		g, loadErr := LoadTSV(strings.NewReader(data))
		src, srcErr := NewTSVEdgeSource(strings.NewReader(data))
		var edges []Edge
		if srcErr == nil {
			if err := src.Reset(); err != nil {
				t.Fatal(err)
			}
			edges, srcErr = ReadAllEdges(src)
		}
		if (loadErr == nil) != (srcErr == nil) {
			t.Fatalf("loader/source disagree: LoadTSV err=%v, source err=%v", loadErr, srcErr)
		}
		if loadErr != nil {
			return
		}
		seen := make(map[Edge]bool, len(edges))
		deduped := edges[:0]
		for _, e := range edges {
			if !seen[e] {
				seen[e] = true
				deduped = append(deduped, e)
			}
		}
		sortEdges(deduped)
		want := g.Edges()
		if len(deduped) != len(want) {
			t.Fatalf("streamed %d distinct edges, loaded graph has %d", len(deduped), len(want))
		}
		for i := range deduped {
			if deduped[i] != want[i] {
				t.Fatalf("edge %d: streamed %v, loaded %v", i, deduped[i], want[i])
			}
		}
	})
}
