// Package release runs the paper's end-to-end two-phase disclosure
// pipeline:
//
//	Phase 1 — specialization: build the multi-level group hierarchy with
//	exponential-mechanism cuts (internal/partition, internal/hierarchy).
//	Phase 2 — noise injection: release εg-group-DP answers per level
//	(internal/core), with Gaussian noise calibrated to each level's group
//	sensitivity.
//
// A Pipeline is configured once with functional options and can be run on
// any graph. The Release artifact carries the per-level noisy answers, the
// hierarchy's level profiles, and a complete privacy-accounting audit
// trail; ViewFor models the paper's access tiers (a privilege-i user sees
// the release protected at group level i).
package release

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/accountant"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/hierarchy"
	"repro/internal/partition"
	"repro/internal/rng"
)

// Mode selects how the global εg budget maps to the per-level releases.
type Mode int

// Budget modes.
//
// ModePerLevel is the paper's reading: every information level consumes
// the full (εg, δ) and releases to different privilege tiers are accounted
// in parallel (each data user receives exactly one level).
//
// ModeComposedBasic splits (εg, δ) uniformly across all queries under
// basic sequential composition, for the setting where one user may obtain
// every level.
//
// ModeComposedAdvanced does the same under the advanced composition
// theorem, which affords each query a larger share for many levels
// (ablation A1).
//
// ModeComposedRDP composes through a Rényi-DP accountant: every query's
// Gaussian noise is scaled to its own sensitivity so each consumes an
// equal RDP share, and the total converts to (εg, δ). Tightest of the
// composed modes for Gaussian-only workloads; requires δ > 0 and the
// Gaussian mechanism.
const (
	ModePerLevel Mode = iota + 1
	ModeComposedBasic
	ModeComposedAdvanced
	ModeComposedRDP
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModePerLevel:
		return "per-level"
	case ModeComposedBasic:
		return "composed-basic"
	case ModeComposedAdvanced:
		return "composed-advanced"
	case ModeComposedRDP:
		return "composed-rdp"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Valid reports whether m is a known mode.
func (m Mode) Valid() bool {
	switch m {
	case ModePerLevel, ModeComposedBasic, ModeComposedAdvanced, ModeComposedRDP:
		return true
	default:
		return false
	}
}

// Errors returned by the pipeline.
var (
	ErrNilGraph  = errors.New("release: nil graph")
	ErrNilSource = errors.New("release: nil edge source")
	ErrBadOption = errors.New("release: invalid option")
)

type config struct {
	budget         dp.Params
	rounds         int
	levels         []int
	mode           Mode
	model          core.GroupModel
	calib          core.Calibration
	mechanism      core.NoiseMechanism
	mechSet        bool
	strategy       *Strategy
	phase1Epsilon  float64
	bisector       partition.Bisector
	builder        *hierarchy.Builder
	order          hierarchy.Order
	cellHistograms bool
	grouping       bool
	consistency    bool
	seed           uint64
	workers        int
}

// Option configures a Pipeline.
type Option func(*config) error

// WithRounds sets the number of specialization rounds (hierarchy depth).
// Default 9, the paper's DBLP setup.
func WithRounds(n int) Option {
	return func(c *config) error {
		if n < 1 || n > hierarchy.MaxRounds {
			return fmt.Errorf("%w: rounds %d outside [1,%d]", ErrBadOption, n, hierarchy.MaxRounds)
		}
		c.rounds = n
		return nil
	}
}

// WithLevels sets the information levels to release. Default 0..rounds−2
// (the paper's I9,0..I9,7 for nine rounds).
func WithLevels(levels []int) Option {
	return func(c *config) error {
		if len(levels) == 0 {
			return fmt.Errorf("%w: empty level list", ErrBadOption)
		}
		c.levels = append([]int(nil), levels...)
		return nil
	}
}

// WithMode sets the budget mode. Default ModePerLevel.
func WithMode(m Mode) Option {
	return func(c *config) error {
		if !m.Valid() {
			return fmt.Errorf("%w: mode %d", ErrBadOption, int(m))
		}
		c.mode = m
		return nil
	}
}

// WithModel sets the group-adjacency model. Default core.ModelCells.
func WithModel(m core.GroupModel) Option {
	return func(c *config) error {
		if !m.Valid() {
			return fmt.Errorf("%w: model %d", ErrBadOption, int(m))
		}
		c.model = m
		return nil
	}
}

// WithCalibration sets the Gaussian calibration. Default
// core.CalibrationClassical (the paper's).
func WithCalibration(cal core.Calibration) Option {
	return func(c *config) error {
		if !cal.Valid() {
			return fmt.Errorf("%w: calibration %d", ErrBadOption, int(cal))
		}
		c.calib = cal
		return nil
	}
}

// WithMechanism overrides the strategy's count-release noise mechanism
// (ablation A2). Default: whatever the active strategy composes —
// core.MechGaussian for the paper's pipeline. The cell-histogram
// mechanism always follows the strategy's noise stage.
func WithMechanism(m core.NoiseMechanism) Option {
	return func(c *config) error {
		if !m.Valid() {
			return fmt.Errorf("%w: mechanism %d", ErrBadOption, int(m))
		}
		c.mechanism = m
		c.mechSet = true
		return nil
	}
}

// WithStrategy selects a registered release strategy by name — the
// composed partitioner × noise × consistency plan the pipeline runs.
// The empty name selects the default (the paper's quadtree + Gaussian
// pipeline); unknown names fail here with ErrUnknownStrategy, never as
// a late failure inside a run.
func WithStrategy(name string) Option {
	return func(c *config) error {
		s, err := Strategies.Resolve(name)
		if err != nil {
			return err
		}
		c.strategy = s
		return nil
	}
}

// WithPhase1Epsilon sets the per-cut exponential-mechanism budget for
// Phase 1. Zero (the default) uses the non-private balanced bisector,
// which models a curator who considers the grouping public.
func WithPhase1Epsilon(eps float64) Option {
	return func(c *config) error {
		if eps < 0 {
			return fmt.Errorf("%w: negative phase-1 epsilon %v", ErrBadOption, eps)
		}
		c.phase1Epsilon = eps
		return nil
	}
}

// WithBisector overrides the Phase-1 bisector entirely (ablation A3).
// Takes precedence over WithPhase1Epsilon.
func WithBisector(b partition.Bisector) Option {
	return func(c *config) error {
		if b == nil {
			return fmt.Errorf("%w: nil bisector", ErrBadOption)
		}
		c.bisector = b
		return nil
	}
}

// WithBuilder runs Phase 1 through a caller-provided hierarchy.Builder,
// whose scratch buffers and worker pool then persist across Run calls
// (and across pipelines sharing the Builder). The caller owns the
// Builder's lifecycle — the pipeline never closes it — and must not use
// one Builder from concurrent Runs. Without this option each Run builds
// through a throwaway Builder, which is correct but pays per-build
// allocation; repeated-trial experiments pass one Builder per worker.
func WithBuilder(b *hierarchy.Builder) Option {
	return func(c *config) error {
		if b == nil {
			return fmt.Errorf("%w: nil builder", ErrBadOption)
		}
		c.builder = b
		return nil
	}
}

// WithOrder sets the node ordering used before each cut.
func WithOrder(o hierarchy.Order) Option {
	return func(c *config) error {
		if !o.Valid() {
			return fmt.Errorf("%w: order %d", ErrBadOption, int(o))
		}
		c.order = o
		return nil
	}
}

// WithCellHistograms also releases each level's noisy cell histogram (the
// paper's "noise injected into the subgraphs induced by each group
// level"), doubling the per-level query count.
func WithCellHistograms(enabled bool) Option {
	return func(c *config) error {
		c.cellHistograms = enabled
		return nil
	}
}

// WithConsistency post-processes the released cell histograms so that
// every parent cell equals the sum of its children (hierarchical
// constrained inference). Post-processing of DP outputs is free — no
// extra budget — and strictly reduces expected error. Requires
// WithCellHistograms and contiguous levels.
func WithConsistency(enabled bool) Option {
	return func(c *config) error {
		c.consistency = enabled
		return nil
	}
}

// WithGrouping publishes the Phase-1 group structure (node → group per
// level) in the artifact, which data users need to interpret per-group
// histograms. The grouping was built under the Phase-1 budget, so
// publishing it consumes nothing further.
func WithGrouping(enabled bool) Option {
	return func(c *config) error {
		c.grouping = enabled
		return nil
	}
}

// WithSeed fixes the random seed. Default 1. Use rng.NewRandomSeed for
// production releases.
func WithSeed(seed uint64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithWorkers parallelizes Phase-1 range preparation across n goroutines.
// The result is identical for any worker count.
func WithWorkers(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("%w: negative workers %d", ErrBadOption, n)
		}
		c.workers = n
		return nil
	}
}

// Pipeline is a configured two-phase discloser.
type Pipeline struct {
	cfg config
}

// New validates the options and returns a Pipeline. budget is the global
// (εg, δ) group-privacy budget.
func New(budget dp.Params, opts ...Option) (*Pipeline, error) {
	if err := budget.Validate(); err != nil {
		return nil, err
	}
	cfg := config{
		budget:    budget,
		rounds:    9,
		mode:      ModePerLevel,
		model:     core.ModelCells,
		calib:     core.CalibrationClassical,
		mechanism: core.MechGaussian,
		order:     hierarchy.OrderWeightDesc,
		seed:      1,
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.strategy == nil {
		s, err := Strategies.Resolve("")
		if err != nil {
			return nil, err
		}
		cfg.strategy = s
	}
	if cfg.levels == nil {
		hi := cfg.rounds - 2
		if hi < 0 {
			hi = 0
		}
		for lvl := 0; lvl <= hi; lvl++ {
			cfg.levels = append(cfg.levels, lvl)
		}
	}
	for _, lvl := range cfg.levels {
		if lvl < 0 || lvl > cfg.rounds {
			return nil, fmt.Errorf("%w: level %d outside [0,%d]", ErrBadOption, lvl, cfg.rounds)
		}
	}
	return &Pipeline{cfg: cfg}, nil
}

// View is what one privilege tier receives.
type View struct {
	// Level is the protected group level.
	Level int `json:"level"`
	// Count is the noisy association count for this tier.
	Count core.LevelRelease `json:"count"`
	// Cells is the tier's noisy subgraph histogram when the pipeline was
	// run with WithCellHistograms.
	Cells *core.CellRelease `json:"cells,omitempty"`
}

// Release is the published multi-level artifact plus its audit trail.
type Release struct {
	// Dataset summarizes the input graph.
	Dataset bipartite.Stats `json:"dataset"`
	// Seed, ModeName, ModelName and CalibName record the configuration.
	Seed      uint64 `json:"seed"`
	ModeName  string `json:"mode"`
	ModelName string `json:"model"`
	CalibName string `json:"calibration"`
	MechName  string `json:"mechanism"`
	// Strategy names the release strategy when it is not the default,
	// keeping default artifacts byte-identical to the pre-strategy
	// engine.
	Strategy string `json:"strategy,omitempty"`
	Rounds   int    `json:"rounds"`
	// Budget is the configured global (εg, δ).
	BudgetEpsilon float64 `json:"budget_epsilon"`
	BudgetDelta   float64 `json:"budget_delta"`
	// Phase1Epsilon is the total specialization cost (2·rounds·per-cut ε
	// under parallel composition within each side-depth).
	Phase1Epsilon float64 `json:"phase1_epsilon"`
	// SequentialCost is the basic composition of every Phase-2 query, the
	// honest total if one user obtained all levels. ParallelCost is the
	// per-tier cost under the paper's access model.
	SequentialCostEpsilon float64 `json:"sequential_cost_epsilon"`
	SequentialCostDelta   float64 `json:"sequential_cost_delta"`
	ParallelCostEpsilon   float64 `json:"parallel_cost_epsilon"`
	ParallelCostDelta     float64 `json:"parallel_cost_delta"`
	// Profiles summarizes the hierarchy per level, root first.
	Profiles []hierarchy.LevelProfile `json:"profiles"`
	// Counts holds the per-level noisy count releases.
	Counts core.MultiLevelRelease `json:"counts"`
	// Cells holds the optional per-level histogram releases.
	Cells []core.CellRelease `json:"cells,omitempty"`
	// Grouping publishes the node → group assignment per level when the
	// pipeline ran with WithGrouping.
	Grouping *Grouping `json:"grouping,omitempty"`
	// Audit is the privacy ledger trail.
	Audit []accountant.Op `json:"-"`

	tree *hierarchy.Tree
}

// Tree exposes the built hierarchy for evaluation tooling (the tree
// itself is curator-side state, not part of the published artifact).
func (r *Release) Tree() *hierarchy.Tree { return r.tree }

// Run executes both phases on g.
func (p *Pipeline) Run(g *bipartite.Graph) (*Release, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	phase1Src, phase2Src := p.splitSources()
	plan, err := p.cfg.strategy.Partitioner.PlanGraph(g, p.partitionConfig(), phase1Src)
	if err != nil {
		return nil, err
	}
	build := hierarchy.Build
	if p.cfg.builder != nil {
		build = p.cfg.builder.Build
	}
	tree, err := build(g, p.hierarchyOptions(plan))
	if err != nil {
		return nil, fmt.Errorf("release: phase 1: %w", err)
	}
	return p.finish(tree, phase2Src)
}

// RunFromEdges executes both phases over a chunked edge stream: Phase 1
// runs through hierarchy.BuildFromEdges (two passes over the source, peak
// memory O(chunk + sides), never a materialized Graph) and Phase 2 is the
// usual noise injection on the resulting tree. The artifact is
// bit-identical to Run on a Graph holding the same associations — the
// dataset summary included, which is computed from the degrees captured
// during pass 1.
func (p *Pipeline) RunFromEdges(src bipartite.EdgeSource) (*Release, error) {
	if src == nil {
		return nil, ErrNilSource
	}
	phase1Src, phase2Src := p.splitSources()
	plan, err := p.cfg.strategy.Partitioner.PlanSource(src, p.partitionConfig(), phase1Src)
	if err != nil {
		return nil, err
	}
	build := hierarchy.BuildFromEdges
	if p.cfg.builder != nil {
		build = p.cfg.builder.BuildFromEdges
	}
	tree, err := build(src, p.hierarchyOptions(plan))
	if err != nil {
		return nil, fmt.Errorf("release: phase 1: %w", err)
	}
	return p.finish(tree, phase2Src)
}

// splitSources derives the two phase RNG streams from the seed. The
// strategy salt (zero for the default strategy, so its streams are
// untouched) is folded in first, so two strategies over the same data
// and seed never share a noise draw.
func (p *Pipeline) splitSources() (phase1, phase2 *rng.Source) {
	src := rng.New(p.cfg.seed)
	if salt := StrategySalt(p.cfg.strategy.Name()); salt != 0 {
		src = src.Split(salt)
	}
	return src.Split(1), src.Split(2)
}

// partitionConfig is the slice of the configuration the strategy's
// Phase-1 stage consumes.
func (p *Pipeline) partitionConfig() PartitionConfig {
	return PartitionConfig{
		Rounds:   p.cfg.rounds,
		Epsilon:  p.cfg.phase1Epsilon,
		Override: p.cfg.bisector,
		Workers:  p.cfg.workers,
	}
}

// countMechanism resolves the effective count-release mechanism: the
// explicit WithMechanism override when set, the strategy's noise stage
// otherwise.
func (p *Pipeline) countMechanism() core.NoiseMechanism {
	if p.cfg.mechSet {
		return p.cfg.mechanism
	}
	return p.cfg.strategy.Noise.Count
}

// hierarchyOptions assembles the Phase-1 build options from the
// partitioner's plan.
func (p *Pipeline) hierarchyOptions(plan PartitionPlan) hierarchy.Options {
	return hierarchy.Options{
		Rounds:   p.cfg.rounds,
		Bisector: plan.Bisector,
		Order:    p.cfg.order,
		Keys:     plan.Keys,
		Workers:  p.cfg.workers,
	}
}

// finish runs Phase 2 and assembles the artifact from a built tree — the
// shared tail of Run and RunFromEdges. The per-level releases go through
// one Engine, the same component a serving session reuses per query.
func (p *Pipeline) finish(tree *hierarchy.Tree, phase2Src *rng.Source) (*Release, error) {
	cfg := p.cfg
	strat := cfg.strategy
	var err error

	// The partitioner declares its Phase-1 charges; they apply when the
	// grouping actually consumed budget — always for partitioners that
	// spend outside the bisector (ChargeAlways), otherwise only when the
	// build recorded private cuts.
	phase1Ops := strat.Partitioner.Ops(p.partitionConfig())
	charge := len(phase1Ops) > 0 &&
		(strat.Partitioner.ChargeAlways() || tree.NumPrivateCuts() > 0)
	var phase1Cost dp.Params
	if charge {
		phase1Cost = PhaseCost(phase1Ops)
	}
	phase1Eps := phase1Cost.Epsilon

	var perQuery []dp.Params
	var sigmas []float64
	if cfg.mode == ModeComposedRDP {
		perQuery, sigmas, err = p.rdpPlan(tree)
	} else {
		perQuery, err = p.perQueryBudgets()
	}
	if err != nil {
		return nil, err
	}

	// The ledger guards the worst-case sequential total; per-level mode
	// deliberately overshoots a single εg, which the artifact reports as
	// ParallelCost vs SequentialCost.
	var ledgerBudget dp.Params
	ledgerBudget.Epsilon = phase1Cost.Epsilon
	ledgerBudget.Delta = phase1Cost.Delta
	for _, q := range perQuery {
		ledgerBudget.Epsilon += q.Epsilon
		ledgerBudget.Delta += q.Delta
	}
	ledger, err := accountant.NewLedger(ledgerBudget)
	if err != nil {
		return nil, fmt.Errorf("release: ledger: %w", err)
	}
	if charge {
		for _, op := range phase1Ops {
			if err := ledger.Spend(op.Label, op.Cost); err != nil {
				return nil, fmt.Errorf("release: accounting phase 1: %w", err)
			}
		}
	}

	countMech := p.countMechanism()
	strategyName := ""
	if strat.Name() != DefaultStrategyName {
		strategyName = strat.Name()
	}
	rel := &Release{
		Dataset:       tree.DatasetStats(),
		Seed:          cfg.seed,
		ModeName:      cfg.mode.String(),
		ModelName:     cfg.model.String(),
		CalibName:     cfg.calib.String(),
		MechName:      countMech.String(),
		Strategy:      strategyName,
		Rounds:        cfg.rounds,
		BudgetEpsilon: cfg.budget.Epsilon,
		BudgetDelta:   cfg.budget.Delta,
		Phase1Epsilon: phase1Eps,
		Counts:        core.MultiLevelRelease{MaxLevel: tree.MaxLevel()},
		tree:          tree,
	}
	for lvl := tree.MaxLevel(); lvl >= 0; lvl-- {
		prof, err := tree.Profile(lvl)
		if err != nil {
			return nil, fmt.Errorf("release: profiling level %d: %w", lvl, err)
		}
		rel.Profiles = append(rel.Profiles, prof)
	}

	eng, err := NewEngine(cfg.model, cfg.calib, countMech)
	if err != nil {
		return nil, err
	}
	if err := eng.SetCellMechanism(strat.Noise.Cells); err != nil {
		return nil, err
	}
	// The pipeline's Workers option shards each histogram's noise pass
	// too; releases are bit-identical for any value.
	eng.SetWorkers(cfg.workers)
	qi := 0
	for _, lvl := range cfg.levels {
		budget := perQuery[qi]
		var count core.LevelRelease
		if sigmas != nil {
			count, err = eng.CountSigma(tree, lvl, sigmas[qi], budget, phase2Src.Split(uint64(lvl)))
		} else {
			count, err = eng.Count(tree, lvl, budget, phase2Src.Split(uint64(lvl)))
		}
		if err != nil {
			return nil, fmt.Errorf("release: phase 2 count at level %d: %w", lvl, err)
		}
		qi++
		if err := ledger.Spend(fmt.Sprintf("phase2/count/level%d", lvl), budget); err != nil {
			return nil, fmt.Errorf("release: accounting level %d: %w", lvl, err)
		}
		rel.Counts.Levels = append(rel.Counts.Levels, count)

		if cfg.cellHistograms {
			budget := perQuery[qi]
			var cells *core.CellRelease
			if sigmas != nil {
				cells, err = eng.CellsSigma(tree, lvl, sigmas[qi], budget, phase2Src.Split(1000+uint64(lvl)))
			} else {
				cells, err = eng.Cells(tree, lvl, budget, phase2Src.Split(1000+uint64(lvl)))
			}
			if err != nil {
				return nil, fmt.Errorf("release: phase 2 cells at level %d: %w", lvl, err)
			}
			qi++
			if err := ledger.Spend(fmt.Sprintf("phase2/cells/level%d", lvl), budget); err != nil {
				return nil, fmt.Errorf("release: accounting cells %d: %w", lvl, err)
			}
			rel.Cells = append(rel.Cells, CloneCellRelease(*cells))
		}
	}

	if cfg.consistency {
		if !cfg.cellHistograms {
			return nil, fmt.Errorf("%w: consistency requires cell histograms", ErrBadOption)
		}
		fixed, err := strat.Consistency.Apply(rel.Cells)
		if err != nil {
			return nil, fmt.Errorf("release: enforcing consistency: %w", err)
		}
		rel.Cells = fixed
	}

	if cfg.grouping {
		grouping, err := GroupingFromTree(tree, cfg.levels)
		if err != nil {
			return nil, fmt.Errorf("release: extracting grouping: %w", err)
		}
		rel.Grouping = grouping
	}

	costs := make([]dp.Params, len(perQuery))
	copy(costs, perQuery)
	seq, err := accountant.ComposeBasic(costs)
	if err != nil {
		return nil, fmt.Errorf("release: composing costs: %w", err)
	}
	par, err := accountant.ComposeParallel(costs)
	if err != nil {
		return nil, fmt.Errorf("release: composing costs: %w", err)
	}
	rel.SequentialCostEpsilon = phase1Eps + seq.Epsilon
	rel.SequentialCostDelta = seq.Delta
	if cfg.mode == ModeComposedRDP {
		// The RDP accountant composes the Gaussian queries tighter than
		// the basic sum of their individual budgets: the whole Phase 2 is
		// (εg, δ)-DP by calibration.
		rel.SequentialCostEpsilon = phase1Eps + cfg.budget.Epsilon
		rel.SequentialCostDelta = cfg.budget.Delta
	}
	rel.ParallelCostEpsilon = phase1Eps + par.Epsilon
	rel.ParallelCostDelta = par.Delta
	rel.Audit = ledger.Ops()
	return rel, nil
}

// rdpPlan computes the composed-RDP noise plan: one Gaussian scale per
// query (σ = σ_unit · Δ_query, so every query consumes an equal RDP
// share) plus the honest per-query (ε, δ) implied by that scale for the
// artifact's metadata. The global guarantee — all queries together are
// (εg, δ)-DP — is enforced by calibrating σ_unit through the RDP
// accountant.
func (p *Pipeline) rdpPlan(tree *hierarchy.Tree) ([]dp.Params, []float64, error) {
	cfg := p.cfg
	if cfg.budget.Delta <= 0 {
		return nil, nil, fmt.Errorf("%w: composed-rdp requires delta > 0", ErrBadOption)
	}
	if p.countMechanism() != core.MechGaussian {
		return nil, nil, fmt.Errorf("%w: composed-rdp requires the gaussian mechanism", ErrBadOption)
	}
	if cfg.cellHistograms && cfg.strategy.Noise.Cells != core.MechGaussian {
		return nil, nil, fmt.Errorf("%w: composed-rdp requires gaussian cell histograms", ErrBadOption)
	}
	queries := len(cfg.levels)
	if cfg.cellHistograms {
		queries *= 2
	}
	sigmaUnit, err := accountant.GaussianSigmaForBudget(cfg.budget.Epsilon, cfg.budget.Delta, queries)
	if err != nil {
		return nil, nil, fmt.Errorf("release: rdp calibration: %w", err)
	}
	perDelta := cfg.budget.Delta / float64(queries)

	plan := func(sens int64) (dp.Params, float64, error) {
		if sens <= 0 {
			// Empty level: no noise needed; advertise the nominal share.
			return dp.Params{Epsilon: cfg.budget.Epsilon / float64(queries), Delta: perDelta}, 0, nil
		}
		sigma := sigmaUnit * float64(sens)
		eps, err := dp.GaussianEpsilon(sigma, float64(sens), perDelta)
		if err != nil {
			return dp.Params{}, 0, err
		}
		return dp.Params{Epsilon: eps, Delta: perDelta}, sigma, nil
	}

	budgets := make([]dp.Params, 0, queries)
	sigmas := make([]float64, 0, queries)
	for _, lvl := range cfg.levels {
		sens, err := core.Sensitivity(tree, lvl, cfg.model)
		if err != nil {
			return nil, nil, err
		}
		b, s, err := plan(sens)
		if err != nil {
			return nil, nil, err
		}
		budgets = append(budgets, b)
		sigmas = append(sigmas, s)
		if cfg.cellHistograms {
			cellSens, err := core.Sensitivity(tree, lvl, core.ModelCells)
			if err != nil {
				return nil, nil, err
			}
			b, s, err := plan(cellSens)
			if err != nil {
				return nil, nil, err
			}
			budgets = append(budgets, b)
			sigmas = append(sigmas, s)
		}
	}
	return budgets, sigmas, nil
}

// perQueryBudgets maps the global budget to one (ε, δ) per Phase-2 query
// according to the mode.
func (p *Pipeline) perQueryBudgets() ([]dp.Params, error) {
	cfg := p.cfg
	queries := len(cfg.levels)
	if cfg.cellHistograms {
		queries *= 2
	}
	switch cfg.mode {
	case ModePerLevel:
		out := make([]dp.Params, queries)
		for i := range out {
			out[i] = cfg.budget
		}
		return out, nil
	case ModeComposedBasic:
		return accountant.UniformSplitter{}.Split(cfg.budget, queries)
	case ModeComposedAdvanced:
		if cfg.budget.Delta <= 0 {
			return nil, fmt.Errorf("%w: advanced composition requires delta > 0", ErrBadOption)
		}
		slack := cfg.budget.Delta / 2
		perEps, err := accountant.AdvancedPerQueryEpsilon(cfg.budget.Epsilon, queries, slack)
		if err != nil {
			return nil, fmt.Errorf("release: advanced split: %w", err)
		}
		perDelta := cfg.budget.Delta / (2 * float64(queries))
		out := make([]dp.Params, queries)
		for i := range out {
			out[i] = dp.Params{Epsilon: perEps, Delta: perDelta}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: mode %d", ErrBadOption, int(cfg.mode))
	}
}

// ViewFor returns the view a privilege tier receives: the release
// protected at group level `level`.
func (r *Release) ViewFor(level int) (View, error) {
	count, ok := r.Counts.ForLevel(level)
	if !ok {
		return View{}, fmt.Errorf("release: no release for level %d", level)
	}
	v := View{Level: level, Count: count}
	for i := range r.Cells {
		if r.Cells[i].Level == level {
			v.Cells = &r.Cells[i]
			break
		}
	}
	return v, nil
}

// Levels returns the released level numbers in release order.
func (r *Release) Levels() []int {
	out := make([]int, len(r.Counts.Levels))
	for i, l := range r.Counts.Levels {
		out[i] = l.Level
	}
	return out
}

// WriteJSON serializes the artifact. When includeTrue is false the exact
// counts and error rates are stripped, producing the publishable form.
func (r *Release) WriteJSON(w io.Writer, includeTrue bool) error {
	out := *r
	if !includeTrue {
		out.Counts = r.Counts.OmitTrue()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&out); err != nil {
		return fmt.Errorf("release: encoding json: %w", err)
	}
	return nil
}
