package bipartite

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestBinaryRoundTrip(t *testing.T) {
	t.Parallel()
	g := buildTestGraph(t)
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, got)
}

func TestBinaryRoundTripWithNames(t *testing.T) {
	t.Parallel()
	b := NewBuilder(0)
	b.AddAssociation("alice", "insulin")
	b.AddAssociation("bob", "aspirin")
	b.AddAssociation("bob", "insulin")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, got)
	if got.LeftName(1) != "bob" || got.RightName(1) != "aspirin" {
		t.Errorf("names lost in round trip: %q %q", got.LeftName(1), got.RightName(1))
	}
}

func TestBinaryRoundTripEmpty(t *testing.T) {
	t.Parallel()
	g, err := NewBuilder(0).Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != 0 || got.NumLeft() != 0 || got.NumRight() != 0 {
		t.Error("empty graph did not round trip")
	}
}

func TestDecodeBadMagic(t *testing.T) {
	t.Parallel()
	_, err := DecodeBinary(strings.NewReader("NOPE...."))
	if !errors.Is(err, ErrBadFormat) {
		t.Errorf("error = %v, want ErrBadFormat", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	t.Parallel()
	g := buildTestGraph(t)
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail cleanly, never panic.
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("decode of %d-byte prefix unexpectedly succeeded", cut)
		}
	}
}

func TestDecodeRejectsHugeCounts(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	buf.Write(binaryMagic[:])
	buf.Write([]byte{0x00})                                           // flags
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // absurd numLeft
	if _, err := DecodeBinary(&buf); !errors.Is(err, ErrBadFormat) {
		t.Errorf("error = %v, want ErrBadFormat", err)
	}
}

func TestTSVRoundTripIDs(t *testing.T) {
	t.Parallel()
	g := buildTestGraph(t)
	var buf bytes.Buffer
	if err := SaveTSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, got)
}

func TestTSVRoundTripNames(t *testing.T) {
	t.Parallel()
	b := NewBuilder(0)
	b.AddAssociation("alice", "paper one")
	b.AddAssociation("bob", "paper two")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveTSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != 2 || !got.HasNames() {
		t.Fatalf("tsv with names loaded wrong: edges=%d names=%v", got.NumEdges(), got.HasNames())
	}
}

func TestLoadTSVSkipsCommentsAndBlanks(t *testing.T) {
	t.Parallel()
	in := "# header\n\n0\t1\n\n# trailing\n1\t0\n"
	g, err := LoadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestLoadTSVBadFieldCount(t *testing.T) {
	t.Parallel()
	if _, err := LoadTSV(strings.NewReader("a\tb\tc\n")); err == nil {
		t.Error("LoadTSV accepted a 3-field line")
	}
}

func TestLoadDBLPXML(t *testing.T) {
	t.Parallel()
	const doc = `<?xml version="1.0"?>
<dblp>
 <article key="journals/x/1"><author>Alice A.</author><author>Bob B.</author><title>T1</title></article>
 <inproceedings key="conf/y/2"><author>Alice A.</author><title>T2</title></inproceedings>
 <www key="homepages/a"><author>Alice A.</author></www>
 <book key="books/z/3"><editor>Carol C.</editor><title>T3</title></book>
</dblp>`
	g, err := LoadDBLPXML(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	// Alice->1, Bob->1, Alice->2, Carol->3. The www entry is skipped.
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
	if g.NumLeft() != 3 {
		t.Errorf("NumLeft = %d, want 3 authors", g.NumLeft())
	}
	if g.NumRight() != 3 {
		t.Errorf("NumRight = %d, want 3 publications", g.NumRight())
	}
}

func TestLoadDBLPXMLEmpty(t *testing.T) {
	t.Parallel()
	if _, err := LoadDBLPXML(strings.NewReader("<dblp></dblp>")); err == nil {
		t.Error("empty dblp xml should error")
	}
}

func TestLoadDBLPXMLMalformed(t *testing.T) {
	t.Parallel()
	if _, err := LoadDBLPXML(strings.NewReader("<dblp><article>")); err == nil {
		t.Error("malformed xml should error")
	}
}

// TestQuickBinaryRoundTrip round-trips random graphs through the binary
// codec.
func TestQuickBinaryRoundTrip(t *testing.T) {
	t.Parallel()
	src := rng.New(77)
	f := func(seed uint64) bool {
		r := src.Split(seed)
		nl := int32(r.Intn(30) + 1)
		nr := int32(r.Intn(30) + 1)
		b := NewBuilder(0)
		b.SetNumLeft(nl)
		b.SetNumRight(nr)
		for i := 0; i < r.Intn(300); i++ {
			b.AddEdge(int32(r.Intn(int(nl))), int32(r.Intn(int(nr))))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := EncodeBinary(&buf, g); err != nil {
			return false
		}
		got, err := DecodeBinary(&buf)
		if err != nil {
			return false
		}
		return graphsEqual(g, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func assertGraphsEqual(t *testing.T, want, got *Graph) {
	t.Helper()
	if !graphsEqual(want, got) {
		t.Fatalf("graphs differ:\nwant |L|=%d |R|=%d |E|=%d\ngot  |L|=%d |R|=%d |E|=%d",
			want.NumLeft(), want.NumRight(), want.NumEdges(),
			got.NumLeft(), got.NumRight(), got.NumEdges())
	}
}

func graphsEqual(a, b *Graph) bool {
	if a.NumLeft() != b.NumLeft() || a.NumRight() != b.NumRight() || a.NumEdges() != b.NumEdges() {
		return false
	}
	equal := true
	a.ForEachEdge(func(l, r int32) bool {
		if !b.HasEdge(l, r) {
			equal = false
			return false
		}
		return true
	})
	return equal
}
