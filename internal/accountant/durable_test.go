package accountant

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dp"
)

// faultSyncer wraps a real file and fails the Nth write or sync — the
// fault-injection seam's test double. failWrite may tear the record:
// partialWrite writes a prefix of the frame before reporting failure,
// exactly what a crashed kernel flush leaves behind.
type faultSyncer struct {
	f            *os.File
	writes       int
	syncs        int
	failWrite    int // 1-based write call to fail; 0 = never
	failSync     int // 1-based sync call to fail; 0 = never
	partialWrite bool
}

func (s *faultSyncer) Write(p []byte) (int, error) {
	s.writes++
	if s.failWrite != 0 && s.writes >= s.failWrite {
		if s.partialWrite && len(p) > 1 {
			n, _ := s.f.Write(p[:len(p)/2])
			return n, errors.New("injected partial write")
		}
		return 0, errors.New("injected write failure")
	}
	return s.f.Write(p)
}

func (s *faultSyncer) Sync() error {
	s.syncs++
	if s.failSync != 0 && s.syncs >= s.failSync {
		return errors.New("injected sync failure")
	}
	return s.f.Sync()
}

func (s *faultSyncer) Close() error { return s.f.Close() }

// openFault returns DurableOptions whose writer wraps real files in a
// faultSyncer configured by fn (called per opened file).
func openFault(fn func(*faultSyncer)) DurableOptions {
	return DurableOptions{
		OpenWriter: func(path string) (WriteSyncer, error) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
			if err != nil {
				return nil, err
			}
			fs := &faultSyncer{f: f}
			if fn != nil {
				fn(fs)
			}
			return fs, nil
		},
	}
}

func mustOpen(t *testing.T, budget dp.Params, path string, opts DurableOptions) *DurableLedger {
	t.Helper()
	d, err := OpenDurableLedger(budget, path, opts)
	if err != nil {
		t.Fatalf("OpenDurableLedger(%s): %v", path, err)
	}
	return d
}

func TestDurableRoundTrip(t *testing.T) {
	budget := dp.Params{Epsilon: 1, Delta: 1e-5}
	path := filepath.Join(t.TempDir(), "ledger.wal")

	d := mustOpen(t, budget, path, DurableOptions{})
	want := []struct {
		label string
		cost  dp.Params
	}{
		{"ingest/phase1", dp.Params{Epsilon: 0.3}},
		{"s1/q0/view/level2", dp.Params{Epsilon: 0.2, Delta: 2e-6}},
		{"s1/q1/marginal/level1", dp.Params{Epsilon: 0.1, Delta: 1e-6}},
	}
	for _, op := range want {
		if err := d.Spend(op.label, op.cost); err != nil {
			t.Fatalf("Spend(%q): %v", op.label, err)
		}
	}
	spent, ops := d.Spent(), d.Ops()
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := d.Spend("after-close", dp.Params{Epsilon: 0.01}); !errors.Is(err, ErrLedgerClosed) {
		t.Fatalf("Spend after Close: got %v, want ErrLedgerClosed", err)
	}

	re := mustOpen(t, budget, path, DurableOptions{})
	defer re.Close()
	if got := re.Spent(); got != spent {
		t.Fatalf("reopened Spent = %s, want %s", got, spent)
	}
	if got := re.Ops(); !reflect.DeepEqual(got, ops) {
		t.Fatalf("reopened Ops = %+v, want %+v", got, ops)
	}
	if st := re.Status(); st.ReplayedOps != len(want) {
		t.Fatalf("ReplayedOps = %d, want %d", st.ReplayedOps, len(want))
	}
	// The replayed ledger keeps accounting against the same budget.
	if err := re.Spend("post-restart", dp.Params{Epsilon: 0.5}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over-budget spend after replay: got %v, want ErrBudgetExceeded", err)
	}
	if err := re.Spend("post-restart", dp.Params{Epsilon: 0.4, Delta: 1e-6}); err != nil {
		t.Fatalf("in-budget spend after replay: %v", err)
	}
}

func TestDurableExhaustedStaysExhausted(t *testing.T) {
	budget := dp.Params{Epsilon: 0.1, Delta: 1e-6}
	path := filepath.Join(t.TempDir(), "ledger.wal")
	d := mustOpen(t, budget, path, DurableOptions{})
	for i := 0; i < 4; i++ {
		if err := d.Spend(fmt.Sprintf("q%d", i), dp.Params{Epsilon: 0.025, Delta: 25e-8}); err != nil {
			t.Fatalf("spend %d: %v", i, err)
		}
	}
	if err := d.Spend("q4", dp.Params{Epsilon: 0.025}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("drain: got %v, want ErrBudgetExceeded", err)
	}
	d.Close()

	re := mustOpen(t, budget, path, DurableOptions{})
	defer re.Close()
	if err := re.Spend("q4", dp.Params{Epsilon: 0.025}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("reopened exhausted ledger admitted a spend: %v", err)
	}
}

// TestDurableTornTail truncates the WAL at EVERY byte length between the
// clean end and the end of the first op and asserts reopen never fails:
// full frames replay, partial frames are discarded and the file repaired.
func TestDurableTornTail(t *testing.T) {
	budget := dp.Params{Epsilon: 1, Delta: 1e-5}
	dir := t.TempDir()
	path := filepath.Join(dir, "ledger.wal")

	d := mustOpen(t, budget, path, DurableOptions{})
	var sizes []int64 // file size after the header and after each op
	st := d.Status()
	sizes = append(sizes, st.WALBytes)
	costs := []dp.Params{
		{Epsilon: 0.1, Delta: 1e-6},
		{Epsilon: 0.2, Delta: 2e-6},
		{Epsilon: 0.15, Delta: 3e-6},
	}
	for i, c := range costs {
		if err := d.Spend(fmt.Sprintf("op%d", i), c); err != nil {
			t.Fatalf("spend %d: %v", i, err)
		}
		sizes = append(sizes, d.Status().WALBytes)
	}
	d.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != sizes[len(sizes)-1] {
		t.Fatalf("file is %d bytes, status says %d", len(full), sizes[len(sizes)-1])
	}

	opsAfter := func(n int) dp.Params {
		var p dp.Params
		for _, c := range costs[:n] {
			p.Epsilon += c.Epsilon
			p.Delta += c.Delta
		}
		return p
	}
	for cut := sizes[0]; cut <= sizes[len(sizes)-1]; cut++ {
		tpath := filepath.Join(dir, fmt.Sprintf("torn-%d.wal", cut))
		if err := os.WriteFile(tpath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := OpenDurableLedger(budget, tpath, DurableOptions{})
		if err != nil {
			t.Fatalf("reopen at cut %d: %v", cut, err)
		}
		// The replayed prefix is the ops whose frames fully fit.
		wantOps := 0
		for wantOps+1 < len(sizes) && sizes[wantOps+1] <= cut {
			wantOps++
		}
		if got := re.OpCount(); got != wantOps {
			re.Close()
			t.Fatalf("cut %d: OpCount = %d, want %d", cut, got, wantOps)
		}
		if got, want := re.Spent(), opsAfter(wantOps); got != want {
			re.Close()
			t.Fatalf("cut %d: Spent = %s, want %s", cut, got, want)
		}
		// The torn tail must be gone: the next spend appends at a clean
		// boundary and survives another reopen.
		if err := re.Spend("after-tear", dp.Params{Epsilon: 0.01}); err != nil {
			re.Close()
			t.Fatalf("cut %d: spend after repair: %v", cut, err)
		}
		spent := re.Spent()
		re.Close()
		re2, err := OpenDurableLedger(budget, tpath, DurableOptions{})
		if err != nil {
			t.Fatalf("cut %d: second reopen: %v", cut, err)
		}
		if got := re2.Spent(); got != spent {
			t.Fatalf("cut %d: post-repair Spent = %s, want %s", cut, got, spent)
		}
		re2.Close()
	}
}

// TestDurableFailClosed injects a failure into every write and sync call
// number in turn and asserts the contract at each kill point: the failed
// spend is not admitted, the failure latches, and the reopened ledger's
// spent is exactly the admitted prefix — never more than the client saw
// admitted, never more than the budget.
func TestDurableFailClosed(t *testing.T) {
	budget := dp.Params{Epsilon: 1, Delta: 1e-5}
	cost := dp.Params{Epsilon: 0.05, Delta: 1e-7}
	const spends = 8

	run := func(t *testing.T, arm func(*faultSyncer), partial bool) {
		dir := t.TempDir()
		path := filepath.Join(dir, "ledger.wal")
		opts := openFault(func(fs *faultSyncer) {
			fs.partialWrite = partial
			arm(fs)
		})
		d := mustOpen(t, budget, path, opts)
		admitted := 0
		var failedAt error
		for i := 0; i < spends; i++ {
			err := d.Spend(fmt.Sprintf("q%d", i), cost)
			if err == nil {
				admitted++
				continue
			}
			failedAt = err
			break
		}
		if failedAt != nil {
			if !errors.Is(failedAt, ErrLedgerFailed) {
				t.Fatalf("injected fault surfaced as %v, want ErrLedgerFailed", failedAt)
			}
			// The failure latches: nothing is admitted afterwards.
			if err := d.Spend("after-fault", cost); !errors.Is(err, ErrLedgerFailed) {
				t.Fatalf("spend after latched failure: got %v, want ErrLedgerFailed", err)
			}
			if st := d.Status(); st.Err == "" {
				t.Fatal("Status.Err empty after latched failure")
			}
		}
		// Accumulate like the ledger does (repeated addition), so the
		// float rounding matches exactly.
		var wantSpent dp.Params
		for i := 0; i < admitted; i++ {
			wantSpent.Epsilon += cost.Epsilon
			wantSpent.Delta += cost.Delta
		}
		if got := d.Spent(); got != wantSpent {
			t.Fatalf("Spent after fault = %s, want %s (%d admitted)", got, wantSpent, admitted)
		}
		d.Close()

		re := mustOpen(t, budget, path, DurableOptions{})
		defer re.Close()
		got := re.Spent()
		// The reopened trail must cover every admission the client saw
		// (FsyncAlways: durable before admitted) without inventing spend
		// beyond the budget.
		if got.Epsilon < wantSpent.Epsilon || got.Delta < wantSpent.Delta {
			t.Fatalf("reopened Spent %s < client-observed admitted %s", got, wantSpent)
		}
		if got.Epsilon > budget.Epsilon || got.Delta > budget.Delta {
			t.Fatalf("reopened Spent %s exceeds budget %s", got, budget)
		}
		// At most the one in-flight (torn) op beyond the admitted set.
		if n := re.OpCount(); n != admitted && n != admitted+1 {
			t.Fatalf("reopened OpCount = %d, want %d or %d", n, admitted, admitted+1)
		}
	}

	// Write call 1 is the WAL header; arm faults from call 2 onward.
	for w := 2; w <= spends+1; w++ {
		for _, partial := range []bool{false, true} {
			t.Run(fmt.Sprintf("write%d_partial=%v", w, partial), func(t *testing.T) {
				run(t, func(fs *faultSyncer) { fs.failWrite = w }, partial)
			})
		}
	}
	for s := 2; s <= spends+1; s++ {
		t.Run(fmt.Sprintf("sync%d", s), func(t *testing.T) {
			run(t, func(fs *faultSyncer) { fs.failSync = s }, false)
		})
	}
}

func TestDurableSnapshotCompaction(t *testing.T) {
	budget := dp.Params{Epsilon: 10, Delta: 1e-4}
	path := filepath.Join(t.TempDir(), "ledger.wal")
	opts := DurableOptions{SnapshotEvery: 3}

	d := mustOpen(t, budget, path, opts)
	const n = 11
	for i := 0; i < n; i++ {
		if err := d.Spend(fmt.Sprintf("op%d", i), dp.Params{Epsilon: 0.1, Delta: 1e-7}); err != nil {
			t.Fatalf("spend %d: %v", i, err)
		}
	}
	st := d.Status()
	if st.Compactions == 0 {
		t.Fatal("no compaction ran at SnapshotEvery=3 over 11 ops")
	}
	if st.SnapshotOps == 0 {
		t.Fatal("snapshot holds no ops after compaction")
	}
	if st.WALRecords >= n {
		t.Fatalf("WAL was never reset: %d records", st.WALRecords)
	}
	ops, spent := d.Ops(), d.Spent()
	d.Close()

	re := mustOpen(t, budget, path, opts)
	defer re.Close()
	if got := re.Spent(); got != spent {
		t.Fatalf("reopened Spent = %s, want %s", got, spent)
	}
	if got := re.Ops(); !reflect.DeepEqual(got, ops) {
		t.Fatalf("reopened Ops after compaction diverge:\n got %+v\nwant %+v", got, ops)
	}
}

// TestDurableCompactionCrashOverlap simulates a crash between the
// snapshot rename and the WAL reset: the snapshot and the old WAL then
// describe overlapping history, and replay must not double-count it.
func TestDurableCompactionCrashOverlap(t *testing.T) {
	budget := dp.Params{Epsilon: 10, Delta: 1e-4}
	dir := t.TempDir()
	path := filepath.Join(dir, "ledger.wal")
	opts := DurableOptions{SnapshotEvery: 100} // no compaction during setup

	d := mustOpen(t, budget, path, opts)
	const n = 5
	for i := 0; i < n; i++ {
		if err := d.Spend(fmt.Sprintf("op%d", i), dp.Params{Epsilon: 0.1, Delta: 1e-7}); err != nil {
			t.Fatalf("spend %d: %v", i, err)
		}
	}
	ops, spent := d.Ops(), d.Spent()
	d.Close()
	oldWAL, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Force a compaction (SnapshotEvery=1 compacts before the 6th spend),
	// then restore the pre-compaction WAL over the reset one — the exact
	// state a crash at the rename/reset boundary leaves behind, with the
	// snapshot covering everything the stale WAL repeats.
	d2 := mustOpen(t, budget, path, DurableOptions{SnapshotEvery: 1})
	if err := d2.Spend("trigger", dp.Params{Epsilon: 0.1, Delta: 1e-7}); err != nil {
		t.Fatalf("trigger spend: %v", err)
	}
	if st := d2.Status(); st.Compactions == 0 {
		t.Fatal("setup failed: no compaction triggered")
	}
	d2.Close()
	if err := os.WriteFile(path, oldWAL, 0o644); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, budget, path, DurableOptions{})
	defer re.Close()
	// The snapshot holds ops 1..n (all of the stale WAL's records), so
	// replay must skip every one of them: total ops = n, not 2n.
	if got := re.OpCount(); got != n {
		t.Fatalf("overlap replay OpCount = %d, want %d (double-counted)", got, n)
	}
	if got := re.Spent(); got != spent {
		t.Fatalf("overlap replay Spent = %s, want %s", got, spent)
	}
	if got := re.Ops(); !reflect.DeepEqual(got, ops) {
		t.Fatalf("overlap replay Ops diverge:\n got %+v\nwant %+v", got, ops)
	}
}

func TestDurableBudgetMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.wal")
	d := mustOpen(t, dp.Params{Epsilon: 1, Delta: 1e-5}, path, DurableOptions{})
	if err := d.Spend("op", dp.Params{Epsilon: 0.5}); err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := OpenDurableLedger(dp.Params{Epsilon: 2, Delta: 1e-5}, path, DurableOptions{}); !errors.Is(err, ErrBudgetMismatch) {
		t.Fatalf("reopen under larger budget: got %v, want ErrBudgetMismatch", err)
	}
}

func TestDurableLocking(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.wal")
	budget := dp.Params{Epsilon: 1, Delta: 1e-5}
	d := mustOpen(t, budget, path, DurableOptions{})
	defer d.Close()
	if _, err := OpenDurableLedger(budget, path, DurableOptions{}); !errors.Is(err, ErrLedgerLocked) {
		t.Fatalf("second open of a live ledger: got %v, want ErrLedgerLocked", err)
	}
}

func TestDurableCorruptMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.wal")
	if err := os.WriteFile(path, []byte("NOTAWAL1 some junk that is long enough"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurableLedger(dp.Params{Epsilon: 1, Delta: 1e-5}, path, DurableOptions{}); !errors.Is(err, ErrLedgerCorrupt) {
		t.Fatalf("foreign magic: got %v, want ErrLedgerCorrupt", err)
	}
}

func TestDurableCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ledger.wal")
	budget := dp.Params{Epsilon: 1, Delta: 1e-5}
	d := mustOpen(t, budget, path, DurableOptions{SnapshotEvery: 1})
	for i := 0; i < 3; i++ {
		if err := d.Spend(fmt.Sprintf("op%d", i), dp.Params{Epsilon: 0.1}); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()
	snap := path + ".snap"
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatalf("expected a snapshot at %s: %v", snap, err)
	}
	// Unlike the WAL, a snapshot gets no torn-tail tolerance: it was
	// written atomically, so a short file is corruption, not a crash.
	if err := os.WriteFile(snap, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurableLedger(budget, path, DurableOptions{}); !errors.Is(err, ErrLedgerCorrupt) {
		t.Fatalf("truncated snapshot: got %v, want ErrLedgerCorrupt", err)
	}
}

func TestDurableFsyncPolicies(t *testing.T) {
	budget := dp.Params{Epsilon: 1, Delta: 1e-5}
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncOff} {
		t.Run(string(policy), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "ledger.wal")
			var fs *faultSyncer
			opts := openFault(func(s *faultSyncer) { fs = s })
			opts.Fsync = policy
			d := mustOpen(t, budget, path, opts)
			for i := 0; i < 5; i++ {
				if err := d.Spend(fmt.Sprintf("op%d", i), dp.Params{Epsilon: 0.1, Delta: 1e-7}); err != nil {
					t.Fatal(err)
				}
			}
			st := d.Status()
			switch policy {
			case FsyncAlways:
				if st.Unsynced != 0 {
					t.Fatalf("FsyncAlways left %d unsynced records", st.Unsynced)
				}
				// header + one sync per op
				if fs.syncs < 6 {
					t.Fatalf("FsyncAlways issued %d syncs, want ≥ 6", fs.syncs)
				}
			case FsyncOff:
				if st.Unsynced != 5 {
					t.Fatalf("FsyncOff shows %d unsynced, want 5", st.Unsynced)
				}
			}
			spent := d.Spent()
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			// Close syncs under every policy: the graceful path is durable.
			re := mustOpen(t, budget, path, DurableOptions{})
			if got := re.Spent(); got != spent {
				t.Fatalf("policy %s: reopened Spent = %s, want %s", policy, got, spent)
			}
			re.Close()
		})
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
		ok   bool
	}{
		{"", FsyncAlways, true},
		{"always", FsyncAlways, true},
		{"interval", FsyncInterval, true},
		{"off", FsyncOff, true},
		{"sometimes", "", false},
	} {
		got, err := ParseFsyncPolicy(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Errorf("ParseFsyncPolicy(%q) = %q, %v; want %q, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

// TestZeroDeltaBudgetRejectsDelta pins the admit-tolerance fix: a
// strictly zero-delta budget is a pure-ε guarantee and must reject ANY
// op carrying positive δ, however tiny — the old absolute slack admitted
// δ up to ~1e-18 against δ-budget 0.
func TestZeroDeltaBudgetRejectsDelta(t *testing.T) {
	l, err := NewLedger(dp.Params{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Spend("tiny-delta", dp.Params{Epsilon: 0.1, Delta: 1e-19}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("zero-delta budget admitted δ=1e-19: %v", err)
	}
	if err := l.Spend("pure-eps", dp.Params{Epsilon: 0.1}); err != nil {
		t.Fatalf("pure-ε spend against zero-delta budget: %v", err)
	}
	// The relative tolerance still lets n spends of total/n fit exactly.
	l2, err := NewLedger(dp.Params{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := l2.Spend("slice", dp.Params{Epsilon: 1.0 / 7}); err != nil {
			t.Fatalf("slice %d of ε/7: %v", i, err)
		}
	}
}
