package dp

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Exponential is the exponential mechanism of McSherry & Talwar: it
// selects a candidate from a finite domain with probability proportional
// to exp(ε·u(c) / (2·Δu)), where u is the utility function and Δu its
// sensitivity. The disclosure pipeline's Phase 1 uses it to choose
// partition cut points.
type Exponential struct {
	epsilon     float64
	utilitySens float64
	src         *rng.Source
}

// NewExponential returns an exponential mechanism for the given ε and
// utility sensitivity Δu.
func NewExponential(epsilon, utilitySensitivity float64, src *rng.Source) (*Exponential, error) {
	if err := (Params{Epsilon: epsilon}).Validate(); err != nil {
		return nil, err
	}
	if err := validateSensitivity(utilitySensitivity); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, ErrNilSource
	}
	return &Exponential{epsilon: epsilon, utilitySens: utilitySensitivity, src: src}, nil
}

// Select returns the index of the chosen candidate given per-candidate
// utilities. It uses the Gumbel-max trick — argmax of scaled utility plus
// independent Gumbel noise — which samples from exactly the exponential
// mechanism's distribution while staying numerically stable for widely
// spread utilities.
func (m *Exponential) Select(utilities []float64) (int, error) {
	if len(utilities) == 0 {
		return 0, ErrEmptyDomain
	}
	scale := m.epsilon / (2 * m.utilitySens)
	best := -1
	bestScore := math.Inf(-1)
	for i, u := range utilities {
		if math.IsNaN(u) {
			return 0, fmt.Errorf("dp: utility %d is NaN", i)
		}
		score := scale*u + m.src.Gumbel()
		if score > bestScore {
			bestScore = score
			best = i
		}
	}
	return best, nil
}

// SelectFast samples exactly the same distribution as Select and
// SelectLSE via inverse-CDF over softmax probabilities, but into a
// caller-provided scratch buffer: no allocation in steady state, one
// uniform draw per call regardless of domain size, and one exponential
// per candidate — about half the transcendental cost of the Gumbel-max
// path, which pays two logarithms per candidate. It is the hot-path
// sampler for Phase-1 specialization, where Build invokes the mechanism
// once per cut over every node of the side. The (possibly grown) scratch
// is returned for reuse; its contents are the probability vector. The
// arithmetic mirrors Probabilities/SelectLSE operation for operation, so
// given identical source states the three samplers pick identical
// candidates (cross-checked in tests).
func (m *Exponential) SelectFast(utilities, scratch []float64) (int, []float64, error) {
	if len(utilities) == 0 {
		return 0, scratch, ErrEmptyDomain
	}
	if cap(scratch) < len(utilities) {
		scratch = make([]float64, len(utilities))
	}
	probs := scratch[:len(utilities)]
	scale := m.epsilon / (2 * m.utilitySens)
	maxScore := math.Inf(-1)
	for i, u := range utilities {
		if math.IsNaN(u) {
			return 0, scratch, fmt.Errorf("dp: utility %d is NaN", i)
		}
		probs[i] = scale * u
		if probs[i] > maxScore {
			maxScore = probs[i]
		}
	}
	var norm float64
	for i, s := range probs {
		probs[i] = math.Exp(s - maxScore)
		norm += probs[i]
	}
	for i := range probs {
		probs[i] /= norm
	}
	u := m.src.Float64()
	var cum float64
	for i, p := range probs {
		cum += p
		if u < cum {
			return i, probs, nil
		}
	}
	return len(probs) - 1, probs, nil
}

// SelectLSE samples the same distribution by explicit inverse-CDF over
// softmax probabilities computed with the log-sum-exp trick. It exists to
// cross-validate Select in tests and for callers that also need the
// probability vector.
func (m *Exponential) SelectLSE(utilities []float64) (int, []float64, error) {
	probs, err := m.Probabilities(utilities)
	if err != nil {
		return 0, nil, err
	}
	u := m.src.Float64()
	var cum float64
	for i, p := range probs {
		cum += p
		if u < cum {
			return i, probs, nil
		}
	}
	return len(probs) - 1, probs, nil
}

// Probabilities returns the exact selection distribution over candidates.
func (m *Exponential) Probabilities(utilities []float64) ([]float64, error) {
	if len(utilities) == 0 {
		return nil, ErrEmptyDomain
	}
	scale := m.epsilon / (2 * m.utilitySens)
	maxScore := math.Inf(-1)
	scores := make([]float64, len(utilities))
	for i, u := range utilities {
		if math.IsNaN(u) {
			return nil, fmt.Errorf("dp: utility %d is NaN", i)
		}
		scores[i] = scale * u
		if scores[i] > maxScore {
			maxScore = scores[i]
		}
	}
	var norm float64
	probs := make([]float64, len(scores))
	for i, s := range scores {
		probs[i] = math.Exp(s - maxScore)
		norm += probs[i]
	}
	for i := range probs {
		probs[i] /= norm
	}
	return probs, nil
}
