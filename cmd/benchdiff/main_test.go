package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeRec(t *testing.T, dir, name, body string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBenchdiffPassesWithinTolerance(t *testing.T) {
	base, cand := t.TempDir(), t.TempDir()
	writeRec(t, base, "BENCH_phase2.json", `{"release_cells_ns_per_op": 1000000}`)
	writeRec(t, cand, "BENCH_phase2.json", `{"release_cells_ns_per_op": 1200000}`)
	writeRec(t, base, "BENCH_serve.json", `{"queries_per_sec": 100000, "cache_speedup": 13.4}`)
	writeRec(t, cand, "BENCH_serve.json", `{"queries_per_sec": 90000, "cache_speedup": 11.8}`)
	if err := run([]string{"-baseline", base, "-candidate", cand}); err != nil {
		t.Fatalf("within-tolerance run failed: %v", err)
	}
}

func TestBenchdiffFailsOnRegression(t *testing.T) {
	base, cand := t.TempDir(), t.TempDir()
	writeRec(t, base, "BENCH_phase2.json", `{"release_cells_ns_per_op": 1000000}`)
	writeRec(t, cand, "BENCH_phase2.json", `{"release_cells_ns_per_op": 1400000}`) // +40% ns/op
	err := run([]string{"-baseline", base, "-candidate", cand})
	if err == nil || !strings.Contains(err.Error(), "release_cells_ns_per_op") {
		t.Fatalf("40%% ns/op regression not caught: %v", err)
	}
	// A throughput drop on a higher-is-better metric is a regression too.
	writeRec(t, cand, "BENCH_phase2.json", `{"release_cells_ns_per_op": 1000000}`)
	writeRec(t, base, "BENCH_serve.json", `{"queries_per_sec": 100000}`)
	writeRec(t, cand, "BENCH_serve.json", `{"queries_per_sec": 60000}`) // -40% q/s
	err = run([]string{"-baseline", base, "-candidate", cand})
	if err == nil || !strings.Contains(err.Error(), "queries_per_sec") {
		t.Fatalf("throughput regression not caught: %v", err)
	}
}

func TestBenchdiffSkipsMissingCandidateFiles(t *testing.T) {
	base, cand := t.TempDir(), t.TempDir()
	writeRec(t, base, "BENCH_phase2.json", `{"release_cells_ns_per_op": 1000000}`)
	writeRec(t, base, "BENCH_stream.json", `{"edges_per_sec": 1e6}`)
	writeRec(t, cand, "BENCH_phase2.json", `{"release_cells_ns_per_op": 900000}`)
	// BENCH_stream.json is produced by a different CI job; its absence
	// from the candidate dir must not fail the delta gate.
	if err := run([]string{"-baseline", base, "-candidate", cand}); err != nil {
		t.Fatalf("missing candidate file should skip, got: %v", err)
	}
}

func TestBenchdiffSkipsOnCPUMismatch(t *testing.T) {
	base, cand := t.TempDir(), t.TempDir()
	// A 60% regression, but the records were produced on machines with
	// different CPU counts: skipped, not failed.
	writeRec(t, base, "BENCH_load.json", `{"achieved_qps": 1000, "num_cpu": 8}`)
	writeRec(t, cand, "BENCH_load.json", `{"achieved_qps": 400, "num_cpu": 1}`)
	// A second comparable metric keeps compared > 0.
	writeRec(t, base, "BENCH_phase2.json", `{"release_cells_ns_per_op": 1000000}`)
	writeRec(t, cand, "BENCH_phase2.json", `{"release_cells_ns_per_op": 1000000}`)
	if err := run([]string{"-baseline", base, "-candidate", cand}); err != nil {
		t.Fatalf("cpu-count mismatch should skip, got: %v", err)
	}

	// Matching CPU counts compare normally — the same drop now fails.
	writeRec(t, cand, "BENCH_load.json", `{"achieved_qps": 400, "num_cpu": 8}`)
	err := run([]string{"-baseline", base, "-candidate", cand})
	if err == nil || !strings.Contains(err.Error(), "achieved_qps") {
		t.Fatalf("matching-cpu qps regression not caught: %v", err)
	}

	// One side missing the stamp keeps the pre-stamp always-compare
	// semantics.
	writeRec(t, base, "BENCH_load.json", `{"achieved_qps": 1000}`)
	err = run([]string{"-baseline", base, "-candidate", cand})
	if err == nil || !strings.Contains(err.Error(), "achieved_qps") {
		t.Fatalf("unstamped baseline must still compare: %v", err)
	}
}

func TestBenchdiffAllCPUSkippedPasses(t *testing.T) {
	base, cand := t.TempDir(), t.TempDir()
	// Every present metric skipped on cpu mismatch: warn and exit 0
	// (distinct from the zero-metric misconfiguration error).
	writeRec(t, base, "BENCH_load.json", `{"achieved_qps": 1000, "num_cpu": 8}`)
	writeRec(t, cand, "BENCH_load.json", `{"achieved_qps": 400, "num_cpu": 1}`)
	if err := run([]string{"-baseline", base, "-candidate", cand}); err != nil {
		t.Fatalf("all-skipped-on-cpu run must pass, got: %v", err)
	}
}

func TestBenchdiffSkipsOnLedgerBackendMismatch(t *testing.T) {
	base, cand := t.TempDir(), t.TempDir()
	// A 60% throughput drop, but the baseline ran against an in-memory
	// ledger and the candidate against a remote sequencer: different
	// workloads, skipped rather than failed.
	writeRec(t, base, "BENCH_serve.json", `{"queries_per_sec": 100000, "ledger_backend": "mem"}`)
	writeRec(t, cand, "BENCH_serve.json", `{"queries_per_sec": 40000, "ledger_backend": "remote"}`)
	// A second comparable metric keeps compared > 0.
	writeRec(t, base, "BENCH_phase2.json", `{"release_cells_ns_per_op": 1000000}`)
	writeRec(t, cand, "BENCH_phase2.json", `{"release_cells_ns_per_op": 1000000}`)
	if err := run([]string{"-baseline", base, "-candidate", cand}); err != nil {
		t.Fatalf("ledger-backend mismatch should skip, got: %v", err)
	}

	// Matching backends compare normally — the same drop now fails.
	writeRec(t, cand, "BENCH_serve.json", `{"queries_per_sec": 40000, "ledger_backend": "mem"}`)
	err := run([]string{"-baseline", base, "-candidate", cand})
	if err == nil || !strings.Contains(err.Error(), "queries_per_sec") {
		t.Fatalf("matching-backend regression not caught: %v", err)
	}

	// One side missing the stamp keeps the pre-stamp always-compare
	// semantics.
	writeRec(t, base, "BENCH_serve.json", `{"queries_per_sec": 100000}`)
	err = run([]string{"-baseline", base, "-candidate", cand})
	if err == nil || !strings.Contains(err.Error(), "queries_per_sec") {
		t.Fatalf("unstamped baseline must still compare: %v", err)
	}
}

func TestBenchdiffRefusesEmptyComparison(t *testing.T) {
	base, cand := t.TempDir(), t.TempDir()
	if err := run([]string{"-baseline", base, "-candidate", cand}); err == nil {
		t.Fatal("comparing zero metrics must fail (misconfigured paths)")
	}
	if err := run([]string{"-candidate", cand}); err == nil {
		t.Fatal("missing -baseline must fail")
	}
}
