package release

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bipartite"
	"repro/internal/hierarchy"
)

// Grouping is the published description of the Phase-1 group structure:
// which entity belongs to which group at every released level. Without it
// a data user cannot interpret the per-group histograms, so the paper's
// model treats the grouping itself as part of the disclosure (it is built
// privately, via the exponential mechanism, which is what Phase 1's
// budget buys).
//
// Representation mirrors the hierarchy's internals: one permutation per
// side plus, per level, the group boundaries over that permutation. The
// JSON form is therefore linear in the node count, not in the group
// count × node count.
type Grouping struct {
	MaxLevel  int     `json:"max_level"`
	LeftPerm  []int32 `json:"left_perm"`
	RightPerm []int32 `json:"right_perm"`
	// Levels holds boundaries per published level, coarse to fine.
	Levels []GroupingLevel `json:"levels"`

	// posL/posR are inverse permutations, built lazily on first use.
	posL, posR []int32
}

// GroupingLevel is one level's boundaries.
type GroupingLevel struct {
	Level       int     `json:"level"`
	LeftBounds  []int32 `json:"left_bounds"`
	RightBounds []int32 `json:"right_bounds"`
}

// GroupingFromTree extracts the grouping for the given levels.
func GroupingFromTree(t *hierarchy.Tree, levels []int) (*Grouping, error) {
	if t == nil {
		return nil, hierarchy.ErrNilGraph
	}
	lp, err := t.SidePermutation(bipartite.Left)
	if err != nil {
		return nil, err
	}
	rp, err := t.SidePermutation(bipartite.Right)
	if err != nil {
		return nil, err
	}
	g := &Grouping{MaxLevel: t.MaxLevel(), LeftPerm: lp, RightPerm: rp}
	sorted := append([]int(nil), levels...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	for _, lvl := range sorted {
		lb, err := t.SideBounds(lvl, bipartite.Left)
		if err != nil {
			return nil, err
		}
		rb, err := t.SideBounds(lvl, bipartite.Right)
		if err != nil {
			return nil, err
		}
		g.Levels = append(g.Levels, GroupingLevel{Level: lvl, LeftBounds: lb, RightBounds: rb})
	}
	return g, nil
}

// ErrBadGrouping reports an inconsistent grouping.
var ErrBadGrouping = errors.New("release: invalid grouping")

// Validate checks permutations and boundaries.
func (g *Grouping) Validate() error {
	for side, perm := range map[string][]int32{"left": g.LeftPerm, "right": g.RightPerm} {
		seen := make([]bool, len(perm))
		for _, v := range perm {
			if v < 0 || int(v) >= len(perm) || seen[v] {
				return fmt.Errorf("%w: %s permutation is not a bijection", ErrBadGrouping, side)
			}
			seen[v] = true
		}
	}
	for _, lvl := range g.Levels {
		if lvl.Level < 0 || lvl.Level > g.MaxLevel {
			return fmt.Errorf("%w: level %d outside [0,%d]", ErrBadGrouping, lvl.Level, g.MaxLevel)
		}
		for side, pair := range map[string]struct {
			bounds []int32
			n      int
		}{
			"left":  {lvl.LeftBounds, len(g.LeftPerm)},
			"right": {lvl.RightBounds, len(g.RightPerm)},
		} {
			b := pair.bounds
			if len(b) < 2 || b[0] != 0 || int(b[len(b)-1]) != pair.n {
				return fmt.Errorf("%w: level %d %s bounds do not span the side", ErrBadGrouping, lvl.Level, side)
			}
			for i := 1; i < len(b); i++ {
				if b[i] < b[i-1] {
					return fmt.Errorf("%w: level %d %s bounds decrease", ErrBadGrouping, lvl.Level, side)
				}
			}
		}
	}
	return nil
}

// GroupOf returns the group index of a node at a published level — the
// consumer-side "which neighbourhood is patient 123 in?" lookup.
func (g *Grouping) GroupOf(side bipartite.Side, node int32, level int) (int, error) {
	var perm []int32
	var pos *[]int32
	var boundsFor func(GroupingLevel) []int32
	switch side {
	case bipartite.Left:
		perm, pos = g.LeftPerm, &g.posL
		boundsFor = func(l GroupingLevel) []int32 { return l.LeftBounds }
	case bipartite.Right:
		perm, pos = g.RightPerm, &g.posR
		boundsFor = func(l GroupingLevel) []int32 { return l.RightBounds }
	default:
		return 0, fmt.Errorf("%w: invalid side %v", ErrBadGrouping, side)
	}
	if node < 0 || int(node) >= len(perm) {
		return 0, fmt.Errorf("%w: node %d outside side of %d", ErrBadGrouping, node, len(perm))
	}
	if *pos == nil {
		inv := make([]int32, len(perm))
		for p, n := range perm {
			inv[n] = int32(p)
		}
		*pos = inv
	}
	for _, lvl := range g.Levels {
		if lvl.Level != level {
			continue
		}
		bounds := boundsFor(lvl)
		p := (*pos)[node]
		idx := sort.Search(len(bounds), func(i int) bool { return bounds[i] > p }) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(bounds)-1 {
			idx = len(bounds) - 2
		}
		return idx, nil
	}
	return 0, fmt.Errorf("%w: level %d not published", ErrBadGrouping, level)
}

// NumGroups returns the per-side group count at a published level.
func (g *Grouping) NumGroups(level int) (int, error) {
	for _, lvl := range g.Levels {
		if lvl.Level == level {
			return len(lvl.LeftBounds) - 1, nil
		}
	}
	return 0, fmt.Errorf("%w: level %d not published", ErrBadGrouping, level)
}
