package release

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/bipartite"
)

func groupedRelease(t *testing.T) *Release {
	t.Helper()
	p, err := New(defaultBudget(), WithRounds(4), WithSeed(5),
		WithGrouping(true), WithCellHistograms(true))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := p.Run(testGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestGroupingPublished(t *testing.T) {
	t.Parallel()
	rel := groupedRelease(t)
	if rel.Grouping == nil {
		t.Fatal("grouping not published")
	}
	if err := rel.Grouping.Validate(); err != nil {
		t.Fatal(err)
	}
	// One GroupingLevel per released level.
	if len(rel.Grouping.Levels) != len(rel.Counts.Levels) {
		t.Errorf("grouping levels = %d, releases = %d", len(rel.Grouping.Levels), len(rel.Counts.Levels))
	}
}

func TestGroupingMatchesTree(t *testing.T) {
	t.Parallel()
	rel := groupedRelease(t)
	tree := rel.Tree()
	g := rel.Grouping
	// Every node's group per level matches the tree's assignment.
	for _, lvl := range rel.Levels() {
		for node := int32(0); node < int32(tree.Graph().NumLeft()); node += 7 {
			want, err := tree.SideGroupOfNode(lvl, bipartite.Left, node)
			if err != nil {
				t.Fatal(err)
			}
			got, err := g.GroupOf(bipartite.Left, node, lvl)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("level %d node %d: grouping says %d, tree says %d", lvl, node, got, want)
			}
		}
		k, err := g.NumGroups(lvl)
		if err != nil {
			t.Fatal(err)
		}
		kTree, err := tree.NumSideGroups(lvl)
		if err != nil {
			t.Fatal(err)
		}
		if k != kTree {
			t.Errorf("level %d groups = %d, want %d", lvl, k, kTree)
		}
	}
}

func TestGroupingErrors(t *testing.T) {
	t.Parallel()
	rel := groupedRelease(t)
	g := rel.Grouping
	if _, err := g.GroupOf(bipartite.Side(0), 0, 0); !errors.Is(err, ErrBadGrouping) {
		t.Errorf("invalid side: %v", err)
	}
	if _, err := g.GroupOf(bipartite.Left, -1, 0); !errors.Is(err, ErrBadGrouping) {
		t.Errorf("negative node: %v", err)
	}
	if _, err := g.GroupOf(bipartite.Left, 0, 99); !errors.Is(err, ErrBadGrouping) {
		t.Errorf("unpublished level: %v", err)
	}
	if _, err := g.NumGroups(99); !errors.Is(err, ErrBadGrouping) {
		t.Errorf("unpublished level groups: %v", err)
	}
}

func TestGroupingValidateCatchesCorruption(t *testing.T) {
	t.Parallel()
	rel := groupedRelease(t)
	g := rel.Grouping
	// Break the permutation.
	old := g.LeftPerm[0]
	g.LeftPerm[0] = g.LeftPerm[1]
	if err := g.Validate(); !errors.Is(err, ErrBadGrouping) {
		t.Errorf("corrupt perm: %v", err)
	}
	g.LeftPerm[0] = old
	// Break bounds.
	g.Levels[0].LeftBounds[0] = 5
	if err := g.Validate(); !errors.Is(err, ErrBadGrouping) {
		t.Errorf("corrupt bounds: %v", err)
	}
}

func TestGroupingSurvivesJSONRoundTrip(t *testing.T) {
	t.Parallel()
	rel := groupedRelease(t)
	var buf bytes.Buffer
	if err := rel.WriteJSON(&buf, false); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Grouping == nil {
		t.Fatal("grouping lost in round trip")
	}
	// Consumer-side lookup works on the loaded artifact.
	lvl := rel.Levels()[1]
	want, err := rel.Grouping.GroupOf(bipartite.Left, 3, lvl)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Grouping.GroupOf(bipartite.Left, 3, lvl)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("loaded grouping GroupOf = %d, want %d", got, want)
	}
}

func TestReadJSONRejectsCorruptGrouping(t *testing.T) {
	t.Parallel()
	rel := groupedRelease(t)
	rel.Grouping.Levels[0].LeftBounds[0] = 99
	var buf bytes.Buffer
	if err := rel.WriteJSON(&buf, false); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(&buf); !errors.Is(err, ErrBadArtifact) {
		t.Errorf("corrupt grouping accepted: %v", err)
	}
}
