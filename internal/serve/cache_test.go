package serve

import (
	"encoding/json"
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/accountant"
	"repro/internal/bipartite"
	"repro/internal/datagen"
	"repro/internal/dp"
)

// marginalBits snapshots a marginal as raw float bits (the slice aliases
// session scratch, and bit equality is the contract under test).
func marginalBits(t *testing.T, m []float64) []uint64 {
	t.Helper()
	out := make([]uint64, len(m))
	for i, v := range m {
		out[i] = math.Float64bits(v)
	}
	return out
}

// TestCacheHitSkipsLedgerAndPreservesStream: a replayed (stream, seq,
// query) returns the byte-identical answer without a second ledger
// debit, the hit still consumes the seq slot and advances the session
// stream — so a query AFTER the hit draws exactly what it would have
// drawn had the session computed everything itself.
func TestCacheHitSkipsLedgerAndPreservesStream(t *testing.T) {
	t.Parallel()
	_, ds := openTestDataset(t, testConfig())

	sess1 := ds.SessionAt(3)
	m0, err := sess1.Marginal(2, bipartite.Left)
	if err != nil {
		t.Fatal(err)
	}
	want0 := marginalBits(t, m0)
	m1, err := sess1.Marginal(2, bipartite.Right)
	if err != nil {
		t.Fatal(err)
	}
	want1 := marginalBits(t, m1)
	opsAfterCompute := len(ds.Ops())

	// Replay the same stream: seq 0 hits, seq 1 hits.
	sess2 := ds.SessionAt(3)
	h0, err := sess2.Marginal(2, bipartite.Left)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range marginalBits(t, h0) {
		if b != want0[i] {
			t.Fatalf("hit at seq 0 diverged at group %d", i)
		}
	}
	if sess2.Seq() != 1 {
		t.Fatalf("cache hit did not consume the seq slot: seq=%d", sess2.Seq())
	}
	h1, err := sess2.Marginal(2, bipartite.Right)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range marginalBits(t, h1) {
		if b != want1[i] {
			t.Fatalf("hit at seq 1 diverged at group %d (stream misaligned after a hit)", i)
		}
	}
	if got := len(ds.Ops()); got != opsAfterCompute {
		t.Fatalf("replays debited the ledger: %d ops, want %d", got, opsAfterCompute)
	}
	st := ds.CacheStats()
	if st.Hits != 2 || st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("cache stats = %+v, want 2 hits / 2 misses / 2 entries", st)
	}

	// A session that hits at seq 0 and then issues a NEW query at seq 1
	// must draw what an all-computing session would have drawn: compare
	// against a cache-disabled registry.
	ref := testConfig()
	ref.MaxCacheEntries = -1
	_, refDS := openTestDataset(t, ref)
	refSess := refDS.SessionAt(3)
	if _, err := refSess.Marginal(2, bipartite.Left); err != nil {
		t.Fatal(err)
	}
	refTop, err := refSess.TopK(1, bipartite.Right, 2)
	if err != nil {
		t.Fatal(err)
	}
	sess3 := ds.SessionAt(3)
	if _, err := sess3.Marginal(2, bipartite.Left); err != nil { // hit
		t.Fatal(err)
	}
	top, err := sess3.TopK(1, bipartite.Right, 2) // miss, fresh draw
	if err != nil {
		t.Fatal(err)
	}
	for i := range refTop {
		if top[i] != refTop[i] {
			t.Fatalf("post-hit query diverged from the no-cache reference: %v vs %v", top, refTop)
		}
	}
}

// TestCacheLevelViewHitReusesEngineBuffer: level-view hits rehydrate the
// cached histogram through the session's engine buffer (same backing
// array across queries), serialize byte-identically to the computed
// answer, and mutating a returned view cannot poison the cache.
func TestCacheLevelViewHitReusesEngineBuffer(t *testing.T) {
	t.Parallel()
	_, ds := openTestDataset(t, testConfig())

	computed, err := ds.SessionAt(9).ReleaseLevel(2)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(computed)
	if err != nil {
		t.Fatal(err)
	}

	sess := ds.SessionAt(9)
	hit, err := sess.ReleaseLevel(2)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(hit)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatal("cache-hit level view is not byte-identical to the computed view")
	}
	if len(ds.Ops()) != 1 {
		t.Fatalf("level-view replay debited the ledger: %d ops", len(ds.Ops()))
	}

	// Corrupt the returned (session-buffer) view, then hit again from a
	// fresh session: the cached copy must be unaffected.
	hit.Cells.Counts[0] = -1e9
	again, err := ds.SessionAt(9).ReleaseLevel(2)
	if err != nil {
		t.Fatal(err)
	}
	againJSON, err := json.Marshal(again)
	if err != nil {
		t.Fatal(err)
	}
	if string(againJSON) != string(wantJSON) {
		t.Fatal("mutating a returned view poisoned the cache")
	}
}

// TestCacheConcurrentReplaySingleDebit is the cache's -race contract: N
// concurrent sessions replaying one (stream, seq, query) key get
// byte-identical answers backed by exactly ONE ledger debit — the first
// session to arrive owns the computation, everyone else waits and reads.
func TestCacheConcurrentReplaySingleDebit(t *testing.T) {
	t.Parallel()
	_, ds := openTestDataset(t, testConfig())
	const replayers = 16

	results := make([][]uint64, replayers)
	errs := make([]error, replayers)
	var wg sync.WaitGroup
	for i := 0; i < replayers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := ds.SessionAt(5) // same pinned stream for everyone
			m, err := sess.Marginal(2, bipartite.Left)
			if err != nil {
				errs[i] = err
				return
			}
			bits := make([]uint64, len(m))
			for gi, v := range m {
				bits[gi] = math.Float64bits(v)
			}
			results[i] = bits
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("replayer %d: %v", i, err)
		}
	}
	for i := 1; i < replayers; i++ {
		for gi := range results[0] {
			if results[i][gi] != results[0][gi] {
				t.Fatalf("replayer %d diverged at group %d", i, gi)
			}
		}
	}
	if ops := ds.Ops(); len(ops) != 1 {
		t.Fatalf("%d concurrent replays produced %d ledger debits, want exactly 1", replayers, len(ops))
	}
	if st := ds.CacheStats(); st.Misses != 1 || st.Hits != replayers-1 {
		t.Fatalf("cache stats = %+v, want 1 miss / %d hits", st, replayers-1)
	}
}

// TestCacheReingestInvalidates: a re-ingest under the same name serves
// from a fresh cache — different data yields a different answer (and a
// fresh debit) at the same key, while identical data restores the exact
// bytes (the replay contract, now through a rebuilt cache).
func TestCacheReingestInvalidates(t *testing.T) {
	t.Parallel()
	reg, ds1 := openTestDataset(t, testConfig())
	m1, err := ds1.SessionAt(4).Marginal(2, bipartite.Left)
	if err != nil {
		t.Fatal(err)
	}
	want := marginalBits(t, m1)

	// Same name, different data.
	if err := reg.RemoveDataset("tiny"); err != nil {
		t.Fatal(err)
	}
	other := datagen.Config{
		Name: "serve-test-b", NumLeft: 120, NumRight: 150, NumEdges: 1800,
		LeftZipf: 1.9, RightZipf: 2.6, Seed: 6,
	}
	edges, nl, nr, err := datagen.EdgeList(other)
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := reg.AddDataset("tiny", bipartite.NewSliceSource(nl, nr, edges))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ds2.SessionAt(4).Marginal(2, bipartite.Left)
	if err != nil {
		t.Fatal(err)
	}
	if st := ds2.CacheStats(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("re-ingest served from a stale cache: stats %+v", st)
	}
	if len(ds2.Ops()) != 1 {
		t.Fatalf("re-ingested dataset's first query did not debit its ledger: %d ops", len(ds2.Ops()))
	}
	same := true
	for i, b := range marginalBits(t, m2) {
		if b != want[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different data under one name replayed the cached answer")
	}

	// Same name, identical data: fresh cache, byte-identical recompute.
	if err := reg.RemoveDataset("tiny"); err != nil {
		t.Fatal(err)
	}
	ds3, err := reg.AddDataset("tiny", testSource(t))
	if err != nil {
		t.Fatal(err)
	}
	m3, err := ds3.SessionAt(4).Marginal(2, bipartite.Left)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range marginalBits(t, m3) {
		if b != want[i] {
			t.Fatalf("identical re-ingest broke replay at group %d", i)
		}
	}
	if st := ds3.CacheStats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("identical re-ingest hit a stale cache: stats %+v", st)
	}
}

// TestCacheLRUBoundsAndEviction: the cache holds at most MaxCacheEntries
// completed answers; an evicted key recomputes (and re-debits) on its
// next replay, a resident key replays free.
func TestCacheLRUBoundsAndEviction(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.MaxCacheEntries = 2
	_, ds := openTestDataset(t, cfg)

	sess := ds.SessionAt(0)
	for _, level := range []int{0, 1, 2} { // three keys through a 2-entry cache
		if _, err := sess.Marginal(level, bipartite.Left); err != nil {
			t.Fatal(err)
		}
	}
	if st := ds.CacheStats(); st.Entries != 2 {
		t.Fatalf("cache holds %d entries, want 2 (bounded LRU)", st.Entries)
	}
	ops := len(ds.Ops())

	// seq 0 / level 0 was evicted (oldest): replaying it recomputes.
	replay := ds.SessionAt(0)
	if _, err := replay.Marginal(0, bipartite.Left); err != nil {
		t.Fatal(err)
	}
	if got := len(ds.Ops()); got != ops+1 {
		t.Fatalf("evicted key replayed without a debit: %d ops, want %d", got, ops+1)
	}
	// seq 2 / level 2 is resident: replaying it is free.
	replay2 := ds.SessionAt(0)
	replay2.seq = 2
	if _, err := replay2.Marginal(2, bipartite.Left); err != nil {
		t.Fatal(err)
	}
	if got := len(ds.Ops()); got != ops+1 {
		t.Fatalf("resident key debited the ledger on replay: %d ops", got)
	}
}

// TestCacheServesReplaysAfterExhaustion: once an answer is cached its DP
// cost is paid, so replays keep working even after the ledger refuses
// new queries — and a MISS under an exhausted ledger still fails closed
// without caching the error.
func TestCacheServesReplaysAfterExhaustion(t *testing.T) {
	t.Parallel()
	cfg := Config{
		Budget:   dp.Params{Epsilon: 0.02, Delta: 2e-6}, // exactly one marginal
		PerQuery: dp.Params{Epsilon: 0.02, Delta: 2e-6},
		Rounds:   5,
		Seed:     71,
	}
	_, ds := openTestDataset(t, cfg)

	m, err := ds.SessionAt(1).Marginal(2, bipartite.Left)
	if err != nil {
		t.Fatal(err)
	}
	want := marginalBits(t, m)

	// The budget is gone: a new key fails closed, twice (no error caching).
	for i := 0; i < 2; i++ {
		if _, err := ds.SessionAt(2).Marginal(2, bipartite.Left); !errors.Is(err, accountant.ErrBudgetExceeded) {
			t.Fatalf("attempt %d: new query on exhausted ledger: %v", i, err)
		}
	}
	// The cached key still replays byte-identically, for free.
	h, err := ds.SessionAt(1).Marginal(2, bipartite.Left)
	if err != nil {
		t.Fatalf("cached replay after exhaustion: %v", err)
	}
	for i, b := range marginalBits(t, h) {
		if b != want[i] {
			t.Fatalf("post-exhaustion replay diverged at group %d", i)
		}
	}
}

// TestCacheDisableFreesResidentEntries: shrinking or disabling the
// capacity through the registry (the HandlerOptions override path) must
// evict already-resident answers eagerly — after a disable no insertion
// would ever run again to trim them, stranding retained histograms for
// the dataset's lifetime.
func TestCacheDisableFreesResidentEntries(t *testing.T) {
	t.Parallel()
	reg, ds := openTestDataset(t, testConfig())
	sess := ds.SessionAt(2)
	for _, level := range []int{0, 1, 2} {
		if _, err := sess.Marginal(level, bipartite.Left); err != nil {
			t.Fatal(err)
		}
	}
	if st := ds.CacheStats(); st.Entries != 3 {
		t.Fatalf("resident entries = %d, want 3", st.Entries)
	}
	reg.setCacheCap(1)
	if st := ds.CacheStats(); st.Entries != 1 {
		t.Fatalf("after shrink to 1: entries = %d, want 1", st.Entries)
	}
	reg.setCacheCap(-1)
	if st := ds.CacheStats(); st.Entries != 0 {
		t.Fatalf("after disable: entries = %d, want 0", st.Entries)
	}
	// Disabled means every replay recomputes and debits.
	ops := ds.OpCount()
	replay := ds.SessionAt(2)
	if _, err := replay.Marginal(0, bipartite.Left); err != nil {
		t.Fatal(err)
	}
	if got := ds.OpCount(); got != ops+1 {
		t.Fatalf("disabled cache served a replay without a debit: %d ops, want %d", got, ops+1)
	}
}
