// WAL and snapshot frame codec for the durable ledger.
//
// Both files share one frame shape so replay and snapshot loading use a
// single parser:
//
//	u32 payloadLen | payload | u32 crc32c(payload)
//
// A WAL file is the 8-byte magic "GDPWAL1\n", a header frame, then op
// frames; a snapshot file is the magic "GDPSNP1\n", a header frame that
// additionally records the op count, then exactly that many op frames.
// Payloads open with a one-byte record type so a future version can mix
// record kinds without changing the framing.
//
// Torn-tail tolerance lives entirely in the parser: a frame whose
// length field, payload, or checksum does not fully verify is treated
// as the end of the valid prefix, never as data.
package accountant

import (
	"encoding/binary"
	"hash/crc32"
	"math"

	"repro/internal/dp"
)

const (
	walMagic  = "GDPWAL1\n"
	snapMagic = "GDPSNP1\n"
	// ledgerVersion is the on-disk format version, checked on replay.
	ledgerVersion = 1
	// maxWALFrame bounds a frame's payload: op labels are short audit
	// strings, so anything larger is corruption, not data.
	maxWALFrame = 1 << 20

	recHeader = 'H'
	recOp     = 'O'
)

// crcTable is the Castagnoli polynomial (hardware-accelerated CRC32).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Frame appends payload wrapped in the ledger frame envelope
// (u32 len | payload | u32 crc32c). Exported so the sequencer's
// replication stream ships the exact checksummed frame shape the WAL
// stores — a follower verifies the same checksum the disk replay does.
func Frame(dst, payload []byte) []byte { return frame(dst, payload) }

// NextFrame parses one frame at the head of b. ok is false when b does
// not hold a complete, checksum-valid frame (the torn-tail signal); n
// is the total frame length consumed when ok.
func NextFrame(b []byte) (payload []byte, n int, ok bool) { return nextFrame(b) }

// AppendOpPayload encodes one ledger op record payload (the bytes a
// WAL op frame wraps) — exported so replicated-log entries can embed
// the identical op shape the durable ledger persists.
func AppendOpPayload(dst []byte, seq uint64, cost dp.Params, label []byte) []byte {
	return appendOpPayload(dst, seq, cost, label)
}

// ParseOpPayload decodes one ledger op record payload. The label
// aliases p; copy to retain.
func ParseOpPayload(p []byte) (seq uint64, cost dp.Params, label []byte, ok bool) {
	op, ok := parseOpPayload(p)
	if !ok {
		return 0, dp.Params{}, nil, false
	}
	return op.seq, op.cost, op.label, true
}

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// frame wraps a fully assembled payload in the length/checksum envelope.
func frame(dst, payload []byte) []byte {
	dst = appendU32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return appendU32(dst, crc32.Checksum(payload, crcTable))
}

// nextFrame parses one frame at the head of b. ok is false when b does
// not hold a complete, checksum-valid frame — the torn-tail signal; n
// is the total frame length consumed when ok.
func nextFrame(b []byte) (payload []byte, n int, ok bool) {
	if len(b) < 4 {
		return nil, 0, false
	}
	plen := int(binary.LittleEndian.Uint32(b))
	if plen < 1 || plen > maxWALFrame || len(b) < 4+plen+4 {
		return nil, 0, false
	}
	payload = b[4 : 4+plen]
	sum := binary.LittleEndian.Uint32(b[4+plen:])
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, 0, false
	}
	return payload, 4 + plen + 4, true
}

// walHeader is the decoded header record of a WAL or snapshot file.
type walHeader struct {
	version uint32
	budget  dp.Params
	// opCount is the snapshot's op tally; always 0 in WAL headers.
	opCount uint64
}

// appendHeaderPayload encodes a header record. snapshot headers carry
// the op count; WAL headers pass 0 and a parser flag distinguishes the
// two widths.
func appendHeaderPayload(dst []byte, budget dp.Params, opCount uint64, snapshot bool) []byte {
	dst = append(dst, recHeader)
	dst = appendU32(dst, ledgerVersion)
	dst = appendF64(dst, budget.Epsilon)
	dst = appendF64(dst, budget.Delta)
	if snapshot {
		dst = appendU64(dst, opCount)
	}
	return dst
}

// parseHeaderPayload decodes a header record payload.
func parseHeaderPayload(p []byte, snapshot bool) (walHeader, bool) {
	want := 1 + 4 + 8 + 8
	if snapshot {
		want += 8
	}
	if len(p) != want || p[0] != recHeader {
		return walHeader{}, false
	}
	h := walHeader{
		version: binary.LittleEndian.Uint32(p[1:]),
		budget: dp.Params{
			Epsilon: math.Float64frombits(binary.LittleEndian.Uint64(p[5:])),
			Delta:   math.Float64frombits(binary.LittleEndian.Uint64(p[13:])),
		},
	}
	if snapshot {
		h.opCount = binary.LittleEndian.Uint64(p[21:])
	}
	return h, true
}

// walOp is one decoded op record.
type walOp struct {
	seq   uint64
	cost  dp.Params
	label []byte // aliases the parsed buffer; copy to retain
}

// appendOpPayload encodes one op record.
func appendOpPayload(dst []byte, seq uint64, cost dp.Params, label []byte) []byte {
	dst = append(dst, recOp)
	dst = appendU64(dst, seq)
	dst = appendF64(dst, cost.Epsilon)
	dst = appendF64(dst, cost.Delta)
	dst = appendU32(dst, uint32(len(label)))
	return append(dst, label...)
}

// parseOpPayload decodes one op record payload.
func parseOpPayload(p []byte) (walOp, bool) {
	const fixed = 1 + 8 + 8 + 8 + 4
	if len(p) < fixed || p[0] != recOp {
		return walOp{}, false
	}
	labelLen := int(binary.LittleEndian.Uint32(p[25:]))
	if len(p) != fixed+labelLen {
		return walOp{}, false
	}
	return walOp{
		seq: binary.LittleEndian.Uint64(p[1:]),
		cost: dp.Params{
			Epsilon: math.Float64frombits(binary.LittleEndian.Uint64(p[9:])),
			Delta:   math.Float64frombits(binary.LittleEndian.Uint64(p[17:])),
		},
		label: p[fixed:],
	}, true
}

// appendOpFrame encodes one op as a complete frame, reusing scratch.
func appendOpFrame(dst, scratch []byte, seq uint64, cost dp.Params, label []byte) ([]byte, []byte) {
	scratch = appendOpPayload(scratch[:0], seq, cost, label)
	return frame(dst, scratch), scratch
}
