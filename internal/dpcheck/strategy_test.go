package dpcheck

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/release"
	"repro/internal/rng"
)

// TestRegisteredStrategiesNoiseWithinBudget audits every registered
// release strategy's Phase-2 cell mechanism: the exact noise family the
// strategy serves (Gaussian, Laplace, or geometric), run on adjacent
// counts at sensitivity 1, must show empirical privacy loss at or below
// its claimed ε. This is the gate that keeps a newly registered
// composition from shipping an under-noised mechanism.
func TestRegisteredStrategiesNoiseWithinBudget(t *testing.T) {
	t.Parallel()
	for _, name := range release.Strategies.Names() {
		name := name
		strat, err := release.Strategies.Resolve(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			auditMechanism(t, strat.Noise.Cells)
			if strat.Noise.Count != strat.Noise.Cells {
				auditMechanism(t, strat.Noise.Count)
			}
		})
	}
}

// auditMechanism estimates the empirical ε of one noise mechanism on
// adjacent counts (100 vs 101, sensitivity 1) and checks it against the
// claimed budget: never meaningfully above, and for the pure-ε families
// (whose loss is tight at ε) not implausibly below either.
func auditMechanism(t *testing.T, mech core.NoiseMechanism) {
	t.Helper()
	eps := 1.0
	if mech == core.MechGaussian {
		// Classical Gaussian calibration is defined for ε < 1 only.
		eps = 0.8
	}
	var (
		res Result
		err error
	)
	switch mech {
	case core.MechGaussian:
		p := dp.Params{Epsilon: eps, Delta: 1e-5}
		sigma, serr := dp.ClassicalGaussianSigma(p, 1)
		if serr != nil {
			t.Fatal(serr)
		}
		res, err = EstimateEpsilon(
			func(src *rng.Source) float64 { return 100 + src.NormalSigma(sigma) },
			func(src *rng.Source) float64 { return 101 + src.NormalSigma(sigma) },
			Config{Seed: 51},
		)
	case core.MechLaplace:
		mk := func(value float64) MechanismFunc {
			return func(src *rng.Source) float64 {
				m, merr := dp.NewLaplace(eps, 1, src)
				if merr != nil {
					panic(merr)
				}
				return m.Perturb(value)
			}
		}
		res, err = EstimateEpsilon(mk(100), mk(101), Config{Seed: 52})
	case core.MechGeometric:
		mk := func(value int64) DiscreteMechanismFunc {
			return func(src *rng.Source) int64 {
				m, merr := dp.NewGeometric(eps, 1, src)
				if merr != nil {
					panic(merr)
				}
				return m.PerturbInt(value)
			}
		}
		res, err = EstimateEpsilonDiscrete(mk(100), mk(101), Config{Seed: 53})
	default:
		t.Fatalf("unknown mechanism %v", mech)
	}
	if err != nil {
		t.Fatalf("%v: %v", mech, err)
	}
	if res.EpsilonHat > eps*1.3 {
		t.Errorf("%v: empirical loss %v exceeds ε=%v", mech, res.EpsilonHat, eps)
	}
	if mech != core.MechGaussian && res.EpsilonHat < eps*0.5 {
		t.Errorf("%v: empirical loss %v implausibly low for a tight pure-ε mechanism", mech, res.EpsilonHat)
	}
}

// TestCommunityRandomizedResponseWithinBudget audits the community
// partitioner's k-ary randomized response through the exported
// production draw: two adjacent inputs are the same node with true
// community 0 vs 1; the released assignment's worst-case likelihood
// ratio must sit at e^ε (the mechanism is tight) and never above.
func TestCommunityRandomizedResponseWithinBudget(t *testing.T) {
	t.Parallel()
	const k = 8
	for _, eps := range []float64{0.5, 1, 2} {
		eps := eps
		t.Run(fmt.Sprintf("eps=%v", eps), func(t *testing.T) {
			t.Parallel()
			mk := func(rank uint32) DiscreteMechanismFunc {
				return func(src *rng.Source) int64 {
					return int64(release.RandomizedRank(rank, k, eps, src))
				}
			}
			res, err := EstimateEpsilonDiscrete(mk(0), mk(1), Config{Seed: 61})
			if err != nil {
				t.Fatal(err)
			}
			if res.EpsilonHat > eps*1.25 {
				t.Errorf("k-RR empirical loss %v exceeds ε=%v", res.EpsilonHat, eps)
			}
			if res.EpsilonHat < eps*0.5 {
				t.Errorf("k-RR empirical loss %v implausibly low (claimed tight ε=%v)", res.EpsilonHat, eps)
			}
		})
	}
}

// TestCommunityRandomizedResponseDegenerate pins the K ≤ 1 edge: a
// single-community side is released unchanged without consuming
// randomness (no privacy is spent on a constant).
func TestCommunityRandomizedResponseDegenerate(t *testing.T) {
	t.Parallel()
	src := rng.New(1)
	before := src.Uint64()
	src = rng.New(1)
	if got := release.RandomizedRank(0, 1, 0.5, src); got != 0 {
		t.Errorf("k=1 rank = %d, want 0", got)
	}
	if src.Uint64() != before {
		t.Error("k=1 draw consumed randomness")
	}
}
