package release

import (
	"bytes"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/datagen"
	"repro/internal/dp"
	"repro/internal/hierarchy"
)

// TestRunFromEdgesMatchesRun pins the streamed pipeline end to end: the
// full artifact — dataset stats, profiles, noisy counts, cell histograms,
// grouping, audit-bearing costs — must serialize byte-identically whether
// Phase 1 ran over the materialized graph or over an edge stream of the
// same associations.
func TestRunFromEdgesMatchesRun(t *testing.T) {
	t.Parallel()
	g, err := datagen.Generate(datagen.Config{
		Name: "stream-release", NumLeft: 300, NumRight: 420, NumEdges: 4000,
		LeftZipf: 1.9, RightZipf: 2.8, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	newPipeline := func() *Pipeline {
		p, err := New(dp.Params{Epsilon: 0.6, Delta: 1e-5},
			WithRounds(6),
			WithSeed(42),
			WithPhase1Epsilon(0.2),
			WithCellHistograms(true),
			WithConsistency(true),
			WithGrouping(true),
		)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	relMem, err := newPipeline().Run(g)
	if err != nil {
		t.Fatal(err)
	}
	relStream, err := newPipeline().RunFromEdges(bipartite.NewGraphSource(g))
	if err != nil {
		t.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := relMem.WriteJSON(&a, true); err != nil {
		t.Fatal(err)
	}
	if err := relStream.WriteJSON(&b, true); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("streamed release differs from in-memory release:\n--- in-memory ---\n%s\n--- streamed ---\n%s",
			a.String(), b.String())
	}
	if relStream.Tree().Graph() != nil {
		t.Fatal("streamed release unexpectedly materialized a graph")
	}
}

// TestRunFromEdgesWithBuilder: a caller-retained Builder serves the
// streamed path too, and stays bit-identical to the throwaway path.
func TestRunFromEdgesWithBuilder(t *testing.T) {
	t.Parallel()
	g, err := datagen.Generate(datagen.DBLPTiny(31))
	if err != nil {
		t.Fatal(err)
	}
	builder := hierarchy.NewBuilder()
	defer builder.Close()
	p1, err := New(dp.Params{Epsilon: 0.5, Delta: 1e-5}, WithRounds(5), WithSeed(7), WithBuilder(builder))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := New(dp.Params{Epsilon: 0.5, Delta: 1e-5}, WithRounds(5), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	for i := 0; i < 2; i++ { // twice: the second run exercises retained scratch
		a.Reset()
		b.Reset()
		withBuilder, err := p1.RunFromEdges(bipartite.NewGraphSource(g))
		if err != nil {
			t.Fatal(err)
		}
		throwaway, err := p2.RunFromEdges(bipartite.NewGraphSource(g))
		if err != nil {
			t.Fatal(err)
		}
		if err := withBuilder.WriteJSON(&a, true); err != nil {
			t.Fatal(err)
		}
		if err := throwaway.WriteJSON(&b, true); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("run %d: retained-Builder release differs from throwaway", i)
		}
	}
}

// TestRunFromEdgesNilSource rejects a nil source up front.
func TestRunFromEdgesNilSource(t *testing.T) {
	t.Parallel()
	p, err := New(dp.Params{Epsilon: 0.5, Delta: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunFromEdges(nil); err != ErrNilSource {
		t.Fatalf("got %v, want ErrNilSource", err)
	}
}
