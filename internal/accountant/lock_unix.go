//go:build unix

package accountant

import (
	"errors"
	"os"
	"syscall"
)

// lockLedgerFile takes a non-blocking exclusive flock on the WAL so two
// live processes can never interleave appends to one ledger (each would
// replay only its own view of the budget). The kernel releases the lock
// when the holding process dies — including SIGKILL — so a crashed
// server never strands its ledgers.
func lockLedgerFile(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, syscall.EWOULDBLOCK):
		return ErrLedgerLocked
	case errors.Is(err, syscall.ENOTSUP), errors.Is(err, syscall.ENOSYS):
		// Filesystems without flock (some network mounts): degrade to
		// unlocked operation rather than refusing durability entirely.
		return nil
	}
	return err
}
