package dp

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNewExponentialValidation(t *testing.T) {
	t.Parallel()
	src := rng.New(1)
	if _, err := NewExponential(0, 1, src); !errors.Is(err, ErrEpsilon) {
		t.Errorf("eps=0: %v", err)
	}
	if _, err := NewExponential(1, 0, src); !errors.Is(err, ErrSensitivity) {
		t.Errorf("sens=0: %v", err)
	}
	if _, err := NewExponential(1, 1, nil); !errors.Is(err, ErrNilSource) {
		t.Errorf("nil src: %v", err)
	}
}

func TestExponentialEmptyDomain(t *testing.T) {
	t.Parallel()
	m, err := NewExponential(1, 1, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Select(nil); !errors.Is(err, ErrEmptyDomain) {
		t.Errorf("Select(nil): %v", err)
	}
	if _, _, err := m.SelectLSE(nil); !errors.Is(err, ErrEmptyDomain) {
		t.Errorf("SelectLSE(nil): %v", err)
	}
	if _, err := m.Probabilities(nil); !errors.Is(err, ErrEmptyDomain) {
		t.Errorf("Probabilities(nil): %v", err)
	}
}

func TestExponentialRejectsNaNUtility(t *testing.T) {
	t.Parallel()
	m, err := NewExponential(1, 1, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Select([]float64{0, math.NaN()}); err == nil {
		t.Error("Select accepted NaN utility")
	}
	if _, err := m.Probabilities([]float64{math.NaN()}); err == nil {
		t.Error("Probabilities accepted NaN utility")
	}
}

func TestProbabilitiesExactSoftmax(t *testing.T) {
	t.Parallel()
	m, err := NewExponential(2, 1, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	utilities := []float64{0, 1, 2}
	probs, err := m.Probabilities(utilities)
	if err != nil {
		t.Fatal(err)
	}
	// scale = eps/(2Δu) = 1; softmax of (0,1,2).
	var norm float64
	want := make([]float64, 3)
	for i, u := range utilities {
		want[i] = math.Exp(u)
		norm += want[i]
	}
	var sum float64
	for i := range probs {
		want[i] /= norm
		if math.Abs(probs[i]-want[i]) > 1e-12 {
			t.Errorf("probs[%d] = %v, want %v", i, probs[i], want[i])
		}
		sum += probs[i]
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestProbabilitiesStableForHugeUtilities(t *testing.T) {
	t.Parallel()
	m, err := NewExponential(1, 1, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	probs, err := m.Probabilities([]float64{1e6, 1e6 - 2, -1e6})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range probs {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("probs[%d] = %v not finite", i, p)
		}
	}
	if probs[0] < probs[1] || probs[1] < probs[2] {
		t.Errorf("probabilities not ordered by utility: %v", probs)
	}
}

func TestSelectMatchesProbabilities(t *testing.T) {
	t.Parallel()
	m, err := NewExponential(1.5, 2, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	utilities := []float64{0, 3, 5, 1}
	want, err := m.Probabilities(utilities)
	if err != nil {
		t.Fatal(err)
	}
	const n = 400000
	counts := make([]int, len(utilities))
	for i := 0; i < n; i++ {
		idx, err := m.Select(utilities)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	for i := range utilities {
		got := float64(counts[i]) / n
		if math.Abs(got-want[i]) > 0.01 {
			t.Errorf("candidate %d: empirical %v, want %v", i, got, want[i])
		}
	}
}

func TestSelectLSEMatchesProbabilities(t *testing.T) {
	t.Parallel()
	m, err := NewExponential(1, 1, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	utilities := []float64{2, 2, 0}
	want, err := m.Probabilities(utilities)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300000
	counts := make([]int, len(utilities))
	for i := 0; i < n; i++ {
		idx, probs, err := m.SelectLSE(utilities)
		if err != nil {
			t.Fatal(err)
		}
		if len(probs) != len(utilities) {
			t.Fatal("SelectLSE returned wrong probability vector length")
		}
		counts[idx]++
	}
	for i := range utilities {
		got := float64(counts[i]) / n
		if math.Abs(got-want[i]) > 0.01 {
			t.Errorf("candidate %d: empirical %v, want %v", i, got, want[i])
		}
	}
}

// TestSelectFastMatchesSelectLSE asserts the allocation-free sampler
// makes exactly the choices SelectLSE makes given identical RNG states —
// the two share the inverse-CDF arithmetic operation for operation.
func TestSelectFastMatchesSelectLSE(t *testing.T) {
	t.Parallel()
	mFast, err := NewExponential(1.2, 1, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	mLSE, err := NewExponential(1.2, 1, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(22)
	var scratch []float64
	for trial := 0; trial < 2000; trial++ {
		utilities := make([]float64, 2+r.Intn(40))
		for i := range utilities {
			utilities[i] = -float64(r.Intn(50))
		}
		var fastIdx int
		fastIdx, scratch, err = mFast.SelectFast(utilities, scratch)
		if err != nil {
			t.Fatal(err)
		}
		lseIdx, probs, err := mLSE.SelectLSE(utilities)
		if err != nil {
			t.Fatal(err)
		}
		if fastIdx != lseIdx {
			t.Fatalf("trial %d: SelectFast chose %d, SelectLSE chose %d", trial, fastIdx, lseIdx)
		}
		for i := range probs {
			if scratch[i] != probs[i] {
				t.Fatalf("trial %d: probability %d differs: %v vs %v", trial, i, scratch[i], probs[i])
			}
		}
	}
}

func TestSelectFastErrors(t *testing.T) {
	t.Parallel()
	m, err := NewExponential(1, 1, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.SelectFast(nil, nil); !errors.Is(err, ErrEmptyDomain) {
		t.Errorf("SelectFast(nil): %v", err)
	}
	if _, _, err := m.SelectFast([]float64{0, math.NaN()}, nil); err == nil {
		t.Error("SelectFast accepted NaN utility")
	}
}

func TestSelectSingleCandidate(t *testing.T) {
	t.Parallel()
	m, err := NewExponential(1, 1, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := m.Select([]float64{42})
	if err != nil || idx != 0 {
		t.Errorf("Select single = (%d, %v), want (0, nil)", idx, err)
	}
}

// TestExponentialPrivacyRatio verifies the defining DP inequality on a
// tiny domain: perturbing one utility by at most Δu changes any
// candidate's probability by a factor of at most e^ε.
func TestExponentialPrivacyRatio(t *testing.T) {
	t.Parallel()
	const eps = 0.8
	const sens = 1.0
	m, err := NewExponential(eps, sens, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	u1 := []float64{1, 4, 2, 2.5}
	u2 := append([]float64(nil), u1...)
	u2[1] -= sens // adjacent database shifts one utility by Δu
	p1, err := m.Probabilities(u1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.Probabilities(u2)
	if err != nil {
		t.Fatal(err)
	}
	bound := math.Exp(eps)
	for i := range p1 {
		ratio := p1[i] / p2[i]
		if ratio > bound*(1+1e-9) || 1/ratio > bound*(1+1e-9) {
			t.Errorf("candidate %d: ratio %v exceeds e^ε=%v", i, ratio, bound)
		}
	}
}
