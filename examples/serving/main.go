// Serving: run the multi-tenant disclosure registry in-process — ingest
// two datasets from edge streams (no graph ever resident), answer
// level/marginal/top-k queries from concurrent sessions, and watch the
// per-dataset privacy ledger refuse queries once the budget is gone.
//
// The same registry serves over HTTP through cmd/gdpserve; this example
// drives it through the library facade.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. A registry with a per-dataset budget: every dataset added gets
	//    its own (ε, δ) ledger; each marginal/top-k query costs PerQuery
	//    and a level view (count + histogram) costs twice that.
	reg, err := repro.OpenRegistry(repro.ServeConfig{
		Budget:   repro.Params{Epsilon: 1.0, Delta: 1e-4},
		PerQuery: repro.Params{Epsilon: 0.05, Delta: 5e-6},
		Rounds:   6,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Close()

	// 2. Cold-start two tenants' datasets from synthetic edge streams —
	//    the streamed two-pass build never materializes the graphs.
	for _, preset := range []string{repro.PresetDBLPTiny, repro.PresetPharmacy} {
		cfg, err := repro.GenerateDataset(preset, 1)
		if err != nil {
			log.Fatal(err)
		}
		ds, err := reg.AddDataset(preset, repro.NewGraphEdgeSource(cfg))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ingested %q: %s\n", ds.Name(), ds.Stats())
	}

	// 3. Query one dataset from a session. Pinned stream ids make the
	//    answers replayable under this seed.
	ds, err := reg.Dataset(repro.PresetDBLPTiny)
	if err != nil {
		log.Fatal(err)
	}
	sess := ds.SessionAt(1)
	view, err := sess.ReleaseLevel(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("level 3: noisy count %.1f over %d histogram cells\n",
		view.Count.NoisyCount, len(view.Cells.Counts))

	top, err := sess.TopK(3, repro.Left, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("heaviest left groups at level 3:", top)

	// 4. Drain the ledger: keep querying until the dataset refuses.
	served := 0
	for {
		if _, err := sess.Marginal(2, repro.Right); err != nil {
			if errors.Is(err, repro.ErrBudgetExhausted) {
				break
			}
			log.Fatal(err)
		}
		served++
	}
	fmt.Printf("served %d more marginals before exhaustion; remaining ε %.3f\n",
		served, ds.Remaining().Epsilon)
	fmt.Print(ds.AuditReport())
}
