// Package experiments regenerates the paper's evaluation (Figure 1) and
// the ablations listed in DESIGN.md §5 (A1–A6). Every experiment is a
// named Runner producing a Report of tables, series and ASCII figures;
// cmd/gdpbench and the repository benchmarks drive this registry.
package experiments

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bipartite"
	"repro/internal/datagen"
	"repro/internal/hierarchy"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/rng"
)

// Options configures a registry run.
type Options struct {
	// Preset names the datagen preset; empty selects dblp-scaled (or
	// dblp-tiny in Quick mode).
	Preset string
	// Seed drives all randomness.
	Seed uint64
	// Trials overrides the per-experiment default trial count when > 0.
	Trials int
	// Quick shrinks datasets and grids for fast runs (used by tests).
	Quick bool
	// Workers bounds the experiment's total parallelism: independent
	// trials fan out across this many lanes (each trial owns a pre-split
	// RNG stream and results reduce in trial order), and experiments
	// without a trial dimension spend it on Phase-1 build parallelism
	// instead. Results are bit-identical for any value.
	Workers int
}

// EffectivePreset returns the dataset preset a run with these options
// actually uses: the explicit Preset, or the quick/full default.
func (o Options) EffectivePreset() string {
	if o.Preset != "" {
		return o.Preset
	}
	if o.Quick {
		return datagen.PresetDBLPTiny
	}
	return datagen.PresetDBLPScaled
}

// dataset resolves the configured dataset.
func (o Options) dataset() (datagen.Config, error) {
	return datagen.ByName(o.EffectivePreset(), o.Seed+1)
}

// trials returns the effective trial count.
func (o Options) trials(def, quickDef int) int {
	if o.Trials > 0 {
		return o.Trials
	}
	if o.Quick {
		return quickDef
	}
	return def
}

// Report is an experiment's rendered output.
type Report struct {
	// Name is the registry key; Title describes the experiment.
	Name  string `json:"name"`
	Title string `json:"title"`
	// Tables holds the numeric results.
	Tables []metrics.Table `json:"tables"`
	// Series holds the plottable curves (one set per figure).
	Series []metrics.Series `json:"series"`
	// Figures holds ASCII renderings of the series.
	Figures []string `json:"figures"`
	// Notes records paper-vs-measured commentary.
	Notes []string `json:"notes"`
}

// Runner executes one experiment.
type Runner func(Options) (*Report, error)

// ErrUnknownExperiment reports a name missing from the registry.
var ErrUnknownExperiment = errors.New("experiments: unknown experiment")

// registry maps experiment names to runners. Populated in init-free style
// via the literal below; keys match DESIGN.md §5.
var registry = map[string]Runner{
	"figure1":      RunFigure1Registry,
	"budget-split": RunBudgetSplit,
	"calibration":  RunCalibration,
	"partitioner":  RunPartitioner,
	"adjacency":    RunAdjacency,
	"delta":        RunDeltaSweep,
	"scale":        RunScale,
	"mechanism":    RunMechanism,
	"topk":         RunTopK,
	"consistency":  RunConsistency,
}

// Names lists the registered experiments in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Run executes the named experiment.
func Run(name string, opts Options) (*Report, error) {
	runner, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownExperiment, name, Names())
	}
	return runner(opts)
}

// epsGrid returns the εg sweep: the paper's 0.1..1 range.
func epsGrid(quick bool) []float64 {
	if quick {
		return []float64{0.1, 0.5, 0.999}
	}
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.999}
}

// paperRounds is the paper's nine specialization rounds; quick runs use
// fewer so tiny graphs still have multi-record cells.
func rounds(quick bool) int {
	if quick {
		return 6
	}
	return 9
}

// levelsFor returns the released levels: the paper's I9,0..I9,7 (root and
// root−1 are withheld).
func levelsFor(r int) []int {
	hi := r - 2
	if hi < 0 {
		hi = 0
	}
	levels := make([]int, 0, hi+1)
	for lvl := 0; lvl <= hi; lvl++ {
		levels = append(levels, lvl)
	}
	return levels
}

// buildTrialTree generates Phase 1 once for a trial: a private
// exponential-mechanism hierarchy when phase1Eps > 0, else the balanced
// baseline. workers parallelizes the build without changing its output.
// b retains scratch across the caller's builds (one Builder per trial
// lane, or one shared Builder in a serial sweep).
func buildTrialTree(b *hierarchy.Builder, g *bipartite.Graph, rnds int, phase1Eps float64, workers int, src *rng.Source) (*hierarchy.Tree, error) {
	var bis partition.Bisector
	if phase1Eps > 0 {
		eb, err := partition.NewExpMechBisector(phase1Eps, src)
		if err != nil {
			return nil, err
		}
		bis = eb
	} else {
		bis = partition.BalancedBisector{}
	}
	return b.Build(g, hierarchy.Options{Rounds: rnds, Bisector: bis, Workers: workers})
}

// buildTrialTreeFromEdges is buildTrialTree over a chunked edge stream:
// the hierarchy is specialized by hierarchy.BuildFromEdges without a
// materialized Graph. Trees are bit-identical to the graph path for the
// same edges, so experiments can mix the two freely.
func buildTrialTreeFromEdges(b *hierarchy.Builder, src bipartite.EdgeSource, rnds int, phase1Eps float64, workers int, rsrc *rng.Source) (*hierarchy.Tree, error) {
	var bis partition.Bisector
	if phase1Eps > 0 {
		eb, err := partition.NewExpMechBisector(phase1Eps, rsrc)
		if err != nil {
			return nil, err
		}
		bis = eb
	} else {
		bis = partition.BalancedBisector{}
	}
	return b.BuildFromEdges(src, hierarchy.Options{Rounds: rnds, Bisector: bis, Workers: workers})
}
