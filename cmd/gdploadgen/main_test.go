package main

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro"
)

func TestParseMix(t *testing.T) {
	m, err := parseMix("marginal=3,topk=1")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.marginal-0.75) > 1e-12 || math.Abs(m.topk-0.25) > 1e-12 || m.level != 0 {
		t.Fatalf("mix = %+v", m)
	}
	for _, bad := range []string{"", "marginal", "marginal=x", "bogus=1", "marginal=0,topk=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

func TestMembersPerGroup(t *testing.T) {
	cases := []struct {
		h    float64
		want int
	}{{0, 1}, {0.5, 2}, {0.75, 4}, {0.9, 10}, {0.99, 16}, {1, 16}}
	for _, c := range cases {
		if got := membersPerGroup(c.h); got != c.want {
			t.Errorf("membersPerGroup(%v) = %d, want %d", c.h, got, c.want)
		}
	}
}

// TestHdrHist checks the log-linear histogram's bucketing error bound
// and percentile walk.
func TestHdrHist(t *testing.T) {
	// Reconstruction error is bounded by half a bucket width: exact
	// below 64, ≤ 1/32 relative above.
	for _, v := range []uint64{0, 1, 63, 64, 65, 127, 128, 1000, 12345, 1 << 20, 1<<40 + 9} {
		got := hdrValue(hdrIndex(v))
		if v < 64 {
			if got != v {
				t.Errorf("hdrValue(hdrIndex(%d)) = %d, want exact", v, got)
			}
			continue
		}
		if relErr := math.Abs(float64(got)-float64(v)) / float64(v); relErr > 1.0/32 {
			t.Errorf("value %d reconstructed as %d (rel err %v)", v, got, relErr)
		}
	}

	h := newHdrHist()
	for v := uint64(1); v <= 1000; v++ {
		h.add(v)
	}
	if p50 := h.percentile(0.50); math.Abs(float64(p50)-500) > 500.0/32+1 {
		t.Errorf("p50 = %d, want ~500", p50)
	}
	if p99 := h.percentile(0.99); math.Abs(float64(p99)-990) > 990.0/32+1 {
		t.Errorf("p99 = %d, want ~990", p99)
	}
	if h.max.Load() != 1000 {
		t.Errorf("max = %d, want 1000", h.max.Load())
	}
}

// TestLoadRunEndToEnd stands up an in-process server, runs a short
// fixed-QPS open-loop pass and checks the run completes with zero
// errors, writes BENCH_load.json, and that the replay scheme produced
// server-side cache hits.
func TestLoadRunEndToEnd(t *testing.T) {
	g, err := repro.GenerateDataset(repro.PresetDBLPTiny, 3)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := repro.OpenRegistry(repro.ServeConfig{
		Budget:   repro.Params{Epsilon: 1000, Delta: 1e-3},
		PerQuery: repro.Params{Epsilon: 0.05, Delta: 1e-7},
		Rounds:   5,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if _, err := reg.AddDataset("load", repro.NewGraphEdgeSource(g)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(repro.NewServeHandler(reg))
	defer srv.Close()

	benchPath := filepath.Join(t.TempDir(), "BENCH_load.json")
	var out bytes.Buffer
	err = run([]string{
		"-addr", srv.URL,
		"-dataset", "load",
		"-qps", "50",
		"-duration", "2s",
		"-sessions", "2",
		"-hit-ratio", "0.75",
		"-level-max", "3",
		"-seed", "9",
		"-benchjson", benchPath,
		"-timeout", "10s",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}

	blob, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d, want 0\n%s", rep.Errors, out.String())
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.AchievedQPS <= 0 {
		t.Errorf("achieved_qps = %v", rep.AchievedQPS)
	}
	if rep.CacheHits == 0 {
		t.Errorf("hit-ratio 0.75 produced no cache hits (misses=%d)\n%s",
			rep.CacheMisses, out.String())
	}
	if rep.GOMAXPROCS < 1 || rep.NumCPU < 1 {
		t.Errorf("CPU stamp missing: gomaxprocs=%d num_cpu=%d", rep.GOMAXPROCS, rep.NumCPU)
	}
	if rep.Members != 4 {
		t.Errorf("members_per_session = %d, want 4 at hit-ratio 0.75", rep.Members)
	}
	if rep.DurationS < 1.5 || rep.DurationS > 30 {
		t.Errorf("duration_s = %v", rep.DurationS)
	}
}

// TestRunRejectsBadFlags covers flag validation without a server.
func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-qps", "0"},
		{"-qps", "-5"},
		{"-duration", "0s"},
		{"-sessions", "0"},
		{"-hit-ratio", "1.5"},
		{"-level-max", "0"},
		{"-k-max", "0"},
		{"-mix", "nope=1"},
	} {
		if _, err := parseArgs(args); err == nil {
			t.Errorf("parseArgs(%v) accepted", args)
		}
	}
}
