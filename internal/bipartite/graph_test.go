package bipartite

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// buildTestGraph returns the small fixture used across this file:
//
//	left 0 — right 0, 1
//	left 1 — right 1
//	left 2 — right 0, 1, 2
func buildTestGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdges(3, 3, []Edge{
		{0, 0}, {0, 1},
		{1, 1},
		{2, 0}, {2, 1}, {2, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSideString(t *testing.T) {
	t.Parallel()
	if Left.String() != "left" || Right.String() != "right" {
		t.Errorf("unexpected side names %q %q", Left, Right)
	}
	if got := Side(9).String(); got != "Side(9)" {
		t.Errorf("invalid side renders as %q", got)
	}
}

func TestSideOtherAndValid(t *testing.T) {
	t.Parallel()
	if Left.Other() != Right || Right.Other() != Left {
		t.Error("Other does not flip sides")
	}
	if !Left.Valid() || !Right.Valid() || Side(0).Valid() || Side(3).Valid() {
		t.Error("Valid misclassifies sides")
	}
}

func TestGraphCounts(t *testing.T) {
	t.Parallel()
	g := buildTestGraph(t)
	if g.NumLeft() != 3 || g.NumRight() != 3 || g.NumNodes() != 6 {
		t.Errorf("counts = %d/%d/%d", g.NumLeft(), g.NumRight(), g.NumNodes())
	}
	if g.NumEdges() != 6 {
		t.Errorf("NumEdges = %d, want 6", g.NumEdges())
	}
	if g.NumSide(Left) != 3 || g.NumSide(Right) != 3 || g.NumSide(Side(0)) != 0 {
		t.Error("NumSide wrong")
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	t.Parallel()
	g := buildTestGraph(t)
	cases := []struct {
		side Side
		id   int32
		deg  int64
	}{
		{Left, 0, 2}, {Left, 1, 1}, {Left, 2, 3},
		{Right, 0, 2}, {Right, 1, 3}, {Right, 2, 1},
	}
	for _, tc := range cases {
		if got := g.Degree(tc.side, tc.id); got != tc.deg {
			t.Errorf("Degree(%v,%d) = %d, want %d", tc.side, tc.id, got, tc.deg)
		}
	}
	nb := g.Neighbors(Left, 2)
	if len(nb) != 3 || nb[0] != 0 || nb[1] != 1 || nb[2] != 2 {
		t.Errorf("Neighbors(Left,2) = %v", nb)
	}
	nb = g.Neighbors(Right, 1)
	if len(nb) != 3 || nb[0] != 0 || nb[1] != 1 || nb[2] != 2 {
		t.Errorf("Neighbors(Right,1) = %v", nb)
	}
}

func TestAdjacencyView(t *testing.T) {
	t.Parallel()
	g := buildTestGraph(t)
	for _, side := range []Side{Left, Right} {
		off, adj := g.AdjacencyView(side)
		if len(off) != g.NumSide(side)+1 {
			t.Fatalf("%v offsets length = %d, want %d", side, len(off), g.NumSide(side)+1)
		}
		if int64(len(adj)) != g.NumEdges() {
			t.Fatalf("%v adjacency length = %d, want %d", side, len(adj), g.NumEdges())
		}
		for id := int32(0); id < int32(g.NumSide(side)); id++ {
			row := adj[off[id]:off[id+1]]
			want := g.Neighbors(side, id)
			if len(row) != len(want) {
				t.Fatalf("%v node %d row length = %d, want %d", side, id, len(row), len(want))
			}
			for i := range want {
				if row[i] != want[i] {
					t.Errorf("%v node %d neighbor %d = %d, want %d", side, id, i, row[i], want[i])
				}
			}
		}
	}
	// The left-major walk of the view enumerates the same edge sequence as
	// ForEachEdge.
	off, adj := g.AdjacencyView(Left)
	var viaCallback []Edge
	g.ForEachEdge(func(l, r int32) bool {
		viaCallback = append(viaCallback, Edge{l, r})
		return true
	})
	var viaView []Edge
	for l := int32(0); l < int32(g.NumLeft()); l++ {
		for _, r := range adj[off[l]:off[l+1]] {
			viaView = append(viaView, Edge{l, r})
		}
	}
	if len(viaView) != len(viaCallback) {
		t.Fatalf("view walk saw %d edges, callback %d", len(viaView), len(viaCallback))
	}
	for i := range viaView {
		if viaView[i] != viaCallback[i] {
			t.Errorf("edge %d: view %v, callback %v", i, viaView[i], viaCallback[i])
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AdjacencyView accepted invalid side")
			}
		}()
		g.AdjacencyView(Side(0))
	}()
}

func TestHasEdge(t *testing.T) {
	t.Parallel()
	g := buildTestGraph(t)
	for _, e := range g.Edges() {
		if !g.HasEdge(e.Left, e.Right) {
			t.Errorf("HasEdge(%d,%d) = false for existing edge", e.Left, e.Right)
		}
	}
	for _, e := range []Edge{{1, 0}, {1, 2}, {0, 2}} {
		if g.HasEdge(e.Left, e.Right) {
			t.Errorf("HasEdge(%d,%d) = true for absent edge", e.Left, e.Right)
		}
	}
	if g.HasEdge(-1, 0) || g.HasEdge(0, 99) {
		t.Error("HasEdge out-of-range should be false")
	}
}

func TestForEachEdgeOrderAndEarlyStop(t *testing.T) {
	t.Parallel()
	g := buildTestGraph(t)
	var seen []Edge
	g.ForEachEdge(func(l, r int32) bool {
		seen = append(seen, Edge{l, r})
		return true
	})
	want := []Edge{{0, 0}, {0, 1}, {1, 1}, {2, 0}, {2, 1}, {2, 2}}
	if len(seen) != len(want) {
		t.Fatalf("saw %d edges, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("edge %d = %v, want %v", i, seen[i], want[i])
		}
	}
	count := 0
	g.ForEachEdge(func(l, r int32) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d edges, want 3", count)
	}
}

func TestMaxDegree(t *testing.T) {
	t.Parallel()
	g := buildTestGraph(t)
	if got := g.MaxDegree(Left); got != 3 {
		t.Errorf("MaxDegree(Left) = %d, want 3", got)
	}
	if got := g.MaxDegree(Right); got != 3 {
		t.Errorf("MaxDegree(Right) = %d, want 3", got)
	}
	empty := &Graph{}
	if empty.MaxDegree(Left) != 0 {
		t.Error("MaxDegree of empty graph should be 0")
	}
}

func TestBuilderDedup(t *testing.T) {
	t.Parallel()
	b := NewBuilder(4)
	b.AddEdge(0, 0)
	b.AddEdge(0, 0)
	b.AddEdge(0, 0)
	b.AddEdge(1, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d after dedup, want 2", g.NumEdges())
	}
}

func TestBuilderNegativeID(t *testing.T) {
	t.Parallel()
	b := NewBuilder(1)
	b.AddEdge(-1, 0)
	if _, err := b.Build(); err == nil {
		t.Error("Build accepted a negative id")
	}
}

func TestBuilderNamed(t *testing.T) {
	t.Parallel()
	b := NewBuilder(0)
	b.AddAssociation("alice", "insulin")
	b.AddAssociation("bob", "insulin")
	b.AddAssociation("alice", "aspirin")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasNames() {
		t.Fatal("named builder lost names")
	}
	if g.NumLeft() != 2 || g.NumRight() != 2 || g.NumEdges() != 3 {
		t.Fatalf("unexpected shape %d/%d/%d", g.NumLeft(), g.NumRight(), g.NumEdges())
	}
	if g.LeftName(0) != "alice" || g.LeftName(1) != "bob" {
		t.Errorf("left names = %q,%q", g.LeftName(0), g.LeftName(1))
	}
	if g.RightName(0) != "insulin" || g.RightName(1) != "aspirin" {
		t.Errorf("right names = %q,%q", g.RightName(0), g.RightName(1))
	}
}

func TestBuilderMixedIDSpacesRejected(t *testing.T) {
	t.Parallel()
	b := NewBuilder(0)
	b.AddAssociation("alice", "insulin")
	b.AddEdge(5, 5)
	if _, err := b.Build(); !errors.Is(err, ErrMixedIDSpaces) {
		t.Errorf("Build error = %v, want ErrMixedIDSpaces", err)
	}
}

func TestBuilderIsolatedNodes(t *testing.T) {
	t.Parallel()
	b := NewBuilder(1)
	b.AddEdge(0, 0)
	b.SetNumLeft(10)
	b.SetNumRight(5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLeft() != 10 || g.NumRight() != 5 {
		t.Errorf("sides = %d/%d, want 10/5", g.NumLeft(), g.NumRight())
	}
	if g.Degree(Left, 9) != 0 {
		t.Error("isolated node has nonzero degree")
	}
}

func TestFromEdgesRangeCheck(t *testing.T) {
	t.Parallel()
	if _, err := FromEdges(2, 2, []Edge{{2, 0}}); err == nil {
		t.Error("FromEdges accepted an out-of-range edge")
	}
}

func TestUnlabeledNamesEmpty(t *testing.T) {
	t.Parallel()
	g := buildTestGraph(t)
	if g.HasNames() {
		t.Fatal("id-built graph should have no names")
	}
	if g.LeftName(0) != "" || g.RightName(0) != "" {
		t.Error("names of unlabeled graph should be empty strings")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	t.Parallel()
	g := buildTestGraph(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("fresh graph invalid: %v", err)
	}
	// Corrupt a neighbor id out of range.
	g.leftAdj[0] = 99
	if err := g.Validate(); err == nil {
		t.Error("Validate missed out-of-range neighbor")
	}
}

func TestValidateCatchesUnsortedRow(t *testing.T) {
	t.Parallel()
	g := buildTestGraph(t)
	// left 2 has neighbors [0 1 2]; swap to break ordering.
	row := g.Neighbors(Left, 2)
	row[0], row[1] = row[1], row[0]
	if err := g.Validate(); err == nil {
		t.Error("Validate missed unsorted adjacency row")
	}
}

// TestQuickBuildInvariants checks, for random edge multisets, that Build
// produces a graph whose two CSR views agree and whose edge set equals the
// deduplicated input.
func TestQuickBuildInvariants(t *testing.T) {
	t.Parallel()
	src := rng.New(1234)
	f := func(seed uint64) bool {
		r := src.Split(seed)
		nl := int32(r.Intn(20) + 1)
		nr := int32(r.Intn(20) + 1)
		n := r.Intn(200)
		set := map[Edge]bool{}
		b := NewBuilder(n)
		b.SetNumLeft(nl)
		b.SetNumRight(nr)
		for i := 0; i < n; i++ {
			e := Edge{Left: int32(r.Intn(int(nl))), Right: int32(r.Intn(int(nr)))}
			set[e] = true
			b.AddEdge(e.Left, e.Right)
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		if g.NumEdges() != int64(len(set)) {
			return false
		}
		// Every input edge is present; every graph edge was input.
		for e := range set {
			if !g.HasEdge(e.Left, e.Right) {
				return false
			}
		}
		ok := true
		g.ForEachEdge(func(l, r int32) bool {
			if !set[Edge{l, r}] {
				ok = false
				return false
			}
			return true
		})
		// Right-side CSR agrees with the left-side one.
		var rightTotal int64
		for id := int32(0); id < int32(g.NumRight()); id++ {
			rightTotal += g.Degree(Right, id)
			for _, l := range g.Neighbors(Right, id) {
				if !set[Edge{l, id}] {
					ok = false
				}
			}
		}
		return ok && rightTotal == g.NumEdges() && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
