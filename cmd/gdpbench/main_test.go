package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/datagen"
	"repro/internal/release"
)

func TestRunSingleExperimentQuick(t *testing.T) {
	if err := run([]string{"-exp", "adjacency", "-quick", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithCSVOutput(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "mechanism", "-quick", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no CSV written")
	}
	blob, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), ",") {
		t.Error("CSV content malformed")
	}
}

func TestRunWithBenchJSON(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "adjacency", "-quick", "-workers", "2", "-benchjson", dir}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, "BENCH_adjacency.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec benchRecord
	if err := json.Unmarshal(blob, &rec); err != nil {
		t.Fatalf("bench record is not valid JSON: %v", err)
	}
	if rec.Experiment != "adjacency" || !rec.Quick || rec.Workers != 2 {
		t.Errorf("bench record = %+v", rec)
	}
	if rec.WallMS <= 0 {
		t.Errorf("wall_ms = %v, want > 0", rec.WallMS)
	}
	// Single-experiment runs must not pay the Phase-2 sweep.
	if _, err := os.Stat(filepath.Join(dir, "BENCH_phase2.json")); err == nil {
		t.Error("phase-2 record written for a single-experiment run")
	}
}

func TestPhase2BenchRecord(t *testing.T) {
	dir := t.TempDir()
	if err := writePhase2Bench(dir, 1, 2, "all"); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, "BENCH_phase2.json"))
	if err != nil {
		t.Fatalf("phase-2 record missing: %v", err)
	}
	var p2 phase2Record
	if err := json.Unmarshal(blob, &p2); err != nil {
		t.Fatalf("phase-2 record is not valid JSON: %v", err)
	}
	if p2.Cells != 1<<18 {
		t.Errorf("cells = %d, want %d", p2.Cells, 1<<18)
	}
	if p2.ReleaseCellsNsPerOp <= 0 || p2.CellsPerSec <= 0 {
		t.Errorf("release throughput not measured: %+v", p2)
	}
	if p2.TrialsSerialMS <= 0 || p2.TrialsParallelMS <= 0 || p2.Workers != 2 {
		t.Errorf("trial timings not measured: %+v", p2)
	}
	for _, name := range release.Strategies.Names() {
		if ms := p2.StrategyReleaseMS[name]; ms <= 0 {
			t.Errorf("strategy %s release not timed: %v", name, ms)
		}
	}
}

// writeEdgeFile generates a small synthetic dataset and saves it through
// the given codec.
func writeEdgeFile(t *testing.T, path, format string) {
	t.Helper()
	g, err := datagen.Generate(datagen.Config{
		Name: "edges-test", NumLeft: 150, NumRight: 220, NumEdges: 2100,
		LeftZipf: 1.9, RightZipf: 2.8, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if format == "binary" {
		err = bipartite.EncodeBinary(f, g)
	} else {
		err = bipartite.SaveTSV(f, g)
	}
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunEdgesStreamedIngest drives -edges end to end for both file
// formats with verification on: the streamed release must match the
// in-memory path byte for byte, and the BENCH_stream.json record must
// land with a positive ingest rate.
func TestRunEdgesStreamedIngest(t *testing.T) {
	for _, format := range []string{"tsv", "binary"} {
		t.Run(format, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "edges."+format)
			writeEdgeFile(t, path, format)
			err := run([]string{
				"-edges", path, "-rounds", "6", "-workers", "2",
				"-streamverify", "-benchjson", dir,
			})
			if err != nil {
				t.Fatal(err)
			}
			blob, err := os.ReadFile(filepath.Join(dir, "BENCH_stream.json"))
			if err != nil {
				t.Fatalf("stream record missing: %v", err)
			}
			var rec streamRecord
			if err := json.Unmarshal(blob, &rec); err != nil {
				t.Fatalf("stream record is not valid JSON: %v", err)
			}
			if rec.Format != format || rec.Edges != 2100 || rec.Rounds != 6 || !rec.Verified {
				t.Errorf("stream record = %+v", rec)
			}
			if rec.EdgesSec <= 0 || rec.WallMS <= 0 {
				t.Errorf("ingest rate not measured: %+v", rec)
			}
		})
	}
}

func TestRunEdgesMissingFile(t *testing.T) {
	if err := run([]string{"-edges", filepath.Join(t.TempDir(), "nope.tsv")}); err == nil {
		t.Error("missing edge file accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "bogus"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestSanitize(t *testing.T) {
	t.Parallel()
	if got := sanitize("budget-split"); got != "budget-split" {
		t.Errorf("sanitize = %q", got)
	}
	if got := sanitize("We?ird/Name"); strings.ContainsAny(got, "?/ABCDEFGHIJKLMNOPQRSTUVWXYZ") {
		t.Errorf("sanitize left bad chars: %q", got)
	}
}
