// Command gdpledgerd is the shared privacy-ledger sequencer: a
// single-writer service that owns one durable (WAL + snapshot) budget
// per (dataset, data-fingerprint) key and admits spends over an
// idempotent HTTP/JSON protocol. Point N gdpserve replicas at it with
// -ledger-addr and they spend ONE (ε, δ) budget per dataset — the
// deployment shape where accounting stays centralized even when
// answering is not, closing the classic "two replicas silently double
// the budget" failure of distributed DP systems.
//
// Usage:
//
//	gdpledgerd -addr 127.0.0.1:8850 -ledger-dir /var/lib/gdpledgerd
//	gdpserve   -addr 127.0.0.1:8080 -ledger-addr 127.0.0.1:8850 ...
//	gdpserve   -addr 127.0.0.1:8081 -ledger-addr 127.0.0.1:8850 ...
//
// Protocol (see internal/ledgerd):
//
//	POST /v1/ledgers/{key}/attach   open/replay a budget, returns the epoch token
//	POST /v1/ledgers/{key}/spend    idempotent admission (op_id dedups retries)
//	GET  /v1/ledgers/{key}          status + durability panel
//	GET  /v1/ledgers/{key}/ops      audit trail
//	GET  /healthz
//
// Every admitted spend is fsynced into the key's WAL before the ack, so
// an admission can never be forgotten; a restart replays the WALs and
// issues a fresh epoch token, fencing writers that attached to the
// previous incarnation (they fail closed and must re-attach). Budgets
// here are permanent: an exhausted key stays exhausted across restarts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/accountant"
	"repro/internal/ledgerd"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "gdpledgerd:", err)
		os.Exit(1)
	}
}

// parseArgs resolves flags into the sequencer options, the listen
// address, and the optional pprof side address.
func parseArgs(args []string) (opts ledgerd.Options, addr, pprofAddr string, err error) {
	fs := flag.NewFlagSet("gdpledgerd", flag.ContinueOnError)
	var (
		addrFlag   = fs.String("addr", "127.0.0.1:8850", "listen address")
		ledgerDir  = fs.String("ledger-dir", "", "directory holding the durable budget WALs (required)")
		fsync      = fs.String("fsync", "", "WAL fsync policy: always (the default; every admission is durable before its ack), interval, or off")
		fsyncEvery = fs.Duration("fsync-interval", 0, "max unsynced window under -fsync interval (0 = 100ms default)")
		snapEvery  = fs.Int("snapshot-every", 0, "compact each WAL into a snapshot after this many records (0 = 1024 default, negative = never compact)")
		pprofFlag  = fs.String("pprof", "", "serve net/http/pprof on this side address (e.g. 127.0.0.1:6061; empty = disabled)")
	)
	if err := fs.Parse(args); err != nil {
		return ledgerd.Options{}, "", "", err
	}
	if *ledgerDir == "" {
		return ledgerd.Options{}, "", "", errors.New("-ledger-dir is required (the sequencer exists to make budgets durable)")
	}
	policy, err := accountant.ParseFsyncPolicy(*fsync)
	if err != nil {
		return ledgerd.Options{}, "", "", err
	}
	opts = ledgerd.Options{
		Dir:           *ledgerDir,
		Fsync:         policy,
		FsyncInterval: *fsyncEvery,
		SnapshotEvery: *snapEvery,
	}
	return opts, *addrFlag, *pprofFlag, nil
}

// run starts the sequencer and serves until ctx is canceled. started
// (if non-nil) receives the bound address once the listener is up — the
// test hook.
func run(ctx context.Context, args []string, started func(addr string)) error {
	opts, addr, pprofAddr, err := parseArgs(args)
	if err != nil {
		return err
	}
	if pprofAddr != "" {
		stopProf, err := startPprof(pprofAddr)
		if err != nil {
			return err
		}
		defer stopProf()
	}
	svc, err := ledgerd.New(opts)
	if err != nil {
		return err
	}
	// Close flushes and syncs every budget WAL — the graceful path that
	// makes interval/off fsync policies safe across clean shutdowns.
	closeSvc := func() error { return svc.Close() }
	defer func() { _ = closeSvc() }()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("gdpledgerd: listening on %s (ledger dir %s, epoch %s)\n",
		ln.Addr(), opts.Dir, svc.Epoch())
	if started != nil {
		started(ln.Addr().String())
	}

	srv := &http.Server{Handler: ledgerd.NewHandler(svc)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return closeSvc()
	}
}

// startPprof serves net/http/pprof on its own listener and mux, like
// gdpserve: the profiling surface never shares a port with the spend
// API. The returned func closes the listener.
func startPprof(addr string) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	fmt.Printf("gdpledgerd: pprof on http://%s/debug/pprof/\n", ln.Addr())
	return func() { _ = srv.Close() }, nil
}
